/**
 * @file
 * Minimal JSON support for machine-readable run telemetry: a
 * streaming writer (RunResult::toJson, interval-stats JSONL) and a
 * small recursive-descent parser (tools/fastats reads stats files
 * back). Only what the telemetry schema needs — objects, arrays,
 * strings, numbers, booleans, null — with no external dependency.
 */

#ifndef FA_COMMON_JSON_HH
#define FA_COMMON_JSON_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fa {

/**
 * Streaming JSON writer. Emits to an ostream with automatic comma
 * placement; keys/values must be produced in document order.
 *
 * @code
 *   JsonWriter jw(os);
 *   jw.beginObject();
 *   jw.key("cycles").value(std::uint64_t{42});
 *   jw.key("core").beginObject(); ... jw.endObject();
 *   jw.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : out(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit "key": inside an object; the next value attaches to it. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t{v}); }
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    /** Doubles print with enough digits to round-trip; non-finite
     * values emit null (JSON has no NaN/Inf). */
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    static std::string escape(const std::string &s);

  private:
    void separator();

    std::ostream &out;
    /** One entry per open container: true after the first element. */
    std::vector<bool> needComma;
    bool pendingKey = false;
};

/** Parsed JSON document node. */
struct JsonValue
{
    enum class Kind : std::uint8_t {
        kNull, kBool, kNumber, kString, kArray, kObject,
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    /** Exact value when the token was a plain non-negative integer
     * (doubles truncate past 2^53 — fatal for 64-bit RNG seeds). */
    std::uint64_t exactInt = 0;
    bool hasExactInt = false;
    std::string str;
    std::vector<JsonValue> arr;
    /** Insertion-ordered members (diffing wants stable order). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::kNull; }
    bool isBool() const { return kind == Kind::kBool; }
    bool isNumber() const { return kind == Kind::kNumber; }
    bool isString() const { return kind == Kind::kString; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isObject() const { return kind == Kind::kObject; }

    /** Member lookup in an object; nullptr when absent. */
    const JsonValue *find(const std::string &k) const;

    /** Member access that fatal()s when absent or not an object. */
    const JsonValue &at(const std::string &k) const;

    std::uint64_t
    asU64() const
    {
        return hasExactInt ? exactInt
                           : static_cast<std::uint64_t>(number);
    }

    /**
     * Parse a complete document. Throws FatalError (via fatal()) on
     * malformed input, with a byte offset in the message. Nesting
     * deeper than kMaxDepth is rejected (crash-safe readback of
     * journal/certificate files must never overflow the stack on
     * garbage input).
     */
    static JsonValue parse(const std::string &text);

    /** Container-nesting limit enforced by parse()/tryParse(). Far
     * above any schema this repo writes (< 8 levels). */
    static constexpr std::size_t kMaxDepth = 96;

    /**
     * Non-throwing parse for files that may be truncated or corrupt
     * (journals read back after a crash). Returns false and fills
     * `err` instead of throwing; `out` is untouched on failure.
     */
    static bool tryParse(const std::string &text, JsonValue *out,
                         std::string *err = nullptr);
};

} // namespace fa

#endif // FA_COMMON_JSON_HH
