/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-reproducible for a given seed, so all
 * randomness flows through these small, header-only generators rather
 * than std::random devices.
 */

#ifndef FA_COMMON_RNG_HH
#define FA_COMMON_RNG_HH

#include <cstdint>

namespace fa {

/**
 * xorshift64* generator: fast, decent-quality, fully deterministic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

  private:
    std::uint64_t state;
};

/**
 * Stateless mixer: a pure function of its inputs, used where a value
 * must be recomputable (e.g. the RAND instruction's committed value,
 * which must not depend on how many squashed executions preceded it).
 */
constexpr std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b + 0xbf58476d1ce4e5b9ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace fa

#endif // FA_COMMON_RNG_HH
