/**
 * @file
 * Word-granular functional memory image.
 *
 * The simulator separates *data* from *timing*: caches and the
 * directory hold only tags and coherence state, while all data lives
 * in one flat image whose update points (store perform, store_unlock
 * perform) are controlled by the timing models. Coherence guarantees
 * that whenever a core is permitted to read a word, the image holds
 * exactly the value its cache copy would hold.
 */

#ifndef FA_COMMON_MEM_IMAGE_HH
#define FA_COMMON_MEM_IMAGE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace fa {

/** Sparse word-addressed memory; unset words read as zero. */
class MemImage
{
  public:
    std::int64_t
    read(Addr a) const
    {
        auto it = words.find(wordIndex(a));
        return it == words.end() ? 0 : it->second;
    }

    void
    write(Addr a, std::int64_t v)
    {
        words[wordIndex(a)] = v;
    }

    /** Equality treating absent words as zero. */
    bool
    operator==(const MemImage &other) const
    {
        for (const auto &[k, v] : words) {
            auto it = other.words.find(k);
            std::int64_t ov = it == other.words.end() ? 0 : it->second;
            if (v != ov)
                return false;
        }
        for (const auto &[k, v] : other.words) {
            if (v != 0 && words.find(k) == words.end())
                return false;
        }
        return true;
    }

    const std::unordered_map<Addr, std::int64_t> &raw() const
    {
        return words;
    }

  private:
    std::unordered_map<Addr, std::int64_t> words;
};

} // namespace fa

#endif // FA_COMMON_MEM_IMAGE_HH
