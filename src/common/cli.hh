/**
 * @file
 * Shared command-line argument parser for the fa tools (fasim,
 * fasoak, famc, falint, fastats, fabench).
 *
 * Every tool had grown its own ad-hoc flag loop with slightly
 * different behaviour (silent strtoul on garbage, `--flag=value`
 * support in some tools only, inconsistent unknown-flag handling).
 * This parser gives all of them one contract:
 *
 *   - `--flag value` and `--flag=value` are both accepted for long
 *     options taking a value; short options (`-w x`) take the next
 *     argument only,
 *   - boolean switches reject an attached value (`--stats=yes` is a
 *     usage error, not silently true),
 *   - unknown options, missing values, and non-numeric values for
 *     numeric options are usage errors: the tool prints the message
 *     plus its synthesized usage text and exits with status 2,
 *   - `-h`/`--help` prints the usage text and exits 0,
 *   - positional arguments are rejected unless the tool declared a
 *     positional sink.
 *
 * Numeric accessors are strict: the whole token must parse
 * (`--cores 8x` and `--seed ""` are rejected with a clear message).
 * The same strict parsers back the env-var fallbacks used by the
 * bench harnesses (envUnsigned/envDouble), so FA_CORES=banana is an
 * error instead of silently becoming 0.
 */

#ifndef FA_COMMON_CLI_HH
#define FA_COMMON_CLI_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace fa::cli {

// --- strict scalar parsing (shared by flags and env fallbacks) --------

/** Parse a full string as unsigned; fatal("...") on garbage.
 * `what` names the flag or env var for the error message. */
unsigned parseUnsigned(const std::string &v, const std::string &what);
std::uint64_t parseU64(const std::string &v, const std::string &what);
std::int64_t parseI64(const std::string &v, const std::string &what);
double parseDouble(const std::string &v, const std::string &what);

/** Env-var fallback with validation: unset/empty yields `def`,
 * garbage is a FatalError naming the variable. */
unsigned envUnsigned(const char *name, unsigned def);
double envDouble(const char *name, double def);
std::string envString(const char *name);

/** Split a comma-separated list, dropping empty items
 * ("a,b" -> {a,b}; "" -> {}). */
std::vector<std::string> splitList(const std::string &s);

// --- the parser -------------------------------------------------------

/** Result of Parser::tryParse (the non-exiting entry point). */
enum class ParseStatus { kOk, kHelp, kError };

/**
 * Declarative option table + parser. Options bind directly to the
 * tool's variables; defaults are whatever the variables hold when
 * parse() runs.
 *
 * @code
 *   cli::Parser p("fasim", "run packaged workloads on the simulator");
 *   p.opt(&workload, "-w", "--workload", "NAME", "workload (see --list)");
 *   p.opt(&cores, "-c", "--cores", "N", "threads/cores");
 *   p.flag(&stats, "", "--stats", "dump aggregated statistics");
 *   p.parse(argc, argv);   // exits 2 on a usage error, 0 on --help
 * @endcode
 */
class Parser
{
  public:
    Parser(std::string prog, std::string summary);

    /** Boolean switch (takes no value). `shortName` may be "". */
    Parser &flag(bool *out, const std::string &shortName,
                 const std::string &longName, const std::string &help);

    /** Value-taking options, one overload per bound type. Numeric
     * overloads parse strictly (whole token, clear error). */
    Parser &opt(std::string *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);
    Parser &opt(unsigned *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);
    Parser &opt(std::uint64_t *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);
    Parser &opt(std::int64_t *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);
    Parser &opt(double *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);
    /** Repeatable option: every occurrence appends. */
    Parser &opt(std::vector<std::string> *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);

    /** Extra long-option spelling for the most recently declared
     * option (keeps old flag names alive across renames). Aliases are
     * accepted but not listed in the usage text. */
    Parser &alias(const std::string &longName);

    /** Accept positional arguments into `out` (describes them in the
     * usage line as `name`). Without this, positionals are errors. */
    Parser &positional(std::vector<std::string> *out,
                       const std::string &name, const std::string &help);

    /** Free-form text appended after the option table (exit-status
     * contracts, examples). */
    Parser &epilog(const std::string &text);

    /**
     * Parse argv. On success returns normally. On `-h`/`--help`
     * prints usage to stdout and exits 0. On any usage error prints
     * "<prog>: <message>" and the usage text to stderr and exits 2.
     */
    void parse(int argc, char **argv);

    /** Non-exiting variant for tests: the error message (if any)
     * lands in *err. Help output is suppressed. */
    ParseStatus tryParse(int argc, char **argv, std::string *err);

    /** Was this option given on the command line? Accepts the long
     * name ("--stats") or bare name ("stats"). */
    bool seen(const std::string &name) const;

    void printUsage(std::ostream &os) const;

    const std::string &prog() const { return progName; }

  private:
    enum class Kind : std::uint8_t {
        kSwitch, kString, kUnsigned, kU64, kI64, kDouble, kStringList,
    };

    struct Option
    {
        Kind kind;
        std::string shortName;   ///< "-w" or ""
        std::string longName;    ///< "--workload"
        std::vector<std::string> aliases;  ///< extra long spellings
        std::string valueName;   ///< "NAME" (empty for switches)
        std::string help;
        void *target = nullptr;
        bool given = false;
    };

    Option &add(Kind kind, void *out, const std::string &shortName,
                const std::string &longName, const std::string &valueName,
                const std::string &help);
    Option *find(const std::string &spelling);
    void assign(Option &o, const std::string &value,
                const std::string &spelling);

    std::string progName;
    std::string summaryText;
    std::string epilogText;
    std::vector<Option> options;
    std::vector<std::string> *positionals = nullptr;
    std::string positionalName;
    std::string positionalHelp;
};

} // namespace fa::cli

#endif // FA_COMMON_CLI_HH
