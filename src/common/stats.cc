#include "common/stats.hh"

namespace fa {

std::uint64_t
CoreStats::totalSquashEvents() const
{
    std::uint64_t n = 0;
    for (auto v : squashEvents)
        n += v;
    return n;
}

void
CoreStats::forEach(
    const std::function<void(const std::string &, std::uint64_t)> &fn) const
{
    // One canonical field list, kept in the mutable visitor.
    const_cast<CoreStats *>(this)->forEachMut(
        [&](const std::string &name, std::uint64_t &v) { fn(name, v); });
}

void
CoreStats::forEachMut(
    const std::function<void(const std::string &, std::uint64_t &)> &fn)
{
    fn("committedInsts", committedInsts);
    fn("committedAtomics", committedAtomics);
    fn("committedLoads", committedLoads);
    fn("committedStores", committedStores);
    fn("committedBranches", committedBranches);
    fn("committedFences", committedFences);
    fn("llscSuccesses", llscSuccesses);
    fn("llscFailures", llscFailures);
    fn("fetchedInsts", fetchedInsts);
    fn("squashedInsts", squashedInsts);
    fn("squashBranch",
       squashEvents[static_cast<int>(SquashCause::kBranchMispredict)]);
    fn("squashMemDep",
       squashEvents[static_cast<int>(SquashCause::kMemDepViolation)]);
    fn("squashInvalidatedLoad",
       squashEvents[static_cast<int>(SquashCause::kInvalidatedLoad)]);
    fn("squashWatchdog",
       squashEvents[static_cast<int>(SquashCause::kWatchdog)]);
    fn("squashChaos",
       squashEvents[static_cast<int>(SquashCause::kChaos)]);
    fn("branchMispredicts", branchMispredicts);
    fn("watchdogTimeouts", watchdogTimeouts);
    fn("activeCycles", activeCycles);
    fn("haltedCycles", haltedCycles);
    fn("atomicDrainSbCycles", atomicDrainSbCycles);
    fn("atomicPostIssueCycles", atomicPostIssueCycles);
    fn("fence2LoadStallCycles", fence2LoadStallCycles);
    fn("implicitFencesExecuted", implicitFencesExecuted);
    fn("implicitFencesOmitted", implicitFencesOmitted);
    fn("atomicsFwdFromAtomic", atomicsFwdFromAtomic);
    fn("atomicsFwdFromStore", atomicsFwdFromStore);
    fn("regularLoadForwards", regularLoadForwards);
    fn("fwdChainBreaks", fwdChainBreaks);
    fn("lockSourceSq", lockSourceSq);
    fn("lockSourceL1WritePerm", lockSourceL1WritePerm);
    fn("lockSourceL2WritePerm", lockSourceL2WritePerm);
    fn("lockSourceRemote", lockSourceRemote);
    fn("dispatchStallAqCycles", dispatchStallAqCycles);
    fn("dispatchStallRobCycles", dispatchStallRobCycles);
    fn("dispatchStallLsqCycles", dispatchStallLsqCycles);
    fn("sbStoresPerformed", sbStoresPerformed);
    fn("sbCoalescedStores", sbCoalescedStores);
    fn("issuedUops", issuedUops);
}

void
CoreStats::add(const CoreStats &other)
{
    committedInsts += other.committedInsts;
    committedAtomics += other.committedAtomics;
    committedLoads += other.committedLoads;
    committedStores += other.committedStores;
    committedBranches += other.committedBranches;
    committedFences += other.committedFences;
    llscSuccesses += other.llscSuccesses;
    llscFailures += other.llscFailures;
    fetchedInsts += other.fetchedInsts;
    squashedInsts += other.squashedInsts;
    for (int i = 0; i < static_cast<int>(SquashCause::kNumCauses); ++i)
        squashEvents[i] += other.squashEvents[i];
    branchMispredicts += other.branchMispredicts;
    watchdogTimeouts += other.watchdogTimeouts;
    activeCycles += other.activeCycles;
    haltedCycles += other.haltedCycles;
    atomicDrainSbCycles += other.atomicDrainSbCycles;
    atomicPostIssueCycles += other.atomicPostIssueCycles;
    fence2LoadStallCycles += other.fence2LoadStallCycles;
    implicitFencesExecuted += other.implicitFencesExecuted;
    implicitFencesOmitted += other.implicitFencesOmitted;
    atomicsFwdFromAtomic += other.atomicsFwdFromAtomic;
    atomicsFwdFromStore += other.atomicsFwdFromStore;
    regularLoadForwards += other.regularLoadForwards;
    fwdChainBreaks += other.fwdChainBreaks;
    lockSourceSq += other.lockSourceSq;
    lockSourceL1WritePerm += other.lockSourceL1WritePerm;
    lockSourceL2WritePerm += other.lockSourceL2WritePerm;
    lockSourceRemote += other.lockSourceRemote;
    dispatchStallAqCycles += other.dispatchStallAqCycles;
    dispatchStallRobCycles += other.dispatchStallRobCycles;
    dispatchStallLsqCycles += other.dispatchStallLsqCycles;
    sbStoresPerformed += other.sbStoresPerformed;
    sbCoalescedStores += other.sbCoalescedStores;
    issuedUops += other.issuedUops;
}

void
MemStats::forEach(
    const std::function<void(const std::string &, std::uint64_t)> &fn) const
{
    const_cast<MemStats *>(this)->forEachMut(
        [&](const std::string &name, std::uint64_t &v) { fn(name, v); });
}

void
MemStats::forEachMut(
    const std::function<void(const std::string &, std::uint64_t &)> &fn)
{
    fn("l1Hits", l1Hits);
    fn("l1Misses", l1Misses);
    fn("l2Hits", l2Hits);
    fn("l2Misses", l2Misses);
    fn("l3Hits", l3Hits);
    fn("l3Misses", l3Misses);
    fn("memAccesses", memAccesses);
    fn("transactions", transactions);
    fn("networkMsgs", networkMsgs);
    fn("invalidationsSent", invalidationsSent);
    fn("invBlockedRetries", invBlockedRetries);
    fn("directoryRecalls", directoryRecalls);
    fn("writebacks", writebacks);
    fn("fillBlockedOnLock", fillBlockedOnLock);
    fn("prefetchesIssued", prefetchesIssued);
    fn("mesifForwards", mesifForwards);
}

void
MemStats::add(const MemStats &other)
{
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    l3Hits += other.l3Hits;
    l3Misses += other.l3Misses;
    memAccesses += other.memAccesses;
    transactions += other.transactions;
    networkMsgs += other.networkMsgs;
    invalidationsSent += other.invalidationsSent;
    invBlockedRetries += other.invBlockedRetries;
    directoryRecalls += other.directoryRecalls;
    writebacks += other.writebacks;
    fillBlockedOnLock += other.fillBlockedOnLock;
    prefetchesIssued += other.prefetchesIssued;
    mesifForwards += other.mesifForwards;
}

} // namespace fa
