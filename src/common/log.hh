/**
 * @file
 * Minimal logging and error-termination helpers, modelled after
 * gem5's logging.hh: panic() for simulator bugs, fatal() for user
 * errors, warn()/inform() for status messages.
 */

#ifndef FA_COMMON_LOG_HH
#define FA_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace fa {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort the process: something happened that should never happen
 * regardless of user input, i.e. a simulator bug. Calls abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the process with an error: the simulation cannot continue due
 * to a user-visible condition (bad configuration, invalid program).
 * Throws FatalError so tests can assert on it.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exception carrying a fatal() message; catchable in tests. */
struct FatalError
{
    std::string message;
};

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benches). */
void setQuiet(bool quiet);

/**
 * Cycle-level event tracing to stderr, enabled by setTrace(true) or
 * the FA_TRACE environment variable. Zero cost when disabled beyond
 * one branch per call site.
 */
bool traceEnabled();
void setTrace(bool enable);
void tracef(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

#define FA_TRACE(...)                    \
    do {                                 \
        if (::fa::traceEnabled())        \
            ::fa::tracef(__VA_ARGS__);   \
    } while (0)

} // namespace fa

#endif // FA_COMMON_LOG_HH
