#include "common/span_trace.hh"

namespace fa {

SpanTracer::SpanTracer(std::ostream &os) : out(os), jw(out)
{
    jw.beginObject();
    jw.key("displayTimeUnit").value("ms");
    jw.key("otherData").beginObject();
    jw.key("schema").value("fa-trace-v1");
    jw.key("tsUnit").value("1 cycle = 1 us");
    jw.endObject();
    // traceEvents comes last so events can stream until finish().
    jw.key("traceEvents").beginArray();
}

void
SpanTracer::preamble(unsigned cores, unsigned aqEntries)
{
    if (closed)
        return;
    for (unsigned c = 0; c < cores; ++c) {
        metadata(c, 0, "process_name", "core " + std::to_string(c));
        metadata(c, 0, "thread_name", "events");
        for (unsigned i = 0; i < aqEntries; ++i) {
            metadata(c, 1 + i, "thread_name",
                     "aq " + std::to_string(i));
        }
    }
}

void
SpanTracer::metadata(unsigned pid, unsigned tid, const char *kind,
                     const std::string &label)
{
    jw.beginObject();
    jw.key("ph").value("M");
    jw.key("pid").value(pid);
    jw.key("tid").value(tid);
    jw.key("name").value(kind);
    jw.key("args").beginObject();
    jw.key("name").value(label);
    jw.endObject();
    jw.endObject();
    ++events;
}

void
SpanTracer::beginEvent(const char *ph, unsigned pid, unsigned tid,
                       Cycle ts)
{
    jw.beginObject();
    jw.key("ph").value(ph);
    jw.key("pid").value(pid);
    jw.key("tid").value(tid);
    jw.key("ts").value(ts);
}

void
SpanTracer::endEvent()
{
    jw.endObject();
    ++events;
}

void
SpanTracer::beginSpan(unsigned pid, unsigned tid, const char *name,
                      Cycle ts)
{
    beginEvent("B", pid, tid, ts);
    jw.key("name").value(name);
    endEvent();
}

void
SpanTracer::endSpan(unsigned pid, unsigned tid, Cycle ts)
{
    beginEvent("E", pid, tid, ts);
    endEvent();
}

void
SpanTracer::closeChild(unsigned pid, unsigned tid, Open &o, Cycle ts)
{
    if (o.child != Child::kNone) {
        endSpan(pid, tid, ts);
        o.child = Child::kNone;
    }
}

void
SpanTracer::atomicDispatch(CoreId core, int aqIdx, SeqNum seq,
                           Addr pc, Cycle now)
{
    if (closed)
        return;
    const unsigned tid = tidFor(aqIdx);
    beginEvent("B", core, tid, now);
    jw.key("name").value("atomic");
    jw.key("args").beginObject();
    jw.key("seq").value(seq);
    jw.key("pc").value(pc);
    jw.endObject();
    endEvent();
    beginSpan(core, tid, "acquire", now);
    open[{core, aqIdx}] = Open{Child::kAcquire, seq};
}

void
SpanTracer::atomicAcquired(CoreId core, int aqIdx, Cycle now,
                           const char *source, unsigned chain)
{
    if (closed)
        return;
    auto it = open.find({core, aqIdx});
    if (it == open.end())
        return;
    const unsigned tid = tidFor(aqIdx);
    if (it->second.child == Child::kAcquire) {
        beginEvent("E", core, tid, now);
        jw.key("args").beginObject();
        jw.key("source").value(source);
        jw.key("chain").value(chain);
        jw.endObject();
        endEvent();
        it->second.child = Child::kNone;
    }
    beginSpan(core, tid, "window", now);
    it->second.child = Child::kWindow;
}

void
SpanTracer::atomicRetry(CoreId core, int aqIdx, Cycle now)
{
    if (closed)
        return;
    beginEvent("i", core, tidFor(aqIdx), now);
    jw.key("name").value("retry");
    jw.key("s").value("t");
    endEvent();
}

void
SpanTracer::atomicFwdHop(CoreId core, int aqIdx, SeqNum fromSeq,
                         unsigned chain, Cycle now)
{
    if (closed)
        return;
    beginEvent("i", core, tidFor(aqIdx), now);
    jw.key("name").value("fwd_hop");
    jw.key("s").value("t");
    jw.key("args").beginObject();
    jw.key("fromSeq").value(fromSeq);
    jw.key("chain").value(chain);
    jw.endObject();
    endEvent();
}

void
SpanTracer::lockDenied(CoreId core, int aqIdx, Addr line,
                       CoreId requester, Cycle now)
{
    if (closed)
        return;
    beginEvent("i", core, tidFor(aqIdx), now);
    jw.key("name").value("lock_denied");
    jw.key("s").value("t");
    jw.key("args").beginObject();
    jw.key("line").value(line);
    jw.key("requester").value(requester);
    jw.endObject();
    endEvent();
}

void
SpanTracer::atomicCommitted(CoreId core, int aqIdx, Cycle now,
                            unsigned sbDepth, Cycle drainCycles)
{
    if (closed)
        return;
    auto it = open.find({core, aqIdx});
    if (it == open.end())
        return;
    const unsigned tid = tidFor(aqIdx);
    closeChild(core, tid, it->second, now);
    beginEvent("B", core, tid, now);
    jw.key("name").value("drain");
    jw.key("args").beginObject();
    jw.key("sbDepth").value(sbDepth);
    jw.key("drainCycles").value(drainCycles);
    jw.endObject();
    endEvent();
    it->second.child = Child::kDrain;
}

void
SpanTracer::atomicUnlocked(CoreId core, int aqIdx, Cycle now)
{
    if (closed)
        return;
    auto it = open.find({core, aqIdx});
    if (it == open.end())
        return;
    const unsigned tid = tidFor(aqIdx);
    closeChild(core, tid, it->second, now);
    endSpan(core, tid, now);
    open.erase(it);
}

void
SpanTracer::atomicSquashed(CoreId core, int aqIdx, Cycle now,
                           const char *cause)
{
    if (closed)
        return;
    auto it = open.find({core, aqIdx});
    if (it == open.end())
        return;
    const unsigned tid = tidFor(aqIdx);
    closeChild(core, tid, it->second, now);
    beginEvent("E", core, tid, now);
    jw.key("args").beginObject();
    jw.key("squashed").value(true);
    jw.key("cause").value(cause);
    jw.endObject();
    endEvent();
    open.erase(it);
}

void
SpanTracer::coreInstant(CoreId core, const char *name, SeqNum seq,
                        Cycle now)
{
    if (closed)
        return;
    beginEvent("i", core, 0, now);
    jw.key("name").value(name);
    jw.key("s").value("t");
    jw.key("args").beginObject();
    jw.key("seq").value(seq);
    jw.endObject();
    endEvent();
}

void
SpanTracer::finish(Cycle now)
{
    if (closed)
        return;
    for (auto &[key, o] : open) {
        const unsigned tid = tidFor(key.second);
        closeChild(key.first, tid, o, now);
        beginEvent("E", key.first, tid, now);
        jw.key("args").beginObject();
        jw.key("truncated").value(true);
        jw.endObject();
        endEvent();
    }
    open.clear();
    jw.endArray();
    jw.endObject();
    out << "\n";
    out.flush();
    closed = true;
}

} // namespace fa
