/**
 * @file
 * Fundamental type aliases and address arithmetic shared by every
 * module of the Free Atomics simulator.
 */

#ifndef FA_COMMON_TYPES_HH
#define FA_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace fa {

/** Simulated physical/virtual address (flat address space). */
using Addr = std::uint64_t;

/** Global simulation cycle count. */
using Cycle = std::uint64_t;

/** Per-core dynamic instruction sequence number (monotonic). */
using SeqNum = std::uint64_t;

/** Core identifier within a System. */
using CoreId = std::uint32_t;

/** Sentinel for "no sequence number". */
constexpr SeqNum kNoSeq = 0;

/** Sentinel for "no core". */
constexpr CoreId kNoCore = ~CoreId{0};

/** Cacheline size in bytes. Fixed at 64 as in the paper's system. */
constexpr unsigned kLineBytes = 64;
constexpr unsigned kLineShift = 6;

/** All data accesses are aligned 8-byte words. */
constexpr unsigned kWordBytes = 8;
constexpr unsigned kWordShift = 3;

/** Align an address down to its cacheline base. */
constexpr Addr
lineOf(Addr a)
{
    return a & ~Addr{kLineBytes - 1};
}

/** Align an address down to its word base. */
constexpr Addr
wordOf(Addr a)
{
    return a & ~Addr{kWordBytes - 1};
}

/** Word index used as the key of the functional memory image. */
constexpr Addr
wordIndex(Addr a)
{
    return a >> kWordShift;
}

} // namespace fa

#endif // FA_COMMON_TYPES_HH
