#include "common/host_prof.hh"

namespace fa {

const char *
hostPhaseName(HostPhase p)
{
    switch (p) {
      case HostPhase::kCoreEvents: return "core.events";
      case HostPhase::kCoreCommit: return "core.commit";
      case HostPhase::kCoreSbDrain: return "core.sbdrain";
      case HostPhase::kCoreIssue: return "core.issue";
      case HostPhase::kCoreDispatch: return "core.dispatch";
      case HostPhase::kCoreChaos: return "core.chaos";
      case HostPhase::kCoreWatchdog: return "core.watchdog";
      case HostPhase::kMemDirectory: return "mem.directory";
      case HostPhase::kMemCoherence: return "mem.coherence";
      case HostPhase::kMemCrossbar: return "mem.crossbar";
      case HostPhase::kMemCaches: return "mem.caches";
      case HostPhase::kMemSweep: return "mem.sweep";
      case HostPhase::kStats: return "stats";
      case HostPhase::kNumPhases: break;
    }
    return "?";
}

std::vector<std::pair<std::string, std::uint64_t>>
HostProfiler::table() const
{
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    const auto n = static_cast<std::size_t>(HostPhase::kNumPhases);
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        rows.emplace_back(hostPhaseName(static_cast<HostPhase>(i)),
                          ns_[i]);
    }
    return rows;
}

} // namespace fa
