/**
 * @file
 * Statistic counters collected by the core and memory models.
 *
 * Counters are plain uint64 fields for speed; each struct exposes a
 * forEach() visitor so tools can dump every counter by name without a
 * registry object on the hot path.
 */

#ifndef FA_COMMON_STATS_HH
#define FA_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace fa {

/** Why a pipeline squash happened (Table 2 classifies these). */
enum class SquashCause : std::uint8_t {
    kBranchMispredict,
    kMemDepViolation,
    kInvalidatedLoad,
    kWatchdog,
    kChaos,  ///< injected squash storm (fault-injection engine)
    kNumCauses,
};

/** Per-core statistic counters. */
struct CoreStats
{
    // Commit-stream counters.
    std::uint64_t committedInsts = 0;
    std::uint64_t committedAtomics = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t committedFences = 0;
    std::uint64_t llscSuccesses = 0;
    std::uint64_t llscFailures = 0;

    // Fetch/squash activity.
    std::uint64_t fetchedInsts = 0;
    std::uint64_t squashedInsts = 0;
    std::uint64_t squashEvents[static_cast<int>(
        SquashCause::kNumCauses)] = {};
    std::uint64_t branchMispredicts = 0;
    std::uint64_t watchdogTimeouts = 0;

    // Cycle accounting.
    std::uint64_t activeCycles = 0;
    std::uint64_t haltedCycles = 0;

    // Atomic RMW cost decomposition (Figure 1).
    std::uint64_t atomicDrainSbCycles = 0;
    std::uint64_t atomicPostIssueCycles = 0;
    std::uint64_t fence2LoadStallCycles = 0;

    // Fence accounting (Table 2, "Omitted Fences").
    std::uint64_t implicitFencesExecuted = 0;
    std::uint64_t implicitFencesOmitted = 0;

    // Store-to-load forwarding involving atomics (Table 2).
    std::uint64_t atomicsFwdFromAtomic = 0;
    std::uint64_t atomicsFwdFromStore = 0;
    std::uint64_t regularLoadForwards = 0;
    std::uint64_t fwdChainBreaks = 0;

    // load_lock data-source classification (Figure 13).
    std::uint64_t lockSourceSq = 0;
    std::uint64_t lockSourceL1WritePerm = 0;
    std::uint64_t lockSourceL2WritePerm = 0;
    std::uint64_t lockSourceRemote = 0;

    // Structural stalls.
    std::uint64_t dispatchStallAqCycles = 0;
    std::uint64_t dispatchStallRobCycles = 0;
    std::uint64_t dispatchStallLsqCycles = 0;

    // Store-buffer activity.
    std::uint64_t sbStoresPerformed = 0;
    std::uint64_t sbCoalescedStores = 0;

    // Issue activity (energy model input).
    std::uint64_t issuedUops = 0;

    std::uint64_t totalSquashEvents() const;
    void forEach(
        const std::function<void(const std::string &,
                                 std::uint64_t)> &fn) const;
    /** Mutable visitor over the same counters, same order (telemetry
     * readback: RunResult::fromJson restores counters by name). */
    void forEachMut(
        const std::function<void(const std::string &,
                                 std::uint64_t &)> &fn);
    void add(const CoreStats &other);
};

/** Memory-hierarchy statistic counters (per System). */
struct MemStats
{
    std::uint64_t l1Hits = 0;
    /** All L1 misses: L2 hits plus private-hierarchy misses. */
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    /** Demand requests missing the whole private hierarchy (one per
     * started coherence transaction). */
    std::uint64_t l2Misses = 0;
    std::uint64_t l3Hits = 0;
    /** Data fetches that missed the shared L3 and went to memory. */
    std::uint64_t l3Misses = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t transactions = 0;
    std::uint64_t networkMsgs = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t invBlockedRetries = 0;
    std::uint64_t directoryRecalls = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t fillBlockedOnLock = 0;
    std::uint64_t prefetchesIssued = 0;  ///< store- and stride-prefetch requests
    std::uint64_t mesifForwards = 0;

    void forEach(
        const std::function<void(const std::string &,
                                 std::uint64_t)> &fn) const;
    /** Mutable visitor, same counters and order (JSON readback). */
    void forEachMut(
        const std::function<void(const std::string &,
                                 std::uint64_t &)> &fn);
    void add(const MemStats &other);
};

} // namespace fa

#endif // FA_COMMON_STATS_HH
