#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fa {

namespace {

bool quietFlag = false;

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError{s};
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

namespace {

bool traceFlag = [] {
    const char *env = std::getenv("FA_TRACE");
    return env && env[0] && env[0] != '0';
}();

} // namespace

bool
traceEnabled()
{
    return traceFlag;
}

void
setTrace(bool enable)
{
    traceFlag = enable;
}

void
tracef(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s\n", s.c_str());
}

} // namespace fa
