/**
 * @file
 * A log2-bucketed latency/size histogram, the reusable statistic type
 * behind the observability layer. Paper Figure 1 reports *means*, but
 * the atomics story lives in the distribution tails (lock-hold times
 * and SB-drain stalls are heavy-tailed under contention), so the core
 * records every atomic's end-to-end latency, SB-drain duration,
 * lock-hold time and forwarding-chain length into one of these.
 *
 * Recording is a couple of integer ops (no allocation, no floating
 * point), cheap enough to stay always-on next to the plain counters.
 * Buckets are powers of two: bucket 0 holds the value 0, bucket i
 * holds [2^(i-1), 2^i). Percentiles interpolate linearly inside the
 * selected bucket, so p50/p99 are exact for degenerate distributions
 * and within one octave otherwise.
 */

#ifndef FA_COMMON_HISTOGRAM_HH
#define FA_COMMON_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace fa {

class Histogram
{
  public:
    /** Bucket 0 plus one bucket per bit of a 64-bit value. */
    static constexpr unsigned kBuckets = 65;

    void record(std::uint64_t value);

    /** Pointwise sum with another histogram (per-core -> totals). */
    void merge(const Histogram &other);

    std::uint64_t count() const { return n; }
    std::uint64_t sum() const { return total; }
    std::uint64_t min() const { return n == 0 ? 0 : minV; }
    std::uint64_t max() const { return maxV; }
    double mean() const;

    /**
     * Value at quantile `q` in [0, 1] (0 when empty). q=0 returns the
     * minimum, q=1 the maximum; interior quantiles interpolate within
     * the covering bucket.
     */
    double percentile(double q) const;
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }

    /** Index of the bucket holding `value`. */
    static unsigned bucketOf(std::uint64_t value);

    /** Inclusive lower bound of bucket `b`. */
    static std::uint64_t bucketLo(unsigned b);

    /** Exclusive upper bound of bucket `b` (saturates at 2^63). */
    static std::uint64_t bucketHi(unsigned b);

    /** Visit every non-empty bucket as (lo, hi_exclusive, count). */
    void forEachBucket(
        const std::function<void(std::uint64_t, std::uint64_t,
                                 std::uint64_t)> &fn) const;

    // --- serialized-form readback (fa-run-result-v1) -------------------

    /** Reset and restore the summary fields from their serialized
     * values (count/sum/min/max as toJson wrote them; min arrives as
     * 0 for an empty histogram). Bucket counts follow via
     * restoreBucket; the result is bit-identical to the histogram
     * that was serialized. */
    void restoreMeta(std::uint64_t count, std::uint64_t sum,
                     std::uint64_t min, std::uint64_t max);

    /** Restore one serialized bucket by its inclusive lower bound. */
    void restoreBucket(std::uint64_t lo, std::uint64_t count);

    std::uint64_t bucketCount(unsigned b) const { return buckets.at(b); }

  private:
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t n = 0;
    std::uint64_t total = 0;
    std::uint64_t minV = ~std::uint64_t{0};
    std::uint64_t maxV = 0;
};

/**
 * The core's latency distributions (one set per core, merged into
 * run totals exactly like CoreStats).
 */
struct LatencyHists
{
    /** Atomic RMW dispatch->commit latency, cycles (Figure 1
     * end-to-end cost, as a distribution). */
    Histogram atomicLatency;
    /** Cycles an atomic stalled at issue waiting for the SB to drain
     * (the Drain_SB component, per committed atomic). */
    Histogram sbDrain;
    /** Cacheline lock tenure: load_lock acquire -> store_unlock
     * perform (or squash release), cycles. */
    Histogram lockHold;
    /** Forwarding-chain length at commit of each atomic (§3.3.4). */
    Histogram fwdChain;
    /** Effective (backed-off, jittered) watchdog timeout at each
     * §3.2.5 firing, cycles. Empty unless the watchdog fired. */
    Histogram wdBackoff;

    void merge(const LatencyHists &other);

    /** Visit every histogram by name (stable order). */
    void forEach(
        const std::function<void(const std::string &,
                                 const Histogram &)> &fn) const;

    /** Mutable visitor, same histograms and order (JSON readback). */
    void forEachMut(
        const std::function<void(const std::string &, Histogram &)> &fn);
};

} // namespace fa

#endif // FA_COMMON_HISTOGRAM_HH
