/**
 * @file
 * faprof host-side profiler: attributes cycle-loop wall time to
 * simulator components (core stages, LSQ issue, AQ/SB drain, memory
 * phases, stats) via cheap scoped steady_clock timers.
 *
 * Sampling keeps overhead bounded: timers only run on cycles where
 * `now % period == 0` (the owning System calls beginCycle() each
 * cycle and the instrumented tick paths check sampling()). With the
 * default period of 64 the two clock reads per timed scope amortize
 * to well under 1% of loop time; per-component shares are unbiased
 * as long as component mix does not correlate with `now mod period`,
 * which holds for the bursty-but-aperiodic workloads here.
 *
 * Zero-cost when off: cores and the memory system hold a nullable
 * pointer and never touch the profiler unless it is attached — the
 * same discipline as pipeview/fasan/span tracing.
 */

#ifndef FA_COMMON_HOST_PROF_HH
#define FA_COMMON_HOST_PROF_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace fa {

/** Wall-time attribution buckets. Core buckets mirror the tick stage
 * sequence; mem buckets group transaction phases by the component
 * doing the work. */
enum class HostPhase : std::uint8_t {
    kCoreEvents,    ///< fill/completion event processing
    kCoreCommit,    ///< commit stage (ROB head retirement)
    kCoreSbDrain,   ///< SB drain + AQ unlock stage
    kCoreIssue,     ///< LSQ issue stage (loads, forwarding search)
    kCoreDispatch,  ///< fetch/decode/dispatch into ROB + AQ allocate
    kCoreChaos,     ///< fault-injection stage (when attached)
    kCoreWatchdog,  ///< AQ watchdog scan
    kMemDirectory,  ///< directory lookup
    kMemCoherence,  ///< invalidations, downgrades, victim recalls
    kMemCrossbar,   ///< request/response traversal + queuing
    kMemCaches,     ///< L1/L2/L3 fill path
    kMemSweep,      ///< finished-transaction compaction sweep
    kStats,         ///< interval-stats snapshotting
    kNumPhases,
};

const char *hostPhaseName(HostPhase p);

class HostProfiler
{
  public:
    explicit HostProfiler(Cycle samplePeriod)
        : period(samplePeriod ? samplePeriod : 1),
          started(Clock::now())
    {}

    /** Called once per simulated cycle before any tick. */
    void
    beginCycle(Cycle now)
    {
        ++totalCycles_;
        sampling_ = (now % period) == 0;
        if (sampling_)
            ++sampledCycles_;
    }

    /** True when the current cycle is a sampled one; instrumented
     * tick paths switch to their timed variants only then. */
    bool sampling() const { return sampling_; }

    void
    add(HostPhase p, std::uint64_t ns)
    {
        ns_[static_cast<std::size_t>(p)] += ns;
    }

    /** RAII scope timer; charge on destruction. */
    class Timer
    {
      public:
        Timer(HostProfiler &prof, HostPhase phase)
            : p(prof), ph(phase), t0(Clock::now())
        {}
        ~Timer()
        {
            p.add(ph, static_cast<std::uint64_t>(
                          std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              Clock::now() - t0)
                              .count()));
        }
        Timer(const Timer &) = delete;
        Timer &operator=(const Timer &) = delete;

      private:
        HostProfiler &p;
        HostPhase ph;
        std::chrono::steady_clock::time_point t0;
    };

    /** Stop the wall clock. Idempotent. */
    void
    finish()
    {
        if (finished_)
            return;
        wallNs_ = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - started)
                .count());
        finished_ = true;
    }

    Cycle samplePeriod() const { return period; }
    Cycle totalCycles() const { return totalCycles_; }
    Cycle sampledCycles() const { return sampledCycles_; }
    double wallSec() const { return wallNs_ * 1e-9; }

    std::uint64_t
    phaseNs(HostPhase p) const
    {
        return ns_[static_cast<std::size_t>(p)];
    }

    /** Sampled nanoseconds per phase, in enum order, zero buckets
     * included (stable schema for JSON emission). */
    std::vector<std::pair<std::string, std::uint64_t>> table() const;

  private:
    using Clock = std::chrono::steady_clock;

    Cycle period;
    Clock::time_point started;
    bool sampling_ = false;
    bool finished_ = false;
    Cycle totalCycles_ = 0;
    Cycle sampledCycles_ = 0;
    std::uint64_t wallNs_ = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(HostPhase::kNumPhases)>
        ns_{};
};

} // namespace fa

#endif // FA_COMMON_HOST_PROF_HH
