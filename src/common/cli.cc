#include "common/cli.hh"

#include <cerrno>
#include <cstdlib>
#include <iostream>

#include "common/log.hh"

namespace fa::cli {

// --- strict scalar parsing --------------------------------------------

namespace {

/** Common prologue: trims nothing, rejects empty tokens. */
void
checkNonEmpty(const std::string &v, const std::string &what)
{
    if (v.empty())
        fatal("empty value for %s", what.c_str());
}

} // namespace

std::uint64_t
parseU64(const std::string &v, const std::string &what)
{
    checkNonEmpty(v, what);
    errno = 0;
    char *end = nullptr;
    unsigned long long x = std::strtoull(v.c_str(), &end, 0);
    if (errno == ERANGE)
        fatal("value for %s out of range: '%s'", what.c_str(), v.c_str());
    if (end == v.c_str() || *end != '\0' || v[0] == '-')
        fatal("%s needs a non-negative integer, got '%s'", what.c_str(),
              v.c_str());
    return static_cast<std::uint64_t>(x);
}

unsigned
parseUnsigned(const std::string &v, const std::string &what)
{
    std::uint64_t x = parseU64(v, what);
    if (x > 0xffffffffull)
        fatal("value for %s out of range: '%s'", what.c_str(), v.c_str());
    return static_cast<unsigned>(x);
}

std::int64_t
parseI64(const std::string &v, const std::string &what)
{
    checkNonEmpty(v, what);
    errno = 0;
    char *end = nullptr;
    long long x = std::strtoll(v.c_str(), &end, 0);
    if (errno == ERANGE)
        fatal("value for %s out of range: '%s'", what.c_str(), v.c_str());
    if (end == v.c_str() || *end != '\0')
        fatal("%s needs an integer, got '%s'", what.c_str(), v.c_str());
    return static_cast<std::int64_t>(x);
}

double
parseDouble(const std::string &v, const std::string &what)
{
    checkNonEmpty(v, what);
    errno = 0;
    char *end = nullptr;
    double x = std::strtod(v.c_str(), &end);
    if (errno == ERANGE)
        fatal("value for %s out of range: '%s'", what.c_str(), v.c_str());
    if (end == v.c_str() || *end != '\0')
        fatal("%s needs a number, got '%s'", what.c_str(), v.c_str());
    return x;
}

unsigned
envUnsigned(const char *name, unsigned def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return parseUnsigned(v, std::string("env ") + name);
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return parseDouble(v, std::string("env ") + name);
}

std::string
envString(const char *name)
{
    const char *v = std::getenv(name);
    return v ? v : "";
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= s.size()) {
        auto comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

// --- Parser -----------------------------------------------------------

Parser::Parser(std::string prog, std::string summary)
    : progName(std::move(prog)), summaryText(std::move(summary))
{}

Parser::Option &
Parser::add(Kind kind, void *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    Option o;
    o.kind = kind;
    o.shortName = shortName;
    o.longName = longName;
    o.valueName = valueName;
    o.help = help;
    o.target = out;
    options.push_back(std::move(o));
    return options.back();
}

Parser &
Parser::flag(bool *out, const std::string &shortName,
             const std::string &longName, const std::string &help)
{
    add(Kind::kSwitch, out, shortName, longName, "", help);
    return *this;
}

Parser &
Parser::opt(std::string *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    add(Kind::kString, out, shortName, longName, valueName, help);
    return *this;
}

Parser &
Parser::opt(unsigned *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    add(Kind::kUnsigned, out, shortName, longName, valueName, help);
    return *this;
}

Parser &
Parser::opt(std::uint64_t *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    add(Kind::kU64, out, shortName, longName, valueName, help);
    return *this;
}

Parser &
Parser::opt(std::int64_t *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    add(Kind::kI64, out, shortName, longName, valueName, help);
    return *this;
}

Parser &
Parser::opt(double *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    add(Kind::kDouble, out, shortName, longName, valueName, help);
    return *this;
}

Parser &
Parser::opt(std::vector<std::string> *out, const std::string &shortName,
            const std::string &longName, const std::string &valueName,
            const std::string &help)
{
    add(Kind::kStringList, out, shortName, longName, valueName, help);
    return *this;
}

Parser &
Parser::alias(const std::string &longName)
{
    if (options.empty())
        panic("cli::Parser::alias() before any option");
    options.back().aliases.push_back(longName);
    return *this;
}

Parser &
Parser::positional(std::vector<std::string> *out, const std::string &name,
                   const std::string &help)
{
    positionals = out;
    positionalName = name;
    positionalHelp = help;
    return *this;
}

Parser &
Parser::epilog(const std::string &text)
{
    epilogText = text;
    return *this;
}

Parser::Option *
Parser::find(const std::string &spelling)
{
    for (Option &o : options) {
        if ((!o.shortName.empty() && spelling == o.shortName) ||
            spelling == o.longName)
            return &o;
        for (const std::string &a : o.aliases)
            if (spelling == a)
                return &o;
    }
    return nullptr;
}

void
Parser::assign(Option &o, const std::string &value,
               const std::string &spelling)
{
    switch (o.kind) {
      case Kind::kSwitch:
        panic("cli: assign to switch %s", spelling.c_str());
        break;
      case Kind::kString:
        *static_cast<std::string *>(o.target) = value;
        break;
      case Kind::kUnsigned:
        *static_cast<unsigned *>(o.target) =
            parseUnsigned(value, spelling);
        break;
      case Kind::kU64:
        *static_cast<std::uint64_t *>(o.target) =
            parseU64(value, spelling);
        break;
      case Kind::kI64:
        *static_cast<std::int64_t *>(o.target) =
            parseI64(value, spelling);
        break;
      case Kind::kDouble:
        *static_cast<double *>(o.target) = parseDouble(value, spelling);
        break;
      case Kind::kStringList:
        static_cast<std::vector<std::string> *>(o.target)
            ->push_back(value);
        break;
    }
    o.given = true;
}

ParseStatus
Parser::tryParse(int argc, char **argv, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return ParseStatus::kError;
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];

        if (a == "-h" || a == "--help")
            return ParseStatus::kHelp;

        // Long options may carry their value inline (--flag=value);
        // short options never split on '='.
        std::string inlineVal;
        bool hasInline = false;
        if (a.rfind("--", 0) == 0) {
            auto eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a = a.substr(0, eq);
                hasInline = true;
            }
        }

        if (!a.empty() && a[0] == '-' && a != "-") {
            Option *o = find(a);
            if (!o)
                return fail("unknown option '" + a + "'");
            if (o->kind == Kind::kSwitch) {
                if (hasInline)
                    return fail("option " + a + " takes no value");
                *static_cast<bool *>(o->target) = true;
                o->given = true;
                continue;
            }
            std::string value;
            if (hasInline) {
                value = inlineVal;
            } else {
                if (i + 1 >= argc)
                    return fail("missing value for " + a);
                value = argv[++i];
            }
            try {
                assign(*o, value, a);
            } catch (const FatalError &e) {
                return fail(e.message);
            }
            continue;
        }

        // Positional argument.
        if (!positionals)
            return fail("unexpected argument '" + std::string(argv[i]) +
                        "'");
        positionals->push_back(argv[i]);
    }
    return ParseStatus::kOk;
}

void
Parser::parse(int argc, char **argv)
{
    std::string err;
    switch (tryParse(argc, argv, &err)) {
      case ParseStatus::kOk:
        return;
      case ParseStatus::kHelp:
        printUsage(std::cout);
        std::exit(0);
      case ParseStatus::kError:
        std::cerr << progName << ": " << err << "\n";
        printUsage(std::cerr);
        std::exit(2);
    }
}

bool
Parser::seen(const std::string &name) const
{
    std::string longName =
        name.rfind("--", 0) == 0 ? name : "--" + name;
    for (const Option &o : options) {
        if (o.longName == longName || o.shortName == name)
            return o.given;
    }
    return false;
}

void
Parser::printUsage(std::ostream &os) const
{
    os << "usage: " << progName << " [options]";
    if (positionals)
        os << " [" << positionalName << "]";
    os << "\n";
    if (!summaryText.empty())
        os << summaryText << "\n";
    if (positionals && !positionalHelp.empty())
        os << "  " << positionalName << "  " << positionalHelp << "\n";

    // Left column: "-w, --workload NAME". Wrap help onto its own
    // indent when the column runs long.
    std::vector<std::string> lefts;
    std::size_t width = 0;
    for (const Option &o : options) {
        std::string l = "  ";
        l += o.shortName.empty() ? "    " : o.shortName + ", ";
        l += o.longName;
        if (!o.valueName.empty())
            l += " " + o.valueName;
        lefts.push_back(l);
        if (l.size() > width && l.size() <= 34)
            width = l.size();
    }
    for (std::size_t i = 0; i < options.size(); ++i) {
        os << lefts[i];
        if (lefts[i].size() > width)
            os << "\n" << std::string(width + 2, ' ');
        else
            os << std::string(width - lefts[i].size() + 2, ' ');
        os << options[i].help << "\n";
    }
    if (!epilogText.empty())
        os << epilogText;
}

} // namespace fa::cli
