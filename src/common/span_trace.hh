/**
 * @file
 * faprof simulated-side tracer: emits Chrome trace-event /
 * Perfetto-compatible JSON (schema `fa-trace-v1`) describing the
 * lifetime of every atomic transaction — dispatch, AQ lock
 * acquisition, remote lock denials and retries, fwd-chain hops,
 * commit, and SB drain — plus instant events for watchdog
 * victimizations, squash storms, and chaos injections.
 *
 * Track layout (stable across runs, asserted by tests):
 *   pid  = core id            (one Perfetto "process" per core)
 *   tid 0        = "events"   (core-level instants: watchdog, chaos)
 *   tid 1 + aqIdx = "aq N"    (span track for AQ entry N)
 *
 * An AQ entry holds at most one in-flight atomic at a time, so spans
 * on an aq track never overlap and synchronous B/E nesting is valid:
 *
 *   B atomic ─ B acquire ─ E ─ B window ─ E ─ B drain ─ E ─ E atomic
 *
 * Timestamps map 1 simulated cycle = 1 µs (the trace-event `ts`
 * unit), so Perfetto's time axis reads directly in cycles.
 *
 * Zero-cost when off: nothing in core/ or mem/ touches the tracer
 * except through a nullable pointer guard, same discipline as
 * pipeview and fasan.
 */

#ifndef FA_COMMON_SPAN_TRACE_HH
#define FA_COMMON_SPAN_TRACE_HH

#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "common/json.hh"
#include "common/types.hh"

namespace fa {

class SpanTracer
{
  public:
    /** Streams events to @p os as they arrive; call finish() (or let
     * the owning System do it) to close the JSON document. */
    explicit SpanTracer(std::ostream &os);

    /** Emit the metadata events naming every pid/tid track. Call once
     * before the first span. */
    void preamble(unsigned cores, unsigned aqEntries);

    /** Atomic entered the ROB and claimed AQ entry @p aqIdx: opens
     * the top-level "atomic" span and the "acquire" child. */
    void atomicDispatch(CoreId core, int aqIdx, SeqNum seq, Addr pc,
                        Cycle now);

    /** Value bound and AQ cacheline lock taken (or SQ-forwarded):
     * closes "acquire", opens the speculative "window" child.
     * @p source names where the value came from ("mem", "sq", ...);
     * @p chain is the fwd-chain depth (0 = direct). */
    void atomicAcquired(CoreId core, int aqIdx, Cycle now,
                        const char *source, unsigned chain);

    /** The atomic's load was bounced and re-queued (e.g. remote lock
     * or MSHR conflict): instant on the aq track. */
    void atomicRetry(CoreId core, int aqIdx, Cycle now);

    /** Store-queue forwarding chained this atomic onto @p fromSeq. */
    void atomicFwdHop(CoreId core, int aqIdx, SeqNum fromSeq,
                      unsigned chain, Cycle now);

    /** A remote core's invalidation/downgrade was denied because this
     * core's AQ entry holds the line locked. */
    void lockDenied(CoreId core, int aqIdx, Addr line,
                    CoreId requester, Cycle now);

    /** Atomic committed: closes "window", opens the "drain" child
     * covering SB drain until the unlocking store performs. */
    void atomicCommitted(CoreId core, int aqIdx, Cycle now,
                         unsigned sbDepth, Cycle drainCycles);

    /** Unlocking store performed and AQ entry released: closes
     * "drain" and the top-level "atomic" span. */
    void atomicUnlocked(CoreId core, int aqIdx, Cycle now);

    /** Atomic squashed before completing: closes whatever child is
     * open, then the top-level span, tagging the squash cause. */
    void atomicSquashed(CoreId core, int aqIdx, Cycle now,
                        const char *cause);

    /** Core-level instant on tid 0 (watchdog_victim,
     * chaos_squash_storm, chaos_stuck_lock, ...). */
    void coreInstant(CoreId core, const char *name, SeqNum seq,
                     Cycle now);

    /**
     * Close any spans still open (tagged truncated=true, in
     * deterministic (core, aqIdx) order) and terminate the JSON
     * document. Idempotent; further events are ignored.
     */
    void finish(Cycle now);

    /** Events emitted so far (metadata included). */
    std::uint64_t eventCount() const { return events; }

  private:
    enum class Child : std::uint8_t { kNone, kAcquire, kWindow,
                                      kDrain };

    struct Open
    {
        Child child = Child::kNone;
        SeqNum seq = kNoSeq;
    };

    static unsigned tidFor(int aqIdx) {
        return 1u + static_cast<unsigned>(aqIdx);
    }

    /** Start a trace-event record ({"ph":..,"pid":..,"tid":..,"ts"});
     * caller appends name/args and calls endEvent(). */
    void beginEvent(const char *ph, unsigned pid, unsigned tid,
                    Cycle ts);
    void endEvent();

    void beginSpan(unsigned pid, unsigned tid, const char *name,
                   Cycle ts);
    void endSpan(unsigned pid, unsigned tid, Cycle ts);
    void metadata(unsigned pid, unsigned tid, const char *kind,
                  const std::string &label);
    /** Close the open child span (if any) of @p open at @p ts. */
    void closeChild(unsigned pid, unsigned tid, Open &open, Cycle ts);

    std::ostream &out;
    JsonWriter jw;
    bool closed = false;
    std::uint64_t events = 0;
    /** Open top-level spans keyed (core, aqIdx); std::map keeps the
     * finish() sweep deterministic. */
    std::map<std::pair<CoreId, int>, Open> open;
};

} // namespace fa

#endif // FA_COMMON_SPAN_TRACE_HH
