#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace fa {

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (pendingKey) {
        // Value attaches to an already-emitted key.
        pendingKey = false;
        return;
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out << ',';
        needComma.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    out << '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    needComma.pop_back();
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    out << '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    needComma.pop_back();
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separator();
    out << '"' << escape(k) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    out << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    if (!std::isfinite(v)) {
        out << "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    out << "null";
    return *this;
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::size_t depth = 0;

    [[noreturn]] void
    fail(const char *what)
    {
        fatal("json parse error at offset %zu: %s", pos, what);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strfmt("expected '%c'", c).c_str());
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= text.size() || text[pos] != *p)
                fail("bad literal");
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return s;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"':  s += '"'; break;
              case '\\': s += '\\'; break;
              case '/':  s += '/'; break;
              case 'b':  s += '\b'; break;
              case 'f':  s += '\f'; break;
              case 'n':  s += '\n'; break;
              case 'r':  s += '\r'; break;
              case 't':  s += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned cp = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr,
                                 16));
                pos += 4;
                // Telemetry strings are ASCII; encode the BMP code
                // point as UTF-8 without surrogate handling.
                if (cp < 0x80) {
                    s += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    s += static_cast<char>(0xc0 | (cp >> 6));
                    s += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    s += static_cast<char>(0xe0 | (cp >> 12));
                    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    s += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        JsonValue v;
        if (c == '{') {
            ++pos;
            if (++depth > JsonValue::kMaxDepth)
                fail("nesting too deep");
            v.kind = JsonValue::Kind::kObject;
            skipWs();
            if (consume('}')) {
                --depth;
                return v;
            }
            while (true) {
                skipWs();
                std::string k = parseString();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(k), parseValue());
                skipWs();
                if (consume(','))
                    continue;
                expect('}');
                --depth;
                return v;
            }
        }
        if (c == '[') {
            ++pos;
            if (++depth > JsonValue::kMaxDepth)
                fail("nesting too deep");
            v.kind = JsonValue::Kind::kArray;
            skipWs();
            if (consume(']')) {
                --depth;
                return v;
            }
            while (true) {
                v.arr.push_back(parseValue());
                skipWs();
                if (consume(','))
                    continue;
                expect(']');
                --depth;
                return v;
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::kString;
            v.str = parseString();
            return v;
        }
        if (c == 't') {
            literal("true");
            v.kind = JsonValue::Kind::kBool;
            v.boolean = true;
            return v;
        }
        if (c == 'f') {
            literal("false");
            v.kind = JsonValue::Kind::kBool;
            v.boolean = false;
            return v;
        }
        if (c == 'n') {
            literal("null");
            v.kind = JsonValue::Kind::kNull;
            return v;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t end = 0;
            v.kind = JsonValue::Kind::kNumber;
            std::string tok = text.substr(pos);
            try {
                v.number = std::stod(tok, &end);
            } catch (...) {
                fail("bad number");
            }
            // A plain unsigned-integer token also keeps its exact
            // 64-bit value: the double alone truncates past 2^53.
            if (end > 0 && tok.find_first_not_of(
                               "0123456789", 0) >= end) {
                try {
                    std::size_t iend = 0;
                    v.exactInt = std::stoull(tok, &iend);
                    v.hasExactInt = (iend == end);
                } catch (...) {
                    v.hasExactInt = false;
                }
            }
            pos += end;
            return v;
        }
        fail("unexpected character");
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &k) const
{
    for (const auto &[name, val] : members)
        if (name == k)
            return &val;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &k) const
{
    const JsonValue *v = find(k);
    if (!v)
        fatal("json: missing key '%s'", k.c_str());
    return *v;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    Parser p{text};
    JsonValue v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing garbage after document");
    return v;
}

bool
JsonValue::tryParse(const std::string &text, JsonValue *out,
                    std::string *err)
{
    try {
        JsonValue v = parse(text);
        *out = std::move(v);
        return true;
    } catch (const FatalError &e) {
        if (err)
            *err = e.message;
        return false;
    }
}

} // namespace fa
