/**
 * @file
 * Text table printer used by the benchmark harnesses to emit the
 * rows/series of the paper's tables and figures.
 */

#ifndef FA_COMMON_TABLE_HH
#define FA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fa {

/**
 * Accumulates rows of string cells and prints them either aligned for
 * humans or as CSV for plotting scripts.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a full row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Start building a row cell by cell. */
    TablePrinter &cell(const std::string &value);
    TablePrinter &cell(double value, int precision = 2);
    TablePrinter &cell(std::uint64_t value);
    TablePrinter &cell(std::int64_t value);
    TablePrinter &cell(int value);
    /** Finish the row started with cell(). */
    void endRow();

    /** Print with aligned columns. */
    void print(std::ostream &os) const;

    /** Print as CSV. */
    void printCsv(std::ostream &os) const;

    size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> pending;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 2);

} // namespace fa

#endif // FA_COMMON_TABLE_HH
