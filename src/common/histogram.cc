#include "common/histogram.hh"

#include <bit>

namespace fa {

unsigned
Histogram::bucketOf(std::uint64_t value)
{
    if (value == 0)
        return 0;
    return 64 - static_cast<unsigned>(std::countl_zero(value));
}

std::uint64_t
Histogram::bucketLo(unsigned b)
{
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t
Histogram::bucketHi(unsigned b)
{
    if (b == 0)
        return 1;
    if (b >= 64)
        return ~std::uint64_t{0};
    return std::uint64_t{1} << b;
}

void
Histogram::record(std::uint64_t value)
{
    ++buckets[bucketOf(value)];
    ++n;
    total += value;
    if (value < minV)
        minV = value;
    if (value > maxV)
        maxV = value;
}

void
Histogram::merge(const Histogram &other)
{
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b] += other.buckets[b];
    n += other.n;
    total += other.total;
    if (other.n > 0 && other.minV < minV)
        minV = other.minV;
    if (other.maxV > maxV)
        maxV = other.maxV;
}

double
Histogram::mean() const
{
    return n == 0 ? 0.0
                  : static_cast<double>(total) / static_cast<double>(n);
}

double
Histogram::percentile(double q) const
{
    if (n == 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(min());
    if (q >= 1.0)
        return static_cast<double>(maxV);

    // Rank of the requested quantile (1-based) and the bucket
    // containing it.
    double rank = q * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        double before = static_cast<double>(seen);
        seen += buckets[b];
        if (static_cast<double>(seen) < rank)
            continue;
        // Clamp the interpolation range to the observed min/max so a
        // single-value distribution reports that value exactly.
        double lo = static_cast<double>(bucketLo(b));
        double hi = static_cast<double>(bucketHi(b));
        if (static_cast<double>(minV) > lo)
            lo = static_cast<double>(minV);
        if (static_cast<double>(maxV) + 1.0 < hi)
            hi = static_cast<double>(maxV) + 1.0;
        double frac = (rank - before) / static_cast<double>(buckets[b]);
        double v = lo + (hi - lo) * frac;
        return v > static_cast<double>(maxV)
            ? static_cast<double>(maxV) : v;
    }
    return static_cast<double>(maxV);
}

void
Histogram::forEachBucket(
    const std::function<void(std::uint64_t, std::uint64_t,
                             std::uint64_t)> &fn) const
{
    for (unsigned b = 0; b < kBuckets; ++b)
        if (buckets[b] != 0)
            fn(bucketLo(b), bucketHi(b), buckets[b]);
}

void
Histogram::restoreMeta(std::uint64_t count, std::uint64_t sum,
                       std::uint64_t min, std::uint64_t max)
{
    buckets.fill(0);
    n = count;
    total = sum;
    // toJson writes min as 0 when empty; the live empty histogram
    // keeps minV at its ~0 sentinel.
    minV = count == 0 ? ~std::uint64_t{0} : min;
    maxV = max;
}

void
Histogram::restoreBucket(std::uint64_t lo, std::uint64_t count)
{
    buckets[bucketOf(lo)] = count;
}

void
LatencyHists::merge(const LatencyHists &other)
{
    atomicLatency.merge(other.atomicLatency);
    sbDrain.merge(other.sbDrain);
    lockHold.merge(other.lockHold);
    fwdChain.merge(other.fwdChain);
    wdBackoff.merge(other.wdBackoff);
}

void
LatencyHists::forEach(
    const std::function<void(const std::string &,
                             const Histogram &)> &fn) const
{
    fn("atomicLatency", atomicLatency);
    fn("sbDrain", sbDrain);
    fn("lockHold", lockHold);
    fn("fwdChain", fwdChain);
    fn("wdBackoff", wdBackoff);
}

void
LatencyHists::forEachMut(
    const std::function<void(const std::string &, Histogram &)> &fn)
{
    fn("atomicLatency", atomicLatency);
    fn("sbDrain", sbDrain);
    fn("lockHold", lockHold);
    fn("fwdChain", fwdChain);
    fn("wdBackoff", wdBackoff);
}

} // namespace fa
