#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace fa {

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size())
        panic("TablePrinter row has %zu cells, expected %zu",
              cells.size(), headers.size());
    rows.push_back(std::move(cells));
}

TablePrinter &
TablePrinter::cell(const std::string &value)
{
    pending.push_back(value);
    return *this;
}

TablePrinter &
TablePrinter::cell(double value, int precision)
{
    return cell(fmtDouble(value, precision));
}

TablePrinter &
TablePrinter::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

TablePrinter &
TablePrinter::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

TablePrinter &
TablePrinter::cell(int value)
{
    return cell(std::to_string(value));
}

void
TablePrinter::endRow()
{
    addRow(std::move(pending));
    pending.clear();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(headers);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

} // namespace fa
