#include "isa/interp.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace fa::isa {

InterpResult
interpret(const Program &prog, MemImage &mem, std::uint64_t rand_seed,
          std::uint64_t max_steps)
{
    InterpResult res;
    std::uint64_t rand_index = 0;
    size_t pc = 0;

    while (res.instsExecuted < max_steps) {
        if (pc >= prog.code.size())
            fatal("interp '%s': pc %zu fell off the end",
                  prog.name.c_str(), pc);
        const Inst &inst = prog.code[pc];
        ++res.instsExecuted;
        size_t next_pc = pc + 1;
        auto &regs = res.regs;

        switch (inst.op) {
          case Op::kNop:
          case Op::kPause:
          case Op::kMfence:
            break;
          case Op::kMovi:
            regs[inst.dst] = inst.imm;
            break;
          case Op::kAlu:
            regs[inst.dst] =
                evalAlu(inst.fn, regs[inst.src1], regs[inst.src2]);
            break;
          case Op::kAddi:
            regs[inst.dst] = regs[inst.src1] + inst.imm;
            break;
          case Op::kLoad:
            regs[inst.dst] = mem.read(
                static_cast<Addr>(regs[inst.src1] + inst.imm));
            break;
          case Op::kStore:
            mem.write(static_cast<Addr>(regs[inst.src1] + inst.imm),
                      regs[inst.src2]);
            break;
          case Op::kRmw: {
            Addr a = static_cast<Addr>(regs[inst.src1] + inst.imm);
            std::int64_t old_val = mem.read(a);
            mem.write(a, applyRmw(inst.rmw, old_val, regs[inst.src2],
                                  regs[inst.src3]));
            regs[inst.dst] = old_val;
            break;
          }
          case Op::kLoadLinked:
            // Single-threaded reference: the reservation always holds.
            regs[inst.dst] = mem.read(
                static_cast<Addr>(regs[inst.src1] + inst.imm));
            break;
          case Op::kStoreCond:
            mem.write(static_cast<Addr>(regs[inst.src1] + inst.imm),
                      regs[inst.src2]);
            regs[inst.dst] = 0;
            break;
          case Op::kBranch:
            if (evalCond(inst.cond, regs[inst.src1], regs[inst.src2]))
                next_pc = static_cast<size_t>(inst.target);
            break;
          case Op::kJump:
            next_pc = static_cast<size_t>(inst.target);
            break;
          case Op::kRand:
            regs[inst.dst] = static_cast<std::int64_t>(
                mix64(rand_seed, rand_index++) %
                static_cast<std::uint64_t>(inst.imm));
            break;
          case Op::kHalt:
            res.halted = true;
            return res;
        }
        pc = next_pc;
    }
    return res;
}

} // namespace fa::isa
