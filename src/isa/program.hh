/**
 * @file
 * The workload instruction set: a small register machine with loads,
 * stores, atomic RMWs, branches and fences.
 *
 * Programs written in this IR are executed both by the out-of-order
 * core model (src/core) and by a sequential reference interpreter
 * (src/isa/interp.hh) used for equivalence testing.
 */

#ifndef FA_ISA_PROGRAM_HH
#define FA_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fa::isa {

/** Number of architectural registers. Register 0 is zero by
 * convention (programs never write it). */
constexpr unsigned kNumRegs = 32;

using Reg = std::uint8_t;

/** Instruction opcodes. */
enum class Op : std::uint8_t {
    kNop,       ///< no operation
    kPause,     ///< spin-loop hint; executes as a 1-cycle nop
    kMovi,      ///< dst = imm
    kAlu,       ///< dst = fn(src1, src2)
    kAddi,      ///< dst = src1 + imm
    kLoad,      ///< dst = mem[src1 + imm]
    kStore,     ///< mem[src1 + imm] = src2
    kRmw,       ///< atomic read-modify-write of mem[src1 + imm]
    kLoadLinked,///< dst = mem[src1 + imm], set the link/reservation
    kStoreCond, ///< if link held: mem[src1+imm]=src2, dst=0; else dst=1
    kBranch,    ///< conditional branch on (src1 cond src2)
    kJump,      ///< unconditional jump
    kMfence,    ///< full memory fence (x86 MFENCE)
    kRand,      ///< dst = deterministic pseudo-random in [0, imm)
    kHalt,      ///< stop this thread
};

/** ALU functions for Op::kAlu. */
enum class AluFn : std::uint8_t {
    kAdd, kSub, kAnd, kOr, kXor, kMul, kShl, kShr, kLt, kEq,
};

/** Atomic read-modify-write kinds (paper §2). */
enum class RmwKind : std::uint8_t {
    kFetchAdd,    ///< dst = old; mem = old + src2
    kTestAndSet,  ///< dst = old; mem = 1
    kExchange,    ///< dst = old; mem = src2
    kCompareSwap, ///< dst = old; mem = (old == src2) ? src3 : old
};

/** Branch conditions (comparing src1 against src2). */
enum class BranchCond : std::uint8_t {
    kEq, kNe, kLt, kGe,
};

/**
 * Per-site atomic-mode annotation. The fence/mode synthesizer
 * (analysis/synth) pins individual RMW instructions to one of the
 * paper's flavours; kInherit (the default, and the only value plain
 * hand-written programs use) keeps the machine-wide
 * core::AtomicsMode. Spelled as a mnemonic suffix in assembly:
 * `fetchadd.spec r3, [r1], r2`.
 */
enum class RmwModeHint : std::uint8_t {
    kInherit, kFenced, kSpec, kFree, kFreeFwd,
};

/** Assembly suffix for a hint: "" for kInherit, ".fenced", ... */
const char *rmwModeHintSuffix(RmwModeHint hint);

/** Parse a suffix spelling ("fenced"|"spec"|"free"|"freefwd");
 * returns false on unknown names (kInherit has no spelling). */
bool parseRmwModeHint(const std::string &name, RmwModeHint *out);

/**
 * One static instruction. A fixed-size POD so programs are cheap to
 * copy and index.
 */
struct Inst
{
    Op op = Op::kNop;
    AluFn fn = AluFn::kAdd;
    RmwKind rmw = RmwKind::kFetchAdd;
    BranchCond cond = BranchCond::kEq;
    Reg dst = 0;
    Reg src1 = 0;
    Reg src2 = 0;
    Reg src3 = 0;
    std::int64_t imm = 0;
    std::int32_t target = 0;   ///< branch/jump destination (pc index)
    std::uint8_t latency = 0;  ///< 0 = class default execution latency
    RmwModeHint rmwMode = RmwModeHint::kInherit;  ///< kRmw only

    bool isMemRef() const
    {
        return op == Op::kLoad || op == Op::kStore || op == Op::kRmw;
    }
};

/**
 * A static program executed by one thread. Execution starts at pc 0
 * with all registers zero and runs until kHalt.
 */
struct Program
{
    std::string name;
    std::vector<Inst> code;

    /**
     * Check structural validity (targets in range, registers legal,
     * a halt is reachable-ish i.e. present). Calls fatal() on error.
     */
    void validate() const;

    /** Human-readable disassembly of one instruction. */
    static std::string disasm(const Inst &inst);
};

/** Evaluate an ALU function (shared by core and interpreter). */
std::int64_t evalAlu(AluFn fn, std::int64_t a, std::int64_t b);

/** Evaluate a branch condition (shared by core and interpreter). */
bool evalCond(BranchCond cond, std::int64_t a, std::int64_t b);

/**
 * Apply an RMW: returns the new memory value given old value and
 * operands (shared by core and interpreter).
 */
std::int64_t applyRmw(RmwKind kind, std::int64_t old_val,
                      std::int64_t operand, std::int64_t desired);

} // namespace fa::isa

#endif // FA_ISA_PROGRAM_HH
