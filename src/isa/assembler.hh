/**
 * @file
 * Text assembler for the workload IR: parse a human-readable program
 * (the same syntax Program::disasm emits, plus labels and comments)
 * into a validated Program. Lets users script custom workloads for
 * fasim without recompiling.
 *
 * Syntax, one instruction per line:
 *
 *     ; comments run to end of line (also '#')
 *     start:                      ; label definition
 *         movi  r1, 0x20000
 *         movi  r2, 1
 *     loop:
 *         fetchadd r3, [r1 + 0], r2
 *         addi  r4, r4, -1
 *         bne   r4, r0, loop
 *         halt
 *
 * Mnemonics: nop, pause, movi, add/sub/and/or/xor/mul/shl/shr/lt/eq,
 * addi, load, store, fetchadd, tas, xchg, cas, ll, sc, beq/bne/blt/
 * bge, jump, mfence, rand, halt. Memory operands are
 * `[rN]` or `[rN + imm]` (imm may be negative or hex).
 */

#ifndef FA_ISA_ASSEMBLER_HH
#define FA_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace fa::isa {

/**
 * Assemble `source` into a validated Program.
 * Calls fatal() (throws FatalError) with a line number on any
 * syntax, operand, or label error.
 */
Program assemble(const std::string &name, const std::string &source);

/** Assemble the contents of a file. */
Program assembleFile(const std::string &path);

/**
 * Serialize a program back to assembler-accepted text. Unlike
 * Program::disasm — whose `@N` branch targets the assembler cannot
 * parse — branch/jump targets are emitted as `L<pc>` labels, so
 * `assemble(name, writeAsm(prog))` reproduces `prog.code` exactly.
 * This is the on-disk format of soak-harness reproducers.
 */
std::string writeAsm(const Program &prog);

} // namespace fa::isa

#endif // FA_ISA_ASSEMBLER_HH
