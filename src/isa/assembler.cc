#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "isa/builder.hh"

namespace fa::isa {

namespace {

/** Tokenizer for one source line: splits on whitespace and commas,
 * keeps bracketed memory operands together. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_brackets = false;
    for (char ch : line) {
        if (ch == ';' || ch == '#')
            break;
        if (ch == '[')
            in_brackets = true;
        if (ch == ']')
            in_brackets = false;
        if (!in_brackets && (std::isspace(ch) || ch == ',')) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

class Assembler
{
  public:
    Assembler(const std::string &name, const std::string &source)
        : builder(name), src(source)
    {
    }

    Program
    run()
    {
        std::istringstream in(src);
        std::string line;
        lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            parseLine(line);
        }
        for (const auto &[label, uses] : pendingUses) {
            if (bound.find(label) == bound.end())
                fatal("line %d: undefined label '%s'", uses.front(),
                      label.c_str());
        }
        return builder.build();
    }

  private:
    Reg
    parseReg(const std::string &tok) const
    {
        if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
            fatal("line %d: expected register, got '%s'", lineNo,
                  tok.c_str());
        char *end = nullptr;
        long v = std::strtol(tok.c_str() + 1, &end, 10);
        if (*end != '\0' || v < 0 ||
            v >= static_cast<long>(kNumRegs)) {
            fatal("line %d: bad register '%s'", lineNo, tok.c_str());
        }
        return static_cast<Reg>(v);
    }

    std::int64_t
    parseImm(const std::string &tok) const
    {
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 0);
        if (end == tok.c_str() || *end != '\0')
            fatal("line %d: bad immediate '%s'", lineNo, tok.c_str());
        return v;
    }

    /** Parse `[rN]` or `[rN + imm]` / `[rN - imm]`. */
    void
    parseMem(const std::string &tok, Reg &base, std::int64_t &imm) const
    {
        if (tok.size() < 2 || tok.front() != '[' || tok.back() != ']')
            fatal("line %d: expected memory operand, got '%s'", lineNo,
                  tok.c_str());
        std::string body = tok.substr(1, tok.size() - 2);
        // Strip inner whitespace.
        std::string s;
        for (char ch : body)
            if (!std::isspace(ch))
                s.push_back(ch);
        size_t plus = s.find('+', 1);
        size_t minus = s.find('-', 1);
        size_t cut = std::min(plus, minus);
        if (cut == std::string::npos) {
            base = parseReg(s);
            imm = 0;
        } else {
            base = parseReg(s.substr(0, cut));
            imm = parseImm(s.substr(s[cut] == '+' ? cut + 1 : cut));
        }
    }

    Label
    labelRef(const std::string &name)
    {
        auto it = labels.find(name);
        if (it != labels.end())
            return it->second;
        Label l = builder.newLabel();
        labels.emplace(name, l);
        pendingUses[name].push_back(lineNo);
        return l;
    }

    void
    bindLabel(const std::string &name)
    {
        auto it = labels.find(name);
        if (it == labels.end()) {
            Label l = builder.newLabel();
            labels.emplace(name, l);
            builder.bind(l);
        } else {
            if (bound.count(name))
                fatal("line %d: label '%s' defined twice", lineNo,
                      name.c_str());
            builder.bind(it->second);
        }
        bound.insert(name);
        pendingUses.erase(name);
    }

    void
    need(const std::vector<std::string> &t, size_t n) const
    {
        if (t.size() != n + 1)
            fatal("line %d: '%s' expects %zu operands", lineNo,
                  t[0].c_str(), n);
    }

    void
    parseLine(const std::string &line)
    {
        auto t = tokenize(line);
        if (t.empty())
            return;
        // Label definition?
        if (t[0].back() == ':') {
            bindLabel(t[0].substr(0, t[0].size() - 1));
            t.erase(t.begin());
            if (t.empty())
                return;
        }
        std::string op = t[0];
        for (char &ch : op)
            ch = static_cast<char>(std::tolower(ch));

        // RMW mnemonics take an optional per-site mode suffix
        // ("fetchadd.spec"); split it off before dispatch.
        RmwModeHint hint = RmwModeHint::kInherit;
        if (size_t dot = op.find('.'); dot != std::string::npos) {
            std::string suffix = op.substr(dot + 1);
            op = op.substr(0, dot);
            bool is_rmw = op == "fetchadd" || op == "tas" ||
                op == "xchg" || op == "cas";
            if (!is_rmw || !parseRmwModeHint(suffix, &hint))
                fatal("line %d: unknown mnemonic '%s'", lineNo,
                      t[0].c_str());
        }

        Reg base;
        std::int64_t imm;
        if (op == "nop") {
            need(t, 0);
            builder.nop();
        } else if (op == "pause") {
            need(t, 0);
            builder.pause();
        } else if (op == "halt") {
            need(t, 0);
            builder.halt();
        } else if (op == "mfence") {
            need(t, 0);
            builder.mfence();
        } else if (op == "movi") {
            need(t, 2);
            builder.movi(parseReg(t[1]), parseImm(t[2]));
        } else if (op == "addi") {
            need(t, 3);
            builder.addi(parseReg(t[1]), parseReg(t[2]),
                         parseImm(t[3]));
        } else if (op == "rand") {
            need(t, 2);
            builder.rand(parseReg(t[1]), parseImm(t[2]));
        } else if (op == "load") {
            need(t, 2);
            parseMem(t[2], base, imm);
            builder.load(parseReg(t[1]), base, imm);
        } else if (op == "ll") {
            need(t, 2);
            parseMem(t[2], base, imm);
            builder.loadLinked(parseReg(t[1]), base, imm);
        } else if (op == "store") {
            need(t, 2);
            parseMem(t[1], base, imm);
            builder.store(base, parseReg(t[2]), imm);
        } else if (op == "sc") {
            need(t, 3);
            parseMem(t[2], base, imm);
            builder.storeCond(parseReg(t[1]), base, parseReg(t[3]),
                              imm);
        } else if (op == "fetchadd") {
            need(t, 3);
            parseMem(t[2], base, imm);
            builder.fetchAdd(parseReg(t[1]), base, parseReg(t[3]),
                             imm);
            builder.rmwModeHint(hint);
        } else if (op == "tas") {
            need(t, 2);
            parseMem(t[2], base, imm);
            builder.testAndSet(parseReg(t[1]), base, imm);
            builder.rmwModeHint(hint);
        } else if (op == "xchg") {
            need(t, 3);
            parseMem(t[2], base, imm);
            builder.exchange(parseReg(t[1]), base, parseReg(t[3]),
                             imm);
            builder.rmwModeHint(hint);
        } else if (op == "cas") {
            need(t, 4);
            parseMem(t[2], base, imm);
            builder.compareSwap(parseReg(t[1]), base, parseReg(t[3]),
                                parseReg(t[4]), imm);
            builder.rmwModeHint(hint);
        } else if (op == "jump") {
            need(t, 1);
            builder.jump(labelRef(t[1]));
        } else if (op == "beq" || op == "bne" || op == "blt" ||
                   op == "bge") {
            need(t, 3);
            BranchCond cond = op == "beq" ? BranchCond::kEq
                : op == "bne"             ? BranchCond::kNe
                : op == "blt"             ? BranchCond::kLt
                                          : BranchCond::kGe;
            builder.branch(cond, parseReg(t[1]), parseReg(t[2]),
                           labelRef(t[3]));
        } else {
            static const std::unordered_map<std::string, AluFn> kFns =
                {{"add", AluFn::kAdd}, {"sub", AluFn::kSub},
                 {"and", AluFn::kAnd}, {"or", AluFn::kOr},
                 {"xor", AluFn::kXor}, {"mul", AluFn::kMul},
                 {"shl", AluFn::kShl}, {"shr", AluFn::kShr},
                 {"lt", AluFn::kLt},   {"eq", AluFn::kEq}};
            auto it = kFns.find(op);
            if (it == kFns.end())
                fatal("line %d: unknown mnemonic '%s'", lineNo,
                      op.c_str());
            need(t, 3);
            builder.alu(it->second, parseReg(t[1]), parseReg(t[2]),
                        parseReg(t[3]));
        }
    }

    ProgramBuilder builder;
    std::string src;
    int lineNo = 0;
    std::unordered_map<std::string, Label> labels;
    std::unordered_map<std::string, std::vector<int>> pendingUses;
    std::set<std::string> bound;
};

} // namespace

Program
assemble(const std::string &name, const std::string &source)
{
    return Assembler(name, source).run();
}

Program
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open program file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return assemble(path, ss.str());
}

std::string
writeAsm(const Program &prog)
{
    // Mark every branch/jump target so it gets a label line.
    std::vector<bool> is_target(prog.code.size(), false);
    for (const Inst &inst : prog.code) {
        if (inst.op == Op::kBranch || inst.op == Op::kJump)
            is_target.at(inst.target) = true;
    }

    std::ostringstream os;
    os << "; " << prog.name << "\n";
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        if (is_target[pc])
            os << "L" << pc << ":\n";
        std::string text = Program::disasm(prog.code[pc]);
        // disasm renders targets as `@N`, which the assembler cannot
        // parse; rewrite to the matching `LN` label reference ('@'
        // appears nowhere else in the syntax).
        for (char &ch : text)
            if (ch == '@')
                ch = 'L';
        os << "    " << text << "\n";
    }
    return os.str();
}

} // namespace fa::isa
