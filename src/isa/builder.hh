/**
 * @file
 * ProgramBuilder: a small assembler for the workload IR with label
 * fixups, a register allocator, and the synchronization idioms the
 * paper's workloads are built from (test-and-test-and-set spinlocks,
 * sense-reversing barriers, delay loops).
 */

#ifndef FA_ISA_BUILDER_HH
#define FA_ISA_BUILDER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace fa::isa {

/** Opaque label handle returned by newLabel(). */
struct Label
{
    int id = -1;
};

/**
 * Builds a Program instruction by instruction. All emit methods
 * return *this for chaining. Branch targets are labels, resolved when
 * build() is called.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    // --- registers -----------------------------------------------------

    /** The always-zero register (r0). */
    static Reg zero() { return 0; }

    /** Allocate a fresh scratch register; fatal() when exhausted. */
    Reg alloc();

    /** Number of registers still available. */
    unsigned regsLeft() const { return kNumRegs - nextReg; }

    // --- labels --------------------------------------------------------

    Label newLabel();
    /** Bind a label to the current position. */
    ProgramBuilder &bind(Label l);
    /** Create a label bound to the current position. */
    Label here();

    // --- plain instructions ---------------------------------------------

    ProgramBuilder &nop();
    ProgramBuilder &pause();
    ProgramBuilder &movi(Reg dst, std::int64_t imm);
    ProgramBuilder &alu(AluFn fn, Reg dst, Reg src1, Reg src2,
                        std::uint8_t latency = 0);
    ProgramBuilder &addi(Reg dst, Reg src1, std::int64_t imm);
    ProgramBuilder &load(Reg dst, Reg addr, std::int64_t imm = 0);
    ProgramBuilder &store(Reg addr, Reg src, std::int64_t imm = 0);
    ProgramBuilder &fetchAdd(Reg dst, Reg addr, Reg operand,
                             std::int64_t imm = 0);
    ProgramBuilder &testAndSet(Reg dst, Reg addr, std::int64_t imm = 0);
    ProgramBuilder &exchange(Reg dst, Reg addr, Reg val,
                             std::int64_t imm = 0);
    ProgramBuilder &compareSwap(Reg dst, Reg addr, Reg expected,
                                Reg desired, std::int64_t imm = 0);
    /**
     * Pin the most recently emitted instruction (which must be an
     * RMW) to a per-site atomics mode (assembly `fetchadd.spec`...).
     */
    ProgramBuilder &rmwModeHint(RmwModeHint hint);
    ProgramBuilder &loadLinked(Reg dst, Reg addr, std::int64_t imm = 0);
    ProgramBuilder &storeCond(Reg dst, Reg addr, Reg src,
                              std::int64_t imm = 0);
    ProgramBuilder &branch(BranchCond cond, Reg src1, Reg src2, Label l);
    ProgramBuilder &jump(Label l);
    ProgramBuilder &mfence();
    ProgramBuilder &rand(Reg dst, std::int64_t range);
    ProgramBuilder &halt();

    // --- synchronization idioms ------------------------------------------

    /**
     * Acquire a test-and-test-and-set spinlock at [addr_reg + imm].
     * Clobbers tmp.
     */
    ProgramBuilder &lockAcquire(Reg addr_reg, Reg tmp,
                                std::int64_t imm = 0);

    /**
     * Release a spinlock at [addr_reg + imm] with an atomic exchange,
     * as pthread-style mutex unlocks do (e.g. glibc's lock dec /
     * xchg). Back-to-back RMWs on the lock word are what enable the
     * paper's atomic-to-atomic forwarding chains (§3.3, §5.3).
     * Clobbers tmp.
     */
    ProgramBuilder &lockRelease(Reg addr_reg, Reg tmp,
                                std::int64_t imm = 0);

    /** Release a spinlock with a plain store (spinlock-style). */
    ProgramBuilder &lockReleasePlain(Reg addr_reg, std::int64_t imm = 0);

    /**
     * Atomic fetch-add built from an LL/SC retry loop (paper §2's
     * alternative primitive). Leaves the old value in dst.
     * Clobbers tmp and flag.
     */
    ProgramBuilder &llscFetchAdd(Reg dst, Reg addr, Reg operand,
                                 Reg tmp, Reg flag,
                                 std::int64_t imm = 0);

    /**
     * Sense-reversing barrier. Uses two cachelines at [bar_reg]: the
     * arrival counter at +0 and the generation word at +64.
     * Clobbers the four scratch registers.
     */
    ProgramBuilder &barrier(Reg bar_reg, Reg n_threads_reg,
                            Reg t0, Reg t1, Reg t2, Reg t3);

    /** Busy-wait for roughly `iters` loop iterations. Clobbers tmp. */
    ProgramBuilder &delay(Reg tmp, std::int64_t iters);

    /** Number of instructions emitted so far. */
    int pc() const { return static_cast<int>(prog.code.size()); }

    /** Resolve labels, validate, and return the program. */
    Program build();

  private:
    ProgramBuilder &emit(Inst inst);

    Program prog;
    std::vector<int> labelPos;  ///< label id -> pc (-1 = unbound)
    unsigned nextReg = 1;       ///< r0 reserved as zero
};

} // namespace fa::isa

#endif // FA_ISA_BUILDER_HH
