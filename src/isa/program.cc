#include "isa/program.hh"

#include "common/log.hh"

namespace fa::isa {

void
Program::validate() const
{
    if (code.empty())
        fatal("program '%s' is empty", name.c_str());

    bool has_halt = false;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const Inst &inst = code[pc];
        if (inst.op == Op::kHalt)
            has_halt = true;
        if (inst.op == Op::kBranch || inst.op == Op::kJump) {
            if (inst.target < 0 ||
                static_cast<size_t>(inst.target) >= code.size()) {
                fatal("program '%s' pc %zu: branch target %d out of "
                      "range [0, %zu)", name.c_str(), pc, inst.target,
                      code.size());
            }
        }
        if (inst.dst >= kNumRegs || inst.src1 >= kNumRegs ||
            inst.src2 >= kNumRegs || inst.src3 >= kNumRegs) {
            fatal("program '%s' pc %zu: register out of range",
                  name.c_str(), pc);
        }
        bool writes = inst.op == Op::kMovi || inst.op == Op::kAlu ||
            inst.op == Op::kAddi || inst.op == Op::kLoad ||
            inst.op == Op::kRmw || inst.op == Op::kRand ||
            inst.op == Op::kLoadLinked || inst.op == Op::kStoreCond;
        if (writes && inst.dst == 0)
            fatal("program '%s' pc %zu: writes r0 (zero register)",
                  name.c_str(), pc);
        if (inst.op == Op::kRand && inst.imm <= 0)
            fatal("program '%s' pc %zu: rand range must be > 0",
                  name.c_str(), pc);
    }
    if (!has_halt)
        fatal("program '%s' has no halt", name.c_str());
}

const char *
rmwModeHintSuffix(RmwModeHint hint)
{
    switch (hint) {
      case RmwModeHint::kInherit: return "";
      case RmwModeHint::kFenced:  return ".fenced";
      case RmwModeHint::kSpec:    return ".spec";
      case RmwModeHint::kFree:    return ".free";
      case RmwModeHint::kFreeFwd: return ".freefwd";
    }
    return "";
}

bool
parseRmwModeHint(const std::string &name, RmwModeHint *out)
{
    if (name == "fenced")
        *out = RmwModeHint::kFenced;
    else if (name == "spec")
        *out = RmwModeHint::kSpec;
    else if (name == "free")
        *out = RmwModeHint::kFree;
    else if (name == "freefwd")
        *out = RmwModeHint::kFreeFwd;
    else
        return false;
    return true;
}

std::string
Program::disasm(const Inst &inst)
{
    auto reg = [](Reg r) { return "r" + std::to_string(r); };
    switch (inst.op) {
      case Op::kNop:
        return "nop";
      case Op::kPause:
        return "pause";
      case Op::kMovi:
        return strfmt("movi %s, %lld", reg(inst.dst).c_str(),
                      static_cast<long long>(inst.imm));
      case Op::kAlu: {
        static const char *names[] = {
            "add", "sub", "and", "or", "xor", "mul", "shl", "shr",
            "lt", "eq"};
        return strfmt("%s %s, %s, %s",
                      names[static_cast<int>(inst.fn)],
                      reg(inst.dst).c_str(), reg(inst.src1).c_str(),
                      reg(inst.src2).c_str());
      }
      case Op::kAddi:
        return strfmt("addi %s, %s, %lld", reg(inst.dst).c_str(),
                      reg(inst.src1).c_str(),
                      static_cast<long long>(inst.imm));
      case Op::kLoad:
        return strfmt("load %s, [%s + %lld]", reg(inst.dst).c_str(),
                      reg(inst.src1).c_str(),
                      static_cast<long long>(inst.imm));
      case Op::kStore:
        return strfmt("store [%s + %lld], %s", reg(inst.src1).c_str(),
                      static_cast<long long>(inst.imm),
                      reg(inst.src2).c_str());
      case Op::kRmw: {
        const char *suffix = rmwModeHintSuffix(inst.rmwMode);
        switch (inst.rmw) {
          case RmwKind::kFetchAdd:
          case RmwKind::kExchange:
            return strfmt("%s%s %s, [%s + %lld], %s",
                          inst.rmw == RmwKind::kFetchAdd ? "fetchadd"
                                                         : "xchg",
                          suffix,
                          reg(inst.dst).c_str(),
                          reg(inst.src1).c_str(),
                          static_cast<long long>(inst.imm),
                          reg(inst.src2).c_str());
          case RmwKind::kTestAndSet:
            return strfmt("tas%s %s, [%s + %lld]", suffix,
                          reg(inst.dst).c_str(),
                          reg(inst.src1).c_str(),
                          static_cast<long long>(inst.imm));
          case RmwKind::kCompareSwap:
            return strfmt("cas%s %s, [%s + %lld], %s, %s", suffix,
                          reg(inst.dst).c_str(),
                          reg(inst.src1).c_str(),
                          static_cast<long long>(inst.imm),
                          reg(inst.src2).c_str(),
                          reg(inst.src3).c_str());
        }
        return "<bad>";
      }
      case Op::kLoadLinked:
        return strfmt("ll %s, [%s + %lld]", reg(inst.dst).c_str(),
                      reg(inst.src1).c_str(),
                      static_cast<long long>(inst.imm));
      case Op::kStoreCond:
        return strfmt("sc %s, [%s + %lld], %s", reg(inst.dst).c_str(),
                      reg(inst.src1).c_str(),
                      static_cast<long long>(inst.imm),
                      reg(inst.src2).c_str());
      case Op::kBranch: {
        static const char *names[] = {"beq", "bne", "blt", "bge"};
        return strfmt("%s %s, %s, @%d",
                      names[static_cast<int>(inst.cond)],
                      reg(inst.src1).c_str(), reg(inst.src2).c_str(),
                      inst.target);
      }
      case Op::kJump:
        return strfmt("jump @%d", inst.target);
      case Op::kMfence:
        return "mfence";
      case Op::kRand:
        return strfmt("rand %s, %lld", reg(inst.dst).c_str(),
                      static_cast<long long>(inst.imm));
      case Op::kHalt:
        return "halt";
    }
    return "<bad>";
}

std::int64_t
evalAlu(AluFn fn, std::int64_t a, std::int64_t b)
{
    switch (fn) {
      case AluFn::kAdd: return a + b;
      case AluFn::kSub: return a - b;
      case AluFn::kAnd: return a & b;
      case AluFn::kOr:  return a | b;
      case AluFn::kXor: return a ^ b;
      case AluFn::kMul: return a * b;
      case AluFn::kShl: return a << (b & 63);
      case AluFn::kShr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (b & 63));
      case AluFn::kLt:  return a < b ? 1 : 0;
      case AluFn::kEq:  return a == b ? 1 : 0;
    }
    panic("bad AluFn %d", static_cast<int>(fn));
}

bool
evalCond(BranchCond cond, std::int64_t a, std::int64_t b)
{
    switch (cond) {
      case BranchCond::kEq: return a == b;
      case BranchCond::kNe: return a != b;
      case BranchCond::kLt: return a < b;
      case BranchCond::kGe: return a >= b;
    }
    panic("bad BranchCond %d", static_cast<int>(cond));
}

std::int64_t
applyRmw(RmwKind kind, std::int64_t old_val, std::int64_t operand,
         std::int64_t desired)
{
    switch (kind) {
      case RmwKind::kFetchAdd:    return old_val + operand;
      case RmwKind::kTestAndSet:  return 1;
      case RmwKind::kExchange:    return operand;
      case RmwKind::kCompareSwap:
        return old_val == operand ? desired : old_val;
    }
    panic("bad RmwKind %d", static_cast<int>(kind));
}

} // namespace fa::isa
