/**
 * @file
 * Sequential reference interpreter for workload programs.
 *
 * Executes a single thread's program with simple in-order semantics
 * against a word-granular memory image. Used to check that a 1-core
 * out-of-order simulation commits the exact same architectural state,
 * and as a fast functional debugger for workload authors.
 */

#ifndef FA_ISA_INTERP_HH
#define FA_ISA_INTERP_HH

#include <array>
#include <cstdint>

#include "common/mem_image.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace fa::isa {

using fa::MemImage;

/** Result of a reference interpretation. */
struct InterpResult
{
    std::uint64_t instsExecuted = 0;
    bool halted = false;   ///< false means the step limit was hit
    std::array<std::int64_t, kNumRegs> regs{};
};

/**
 * Run `prog` to halt (or until max_steps) against `mem`.
 *
 * @param prog      validated program
 * @param mem       memory image, updated in place
 * @param rand_seed seed for the kRand instruction stream
 * @param max_steps step limit guarding against livelock
 */
InterpResult interpret(const Program &prog, MemImage &mem,
                       std::uint64_t rand_seed,
                       std::uint64_t max_steps = 10'000'000);

} // namespace fa::isa

#endif // FA_ISA_INTERP_HH
