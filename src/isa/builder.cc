#include "isa/builder.hh"

#include "common/log.hh"

namespace fa::isa {

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog.name = std::move(name);
}

Reg
ProgramBuilder::alloc()
{
    if (nextReg >= kNumRegs)
        fatal("program '%s': out of registers", prog.name.c_str());
    return static_cast<Reg>(nextReg++);
}

Label
ProgramBuilder::newLabel()
{
    Label l{static_cast<int>(labelPos.size())};
    labelPos.push_back(-1);
    return l;
}

ProgramBuilder &
ProgramBuilder::bind(Label l)
{
    if (l.id < 0 || static_cast<size_t>(l.id) >= labelPos.size())
        fatal("program '%s': bind of invalid label", prog.name.c_str());
    if (labelPos[l.id] != -1)
        fatal("program '%s': label bound twice", prog.name.c_str());
    labelPos[l.id] = pc();
    return *this;
}

Label
ProgramBuilder::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

ProgramBuilder &
ProgramBuilder::emit(Inst inst)
{
    prog.code.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({});
}

ProgramBuilder &
ProgramBuilder::pause()
{
    Inst i;
    i.op = Op::kPause;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::movi(Reg dst, std::int64_t imm)
{
    Inst i;
    i.op = Op::kMovi;
    i.dst = dst;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::alu(AluFn fn, Reg dst, Reg src1, Reg src2,
                    std::uint8_t latency)
{
    Inst i;
    i.op = Op::kAlu;
    i.fn = fn;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = src2;
    i.latency = latency;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::addi(Reg dst, Reg src1, std::int64_t imm)
{
    Inst i;
    i.op = Op::kAddi;
    i.dst = dst;
    i.src1 = src1;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::load(Reg dst, Reg addr, std::int64_t imm)
{
    Inst i;
    i.op = Op::kLoad;
    i.dst = dst;
    i.src1 = addr;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::store(Reg addr, Reg src, std::int64_t imm)
{
    Inst i;
    i.op = Op::kStore;
    i.src1 = addr;
    i.src2 = src;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::fetchAdd(Reg dst, Reg addr, Reg operand, std::int64_t imm)
{
    Inst i;
    i.op = Op::kRmw;
    i.rmw = RmwKind::kFetchAdd;
    i.dst = dst;
    i.src1 = addr;
    i.src2 = operand;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::testAndSet(Reg dst, Reg addr, std::int64_t imm)
{
    Inst i;
    i.op = Op::kRmw;
    i.rmw = RmwKind::kTestAndSet;
    i.dst = dst;
    i.src1 = addr;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::exchange(Reg dst, Reg addr, Reg val, std::int64_t imm)
{
    Inst i;
    i.op = Op::kRmw;
    i.rmw = RmwKind::kExchange;
    i.dst = dst;
    i.src1 = addr;
    i.src2 = val;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::compareSwap(Reg dst, Reg addr, Reg expected, Reg desired,
                            std::int64_t imm)
{
    Inst i;
    i.op = Op::kRmw;
    i.rmw = RmwKind::kCompareSwap;
    i.dst = dst;
    i.src1 = addr;
    i.src2 = expected;
    i.src3 = desired;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::rmwModeHint(RmwModeHint hint)
{
    if (prog.code.empty() || prog.code.back().op != Op::kRmw)
        fatal("rmwModeHint: last emitted instruction is not an RMW");
    prog.code.back().rmwMode = hint;
    return *this;
}

ProgramBuilder &
ProgramBuilder::loadLinked(Reg dst, Reg addr, std::int64_t imm)
{
    Inst i;
    i.op = Op::kLoadLinked;
    i.dst = dst;
    i.src1 = addr;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::storeCond(Reg dst, Reg addr, Reg src, std::int64_t imm)
{
    Inst i;
    i.op = Op::kStoreCond;
    i.dst = dst;
    i.src1 = addr;
    i.src2 = src;
    i.imm = imm;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::branch(BranchCond cond, Reg src1, Reg src2, Label l)
{
    Inst i;
    i.op = Op::kBranch;
    i.cond = cond;
    i.src1 = src1;
    i.src2 = src2;
    i.target = -1 - l.id;  // encoded label reference, fixed in build()
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::jump(Label l)
{
    Inst i;
    i.op = Op::kJump;
    i.target = -1 - l.id;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::mfence()
{
    Inst i;
    i.op = Op::kMfence;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::rand(Reg dst, std::int64_t range)
{
    Inst i;
    i.op = Op::kRand;
    i.dst = dst;
    i.imm = range;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::halt()
{
    Inst i;
    i.op = Op::kHalt;
    return emit(i);
}

ProgramBuilder &
ProgramBuilder::lockAcquire(Reg addr_reg, Reg tmp, std::int64_t imm)
{
    // Test-and-test-and-set with randomized backoff after a failed
    // attempt (adaptive spinning, as glibc mutexes do): the backoff
    // staggers re-attempts so a lock handover does not wake the
    // whole herd into simultaneous TAS storms.
    //
    // try:  tas tmp, [addr]
    //       beq tmp, r0, done
    //       rand tmp, 8            ; backoff 0..7 pause slots
    // bk:   beq tmp, r0, spin
    //       pause
    //       addi tmp, tmp, -1
    //       jump bk
    // spin: load tmp, [addr]       ; wait on a plain load (TTAS)
    //       pause
    //       bne tmp, r0, spin
    //       jump try
    // done:
    Label try_l = here();
    testAndSet(tmp, addr_reg, imm);
    Label done = newLabel();
    branch(BranchCond::kEq, tmp, zero(), done);
    rand(tmp, 8);
    Label backoff = here();
    Label spin = newLabel();
    branch(BranchCond::kEq, tmp, zero(), spin);
    pause();
    addi(tmp, tmp, -1);
    jump(backoff);
    bind(spin);
    load(tmp, addr_reg, imm);
    pause();
    branch(BranchCond::kNe, tmp, zero(), spin);
    jump(try_l);
    bind(done);
    return *this;
}

ProgramBuilder &
ProgramBuilder::lockRelease(Reg addr_reg, Reg tmp, std::int64_t imm)
{
    return exchange(tmp, addr_reg, zero(), imm);
}

ProgramBuilder &
ProgramBuilder::lockReleasePlain(Reg addr_reg, std::int64_t imm)
{
    return store(addr_reg, zero(), imm);
}

ProgramBuilder &
ProgramBuilder::barrier(Reg bar_reg, Reg n_threads_reg,
                        Reg t0, Reg t1, Reg t2, Reg t3)
{
    // Sense-reversing barrier. The generation word lives one line
    // past the arrival counter (+64) so waiters' spin reads do not
    // contend with the arrival fetch-adds' cacheline lock.
    // t0 = generation before arrival
    load(t0, bar_reg, 64);
    // t1 = my arrival index
    movi(t2, 1);
    fetchAdd(t1, bar_reg, t2);
    addi(t1, t1, 1);
    Label wait = newLabel();
    Label done = newLabel();
    branch(BranchCond::kNe, t1, n_threads_reg, wait);
    // last arriver: reset the counter, bump the generation
    store(bar_reg, zero(), 0);
    addi(t3, t0, 1);
    store(bar_reg, t3, 64);
    jump(done);
    bind(wait);
    load(t3, bar_reg, 64);
    pause();
    branch(BranchCond::kEq, t3, t0, wait);
    bind(done);
    return *this;
}

ProgramBuilder &
ProgramBuilder::delay(Reg tmp, std::int64_t iters)
{
    if (iters <= 0)
        return *this;
    movi(tmp, iters);
    Label loop = here();
    addi(tmp, tmp, -1);
    branch(BranchCond::kNe, tmp, zero(), loop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::llscFetchAdd(Reg dst, Reg addr, Reg operand, Reg tmp,
                             Reg flag, std::int64_t imm)
{
    // retry: ll dst, [addr]
    //        add tmp, dst, operand
    //        sc flag, [addr], tmp
    //        bne flag, r0, retry     ; SC failed: spin
    Label retry = here();
    loadLinked(dst, addr, imm);
    alu(AluFn::kAdd, tmp, dst, operand);
    storeCond(flag, addr, tmp, imm);
    branch(BranchCond::kNe, flag, zero(), retry);
    return *this;
}

Program
ProgramBuilder::build()
{
    for (size_t pc_i = 0; pc_i < prog.code.size(); ++pc_i) {
        Inst &inst = prog.code[pc_i];
        if ((inst.op == Op::kBranch || inst.op == Op::kJump) &&
            inst.target < 0) {
            int label_id = -1 - inst.target;
            if (static_cast<size_t>(label_id) >= labelPos.size() ||
                labelPos[label_id] < 0) {
                fatal("program '%s' pc %zu: unbound label",
                      prog.name.c_str(), pc_i);
            }
            inst.target = labelPos[label_id];
        }
    }
    prog.validate();
    return prog;
}

} // namespace fa::isa
