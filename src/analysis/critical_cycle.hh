/**
 * @file
 * Shasha–Snir-style critical-cycle detection (after Alglave et al.,
 * "Don't sit on the fence"): find cycles through the union of
 * per-thread program order and cross-thread conflict edges (same
 * word, at least one write). A cycle whose program-order steps are
 * all enforced by TSO (or by an intervening MFENCE / atomic RMW) is
 * a *forbidden* outcome the hardware must preserve; a cycle with an
 * unprotected store->load step is *permitted* under TSO (the classic
 * store-buffering relaxation) and marks where a fence or atomic
 * would be needed for sequential consistency.
 */

#ifndef FA_ANALYSIS_CRITICAL_CYCLE_HH
#define FA_ANALYSIS_CRITICAL_CYCLE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hh"

namespace fa::analysis {

/** One access in a cycle: thread + index into its summary events. */
struct CycleNode
{
    unsigned thread = 0;
    int eventIdx = 0;

    bool
    operator==(const CycleNode &o) const
    {
        return thread == o.thread && eventIdx == o.eventIdx;
    }
};

/** One edge of a cycle (program order or conflict). */
struct CycleStep
{
    CycleNode from;
    CycleNode to;
    bool isPo = false;       ///< same-thread program-order step
    bool relaxed = false;    ///< store->load step TSO may reorder
    /** pcs of MFENCE/RMW instructions between from and to that order
     * the step anyway (only meaningful when relaxed). */
    std::vector<int> orderingPcs;

    /** Relaxed and with no fence/RMW protecting it. */
    bool
    unprotectedRelaxed() const
    {
        return relaxed && orderingPcs.empty();
    }
};

/** A detected cycle plus its TSO verdict. */
struct CriticalCycle
{
    std::vector<CycleStep> steps;
    /** True when some store->load step can actually reorder: the
     * non-SC outcome is observable under TSO. False means TSO (plus
     * any fences/RMWs on the cycle) forbids the outcome. */
    bool tsoPermitted = false;

    std::string describe(const std::vector<ThreadSummary> &threads) const;
};

/** Search limits; defaults comfortably cover litmus-sized programs. */
struct CycleOptions
{
    unsigned maxCycles = 256;
    std::uint64_t maxDfsSteps = 4'000'000;
    unsigned maxThreadsPerCycle = 8;
};

struct CycleAnalysis
{
    std::vector<CriticalCycle> cycles;
    bool truncated = false;       ///< a search limit was hit
    std::uint64_t dfsSteps = 0;
    unsigned permittedCycles = 0; ///< cycles with an unprotected W->R
    unsigned forbiddenCycles = 0;

    /** (thread, pc) of every fence/RMW that protects some relaxed
     * step of some cycle — these are REQUIRED for the forbidden
     * verdicts to hold; sorted and unique. */
    std::vector<std::pair<unsigned, int>> requiredOrderingPoints;
};

CycleAnalysis
findCriticalCycles(const std::vector<ThreadSummary> &threads,
                   const CycleOptions &opts = {});

} // namespace fa::analysis

#endif // FA_ANALYSIS_CRITICAL_CYCLE_HH
