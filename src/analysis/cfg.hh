/**
 * @file
 * Static program analysis substrate for falint: a per-thread control
 * flow graph over fa::isa::Program, a constant-propagation pass that
 * resolves the effective addresses litmus-style programs compute with
 * movi/addi/alu, and a classified list of static memory events
 * (loads, stores, RMWs, LL/SC, fences) that the higher-level passes
 * (critical cycles, fence redundancy, lock cycles) consume.
 */

#ifndef FA_ANALYSIS_CFG_HH
#define FA_ANALYSIS_CFG_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace fa::analysis {

/** Static classification of one memory-ordering-relevant instruction. */
enum class AccessKind : std::uint8_t {
    kLoad,        ///< Op::kLoad
    kLoadLinked,  ///< Op::kLoadLinked
    kStore,       ///< Op::kStore
    kStoreCond,   ///< Op::kStoreCond
    kRmw,         ///< Op::kRmw (atomic read-modify-write)
    kFence,       ///< Op::kMfence
};

const char *accessKindName(AccessKind kind);

/** One static memory event, in program (pc) order. */
struct StaticMemEvent
{
    int pc = 0;
    AccessKind kind = AccessKind::kLoad;
    bool addrKnown = false;  ///< constant propagation resolved it
    Addr addr = 0;           ///< word-aligned effective address
    bool inLoop = false;     ///< pc lies inside a natural loop body

    bool
    isWrite() const
    {
        return kind == AccessKind::kStore ||
            kind == AccessKind::kStoreCond || kind == AccessKind::kRmw;
    }
    bool
    isRead() const
    {
        return kind == AccessKind::kLoad ||
            kind == AccessKind::kLoadLinked || kind == AccessKind::kRmw;
    }
    /** Atomic RMWs order later loads and earlier stores like a fence. */
    bool
    isOrdering() const
    {
        return kind == AccessKind::kFence || kind == AccessKind::kRmw;
    }
    Addr line() const { return lineOf(addr); }
};

/** A basic block: a maximal single-entry straight-line pc range. */
struct BasicBlock
{
    int id = 0;
    int first = 0;  ///< first pc (inclusive)
    int last = 0;   ///< last pc (inclusive)
    std::vector<int> succs;
    std::vector<int> preds;
};

/** A natural loop detected from a CFG back edge. */
struct Loop
{
    int headPc = 0;   ///< loop header (back-edge target)
    int backPc = 0;   ///< pc of the branch/jump forming the back edge
};

/** Control flow graph over one thread's program. */
class Cfg
{
  public:
    explicit Cfg(const isa::Program &prog);

    const std::vector<BasicBlock> &blocks() const { return bbs; }
    const std::vector<Loop> &loops() const { return loopList; }
    const isa::Program &program() const { return *prog; }

    /** Block containing `pc` (-1 when out of range). */
    int blockOf(int pc) const;

    /** Does `pc` lie inside some [headPc, backPc] loop interval? */
    bool inLoop(int pc) const;

  private:
    const isa::Program *prog;
    std::vector<BasicBlock> bbs;
    std::vector<int> pcToBlock;
    std::vector<Loop> loopList;
};

/**
 * Everything the inter-thread passes need to know about one thread:
 * its CFG and its classified memory events with constant-propagated
 * addresses, in pc order (one event per static instruction).
 */
struct ThreadSummary
{
    unsigned thread = 0;
    std::string name;
    std::vector<StaticMemEvent> events;
    std::vector<Loop> loops;     ///< back-edge intervals of the CFG
    unsigned knownAddrEvents = 0;
    unsigned numBlocks = 0;

    /** Index into `events` of the event at `pc`; -1 if none. */
    int eventAt(int pc) const;
};

/**
 * Build the per-thread summary: construct the CFG, run constant
 * propagation to a fixpoint over it, and classify memory events.
 */
ThreadSummary summarizeThread(const isa::Program &prog, unsigned thread);

/** Convenience: summarize one program per thread. */
std::vector<ThreadSummary>
summarizePrograms(const std::vector<isa::Program> &progs);

} // namespace fa::analysis

#endif // FA_ANALYSIS_CFG_HH
