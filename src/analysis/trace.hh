/**
 * @file
 * Memory-event trace recording for the dynamic (axiomatic) checker.
 *
 * The core calls into a TraceRecorder at two well-defined points:
 * commit (architectural program order — loads, fences, the read half
 * of RMWs, and store registration) and store perform (the moment a
 * write becomes globally visible, which assigns the coherence-order
 * stamp). Reads capture their reads-from source exactly: a forwarded
 * load names the (thread, seq) of the store it forwarded from, and a
 * load that read the cache names the last recorded writer of that
 * word. Squashed instructions never reach commit, so the trace holds
 * exactly the committed execution.
 *
 * Beyond the committed memory events, the recorder keeps a second,
 * chronological *synchronization* stream: AQ line-lock acquisitions
 * and releases (including releases forced by a squash), SQ->AQ
 * forwarding hops, and pipeline squashes of in-flight atomics. The
 * predictive race analyzer (analysis/race) turns lock..unlock pairs
 * into exclusion windows and release->acquire happens-before edges;
 * a window that never closes is exactly a leaked lock.
 *
 * Recording is off unless sim::MachineConfig::recordMemTrace is set;
 * when off the core carries a null recorder pointer and pays one
 * branch per hook — cycles and RunResult JSON are bit-identical to a
 * build without the recorder.
 */

#ifndef FA_ANALYSIS_TRACE_HH
#define FA_ANALYSIS_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace fa::analysis {

/** Dynamic memory-event kinds. */
enum class EvKind : std::uint8_t {
    kRead,   ///< load / load-linked
    kWrite,  ///< store / successful store-conditional
    kRmw,    ///< atomic RMW: one event with a read and a write half
    kFence,  ///< committed MFENCE
};

const char *evKindName(EvKind kind);

constexpr std::uint64_t kNoStamp = 0;

/** One committed memory event of one thread. */
struct MemEvent
{
    CoreId thread = 0;
    SeqNum seq = kNoSeq;  ///< per-thread program order
    int pc = 0;
    EvKind kind = EvKind::kRead;
    Addr addr = 0;        ///< word address (0 for fences)

    std::int64_t valueRead = 0;
    std::int64_t valueWritten = 0;
    /** Global perform order of the write half (kNoStamp = no write
     * or not yet performed). Defines co per address. */
    std::uint64_t writeStamp = kNoStamp;

    /** Reads-from source: initial memory, or (rfThread, rfSeq). */
    bool rfInit = true;
    CoreId rfThread = 0;
    SeqNum rfSeq = kNoSeq;

    /** Cycle the instruction committed (architectural order). */
    Cycle commitCycle = 0;
    /** Cycle the access became visible: a read's value-binding
     * instant, a write's cache-perform instant. 0 = unknown (e.g. a
     * store still buffered when the run ended). */
    Cycle performCycle = 0;

    bool
    isWrite() const
    {
        return kind == EvKind::kWrite || kind == EvKind::kRmw;
    }
    bool
    isRead() const
    {
        return kind == EvKind::kRead || kind == EvKind::kRmw;
    }
};

/** Synchronization-stream event kinds (§3.1–§3.3 mechanisms). */
enum class SyncKind : std::uint8_t {
    kLock,    ///< AQ entry locked its line (load_lock bound from mem)
    kUnlock,  ///< the line became unlocked on this core
    kFwdHop,  ///< an atomic bound its value from an in-flight store
    kSquash,  ///< an in-flight atomic was squashed
};

const char *syncKindName(SyncKind kind);

/** One synchronization event, chronological across all cores. */
struct SyncEvent
{
    SyncKind kind = SyncKind::kLock;
    CoreId thread = 0;
    SeqNum seq = kNoSeq;  ///< owning (or squashed) instruction
    Addr line = 0;        ///< locked line (kLock/kUnlock)
    Cycle cycle = 0;
    SeqNum fwdFromSeq = kNoSeq;   ///< kFwdHop: source store
    std::uint32_t fwdChain = 0;   ///< kFwdHop: §3.3.4 chain depth
    /** Provenance: "drain" | "squash" for kUnlock; the squash cause
     * name ("watchdog", "branch", ...) for kSquash. */
    std::string cause;
};

class TraceRecorder
{
  public:
    /** Commit a read-side or fence event (load, LL, RMW, MFENCE).
     * For RMWs the write half is filled in by recordWritePerform.
     * `perform_cycle` is the value-binding instant captured at
     * perform time (== commit_cycle for fences). */
    void recordCommit(CoreId thread, SeqNum seq, int pc, EvKind kind,
                      Addr addr, std::int64_t value_read, bool rf_init,
                      CoreId rf_thread, SeqNum rf_seq,
                      Cycle commit_cycle, Cycle perform_cycle);

    /** Commit a store or successful store-conditional. A store
     * performs later (via the SB); an SC has already performed. */
    void recordStoreCommit(CoreId thread, SeqNum seq, int pc, Addr addr,
                           std::int64_t value, Cycle commit_cycle);

    /** A write became globally visible (cache write performed).
     * Assigns the next coherence stamp. */
    void recordWritePerform(CoreId thread, SeqNum seq, Addr addr,
                            std::int64_t value, Cycle perform_cycle);

    /** Reads-from source for a load reading the memory system: the
     * last recorded writer of `addr`. False = initial value. */
    bool currentWriter(Addr addr, CoreId *thread, SeqNum *seq) const;

    // --- synchronization stream ------------------------------------------

    /** An AQ entry locked `line` for the atomic (thread, seq). */
    void recordLock(CoreId thread, SeqNum seq, Addr line, Cycle now);

    /** `line` became unlocked on this core: the chain-final
     * store_unlock performed ("drain") or a squash released a held
     * lock ("squash"). Chain-internal releases whose lock a younger
     * forwarded atomic captured are not line unlocks and must not be
     * recorded. */
    void recordUnlock(CoreId thread, SeqNum seq, Addr line, Cycle now,
                      const char *cause);

    /** The atomic (thread, seq) bound its value from the in-flight
     * store (thread, from_seq) at forwarding depth `chain`. */
    void recordFwdHop(CoreId thread, SeqNum seq, SeqNum from_seq,
                      std::uint32_t chain, Cycle now);

    /** An in-flight atomic was squashed (never committed). */
    void recordSquash(CoreId thread, SeqNum seq, Cycle now,
                      const char *cause);

    const std::vector<MemEvent> &events() const { return evs; }
    const std::vector<SyncEvent> &syncEvents() const { return syncs; }
    std::size_t size() const { return evs.size(); }

  private:
    MemEvent &eventFor(CoreId thread, SeqNum seq);

    /** (thread, seq) packed into one key; seq stays far below 2^48
     * for any run this simulator can complete. */
    static std::uint64_t
    key(CoreId thread, SeqNum seq)
    {
        return (static_cast<std::uint64_t>(thread) << 48) |
            (seq & ((std::uint64_t{1} << 48) - 1));
    }

    std::vector<MemEvent> evs;
    std::vector<SyncEvent> syncs;
    std::unordered_map<std::uint64_t, std::size_t> byKey;
    std::unordered_map<Addr, std::pair<CoreId, SeqNum>> lastWriter;
    std::uint64_t nextStamp = 1;
};

} // namespace fa::analysis

#endif // FA_ANALYSIS_TRACE_HH
