/**
 * @file
 * Memory-event trace recording for the dynamic (axiomatic) checker.
 *
 * The core calls into a TraceRecorder at two well-defined points:
 * commit (architectural program order — loads, fences, the read half
 * of RMWs, and store registration) and store perform (the moment a
 * write becomes globally visible, which assigns the coherence-order
 * stamp). Reads capture their reads-from source exactly: a forwarded
 * load names the (thread, seq) of the store it forwarded from, and a
 * load that read the cache names the last recorded writer of that
 * word. Squashed instructions never reach commit, so the trace holds
 * exactly the committed execution.
 *
 * Recording is off unless sim::MachineConfig::recordMemTrace is set;
 * when off the core carries a null recorder pointer and pays one
 * branch per hook.
 */

#ifndef FA_ANALYSIS_TRACE_HH
#define FA_ANALYSIS_TRACE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace fa::analysis {

/** Dynamic memory-event kinds. */
enum class EvKind : std::uint8_t {
    kRead,   ///< load / load-linked
    kWrite,  ///< store / successful store-conditional
    kRmw,    ///< atomic RMW: one event with a read and a write half
    kFence,  ///< committed MFENCE
};

const char *evKindName(EvKind kind);

constexpr std::uint64_t kNoStamp = 0;

/** One committed memory event of one thread. */
struct MemEvent
{
    CoreId thread = 0;
    SeqNum seq = kNoSeq;  ///< per-thread program order
    int pc = 0;
    EvKind kind = EvKind::kRead;
    Addr addr = 0;        ///< word address (0 for fences)

    std::int64_t valueRead = 0;
    std::int64_t valueWritten = 0;
    /** Global perform order of the write half (kNoStamp = no write
     * or not yet performed). Defines co per address. */
    std::uint64_t writeStamp = kNoStamp;

    /** Reads-from source: initial memory, or (rfThread, rfSeq). */
    bool rfInit = true;
    CoreId rfThread = 0;
    SeqNum rfSeq = kNoSeq;

    bool
    isWrite() const
    {
        return kind == EvKind::kWrite || kind == EvKind::kRmw;
    }
    bool
    isRead() const
    {
        return kind == EvKind::kRead || kind == EvKind::kRmw;
    }
};

class TraceRecorder
{
  public:
    /** Commit a read-side or fence event (load, LL, RMW, MFENCE).
     * For RMWs the write half is filled in by recordWritePerform. */
    void recordCommit(CoreId thread, SeqNum seq, int pc, EvKind kind,
                      Addr addr, std::int64_t value_read, bool rf_init,
                      CoreId rf_thread, SeqNum rf_seq);

    /** Commit a store or successful store-conditional. A store
     * performs later (via the SB); an SC has already performed. */
    void recordStoreCommit(CoreId thread, SeqNum seq, int pc, Addr addr,
                           std::int64_t value);

    /** A write became globally visible (cache write performed).
     * Assigns the next coherence stamp. */
    void recordWritePerform(CoreId thread, SeqNum seq, Addr addr,
                            std::int64_t value);

    /** Reads-from source for a load reading the memory system: the
     * last recorded writer of `addr`. False = initial value. */
    bool currentWriter(Addr addr, CoreId *thread, SeqNum *seq) const;

    const std::vector<MemEvent> &events() const { return evs; }
    std::size_t size() const { return evs.size(); }

  private:
    MemEvent &eventFor(CoreId thread, SeqNum seq);

    /** (thread, seq) packed into one key; seq stays far below 2^48
     * for any run this simulator can complete. */
    static std::uint64_t
    key(CoreId thread, SeqNum seq)
    {
        return (static_cast<std::uint64_t>(thread) << 48) |
            (seq & ((std::uint64_t{1} << 48) - 1));
    }

    std::vector<MemEvent> evs;
    std::unordered_map<std::uint64_t, std::size_t> byKey;
    std::unordered_map<Addr, std::pair<CoreId, SeqNum>> lastWriter;
    std::uint64_t nextStamp = 1;
};

} // namespace fa::analysis

#endif // FA_ANALYSIS_TRACE_HH
