#include "analysis/trace.hh"

#include "common/log.hh"

namespace fa::analysis {

const char *
evKindName(EvKind kind)
{
    switch (kind) {
      case EvKind::kRead:  return "R";
      case EvKind::kWrite: return "W";
      case EvKind::kRmw:   return "U";
      case EvKind::kFence: return "F";
    }
    return "?";
}

const char *
syncKindName(SyncKind kind)
{
    switch (kind) {
      case SyncKind::kLock:   return "lock";
      case SyncKind::kUnlock: return "unlock";
      case SyncKind::kFwdHop: return "fwd_hop";
      case SyncKind::kSquash: return "squash";
    }
    return "?";
}

MemEvent &
TraceRecorder::eventFor(CoreId thread, SeqNum seq)
{
    auto [it, inserted] = byKey.try_emplace(key(thread, seq), evs.size());
    if (inserted) {
        MemEvent ev;
        ev.thread = thread;
        ev.seq = seq;
        evs.push_back(ev);
    }
    return evs[it->second];
}

void
TraceRecorder::recordCommit(CoreId thread, SeqNum seq, int pc,
                            EvKind kind, Addr addr,
                            std::int64_t value_read, bool rf_init,
                            CoreId rf_thread, SeqNum rf_seq,
                            Cycle commit_cycle, Cycle perform_cycle)
{
    MemEvent &ev = eventFor(thread, seq);
    ev.pc = pc;
    ev.kind = kind;
    ev.addr = addr;
    ev.valueRead = value_read;
    ev.rfInit = rf_init;
    ev.rfThread = rf_thread;
    ev.rfSeq = rf_seq;
    ev.commitCycle = commit_cycle;
    ev.performCycle = perform_cycle;
}

void
TraceRecorder::recordStoreCommit(CoreId thread, SeqNum seq, int pc,
                                 Addr addr, std::int64_t value,
                                 Cycle commit_cycle)
{
    // An SC performs at issue, before it commits; the perform hook may
    // have created the event (and stamped it) already. A plain store
    // commits first and performs later from the SB.
    MemEvent &ev = eventFor(thread, seq);
    ev.pc = pc;
    ev.kind = EvKind::kWrite;
    ev.addr = addr;
    ev.valueWritten = value;
    ev.commitCycle = commit_cycle;
}

void
TraceRecorder::recordWritePerform(CoreId thread, SeqNum seq, Addr addr,
                                  std::int64_t value,
                                  Cycle perform_cycle)
{
    MemEvent &ev = eventFor(thread, seq);
    if (ev.writeStamp != kNoStamp) {
        panic("trace: double perform of write t%u seq %llu", thread,
              static_cast<unsigned long long>(seq));
    }
    ev.addr = addr;
    ev.valueWritten = value;
    ev.writeStamp = nextStamp++;
    ev.performCycle = perform_cycle;
    lastWriter[addr] = {thread, seq};
}

void
TraceRecorder::recordLock(CoreId thread, SeqNum seq, Addr line,
                          Cycle now)
{
    SyncEvent ev;
    ev.kind = SyncKind::kLock;
    ev.thread = thread;
    ev.seq = seq;
    ev.line = line;
    ev.cycle = now;
    syncs.push_back(std::move(ev));
}

void
TraceRecorder::recordUnlock(CoreId thread, SeqNum seq, Addr line,
                            Cycle now, const char *cause)
{
    SyncEvent ev;
    ev.kind = SyncKind::kUnlock;
    ev.thread = thread;
    ev.seq = seq;
    ev.line = line;
    ev.cycle = now;
    ev.cause = cause;
    syncs.push_back(std::move(ev));
}

void
TraceRecorder::recordFwdHop(CoreId thread, SeqNum seq, SeqNum from_seq,
                            std::uint32_t chain, Cycle now)
{
    SyncEvent ev;
    ev.kind = SyncKind::kFwdHop;
    ev.thread = thread;
    ev.seq = seq;
    ev.cycle = now;
    ev.fwdFromSeq = from_seq;
    ev.fwdChain = chain;
    syncs.push_back(std::move(ev));
}

void
TraceRecorder::recordSquash(CoreId thread, SeqNum seq, Cycle now,
                            const char *cause)
{
    SyncEvent ev;
    ev.kind = SyncKind::kSquash;
    ev.thread = thread;
    ev.seq = seq;
    ev.cycle = now;
    ev.cause = cause;
    syncs.push_back(std::move(ev));
}

bool
TraceRecorder::currentWriter(Addr addr, CoreId *thread, SeqNum *seq) const
{
    auto it = lastWriter.find(addr);
    if (it == lastWriter.end())
        return false;
    *thread = it->second.first;
    *seq = it->second.second;
    return true;
}

} // namespace fa::analysis
