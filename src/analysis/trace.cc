#include "analysis/trace.hh"

#include "common/log.hh"

namespace fa::analysis {

const char *
evKindName(EvKind kind)
{
    switch (kind) {
      case EvKind::kRead:  return "R";
      case EvKind::kWrite: return "W";
      case EvKind::kRmw:   return "U";
      case EvKind::kFence: return "F";
    }
    return "?";
}

MemEvent &
TraceRecorder::eventFor(CoreId thread, SeqNum seq)
{
    auto [it, inserted] = byKey.try_emplace(key(thread, seq), evs.size());
    if (inserted) {
        MemEvent ev;
        ev.thread = thread;
        ev.seq = seq;
        evs.push_back(ev);
    }
    return evs[it->second];
}

void
TraceRecorder::recordCommit(CoreId thread, SeqNum seq, int pc,
                            EvKind kind, Addr addr,
                            std::int64_t value_read, bool rf_init,
                            CoreId rf_thread, SeqNum rf_seq)
{
    MemEvent &ev = eventFor(thread, seq);
    ev.pc = pc;
    ev.kind = kind;
    ev.addr = addr;
    ev.valueRead = value_read;
    ev.rfInit = rf_init;
    ev.rfThread = rf_thread;
    ev.rfSeq = rf_seq;
}

void
TraceRecorder::recordStoreCommit(CoreId thread, SeqNum seq, int pc,
                                 Addr addr, std::int64_t value)
{
    // An SC performs at issue, before it commits; the perform hook may
    // have created the event (and stamped it) already. A plain store
    // commits first and performs later from the SB.
    MemEvent &ev = eventFor(thread, seq);
    ev.pc = pc;
    ev.kind = EvKind::kWrite;
    ev.addr = addr;
    ev.valueWritten = value;
}

void
TraceRecorder::recordWritePerform(CoreId thread, SeqNum seq, Addr addr,
                                  std::int64_t value)
{
    MemEvent &ev = eventFor(thread, seq);
    if (ev.writeStamp != kNoStamp) {
        panic("trace: double perform of write t%u seq %llu", thread,
              static_cast<unsigned long long>(seq));
    }
    ev.addr = addr;
    ev.valueWritten = value;
    ev.writeStamp = nextStamp++;
    lastWriter[addr] = {thread, seq};
}

bool
TraceRecorder::currentWriter(Addr addr, CoreId *thread, SeqNum *seq) const
{
    auto it = lastWriter.find(addr);
    if (it == lastWriter.end())
        return false;
    *thread = it->second.first;
    *seq = it->second.second;
    return true;
}

} // namespace fa::analysis
