#include "analysis/lock_cycle.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/log.hh"

namespace fa::analysis {

const char *
deadlockKindName(DeadlockKind kind)
{
    switch (kind) {
      case DeadlockKind::kRmwRmw:   return "RMW-RMW (Figure 5)";
      case DeadlockKind::kStoreRmw: return "Store-RMW (Figure 6)";
      case DeadlockKind::kLoadRmw:  return "Load-RMW (Figure 7)";
    }
    return "?";
}

std::string
DeadlockReport::describe() const
{
    return strfmt(
        "%s: t%u %s line %#llx (pc %d) then locks %#llx (pc %d) | "
        "t%u %s line %#llx (pc %d) then locks %#llx (pc %d) — "
        "opposite acquisition order; expect watchdog recovery "
        "(SquashCause::kWatchdog) under free/freefwd, no deadlock "
        "under fenced/spec (%u site%s)",
        deadlockKindName(kind), threadA, "touches",
        static_cast<unsigned long long>(lineX), pcA1,
        static_cast<unsigned long long>(lineY), pcA2, threadB,
        "touches", static_cast<unsigned long long>(lineY), pcB1,
        static_cast<unsigned long long>(lineX), pcB2, occurrences,
        occurrences == 1 ? "" : "s");
}

std::string
FwdChainReport::describe(unsigned cap) const
{
    std::string s = strfmt(
        "t%u: loop at pc %d RMWs line %#llx %u time%s per iteration; "
        "back-to-back atomics forward store_unlock->load_lock across "
        "iterations%s (chain cap %u; watch fwdChainBreaks)", thread,
        firstPc, static_cast<unsigned long long>(line), rmwsPerIter,
        rmwsPerIter == 1 ? "" : "s",
        mayExceedCap ? " and may exceed the cap" : "", cap);
    if (inRmwRmwCycle) {
        s += strfmt(
            "; line sits inside an RMW-RMW inversion with t%u over "
            "%#llx — chain breaks here land mid-inversion",
            cyclePartner,
            static_cast<unsigned long long>(cycleOtherLine));
    }
    return s;
}

namespace {

/** Lock-relevant classification of the first access of a pair. */
enum class FirstKind : std::uint8_t { kRmw, kStore, kLoad };

FirstKind
firstKindOf(AccessKind k)
{
    switch (k) {
      case AccessKind::kRmw:
        return FirstKind::kRmw;
      case AccessKind::kStore:
      case AccessKind::kStoreCond:
        return FirstKind::kStore;
      default:
        return FirstKind::kLoad;
    }
}

DeadlockKind
classify(FirstKind a, FirstKind b)
{
    if (a == FirstKind::kRmw && b == FirstKind::kRmw)
        return DeadlockKind::kRmwRmw;
    if (a == FirstKind::kLoad || b == FirstKind::kLoad)
        return DeadlockKind::kLoadRmw;
    return DeadlockKind::kStoreRmw;
}

/** A deduplicated (first-access line -> RMW line) ordered pair. */
struct PairInfo
{
    int pc1 = 0;
    int pc2 = 0;
    unsigned count = 0;
};

using PairKey = std::tuple<Addr, Addr, FirstKind>;  // (first, rmw, kind)
using PairMap = std::map<PairKey, PairInfo>;

PairMap
collectPairs(const ThreadSummary &t, unsigned window)
{
    PairMap pairs;
    const auto &evs = t.events;
    for (size_t j = 0; j < evs.size(); ++j) {
        if (evs[j].kind != AccessKind::kRmw || !evs[j].addrKnown)
            continue;
        size_t lo = j > window ? j - window : 0;
        for (size_t i = lo; i < j; ++i) {
            const StaticMemEvent &e1 = evs[i];
            if (!e1.addrKnown || e1.kind == AccessKind::kFence)
                continue;
            if (e1.line() == evs[j].line())
                continue;
            PairKey key{e1.line(), evs[j].line(),
                        firstKindOf(e1.kind)};
            PairInfo &info = pairs[key];
            if (info.count == 0) {
                info.pc1 = e1.pc;
                info.pc2 = evs[j].pc;
            }
            ++info.count;
        }
    }
    return pairs;
}

} // namespace

LockCycleResult
analyzeLockCycles(const std::vector<ThreadSummary> &threads,
                  const LockCycleOptions &opts)
{
    LockCycleResult out;

    std::vector<PairMap> pairs;
    pairs.reserve(threads.size());
    for (const ThreadSummary &t : threads)
        pairs.push_back(collectPairs(t, opts.window));

    // Cross-thread inversion: thread a holds/touches X then locks Y
    // while thread b touches Y then locks X.
    for (size_t a = 0; a < threads.size(); ++a) {
        for (size_t b = a + 1; b < threads.size(); ++b) {
            for (const auto &[ka, ia] : pairs[a]) {
                const auto &[line_x, line_y, kind_a] = ka;
                for (FirstKind kind_b :
                     {FirstKind::kRmw, FirstKind::kStore,
                      FirstKind::kLoad}) {
                    auto it = pairs[b].find(
                        PairKey{line_y, line_x, kind_b});
                    if (it == pairs[b].end())
                        continue;
                    if (out.deadlocks.size() >= opts.maxReports)
                        return out;
                    DeadlockReport rep;
                    rep.kind = classify(kind_a, kind_b);
                    rep.threadA = threads[a].thread;
                    rep.threadB = threads[b].thread;
                    rep.lineX = line_x;
                    rep.lineY = line_y;
                    rep.pcA1 = ia.pc1;
                    rep.pcA2 = ia.pc2;
                    rep.pcB1 = it->second.pc1;
                    rep.pcB2 = it->second.pc2;
                    rep.occurrences =
                        std::min(ia.count, it->second.count);
                    out.deadlocks.push_back(rep);
                }
            }
        }
    }

    // Forwarding-chain sites: loops whose body RMWs one line.
    for (const ThreadSummary &t : threads) {
        for (const Loop &loop : t.loops) {
            std::map<Addr, FwdChainReport> by_line;
            for (const StaticMemEvent &e : t.events) {
                if (e.pc < loop.headPc || e.pc > loop.backPc)
                    continue;
                if (e.kind != AccessKind::kRmw || !e.addrKnown)
                    continue;
                FwdChainReport &rep = by_line[e.line()];
                if (rep.rmwsPerIter == 0) {
                    rep.thread = t.thread;
                    rep.line = e.line();
                    rep.firstPc = e.pc;
                }
                ++rep.rmwsPerIter;
            }
            for (auto &[line, rep] : by_line) {
                (void)line;
                // The loop's trip count is unknown statically, so any
                // cross-iteration chain can in principle reach the
                // cap; a single iteration exceeding it definitely
                // does.
                rep.mayExceedCap = true;
                if (out.chains.size() < opts.maxReports)
                    out.chains.push_back(rep);
            }
        }
    }

    // Cross-link: a chain whose line is one side of a detected
    // RMW-RMW inversion involving the same thread is a compound
    // site — the cap break interrupts an acquisition the inversion
    // already stresses, so its watchdog firings are expected.
    for (FwdChainReport &c : out.chains) {
        for (const DeadlockReport &d : out.deadlocks) {
            if (d.kind != DeadlockKind::kRmwRmw)
                continue;
            bool asA = d.threadA == c.thread &&
                       (d.lineX == c.line || d.lineY == c.line);
            bool asB = d.threadB == c.thread &&
                       (d.lineX == c.line || d.lineY == c.line);
            if (!asA && !asB)
                continue;
            c.inRmwRmwCycle = true;
            c.cyclePartner = asA ? d.threadB : d.threadA;
            c.cycleOtherLine = d.lineX == c.line ? d.lineY : d.lineX;
            break;
        }
    }
    return out;
}

} // namespace fa::analysis
