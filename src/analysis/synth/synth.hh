/**
 * @file
 * CEGAR fence & atomic-mode synthesis (the transform side of the
 * paper's claim that most fences around hardware atomics are
 * unnecessary).
 *
 * Given one program per thread and a safety spec — by default "the
 * reachable outcome set stays within the all-Fenced reference set",
 * optionally narrowed by explicit forbidden outcomes — the engine:
 *
 *  1. starts from the weakest candidate: every MFENCE removed and
 *     every RMW pinned to the weakest per-site mode for the target
 *     flavour (isa::RmwModeHint);
 *  2. model-checks the candidate exhaustively (mc::explore with
 *     structured outcome witnesses);
 *  3. localizes the first forbidden outcome's reorder edge — the
 *     specific (buffered store, passing read) pair its minimal
 *     witness used — and strengthens only that site: insert an
 *     MFENCE before the passing load, or demote the offending RMW
 *     one step down the mode lattice (freefwd -> free -> spec ->
 *     fenced);
 *  4. repeats until exhaustively safe, then runs a 1-minimality
 *     pass: each retained fence/demotion is weakened in isolation
 *     and must reintroduce a forbidden outcome, which is recorded as
 *     that site's necessity witness;
 *  5. re-checks the final program under all four global modes.
 *
 * The result serializes to a machine-checkable `fa-fence-cert-v1`
 * JSON certificate: checkCert() re-assembles the embedded programs
 * and independently re-validates every claim (reference set, final
 * passes, per-site necessity) with fresh explorations.
 */

#ifndef FA_ANALYSIS_SYNTH_SYNTH_HH
#define FA_ANALYSIS_SYNTH_SYNTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mc/explore.hh"
#include "analysis/mc/tso_model.hh"
#include "common/types.hh"
#include "core/core_config.hh"
#include "isa/program.hh"

namespace fa::analysis::synth {

/** What one retained strengthening is. */
enum class SiteKind : std::uint8_t {
    kFence,    ///< an MFENCE immediately before origPc
    kRmwMode,  ///< the RMW at origPc runs demoted from the target
};

const char *siteKindName(SiteKind kind);

/** A forbidden outcome: a conjunction of final-memory constraints
 * (absent words read as zero). An outcome matching every pair is a
 * spec violation. */
struct ForbidSpec
{
    std::vector<std::pair<Addr, std::int64_t>> eq;

    bool matches(const mc::Outcome &o) const;
    std::string describe() const;
};

struct SynthOpts
{
    /** Flavour the synthesized program targets; the weakest per-site
     * hint RMWs are pinned to. */
    core::AtomicsMode targetMode = core::AtomicsMode::kFreeFwd;
    /** Injected model fault the program must stay safe under. Under
     * faithful semantics (kNone) the four modes are architecturally
     * equivalent, so mode demotions only become load-bearing when a
     * fault disables a free-mode mechanism (e.g. commit-no-drain). */
    mc::Fault fault = mc::Fault::kNone;
    unsigned fwdChainCap = 32;
    std::uint64_t masterSeed = 1;
    std::uint64_t maxStates = 1'000'000;
    /** CEGAR iteration budget (each iteration strengthens exactly
     * one site, so the lattice height bounds the walk anyway). */
    unsigned maxIters = 128;
    /** Run the 1-minimality pass (off: keep the first safe
     * candidate, no necessity witnesses). */
    bool minimize = true;
    std::vector<ForbidSpec> forbid;
};

/** Why one retained site is load-bearing: what weakening it alone
 * reintroduces. */
struct NecessityWitness
{
    std::string kind;    ///< "outcome" or a violation kind
    std::string detail;  ///< outcome pretty() or violation detail
    std::vector<std::string> edges;  ///< described reorder edges
    std::uint64_t steps = 0;         ///< witness interleaving length
};

/** One retained strengthening, mapped into both programs. */
struct Decision
{
    SiteKind kind = SiteKind::kFence;
    unsigned thread = 0;
    int origPc = 0;     ///< position in the original program
    int patchedPc = 0;  ///< position in the patched program
    /** kFence: an MFENCE stood at origPc in the original program
     * (kept) rather than being newly inserted. */
    bool originalFence = false;
    /** kRmwMode: the retained demotion. */
    isa::RmwModeHint mode = isa::RmwModeHint::kInherit;
    NecessityWitness witness;

    std::string describe() const;
};

/** One CEGAR refinement step (the candidate-lattice walk). */
struct IterationLog
{
    unsigned step = 0;
    std::string bad;     ///< forbidden outcome / violation repaired
    std::string edge;    ///< localized reorder edge ("" = fallback)
    std::string action;  ///< strengthening applied
};

/** One final exhaustive pass of the patched program. */
struct ModePass
{
    core::AtomicsMode mode = core::AtomicsMode::kFenced;
    bool complete = false;
    std::uint64_t states = 0;
    std::uint64_t outcomes = 0;
};

/** Simulator speedup of the synthesized program over the all-Fenced
 * original (filled by measureSpeedup; informational in the cert). */
struct SpeedupReport
{
    bool measured = false;
    std::string machine;
    std::uint64_t baselineCycles = 0;  ///< original, all-Fenced
    std::uint64_t synthCycles = 0;     ///< patched, target mode
};

struct SynthResult
{
    bool ok = false;
    std::string error;

    std::string name;
    SynthOpts opts;
    std::vector<isa::Program> original;
    std::vector<isa::Program> patched;
    mc::MemInit init;

    /** Reference pass: original program, every RMW pinned kFenced,
     * global mode kFenced. */
    std::vector<std::string> refOutcomes;  ///< pretty(), id-sorted
    std::uint64_t refStates = 0;

    std::vector<IterationLog> iterations;
    std::vector<Decision> decisions;
    std::vector<ModePass> finalModes;
    SpeedupReport speedup;

    unsigned fencesOriginal = 0;
    unsigned fencesKept = 0;
    unsigned fencesInserted = 0;
    unsigned fencesRemoved = 0;
    unsigned rmwDemotions = 0;
};

/** Weakest per-site hint for a target flavour (what every RMW is
 * pinned to in the initial candidate). */
isa::RmwModeHint weakestHint(core::AtomicsMode target);

/** Run the CEGAR loop. Never throws for synthesis failures — check
 * result.ok / result.error. */
SynthResult synthesize(const std::string &name,
                       const std::vector<isa::Program> &progs,
                       const mc::MemInit &init, const SynthOpts &opts);

/** Run the detailed simulator on both programs and fill
 * result.speedup (baseline: original with fences and all RMWs
 * fenced, mode kFenced; synth: patched under the target mode). */
void measureSpeedup(SynthResult &result, const std::string &machine,
                    std::uint64_t seed, Cycle maxCycles = 50'000'000);

/** Serialize a successful result as a `fa-fence-cert-v1` JSON
 * document (deterministic byte-for-byte for a given result). */
std::string writeCert(const SynthResult &result);

struct CertCheck
{
    bool ok = false;
    std::string error;              ///< first failed check
    std::vector<std::string> notes; ///< one line per passed check
};

/** Independently re-validate every claim of a certificate: assemble
 * the embedded programs, re-run the reference and final-mode
 * explorations, and re-weaken each decision to confirm its necessity
 * witness. Trusts nothing but the spec parameters. */
CertCheck checkCert(const std::string &certText);

} // namespace fa::analysis::synth

#endif // FA_ANALYSIS_SYNTH_SYNTH_HH
