#include "analysis/synth/synth.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"

namespace fa::analysis::synth {

const char *
siteKindName(SiteKind kind)
{
    switch (kind) {
      case SiteKind::kFence:   return "fence";
      case SiteKind::kRmwMode: return "rmw-mode";
    }
    return "?";
}

bool
ForbidSpec::matches(const mc::Outcome &o) const
{
    for (const auto &[addr, want] : eq) {
        std::int64_t got = 0;
        for (const auto &kv : o.mem)
            if (kv.first == addr)
                got = kv.second;
        if (got != want)
            return false;
    }
    return !eq.empty();
}

std::string
ForbidSpec::describe() const
{
    std::string s;
    for (const auto &[addr, want] : eq) {
        if (!s.empty())
            s += " & ";
        s += strfmt("[0x%llx]=%lld", (unsigned long long)addr,
                    (long long)want);
    }
    return s;
}

isa::RmwModeHint
weakestHint(core::AtomicsMode target)
{
    switch (target) {
      case core::AtomicsMode::kFenced:  return isa::RmwModeHint::kFenced;
      case core::AtomicsMode::kSpec:    return isa::RmwModeHint::kSpec;
      case core::AtomicsMode::kFree:    return isa::RmwModeHint::kFree;
      case core::AtomicsMode::kFreeFwd: return isa::RmwModeHint::kFreeFwd;
    }
    return isa::RmwModeHint::kFreeFwd;
}

namespace {

const char *
hintIdent(isa::RmwModeHint hint)
{
    switch (hint) {
      case isa::RmwModeHint::kInherit: return "inherit";
      case isa::RmwModeHint::kFenced:  return "fenced";
      case isa::RmwModeHint::kSpec:    return "spec";
      case isa::RmwModeHint::kFree:    return "free";
      case isa::RmwModeHint::kFreeFwd: return "freefwd";
    }
    return "?";
}

/** Candidate point on the strengthening lattice: per thread, the set
 * of original pcs that get an MFENCE immediately before them (an
 * original fence at pc P "kept" is exactly P in this set), and the
 * per-site mode of every RMW. */
struct Candidate
{
    std::vector<std::set<int>> fenceAt;
    std::vector<std::map<int, isa::RmwModeHint>> rmwMode;
};

/** Position maps for one materialized thread. */
struct PatchMap
{
    std::vector<int> entry;         ///< orig pc -> patched entry pc
    std::vector<int> origOf;        ///< patched pc -> orig pc
    std::vector<char> isCandFence;  ///< patched pc is a candidate MFENCE
};

isa::Program
materializeThread(const isa::Program &orig, const std::set<int> &fences,
                  const std::map<int, isa::RmwModeHint> &hints,
                  PatchMap &map)
{
    isa::Program out;
    out.name = orig.name;
    const std::size_t n = orig.code.size();
    map.entry.assign(n, -1);
    map.origOf.clear();
    map.isCandFence.clear();

    for (std::size_t pc = 0; pc < n; ++pc) {
        map.entry[pc] = static_cast<int>(out.code.size());
        if (fences.count(static_cast<int>(pc))) {
            isa::Inst f;
            f.op = isa::Op::kMfence;
            out.code.push_back(f);
            map.origOf.push_back(static_cast<int>(pc));
            map.isCandFence.push_back(1);
        }
        isa::Inst inst = orig.code[pc];
        if (inst.op == isa::Op::kMfence)
            continue;  // candidate-controlled; dropped unless kept
        if (inst.op == isa::Op::kRmw)
            inst.rmwMode = hints.at(static_cast<int>(pc));
        out.code.push_back(inst);
        map.origOf.push_back(static_cast<int>(pc));
        map.isCandFence.push_back(0);
    }
    // A branch to a dropped trailing fence would map past the end;
    // clamp to the last emitted instruction.
    const int last = static_cast<int>(out.code.size()) - 1;
    for (std::size_t pc = 0; pc < n; ++pc)
        if (map.entry[pc] > last)
            map.entry[pc] = last;
    for (isa::Inst &inst : out.code) {
        if (inst.op == isa::Op::kBranch || inst.op == isa::Op::kJump)
            inst.target =
                map.entry[static_cast<std::size_t>(inst.target)];
    }
    out.validate();
    return out;
}

std::vector<isa::Program>
materialize(const std::vector<isa::Program> &orig, const Candidate &c,
            std::vector<PatchMap> &maps)
{
    std::vector<isa::Program> out;
    maps.assign(orig.size(), {});
    for (std::size_t t = 0; t < orig.size(); ++t)
        out.push_back(
            materializeThread(orig[t], c.fenceAt[t], c.rmwMode[t],
                              maps[t]));
    return out;
}

mc::ExploreResult
exploreProgs(const std::vector<isa::Program> &progs,
             const mc::MemInit &init, core::AtomicsMode mode,
             const SynthOpts &opts, bool witnesses)
{
    mc::ModelOpts mo;
    mo.mode = mode;
    mo.fwdChainCap = opts.fwdChainCap;
    mo.fault = opts.fault;
    mo.masterSeed = opts.masterSeed;
    mc::Model model(progs, mo);
    mc::ExploreOpts eo;
    eo.maxStates = opts.maxStates;
    eo.outcomeWitnesses = witnesses;
    return mc::explore(model, init, eo);
}

/** First spec violation of one exploration result, with its
 * localizing reorder edges. */
struct Bad
{
    bool found = false;
    bool isViolation = false;
    std::string kind;    ///< "outcome" or the violation kind
    std::string detail;  ///< outcome pretty() or violation detail
    std::vector<mc::ReorderEdge> edges;
    std::uint64_t steps = 0;
};

Bad
findBad(const mc::ExploreResult &r, const mc::ExploreResult &ref,
        const std::vector<ForbidSpec> &forbid)
{
    Bad bad;
    if (!r.violations.empty()) {
        const mc::ExploreViolation &v = r.violations.front();
        bad.found = true;
        bad.isViolation = true;
        bad.kind = v.kind;
        bad.detail = v.detail;
        bad.edges = v.edges;
        bad.steps = v.witness.size();
        return bad;
    }
    for (const mc::Outcome &o : r.outcomes) {
        bool is_bad = !ref.hasOutcome(o.id);
        if (!is_bad)
            for (const ForbidSpec &f : forbid)
                if (f.matches(o)) {
                    is_bad = true;
                    break;
                }
        if (!is_bad)
            continue;
        bad.found = true;
        bad.kind = "outcome";
        bad.detail = o.pretty();
        if (const mc::OutcomeWitness *w = r.witnessFor(o.id)) {
            bad.edges = w->edges;
            bad.steps = w->steps.size();
        }
        return bad;
    }
    return bad;
}

/** One lattice step down for an RMW site; "" when already at the
 * bottom (fenced). */
std::string
strengthenRmw(Candidate &c, unsigned t, int origPc)
{
    isa::RmwModeHint &h = c.rmwMode[t].at(origPc);
    isa::RmwModeHint next;
    switch (h) {
      case isa::RmwModeHint::kFreeFwd:
        next = isa::RmwModeHint::kFree;
        break;
      case isa::RmwModeHint::kFree:
        next = isa::RmwModeHint::kSpec;
        break;
      case isa::RmwModeHint::kSpec:
        next = isa::RmwModeHint::kFenced;
        break;
      default:
        return "";
    }
    h = next;
    return strfmt("demote rmw t%u pc=%d to %s", t, origPc,
                  hintIdent(next));
}

/**
 * Strengthen exactly one site to break `bad`. Preference order: the
 * witness's own reorder edges (an atomic that bound early gets
 * demoted; a plain store passed by a plain load gets an MFENCE
 * before the load), then restoring a removed original fence, then
 * demoting any RMW still above the bottom of the lattice. Returns
 * the action description, "" when the candidate is saturated.
 */
std::string
repair(Candidate &c, const Bad &bad,
       const std::vector<PatchMap> &maps,
       const std::vector<isa::Program> &orig, std::string *edgeDesc)
{
    for (const mc::ReorderEdge &e : bad.edges) {
        const unsigned t = e.thread;
        const int opOrig =
            maps[t].origOf[static_cast<std::size_t>(e.opPc)];
        if (e.opKind == mc::TKind::kAtLock ||
            e.opKind == mc::TKind::kAtFwd) {
            std::string a = strengthenRmw(c, t, opOrig);
            if (!a.empty()) {
                *edgeDesc = e.describe();
                return a;
            }
        } else if (e.storeUnlock) {
            const int stOrig =
                maps[t].origOf[static_cast<std::size_t>(e.storePc)];
            std::string a = strengthenRmw(c, t, stOrig);
            if (!a.empty()) {
                *edgeDesc = e.describe();
                return a;
            }
        } else if (!c.fenceAt[t].count(opOrig)) {
            c.fenceAt[t].insert(opOrig);
            *edgeDesc = e.describe();
            return strfmt("insert mfence t%u before pc=%d", t, opOrig);
        }
    }
    // No edge is repairable (or the witness carries none, e.g. a
    // fault-induced violation): fall back to deterministic global
    // strengthening so the loop still converges on the strongest
    // candidate before giving up.
    for (unsigned t = 0; t < orig.size(); ++t) {
        for (std::size_t pc = 0; pc < orig[t].code.size(); ++pc) {
            if (orig[t].code[pc].op != isa::Op::kMfence)
                continue;
            const int p = static_cast<int>(pc);
            if (!c.fenceAt[t].count(p)) {
                c.fenceAt[t].insert(p);
                return strfmt("restore original mfence t%u pc=%d", t,
                              p);
            }
        }
    }
    for (unsigned t = 0; t < orig.size(); ++t) {
        for (auto &[pc, hint] : c.rmwMode[t]) {
            (void)hint;
            std::string a = strengthenRmw(c, t, pc);
            if (!a.empty())
                return "fallback: " + a;
        }
    }
    return "";
}

} // namespace

std::string
Decision::describe() const
{
    if (kind == SiteKind::kFence)
        return strfmt("%s mfence t%u before pc=%d (patched pc=%d)",
                      originalFence ? "keep" : "insert", thread,
                      origPc, patchedPc);
    return strfmt("demote rmw t%u pc=%d (patched pc=%d) to %s",
                  thread, origPc, patchedPc, hintIdent(mode));
}

SynthResult
synthesize(const std::string &name,
           const std::vector<isa::Program> &progs,
           const mc::MemInit &init, const SynthOpts &opts)
{
    SynthResult res;
    res.name = name;
    res.opts = opts;
    res.original = progs;
    res.init = init;
    if (progs.empty()) {
        res.error = "no programs";
        return res;
    }
    for (const isa::Program &p : progs) {
        p.validate();
        for (const isa::Inst &i : p.code)
            if (i.op == isa::Op::kMfence)
                ++res.fencesOriginal;
    }

    // Reference pass: the original program at its strongest — every
    // fence in place, every RMW pinned kFenced — defines the allowed
    // outcome set O_ref.
    std::vector<isa::Program> refProgs = progs;
    for (isa::Program &p : refProgs)
        for (isa::Inst &i : p.code)
            if (i.op == isa::Op::kRmw)
                i.rmwMode = isa::RmwModeHint::kFenced;
    mc::ExploreResult ref = exploreProgs(
        refProgs, init, core::AtomicsMode::kFenced, opts, false);
    if (!ref.complete) {
        res.error = "reference exploration truncated: " +
            ref.truncatedReason;
        return res;
    }
    if (!ref.violations.empty()) {
        res.error = "reference program violates [" +
            ref.violations.front().kind + "]: " +
            ref.violations.front().detail;
        return res;
    }
    for (const mc::Outcome &o : ref.outcomes)
        res.refOutcomes.push_back(o.pretty());
    res.refStates = ref.statesExplored;
    for (const ForbidSpec &f : opts.forbid) {
        for (const mc::Outcome &o : ref.outcomes) {
            if (f.matches(o)) {
                res.error = "spec infeasible: forbidden outcome '" +
                    o.pretty() +
                    "' is reachable even fully fenced (" +
                    f.describe() + ")";
                return res;
            }
        }
    }

    // Weakest candidate: all fences removed, all RMWs pinned to the
    // target flavour.
    Candidate cand;
    cand.fenceAt.resize(progs.size());
    cand.rmwMode.resize(progs.size());
    for (std::size_t t = 0; t < progs.size(); ++t)
        for (std::size_t pc = 0; pc < progs[t].code.size(); ++pc)
            if (progs[t].code[pc].op == isa::Op::kRmw)
                cand.rmwMode[t][static_cast<int>(pc)] =
                    weakestHint(opts.targetMode);

    // --- CEGAR loop ------------------------------------------------------
    std::vector<PatchMap> maps;
    bool safe = false;
    for (unsigned iter = 1; iter <= opts.maxIters; ++iter) {
        std::vector<isa::Program> candProgs =
            materialize(progs, cand, maps);
        mc::ExploreResult r = exploreProgs(
            candProgs, init, opts.targetMode, opts, true);
        if (!r.complete) {
            res.error = "candidate exploration truncated: " +
                r.truncatedReason;
            return res;
        }
        Bad bad = findBad(r, ref, opts.forbid);
        if (!bad.found) {
            safe = true;
            break;
        }
        IterationLog lg;
        lg.step = iter;
        lg.bad = bad.isViolation ? "[" + bad.kind + "] " + bad.detail
                                 : bad.detail;
        lg.action = repair(cand, bad, maps, progs, &lg.edge);
        res.iterations.push_back(lg);
        if (lg.action.empty()) {
            res.error = "cannot strengthen further: '" + lg.bad +
                "' persists at the strongest candidate";
            return res;
        }
    }
    if (!safe) {
        res.error = strfmt("iteration budget (%u) exhausted",
                           opts.maxIters);
        return res;
    }

    // --- 1-minimality ----------------------------------------------------
    // Weaken each retained site in isolation: still-safe sites are
    // dropped for good, load-bearing ones get a necessity witness.
    if (opts.minimize) {
        struct SiteRef
        {
            SiteKind kind;
            unsigned thread;
            int pc;
        };
        std::vector<SiteRef> sites;
        for (unsigned t = 0; t < cand.fenceAt.size(); ++t)
            for (int pc : cand.fenceAt[t])
                sites.push_back({SiteKind::kFence, t, pc});
        for (unsigned t = 0; t < cand.rmwMode.size(); ++t)
            for (const auto &[pc, hint] : cand.rmwMode[t])
                if (hint != weakestHint(opts.targetMode))
                    sites.push_back({SiteKind::kRmwMode, t, pc});

        unsigned step =
            static_cast<unsigned>(res.iterations.size());
        for (const SiteRef &site : sites) {
            Candidate weak = cand;
            if (site.kind == SiteKind::kFence)
                weak.fenceAt[site.thread].erase(site.pc);
            else
                weak.rmwMode[site.thread].at(site.pc) =
                    weakestHint(opts.targetMode);
            std::vector<PatchMap> wmaps;
            std::vector<isa::Program> weakProgs =
                materialize(progs, weak, wmaps);
            mc::ExploreResult r = exploreProgs(
                weakProgs, init, opts.targetMode, opts, true);
            if (!r.complete) {
                res.error = "minimality exploration truncated: " +
                    r.truncatedReason;
                return res;
            }
            Bad bad = findBad(r, ref, opts.forbid);
            if (!bad.found) {
                // Not load-bearing (earlier repairs made it moot):
                // drop it and record the pruning step.
                cand = weak;
                IterationLog lg;
                lg.step = ++step;
                lg.bad = "(minimality)";
                lg.action = site.kind == SiteKind::kFence
                    ? strfmt("drop unnecessary mfence t%u before "
                             "pc=%d", site.thread, site.pc)
                    : strfmt("undo unnecessary demotion of rmw t%u "
                             "pc=%d", site.thread, site.pc);
                res.iterations.push_back(lg);
                continue;
            }
            Decision d;
            d.kind = site.kind;
            d.thread = site.thread;
            d.origPc = site.pc;
            if (site.kind == SiteKind::kFence)
                d.originalFence =
                    progs[site.thread]
                        .code[static_cast<std::size_t>(site.pc)]
                        .op == isa::Op::kMfence;
            else
                d.mode = cand.rmwMode[site.thread].at(site.pc);
            d.witness.kind = bad.isViolation ? bad.kind : "outcome";
            d.witness.detail = bad.detail;
            d.witness.steps = bad.steps;
            for (const mc::ReorderEdge &e : bad.edges)
                d.witness.edges.push_back(e.describe());
            res.decisions.push_back(std::move(d));
        }
    } else {
        for (unsigned t = 0; t < cand.fenceAt.size(); ++t)
            for (int pc : cand.fenceAt[t]) {
                Decision d;
                d.kind = SiteKind::kFence;
                d.thread = t;
                d.origPc = pc;
                d.originalFence =
                    progs[t].code[static_cast<std::size_t>(pc)].op ==
                    isa::Op::kMfence;
                res.decisions.push_back(std::move(d));
            }
        for (unsigned t = 0; t < cand.rmwMode.size(); ++t)
            for (const auto &[pc, hint] : cand.rmwMode[t])
                if (hint != weakestHint(opts.targetMode)) {
                    Decision d;
                    d.kind = SiteKind::kRmwMode;
                    d.thread = t;
                    d.origPc = pc;
                    d.mode = hint;
                    res.decisions.push_back(std::move(d));
                }
    }

    // --- final program, maps, counts -------------------------------------
    res.patched = materialize(progs, cand, maps);
    for (Decision &d : res.decisions) {
        const PatchMap &m = maps[d.thread];
        if (d.kind == SiteKind::kFence) {
            d.patchedPc = m.entry[static_cast<std::size_t>(d.origPc)];
        } else {
            d.patchedPc = m.entry[static_cast<std::size_t>(d.origPc)] +
                (cand.fenceAt[d.thread].count(d.origPc) ? 1 : 0);
        }
    }
    for (unsigned t = 0; t < cand.fenceAt.size(); ++t) {
        for (int pc : cand.fenceAt[t]) {
            if (progs[t].code[static_cast<std::size_t>(pc)].op ==
                isa::Op::kMfence)
                ++res.fencesKept;
            else
                ++res.fencesInserted;
        }
    }
    res.fencesRemoved = res.fencesOriginal - res.fencesKept;
    for (unsigned t = 0; t < cand.rmwMode.size(); ++t)
        for (const auto &[pc, hint] : cand.rmwMode[t]) {
            (void)pc;
            if (hint != weakestHint(opts.targetMode))
                ++res.rmwDemotions;
        }

    // --- exhaustive pass under every global mode --------------------------
    // Every RMW site carries an explicit hint, so the global mode is
    // architecturally irrelevant to the patched program — which is
    // exactly the claim; check it rather than assume it.
    for (core::AtomicsMode mode :
         {core::AtomicsMode::kFenced, core::AtomicsMode::kSpec,
          core::AtomicsMode::kFree, core::AtomicsMode::kFreeFwd}) {
        mc::ExploreResult r =
            exploreProgs(res.patched, init, mode, opts, false);
        ModePass mp;
        mp.mode = mode;
        mp.complete = r.complete;
        mp.states = r.statesExplored;
        mp.outcomes = r.outcomes.size();
        res.finalModes.push_back(mp);
        if (!r.complete) {
            res.error = strfmt("final pass (%s) truncated: %s",
                               core::atomicsModeIdent(mode),
                               r.truncatedReason.c_str());
            return res;
        }
        Bad bad = findBad(r, ref, opts.forbid);
        if (bad.found) {
            res.error = strfmt("final pass (%s) unsafe: %s",
                               core::atomicsModeIdent(mode),
                               bad.detail.c_str());
            return res;
        }
    }

    res.ok = true;
    return res;
}

void
measureSpeedup(SynthResult &result, const std::string &machine,
               std::uint64_t seed, Cycle maxCycles)
{
    std::vector<isa::Program> baseline = result.original;
    for (isa::Program &p : baseline)
        for (isa::Inst &i : p.code)
            if (i.op == isa::Op::kRmw)
                i.rmwMode = isa::RmwModeHint::kFenced;
    sim::MemInit init(result.init.begin(), result.init.end());

    auto cfg = sim::MachineBuilder::preset(
                   machine,
                   static_cast<unsigned>(result.original.size()))
                   .cores(static_cast<unsigned>(
                       result.original.size()))
                   .build();
    sim::RunResult base =
        sim::runPrograms(cfg, core::AtomicsMode::kFenced, baseline,
                         init, seed, maxCycles);
    if (!base.finished)
        fatal("speedup baseline run failed: %s",
              base.failure.c_str());
    sim::RunResult syn =
        sim::runPrograms(cfg, result.opts.targetMode, result.patched,
                         init, seed, maxCycles);
    if (!syn.finished)
        fatal("speedup synthesized run failed: %s",
              syn.failure.c_str());

    result.speedup.measured = true;
    result.speedup.machine = machine;
    result.speedup.baselineCycles = base.cycles;
    result.speedup.synthCycles = syn.cycles;
}

} // namespace fa::analysis::synth
