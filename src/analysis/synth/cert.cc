#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/synth/synth.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "isa/assembler.hh"

namespace fa::analysis::synth {

namespace {

const char *
hintIdent(isa::RmwModeHint hint)
{
    switch (hint) {
      case isa::RmwModeHint::kInherit: return "inherit";
      case isa::RmwModeHint::kFenced:  return "fenced";
      case isa::RmwModeHint::kSpec:    return "spec";
      case isa::RmwModeHint::kFree:    return "free";
      case isa::RmwModeHint::kFreeFwd: return "freefwd";
    }
    return "?";
}

std::int64_t
asI64(const JsonValue &v)
{
    return v.hasExactInt ? static_cast<std::int64_t>(v.exactInt)
                         : static_cast<std::int64_t>(v.number);
}

} // namespace

std::string
writeCert(const SynthResult &r)
{
    std::ostringstream os;
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value("fa-fence-cert-v1");
    jw.key("name").value(r.name);
    jw.key("threads").value(
        static_cast<std::uint64_t>(r.original.size()));
    jw.key("targetMode")
        .value(core::atomicsModeIdent(r.opts.targetMode));
    jw.key("fault").value(mc::faultName(r.opts.fault));
    jw.key("fwdChainCap").value(r.opts.fwdChainCap);
    jw.key("masterSeed").value(r.opts.masterSeed);
    jw.key("maxStates").value(r.opts.maxStates);

    jw.key("spec").beginObject();
    jw.key("kind").value("subset-of-all-fenced");
    jw.key("forbid").beginArray();
    for (const ForbidSpec &f : r.opts.forbid) {
        jw.beginArray();
        for (const auto &[addr, val] : f.eq) {
            jw.beginArray();
            jw.value(static_cast<std::uint64_t>(addr));
            jw.value(static_cast<std::int64_t>(val));
            jw.endArray();
        }
        jw.endArray();
    }
    jw.endArray();
    jw.endObject();

    jw.key("programs").beginObject();
    jw.key("original").beginArray();
    for (const isa::Program &p : r.original)
        jw.value(isa::writeAsm(p));
    jw.endArray();
    jw.key("patched").beginArray();
    for (const isa::Program &p : r.patched)
        jw.value(isa::writeAsm(p));
    jw.endArray();
    jw.endObject();

    jw.key("init").beginArray();
    for (const auto &[addr, val] : r.init) {
        jw.beginArray();
        jw.value(static_cast<std::uint64_t>(addr));
        jw.value(static_cast<std::int64_t>(val));
        jw.endArray();
    }
    jw.endArray();

    jw.key("reference").beginObject();
    jw.key("outcomes").beginArray();
    for (const std::string &o : r.refOutcomes)
        jw.value(o);
    jw.endArray();
    jw.key("states").value(r.refStates);
    jw.endObject();

    jw.key("iterations").beginArray();
    for (const IterationLog &it : r.iterations) {
        jw.beginObject();
        jw.key("step").value(it.step);
        jw.key("bad").value(it.bad);
        jw.key("edge").value(it.edge);
        jw.key("action").value(it.action);
        jw.endObject();
    }
    jw.endArray();

    jw.key("decisions").beginArray();
    for (const Decision &d : r.decisions) {
        jw.beginObject();
        jw.key("kind").value(siteKindName(d.kind));
        jw.key("thread").value(d.thread);
        jw.key("origPc").value(d.origPc);
        jw.key("patchedPc").value(d.patchedPc);
        if (d.kind == SiteKind::kFence)
            jw.key("originalFence").value(d.originalFence);
        else
            jw.key("mode").value(hintIdent(d.mode));
        jw.key("witness").beginObject();
        jw.key("kind").value(d.witness.kind);
        jw.key("detail").value(d.witness.detail);
        jw.key("edges").beginArray();
        for (const std::string &e : d.witness.edges)
            jw.value(e);
        jw.endArray();
        jw.key("steps").value(d.witness.steps);
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();

    jw.key("final").beginObject();
    jw.key("modes").beginArray();
    for (const ModePass &mp : r.finalModes) {
        jw.beginObject();
        jw.key("mode").value(core::atomicsModeIdent(mp.mode));
        jw.key("complete").value(mp.complete);
        jw.key("states").value(mp.states);
        jw.key("outcomes").value(mp.outcomes);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    jw.key("counts").beginObject();
    jw.key("fencesOriginal").value(r.fencesOriginal);
    jw.key("fencesKept").value(r.fencesKept);
    jw.key("fencesInserted").value(r.fencesInserted);
    jw.key("fencesRemoved").value(r.fencesRemoved);
    jw.key("rmwDemotions").value(r.rmwDemotions);
    jw.endObject();

    if (r.speedup.measured) {
        jw.key("speedup").beginObject();
        jw.key("machine").value(r.speedup.machine);
        jw.key("baselineCycles").value(r.speedup.baselineCycles);
        jw.key("synthCycles").value(r.speedup.synthCycles);
        jw.endObject();
    }

    jw.endObject();
    os << "\n";
    return os.str();
}

namespace {

mc::ExploreResult
exploreCert(const std::vector<isa::Program> &progs,
            const mc::MemInit &init, core::AtomicsMode mode,
            mc::Fault fault, unsigned fwdChainCap,
            std::uint64_t masterSeed, std::uint64_t maxStates)
{
    mc::ModelOpts mo;
    mo.mode = mode;
    mo.fwdChainCap = fwdChainCap;
    mo.fault = fault;
    mo.masterSeed = masterSeed;
    mc::Model model(progs, mo);
    mc::ExploreOpts eo;
    eo.maxStates = maxStates;
    return mc::explore(model, init, eo);
}

/** Is this exploration bad w.r.t. the reference set + forbid list?
 * Returns the offending pretty()/violation detail, "" when safe. */
std::string
certBad(const mc::ExploreResult &r,
        const std::set<std::string> &refPretty,
        const std::vector<ForbidSpec> &forbid)
{
    if (!r.violations.empty())
        return "[" + r.violations.front().kind + "] " +
            r.violations.front().detail;
    for (const mc::Outcome &o : r.outcomes) {
        if (!refPretty.count(o.pretty()))
            return o.pretty();
        for (const ForbidSpec &f : forbid)
            if (f.matches(o))
                return o.pretty();
    }
    return "";
}

} // namespace

CertCheck
checkCert(const std::string &certText)
{
    CertCheck chk;
    auto fail = [&chk](const std::string &msg) -> CertCheck & {
        chk.ok = false;
        chk.error = msg;
        return chk;
    };

    JsonValue doc;
    try {
        doc = JsonValue::parse(certText);
    } catch (const FatalError &e) {
        return fail("malformed JSON: " + e.message);
    }

    try {
        if (!doc.isObject())
            return fail("certificate root is not an object");
        const JsonValue *schema = doc.find("schema");
        if (!schema || schema->str != "fa-fence-cert-v1")
            return fail("unknown schema (want fa-fence-cert-v1)");
        chk.notes.push_back("schema: fa-fence-cert-v1");

        const std::string name = doc.at("name").str;
        const std::uint64_t threads = doc.at("threads").asU64();
        const core::AtomicsMode target =
            core::parseAtomicsMode(doc.at("targetMode").str);
        mc::Fault fault;
        if (!mc::parseFault(doc.at("fault").str, &fault))
            return fail("unknown fault '" + doc.at("fault").str +
                        "'");
        const unsigned fwdCap =
            static_cast<unsigned>(doc.at("fwdChainCap").asU64());
        const std::uint64_t seed = doc.at("masterSeed").asU64();
        const std::uint64_t maxStates = doc.at("maxStates").asU64();

        const JsonValue &spec = doc.at("spec");
        if (spec.at("kind").str != "subset-of-all-fenced")
            return fail("unknown spec kind '" + spec.at("kind").str +
                        "'");
        std::vector<ForbidSpec> forbid;
        for (const JsonValue &f : spec.at("forbid").arr) {
            ForbidSpec fs;
            for (const JsonValue &pair : f.arr)
                fs.eq.emplace_back(
                    static_cast<Addr>(pair.arr.at(0).asU64()),
                    asI64(pair.arr.at(1)));
            forbid.push_back(std::move(fs));
        }

        const JsonValue &progsNode = doc.at("programs");
        std::vector<isa::Program> original, patched;
        for (const JsonValue &p : progsNode.at("original").arr)
            original.push_back(
                isa::assemble(name + "-orig", p.str));
        for (const JsonValue &p : progsNode.at("patched").arr)
            patched.push_back(
                isa::assemble(name + "-patched", p.str));
        if (original.size() != threads ||
            patched.size() != threads)
            return fail(strfmt("thread count mismatch: header %llu, "
                               "%zu original / %zu patched programs",
                               (unsigned long long)threads,
                               original.size(), patched.size()));
        chk.notes.push_back(strfmt(
            "programs: %llu thread(s) assembled",
            (unsigned long long)threads));

        mc::MemInit init;
        for (const JsonValue &pair : doc.at("init").arr)
            init.emplace_back(
                static_cast<Addr>(pair.arr.at(0).asU64()),
                asI64(pair.arr.at(1)));

        // Structural: each decision points at the instruction it
        // claims in the patched program.
        std::vector<Decision> decisions;
        for (const JsonValue &d : doc.at("decisions").arr) {
            Decision dec;
            const std::string kind = d.at("kind").str;
            dec.thread =
                static_cast<unsigned>(d.at("thread").asU64());
            dec.origPc = static_cast<int>(asI64(d.at("origPc")));
            dec.patchedPc =
                static_cast<int>(asI64(d.at("patchedPc")));
            const JsonValue &w = d.at("witness");
            dec.witness.kind = w.at("kind").str;
            dec.witness.detail = w.at("detail").str;
            if (dec.thread >= threads)
                return fail(strfmt("decision thread %u out of range",
                                   dec.thread));
            const isa::Program &pp = patched[dec.thread];
            if (dec.patchedPc < 0 ||
                static_cast<std::size_t>(dec.patchedPc) >=
                    pp.code.size())
                return fail(strfmt(
                    "decision t%u patchedPc=%d out of range",
                    dec.thread, dec.patchedPc));
            const isa::Inst &inst =
                pp.code[static_cast<std::size_t>(dec.patchedPc)];
            if (kind == "fence") {
                dec.kind = SiteKind::kFence;
                if (inst.op != isa::Op::kMfence)
                    return fail(strfmt(
                        "decision t%u patchedPc=%d claims a fence "
                        "but the patched instruction is not MFENCE",
                        dec.thread, dec.patchedPc));
            } else if (kind == "rmw-mode") {
                dec.kind = SiteKind::kRmwMode;
                isa::RmwModeHint hint;
                if (!isa::parseRmwModeHint(d.at("mode").str, &hint))
                    return fail("decision has unknown mode '" +
                                d.at("mode").str + "'");
                dec.mode = hint;
                if (inst.op != isa::Op::kRmw ||
                    inst.rmwMode != hint)
                    return fail(strfmt(
                        "decision t%u patchedPc=%d claims rmw mode "
                        "%s but the patched instruction disagrees",
                        dec.thread, dec.patchedPc,
                        d.at("mode").str.c_str()));
            } else {
                return fail("decision has unknown kind '" + kind +
                            "'");
            }
            decisions.push_back(std::move(dec));
        }
        chk.notes.push_back(strfmt(
            "structural: %zu decision(s) point at matching "
            "instructions", decisions.size()));

        // Reference: re-derive the allowed outcome set from scratch.
        std::vector<isa::Program> refProgs = original;
        for (isa::Program &p : refProgs)
            for (isa::Inst &i : p.code)
                if (i.op == isa::Op::kRmw)
                    i.rmwMode = isa::RmwModeHint::kFenced;
        mc::ExploreResult ref =
            exploreCert(refProgs, init, core::AtomicsMode::kFenced,
                        fault, fwdCap, seed, maxStates);
        if (!ref.complete)
            return fail("reference re-exploration truncated: " +
                        ref.truncatedReason);
        if (!ref.violations.empty())
            return fail("reference re-exploration violates [" +
                        ref.violations.front().kind + "]");
        std::set<std::string> refPretty;
        for (const mc::Outcome &o : ref.outcomes)
            refPretty.insert(o.pretty());
        const JsonValue &refNode = doc.at("reference");
        std::set<std::string> certRef;
        for (const JsonValue &o : refNode.at("outcomes").arr)
            certRef.insert(o.str);
        if (certRef != refPretty)
            return fail(strfmt(
                "reference outcome set mismatch: cert lists %zu, "
                "re-exploration found %zu", certRef.size(),
                refPretty.size()));
        if (refNode.at("states").asU64() != ref.statesExplored)
            return fail(strfmt(
                "reference state count mismatch: cert %llu, "
                "re-exploration %llu",
                (unsigned long long)refNode.at("states").asU64(),
                (unsigned long long)ref.statesExplored));
        chk.notes.push_back(strfmt(
            "reference: %zu outcome(s), %llu state(s) reproduced",
            refPretty.size(),
            (unsigned long long)ref.statesExplored));
        for (const ForbidSpec &f : forbid)
            for (const mc::Outcome &o : ref.outcomes)
                if (f.matches(o))
                    return fail("spec infeasible: forbidden outcome "
                                "'" + o.pretty() +
                                "' is fenced-reachable");

        // Final passes: the patched program under every global mode.
        const JsonValue &modes = doc.at("final").at("modes");
        if (modes.arr.size() != 4)
            return fail("final.modes must list all four modes");
        for (const JsonValue &mpNode : modes.arr) {
            const core::AtomicsMode mode =
                core::parseAtomicsMode(mpNode.at("mode").str);
            mc::ExploreResult r =
                exploreCert(patched, init, mode, fault, fwdCap,
                            seed, maxStates);
            if (!r.complete)
                return fail(strfmt(
                    "final pass (%s) re-exploration truncated",
                    core::atomicsModeIdent(mode)));
            std::string bad = certBad(r, refPretty, forbid);
            if (!bad.empty())
                return fail(strfmt("final pass (%s) unsafe: %s",
                                   core::atomicsModeIdent(mode),
                                   bad.c_str()));
            if (mpNode.at("states").asU64() != r.statesExplored ||
                mpNode.at("outcomes").asU64() != r.outcomes.size())
                return fail(strfmt(
                    "final pass (%s) count mismatch: cert %llu "
                    "states / %llu outcomes, re-exploration %llu / "
                    "%zu", core::atomicsModeIdent(mode),
                    (unsigned long long)mpNode.at("states").asU64(),
                    (unsigned long long)
                        mpNode.at("outcomes").asU64(),
                    (unsigned long long)r.statesExplored,
                    r.outcomes.size()));
            chk.notes.push_back(strfmt(
                "final pass (%s): safe, %llu state(s), %zu "
                "outcome(s)", core::atomicsModeIdent(mode),
                (unsigned long long)r.statesExplored,
                r.outcomes.size()));
        }

        // Necessity: weaken each decision directly in the patched
        // program; its badness must reappear.
        for (const Decision &dec : decisions) {
            std::vector<isa::Program> weak = patched;
            isa::Program &wp = weak[dec.thread];
            if (dec.kind == SiteKind::kFence) {
                wp.code.erase(wp.code.begin() + dec.patchedPc);
                for (isa::Inst &i : wp.code) {
                    if (i.op != isa::Op::kBranch &&
                        i.op != isa::Op::kJump)
                        continue;
                    if (i.target > dec.patchedPc)
                        --i.target;
                    else if (i.target == dec.patchedPc &&
                             static_cast<std::size_t>(i.target) >=
                                 wp.code.size())
                        --i.target;
                }
                wp.validate();
            } else {
                wp.code[static_cast<std::size_t>(dec.patchedPc)]
                    .rmwMode = weakestHint(target);
            }
            mc::ExploreResult r =
                exploreCert(weak, init, target, fault, fwdCap, seed,
                            maxStates);
            if (!r.complete)
                return fail(strfmt(
                    "necessity re-exploration (t%u pc=%d) truncated",
                    dec.thread, dec.patchedPc));
            std::string bad = certBad(r, refPretty, forbid);
            if (bad.empty())
                return fail(strfmt(
                    "site t%u patchedPc=%d (%s) is NOT load-bearing:"
                    " weakening it alone stays safe", dec.thread,
                    dec.patchedPc, siteKindName(dec.kind)));
            if (dec.witness.kind == "outcome") {
                const mc::Outcome *found = nullptr;
                for (const mc::Outcome &o : r.outcomes)
                    if (o.pretty() == dec.witness.detail) {
                        found = &o;
                        break;
                    }
                if (!found)
                    return fail(strfmt(
                        "site t%u patchedPc=%d necessity witness "
                        "outcome '%s' not reproduced", dec.thread,
                        dec.patchedPc, dec.witness.detail.c_str()));
                if (refPretty.count(dec.witness.detail)) {
                    // Fenced-reachable, so it can only be bad via an
                    // explicit forbid rule.
                    bool matches = false;
                    for (const ForbidSpec &f : forbid)
                        if (f.matches(*found))
                            matches = true;
                    if (!matches)
                        return fail(strfmt(
                            "site t%u patchedPc=%d necessity "
                            "witness outcome '%s' is allowed by the "
                            "spec", dec.thread, dec.patchedPc,
                            dec.witness.detail.c_str()));
                }
            }
            chk.notes.push_back(strfmt(
                "necessity t%u patchedPc=%d (%s): weakening "
                "reintroduces '%s'", dec.thread, dec.patchedPc,
                siteKindName(dec.kind), bad.c_str()));
        }

        // Counts: recomputable from the two programs alone.
        const JsonValue &counts = doc.at("counts");
        unsigned fOrig = 0, fPatched = 0, demoted = 0;
        for (const isa::Program &p : original)
            for (const isa::Inst &i : p.code)
                if (i.op == isa::Op::kMfence)
                    ++fOrig;
        for (const isa::Program &p : patched)
            for (const isa::Inst &i : p.code) {
                if (i.op == isa::Op::kMfence)
                    ++fPatched;
                if (i.op == isa::Op::kRmw &&
                    i.rmwMode != weakestHint(target))
                    ++demoted;
            }
        const std::uint64_t kept =
            counts.at("fencesKept").asU64();
        const std::uint64_t inserted =
            counts.at("fencesInserted").asU64();
        if (counts.at("fencesOriginal").asU64() != fOrig ||
            counts.at("fencesRemoved").asU64() != fOrig - kept ||
            kept + inserted != fPatched ||
            counts.at("rmwDemotions").asU64() != demoted)
            return fail("counts block inconsistent with the "
                        "embedded programs");
        chk.notes.push_back(strfmt(
            "counts: %u original fence(s), %llu kept, %llu "
            "inserted, %u demotion(s)", fOrig,
            (unsigned long long)kept, (unsigned long long)inserted,
            demoted));
    } catch (const FatalError &e) {
        return fail("certificate check failed: " + e.message);
    }

    chk.ok = true;
    return chk;
}

} // namespace fa::analysis::synth
