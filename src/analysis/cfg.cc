#include "analysis/cfg.hh"

#include <algorithm>
#include <deque>

#include "common/log.hh"

namespace fa::analysis {

const char *
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::kLoad:       return "ld";
      case AccessKind::kLoadLinked: return "ll";
      case AccessKind::kStore:      return "st";
      case AccessKind::kStoreCond:  return "sc";
      case AccessKind::kRmw:        return "rmw";
      case AccessKind::kFence:      return "mfence";
    }
    return "?";
}

namespace {

bool
endsBlock(const isa::Inst &si)
{
    return si.op == isa::Op::kBranch || si.op == isa::Op::kJump ||
        si.op == isa::Op::kHalt;
}

/** Constant-propagation lattice value for one register. */
struct LatVal
{
    enum State : std::uint8_t { kBottom, kConst, kTop };
    State state = kBottom;
    std::int64_t value = 0;

    static LatVal bottom() { return {}; }
    static LatVal
    constant(std::int64_t v)
    {
        LatVal l;
        l.state = kConst;
        l.value = v;
        return l;
    }
    static LatVal
    top()
    {
        LatVal l;
        l.state = kTop;
        return l;
    }

    /** Lattice join (bottom <= const(v) <= top). */
    static LatVal
    join(const LatVal &a, const LatVal &b)
    {
        if (a.state == kBottom)
            return b;
        if (b.state == kBottom)
            return a;
        if (a.state == kConst && b.state == kConst &&
            a.value == b.value) {
            return a;
        }
        return top();
    }

    bool
    operator==(const LatVal &o) const
    {
        return state == o.state &&
            (state != kConst || value == o.value);
    }
};

using Env = std::vector<LatVal>;  // one LatVal per register

Env
joinEnv(const Env &a, const Env &b)
{
    Env out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = LatVal::join(a[i], b[i]);
    return out;
}

/** Apply one instruction's register effect to the environment. */
void
transfer(const isa::Inst &si, Env &env)
{
    auto setDst = [&](LatVal v) {
        if (si.dst != 0)
            env[si.dst] = v;
    };
    switch (si.op) {
      case isa::Op::kMovi:
        setDst(LatVal::constant(si.imm));
        break;
      case isa::Op::kAddi:
        if (env[si.src1].state == LatVal::kConst) {
            setDst(LatVal::constant(env[si.src1].value + si.imm));
        } else if (env[si.src1].state == LatVal::kBottom) {
            setDst(LatVal::bottom());
        } else {
            setDst(LatVal::top());
        }
        break;
      case isa::Op::kAlu:
        if (env[si.src1].state == LatVal::kConst &&
            env[si.src2].state == LatVal::kConst) {
            setDst(LatVal::constant(isa::evalAlu(
                si.fn, env[si.src1].value, env[si.src2].value)));
        } else if (env[si.src1].state == LatVal::kBottom ||
                   env[si.src2].state == LatVal::kBottom) {
            setDst(LatVal::bottom());
        } else {
            setDst(LatVal::top());
        }
        break;
      case isa::Op::kLoad:
      case isa::Op::kLoadLinked:
      case isa::Op::kRmw:
      case isa::Op::kStoreCond:
      case isa::Op::kRand:
        setDst(LatVal::top());
        break;
      default:
        break;  // no register write
    }
}

} // namespace

Cfg::Cfg(const isa::Program &program) : prog(&program)
{
    const auto &code = program.code;
    int n = static_cast<int>(code.size());
    if (n == 0)
        fatal("cfg: empty program '%s'", program.name.c_str());

    // Leaders: entry, branch/jump targets, fallthroughs of block
    // terminators.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (int pc = 0; pc < n; ++pc) {
        const isa::Inst &si = code[pc];
        if (si.op == isa::Op::kBranch || si.op == isa::Op::kJump) {
            if (si.target >= 0 && si.target < n)
                leader[si.target] = true;
        }
        if (endsBlock(si) && pc + 1 < n)
            leader[pc + 1] = true;
    }

    pcToBlock.assign(n, -1);
    for (int pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            BasicBlock bb;
            bb.id = static_cast<int>(bbs.size());
            bb.first = pc;
            bbs.push_back(bb);
        }
        pcToBlock[pc] = static_cast<int>(bbs.size()) - 1;
        bbs.back().last = pc;
    }

    for (BasicBlock &bb : bbs) {
        const isa::Inst &term = code[bb.last];
        auto link = [&](int target_pc) {
            if (target_pc < 0 || target_pc >= n)
                return;  // wrong-path off-the-end; no edge
            int t = pcToBlock[target_pc];
            bb.succs.push_back(t);
            bbs[t].preds.push_back(bb.id);
        };
        switch (term.op) {
          case isa::Op::kBranch:
            link(term.target);
            link(bb.last + 1);
            break;
          case isa::Op::kJump:
            link(term.target);
            break;
          case isa::Op::kHalt:
            break;
          default:
            link(bb.last + 1);
            break;
        }
    }

    // Back edges (target pc <= source pc) define the loop intervals
    // the lock-cycle pass uses to spot forwarding-chain sites.
    for (int pc = 0; pc < n; ++pc) {
        const isa::Inst &si = code[pc];
        if ((si.op == isa::Op::kBranch || si.op == isa::Op::kJump) &&
            si.target >= 0 && si.target <= pc) {
            loopList.push_back({si.target, pc});
        }
    }
}

int
Cfg::blockOf(int pc) const
{
    if (pc < 0 || pc >= static_cast<int>(pcToBlock.size()))
        return -1;
    return pcToBlock[pc];
}

bool
Cfg::inLoop(int pc) const
{
    for (const Loop &l : loopList)
        if (pc >= l.headPc && pc <= l.backPc)
            return true;
    return false;
}

int
ThreadSummary::eventAt(int pc) const
{
    auto it = std::lower_bound(
        events.begin(), events.end(), pc,
        [](const StaticMemEvent &e, int p) { return e.pc < p; });
    if (it == events.end() || it->pc != pc)
        return -1;
    return static_cast<int>(it - events.begin());
}

ThreadSummary
summarizeThread(const isa::Program &prog, unsigned thread)
{
    Cfg cfg(prog);
    const auto &code = prog.code;
    const auto &bbs = cfg.blocks();

    // Worklist constant propagation over basic blocks. The entry env
    // is all-zero registers (execution starts with zeroed registers);
    // unvisited predecessors contribute bottom and are ignored by the
    // join.
    std::vector<Env> inEnv(bbs.size(), Env(isa::kNumRegs));
    std::vector<bool> reached(bbs.size(), false);
    for (auto &v : inEnv[0])
        v = LatVal::constant(0);
    reached[0] = true;

    // Per-pc resolved effective address, merged over all visits so a
    // pc reachable with two different address constants degrades to
    // "unknown" rather than picking one arbitrarily.
    std::vector<LatVal> addrAt(code.size(), LatVal::bottom());

    std::deque<int> work;
    work.push_back(0);
    std::vector<bool> queued(bbs.size(), false);
    queued[0] = true;
    unsigned iterations = 0;
    const unsigned max_iterations =
        static_cast<unsigned>(bbs.size()) * 64 + 1024;

    while (!work.empty() && ++iterations < max_iterations) {
        int b = work.front();
        work.pop_front();
        queued[b] = false;
        Env env = inEnv[b];
        for (int pc = bbs[b].first; pc <= bbs[b].last; ++pc) {
            const isa::Inst &si = code[pc];
            if (si.isMemRef() || si.op == isa::Op::kLoadLinked ||
                si.op == isa::Op::kStoreCond) {
                LatVal a = env[si.src1];
                if (a.state == LatVal::kConst) {
                    a = LatVal::constant(static_cast<std::int64_t>(
                        wordOf(static_cast<Addr>(a.value + si.imm))));
                }
                addrAt[pc] = LatVal::join(addrAt[pc], a);
            }
            transfer(si, env);
        }
        for (int s : bbs[b].succs) {
            Env joined = reached[s] ? joinEnv(inEnv[s], env) : env;
            if (!reached[s] || !(joined == inEnv[s])) {
                inEnv[s] = joined;
                reached[s] = true;
                if (!queued[s]) {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    ThreadSummary sum;
    sum.thread = thread;
    sum.name = prog.name;
    sum.numBlocks = static_cast<unsigned>(bbs.size());
    sum.loops = cfg.loops();
    for (int pc = 0; pc < static_cast<int>(code.size()); ++pc) {
        const isa::Inst &si = code[pc];
        StaticMemEvent ev;
        ev.pc = pc;
        switch (si.op) {
          case isa::Op::kLoad:       ev.kind = AccessKind::kLoad; break;
          case isa::Op::kLoadLinked: ev.kind = AccessKind::kLoadLinked; break;
          case isa::Op::kStore:      ev.kind = AccessKind::kStore; break;
          case isa::Op::kStoreCond:  ev.kind = AccessKind::kStoreCond; break;
          case isa::Op::kRmw:        ev.kind = AccessKind::kRmw; break;
          case isa::Op::kMfence:     ev.kind = AccessKind::kFence; break;
          default:
            continue;
        }
        if (ev.kind != AccessKind::kFence &&
            addrAt[pc].state == LatVal::kConst) {
            ev.addrKnown = true;
            ev.addr = static_cast<Addr>(addrAt[pc].value);
            ++sum.knownAddrEvents;
        }
        ev.inLoop = cfg.inLoop(pc);
        sum.events.push_back(ev);
    }
    return sum;
}

std::vector<ThreadSummary>
summarizePrograms(const std::vector<isa::Program> &progs)
{
    std::vector<ThreadSummary> v;
    v.reserve(progs.size());
    for (size_t t = 0; t < progs.size(); ++t)
        v.push_back(summarizeThread(progs[t], static_cast<unsigned>(t)));
    return v;
}

} // namespace fa::analysis
