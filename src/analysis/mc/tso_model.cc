#include "analysis/mc/tso_model.hh"

#include <algorithm>
#include <cstring>

#include "analysis/cfg.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace fa::mc {

using isa::Op;

const char *
faultName(Fault fault)
{
    switch (fault) {
      case Fault::kNone: return "none";
      case Fault::kNoLock: return "no-lock";
      case Fault::kCommitNoDrain: return "commit-no-drain";
      case Fault::kNoRecover: return "no-recover";
      case Fault::kLeakUnlock: return "leak-unlock";
    }
    return "?";
}

bool
parseFault(const std::string &name, Fault *out)
{
    for (Fault f : {Fault::kNone, Fault::kNoLock, Fault::kCommitNoDrain,
                    Fault::kNoRecover, Fault::kLeakUnlock}) {
        if (name == faultName(f)) {
            *out = f;
            return true;
        }
    }
    return false;
}

const char *
tkindName(TKind kind)
{
    switch (kind) {
      case TKind::kRead: return "read";
      case TKind::kFlush: return "flush";
      case TKind::kRmw: return "rmw";
      case TKind::kAtLock: return "at-lock";
      case TKind::kAtFwd: return "at-fwd";
      case TKind::kAtCommit: return "at-commit";
      case TKind::kScOk: return "sc-ok";
      case TKind::kScFail: return "sc-fail";
      case TKind::kRecover: return "recover";
    }
    return "?";
}

// --------------------------------------------------------------------------
// State canonicalization
// --------------------------------------------------------------------------

namespace {

void
put(std::string &s, const void *p, std::size_t n)
{
    s.append(static_cast<const char *>(p), n);
}

template <typename T>
void
putv(std::string &s, T v)
{
    put(s, &v, sizeof(v));
}

} // namespace

std::string
State::key() const
{
    std::string s;
    s.reserve(128 + threads.size() * 64);
    for (const ThreadState &t : threads) {
        putv(s, t.pc);
        std::uint8_t flags = (t.halted ? 1 : 0) |
            (t.phase == AtPhase::kLocked ? 2 : 0) |
            (t.fwdPending ? 4 : 0) | (t.lockHeld ? 8 : 0) |
            (t.linkValid ? 16 : 0);
        putv(s, flags);
        if (t.phase == AtPhase::kLocked) {
            putv(s, t.boundOld);
            putv(s, t.boundAddr);
            putv(s, t.boundChain);
        }
        if (t.linkValid)
            putv(s, t.linkLine);
        putv(s, t.randIndex);
        put(s, t.regs.data(), sizeof(t.regs));
        putv(s, static_cast<std::uint32_t>(t.sb.size()));
        for (const SbEntry &e : t.sb) {
            putv(s, e.addr);
            putv(s, e.value);
            std::uint8_t ef = (e.unlock ? 1 : 0) | (e.captured ? 2 : 0) |
                (e.holdsLock ? 4 : 0);
            putv(s, ef);
            putv(s, e.chain);
            if (e.unlock)
                putv(s, e.expectOld);
        }
        s.push_back('|');
    }
    putv(s, static_cast<std::uint32_t>(mem.size()));
    for (const auto &kv : mem) {
        putv(s, kv.first);
        putv(s, kv.second);
    }
    putv(s, static_cast<std::uint32_t>(locks.size()));
    for (const auto &kv : locks) {
        putv(s, kv.first);
        putv(s, kv.second.first);
        putv(s, kv.second.second);
    }
    return s;
}

// --------------------------------------------------------------------------
// Model
// --------------------------------------------------------------------------

Model::Model(std::vector<isa::Program> programs, const ModelOpts &opts)
    : progs(std::move(programs)), modelOpts(opts)
{
    randSeeds.reserve(progs.size());
    for (unsigned t = 0; t < progs.size(); ++t) {
        // Matches sim::System's per-core kRand stream derivation.
        randSeeds.push_back(mix64(modelOpts.masterSeed, t + 1));
        for (const isa::Inst &i : progs[t].code)
            if (i.op == Op::kRand)
                anyRand = true;
    }

    // Static line ownership for the persistent-set reduction: a line
    // is private to thread t when constant propagation resolves every
    // access in every thread and only t touches the line.
    reduceOk = true;
    std::map<Addr, std::pair<CoreId, bool>> owner;  // line -> (t, solo)
    for (unsigned t = 0; t < progs.size() && reduceOk; ++t) {
        analysis::ThreadSummary sum =
            analysis::summarizeThread(progs[t], t);
        for (const analysis::StaticMemEvent &ev : sum.events) {
            if (ev.kind == analysis::AccessKind::kFence)
                continue;
            if (!ev.addrKnown) {
                reduceOk = false;
                break;
            }
            auto it = owner.find(ev.line());
            if (it == owner.end())
                owner.emplace(ev.line(), std::make_pair(t, true));
            else if (it->second.first != t)
                it->second.second = false;
        }
    }
    if (reduceOk)
        for (const auto &kv : owner)
            if (kv.second.second)
                lineOwner.emplace(kv.first, kv.second.first);
}

State
Model::initial(const MemInit &init, EventSink *sink) const
{
    State s;
    s.threads.resize(progs.size());
    for (const auto &kv : init) {
        if (kv.second != 0)
            s.mem[wordOf(kv.first)] = kv.second;
    }
    for (unsigned t = 0; t < progs.size(); ++t) {
        StepViolation v = closure(s, t, sink);
        if (v)
            fatal("mc: local closure diverged at startup: %s",
                  v.detail.c_str());
    }
    return s;
}

bool
Model::foreignLocked(const State &s, Addr line, CoreId t) const
{
    auto it = s.locks.find(line);
    return it != s.locks.end() && it->second.first != t &&
        it->second.second > 0;
}

bool
Model::readGate(const ThreadState &thr) const
{
    if (modelOpts.fault == Fault::kCommitNoDrain)
        return true;  // the injected bug: loads pass the unlock write
    for (const SbEntry &e : thr.sb)
        if (e.unlock)
            return false;
    return true;
}

int
Model::newestSbMatch(const ThreadState &thr, Addr addr) const
{
    for (int i = static_cast<int>(thr.sb.size()) - 1; i >= 0; --i)
        if (thr.sb[static_cast<std::size_t>(i)].addr == addr)
            return i;
    return -1;
}

void
Model::lockInc(State &s, Addr line, CoreId t) const
{
    auto it = s.locks.find(line);
    if (it == s.locks.end())
        s.locks.emplace(line, std::make_pair(t, 1u));
    else
        ++it->second.second;
}

void
Model::unlockDec(State &s, Addr line, CoreId t) const
{
    (void)t;
    auto it = s.locks.find(line);
    if (it == s.locks.end())
        return;
    if (it->second.second <= 1)
        s.locks.erase(it);
    else
        --it->second.second;
}

bool
Model::privateLine(Addr line, CoreId t) const
{
    auto it = lineOwner.find(line);
    return it != lineOwner.end() && it->second == t;
}

bool
Model::freeTransition(const State &s, const Transition &t) const
{
    if (!privateLine(t.line(), t.thread))
        return false;
    if (t.kind == TKind::kFlush)
        return true;
    // A private read commutes with every other thread, but only
    // claim it when the SB is empty so the reduction stays neutral
    // to the explorer's reorder-credit accounting.
    return t.kind == TKind::kRead &&
        s.threads[t.thread].sb.empty();
}

void
Model::enumerate(const State &s, std::vector<Transition> &out,
                 bool reduce) const
{
    out.clear();
    const unsigned n = numThreads();
    std::vector<std::uint32_t> perThreadFirst(n + 1, 0);

    for (CoreId t = 0; t < n; ++t) {
        perThreadFirst[t] = static_cast<std::uint32_t>(out.size());
        const ThreadState &thr = s.threads[t];

        if (!thr.sb.empty()) {
            const SbEntry &front = thr.sb.front();
            if (!foreignLocked(s, lineOf(front.addr), t))
                out.push_back({TKind::kFlush, t, thr.pc, front.addr});
        }
        if (thr.halted)
            continue;

        if (thr.phase == AtPhase::kLocked) {
            if (thr.sb.empty() ||
                modelOpts.fault == Fault::kCommitNoDrain) {
                out.push_back(
                    {TKind::kAtCommit, t, thr.pc, thr.boundAddr});
            }
            if (modelOpts.fault != Fault::kNoRecover) {
                out.push_back(
                    {TKind::kRecover, t, thr.pc, thr.boundAddr});
            }
            continue;  // pc is blocked behind the pending atomic
        }

        const auto &code = progs[t].code;
        if (thr.pc < 0 ||
            thr.pc >= static_cast<std::int32_t>(code.size()))
            continue;
        const isa::Inst &inst = code[static_cast<std::size_t>(thr.pc)];
        const Addr addr =
            wordOf(static_cast<Addr>(thr.regs[inst.src1] + inst.imm));
        const Addr line = lineOf(addr);

        switch (inst.op) {
          case Op::kLoad:
          case Op::kLoadLinked:
            if (readGate(thr) && !foreignLocked(s, line, t))
                out.push_back({TKind::kRead, t, thr.pc, addr});
            break;
          case Op::kRmw: {
            const core::AtomicsMode site_mode = effectiveMode(inst);
            if (fencedSemantics(site_mode)) {
                if (thr.sb.empty() && !foreignLocked(s, line, t))
                    out.push_back({TKind::kRmw, t, thr.pc, addr});
                break;
            }
            if (int m = newestSbMatch(thr, addr); m >= 0) {
                if (site_mode == core::AtomicsMode::kFreeFwd) {
                    const SbEntry &e =
                        thr.sb[static_cast<std::size_t>(m)];
                    unsigned chain = e.unlock ? e.chain + 1u : 1u;
                    if (!e.unlock || chain <= modelOpts.fwdChainCap)
                        out.push_back(
                            {TKind::kAtFwd, t, thr.pc, addr});
                }
                // kFree: the load_lock is re-scheduled until the
                // pending store leaves the SB (§3.2.1 footnote).
            } else if (readGate(thr) && !foreignLocked(s, line, t)) {
                out.push_back({TKind::kAtLock, t, thr.pc, addr});
            }
            break;
          }
          case Op::kStoreCond:
            if (!thr.sb.empty())
                break;  // TSO store->store order (SC at ROB head)
            if (thr.linkValid && thr.linkLine == line &&
                !foreignLocked(s, line, t))
                out.push_back({TKind::kScOk, t, thr.pc, addr});
            if (modelOpts.spuriousScFail || !thr.linkValid ||
                thr.linkLine != line)
                out.push_back({TKind::kScFail, t, thr.pc, addr});
            break;
          default:
            // kMfence waits on this thread's own flushes; everything
            // else was consumed by the local closure.
            break;
        }
    }
    perThreadFirst[n] = static_cast<std::uint32_t>(out.size());

    if (!reduce || !reduceOk || out.empty())
        return;
    for (CoreId t = 0; t < n; ++t) {
        std::uint32_t first = perThreadFirst[t];
        std::uint32_t last = perThreadFirst[t + 1];
        if (first == last)
            continue;
        bool allFree = true;
        for (std::uint32_t i = first; i < last && allFree; ++i)
            allFree = freeTransition(s, out[i]);
        if (allFree) {
            // Singleton-process persistent set: this thread's moves
            // are independent of every transition any other thread
            // can ever take, so exploring only them is sound.
            std::vector<Transition> only(out.begin() + first,
                                         out.begin() + last);
            out.swap(only);
            return;
        }
    }
}

// --------------------------------------------------------------------------
// Event-sink helpers
// --------------------------------------------------------------------------

namespace {

analysis::MemEvent &
newEvent(EventSink &sink, CoreId t, SeqNum seq, int pc,
         analysis::EvKind kind, Addr addr)
{
    analysis::MemEvent ev;
    ev.thread = t;
    ev.seq = seq;
    ev.pc = pc;
    ev.kind = kind;
    ev.addr = addr;
    sink.events.push_back(ev);
    return sink.events.back();
}

void
setRfFromMemory(EventSink &sink, analysis::MemEvent &ev, Addr addr)
{
    auto it = sink.lastWriter.find(addr);
    if (it == sink.lastWriter.end()) {
        ev.rfInit = true;
    } else {
        ev.rfInit = false;
        ev.rfThread = it->second.first;
        ev.rfSeq = it->second.second;
    }
}

} // namespace

// --------------------------------------------------------------------------
// Local closure
// --------------------------------------------------------------------------

StepViolation
Model::closure(State &s, CoreId t, EventSink *sink) const
{
    ThreadState &thr = s.threads[t];
    const auto &code = progs[t].code;
    std::uint64_t steps = 0;

    while (!thr.halted && thr.phase == AtPhase::kNone) {
        if (thr.pc < 0 ||
            thr.pc >= static_cast<std::int32_t>(code.size())) {
            thr.halted = true;
            break;
        }
        if (++steps > modelOpts.maxLocalSteps) {
            return {StepViolation::Kind::kLocalLimit,
                    "thread " + std::to_string(t) +
                        " local closure exceeded " +
                        std::to_string(modelOpts.maxLocalSteps) +
                        " steps (runaway local loop) at pc=" +
                        std::to_string(thr.pc)};
        }
        const isa::Inst &inst = code[static_cast<std::size_t>(thr.pc)];
        switch (inst.op) {
          case Op::kNop:
          case Op::kPause:
            ++thr.pc;
            break;
          case Op::kMovi:
            thr.regs[inst.dst] = inst.imm;
            ++thr.pc;
            break;
          case Op::kAlu:
            thr.regs[inst.dst] = isa::evalAlu(
                inst.fn, thr.regs[inst.src1], thr.regs[inst.src2]);
            ++thr.pc;
            break;
          case Op::kAddi:
            thr.regs[inst.dst] = thr.regs[inst.src1] + inst.imm;
            ++thr.pc;
            break;
          case Op::kRand:
            thr.regs[inst.dst] = static_cast<std::int64_t>(
                mix64(randSeeds[t], thr.randIndex++) %
                static_cast<std::uint64_t>(inst.imm));
            ++thr.pc;
            break;
          case Op::kBranch:
            thr.pc = isa::evalCond(inst.cond, thr.regs[inst.src1],
                                   thr.regs[inst.src2])
                ? inst.target
                : thr.pc + 1;
            break;
          case Op::kJump:
            thr.pc = inst.target;
            break;
          case Op::kHalt:
            thr.halted = true;
            break;
          case Op::kStore: {
            SbEntry e;
            e.addr = wordOf(
                static_cast<Addr>(thr.regs[inst.src1] + inst.imm));
            e.value = thr.regs[inst.src2];
            e.seq = thr.nextSeq;
            e.pc = thr.pc;
            if (sink) {
                analysis::MemEvent &ev =
                    newEvent(*sink, t, thr.nextSeq, thr.pc,
                             analysis::EvKind::kWrite, e.addr);
                ev.valueWritten = e.value;
                e.evIdx = static_cast<int>(sink->events.size()) - 1;
            }
            ++thr.nextSeq;
            thr.sb.push_back(e);
            ++thr.pc;
            break;
          }
          case Op::kLoad: {
            Addr addr = wordOf(
                static_cast<Addr>(thr.regs[inst.src1] + inst.imm));
            int m = newestSbMatch(thr, addr);
            if (m < 0)
                return {};  // visible memory read
            const SbEntry &e = thr.sb[static_cast<std::size_t>(m)];
            thr.regs[inst.dst] = e.value;
            if (sink) {
                analysis::MemEvent &ev =
                    newEvent(*sink, t, thr.nextSeq, thr.pc,
                             analysis::EvKind::kRead, addr);
                ev.valueRead = e.value;
                ev.rfInit = false;
                ev.rfThread = t;
                ev.rfSeq = e.seq;
            }
            ++thr.nextSeq;
            ++thr.pc;
            break;
          }
          case Op::kMfence:
            if (!thr.sb.empty())
                return {};  // completes when the SB drains
            if (sink) {
                newEvent(*sink, t, thr.nextSeq, thr.pc,
                         analysis::EvKind::kFence, 0);
            }
            ++thr.nextSeq;
            ++thr.pc;
            break;
          case Op::kRmw:
          case Op::kLoadLinked:
          case Op::kStoreCond:
            return {};  // visible
        }
    }
    return {};
}

// --------------------------------------------------------------------------
// Transition application
// --------------------------------------------------------------------------

StepViolation
Model::apply(State &s, const Transition &tr, EventSink *sink) const
{
    ThreadState &thr = s.threads[tr.thread];
    const CoreId t = tr.thread;
    const Addr line = tr.line();

    auto clearForeignLinks = [&s, t, line]() {
        for (CoreId u = 0; u < s.threads.size(); ++u) {
            if (u != t && s.threads[u].linkValid &&
                s.threads[u].linkLine == line)
                s.threads[u].linkValid = false;
        }
    };
    auto writeWord = [&s](Addr a, std::int64_t v) {
        if (v == 0)
            s.mem.erase(a);
        else
            s.mem[a] = v;
    };
    auto readWord = [&s](Addr a) {
        auto it = s.mem.find(a);
        return it == s.mem.end() ? 0 : it->second;
    };

    switch (tr.kind) {
      case TKind::kRead: {
        const isa::Inst &inst =
            progs[t].code[static_cast<std::size_t>(thr.pc)];
        std::int64_t v = readWord(tr.addr);
        thr.regs[inst.dst] = v;
        if (inst.op == Op::kLoadLinked) {
            thr.linkValid = true;
            thr.linkLine = line;
        }
        if (sink) {
            analysis::MemEvent &ev =
                newEvent(*sink, t, thr.nextSeq, thr.pc,
                         analysis::EvKind::kRead, tr.addr);
            ev.valueRead = v;
            setRfFromMemory(*sink, ev, tr.addr);
        }
        ++thr.nextSeq;
        ++thr.pc;
        break;
      }

      case TKind::kFlush: {
        SbEntry e = thr.sb.front();
        if (e.unlock && readWord(e.addr) != e.expectOld) {
            return {StepViolation::Kind::kAtomicity,
                    "atomicity violated: store_unlock of thread " +
                        std::to_string(t) + " found [0x" +
                        strfmt("%llx", (unsigned long long)e.addr) +
                        "]=" + std::to_string(readWord(e.addr)) +
                        " but the atomic read " +
                        std::to_string(e.expectOld)};
        }
        writeWord(e.addr, e.value);
        clearForeignLinks();
        thr.sb.erase(thr.sb.begin());
        if (e.captured) {
            // lock_on_access (§3.3): the forwarded atomic takes the
            // lock the moment its source store performs.
            lockInc(s, line, t);
            thr.fwdPending = false;
            if (thr.phase == AtPhase::kLocked)
                thr.lockHeld = true;
        }
        if (e.unlock && e.holdsLock &&
            modelOpts.fault != Fault::kLeakUnlock)
            unlockDec(s, line, t);
        if (sink) {
            if (e.evIdx >= 0) {
                sink->events[static_cast<std::size_t>(e.evIdx)]
                    .writeStamp = sink->nextStamp++;
            }
            sink->lastWriter[e.addr] = {t, e.seq};
        }
        break;
      }

      case TKind::kRmw: {
        const isa::Inst &inst =
            progs[t].code[static_cast<std::size_t>(thr.pc)];
        std::int64_t old = readWord(tr.addr);
        std::int64_t neu = isa::applyRmw(inst.rmw, old,
                                         thr.regs[inst.src2],
                                         thr.regs[inst.src3]);
        thr.regs[inst.dst] = old;
        writeWord(tr.addr, neu);
        clearForeignLinks();
        if (sink) {
            analysis::MemEvent &ev =
                newEvent(*sink, t, thr.nextSeq, thr.pc,
                         analysis::EvKind::kRmw, tr.addr);
            ev.valueRead = old;
            ev.valueWritten = neu;
            setRfFromMemory(*sink, ev, tr.addr);
            ev.writeStamp = sink->nextStamp++;
            sink->lastWriter[tr.addr] = {t, thr.nextSeq};
        }
        ++thr.nextSeq;
        ++thr.pc;
        break;
      }

      case TKind::kAtLock: {
        thr.boundOld = readWord(tr.addr);
        thr.boundAddr = tr.addr;
        thr.boundChain = 0;
        thr.fwdPending = false;
        if (modelOpts.fault != Fault::kNoLock) {
            lockInc(s, line, t);
            thr.lockHeld = true;
            clearForeignLinks();  // lock acquisition is a GetX
        }
        thr.phase = AtPhase::kLocked;
        if (sink) {
            auto it = sink->lastWriter.find(tr.addr);
            thr.boundRfInit = it == sink->lastWriter.end();
            if (!thr.boundRfInit) {
                thr.boundRfThread = it->second.first;
                thr.boundRfSeq = it->second.second;
            }
        }
        break;
      }

      case TKind::kAtFwd: {
        int m = newestSbMatch(thr, tr.addr);
        SbEntry &e = thr.sb[static_cast<std::size_t>(m)];
        thr.boundOld = e.value;
        thr.boundAddr = tr.addr;
        thr.boundChain =
            static_cast<std::uint16_t>(e.unlock ? e.chain + 1 : 1);
        thr.fwdPending = false;
        if (modelOpts.fault != Fault::kNoLock) {
            if (e.unlock) {
                // do_not_unlock (§3.3): the source atomic's lock is
                // inherited; add this atomic's responsibility now.
                lockInc(s, line, t);
                thr.lockHeld = true;
            } else {
                e.captured = true;
                thr.fwdPending = true;
            }
        }
        thr.phase = AtPhase::kLocked;
        thr.boundRfInit = false;
        thr.boundRfThread = t;
        thr.boundRfSeq = e.seq;
        break;
      }

      case TKind::kAtCommit: {
        const isa::Inst &inst =
            progs[t].code[static_cast<std::size_t>(thr.pc)];
        std::int64_t neu = isa::applyRmw(inst.rmw, thr.boundOld,
                                         thr.regs[inst.src2],
                                         thr.regs[inst.src3]);
        thr.regs[inst.dst] = thr.boundOld;
        SbEntry e;
        e.addr = thr.boundAddr;
        e.value = neu;
        e.unlock = true;
        e.holdsLock = thr.lockHeld || thr.fwdPending;
        e.chain = thr.boundChain;
        e.expectOld = thr.boundOld;
        e.seq = thr.nextSeq;
        e.pc = thr.pc;
        if (sink) {
            analysis::MemEvent &ev =
                newEvent(*sink, t, thr.nextSeq, thr.pc,
                         analysis::EvKind::kRmw, thr.boundAddr);
            ev.valueRead = thr.boundOld;
            ev.valueWritten = neu;
            ev.rfInit = thr.boundRfInit;
            ev.rfThread = thr.boundRfThread;
            ev.rfSeq = thr.boundRfSeq;
            e.evIdx = static_cast<int>(sink->events.size()) - 1;
        }
        ++thr.nextSeq;
        thr.sb.push_back(e);
        thr.phase = AtPhase::kNone;
        thr.lockHeld = false;
        ++thr.pc;
        break;
      }

      case TKind::kScOk: {
        const isa::Inst &inst =
            progs[t].code[static_cast<std::size_t>(thr.pc)];
        std::int64_t v = thr.regs[inst.src2];
        writeWord(tr.addr, v);
        clearForeignLinks();
        thr.regs[inst.dst] = 0;
        thr.linkValid = false;
        if (sink) {
            analysis::MemEvent &ev =
                newEvent(*sink, t, thr.nextSeq, thr.pc,
                         analysis::EvKind::kWrite, tr.addr);
            ev.valueWritten = v;
            ev.writeStamp = sink->nextStamp++;
            sink->lastWriter[tr.addr] = {t, thr.nextSeq};
        }
        ++thr.nextSeq;
        ++thr.pc;
        break;
      }

      case TKind::kScFail: {
        const isa::Inst &inst =
            progs[t].code[static_cast<std::size_t>(thr.pc)];
        thr.regs[inst.dst] = 1;
        thr.linkValid = false;  // any SC consumes the reservation
        ++thr.nextSeq;
        ++thr.pc;
        break;
      }

      case TKind::kRecover: {
        // §3.2.5 watchdog flush: squash the pre-commit atomic, give
        // back its lock responsibility (§3.3.3), retry from the same
        // pc. Architecturally nothing younger has executed, so the
        // rollback is just the binding.
        if (thr.lockHeld)
            unlockDec(s, lineOf(thr.boundAddr), t);
        if (thr.fwdPending) {
            for (SbEntry &e : thr.sb) {
                if (e.captured && e.addr == thr.boundAddr) {
                    e.captured = false;
                    break;
                }
            }
        }
        thr.phase = AtPhase::kNone;
        thr.lockHeld = false;
        thr.fwdPending = false;
        return {};  // pc unchanged; the RMW stays the next visible op
      }
    }

    return closure(s, t, sink);
}

bool
Model::isFinal(const State &s) const
{
    for (const ThreadState &t : s.threads)
        if (!t.halted || !t.sb.empty())
            return false;
    return true;
}

StepViolation
Model::finalCheck(const State &s) const
{
    if (!s.locks.empty()) {
        const auto &kv = *s.locks.begin();
        return {StepViolation::Kind::kLockLeak,
                strfmt("lock leaked into the final state: line 0x%llx "
                       "still held by thread %u (count %u)",
                       (unsigned long long)kv.first,
                       (unsigned)kv.second.first,
                       (unsigned)kv.second.second)};
    }
    return {};
}

bool
Model::dependent(const Transition &a, const Transition &b)
{
    if (a.thread == b.thread)
        return true;
    return a.line() == b.line();
}

std::string
Model::describe(const Transition &t, const State *pre) const
{
    std::string s = strfmt("t%u pc=%d %-9s [0x%llx]", (unsigned)t.thread,
                           t.pc, tkindName(t.kind),
                           (unsigned long long)t.addr);
    if (pre) {
        const ThreadState &thr = pre->threads[t.thread];
        auto memVal = [pre](Addr a) {
            auto it = pre->mem.find(a);
            return it == pre->mem.end() ? 0 : it->second;
        };
        switch (t.kind) {
          case TKind::kRead:
          case TKind::kRmw:
          case TKind::kAtLock:
            s += strfmt(" reads %lld", (long long)memVal(t.addr));
            break;
          case TKind::kFlush:
            if (!thr.sb.empty()) {
                const SbEntry &e = thr.sb.front();
                s += strfmt(" writes %lld%s", (long long)e.value,
                            e.unlock ? " (store_unlock)" : "");
            }
            break;
          case TKind::kAtCommit:
            s += strfmt(" read %lld", (long long)thr.boundOld);
            break;
          case TKind::kAtFwd: {
            int m = newestSbMatch(thr, t.addr);
            if (m >= 0)
                s += strfmt(" binds %lld from own SB",
                            (long long)thr.sb[(std::size_t)m].value);
            break;
          }
          default:
            break;
        }
    }
    return s;
}

} // namespace fa::mc
