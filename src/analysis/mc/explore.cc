#include "analysis/mc/explore.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "analysis/tso_checker.hh"
#include "common/log.hh"

namespace fa::mc {

namespace {

const char *
violationKind(StepViolation::Kind k)
{
    switch (k) {
      case StepViolation::Kind::kAtomicity: return "atomicity";
      case StepViolation::Kind::kLockLeak: return "lock-leak";
      case StepViolation::Kind::kLocalLimit: return "local-limit";
      case StepViolation::Kind::kNone: break;
    }
    return "?";
}

/** A visible memory read taken while the reader's own SB is
 * non-empty — the only transition that leaves SC on TSO, and the
 * unit the reorder bound counts. */
bool
consumesReorderCredit(const State &s, const Transition &t)
{
    if (t.kind != TKind::kRead && t.kind != TKind::kAtLock)
        return false;
    return !s.threads[t.thread].sb.empty();
}

std::string
stateKey(const State &s, std::int64_t bound, std::uint32_t credits)
{
    std::string k = s.key();
    if (bound >= 0)
        k.append(reinterpret_cast<const char *>(&credits),
                 sizeof(credits));
    return k;
}

/** Replay `path` from the initial state, describing each step with
 * its pre-state — the replayable interleaving witness. When `edges`
 * is non-null, also record one ReorderEdge per (buffered store,
 * passing read) pair at every credit-consuming step. */
std::vector<std::string>
replayWitness(const Model &model, const MemInit &init,
              const std::vector<Transition> &path,
              std::vector<ReorderEdge> *edges = nullptr)
{
    std::vector<std::string> lines;
    lines.reserve(path.size() + 1);
    State s = model.initial(init);
    for (const Transition &t : path) {
        lines.push_back(model.describe(t, &s));
        if (edges && consumesReorderCredit(s, t)) {
            for (const SbEntry &e : s.threads[t.thread].sb) {
                ReorderEdge edge;
                edge.thread = t.thread;
                edge.storePc = e.pc;
                edge.storeAddr = e.addr;
                edge.storeUnlock = e.unlock;
                edge.opPc = t.pc;
                edge.opAddr = t.addr;
                edge.opKind = t.kind;
                if (std::find(edges->begin(), edges->end(), edge) ==
                    edges->end())
                    edges->push_back(edge);
            }
        }
        if (model.apply(s, t, nullptr))
            break;  // the final step is the violation itself
    }
    return lines;
}

std::string
deadlockDetail(const Model &model, const State &s)
{
    std::string d = "deadlock: no transition enabled;";
    for (CoreId t = 0; t < s.threads.size(); ++t) {
        const ThreadState &thr = s.threads[t];
        if (thr.halted && thr.sb.empty())
            continue;
        d += strfmt(" t%u{pc=%d", (unsigned)t, thr.pc);
        if (thr.phase == AtPhase::kLocked)
            d += strfmt(" locked@0x%llx",
                        (unsigned long long)thr.boundAddr);
        if (!thr.sb.empty())
            d += strfmt(" sb[%zu]->0x%llx", thr.sb.size(),
                        (unsigned long long)thr.sb.front().addr);
        d += "}";
    }
    (void)model;
    return d;
}

} // namespace

std::string
ReorderEdge::describe() const
{
    return strfmt("t%u: %s pc=%d [0x%llx] passed by %s pc=%d [0x%llx]",
                  (unsigned)thread,
                  storeUnlock ? "store_unlock" : "store", storePc,
                  (unsigned long long)storeAddr, tkindName(opKind),
                  opPc, (unsigned long long)opAddr);
}

const OutcomeWitness *
ExploreResult::witnessFor(const std::string &id) const
{
    auto it = std::lower_bound(
        witnesses.begin(), witnesses.end(), id,
        [](const OutcomeWitness &a, const std::string &b) {
            return a.outcomeId < b;
        });
    if (it != witnesses.end() && it->outcomeId == id)
        return &*it;
    return nullptr;
}

std::string
Outcome::pretty() const
{
    if (mem.empty() && regs.empty())
        return "(all memory zero)";
    std::string s;
    for (const auto &kv : mem) {
        if (!s.empty())
            s += ' ';
        s += strfmt("[0x%llx]=%lld", (unsigned long long)kv.first,
                    (long long)kv.second);
    }
    for (std::size_t t = 0; t < regs.size(); ++t) {
        for (std::size_t r = 0; r < regs[t].size(); ++r) {
            if (regs[t][r] == 0)
                continue;
            if (!s.empty())
                s += ' ';
            s += strfmt("t%zu.r%zu=%lld", t, r,
                        (long long)regs[t][r]);
        }
    }
    return s.empty() ? "(all zero)" : s;
}

bool
ExploreResult::hasOutcome(const std::string &id) const
{
    auto it = std::lower_bound(
        outcomes.begin(), outcomes.end(), id,
        [](const Outcome &a, const std::string &b) {
            return a.id < b;
        });
    return it != outcomes.end() && it->id == id;
}

void
Outcome::computeId()
{
    id.clear();
    for (const auto &kv : mem) {
        id.append(reinterpret_cast<const char *>(&kv.first),
                  sizeof(kv.first));
        id.append(reinterpret_cast<const char *>(&kv.second),
                  sizeof(kv.second));
    }
    for (const auto &rf : regs)
        id.append(reinterpret_cast<const char *>(rf.data()),
                  rf.size() * sizeof(std::int64_t));
}

Outcome
makeOutcome(const State &s, bool trackRegs)
{
    Outcome o;
    o.mem.assign(s.mem.begin(), s.mem.end());
    if (trackRegs) {
        o.regs.reserve(s.threads.size());
        for (const ThreadState &t : s.threads)
            o.regs.emplace_back(t.regs.begin(), t.regs.end());
    }
    o.computeId();
    return o;
}

// --------------------------------------------------------------------------
// Graph engine: BFS + state dedup => exhaustive set, minimal witnesses
// --------------------------------------------------------------------------

namespace {

/** Cooperative wall-clock budget shared by both engines: one
 * counter test per iteration, a clock read every 4096th. */
class BudgetGuard
{
  public:
    explicit BudgetGuard(double budgetSec)
        : budget(budgetSec), start(std::chrono::steady_clock::now())
    {}

    bool
    expired()
    {
        if (budget <= 0.0 || (++tick & 63) != 0)
            return false;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() > budget;
    }

  private:
    double budget;
    std::chrono::steady_clock::time_point start;
    std::uint64_t tick = 0;
};

/** Stamp a budget trip into the result (complete stays false via
 * the non-empty truncatedReason). */
void
markBudgetExceeded(ExploreResult &res, double budgetSec)
{
    res.truncatedReason =
        strfmt("time budget (%gs) exceeded", budgetSec);
    res.budgetExceeded = true;
}

struct GraphNode
{
    std::uint64_t parent;
    Transition via;
};

constexpr std::uint64_t kRoot = ~std::uint64_t{0};

std::vector<Transition>
graphPath(const std::vector<GraphNode> &nodes, std::uint64_t idx)
{
    // Node 0 is the root: it has no incoming transition.
    std::vector<Transition> path;
    while (idx != 0 && idx != kRoot) {
        path.push_back(nodes[idx].via);
        idx = nodes[idx].parent;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

ExploreResult
exploreGraph(const Model &model, const MemInit &init,
             const ExploreOpts &opts)
{
    ExploreResult res;
    std::vector<GraphNode> nodes;
    std::unordered_set<std::string> visited;
    std::unordered_map<std::string, Outcome> outcomes;
    // First node that reached each outcome; BFS order makes the
    // reconstructed path a minimal-length witness.
    std::unordered_map<std::string, std::uint64_t> outcomeNode;

    struct Pending
    {
        State s;
        std::uint64_t node;
        std::uint32_t credits;
    };
    std::deque<Pending> frontier;

    State s0 = model.initial(init);
    visited.insert(stateKey(s0, opts.reorderBound, 0));
    nodes.push_back({kRoot, {}});
    frontier.push_back({std::move(s0), 0, 0});

    auto addViolation = [&](const std::string &kind,
                            const std::string &detail,
                            std::vector<Transition> path) {
        ExploreViolation v;
        v.kind = kind;
        v.detail = detail;
        v.witness = replayWitness(
            model, init, path,
            opts.outcomeWitnesses ? &v.edges : nullptr);
        res.violations.push_back(std::move(v));
        return res.violations.size() >= opts.maxViolations;
    };

    // Last node dequeued — BFS order makes it a deepest state, the
    // livelock witness when the whole (complete) state graph turns
    // out to be final-state-free.
    std::uint64_t last_node = 0;

    bool stop = false;
    std::vector<Transition> trans;
    BudgetGuard budget(opts.timeBudgetSec);
    while (!frontier.empty() && !stop) {
        if (budget.expired()) {
            markBudgetExceeded(res, opts.timeBudgetSec);
            break;
        }
        Pending p = std::move(frontier.front());
        frontier.pop_front();
        last_node = p.node;

        model.enumerate(p.s, trans, opts.reduce);
        if (trans.empty()) {
            if (model.isFinal(p.s)) {
                ++res.finalStates;
                if (StepViolation v = model.finalCheck(p.s)) {
                    stop = addViolation(violationKind(v.kind),
                                        v.detail,
                                        graphPath(nodes, p.node));
                    continue;
                }
                Outcome o = makeOutcome(p.s, opts.trackRegs);
                if (opts.outcomeWitnesses)
                    outcomeNode.emplace(o.id, p.node);
                outcomes.emplace(o.id, std::move(o));
            } else {
                stop = addViolation("deadlock",
                                    deadlockDetail(model, p.s),
                                    graphPath(nodes, p.node));
            }
            continue;
        }

        for (const Transition &t : trans) {
            std::uint32_t consumed =
                consumesReorderCredit(p.s, t) ? 1u : 0u;
            if (opts.reorderBound >= 0 && consumed &&
                p.credits >=
                    static_cast<std::uint64_t>(opts.reorderBound))
                continue;  // bounded away

            State ns = p.s;
            StepViolation v = model.apply(ns, t, nullptr);
            ++res.transitionsTaken;
            if (v) {
                std::vector<Transition> path =
                    graphPath(nodes, p.node);
                path.push_back(t);
                if (addViolation(violationKind(v.kind), v.detail,
                                 std::move(path))) {
                    stop = true;
                    break;
                }
                continue;
            }
            std::string key = stateKey(ns, opts.reorderBound,
                                       p.credits + consumed);
            if (!visited.insert(std::move(key)).second)
                continue;
            if (visited.size() > opts.maxStates) {
                res.truncatedReason = strfmt(
                    "state limit (%llu) reached",
                    (unsigned long long)opts.maxStates);
                stop = true;
                break;
            }
            nodes.push_back({p.node, t});
            frontier.push_back({std::move(ns), nodes.size() - 1,
                                p.credits + consumed});
        }
    }

    res.statesExplored = visited.size();
    res.complete = res.truncatedReason.empty();
    if (res.complete && res.finalStates == 0 &&
        res.violations.empty()) {
        // Every execution cycles forever (e.g. a spin loop whose
        // exit condition can never be satisfied because a leaked
        // lock blocks the writer): a livelock, not a success.
        addViolation("livelock",
                     "no final state is reachable: every execution "
                     "eventually cycles (spin without progress)",
                     graphPath(nodes, last_node));
    }
    for (auto &kv : outcomes)
        res.outcomes.push_back(std::move(kv.second));
    std::sort(res.outcomes.begin(), res.outcomes.end(),
              [](const Outcome &a, const Outcome &b) {
                  return a.id < b.id;
              });
    if (opts.outcomeWitnesses) {
        for (const Outcome &o : res.outcomes) {
            auto it = outcomeNode.find(o.id);
            if (it == outcomeNode.end())
                continue;
            OutcomeWitness w;
            w.outcomeId = o.id;
            w.steps = replayWitness(
                model, init, graphPath(nodes, it->second), &w.edges);
            res.witnesses.push_back(std::move(w));
        }
        // res.outcomes is id-sorted, so witnesses already are too.
    }
    return res;
}

// --------------------------------------------------------------------------
// DPOR engine: sleep-set DFS, per-execution axiomatic certification
// --------------------------------------------------------------------------

struct Frame
{
    State s;
    std::string key;
    EventSink sink;
    Transition via{};       ///< transition that produced this frame
    std::vector<Transition> enabled;
    std::size_t next = 0;
    bool expanded = false;
    std::vector<Transition> sleep;
    std::uint32_t credits = 0;
};

ExploreResult
exploreDpor(const Model &model, const MemInit &init,
            const ExploreOpts &opts)
{
    ExploreResult res;
    std::unordered_map<std::string, Outcome> outcomes;
    // First complete execution that produced each outcome (DFS order
    // is deterministic; not minimal-length, unlike kGraph).
    std::unordered_map<std::string, std::vector<Transition>>
        outcomePaths;
    std::unordered_set<std::string> onPath;

    std::vector<Frame> stack;
    {
        Frame root;
        root.s = model.initial(init,
                               opts.certifyTso || opts.onExecution
                                   ? &root.sink
                                   : nullptr);
        root.key = stateKey(root.s, opts.reorderBound, 0);
        onPath.insert(root.key);
        stack.push_back(std::move(root));
        ++res.statesExplored;
    }

    auto stackPath = [&](const Transition *extra) {
        std::vector<Transition> path;
        for (std::size_t i = 1; i < stack.size(); ++i)
            path.push_back(stack[i].via);
        if (extra)
            path.push_back(*extra);
        return path;
    };
    auto addViolation = [&](const std::string &kind,
                            const std::string &detail,
                            const Transition *extra) {
        ExploreViolation v;
        v.kind = kind;
        v.detail = detail;
        v.witness = replayWitness(
            model, init, stackPath(extra),
            opts.outcomeWitnesses ? &v.edges : nullptr);
        res.violations.push_back(std::move(v));
        return res.violations.size() >= opts.maxViolations;
    };

    // Deepest path seen: the livelock witness when the (complete)
    // exploration never reaches a final state.
    std::vector<Transition> deepestPath;

    bool stop = false;
    BudgetGuard budget(opts.timeBudgetSec);
    while (!stack.empty() && !stop) {
        if (budget.expired()) {
            markBudgetExceeded(res, opts.timeBudgetSec);
            break;
        }
        Frame &top = stack.back();
        if (stack.size() > deepestPath.size() + 1) {
            deepestPath.clear();
            for (std::size_t i = 1; i < stack.size(); ++i)
                deepestPath.push_back(stack[i].via);
        }

        if (!top.expanded) {
            top.expanded = true;
            model.enumerate(top.s, top.enabled, opts.reduce);
            if (top.enabled.empty()) {
                if (model.isFinal(top.s)) {
                    ++res.finalStates;
                    if (StepViolation v = model.finalCheck(top.s)) {
                        stop = addViolation(violationKind(v.kind),
                                            v.detail, nullptr);
                    } else {
                        Outcome o =
                            makeOutcome(top.s, opts.trackRegs);
                        if (opts.outcomeWitnesses &&
                            !outcomes.count(o.id))
                            outcomePaths.emplace(o.id,
                                                 stackPath(nullptr));
                        outcomes.emplace(o.id, std::move(o));
                        if (opts.onExecution)
                            opts.onExecution(top.sink.events);
                        if (opts.certifyTso) {
                            ++res.executionsCertified;
                            analysis::TsoCheckResult cr =
                                analysis::checkTso(top.sink.events);
                            if (!cr.ok) {
                                stop = addViolation(
                                    "tso",
                                    "execution violates axiomatic "
                                    "x86-TSO: " + cr.error,
                                    nullptr);
                            }
                        }
                    }
                } else if (addViolation(
                               "deadlock",
                               deadlockDetail(model, top.s),
                               nullptr)) {
                    stop = true;
                }
            }
        }

        if (top.next >= top.enabled.size()) {
            onPath.erase(top.key);
            Transition via = top.via;
            bool wasRoot = stack.size() == 1;
            stack.pop_back();
            if (!wasRoot)
                stack.back().sleep.push_back(via);
            continue;
        }

        Transition t = top.enabled[top.next++];
        bool asleep = false;
        for (const Transition &z : top.sleep)
            if (z.sameAs(t)) {
                asleep = true;
                break;
            }
        if (asleep)
            continue;

        std::uint32_t consumed =
            consumesReorderCredit(top.s, t) ? 1u : 0u;
        if (opts.reorderBound >= 0 && consumed &&
            top.credits >=
                static_cast<std::uint64_t>(opts.reorderBound))
            continue;

        Frame child;
        child.s = top.s;
        child.sink = top.sink;
        StepViolation v = model.apply(
            child.s, t,
            opts.certifyTso || opts.onExecution ? &child.sink
                                                : nullptr);
        ++res.transitionsTaken;
        if (v) {
            if (addViolation(violationKind(v.kind), v.detail, &t))
                stop = true;
            continue;
        }
        child.credits = top.credits + consumed;
        child.key =
            stateKey(child.s, opts.reorderBound, child.credits);
        if (onPath.count(child.key))
            continue;  // path-local cycle (e.g. lock/recover loop)
        if (stack.size() >= opts.maxDepth) {
            res.truncatedReason = strfmt(
                "depth limit (%llu) reached",
                (unsigned long long)opts.maxDepth);
            stop = true;
            continue;
        }
        if (++res.statesExplored > opts.maxStates) {
            res.truncatedReason =
                strfmt("state limit (%llu) reached",
                       (unsigned long long)opts.maxStates);
            stop = true;
            continue;
        }
        child.via = t;
        for (const Transition &z : top.sleep)
            if (!Model::dependent(z, t))
                child.sleep.push_back(z);
        onPath.insert(child.key);
        stack.push_back(std::move(child));
    }

    res.complete = res.truncatedReason.empty();
    if (res.complete && res.finalStates == 0 &&
        res.violations.empty()) {
        res.violations.push_back(
            {"livelock",
             "no final state is reachable: every execution "
             "eventually cycles (spin without progress)",
             replayWitness(model, init, deepestPath)});
    }
    for (auto &kv : outcomes)
        res.outcomes.push_back(std::move(kv.second));
    std::sort(res.outcomes.begin(), res.outcomes.end(),
              [](const Outcome &a, const Outcome &b) {
                  return a.id < b.id;
              });
    if (opts.outcomeWitnesses) {
        for (const Outcome &o : res.outcomes) {
            auto it = outcomePaths.find(o.id);
            if (it == outcomePaths.end())
                continue;
            OutcomeWitness w;
            w.outcomeId = o.id;
            w.steps =
                replayWitness(model, init, it->second, &w.edges);
            res.witnesses.push_back(std::move(w));
        }
    }
    return res;
}

} // namespace

ExploreResult
explore(const Model &model, const MemInit &init,
        const ExploreOpts &opts)
{
    if (opts.engine == Engine::kGraph)
        return exploreGraph(model, init, opts);
    return exploreDpor(model, init, opts);
}

} // namespace fa::mc
