#include "analysis/mc/diff.hh"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "analysis/tso_checker.hh"
#include "common/log.hh"
#include "sim/presets.hh"
#include "sim/system.hh"

namespace fa::mc {

namespace {

std::string
replayRecipe(const Model &model, const DiffOpts &opts,
             std::uint64_t seed, std::uint64_t chaos_seed)
{
    return strfmt("replay: mode=%s machine=%s seed=%llu "
                  "chaos-profile=%s chaos-seed=%llu",
                  core::atomicsModeIdent(model.opts().mode),
                  opts.machine.c_str(), (unsigned long long)seed,
                  opts.chaosProfile.c_str(),
                  (unsigned long long)chaos_seed);
}

} // namespace

DiffResult
diffCertify(const Model &model, const ExploreResult &exhaustive,
            const MemInit &init, const DiffOpts &opts)
{
    DiffResult res;
    res.modelOutcomes =
        static_cast<unsigned>(exhaustive.outcomes.size());
    res.sound = true;

    // The simulator's memory image is huge and mostly untouched;
    // compare only over the words the model's outcomes mention plus
    // whatever the run itself wrote (a nonzero write to any other
    // word yields an unknown id, i.e. a soundness failure).
    std::set<Addr> domain;
    for (const Outcome &o : exhaustive.outcomes)
        for (const auto &kv : o.mem)
            domain.insert(kv.first);

    std::unordered_set<std::string> seen;
    const bool useChaos =
        !opts.chaosProfile.empty() && opts.chaosProfile != "none";

    for (unsigned i = 0; i < opts.runs && res.sound; ++i) {
        const std::uint64_t seed = opts.seed0 + i;
        const std::uint64_t chaos_seed = opts.chaosSeed0 + i;

        sim::MachineConfig cfg =
            sim::presets::byName(opts.machine, model.numThreads());
        cfg.core.mode = model.opts().mode;
        cfg.core.fwdChainCap = model.opts().fwdChainCap;
        cfg.recordMemTrace = true;
        cfg.sanitize = opts.sanitize;
        if (useChaos)
            cfg.chaos = chaos::chaosProfile(opts.chaosProfile,
                                            chaos_seed);

        sim::System sys(cfg, model.programs(), seed);
        sys.initMemory(init);
        sim::RunOutcome out = sys.run(opts.maxCycles);
        if (!out.finished) {
            res.sound = false;
            res.error = "simulator run did not finish: " +
                out.failure + "\n" +
                replayRecipe(model, opts, seed, chaos_seed);
            break;
        }
        analysis::TsoCheckResult tso =
            analysis::checkTso(*sys.trace());
        if (!tso.ok) {
            res.sound = false;
            res.error = "simulator run violates axiomatic x86-TSO: " +
                tso.error + "\n" +
                replayRecipe(model, opts, seed, chaos_seed);
            break;
        }

        std::set<Addr> words = domain;
        for (const analysis::MemEvent &ev : sys.trace()->events()) {
            if (ev.kind == analysis::EvKind::kWrite ||
                ev.kind == analysis::EvKind::kRmw)
                words.insert(wordOf(ev.addr));
        }
        Outcome o;
        for (Addr a : words) {
            std::int64_t v = sys.readWord(a);
            if (v != 0)
                o.mem.emplace_back(a, v);
        }
        o.computeId();

        DiffRun run;
        run.seed = seed;
        run.chaosSeed = chaos_seed;
        run.cycles = out.cycles;
        run.outcomeId = o.id;
        run.outcomePretty = o.pretty();
        run.known = exhaustive.hasOutcome(o.id);
        res.runs.push_back(run);
        seen.insert(o.id);

        if (!run.known) {
            res.sound = false;
            std::string known;
            for (const Outcome &m : exhaustive.outcomes) {
                known += "\n  allowed: " + m.pretty();
            }
            res.error =
                "simulator outcome is NOT in the exhaustive set "
                "(unsound!):\n  got:     " + o.pretty() + known +
                "\n" + replayRecipe(model, opts, seed, chaos_seed);
        }
    }

    res.distinctSeen = static_cast<unsigned>(seen.size());
    res.coverage = exhaustive.outcomes.empty()
        ? 1.0
        : static_cast<double>(res.distinctSeen) /
            static_cast<double>(exhaustive.outcomes.size());
    res.covered = res.coverage >= opts.minCoverage;
    if (res.sound && !res.covered) {
        res.error = strfmt(
            "coverage %.3f below the required %.3f (%u of %u model "
            "outcomes witnessed over %u runs) — raise --runs or vary "
            "--chaos-seed",
            res.coverage, opts.minCoverage, res.distinctSeen,
            res.modelOutcomes, opts.runs);
    }
    return res;
}

} // namespace fa::mc
