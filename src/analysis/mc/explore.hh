/**
 * @file
 * Exhaustive exploration engines over the mc::Model TSO semantics.
 *
 * Two engines with complementary strengths:
 *
 *  - kGraph: stateful breadth-first search with full state
 *    deduplication. Ground truth for reachable-final-state sets, and
 *    because it is breadth-first, every violation witness it emits is
 *    a *minimal-length* interleaving.
 *  - kDpor: stateless depth-first search with sleep sets (classic
 *    Godelev-style partial-order reduction on top of the model's
 *    persistent-set reduction) and path-local cycle pruning. It
 *    enumerates complete executions, so each one can be certified
 *    against the axiomatic checker (analysis::checkTso) — the
 *    operational/axiomatic agreement required by the model-checker
 *    acceptance criteria.
 *
 * Both honor the Joshi&Kroening-style reorder bound: the number of
 * visible memory reads a thread may take while its own store buffer
 * is non-empty (the only source of non-SC behaviour on TSO). Bound 0
 * explores only sequentially-consistent interleavings.
 */

#ifndef FA_ANALYSIS_MC_EXPLORE_HH
#define FA_ANALYSIS_MC_EXPLORE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/mc/tso_model.hh"

namespace fa::mc {

enum class Engine : std::uint8_t {
    kGraph,  ///< BFS + state dedup; minimal witnesses
    kDpor,   ///< sleep-set DFS; per-execution TSO certification
};

struct ExploreOpts
{
    Engine engine = Engine::kGraph;
    /** Stop after this many distinct states (kGraph) / stack pushes
     * (kDpor); result.complete=false when hit. */
    std::uint64_t maxStates = 1'000'000;
    /** DFS depth limit (kDpor). */
    std::uint64_t maxDepth = 200'000;
    /** Reads-while-SB-nonempty per execution; -1 = unbounded. */
    std::int64_t reorderBound = -1;
    /** Use the model's static-private persistent-set reduction. */
    bool reduce = true;
    /** Include final register files in outcomes (off by default:
     * spin-loop iteration counts differ across interleavings and
     * would explode the outcome set). */
    bool trackRegs = false;
    /** kDpor only: run analysis::checkTso over every complete
     * execution's event trace. */
    bool certifyTso = false;
    /** Stop exploring after this many violations. */
    std::uint64_t maxViolations = 1;
    /** Soft host wall-clock budget, in seconds; 0 = unbounded.
     * Checked cooperatively every few dozen loop iterations: on
     * expiry exploration stops with complete=false,
     * budgetExceeded=true and the partial state/outcome counts
     * intact (famc maps this to its own exit code). */
    double timeBudgetSec = 0.0;
    /** Record a structured witness (minimal trace + reorder edges)
     * for every distinct outcome; the CEGAR synthesizer's input. */
    bool outcomeWitnesses = false;
    /** kDpor only: invoked with every complete execution's event
     * trace, in global perform order (enables per-execution sinks
     * even when certifyTso is off). DPOR visits at least one
     * execution per Mazurkiewicz class, so the union of these traces
     * realizes every achievable ordering of every dependent pair —
     * the ground truth the predictive analyzer (analysis/race) is
     * differentially certified against. Ignored by kGraph. */
    std::function<void(const std::vector<analysis::MemEvent> &)>
        onExecution;
};

/**
 * One store->later-op reordering: a visible read (or early atomic
 * lock) taken while a specific older store of the same thread was
 * still buffered — the only source of non-SC behaviour on TSO, and
 * the edge the fence synthesizer must re-order.
 */
struct ReorderEdge
{
    CoreId thread = 0;
    std::int32_t storePc = -1;  ///< buffered store's static pc
    Addr storeAddr = 0;
    bool storeUnlock = false;   ///< buffered entry is a store_unlock
    std::int32_t opPc = -1;     ///< the passing read/lock's pc
    Addr opAddr = 0;
    TKind opKind = TKind::kRead;

    std::string describe() const;
    bool operator==(const ReorderEdge &o) const
    {
        return thread == o.thread && storePc == o.storePc &&
            storeAddr == o.storeAddr && storeUnlock == o.storeUnlock &&
            opPc == o.opPc && opAddr == o.opAddr && opKind == o.opKind;
    }
};

/** Structured witness for one outcome: the minimal interleaving that
 * first reached it (kGraph is BFS, so minimal-length) and every
 * reorder edge that interleaving used. An outcome unreachable under
 * SC always carries at least one edge. */
struct OutcomeWitness
{
    std::string outcomeId;
    std::vector<std::string> steps;
    std::vector<ReorderEdge> edges;
};

/** One reachable final state, canonicalized. */
struct Outcome
{
    std::string id;  ///< canonical key (sorting/dedup)
    /** Non-zero final memory words, ascending by address. */
    std::vector<std::pair<Addr, std::int64_t>> mem;
    /** Per-thread register files (only when trackRegs). */
    std::vector<std::vector<std::int64_t>> regs;

    /** Recompute `id` from mem/regs (canonical across producers —
     * the model checker and the differential driver must agree). */
    void computeId();

    std::string pretty() const;
};

/** A violation with a replayable interleaving witness. */
struct ExploreViolation
{
    std::string kind;  ///< atomicity | lock-leak | deadlock | tso |
                       ///< local-limit
    std::string detail;
    /** Human-readable transition-per-line interleaving from the
     * initial state to the violation. */
    std::vector<std::string> witness;
    /** Reorder edges along the witness (when outcomeWitnesses). */
    std::vector<ReorderEdge> edges;
};

struct ExploreResult
{
    /** Exploration exhausted the (possibly bounded) state space
     * without hitting maxStates/maxDepth. */
    bool complete = false;
    std::string truncatedReason;
    /** Truncated specifically by ExploreOpts::timeBudgetSec. */
    bool budgetExceeded = false;

    std::uint64_t statesExplored = 0;
    std::uint64_t transitionsTaken = 0;
    std::uint64_t finalStates = 0;      ///< final-state visits
    std::uint64_t executionsCertified = 0;

    /** Distinct final outcomes, ascending by id. */
    std::vector<Outcome> outcomes;
    std::vector<ExploreViolation> violations;

    /** Per-outcome structured witnesses, ascending by outcomeId
     * (only when opts.outcomeWitnesses). */
    std::vector<OutcomeWitness> witnesses;

    bool hasOutcome(const std::string &id) const;
    /** Witness for an outcome id; nullptr when absent. */
    const OutcomeWitness *witnessFor(const std::string &id) const;
};

/** Canonical outcome for a final state (the same canonicalization the
 * differential driver applies to simulator end states). */
Outcome makeOutcome(const State &s, bool trackRegs);

/** Explore the model from `init`. */
ExploreResult explore(const Model &model, const MemInit &init,
                      const ExploreOpts &opts);

} // namespace fa::mc

#endif // FA_ANALYSIS_MC_EXPLORE_HH
