/**
 * @file
 * Small-step operational x86-TSO semantics for workload programs —
 * the reference model behind the `famc` stateless model checker.
 *
 * The model is the Owens/Sarkar/Sewell abstract machine specialized
 * to this simulator's ISA and to the paper's three atomic flavours:
 *
 *  - each thread executes its program in order; local computation
 *    (ALU, branches, SB hits, store insertion) is deterministic and
 *    runs eagerly ("local closure"), so the exploration branches
 *    only on *visible* transitions;
 *  - each thread owns an unbounded FIFO store buffer; the oldest
 *    entry may flush to memory at any time unless the target line is
 *    locked by another thread;
 *  - baseline / baseline+Spec atomics (`kFenced`, `kSpec`) are one
 *    indivisible read-modify-write step that requires an empty SB —
 *    the classic x86-TSO LOCK'd instruction (speculative issue is a
 *    microarchitectural property with no architectural effect, so
 *    both modes share one semantics);
 *  - FreeAtomics (`kFree`, `kFreeFwd`) split the atomic into a
 *    lock/bind step (acquire the cacheline lock, read the value) and
 *    a commit step that requires an empty SB (§3.2.3) and enqueues
 *    the `store_unlock` write; the flush of that entry releases the
 *    lock. Foreign-locked lines block reads, flushes and lock
 *    acquisitions, which is how the §3.2.5 deadlock shapes arise in
 *    a program-order model. In `kFreeFwd` an atomic may bind from a
 *    pending own-SB store instead (lock_on_access for ordinary
 *    sources, do_not_unlock for atomic sources, §3.3), with the
 *    §3.3.4 chain cap.
 *
 * The watchdog (§3.2.5) appears as a `kRecover` transition: a
 * pre-commit lock-holding atomic may at any point be squashed and
 * retried (lock released, binding discarded). This over-approximates
 * the timer — sound, because the timer can expire under any timing.
 *
 * Intentional injectable semantic faults (`Fault`) weaken one
 * mechanism at a time so the checker can demonstrate the violation
 * each mechanism prevents, with a minimal interleaving witness.
 */

#ifndef FA_ANALYSIS_MC_TSO_MODEL_HH
#define FA_ANALYSIS_MC_TSO_MODEL_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/trace.hh"
#include "common/types.hh"
#include "core/core_config.hh"
#include "isa/program.hh"

namespace fa::mc {

/** Initial memory contents (mirrors sim::MemInit without pulling in
 * the simulator headers). */
using MemInit = std::vector<std::pair<Addr, std::int64_t>>;

/** Injectable semantic faults: each disables one paper mechanism so
 * the checker can exhibit the violation that mechanism prevents. */
enum class Fault : std::uint8_t {
    kNone,           ///< faithful semantics
    kNoLock,         ///< atomics never lock their line (§3.2 gone)
    kCommitNoDrain,  ///< atomics stop acting as fences: commit with a
                     ///< non-empty SB and let reads pass a pending
                     ///< store_unlock (§3.2.3 gone)
    kNoRecover,      ///< watchdog disabled: deadlocks are terminal
                     ///< (§3.2.5 gone)
    kLeakUnlock,     ///< store_unlock performs but never releases the
                     ///< lock (unlock responsibility lost, §3.3.3)
};

const char *faultName(Fault fault);

/** Parse a fault name ("none", "no-lock", "commit-no-drain",
 * "no-recover", "leak-unlock"); returns false on unknown names. */
bool parseFault(const std::string &name, Fault *out);

/** Model parameters. */
struct ModelOpts
{
    core::AtomicsMode mode = core::AtomicsMode::kFreeFwd;
    unsigned fwdChainCap = 32;      ///< §3.3.4 bound
    Fault fault = Fault::kNone;
    /** Master seed; thread t's kRand stream uses mix64(seed, t+1),
     * matching sim::System's per-core derivation. */
    std::uint64_t masterSeed = 1;
    /** Enumerate the spurious store-conditional failure branch (the
     * detailed simulator can fail an SC on a capacity eviction, so
     * soundness requires it). */
    bool spuriousScFail = true;
    /** Step limit for one local closure (infinite local loops are a
     * program bug, reported as a violation). */
    std::uint64_t maxLocalSteps = 1'000'000;
};

/** One store-buffer entry. Fields below the marker are per-path
 * bookkeeping for the event sink and are excluded from the canonical
 * state key. */
struct SbEntry
{
    Addr addr = 0;              ///< word address
    std::int64_t value = 0;
    bool unlock = false;        ///< store_unlock half of an atomic
    bool captured = false;      ///< a pending own atomic binds from
                                ///< this entry (lock_on_access)
    bool holdsLock = false;     ///< flushing releases one lock count
    std::uint16_t chain = 0;    ///< §3.3.4 forwarding chain depth
    std::int64_t expectOld = 0; ///< unlock: the value the atomic read
                                ///< (atomicity self-check at flush)
    // --- not part of the canonical key ---
    SeqNum seq = 0;             ///< dynamic seq of the store
    int evIdx = -1;             ///< MemEvent index in the sink
    std::int32_t pc = -1;       ///< static pc of the buffered store
};

/** Pending-atomic phase of one thread. */
enum class AtPhase : std::uint8_t {
    kNone,    ///< no atomic in progress
    kLocked,  ///< value bound, commit pending (pc still at the RMW)
};

/** Architectural + TSO-machine state of one thread. */
struct ThreadState
{
    std::int32_t pc = 0;
    std::array<std::int64_t, isa::kNumRegs> regs{};
    std::vector<SbEntry> sb;    ///< [0] is the oldest entry
    bool halted = false;

    AtPhase phase = AtPhase::kNone;
    std::int64_t boundOld = 0;  ///< value the pending atomic read
    Addr boundAddr = 0;         ///< its word address
    std::uint16_t boundChain = 0;  ///< chain depth of its unlock entry
    bool fwdPending = false;    ///< bound from an ordinary SB entry
                                ///< that has not performed yet
    bool lockHeld = false;      ///< pending atomic holds a lock count

    bool linkValid = false;     ///< LL/SC reservation
    Addr linkLine = 0;
    std::uint64_t randIndex = 0;

    // --- not part of the canonical key ---
    SeqNum nextSeq = 1;
    bool boundRfInit = true;    ///< reads-from of the bound value
    CoreId boundRfThread = 0;
    SeqNum boundRfSeq = 0;
};

/** One global state of the abstract machine. */
struct State
{
    std::vector<ThreadState> threads;
    /** Word address -> value; zero-valued words are erased so that
     * "never written" and "restored to zero" canonicalize equally. */
    std::map<Addr, std::int64_t> mem;
    /** Locked line -> (owner thread, responsibility count). */
    std::map<Addr, std::pair<CoreId, std::uint32_t>> locks;

    /** Canonical serialization: equal strings iff equal states. */
    std::string key() const;
};

/** Visible transition kinds. */
enum class TKind : std::uint8_t {
    kRead,      ///< load / load-linked reads memory
    kFlush,     ///< oldest SB entry performs
    kRmw,       ///< fenced/spec one-step atomic
    kAtLock,    ///< free modes: lock the line and bind from memory
    kAtFwd,     ///< kFreeFwd: bind by forwarding from the own SB
    kAtCommit,  ///< free modes: commit; store_unlock enters the SB
    kScOk,      ///< store-conditional succeeds (writes memory)
    kScFail,    ///< store-conditional fails (reservation lost or
                ///< spurious)
    kRecover,   ///< watchdog: squash + retry a pre-commit atomic
};

const char *tkindName(TKind kind);

/** One visible transition of one thread. */
struct Transition
{
    TKind kind = TKind::kRead;
    CoreId thread = 0;
    std::int32_t pc = 0;
    Addr addr = 0;  ///< word address (locked line word for kRecover)

    Addr line() const { return lineOf(addr); }

    bool
    sameAs(const Transition &o) const
    {
        return kind == o.kind && thread == o.thread && pc == o.pc &&
            addr == o.addr;
    }
};

/** A violation detected while applying a transition or checking a
 * final state. kNone means the step was clean. */
struct StepViolation
{
    enum class Kind : std::uint8_t {
        kNone,
        kAtomicity,   ///< store_unlock found the line changed
        kLockLeak,    ///< locks survive into a final state
        kLocalLimit,  ///< local closure exceeded maxLocalSteps
    };
    Kind kind = Kind::kNone;
    std::string detail;

    explicit operator bool() const { return kind != Kind::kNone; }
};

/**
 * Optional per-execution memory-event recorder. When supplied to
 * Model::apply, every committed memory event is captured in the
 * axiomatic checker's MemEvent format, so a complete execution can
 * be certified with analysis::checkTso — the bridge that keeps the
 * operational and axiomatic formulations in agreement.
 */
struct EventSink
{
    std::vector<analysis::MemEvent> events;
    std::uint64_t nextStamp = 1;
    /** Word address -> last performed writer (rfInit when absent). */
    std::map<Addr, std::pair<CoreId, SeqNum>> lastWriter;
};

class Model
{
  public:
    Model(std::vector<isa::Program> progs, const ModelOpts &opts);

    const ModelOpts &opts() const { return modelOpts; }
    const std::vector<isa::Program> &programs() const { return progs; }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(progs.size());
    }
    bool usesRand() const { return anyRand; }

    /** Initial state: memory image loaded, every thread's local
     * closure run up to its first visible operation. Pass `sink` to
     * record the startup closure's events (buffered stores before
     * the first visible op) — without it those events are invisible
     * to per-execution event streams. */
    State initial(const MemInit &init, EventSink *sink = nullptr) const;

    /**
     * Enumerate the enabled visible transitions of `s`.
     *
     * With `reduce`, when some thread's entire enabled set touches
     * only lines no other thread can ever access (statically
     * private) and is lock-free, only that thread's transitions are
     * returned — a sound singleton-process persistent set.
     */
    void enumerate(const State &s, std::vector<Transition> &out,
                   bool reduce = true) const;

    /** Apply `t` to `s` in place, then run the thread's local
     * closure. `sink` (optional) records committed memory events. */
    StepViolation apply(State &s, const Transition &t,
                        EventSink *sink = nullptr) const;

    /** All threads halted with empty store buffers. */
    bool isFinal(const State &s) const;

    /** Invariants of a final state (no lock may survive). */
    StepViolation finalCheck(const State &s) const;

    /** Transitions of different threads commute unless they touch
     * the same cacheline (locks are line-granular). */
    static bool dependent(const Transition &a, const Transition &b);

    /** Human-readable transition description; with `pre`, annotated
     * with the values the step observes. */
    std::string describe(const Transition &t,
                         const State *pre = nullptr) const;

    /** True when the static-private reduction could be computed
     * (every access constant-propagates to a known address). */
    bool reductionAvailable() const { return reduceOk; }

  private:
    /** Effective mode at one RMW site: the instruction's
     * isa::RmwModeHint overrides the model-wide mode. */
    core::AtomicsMode effectiveMode(const isa::Inst &inst) const
    {
        return core::resolveAtomicsMode(modelOpts.mode, inst.rmwMode);
    }
    static bool fencedSemantics(core::AtomicsMode m)
    {
        return m == core::AtomicsMode::kFenced ||
            m == core::AtomicsMode::kSpec;
    }
    bool foreignLocked(const State &s, Addr line, CoreId t) const;
    /** Reads must not pass a pending store_unlock (atomics order
     * write->read); disabled by the kCommitNoDrain fault. */
    bool readGate(const ThreadState &thr) const;
    int newestSbMatch(const ThreadState &thr, Addr addr) const;
    void lockInc(State &s, Addr line, CoreId t) const;
    void unlockDec(State &s, Addr line, CoreId t) const;
    StepViolation closure(State &s, CoreId t, EventSink *sink) const;
    bool privateLine(Addr line, CoreId t) const;
    bool freeTransition(const State &s, const Transition &t) const;

    std::vector<isa::Program> progs;
    ModelOpts modelOpts;
    std::vector<std::uint64_t> randSeeds;
    bool anyRand = false;
    /** line -> owning thread when statically single-threaded. */
    std::map<Addr, CoreId> lineOwner;
    bool reduceOk = false;
};

} // namespace fa::mc

#endif // FA_ANALYSIS_MC_TSO_MODEL_HH
