/**
 * @file
 * Differential certification of the detailed simulator against the
 * famc exhaustive outcome set.
 *
 * Two properties, per atomic mode:
 *
 *  - soundness: every final memory image the simulator produces must
 *    be a member of the model checker's exhaustive set of reachable
 *    final states — a simulator outcome outside the set is a
 *    simulator (or model) bug, reported with everything needed to
 *    replay it;
 *  - coverage: across chaos-perturbed schedules the simulator should
 *    witness a configurable fraction of the exhaustive set — a
 *    sanity check that the schedule diversity is real (the detailed
 *    machine is deterministic per seed, so diversity comes from the
 *    chaos engine's timing perturbations).
 */

#ifndef FA_ANALYSIS_MC_DIFF_HH
#define FA_ANALYSIS_MC_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mc/explore.hh"
#include "analysis/mc/tso_model.hh"

namespace fa::mc {

struct DiffOpts
{
    unsigned runs = 8;
    std::uint64_t seed0 = 1;        ///< per-run master seed = seed0+i
    std::string machine = "tiny";   ///< machine preset
    /** Chaos profile perturbing each run's schedule ("" or "none"
     * disables; then every run takes the same schedule). Must be a
     * TSO-clean profile — never "buggy_unlock". */
    std::string chaosProfile = "coherence";
    std::uint64_t chaosSeed0 = 1;   ///< per-run chaos seed = base+i
    /** Required fraction of the exhaustive set witnessed (0 disables
     * the coverage gate). */
    double minCoverage = 0.0;
    Cycle maxCycles = 20'000'000;
    bool sanitize = false;          ///< arm fasan during the runs
};

struct DiffRun
{
    std::uint64_t seed = 0;
    std::uint64_t chaosSeed = 0;
    Cycle cycles = 0;
    std::string outcomeId;
    std::string outcomePretty;
    bool known = false;  ///< outcome is in the exhaustive set
};

struct DiffResult
{
    bool sound = false;
    bool covered = false;
    bool ok() const { return sound && covered; }
    /** First failure, with the replay recipe (seed, chaos profile
     * and seed, machine, mode). */
    std::string error;

    double coverage = 0.0;
    unsigned distinctSeen = 0;
    unsigned modelOutcomes = 0;
    std::vector<DiffRun> runs;
};

/**
 * Run the detailed simulator `opts.runs` times over the model's
 * programs and certify each final state against `exhaustive`
 * (which must come from explore() over the same model and `init`).
 * Every run also passes through the axiomatic TSO checker.
 */
DiffResult diffCertify(const Model &model,
                       const ExploreResult &exhaustive,
                       const MemInit &init, const DiffOpts &opts);

} // namespace fa::mc

#endif // FA_ANALYSIS_MC_DIFF_HH
