#include "analysis/sanitizer/fasan.hh"

#include "common/log.hh"
#include "core/atomic_queue.hh"

namespace fa::analysis {

void
Fasan::record(const char *invariant, CoreId core, Cycle now,
              std::string detail)
{
    if (violations.size() >= kMaxViolations)
        return;
    violations.push_back({invariant, core, now, std::move(detail)});
}

std::string
Fasan::report() const
{
    std::string s;
    for (const Violation &v : violations) {
        s += strfmt("fasan: %s violated on core %u at cycle %llu: %s\n",
                    v.invariant.c_str(), (unsigned)v.core,
                    (unsigned long long)v.cycle, v.detail.c_str());
    }
    return s;
}

void
Fasan::checkAtomicCommit(CoreId core, Cycle now, SeqNum seq, int pc,
                         unsigned sb_count)
{
    if (sb_count == 0)
        return;
    record("sb-empty-at-commit", core, now,
           strfmt("atomic seq=%llu pc=%d committed with %u stores "
                  "still buffered (store->AtomicRMW order broken, "
                  "§3.2.3)",
                  (unsigned long long)seq, pc, sb_count));
}

void
Fasan::checkUnlockHandoff(CoreId core, Cycle now, SeqNum seq,
                          Addr line, unsigned captures,
                          bool line_locked_after)
{
    if (captures == 0 || line_locked_after)
        return;
    record("lock-responsibility", core, now,
           strfmt("store_unlock seq=%llu handed line 0x%llx to %u "
                  "capturing AQ entries but the line is unlocked "
                  "(forwarding chain lost its lock, §3.3)",
                  (unsigned long long)seq, (unsigned long long)line,
                  captures));
}

void
Fasan::checkSquashCleanup(CoreId core, Cycle now, SeqNum from_seq,
                          const core::AtomicQueue &aq,
                          const SeqLiveFn &seq_live)
{
    for (unsigned i = 0; i < aq.size(); ++i) {
        const core::AtomicQueue::Entry &e =
            aq.entry(static_cast<int>(i));
        if (!e.valid)
            continue;
        if (e.seq >= from_seq) {
            record("unlock-on-squash", core, now,
                   strfmt("AQ entry %u (seq=%llu%s line=0x%llx) "
                          "survived a squash from seq=%llu "
                          "(unlock_on_squash incomplete, §3.1)",
                          i, (unsigned long long)e.seq,
                          e.locked ? " LOCKED" : "",
                          (unsigned long long)e.line,
                          (unsigned long long)from_seq));
        } else if (e.locked && !seq_live(e.seq)) {
            record("lock-responsibility", core, now,
                   strfmt("AQ entry %u holds line 0x%llx for seq=%llu "
                          "which is neither in flight nor draining "
                          "(orphaned lock after squash, §3.3.3)",
                          i, (unsigned long long)e.line,
                          (unsigned long long)e.seq));
        }
    }
}

void
Fasan::checkWatchdogVictim(CoreId core, Cycle now, SeqNum victim_seq,
                           bool is_atomic, int aq_idx, bool in_flight)
{
    if (is_atomic && aq_idx >= 0 && in_flight)
        return;
    record("watchdog-victim", core, now,
           strfmt("watchdog victim seq=%llu is not a lock-holding "
                  "in-flight atomic (atomic=%d aqIdx=%d inflight=%d, "
                  "§3.2.5)",
                  (unsigned long long)victim_seq, is_atomic ? 1 : 0,
                  aq_idx, in_flight ? 1 : 0));
}

void
Fasan::checkVictimLine(CoreId core, Cycle now, Addr victim_line,
                       bool victim_locked, const char *level)
{
    if (!victim_locked)
        return;
    record("locked-victim", core, now,
           strfmt("%s replacement evicted locked line 0x%llx "
                  "(locked lines must never be victims, §3.2.4)",
                  level, (unsigned long long)victim_line));
}

void
Fasan::checkFinal(CoreId core, Cycle now, const core::AtomicQueue &aq)
{
    for (unsigned i = 0; i < aq.size(); ++i) {
        const core::AtomicQueue::Entry &e =
            aq.entry(static_cast<int>(i));
        if (!e.valid)
            continue;
        record("lock-drain-at-halt", core, now,
               strfmt("AQ entry %u still valid after all threads "
                      "halted (seq=%llu%s line=0x%llx)",
                      i, (unsigned long long)e.seq,
                      e.locked ? " LOCKED" : "",
                      (unsigned long long)e.line));
    }
}

} // namespace fa::analysis
