/**
 * @file
 * fasan — the FreeAtomics invariant sanitizer.
 *
 * An always-compiled, zero-cost-when-off cycle-level checker for the
 * paper's correctness invariants, wired into the core, Atomic Queue,
 * LSQ and memory hierarchy behind nullable-pointer hooks (the same
 * pattern as the tracer / pipeview / chaos engines: one pointer test
 * per site when detached, nothing else).
 *
 * Checked invariants:
 *  - SB-empty-at-commit (§3.2.3): an atomic RMW may only commit once
 *    the store buffer has drained.
 *  - Locked-line victim exclusion (§3.2.4): cache replacement never
 *    selects a line locked by the owning core's AQ.
 *  - Lock-responsibility conservation along forwarding chains
 *    (§3.3): when a performing store_unlock hands its lock to one or
 *    more capturing AQ entries, the line must remain locked.
 *  - Unlock-on-squash completeness (§3.1/§3.3.3): after a squash no
 *    AQ entry from the squashed range may survive, and every
 *    surviving locked entry must belong to a live (in-flight or
 *    SB-draining) atomic.
 *  - Watchdog victim validity (§3.2.5): the deadlock-recovery flush
 *    always targets an in-flight, lock-holding atomic.
 *  - Lock drain at halt: a finished run leaves every AQ empty.
 *
 * Violations are collected (not thrown) so the simulation loop can
 * abort through the existing forensics path with full pipeline
 * state.
 */

#ifndef FA_ANALYSIS_SANITIZER_FASAN_HH
#define FA_ANALYSIS_SANITIZER_FASAN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fa::core {
class AtomicQueue;
} // namespace fa::core

namespace fa::analysis {

class Fasan
{
  public:
    struct Violation
    {
        std::string invariant;  ///< short invariant name
        CoreId core;
        Cycle cycle;
        std::string detail;
    };

    /** Is `seq` still alive in the pipeline (in flight, or a
     * committed store draining in the SQ/SB)? */
    using SeqLiveFn = std::function<bool(SeqNum)>;

    bool failed() const { return !violations.empty(); }
    const std::vector<Violation> &all() const { return violations; }
    /** One "fasan: ..." line per violation. */
    std::string report() const;

    /** §3.2.3 — called as an atomic RMW commits. */
    void checkAtomicCommit(CoreId core, Cycle now, SeqNum seq, int pc,
                           unsigned sb_count);

    /** §3.3 — called after a store_unlock performed and released its
     * own AQ entry; `captures` entries took the lock over. */
    void checkUnlockHandoff(CoreId core, Cycle now, SeqNum seq,
                            Addr line, unsigned captures,
                            bool line_locked_after);

    /** §3.1/§3.3.3 — called at the end of squashFrom(from_seq). */
    void checkSquashCleanup(CoreId core, Cycle now, SeqNum from_seq,
                            const core::AtomicQueue &aq,
                            const SeqLiveFn &seq_live);

    /** §3.2.5 — called just before the watchdog squashes `victim`. */
    void checkWatchdogVictim(CoreId core, Cycle now, SeqNum victim_seq,
                             bool is_atomic, int aq_idx,
                             bool in_flight);

    /** §3.2.4 — called when a cache insert evicted `victim_line`;
     * `victim_locked` is the owning core's AQ lock CAM result. */
    void checkVictimLine(CoreId core, Cycle now, Addr victim_line,
                         bool victim_locked, const char *level);

    /** Called once per core when a run finishes cleanly. */
    void checkFinal(CoreId core, Cycle now,
                    const core::AtomicQueue &aq);

  private:
    void record(const char *invariant, CoreId core, Cycle now,
                std::string detail);

    std::vector<Violation> violations;
    static constexpr std::size_t kMaxViolations = 64;
};

} // namespace fa::analysis

#endif // FA_ANALYSIS_SANITIZER_FASAN_HH
