/**
 * @file
 * Deadlock-shape prediction for Free Atomics (paper §3.2.5). With
 * fences removed, atomics lock their cachelines while speculative and
 * out of order, so two cores acquiring two lines in opposite orders
 * can deadlock in three program shapes — RMW-RMW (Figure 5),
 * Store-RMW (Figure 6) and Load-RMW (Figure 7) — all broken at run
 * time by the watchdog. This pass predicts those shapes from program
 * structure so a run's watchdogTimeouts counter can be interpreted
 * (expected recovery vs. genuine bug), and flags loops whose
 * back-to-back RMWs on one line form forwarding chains that will hit
 * the §3.3.4 chain cap.
 */

#ifndef FA_ANALYSIS_LOCK_CYCLE_HH
#define FA_ANALYSIS_LOCK_CYCLE_HH

#include <string>
#include <vector>

#include "analysis/cfg.hh"

namespace fa::analysis {

enum class DeadlockKind : std::uint8_t {
    kRmwRmw,    ///< Figure 5: RMW A ; RMW B  vs  RMW B ; RMW A
    kStoreRmw,  ///< Figure 6: st A ; RMW B   vs  st B ; RMW A
    kLoadRmw,   ///< Figure 7: ld A ; RMW B   vs  ld B ; RMW A
};

const char *deadlockKindName(DeadlockKind kind);

/** One predicted cross-core lock-order inversion. */
struct DeadlockReport
{
    DeadlockKind kind = DeadlockKind::kRmwRmw;
    unsigned threadA = 0;
    unsigned threadB = 0;
    Addr lineX = 0;  ///< line threadA touches first / threadB locks
    Addr lineY = 0;  ///< line threadA locks / threadB touches first
    int pcA1 = 0, pcA2 = 0;  ///< threadA's first access / RMW pcs
    int pcB1 = 0, pcB2 = 0;
    unsigned occurrences = 1;  ///< distinct pc pairs with this shape

    std::string describe() const;
};

/** A loop whose body RMWs one line: a forwarding-chain site. */
struct FwdChainReport
{
    unsigned thread = 0;
    Addr line = 0;
    int firstPc = 0;         ///< first in-loop RMW pc on the line
    unsigned rmwsPerIter = 0;
    bool mayExceedCap = false;
    /** The chained line also participates in a detected RMW–RMW
     * lock-order inversion (Figure 5) involving this thread: a chain
     * break here lands mid-inversion, so watchdog recoveries at this
     * site are expected rather than anomalous. */
    bool inRmwRmwCycle = false;
    unsigned cyclePartner = 0;  ///< other thread of that inversion
    Addr cycleOtherLine = 0;    ///< line acquired in opposite order

    std::string describe(unsigned cap) const;
};

struct LockCycleResult
{
    std::vector<DeadlockReport> deadlocks;
    std::vector<FwdChainReport> chains;
};

struct LockCycleOptions
{
    /** Two accesses further apart than this many memory events are
     * unlikely to be in flight together (ROB-window proxy). */
    unsigned window = 64;
    unsigned fwdChainCap = 32;  ///< CoreConfig::fwdChainCap default
    unsigned maxReports = 64;
};

LockCycleResult
analyzeLockCycles(const std::vector<ThreadSummary> &threads,
                  const LockCycleOptions &opts = {});

} // namespace fa::analysis

#endif // FA_ANALYSIS_LOCK_CYCLE_HH
