/**
 * @file
 * Differential certification of predictive race findings against the
 * exhaustive model checker.
 *
 * farace predicts, from ONE simulated execution, orderings that could
 * differ in an equivalent execution. famc (analysis/mc) enumerates
 * EVERY execution of the same program. The gate: each prediction must
 * be realizable in the union of the exhaustive set and the observed
 * execution itself (the observed trace is a real machine execution
 * carrying exact coherence stamps and rf edges, and it is what
 * supplies spin-loop iterations the explorer stutter-prunes — a
 * stalling spin read is a distinct interleaving the DPOR engine
 * deliberately collapses) —
 *
 *   - kRace(a, b): one realized execution orders a before b in TSO
 *     memory order and another orders b before a,
 *   - kReorder(store, read): some realized execution lets the read
 *     take its value before the older same-thread store performs
 *     (the srcStamp(read) < stamp(store) placement),
 *   - kAtomicity: never realizable in a correct model — a prediction
 *     is a simulator bug by definition, so any occurrence on a clean
 *     run fails certification.
 *
 * Memory-order placement is exact: writes are ordered by their
 * coherence stamps; a read sits immediately after the write it reads
 * from (TSO reads the last performed write, so read r precedes write
 * w in memory order iff srcStamp(r) < stamp(w)).
 *
 * Zero unconfirmed predictions across the litmus corpus x all four
 * atomics modes is a ctest/CI gate (tools/farace --certify).
 */

#ifndef FA_ANALYSIS_RACE_CERTIFY_HH
#define FA_ANALYSIS_RACE_CERTIFY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/mc/explore.hh"
#include "analysis/mc/tso_model.hh"
#include "analysis/race/hb.hh"
#include "isa/program.hh"

namespace fa::analysis::race {

struct CertifyOpts
{
    core::AtomicsMode mode = core::AtomicsMode::kFreeFwd;
    std::uint64_t maxStates = 2'000'000;
    std::uint64_t maxDepth = 200'000;
    double timeBudgetSec = 0.0;
};

/** Realizable-ordering sets harvested from one exhaustive DPOR
 * exploration; reusable across several traces of the same program. */
struct OrderCorpus
{
    bool complete = false;       ///< exploration exhausted the space
    std::string truncatedReason;
    std::uint64_t executions = 0;

    /** Conflicting site pair -> bitmask of orders seen (bit0: lower
     * key side first, bit1: reverse). Key via pairKey(). */
    std::unordered_map<std::uint64_t, std::uint8_t> orders;
    /** Realized store->read reorderings, via reorderKey(). */
    std::unordered_set<std::uint64_t> reorders;

    static std::uint64_t pairKey(CoreId ta, int pca, CoreId tb,
                                 int pcb, bool *swapped);
    static std::uint64_t reorderKey(CoreId t, int store_pc,
                                    int read_pc);

    /** Harvest one more realized execution into the corpus. Used to
     * seed the corpus with the observed detailed-simulator trace
     * (same MemEvent shape: coherence stamps + rf) before
     * certification; does not count toward `executions`. */
    void addExecution(const std::vector<analysis::MemEvent> &evs);
};

/** Explore `progs` exhaustively under `opts.mode` and harvest the
 * realizable-ordering corpus. */
OrderCorpus harvestOrders(const std::vector<isa::Program> &progs,
                          const mc::MemInit &init,
                          const CertifyOpts &opts);

struct CertifyResult
{
    bool exploreComplete = false;
    std::string truncatedReason;
    std::uint64_t executions = 0;
    std::uint64_t predictions = 0;  ///< findings checked
    std::uint64_t confirmed = 0;
    /** Human-readable description of each unconfirmed prediction —
     * a false positive of the predictive analysis. */
    std::vector<std::string> unconfirmed;

    bool
    ok() const
    {
        return exploreComplete && unconfirmed.empty();
    }
};

/** Check every finding of `report` against the corpus. */
CertifyResult certifyAgainst(const OrderCorpus &corpus,
                             const RaceReport &report);

/** Convenience: harvest, seed with the observed trace, certify.
 * `observed` is the detailed-simulator event stream the report was
 * built from; it contributes the observed side of each predicted
 * pair (including spin iterations the explorer stutter-prunes). */
CertifyResult certifyPredictions(const std::vector<isa::Program> &progs,
                                 const mc::MemInit &init,
                                 const std::vector<analysis::MemEvent> &observed,
                                 const RaceReport &report,
                                 const CertifyOpts &opts);

} // namespace fa::analysis::race

#endif // FA_ANALYSIS_RACE_CERTIFY_HH
