/**
 * @file
 * Predictive happens-before analysis over one recorded execution.
 *
 * Consumes the TraceRecorder streams (committed memory events plus
 * the AQ lock/unlock/fwd/squash synchronization stream) and builds,
 * with vector clocks, the happens-before relation the hardware
 * enforces in EVERY execution equivalent to the observed one:
 *
 *   - x86-TSO preserved program order (po minus store->later-load),
 *   - reads-from edges (writer happens-before its reader),
 *   - AQ line-lock exclusion windows (release->next-acquire, at line
 *     granularity — the §3.1 lock that makes atomics atomic),
 *   - per-mode atomic ordering: under kFenced/kSpec an atomic is a
 *     full fence (Mem_Fence1/2); under kFree/kFreeFwd the same
 *     closure arises from SB-drain-at-commit (older stores before
 *     the atomic, §3.2.3) plus the read gate (no younger read passes
 *     a pending store_unlock).
 *
 * Conflicting accesses unordered by this relation can occur in the
 * opposite order in some execution of the same Mazurkiewicz class —
 * a *predicted* violation, checkable in O(events) at core counts
 * where exhaustive exploration (analysis/mc) is infeasible. The
 * construction is deliberately under-approximating (it may add
 * orderings, never drop them), so predictions are sound: the
 * differential gate (analysis/race/certify.hh) asserts every one is
 * realizable in the exhaustive set on the litmus corpus.
 *
 * Finding categories:
 *   - kRace: conflicting plain accesses unordered by HB,
 *   - kAtomicity: an access of another core performing inside a
 *     locked atomic's acquire->drain window (hardware must deny it;
 *     a finding is a simulator/hardware bug, e.g. a leaked lock),
 *   - kReorder: an older store and a younger read of one thread with
 *     no fence/atomic between and no cross-thread HB path — the
 *     store buffer may reorder them in an equivalent execution (the
 *     fence a programmer "lost" relative to SC).
 */

#ifndef FA_ANALYSIS_RACE_HB_HH
#define FA_ANALYSIS_RACE_HB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/trace.hh"
#include "core/core_config.hh"

namespace fa::analysis::race {

enum class Category : std::uint8_t {
    kRace,       ///< conflicting accesses unordered by HB
    kAtomicity,  ///< foreign access inside a lock window
    kReorder,    ///< SB store->load reordering with no fence
};

const char *categoryName(Category cat);

/** One side of a finding: a concrete dynamic event. */
struct EventRef
{
    CoreId thread = 0;
    SeqNum seq = kNoSeq;
    int pc = 0;
    EvKind kind = EvKind::kRead;
    Addr addr = 0;
    Cycle cycle = 0;  ///< perform cycle (visibility instant)
};

struct Finding
{
    Category cat = Category::kRace;
    /** The two events, in observed order (a first). For kReorder,
     * `a` is the buffered store and `b` the passing read. */
    EventRef a, b;
    Addr addr = 0;  ///< conflicting word (kAtomicity: the locked line)
    /** Dynamic instances folded into this static site pair. */
    std::uint64_t count = 1;
    std::string detail;
    /** Minimal witness: the reordering of the observed trace that
     * realizes the violation, as human-readable lines. */
    std::vector<std::string> witness;
};

struct RaceOpts
{
    core::AtomicsMode mode = core::AtomicsMode::kFreeFwd;
    /** AQ lock granularity; must match the recording machine. */
    unsigned lineBytes = 64;
    /** Static (pc-pair) finding cap; dynamic repeats only bump
     * `count` on the first instance. */
    std::size_t maxFindings = 64;
    /** Per-thread window of still-reorderable older stores examined
     * per read (bounds kReorder work; the hardware analogue is SB
     * capacity). */
    std::size_t storeWindow = 64;
    bool witnesses = true;
    /** Command line that reproduces the recorded run; embedded in
     * each finding's replay recipe. */
    std::string replayCmd;
};

struct RaceReport
{
    std::string mode;
    unsigned threads = 0;
    std::uint64_t memEvents = 0;
    std::uint64_t syncEvents = 0;
    std::uint64_t lockWindows = 0;
    /** Lock windows never closed by an unlock — leaked locks unless
     * the trace was truncated mid-window. */
    std::uint64_t openWindows = 0;
    /** Malformed records skipped (torn/truncated input). */
    std::uint64_t tornRecords = 0;

    std::vector<Finding> findings;  ///< deterministic order
    std::uint64_t races = 0;        ///< dynamic kRace instances
    std::uint64_t atomicityViolations = 0;
    std::uint64_t reorderings = 0;

    /** No findings at all (clean trace). */
    bool clean() const { return findings.empty(); }
    /** No hardware-correctness findings (kAtomicity). kRace/kReorder
     * are program properties, legal under TSO. */
    bool hardwareClean() const { return atomicityViolations == 0; }
};

/** Analyze one recorded execution. Robust against adversarial input:
 * torn or truncated streams are skipped and counted, never crash. */
RaceReport analyze(const std::vector<MemEvent> &events,
                   const std::vector<SyncEvent> &syncs,
                   const RaceOpts &opts);

/** Render a finding as text (category, events, witness, replay). */
std::string describeFinding(const Finding &f);

} // namespace fa::analysis::race

#endif // FA_ANALYSIS_RACE_HB_HH
