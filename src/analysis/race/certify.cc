#include "analysis/race/certify.hh"

#include <map>
#include <sstream>

namespace fa::analysis::race {

namespace {

/** Memory-order stamp of a read's source: 0 for the initial value,
 * the source write's coherence stamp otherwise (kNoStamp when the
 * source is unknown — skip such pairs). */
std::uint64_t
sourceStamp(const std::vector<MemEvent> &evs,
            const std::map<std::pair<CoreId, SeqNum>, std::size_t> &idx,
            const MemEvent &r, bool *known)
{
    *known = true;
    if (r.rfInit)
        return 0;
    auto it = idx.find({r.rfThread, r.rfSeq});
    if (it == idx.end() || evs[it->second].writeStamp == kNoStamp) {
        *known = false;
        return 0;
    }
    return evs[it->second].writeStamp;
}

void
harvestExecution(const std::vector<MemEvent> &evs, OrderCorpus *c)
{
    std::map<std::pair<CoreId, SeqNum>, std::size_t> idx;
    for (std::size_t i = 0; i < evs.size(); ++i)
        idx.emplace(std::make_pair(evs[i].thread, evs[i].seq), i);

    auto record = [&](const MemEvent &first, const MemEvent &second) {
        bool swapped = false;
        std::uint64_t k = OrderCorpus::pairKey(
            first.thread, first.pc, second.thread, second.pc,
            &swapped);
        c->orders[k] |= swapped ? 2 : 1;
    };

    for (std::size_t i = 0; i < evs.size(); ++i) {
        const MemEvent &a = evs[i];
        if (a.kind == EvKind::kFence)
            continue;
        for (std::size_t j = i + 1; j < evs.size(); ++j) {
            const MemEvent &b = evs[j];
            if (b.kind == EvKind::kFence || a.addr != b.addr ||
                a.thread == b.thread)
                continue;
            if (!a.isWrite() && !b.isWrite())
                continue;
            if (a.isWrite() && b.isWrite()) {
                if (a.writeStamp == kNoStamp ||
                    b.writeStamp == kNoStamp)
                    continue;
                if (a.writeStamp < b.writeStamp)
                    record(a, b);
                else
                    record(b, a);
            } else {
                const MemEvent &w = a.isWrite() ? a : b;
                const MemEvent &r = a.isWrite() ? b : a;
                if (w.writeStamp == kNoStamp)
                    continue;
                bool known = false;
                std::uint64_t src = sourceStamp(evs, idx, r, &known);
                if (!known)
                    continue;
                // TSO reads the last performed write: the read sits
                // right after its source in memory order.
                if (src >= w.writeStamp)
                    record(w, r);
                else
                    record(r, w);
            }
        }
        // Store->read reorderings within thread a's program order.
        if (a.kind == EvKind::kWrite && a.writeStamp != kNoStamp) {
            for (std::size_t j = 0; j < evs.size(); ++j) {
                const MemEvent &r = evs[j];
                if (r.thread != a.thread || !r.isRead() ||
                    r.seq <= a.seq || r.addr == a.addr)
                    continue;
                bool known = false;
                std::uint64_t src = sourceStamp(evs, idx, r, &known);
                if (known && src < a.writeStamp) {
                    c->reorders.insert(OrderCorpus::reorderKey(
                        a.thread, a.pc, r.pc));
                }
            }
        }
    }
}

} // namespace

void
OrderCorpus::addExecution(const std::vector<analysis::MemEvent> &evs)
{
    harvestExecution(evs, this);
}

std::uint64_t
OrderCorpus::pairKey(CoreId ta, int pca, CoreId tb, int pcb,
                     bool *swapped)
{
    std::uint64_t sa = (std::uint64_t(ta) << 24) |
        (std::uint32_t(pca) & 0xffffff);
    std::uint64_t sb = (std::uint64_t(tb) << 24) |
        (std::uint32_t(pcb) & 0xffffff);
    *swapped = sa > sb;
    if (*swapped)
        std::swap(sa, sb);
    return (sa << 32) | sb;
}

std::uint64_t
OrderCorpus::reorderKey(CoreId t, int store_pc, int read_pc)
{
    return (std::uint64_t(t) << 48) |
        (std::uint64_t(std::uint32_t(store_pc) & 0xffffff) << 24) |
        (std::uint32_t(read_pc) & 0xffffff);
}

OrderCorpus
harvestOrders(const std::vector<isa::Program> &progs,
              const mc::MemInit &init, const CertifyOpts &opts)
{
    OrderCorpus corpus;
    mc::ModelOpts mopts;
    mopts.mode = opts.mode;
    mc::Model model(progs, mopts);
    mc::ExploreOpts eopts;
    eopts.engine = mc::Engine::kDpor;
    eopts.maxStates = opts.maxStates;
    eopts.maxDepth = opts.maxDepth;
    eopts.timeBudgetSec = opts.timeBudgetSec;
    eopts.maxViolations = 1;
    eopts.onExecution = [&corpus](const std::vector<MemEvent> &evs) {
        ++corpus.executions;
        harvestExecution(evs, &corpus);
    };
    mc::ExploreResult res = mc::explore(model, init, eopts);
    corpus.complete = res.complete;
    corpus.truncatedReason = res.truncatedReason;
    return corpus;
}

CertifyResult
certifyAgainst(const OrderCorpus &corpus, const RaceReport &report)
{
    CertifyResult res;
    res.exploreComplete = corpus.complete;
    res.truncatedReason = corpus.truncatedReason;
    res.executions = corpus.executions;
    for (const Finding &f : report.findings) {
        ++res.predictions;
        bool ok = false;
        std::ostringstream why;
        switch (f.cat) {
          case Category::kRace: {
            bool swapped = false;
            std::uint64_t k = OrderCorpus::pairKey(
                f.a.thread, f.a.pc, f.b.thread, f.b.pc, &swapped);
            auto it = corpus.orders.find(k);
            std::uint8_t mask =
                it == corpus.orders.end() ? 0 : it->second;
            ok = mask == 3;  // both orders realized
            if (!ok) {
                why << "realized executions witness "
                    << (mask == 0 ? "neither order"
                                  : "only one order")
                    << " of the conflicting pair";
            }
            break;
          }
          case Category::kReorder:
            ok = corpus.reorders.count(OrderCorpus::reorderKey(
                     f.a.thread, f.a.pc, f.b.pc)) != 0;
            if (!ok) {
                why << "no realized execution lets the read take "
                       "its value before the older store performs";
            }
            break;
          case Category::kAtomicity:
            ok = false;
            why << "atomicity-window violations are never realizable "
                   "in a correct machine: the prediction itself "
                   "flags a simulator bug";
            break;
        }
        if (ok) {
            ++res.confirmed;
        } else {
            std::ostringstream d;
            d << categoryName(f.cat) << " t" << unsigned(f.a.thread)
              << ":pc" << f.a.pc << " vs t" << unsigned(f.b.thread)
              << ":pc" << f.b.pc << " — " << why.str();
            res.unconfirmed.push_back(d.str());
        }
    }
    return res;
}

CertifyResult
certifyPredictions(const std::vector<isa::Program> &progs,
                   const mc::MemInit &init,
                   const std::vector<analysis::MemEvent> &observed,
                   const RaceReport &report, const CertifyOpts &opts)
{
    OrderCorpus corpus = harvestOrders(progs, init, opts);
    // The observed detailed-simulator execution is itself a realized
    // execution; it supplies the observed side of every predicted
    // pair — including the stalling spin-read iterations the DPOR
    // engine stutter-prunes.
    corpus.addExecution(observed);
    return certifyAgainst(corpus, report);
}

} // namespace fa::analysis::race
