#include "analysis/race/report.hh"

#include <ostream>

#include "common/json.hh"

namespace fa::analysis::race {

namespace {

void
writeEventRef(JsonWriter &jw, const EventRef &e)
{
    jw.beginObject();
    jw.key("thread").value(unsigned(e.thread));
    jw.key("seq").value(std::uint64_t{e.seq});
    jw.key("pc").value(e.pc);
    jw.key("kind").value(evKindName(e.kind));
    jw.key("addr").value(std::uint64_t{e.addr});
    jw.key("cycle").value(std::uint64_t{e.cycle});
    jw.endObject();
}

} // namespace

void
writeReport(std::ostream &os, const std::string &name,
            const RaceReport &rep, const CertifyResult *cert)
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value(kRaceReportSchema);
    jw.key("name").value(name);
    jw.key("mode").value(rep.mode);
    jw.key("threads").value(rep.threads);
    jw.key("memEvents").value(rep.memEvents);
    jw.key("syncEvents").value(rep.syncEvents);
    jw.key("lockWindows").value(rep.lockWindows);
    jw.key("openWindows").value(rep.openWindows);
    jw.key("tornRecords").value(rep.tornRecords);
    jw.key("races").value(rep.races);
    jw.key("atomicityViolations").value(rep.atomicityViolations);
    jw.key("reorderings").value(rep.reorderings);
    jw.key("findings").beginArray();
    for (const Finding &f : rep.findings) {
        jw.beginObject();
        jw.key("category").value(categoryName(f.cat));
        jw.key("a");
        writeEventRef(jw, f.a);
        jw.key("b");
        writeEventRef(jw, f.b);
        jw.key("addr").value(std::uint64_t{f.addr});
        jw.key("count").value(f.count);
        jw.key("detail").value(f.detail);
        jw.key("witness").beginArray();
        for (const std::string &l : f.witness)
            jw.value(l);
        jw.endArray();
        jw.endObject();
    }
    jw.endArray();
    if (cert) {
        jw.key("certify").beginObject();
        jw.key("exploreComplete").value(cert->exploreComplete);
        jw.key("executions").value(cert->executions);
        jw.key("predictions").value(cert->predictions);
        jw.key("confirmed").value(cert->confirmed);
        jw.key("unconfirmed").beginArray();
        for (const std::string &u : cert->unconfirmed)
            jw.value(u);
        jw.endArray();
        jw.endObject();
    }
    jw.endObject();
    os << "\n";
}

} // namespace fa::analysis::race
