/**
 * @file
 * fa-race-report-v1: machine-readable farace output, following the
 * fa-*-v1 artifact conventions (schema field first, stable key
 * order, deterministic content so byte-diffs are meaningful).
 */

#ifndef FA_ANALYSIS_RACE_REPORT_HH
#define FA_ANALYSIS_RACE_REPORT_HH

#include <iosfwd>
#include <string>

#include "analysis/race/certify.hh"
#include "analysis/race/hb.hh"

namespace fa::analysis::race {

constexpr const char *kRaceReportSchema = "fa-race-report-v1";

/** Write one analyzed trace's report (plus the differential verdict
 * when `cert` is non-null) as a JSON document. */
void writeReport(std::ostream &os, const std::string &name,
                 const RaceReport &rep, const CertifyResult *cert);

} // namespace fa::analysis::race

#endif // FA_ANALYSIS_RACE_REPORT_HH
