/**
 * @file
 * Vector clocks over per-thread sequence numbers.
 *
 * A component value `c[t] = s` means: every event of thread t with
 * seq <= s happens-before the point this clock describes. Clocks form
 * a join-semilattice under pointwise max; `leq` is the induced
 * partial order. The predictive analyzer (analysis/race/hb.hh) keeps
 * one clock per thread frontier and per shared address, so the whole
 * pass is O(events * threads) time and O(addresses * threads) space —
 * no per-event clock storage.
 */

#ifndef FA_ANALYSIS_RACE_VCLOCK_HH
#define FA_ANALYSIS_RACE_VCLOCK_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fa::analysis::race {

class VClock
{
  public:
    VClock() = default;
    explicit VClock(std::size_t threads) : c(threads, 0) {}

    std::size_t size() const { return c.size(); }

    /** Component for thread t; absent components read as 0. */
    std::uint64_t
    get(CoreId t) const
    {
        return t < c.size() ? c[t] : 0;
    }

    void
    set(CoreId t, std::uint64_t v)
    {
        grow(t + 1u);
        c[t] = v;
    }

    /** set(t, max(get(t), v)): record one more event of thread t. */
    void
    advance(CoreId t, std::uint64_t v)
    {
        grow(t + 1u);
        c[t] = std::max(c[t], v);
    }

    /** Does thread t's event `seq` happen-before this point? */
    bool
    covers(CoreId t, std::uint64_t seq) const
    {
        return get(t) >= seq;
    }

    /** Pointwise max (least upper bound). */
    void
    join(const VClock &o)
    {
        grow(o.c.size());
        for (std::size_t i = 0; i < o.c.size(); ++i)
            c[i] = std::max(c[i], o.c[i]);
    }

    /** Pointwise <=: this point happens-before-or-equals `o`. */
    bool
    leq(const VClock &o) const
    {
        for (std::size_t i = 0; i < c.size(); ++i)
            if (c[i] > o.get(static_cast<CoreId>(i)))
                return false;
        return true;
    }

    bool
    operator==(const VClock &o) const
    {
        std::size_t n = std::max(c.size(), o.c.size());
        for (std::size_t i = 0; i < n; ++i) {
            CoreId t = static_cast<CoreId>(i);
            if (get(t) != o.get(t))
                return false;
        }
        return true;
    }

    std::string
    str() const
    {
        std::string s = "[";
        for (std::size_t i = 0; i < c.size(); ++i) {
            if (i)
                s += ",";
            s += std::to_string(c[i]);
        }
        return s + "]";
    }

  private:
    void
    grow(std::size_t n)
    {
        if (c.size() < n)
            c.resize(n, 0);
    }

    std::vector<std::uint64_t> c;
};

} // namespace fa::analysis::race

#endif // FA_ANALYSIS_RACE_VCLOCK_HH
