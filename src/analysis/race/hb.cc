#include "analysis/race/hb.hh"

#include "analysis/race/vclock.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/log.hh"

namespace fa::analysis::race {

namespace {

/** Threads above this are certainly torn input, not a machine. */
constexpr CoreId kMaxThreads = 4096;
constexpr Cycle kOpenEnd = ~Cycle{0};

struct Window
{
    CoreId thread = 0;
    SeqNum seq = kNoSeq;
    Cycle lockCycle = 0;
    Cycle unlockCycle = kOpenEnd;
    bool closed = false;
};

struct WriteSnap
{
    CoreId thread = 0;
    SeqNum seq = kNoSeq;
    VClock clk;
};

struct AddrState
{
    bool haveWrite = false;
    EventRef lastWrite;
    VClock lastWriteClk;
    /** Last few writes, oldest first: reads-from join lookups. */
    std::deque<WriteSnap> recent;
    /** Component t = seq of t's latest read of this word. */
    VClock reads;
    std::vector<EventRef> lastReadBy;  ///< indexed by thread
};

struct PendingStore
{
    SeqNum seq = kNoSeq;
    int pc = 0;
    Addr addr = 0;
    Cycle performCycle = 0;
    EventRef ev;
};

std::string
evLine(const EventRef &e)
{
    std::ostringstream os;
    os << "t" << unsigned(e.thread) << " seq=" << e.seq << " pc=" << e.pc
       << " " << evKindName(e.kind) << " 0x" << std::hex << e.addr
       << std::dec;
    if (e.cycle)
        os << " @perform " << e.cycle;
    return os.str();
}

EventRef
refOf(const MemEvent &e)
{
    EventRef r;
    r.thread = e.thread;
    r.seq = e.seq;
    r.pc = e.pc;
    r.kind = e.kind;
    r.addr = e.addr;
    r.cycle = e.performCycle ? e.performCycle : e.commitCycle;
    return r;
}

class Analyzer
{
  public:
    Analyzer(const std::vector<MemEvent> &events,
             const std::vector<SyncEvent> &syncs, const RaceOpts &opts)
        : opts(opts)
    {
        rep.mode = core::atomicsModeIdent(opts.mode);
        ingest(events, syncs);
    }

    RaceReport
    run()
    {
        buildWindows();
        clockPass();
        windowPass();
        return std::move(rep);
    }

  private:
    Addr
    line(Addr a) const
    {
        unsigned lb = opts.lineBytes ? opts.lineBytes : 64;
        return a & ~Addr{lb - 1};
    }

    void
    ingest(const std::vector<MemEvent> &events,
           const std::vector<SyncEvent> &raw_syncs)
    {
        mem.reserve(events.size());
        for (const MemEvent &e : events) {
            // Torn/truncated input never crashes the analyzer: a
            // record missing its commit (an uncommitted perform from
            // a run that aborted mid-flight) or with an impossible
            // thread id is skipped and counted.
            if (e.thread >= kMaxThreads || e.seq == kNoSeq ||
                e.commitCycle == 0) {
                ++rep.tornRecords;
                continue;
            }
            mem.push_back(e);
        }
        // Commit order linearizes the happens-before relation: po via
        // in-order commit, rf because an external writer commits no
        // later than it performs while its reader commits no earlier
        // than it binds.
        std::stable_sort(mem.begin(), mem.end(),
                         [](const MemEvent &a, const MemEvent &b) {
                             if (a.commitCycle != b.commitCycle)
                                 return a.commitCycle < b.commitCycle;
                             if (a.thread != b.thread)
                                 return a.thread < b.thread;
                             return a.seq < b.seq;
                         });
        for (const SyncEvent &s : raw_syncs) {
            if (s.thread >= kMaxThreads) {
                ++rep.tornRecords;
                continue;
            }
            syncs.push_back(s);
        }
        std::stable_sort(syncs.begin(), syncs.end(),
                         [](const SyncEvent &a, const SyncEvent &b) {
                             return a.cycle < b.cycle;
                         });

        unsigned maxThread = 0;
        for (const MemEvent &e : mem)
            maxThread = std::max(maxThread, unsigned(e.thread) + 1);
        for (const SyncEvent &s : syncs)
            maxThread = std::max(maxThread, unsigned(s.thread) + 1);
        nThreads = maxThread;
        rep.threads = nThreads;
        rep.memEvents = mem.size();
        rep.syncEvents = syncs.size();

        acq.assign(nThreads, VClock(nThreads));
        rel.assign(nThreads, VClock(nThreads));
        ownOrdered.assign(nThreads, 0);
        foreignKnow.assign(nThreads, 0);
        pending.assign(nThreads, {});
        byKey.reserve(mem.size());
        for (std::size_t i = 0; i < mem.size(); ++i)
            byKey.emplace(packKey(mem[i].thread, mem[i].seq), i);
    }

    static std::uint64_t
    packKey(CoreId t, SeqNum s)
    {
        return (std::uint64_t(t) << 48) |
            (s & ((std::uint64_t{1} << 48) - 1));
    }

    // --- AQ exclusion windows -------------------------------------------

    void
    buildWindows()
    {
        std::map<Addr, std::size_t> open;  // line -> index in windows[line]
        for (const SyncEvent &s : syncs) {
            switch (s.kind) {
              case SyncKind::kLock: {
                auto it = open.find(s.line);
                if (it != open.end()) {
                    // Overlapping lock claims on one line: torn input
                    // (the hardware serializes line locks). Close the
                    // stale window at this instant and move on.
                    windows[s.line][it->second].unlockCycle = s.cycle;
                    windows[s.line][it->second].closed = true;
                    ++rep.tornRecords;
                }
                Window w;
                w.thread = s.thread;
                w.seq = s.seq;
                w.lockCycle = s.cycle;
                windows[s.line].push_back(w);
                open[s.line] = windows[s.line].size() - 1;
                ++rep.lockWindows;
                break;
              }
              case SyncKind::kUnlock: {
                auto it = open.find(s.line);
                if (it == open.end()) {
                    ++rep.tornRecords;  // unlock without a lock
                    break;
                }
                windows[s.line][it->second].unlockCycle = s.cycle;
                windows[s.line][it->second].closed = true;
                open.erase(it);
                break;
              }
              case SyncKind::kFwdHop:
              case SyncKind::kSquash:
                break;
            }
        }
        rep.openWindows = open.size();
    }

    // --- vector-clock pass ----------------------------------------------

    void
    joinForeign(CoreId t, const VClock &f)
    {
        acq[t].join(f);
        foreignKnow[t] = std::max(foreignKnow[t], f.get(t));
    }

    AddrState &
    state(Addr a)
    {
        AddrState &st = addrs[a];
        if (st.lastReadBy.size() < nThreads)
            st.lastReadBy.resize(nThreads);
        return st;
    }

    /** Reads-from join: order the external source write before this
     * read. Missing snapshots (ring evicted, torn input) fall back
     * to the last write's clock — joining more only strengthens HB,
     * which can hide findings but never fabricates one. */
    void
    joinRf(const MemEvent &e, AddrState &st)
    {
        if (e.rfInit || e.rfThread == e.thread)
            return;  // init or own-SB forward: po already orders it
        for (const WriteSnap &ws : st.recent) {
            if (ws.thread == e.rfThread && ws.seq == e.rfSeq) {
                joinForeign(e.thread, ws.clk);
                return;
            }
        }
        if (st.haveWrite)
            joinForeign(e.thread, st.lastWriteClk);
    }

    void
    readChecks(const MemEvent &e, AddrState &st, const VClock &clk)
    {
        if (st.haveWrite && st.lastWrite.thread != e.thread &&
            !clk.covers(st.lastWrite.thread, st.lastWrite.seq)) {
            finding(Category::kRace, st.lastWrite, refOf(e), e.addr,
                    "conflicting write and read unordered by "
                    "happens-before");
        }
    }

    void
    writeChecks(const MemEvent &e, AddrState &st, const VClock &clk)
    {
        if (st.haveWrite && st.lastWrite.thread != e.thread &&
            !clk.covers(st.lastWrite.thread, st.lastWrite.seq)) {
            finding(Category::kRace, st.lastWrite, refOf(e), e.addr,
                    "conflicting writes unordered by happens-before");
        }
        for (CoreId u = 0; u < nThreads; ++u) {
            if (u == e.thread)
                continue;
            std::uint64_t rs = st.reads.get(u);
            if (rs != 0 && !clk.covers(u, rs)) {
                finding(Category::kRace, st.lastReadBy[u], refOf(e),
                        e.addr,
                        "read and conflicting write unordered by "
                        "happens-before");
            }
        }
    }

    void
    reorderChecks(const MemEvent &e)
    {
        CoreId t = e.thread;
        for (const PendingStore &w : pending[t]) {
            if (w.addr == e.addr)
                continue;  // same word: TSO forwards, pair is ordered
            if (w.seq <= ownOrdered[t] || w.seq <= foreignKnow[t])
                continue;  // a fence/atomic or a cross-thread path
                           // orders the store before this read
            bool observed =
                w.performCycle == 0 ||
                (e.performCycle != 0 && w.performCycle > e.performCycle);
            std::ostringstream d;
            d << "store buffering may drain the older store after the "
                 "younger read performs (no fence or atomic between)";
            if (observed)
                d << "; this execution already reordered them";
            finding(Category::kReorder, w.ev, refOf(e), w.addr,
                    d.str());
        }
    }

    void
    noteWrite(const MemEvent &e, AddrState &st, const VClock &clk)
    {
        st.haveWrite = true;
        st.lastWrite = refOf(e);
        st.lastWriteClk = clk;
        st.recent.push_back({e.thread, e.seq, clk});
        if (st.recent.size() > 8)
            st.recent.pop_front();
    }

    void
    clockPass()
    {
        for (const MemEvent &e : mem) {
            CoreId t = e.thread;
            switch (e.kind) {
              case EvKind::kFence:
                acq[t].join(rel[t]);
                acq[t].advance(t, e.seq);
                rel[t] = acq[t];
                ownOrdered[t] = e.seq;
                pending[t].clear();
                break;
              case EvKind::kRead: {
                AddrState &st = state(e.addr);
                joinRf(e, st);
                readChecks(e, st, acq[t]);
                reorderChecks(e);
                acq[t].advance(t, e.seq);
                st.reads.advance(t, e.seq);
                st.lastReadBy[t] = refOf(e);
                break;
              }
              case EvKind::kWrite: {
                AddrState &st = state(e.addr);
                rel[t].join(acq[t]);
                rel[t].advance(t, e.seq);
                writeChecks(e, st, rel[t]);
                noteWrite(e, st, rel[t]);
                PendingStore ps;
                ps.seq = e.seq;
                ps.pc = e.pc;
                ps.addr = e.addr;
                ps.performCycle = e.performCycle;
                ps.ev = refOf(e);
                pending[t].push_back(std::move(ps));
                if (pending[t].size() > opts.storeWindow)
                    pending[t].pop_front();
                break;
              }
              case EvKind::kRmw: {
                AddrState &st = state(e.addr);
                // Per-mode provenance, one closure (§3.2.3): under
                // kFenced/kSpec the atomic is an explicit full fence
                // (Mem_Fence1/2); under kFree/kFreeFwd the same
                // edges arise from the SB drain at commit (older
                // stores first) and the read gate (no younger read
                // passes the pending store_unlock).
                acq[t].join(rel[t]);
                VClock &l = lineRelease(line(e.addr));
                joinForeign(t, l);
                joinRf(e, st);
                readChecks(e, st, acq[t]);
                writeChecks(e, st, acq[t]);
                acq[t].advance(t, e.seq);
                rel[t] = acq[t];
                l = acq[t];
                ownOrdered[t] = e.seq;
                pending[t].clear();
                noteWrite(e, st, acq[t]);
                st.reads.advance(t, e.seq);
                st.lastReadBy[t] = refOf(e);
                break;
              }
            }
        }
    }

    VClock &
    lineRelease(Addr l)
    {
        auto [it, inserted] = lineRel.try_emplace(l, VClock(nThreads));
        return it->second;
    }

    // --- atomicity windows ----------------------------------------------

    void
    windowPass()
    {
        for (const MemEvent &e : mem) {
            if (e.kind == EvKind::kFence || e.performCycle == 0)
                continue;
            auto it = windows.find(line(e.addr));
            if (it == windows.end())
                continue;
            // Windows on one line are disjoint and lock-cycle
            // sorted, so only the last one opening before this
            // event's perform instant can contain it.
            const std::vector<Window> &ws = it->second;
            auto wit = std::upper_bound(
                ws.begin(), ws.end(), e.performCycle,
                [](Cycle c, const Window &w) {
                    return c < w.lockCycle;
                });
            if (wit != ws.begin()) {
                const Window &w = *(wit - 1);
                if (w.thread != e.thread &&
                    // the owner (and its fwd chain) may touch its
                    // own locked line; boundary cycles are the
                    // bind/release instants themselves
                    e.performCycle > w.lockCycle &&
                    e.performCycle < w.unlockCycle) {
                    EventRef owner;
                    owner.thread = w.thread;
                    owner.seq = w.seq;
                    owner.kind = EvKind::kRmw;
                    owner.addr = line(e.addr);
                    owner.cycle = w.lockCycle;
                    auto oit = byKey.find(packKey(w.thread, w.seq));
                    if (oit != byKey.end())
                        owner.pc = mem[oit->second].pc;
                    else
                        owner.pc = -1;  // squashed owner
                    std::ostringstream d;
                    d << "access performs inside a foreign AQ lock "
                         "window ["
                      << w.lockCycle << ", ";
                    if (w.closed)
                        d << w.unlockCycle;
                    else
                        d << "never unlocked";
                    d << ") — the hardware must deny it; this is a "
                         "lock-exclusion (atomicity) failure";
                    finding(Category::kAtomicity, owner, refOf(e),
                            line(e.addr), d.str());
                }
            }
        }
    }

    // --- findings -------------------------------------------------------

    void
    finding(Category cat, const EventRef &a, const EventRef &b,
            Addr addr, const std::string &detail)
    {
        switch (cat) {
          case Category::kRace:      ++rep.races; break;
          case Category::kAtomicity: ++rep.atomicityViolations; break;
          case Category::kReorder:   ++rep.reorderings; break;
        }
        std::uint64_t k = siteKey(cat, a.pc, b.pc);
        auto it = sites.find(k);
        if (it != sites.end()) {
            ++rep.findings[it->second].count;
            return;
        }
        if (rep.findings.size() >= opts.maxFindings)
            return;
        Finding f;
        f.cat = cat;
        f.a = a;
        f.b = b;
        f.addr = addr;
        f.detail = detail;
        if (opts.witnesses)
            f.witness = witnessFor(f);
        sites.emplace(k, rep.findings.size());
        rep.findings.push_back(std::move(f));
    }

    static std::uint64_t
    siteKey(Category cat, int pc_a, int pc_b)
    {
        return (std::uint64_t(std::uint8_t(cat)) << 56) |
            (std::uint64_t(std::uint32_t(pc_a) & 0xfffffff) << 28) |
            (std::uint32_t(pc_b) & 0xfffffff);
    }

    std::vector<std::string>
    witnessFor(const Finding &f) const
    {
        std::vector<std::string> w;
        w.push_back("observed: " + evLine(f.a));
        w.push_back("          " + evLine(f.b));
        switch (f.cat) {
          case Category::kRace:
            w.push_back(
                "no happens-before path orders the pair: an "
                "equivalent execution commutes them, so either "
                "access may observe the other's effect");
            break;
          case Category::kReorder:
            w.push_back(
                "minimal reordering: delay the store in the SB until "
                "after the read performs (x86-TSO allows it; an "
                "MFENCE or atomic between the two forbids it)");
            break;
          case Category::kAtomicity:
            w.push_back(
                "the first line shows the lock-window owner; the "
                "second access performed while the line lock was "
                "held by another core");
            break;
        }
        if (!opts.replayCmd.empty())
            w.push_back("replay: " + opts.replayCmd);
        return w;
    }

    const RaceOpts &opts;
    RaceReport rep;

    std::vector<MemEvent> mem;
    std::vector<SyncEvent> syncs;
    unsigned nThreads = 0;

    std::vector<VClock> acq;  ///< orders future reads and writes
    std::vector<VClock> rel;  ///< orders future writes (older stores)
    std::vector<std::uint64_t> ownOrdered;
    std::vector<std::uint64_t> foreignKnow;
    std::vector<std::deque<PendingStore>> pending;

    std::unordered_map<Addr, AddrState> addrs;
    std::unordered_map<Addr, VClock> lineRel;
    std::map<Addr, std::vector<Window>> windows;
    std::unordered_map<std::uint64_t, std::size_t> byKey;
    std::unordered_map<std::uint64_t, std::size_t> sites;
};

} // namespace

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::kRace:      return "race";
      case Category::kAtomicity: return "atomicity";
      case Category::kReorder:   return "reorder";
    }
    return "?";
}

RaceReport
analyze(const std::vector<MemEvent> &events,
        const std::vector<SyncEvent> &syncs, const RaceOpts &opts)
{
    return Analyzer(events, syncs, opts).run();
}

std::string
describeFinding(const Finding &f)
{
    std::ostringstream os;
    os << categoryName(f.cat) << " (x" << f.count << "): " << f.detail
       << "\n";
    for (const std::string &l : f.witness)
        os << "  " << l << "\n";
    return os.str();
}

} // namespace fa::analysis::race
