#include "analysis/tso_checker.hh"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/log.hh"

namespace fa::analysis {

namespace {

/** Edge labels, for violation messages. */
enum class Rel : std::uint8_t { kPo, kRf, kCo, kFr };

const char *
relName(Rel r)
{
    switch (r) {
      case Rel::kPo: return "po";
      case Rel::kRf: return "rfe";
      case Rel::kCo: return "co";
      case Rel::kFr: return "fr";
    }
    return "?";
}

std::string
describeEvent(const MemEvent &e)
{
    if (e.kind == EvKind::kFence) {
        return strfmt("t%u#%llu %s(pc %d)", e.thread,
                      static_cast<unsigned long long>(e.seq),
                      evKindName(e.kind), e.pc);
    }
    return strfmt("t%u#%llu %s[%#llx](pc %d)", e.thread,
                  static_cast<unsigned long long>(e.seq),
                  evKindName(e.kind),
                  static_cast<unsigned long long>(e.addr), e.pc);
}

std::uint64_t
eventKey(CoreId thread, SeqNum seq)
{
    return (static_cast<std::uint64_t>(thread) << 48) |
        (seq & ((std::uint64_t{1} << 48) - 1));
}

struct Graph
{
    // adj[n] = (successor, relation) pairs.
    std::vector<std::vector<std::pair<int, Rel>>> adj;

    void
    addEdge(int from, int to, Rel rel)
    {
        if (from == to)
            return;
        adj[from].emplace_back(to, rel);
    }
};

bool
isWriteLike(EvKind k)
{
    // Fences join the write→write chain so a later write (and, via the
    // read chain, a later read) is ordered after everything before the
    // fence — exactly x86-TSO's MFENCE.
    return k == EvKind::kWrite || k == EvKind::kRmw ||
        k == EvKind::kFence;
}

bool
isReadLike(EvKind k)
{
    return k == EvKind::kRead || k == EvKind::kRmw ||
        k == EvKind::kFence;
}

} // namespace

TsoCheckResult
checkTso(const std::vector<MemEvent> &events)
{
    TsoCheckResult res;
    res.eventsChecked = events.size();
    int n = static_cast<int>(events.size());
    if (n == 0)
        return res;

    auto fail = [&](std::string msg) {
        res.ok = false;
        res.error = std::move(msg);
        return res;
    };

    std::unordered_map<std::uint64_t, int> byKey;
    byKey.reserve(events.size());
    for (int i = 0; i < n; ++i) {
        const MemEvent &e = events[i];
        if (!byKey.emplace(eventKey(e.thread, e.seq), i).second) {
            return fail(strfmt("duplicate event %s in trace",
                               describeEvent(e).c_str()));
        }
    }

    // --- rf well-formedness -------------------------------------------
    for (int i = 0; i < n; ++i) {
        const MemEvent &e = events[i];
        if (!e.isRead() || e.rfInit)
            continue;
        auto it = byKey.find(eventKey(e.rfThread, e.rfSeq));
        if (it == byKey.end()) {
            return fail(strfmt(
                "%s reads from t%u#%llu which is not in the trace",
                describeEvent(e).c_str(), e.rfThread,
                static_cast<unsigned long long>(e.rfSeq)));
        }
        const MemEvent &w = events[it->second];
        if (!w.isWrite() || w.addr != e.addr) {
            return fail(strfmt("%s reads from %s: not a write to the "
                               "same word", describeEvent(e).c_str(),
                               describeEvent(w).c_str()));
        }
        if (w.valueWritten != e.valueRead) {
            return fail(strfmt(
                "%s read %lld but its writer %s wrote %lld",
                describeEvent(e).c_str(),
                static_cast<long long>(e.valueRead),
                describeEvent(w).c_str(),
                static_cast<long long>(w.valueWritten)));
        }
    }

    // --- coherence order (per word, by global perform stamp) ----------
    // A write without a stamp never performed (possible only if the
    // run was cut off before the SB drained); it joins no co edge.
    std::unordered_map<Addr, std::vector<int>> coByAddr;
    for (int i = 0; i < n; ++i) {
        const MemEvent &e = events[i];
        if (e.isWrite() && e.writeStamp != kNoStamp)
            coByAddr[e.addr].push_back(i);
    }
    for (auto &[addr, ws] : coByAddr) {
        (void)addr;
        std::sort(ws.begin(), ws.end(), [&](int a, int b) {
            return events[a].writeStamp < events[b].writeStamp;
        });
    }
    // Position of each write in its word's co order.
    std::vector<int> coPos(n, -1);
    for (const auto &[addr, ws] : coByAddr) {
        (void)addr;
        for (std::size_t p = 0; p < ws.size(); ++p)
            coPos[ws[p]] = static_cast<int>(p);
    }

    // --- RMW atomicity ------------------------------------------------
    // An atomic's own write must immediately follow the write it read
    // from in coherence order (or be the word's first write when it
    // read the initial value): nothing slips between the read and
    // write halves.
    for (int i = 0; i < n; ++i) {
        const MemEvent &e = events[i];
        if (e.kind != EvKind::kRmw || e.writeStamp == kNoStamp)
            continue;
        int expect_pos = 0;
        if (!e.rfInit) {
            int src = byKey.at(eventKey(e.rfThread, e.rfSeq));
            expect_pos = coPos[src] + 1;
        }
        if (coPos[i] != expect_pos) {
            const std::vector<int> &ws = coByAddr[e.addr];
            int between = ws[expect_pos];
            return fail(strfmt(
                "RMW atomicity violated: %s intervenes between the "
                "read and write halves of %s",
                describeEvent(events[between]).c_str(),
                describeEvent(e).c_str()));
        }
    }

    // --- build the happens-before graph -------------------------------
    Graph g;
    g.adj.resize(n);

    // ppo-TSO: program order minus write→read. Encoded per thread with
    // three chains — immediate predecessor feeds write-likes (R→W,
    // W→W), the read-like chain feeds read-likes (R→R), and fences/
    // RMWs sit on both chains, restoring W→R across them.
    struct ThreadChains
    {
        int pred = -1;
        int lastWriteLike = -1;
        int lastReadLike = -1;
    };
    std::unordered_map<CoreId, std::vector<int>> poOrder;
    for (int i = 0; i < n; ++i)
        poOrder[events[i].thread].push_back(i);
    for (auto &[tid, order] : poOrder) {
        (void)tid;
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return events[a].seq < events[b].seq;
        });
        ThreadChains c;
        for (int i : order) {
            const MemEvent &e = events[i];
            if (isWriteLike(e.kind)) {
                if (c.pred >= 0)
                    g.addEdge(c.pred, i, Rel::kPo);
                if (c.lastWriteLike >= 0)
                    g.addEdge(c.lastWriteLike, i, Rel::kPo);
            }
            if (isReadLike(e.kind) && c.lastReadLike >= 0)
                g.addEdge(c.lastReadLike, i, Rel::kPo);
            if (isWriteLike(e.kind))
                c.lastWriteLike = i;
            if (isReadLike(e.kind))
                c.lastReadLike = i;
            c.pred = i;
        }
    }

    // rfe (external reads-from) + fr (read before its writer's co
    // successors; an init read precedes every write of the word).
    // Internal rf is excluded: x86-TSO lets a load forward from the
    // local SB before the store is visible.
    for (int i = 0; i < n; ++i) {
        const MemEvent &e = events[i];
        if (!e.isRead() || e.kind == EvKind::kFence)
            continue;
        int fr_from_pos = -1;  // co position the read sits after
        if (!e.rfInit) {
            int src = byKey.at(eventKey(e.rfThread, e.rfSeq));
            if (events[src].thread != e.thread)
                g.addEdge(src, i, Rel::kRf);
            fr_from_pos = coPos[src];
        }
        auto it = coByAddr.find(e.addr);
        if (it != coByAddr.end()) {
            const std::vector<int> &ws = it->second;
            std::size_t next = static_cast<std::size_t>(fr_from_pos + 1);
            if (next < ws.size() && ws[next] != i)
                g.addEdge(i, ws[next], Rel::kFr);
        }
    }

    // co: consecutive same-word writes by stamp.
    for (const auto &[addr, ws] : coByAddr) {
        (void)addr;
        for (std::size_t p = 1; p < ws.size(); ++p)
            g.addEdge(ws[p - 1], ws[p], Rel::kCo);
    }

    // --- acyclicity ---------------------------------------------------
    // Iterative coloured DFS; on a back edge, walk the DFS stack to
    // reconstruct the offending cycle.
    enum : std::uint8_t { kWhite, kGrey, kBlack };
    std::vector<std::uint8_t> colour(n, kWhite);
    std::vector<std::size_t> edgeIdx(n, 0);
    std::vector<int> parent(n, -1);
    std::vector<Rel> parentRel(n, Rel::kPo);
    std::vector<int> stack;
    stack.reserve(64);

    for (int root = 0; root < n; ++root) {
        if (colour[root] != kWhite)
            continue;
        stack.push_back(root);
        colour[root] = kGrey;
        edgeIdx[root] = 0;
        while (!stack.empty()) {
            int u = stack.back();
            if (edgeIdx[u] < g.adj[u].size()) {
                auto [v, rel] = g.adj[u][edgeIdx[u]++];
                if (colour[v] == kWhite) {
                    colour[v] = kGrey;
                    edgeIdx[v] = 0;
                    parent[v] = u;
                    parentRel[v] = rel;
                    stack.push_back(v);
                } else if (colour[v] == kGrey) {
                    // Cycle v -> ... -> u -> v. Each entry pairs a
                    // node with the relation of its incoming edge.
                    std::vector<std::pair<int, Rel>> cyc;
                    cyc.emplace_back(v, rel);
                    for (int w = u; w != v; w = parent[w])
                        cyc.emplace_back(w, parentRel[w]);
                    std::reverse(cyc.begin(), cyc.end());
                    std::string msg =
                        "TSO violation: cycle in ppo U rfe U co U fr: ";
                    const std::size_t max_steps = 12;
                    std::size_t shown =
                        std::min(cyc.size(), max_steps);
                    for (std::size_t s = 0; s < shown; ++s) {
                        msg += describeEvent(events[cyc[s].first]);
                        msg += strfmt(
                            " -%s-> ",
                            relName(cyc[(s + 1) % cyc.size()].second));
                    }
                    if (cyc.size() > max_steps)
                        msg += "... -> ";
                    msg += describeEvent(events[cyc[0].first]);
                    return fail(std::move(msg));
                }
            } else {
                colour[u] = kBlack;
                stack.pop_back();
            }
        }
    }
    return res;
}

TsoCheckResult
checkTso(const TraceRecorder &trace)
{
    return checkTso(trace.events());
}

} // namespace fa::analysis
