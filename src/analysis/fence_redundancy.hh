/**
 * @file
 * Fence-redundancy analysis. An MFENCE only does architectural work
 * when it separates an earlier store from a later load (TSO already
 * orders every other pair). Under both the baseline and FreeAtomics
 * an atomic RMW provides that same ordering for free: the paper's
 * SB-empty-at-commit rule (§3.2.3) means every store older than the
 * RMW has performed when it commits, and later loads cannot commit
 * before it. So an MFENCE adjacent to an RMW (no intervening store
 * on the store side, or no intervening load on the load side) is
 * redundant, and an MFENCE on no store->load path at all is vacuous.
 */

#ifndef FA_ANALYSIS_FENCE_REDUNDANCY_HH
#define FA_ANALYSIS_FENCE_REDUNDANCY_HH

#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/critical_cycle.hh"
#include "core/core_config.hh"

namespace fa::analysis {

enum class FenceVerdict : std::uint8_t {
    /** Protects a store->load step of a critical cycle and no atomic
     * covers it: removing it changes observable outcomes. */
    kRequired,
    /** An adjacent atomic RMW already provides the ordering (the
     * FreeAtomics SB-empty-at-commit rule makes the RMW a full
     * fence in every flavour). */
    kRedundantByAtomic,
    /** Separates no store from any later load, or lies on no
     * critical cycle: no observable ordering role in this program. */
    kVacuous,
};

const char *fenceVerdictName(FenceVerdict verdict);

struct FenceReport
{
    unsigned thread = 0;
    int pc = 0;
    FenceVerdict verdict = FenceVerdict::kVacuous;
    std::string reason;
};

/**
 * Classify every MFENCE of every thread. `cycles` should come from
 * findCriticalCycles over the same summaries (its
 * requiredOrderingPoints drive the kRequired verdicts).
 *
 * `mode` is the atomics flavour the program will run under, and it
 * changes the verdicts: the store-side rule (RMW between the store
 * and the fence) holds in every mode because commit always waits for
 * an empty SB, but the load-side rule (RMW between the fence and the
 * load) is Mem_Fence2 — only Fenced/Spec stall younger loads behind
 * an uncommitted atomic. Under kFree/kFreeFwd a load-side-covered
 * fence with a store before it is conservatively kRequired; only the
 * exhaustive synthesizer (fafence) can prove it removable.
 */
std::vector<FenceReport>
analyzeFences(const std::vector<ThreadSummary> &threads,
              const CycleAnalysis &cycles,
              core::AtomicsMode mode = core::AtomicsMode::kFenced);

} // namespace fa::analysis

#endif // FA_ANALYSIS_FENCE_REDUNDANCY_HH
