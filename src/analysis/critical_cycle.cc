#include "analysis/critical_cycle.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hh"

namespace fa::analysis {

namespace {

/** Flattened node: a data event (non-fence, known address) that has
 * at least one conflict partner in another thread. */
struct Node
{
    unsigned thread;
    int eventIdx;
    const StaticMemEvent *ev;
    std::vector<int> conflicts;  ///< node ids of conflicting accesses
    std::vector<int> poLater;    ///< node ids later in the same thread
};

bool
conflict(const StaticMemEvent &a, const StaticMemEvent &b)
{
    return a.addr == b.addr && (a.isWrite() || b.isWrite());
}

/** Is the po step ev_a -> ev_b (same thread, a before b) one TSO may
 * reorder?  Only plain-store -> plain-load; RMWs order both ways. */
bool
relaxedPo(const StaticMemEvent &a, const StaticMemEvent &b)
{
    bool store_side = a.kind == AccessKind::kStore ||
        a.kind == AccessKind::kStoreCond;
    bool load_side = b.kind == AccessKind::kLoad ||
        b.kind == AccessKind::kLoadLinked;
    return store_side && load_side;
}

/** pcs of ordering instructions (MFENCE / RMW) strictly between two
 * pcs of one thread. */
std::vector<int>
orderingPointsBetween(const ThreadSummary &t, int pc_lo, int pc_hi)
{
    std::vector<int> pcs;
    for (const StaticMemEvent &e : t.events) {
        if (e.pc > pc_lo && e.pc < pc_hi && e.isOrdering())
            pcs.push_back(e.pc);
    }
    return pcs;
}

struct Dfs
{
    const std::vector<ThreadSummary> &threads;
    const CycleOptions &opts;
    std::vector<Node> &nodes;
    CycleAnalysis &out;

    int startNode = 0;
    std::vector<bool> threadUsed;
    std::vector<int> path;          ///< node ids, segment-entry order
    std::set<Addr> usedAddrs;       ///< one conflict edge per word
    std::uint64_t steps = 0;

    bool
    budget()
    {
        ++steps;
        return steps < opts.maxDfsSteps &&
            out.cycles.size() < opts.maxCycles;
    }

    void
    emitCycle(const std::vector<int> &ring)
    {
        // ring = n0 [n0'] n1 [n1'] ... : consecutive same-thread
        // nodes are po steps, thread changes are conflict steps, and
        // the last node closes back to ring.front() via conflict.
        CriticalCycle cyc;
        for (size_t i = 0; i < ring.size(); ++i) {
            const Node &a = nodes[ring[i]];
            const Node &b = nodes[ring[(i + 1) % ring.size()]];
            CycleStep step;
            step.from = {a.thread, a.eventIdx};
            step.to = {b.thread, b.eventIdx};
            step.isPo = a.thread == b.thread;
            if (step.isPo) {
                step.relaxed = relaxedPo(*a.ev, *b.ev);
                if (step.relaxed) {
                    step.orderingPcs = orderingPointsBetween(
                        threads[a.thread], a.ev->pc, b.ev->pc);
                }
            }
            if (step.unprotectedRelaxed())
                cyc.tsoPermitted = true;
            cyc.steps.push_back(std::move(step));
        }
        if (cyc.tsoPermitted)
            ++out.permittedCycles;
        else
            ++out.forbiddenCycles;
        for (const CycleStep &s : cyc.steps) {
            for (int pc : s.orderingPcs) {
                out.requiredOrderingPoints.emplace_back(
                    s.from.thread, pc);
            }
        }
        out.cycles.push_back(std::move(cyc));
    }

    /** Extend from `u`, which was entered via a conflict edge (or is
     * the start). May first take one po step, then must leave via a
     * conflict edge into an unused thread — or close at the start. */
    void
    visitSegment(int u)
    {
        if (!budget())
            return;
        const Node &nu = nodes[u];

        auto tryConflictOut = [&](int from) {
            for (int v : nodes[from].conflicts) {
                if (!budget())
                    return;
                Addr w = nodes[from].ev->addr;
                if (usedAddrs.count(w))
                    continue;
                if (v == startNode) {
                    // Closing edge; canonical start = smallest id.
                    emitCycle(path);
                    continue;
                }
                if (v < startNode || threadUsed[nodes[v].thread])
                    continue;
                if (path.size() >= 2ull * opts.maxThreadsPerCycle)
                    continue;
                threadUsed[nodes[v].thread] = true;
                usedAddrs.insert(w);
                path.push_back(v);
                visitSegment(v);
                path.pop_back();
                usedAddrs.erase(w);
                threadUsed[nodes[v].thread] = false;
            }
        };

        // Leave directly (single-access segment)...
        tryConflictOut(u);
        // ...or take one po step first (po is transitive, so one
        // step to any later access covers all multi-step chains).
        for (int v : nu.poLater) {
            if (!budget())
                return;
            if (v <= startNode)
                continue;
            path.push_back(v);
            tryConflictOut(v);
            path.pop_back();
        }
    }

    void
    run()
    {
        threadUsed.assign(threads.size(), false);
        for (int s = 0; s < static_cast<int>(nodes.size()); ++s) {
            if (!budget())
                break;
            startNode = s;
            threadUsed[nodes[s].thread] = true;
            path.assign(1, s);
            visitSegment(s);
            threadUsed[nodes[s].thread] = false;
        }
        out.dfsSteps = steps;
        out.truncated = steps >= opts.maxDfsSteps ||
            out.cycles.size() >= opts.maxCycles;
    }
};

} // namespace

std::string
CriticalCycle::describe(const std::vector<ThreadSummary> &threads) const
{
    std::string s;
    for (size_t i = 0; i < steps.size(); ++i) {
        const CycleStep &st = steps[i];
        const StaticMemEvent &e =
            threads[st.from.thread].events[st.from.eventIdx];
        // The arrow entering this node belongs to the previous step.
        if (i > 0)
            s += steps[i - 1].isPo ? " ->po " : " ->cf ";
        s += strfmt("t%u:%s[%#llx]@pc%d", st.from.thread,
                    accessKindName(e.kind),
                    static_cast<unsigned long long>(e.addr), e.pc);
        if (st.isPo && st.relaxed) {
            s += st.orderingPcs.empty()
                ? " (W->R RELAXABLE)"
                : strfmt(" (W->R ordered by pc %d)", st.orderingPcs[0]);
        }
    }
    s += tsoPermitted ? "  => PERMITTED under TSO (store buffering)"
                      : "  => FORBIDDEN under TSO";
    return s;
}

CycleAnalysis
findCriticalCycles(const std::vector<ThreadSummary> &threads,
                   const CycleOptions &opts)
{
    CycleAnalysis out;

    // Gather candidate accesses and index them by word so conflict
    // edges can be built in one pass.
    std::vector<Node> nodes;
    std::map<Addr, std::vector<int>> byWord;
    for (const ThreadSummary &t : threads) {
        for (size_t i = 0; i < t.events.size(); ++i) {
            const StaticMemEvent &e = t.events[i];
            if (e.kind == AccessKind::kFence || !e.addrKnown)
                continue;
            Node n;
            n.thread = t.thread;
            n.eventIdx = static_cast<int>(i);
            n.ev = &t.events[i];
            byWord[e.addr].push_back(static_cast<int>(nodes.size()));
            nodes.push_back(std::move(n));
        }
    }
    for (auto &[word, ids] : byWord) {
        (void)word;
        for (int a : ids) {
            for (int b : ids) {
                if (a == b || nodes[a].thread == nodes[b].thread)
                    continue;
                if (conflict(*nodes[a].ev, *nodes[b].ev))
                    nodes[a].conflicts.push_back(b);
            }
        }
    }
    // Drop nodes with no cross-thread conflict from the po fanout:
    // they can never appear in a cycle.
    std::map<unsigned, std::vector<int>> perThread;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
        if (!nodes[i].conflicts.empty())
            perThread[nodes[i].thread].push_back(i);
    }
    for (auto &[tid, ids] : perThread) {
        (void)tid;
        for (size_t i = 0; i < ids.size(); ++i) {
            for (size_t j = i + 1; j < ids.size(); ++j)
                nodes[ids[i]].poLater.push_back(ids[j]);
        }
    }

    Dfs dfs{threads, opts, nodes, out, 0, {}, {}, {}, 0};
    dfs.run();

    auto &req = out.requiredOrderingPoints;
    std::sort(req.begin(), req.end());
    req.erase(std::unique(req.begin(), req.end()), req.end());
    return out;
}

} // namespace fa::analysis
