#include "analysis/trace_io.hh"

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"

namespace fa::analysis {

namespace {

bool
parseEvKind(const std::string &s, EvKind *out)
{
    if (s == "R") *out = EvKind::kRead;
    else if (s == "W") *out = EvKind::kWrite;
    else if (s == "U") *out = EvKind::kRmw;
    else if (s == "F") *out = EvKind::kFence;
    else return false;
    return true;
}

bool
parseSyncKind(const std::string &s, SyncKind *out)
{
    if (s == "lock") *out = SyncKind::kLock;
    else if (s == "unlock") *out = SyncKind::kUnlock;
    else if (s == "fwd_hop") *out = SyncKind::kFwdHop;
    else if (s == "squash") *out = SyncKind::kSquash;
    else return false;
    return true;
}

std::uint64_t
u64Of(const JsonValue &obj, const char *k)
{
    const JsonValue *v = obj.find(k);
    return v ? v->asU64() : 0;
}

std::int64_t
i64Of(const JsonValue &obj, const char *k)
{
    const JsonValue *v = obj.find(k);
    if (!v)
        return 0;
    if (v->hasExactInt)
        return static_cast<std::int64_t>(v->exactInt);
    return static_cast<std::int64_t>(v->number);
}

} // namespace

void
writeMemTrace(std::ostream &os, const std::string &workload,
              const std::string &mode, unsigned cores,
              const std::vector<MemEvent> &events,
              const std::vector<SyncEvent> &syncs)
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value(kMemTraceSchema);
    jw.key("workload").value(workload);
    jw.key("mode").value(mode);
    jw.key("cores").value(cores);
    jw.key("events").beginArray();
    for (const MemEvent &e : events) {
        jw.beginObject();
        jw.key("t").value(unsigned(e.thread));
        jw.key("seq").value(std::uint64_t{e.seq});
        jw.key("pc").value(e.pc);
        jw.key("kind").value(evKindName(e.kind));
        jw.key("addr").value(std::uint64_t{e.addr});
        jw.key("rd").value(std::int64_t{e.valueRead});
        jw.key("wr").value(std::int64_t{e.valueWritten});
        jw.key("stamp").value(e.writeStamp);
        jw.key("rfInit").value(e.rfInit);
        if (!e.rfInit) {
            jw.key("rfT").value(unsigned(e.rfThread));
            jw.key("rfSeq").value(std::uint64_t{e.rfSeq});
        }
        jw.key("commit").value(std::uint64_t{e.commitCycle});
        jw.key("perform").value(std::uint64_t{e.performCycle});
        jw.endObject();
    }
    jw.endArray();
    jw.key("syncs").beginArray();
    for (const SyncEvent &s : syncs) {
        jw.beginObject();
        jw.key("kind").value(syncKindName(s.kind));
        jw.key("t").value(unsigned(s.thread));
        jw.key("seq").value(std::uint64_t{s.seq});
        jw.key("line").value(std::uint64_t{s.line});
        jw.key("cycle").value(std::uint64_t{s.cycle});
        if (s.kind == SyncKind::kFwdHop) {
            jw.key("from").value(std::uint64_t{s.fwdFromSeq});
            jw.key("chain").value(s.fwdChain);
        }
        if (!s.cause.empty())
            jw.key("cause").value(s.cause);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << "\n";
}

MemTraceFile
readMemTrace(const JsonValue &doc)
{
    const JsonValue *schema = doc.isObject() ? doc.find("schema")
                                             : nullptr;
    if (!schema || !schema->isString() ||
        schema->str != kMemTraceSchema) {
        fatal("not an %s document (schema '%s')", kMemTraceSchema,
              schema && schema->isString() ? schema->str.c_str()
                                           : "<missing>");
    }
    MemTraceFile f;
    if (const JsonValue *w = doc.find("workload"))
        f.workload = w->str;
    if (const JsonValue *m = doc.find("mode"))
        f.mode = m->str;
    f.cores = static_cast<unsigned>(u64Of(doc, "cores"));

    const JsonValue &evs = doc.at("events");
    for (const JsonValue &e : evs.arr) {
        if (!e.isObject())
            fatal("fa-mem-trace-v1: non-object event record");
        MemEvent m;
        m.thread = static_cast<CoreId>(u64Of(e, "t"));
        m.seq = u64Of(e, "seq");
        m.pc = static_cast<int>(i64Of(e, "pc"));
        const JsonValue *k = e.find("kind");
        if (!k || !k->isString() || !parseEvKind(k->str, &m.kind))
            fatal("fa-mem-trace-v1: bad event kind '%s'",
                  k && k->isString() ? k->str.c_str() : "<missing>");
        m.addr = u64Of(e, "addr");
        m.valueRead = i64Of(e, "rd");
        m.valueWritten = i64Of(e, "wr");
        m.writeStamp = u64Of(e, "stamp");
        const JsonValue *ri = e.find("rfInit");
        m.rfInit = !ri || !ri->isBool() || ri->boolean;
        if (!m.rfInit) {
            m.rfThread = static_cast<CoreId>(u64Of(e, "rfT"));
            m.rfSeq = u64Of(e, "rfSeq");
        }
        m.commitCycle = u64Of(e, "commit");
        m.performCycle = u64Of(e, "perform");
        f.events.push_back(m);
    }

    if (const JsonValue *syncs = doc.find("syncs")) {
        for (const JsonValue &s : syncs->arr) {
            if (!s.isObject())
                fatal("fa-mem-trace-v1: non-object sync record");
            SyncEvent se;
            const JsonValue *k = s.find("kind");
            if (!k || !k->isString() ||
                !parseSyncKind(k->str, &se.kind)) {
                fatal("fa-mem-trace-v1: bad sync kind '%s'",
                      k && k->isString() ? k->str.c_str()
                                         : "<missing>");
            }
            se.thread = static_cast<CoreId>(u64Of(s, "t"));
            se.seq = u64Of(s, "seq");
            se.line = u64Of(s, "line");
            se.cycle = u64Of(s, "cycle");
            if (se.kind == SyncKind::kFwdHop) {
                se.fwdFromSeq = u64Of(s, "from");
                se.fwdChain =
                    static_cast<std::uint32_t>(u64Of(s, "chain"));
            }
            if (const JsonValue *c = s.find("cause"))
                se.cause = c->str;
            f.syncs.push_back(std::move(se));
        }
    }
    return f;
}

MemTraceFile
loadMemTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return readMemTrace(JsonValue::parse(buf.str()));
}

} // namespace fa::analysis
