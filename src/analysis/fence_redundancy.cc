#include "analysis/fence_redundancy.hh"

#include <algorithm>

#include "common/log.hh"

namespace fa::analysis {

const char *
fenceVerdictName(FenceVerdict verdict)
{
    switch (verdict) {
      case FenceVerdict::kRequired:          return "REQUIRED";
      case FenceVerdict::kRedundantByAtomic: return "REDUNDANT";
      case FenceVerdict::kVacuous:           return "VACUOUS";
    }
    return "?";
}

namespace {

bool
isStoreLike(AccessKind k)
{
    return k == AccessKind::kStore || k == AccessKind::kStoreCond;
}

bool
isLoadLike(AccessKind k)
{
    return k == AccessKind::kLoad || k == AccessKind::kLoadLinked;
}

} // namespace

std::vector<FenceReport>
analyzeFences(const std::vector<ThreadSummary> &threads,
              const CycleAnalysis &cycles, core::AtomicsMode mode)
{
    const bool fence2 = mode == core::AtomicsMode::kFenced ||
        mode == core::AtomicsMode::kSpec;
    std::vector<FenceReport> reports;
    for (const ThreadSummary &t : threads) {
        const auto &evs = t.events;
        for (size_t i = 0; i < evs.size(); ++i) {
            if (evs[i].kind != AccessKind::kFence)
                continue;
            FenceReport rep;
            rep.thread = t.thread;
            rep.pc = evs[i].pc;

            // Walk back: does a store reach this fence before an RMW
            // drains the SB for us?  (pc-order walk: exact on the
            // straight-line litmus bodies this pass targets, and a
            // sound approximation inside loop bodies since the loop
            // repeats the same pc sequence.)
            bool store_before = false;
            int covering_rmw_pc = -1;
            for (size_t j = i; j-- > 0;) {
                if (evs[j].kind == AccessKind::kRmw) {
                    covering_rmw_pc = evs[j].pc;
                    break;
                }
                if (isStoreLike(evs[j].kind)) {
                    store_before = true;
                    break;
                }
            }
            // Walk forward: does a load follow before the next RMW
            // re-orders everything anyway?
            bool load_after = false;
            int covering_rmw_after = -1;
            for (size_t j = i + 1; j < evs.size(); ++j) {
                if (evs[j].kind == AccessKind::kRmw) {
                    covering_rmw_after = evs[j].pc;
                    break;
                }
                if (isLoadLike(evs[j].kind)) {
                    load_after = true;
                    break;
                }
            }

            if (!store_before && covering_rmw_pc >= 0) {
                rep.verdict = FenceVerdict::kRedundantByAtomic;
                rep.reason = strfmt(
                    "rmw at pc %d commits with an empty SB; no store "
                    "between it and this fence", covering_rmw_pc);
            } else if (!load_after && covering_rmw_after >= 0 &&
                       (fence2 || !store_before)) {
                // Load-side coverage is Mem_Fence2: it only holds
                // when the adjacent RMW stalls younger loads, i.e.
                // Fenced/Spec. In Free modes the RMW issues without
                // either fence, so a buffered earlier store can
                // still be passed by the later loads.
                rep.verdict = FenceVerdict::kRedundantByAtomic;
                rep.reason = strfmt(
                    "rmw at pc %d orders every later load; no load "
                    "between this fence and it", covering_rmw_after);
            } else if (!load_after && covering_rmw_after >= 0) {
                rep.verdict = FenceVerdict::kRequired;
                rep.reason = strfmt(
                    "store before this fence may still be buffered "
                    "when the free-mode rmw at pc %d binds early "
                    "(no Mem_Fence2 under %s); only exhaustive "
                    "synthesis (fafence) can prove it removable",
                    covering_rmw_after, core::atomicsModeIdent(mode));
            } else if (!store_before || !load_after) {
                rep.verdict = FenceVerdict::kVacuous;
                rep.reason = !store_before
                    ? "no store reaches this fence"
                    : "no load follows this fence";
            } else {
                bool on_cycle = std::binary_search(
                    cycles.requiredOrderingPoints.begin(),
                    cycles.requiredOrderingPoints.end(),
                    std::make_pair(t.thread, rep.pc));
                if (on_cycle) {
                    rep.verdict = FenceVerdict::kRequired;
                    rep.reason = "protects a store->load step of a "
                                 "critical cycle";
                } else {
                    rep.verdict = FenceVerdict::kVacuous;
                    rep.reason = "separates a store from a load but "
                                 "lies on no critical cycle";
                }
            }
            reports.push_back(std::move(rep));
        }
    }
    return reports;
}

} // namespace fa::analysis
