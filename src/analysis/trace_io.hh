/**
 * @file
 * fa-mem-trace-v1: serialized memory-event + synchronization streams.
 *
 * `fasim --dump-trace` writes one of these from a recording run;
 * `farace --trace` reads it back and analyzes offline. The format
 * carries exactly the TraceRecorder state — committed memory events
 * with rf sources and commit/perform cycles, plus the chronological
 * sync stream (lock/unlock/fwd-hop/squash) — so an offline analysis
 * is indistinguishable from an in-process one.
 */

#ifndef FA_ANALYSIS_TRACE_IO_HH
#define FA_ANALYSIS_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/trace.hh"

namespace fa {
struct JsonValue;
} // namespace fa

namespace fa::analysis {

constexpr const char *kMemTraceSchema = "fa-mem-trace-v1";

/** A deserialized trace file: identity plus the two streams. */
struct MemTraceFile
{
    std::string workload;
    std::string mode;
    unsigned cores = 0;
    std::vector<MemEvent> events;
    std::vector<SyncEvent> syncs;
};

/** Write both recorder streams as one fa-mem-trace-v1 document. */
void writeMemTrace(std::ostream &os, const std::string &workload,
                   const std::string &mode, unsigned cores,
                   const std::vector<MemEvent> &events,
                   const std::vector<SyncEvent> &syncs);

/** Rebuild the streams from a parsed document. fatal()s on a wrong
 * schema or a structurally broken record (unknown kind, non-object
 * event); missing numeric fields read as 0 so farace's torn-record
 * path — not the parser — decides what a damaged event means. */
MemTraceFile readMemTrace(const JsonValue &doc);

/** Convenience: parse `path` and readMemTrace it. */
MemTraceFile loadMemTrace(const std::string &path);

} // namespace fa::analysis

#endif // FA_ANALYSIS_TRACE_IO_HH
