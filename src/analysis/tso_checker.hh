/**
 * @file
 * Axiomatic x86-TSO consistency checker over a recorded memory-event
 * trace. Verifies the guarantee Free Atomics claims to preserve
 * (paper §3.2.3): every committed execution — fenced baseline, +Spec,
 * FreeAtomics, or FreeAtomics+Fwd — must stay within x86-TSO.
 *
 * The check is the standard acyclicity formulation:
 *
 *   acyclic( ppo-TSO  ∪  rfe  ∪  co  ∪  fr )
 *
 * where ppo-TSO is program order minus the write→read relaxation (a
 * store may be overtaken by a younger load unless a fence or atomic
 * intervenes), rfe is external reads-from, co is the per-word
 * coherence order (taken from global write-perform stamps), and fr
 * relates each read to the co-successors of the write it read from.
 * Additionally: rf well-formedness (the value read matches the value
 * the named writer wrote) and RMW atomicity (an RMW's own write is the
 * immediate co-successor of the write it read from).
 */

#ifndef FA_ANALYSIS_TSO_CHECKER_HH
#define FA_ANALYSIS_TSO_CHECKER_HH

#include <string>
#include <vector>

#include "analysis/trace.hh"

namespace fa::analysis {

struct TsoCheckResult
{
    bool ok = true;
    std::string error;        ///< human-readable violation, if !ok
    std::size_t eventsChecked = 0;

    explicit operator bool() const { return ok; }
};

/** Check one recorded trace against x86-TSO. */
TsoCheckResult checkTso(const std::vector<MemEvent> &events);

TsoCheckResult checkTso(const TraceRecorder &trace);

} // namespace fa::analysis

#endif // FA_ANALYSIS_TSO_CHECKER_HH
