/**
 * @file
 * Shared kernel shapes the synthetic benchmark suite is assembled
 * from. Each shape reproduces one synchronization idiom the paper's
 * applications exercise (§5.2, §5.5); the per-application parameter
 * sets live in splash.cc / parsec.cc / writeintensive.cc.
 */

#ifndef FA_WL_KERNELS_HH
#define FA_WL_KERNELS_HH

#include <cstdint>

#include "isa/builder.hh"
#include "workloads/workload.hh"

namespace fa::wl {

/**
 * Private compute with occasional lock-protected shared-counter
 * updates: the low-APKI SPLASH/PARSEC applications.
 */
struct ComputeKernelParams
{
    std::int64_t iters = 32;
    int aluPerIter = 50;       ///< dependent ALU chain length
    int privOpsPerIter = 4;    ///< private loads+stores per iteration
    std::int64_t lockEvery = 0;  ///< 0 = never take a lock
    int numLocks = 8;
};
isa::Program computeKernel(const BuildCtx &ctx, const std::string &name,
                           const ComputeKernelParams &p);

/**
 * Phases of strided shared stores separated by barriers: fft/radix
 * style transposes with heavy store-buffer pressure and false
 * sharing across threads.
 */
struct PhaseKernelParams
{
    int phases = 3;
    std::int64_t storesPerPhase = 64;
    int computePerStore = 4;
    std::int64_t strideWords = 16;  ///< distance between a thread's words
    std::int64_t regionWords = 1 << 14;
};
isa::Program phaseKernel(const BuildCtx &ctx, const std::string &name,
                         const PhaseKernelParams &p);

/**
 * Central lock-protected task counter: cholesky/volrend/raytrace
 * style work distribution.
 */
struct TaskQueueKernelParams
{
    std::int64_t tasksPerThread = 32;  ///< total = threads * this
    int computePerTask = 40;
};
isa::Program taskQueueKernel(const BuildCtx &ctx, const std::string &name,
                             const TaskQueueKernelParams &p);

/**
 * Random per-node locking with in-node field updates: barnes/fmm/
 * fluidanimate/TATP/PC style. Contention is set by numNodes.
 */
struct NodeLockKernelParams
{
    std::int64_t iters = 64;
    int numNodes = 64;       ///< one lock + data fields per node line
    int fieldsPerUpdate = 1;
    int computeBetween = 20;
    /**
     * When nonzero, grow the node table with the thread count
     * (nodes = max(numNodes, nodesPerThread * threads)) so the
     * contention level per thread — what the real applications'
     * large data structures exhibit — is independent of how many
     * cores the experiment strong-scales to.
     */
    double nodesPerThread = 0.0;
};

/** Effective node count for a run with `threads` threads. */
int effectiveNodes(const NodeLockKernelParams &p, unsigned threads);
isa::Program nodeLockKernel(const BuildCtx &ctx, const std::string &name,
                            const NodeLockKernelParams &p);

/**
 * Acquire a run of k locks in ascending order, update each entry,
 * release: the TPCC hotspot (§5.5). With k=2 and swap=true this is
 * the AS hotspot (lock two random entries, swap their values).
 */
struct MultiLockKernelParams
{
    std::int64_t iters = 8;
    int numEntries = 64;
    int minLocks = 5;
    int maxLocks = 15;
    bool swap = false;       ///< swap entry values instead of counting
    int computePerIter = 100;
};
isa::Program multiLockKernel(const BuildCtx &ctx, const std::string &name,
                             const MultiLockKernelParams &p);

/**
 * Lock-free element swapping with atomic exchanges: the canneal
 * hotspot (synchronizes purely with atomic operations).
 */
struct SwapKernelParams
{
    std::int64_t iters = 64;
    int numElems = 256;
    int computeBetween = 12;
};
isa::Program swapKernel(const BuildCtx &ctx, const std::string &name,
                        const SwapKernelParams &p);

/**
 * Ticket-based concurrent queue: fetch-add on shared head/tail
 * counters plus slot traffic (the CQ benchmark).
 */
struct QueueKernelParams
{
    std::int64_t opsPerThread = 48;
    int slots = 64;
    int computeBetween = 16;
};
isa::Program queueKernel(const BuildCtx &ctx, const std::string &name,
                         const QueueKernelParams &p);

/**
 * Coarse-grained global lock around a short pointer-chasing critical
 * section: the RBT benchmark.
 */
struct TreeKernelParams
{
    std::int64_t iters = 96;
    int numNodes = 128;
    int chaseSteps = 3;
    int computeBetween = 8;
};
isa::Program treeKernel(const BuildCtx &ctx, const std::string &name,
                        const TreeKernelParams &p);

/** Emit the start-of-ROI barrier shared by all kernels. */
void emitStartBarrier(isa::ProgramBuilder &b, const BuildCtx &ctx);

} // namespace fa::wl

#endif // FA_WL_KERNELS_HH
