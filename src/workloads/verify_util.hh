/**
 * @file
 * Small helpers shared by the workload verify hooks.
 */

#ifndef FA_WL_VERIFY_UTIL_HH
#define FA_WL_VERIFY_UTIL_HH

#include <cstdint>
#include <string>

#include "common/log.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace fa::wl {

/** Sum `count` words spaced `stride` bytes apart starting at base. */
inline std::int64_t
sumWords(const sim::System &sys, Addr base, int count, unsigned stride)
{
    std::int64_t sum = 0;
    for (int i = 0; i < count; ++i)
        sum += sys.readWord(base + static_cast<Addr>(i) * stride);
    return sum;
}

/** "" when equal; a diagnostic otherwise. */
inline std::string
expectEq(const char *what, std::int64_t got, std::int64_t want)
{
    if (got == want)
        return "";
    return strfmt("%s: got %lld, want %lld", what,
                  static_cast<long long>(got),
                  static_cast<long long>(want));
}

} // namespace fa::wl

#endif // FA_WL_VERIFY_UTIL_HH
