/**
 * @file
 * Higher-abstraction synchronization constructs built from atomic
 * RMWs — the mechanisms the paper's introduction motivates (locks,
 * barriers, "and other mechanisms used to negotiate mutual
 * exclusion"). Each is a workload with a machine-checkable
 * invariant:
 *
 *  - ticket_lock: FIFO fetch-add ticket lock; fairness and mutual
 *    exclusion (counter sum).
 *  - mcs_lock: MCS queue lock (xchg enqueue, CAS release); mutual
 *    exclusion under a spin-local queue discipline.
 *  - seqlock: sequence lock; readers must never observe a torn
 *    write (pair consistency), which exercises TSO load ordering.
 */

#include "workloads/suites.hh"

#include "workloads/kernels.hh"
#include "workloads/verify_util.hh"

namespace fa::wl {

namespace {

using isa::AluFn;
using isa::BranchCond;
using isa::Label;
using isa::ProgramBuilder;
using isa::Reg;

// Layout: lock state at kDataBase (64B-separated words), protected
// counter at kDataBase + 0x1000, MCS qnodes at kDataBase + 0x2000
// (one line per thread), seqlock data pair at +0x3000.

Workload
makeTicketLock(std::int64_t iters)
{
    Workload w;
    w.name = "ticket_lock";
    w.origin = "sync";
    w.atomicIntensive = true;
    w.build = [iters](const BuildCtx &ctx) {
        ProgramBuilder b("ticket_lock");
        emitStartBarrier(b, ctx);
        Reg r_i = b.alloc();
        Reg r_next = b.alloc();       // &next_ticket
        Reg r_serving = b.alloc();    // &now_serving
        Reg r_cnt = b.alloc();
        Reg r_one = b.alloc();
        Reg r_my = b.alloc();
        Reg r_cur = b.alloc();
        Reg r_val = b.alloc();
        b.movi(r_i, ctx.iters(iters));
        b.movi(r_next, static_cast<std::int64_t>(kDataBase));
        b.movi(r_serving, static_cast<std::int64_t>(kDataBase + 64));
        b.movi(r_cnt, static_cast<std::int64_t>(kDataBase + 0x1000));
        b.movi(r_one, 1);
        Label loop = b.here();
        // acquire: my = fetch_add(next_ticket); spin until serving==my
        b.fetchAdd(r_my, r_next, r_one);
        Label spin = b.here();
        b.load(r_cur, r_serving);
        Label go = b.newLabel();
        b.branch(BranchCond::kEq, r_cur, r_my, go);
        b.pause();
        b.jump(spin);
        b.bind(go);
        // critical section
        b.load(r_val, r_cnt);
        b.addi(r_val, r_val, 1);
        b.store(r_cnt, r_val);
        // release: now_serving = my + 1 (plain store; TSO st->st
        // order publishes the counter update first)
        b.addi(r_cur, r_my, 1);
        b.store(r_serving, r_cur);
        b.addi(r_i, r_i, -1);
        b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
        b.halt();
        return b.build();
    };
    w.verify = [iters](const sim::System &sys, unsigned nthreads,
                       double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t total = c.iters(iters) * nthreads;
        std::string err = expectEq(
            "ticket-lock protected counter",
            sys.readWord(kDataBase + 0x1000), total);
        if (!err.empty())
            return err;
        // FIFO property: tickets handed out == tickets served.
        err = expectEq("tickets issued", sys.readWord(kDataBase),
                       total);
        if (!err.empty())
            return err;
        return expectEq("tickets served", sys.readWord(kDataBase + 64),
                        total);
    };
    return w;
}

Workload
makeMcsLock(std::int64_t iters)
{
    Workload w;
    w.name = "mcs_lock";
    w.origin = "sync";
    w.atomicIntensive = true;
    w.build = [iters](const BuildCtx &ctx) {
        // qnode layout (one line per thread): +0 next, +8 ready.
        ProgramBuilder b("mcs_lock");
        emitStartBarrier(b, ctx);
        Reg r_i = b.alloc();
        Reg r_lock = b.alloc();
        Reg r_cnt = b.alloc();
        Reg r_me = b.alloc();
        Reg r_pred = b.alloc();
        Reg r_val = b.alloc();
        Reg r_next = b.alloc();
        Reg r_zero_chk = b.alloc();
        b.movi(r_i, ctx.iters(iters));
        b.movi(r_lock, static_cast<std::int64_t>(kDataBase + 128));
        b.movi(r_cnt, static_cast<std::int64_t>(kDataBase + 0x1000));
        b.movi(r_me, static_cast<std::int64_t>(
            kDataBase + 0x2000 + ctx.threadId * 64));

        Label loop = b.here();
        // acquire:
        //   me->next = 0; me->ready = 0
        //   pred = xchg(lock, me)
        //   if pred: pred->next = me; spin until me->ready
        b.store(r_me, ProgramBuilder::zero(), 0);
        b.store(r_me, ProgramBuilder::zero(), 8);
        b.exchange(r_pred, r_lock, r_me);
        Label acquired = b.newLabel();
        b.branch(BranchCond::kEq, r_pred, ProgramBuilder::zero(),
                 acquired);
        b.store(r_pred, r_me, 0);     // pred->next = me
        Label wait_ready = b.here();
        b.load(r_val, r_me, 8);
        b.pause();
        b.branch(BranchCond::kEq, r_val, ProgramBuilder::zero(),
                 wait_ready);
        b.bind(acquired);

        // critical section
        b.load(r_val, r_cnt);
        b.addi(r_val, r_val, 1);
        b.store(r_cnt, r_val);

        // release:
        //   if me->next == 0:
        //       if cas(lock, me, 0) succeeded: done
        //       else: spin until me->next != 0
        //   next->ready = 1
        Label done = b.newLabel();
        Label have_next = b.newLabel();
        b.load(r_next, r_me, 0);
        b.branch(BranchCond::kNe, r_next, ProgramBuilder::zero(),
                 have_next);
        b.compareSwap(r_zero_chk, r_lock, r_me,
                      ProgramBuilder::zero());
        b.branch(BranchCond::kEq, r_zero_chk, r_me, done);
        Label wait_next = b.here();
        b.load(r_next, r_me, 0);
        b.pause();
        b.branch(BranchCond::kEq, r_next, ProgramBuilder::zero(),
                 wait_next);
        b.bind(have_next);
        b.movi(r_val, 1);
        b.store(r_next, r_val, 8);    // next->ready = 1
        b.bind(done);

        b.addi(r_i, r_i, -1);
        b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
        b.halt();
        return b.build();
    };
    w.verify = [iters](const sim::System &sys, unsigned nthreads,
                       double scale) {
        BuildCtx c;
        c.scale = scale;
        std::string err = expectEq(
            "mcs-lock protected counter",
            sys.readWord(kDataBase + 0x1000),
            c.iters(iters) * nthreads);
        if (!err.empty())
            return err;
        return expectEq("mcs queue empty at end",
                        sys.readWord(kDataBase + 128), 0);
    };
    return w;
}

Workload
makeSeqlock(std::int64_t iters)
{
    Workload w;
    w.name = "seqlock";
    w.origin = "sync";
    w.build = [iters](const BuildCtx &ctx) {
        // seq at +0x3000, data pair at +0x3008/+0x3010 (always
        // written equal). Thread 0 writes; others read and count
        // torn observations into a per-thread result word.
        ProgramBuilder b("seqlock");
        emitStartBarrier(b, ctx);
        Reg r_i = b.alloc();
        Reg r_seq = b.alloc();
        Reg r_d = b.alloc();
        Reg r_s1 = b.alloc();
        Reg r_s2 = b.alloc();
        Reg r_a = b.alloc();
        Reg r_b2 = b.alloc();
        Reg r_res = b.alloc();
        Reg r_torn = b.alloc();
        Reg r_odd = b.alloc();
        b.movi(r_i, ctx.iters(iters));
        b.movi(r_seq, static_cast<std::int64_t>(kDataBase + 0x3000));

        Label loop = b.here();
        if (ctx.threadId == 0) {
            // writer: seq++; a = b = i; mfence; seq++
            b.load(r_s1, r_seq);
            b.addi(r_s1, r_s1, 1);
            b.store(r_seq, r_s1);       // odd: write in progress
            b.store(r_seq, r_i, 8);
            b.store(r_seq, r_i, 16);
            b.addi(r_s1, r_s1, 1);
            b.store(r_seq, r_s1);       // even: stable
            b.mfence();
        } else {
            // reader: s1 = seq; a; b; s2 = seq;
            // stable even snapshot with a != b -> torn
            b.load(r_s1, r_seq);
            b.load(r_a, r_seq, 8);
            b.load(r_b2, r_seq, 16);
            b.load(r_s2, r_seq);
            Label skip = b.newLabel();
            b.branch(BranchCond::kNe, r_s1, r_s2, skip);
            b.movi(r_d, 1);
            b.alu(AluFn::kAnd, r_odd, r_s1, r_d);
            b.branch(BranchCond::kNe, r_odd, ProgramBuilder::zero(),
                     skip);
            b.branch(BranchCond::kEq, r_a, r_b2, skip);
            b.addi(r_torn, r_torn, 1);
            b.bind(skip);
        }
        b.addi(r_i, r_i, -1);
        b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
        b.movi(r_res, static_cast<std::int64_t>(
            kResultBase + ctx.threadId * 8));
        b.store(r_res, r_torn);
        b.halt();
        return b.build();
    };
    w.verify = [](const sim::System &sys, unsigned nthreads, double) {
        for (unsigned t = 1; t < nthreads; ++t) {
            std::int64_t torn = sys.readWord(kResultBase + t * 8);
            if (torn != 0) {
                return strfmt("seqlock reader %u observed %lld torn "
                              "snapshots", t,
                              static_cast<long long>(torn));
            }
        }
        return std::string();
    };
    return w;
}

} // namespace

std::vector<Workload>
syncConstructsSuite()
{
    std::vector<Workload> v;
    v.push_back(makeTicketLock(24));
    v.push_back(makeMcsLock(24));
    v.push_back(makeSeqlock(64));
    return v;
}

} // namespace fa::wl
