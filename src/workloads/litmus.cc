/**
 * @file
 * Litmus and stress workloads:
 *  - dekker: Figure 10 — Dekker's algorithm with atomic RMWs as
 *    barriers; the (0,0) outcome is forbidden under type-1 atomicity.
 *  - mp: message passing; stale-data outcomes are forbidden by
 *    TSO load->load ordering.
 *  - sb_fenced: store-buffering with MFENCE; (0,0) forbidden.
 *  - sb_rmw: store-buffering where an atomic RMW sits between the
 *    store and the MFENCE; the RMW's commit already drains the SB
 *    (§3.2.2), so the fence is provably removable (fafence drops it)
 *    while (0,0) stays forbidden.
 *  - atomic_counter: concurrent fetch-add atomicity.
 *  - dl_rmwrmw / dl_storermw / dl_loadrmw: generators for the
 *    deadlock cycles of Figures 5, 6 and 7, recovered by the
 *    watchdog (§3.2.5).
 *  - dl_dirvictim: the fourth §3.2.5 shape — an inclusive-directory
 *    victim recall wedged on a locked line while the lock holder
 *    waits on the very miss that forced the recall.
 */

#include "workloads/suites.hh"

#include "workloads/kernels.hh"
#include "workloads/verify_util.hh"

namespace fa::wl {

namespace {

using isa::AluFn;
using isa::BranchCond;
using isa::Label;
using isa::ProgramBuilder;
using isa::Reg;

constexpr Addr kScratchBase = kDataBase + 0x40000;

/** Per-round line pair: A at +0, B at +64 of a 128-byte block. */
Addr
roundBlock(std::int64_t round)
{
    return kDataBase + static_cast<Addr>(round) * 128;
}

void
emitRoundBarrier(ProgramBuilder &b, const BuildCtx &ctx, Reg r_bar,
                 Reg r_n, Reg t0, Reg t1, Reg t2, Reg t3)
{
    (void)ctx;
    b.barrier(r_bar, r_n, t0, t1, t2, t3);
}

Workload
makeDekker(std::int64_t rounds)
{
    Workload w;
    w.name = "dekker";
    w.origin = "litmus";
    w.build = [rounds](const BuildCtx &ctx) {
        if (ctx.numThreads != 2)
            fatal("dekker requires exactly 2 threads");
        ProgramBuilder b("dekker");
        Reg r_bar = b.alloc();
        Reg r_n = b.alloc();
        Reg t0 = b.alloc();
        Reg t1 = b.alloc();
        Reg t2 = b.alloc();
        Reg t3 = b.alloc();
        Reg r_addr = b.alloc();
        Reg r_one = b.alloc();
        Reg r_v = b.alloc();
        Reg r_scr = b.alloc();
        Reg r_res = b.alloc();
        Reg r_t = b.alloc();
        b.movi(r_bar, static_cast<std::int64_t>(kBarrierBase));
        b.movi(r_n, 2);
        b.movi(r_one, 1);
        b.movi(r_scr, static_cast<std::int64_t>(
            kScratchBase + ctx.threadId * 64));
        std::int64_t n = ctx.iters(rounds);
        // A single start barrier: the symmetric round streams stay
        // in lockstep, racing each round's accesses for real.
        emitRoundBarrier(b, ctx, r_bar, r_n, t0, t1, t2, t3);
        for (std::int64_t r = 0; r < n; ++r) {
            Addr block = roundBlock(r);
            Addr mine = block + (ctx.threadId == 0 ? 0 : 64);
            Addr other = block + (ctx.threadId == 0 ? 64 : 0);
            b.movi(r_addr, static_cast<std::int64_t>(mine));
            b.store(r_addr, r_one);             // st A,1 / st B,1
            b.fetchAdd(r_t, r_scr, r_one);      // RMW C / RMW D
            b.movi(r_addr, static_cast<std::int64_t>(other));
            b.load(r_v, r_addr);                // ld B / ld A
            b.movi(r_res, static_cast<std::int64_t>(
                kResultBase + r * 16 + ctx.threadId * 8));
            b.store(r_res, r_v);
        }
        b.halt();
        return b.build();
    };
    w.verify = [rounds](const sim::System &sys, unsigned,
                        double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t n = c.iters(rounds);
        for (std::int64_t r = 0; r < n; ++r) {
            std::int64_t v0 = sys.readWord(kResultBase + r * 16);
            std::int64_t v1 = sys.readWord(kResultBase + r * 16 + 8);
            if (v0 == 0 && v1 == 0) {
                return strfmt("dekker forbidden outcome (0,0) in "
                              "round %lld",
                              static_cast<long long>(r));
            }
        }
        return std::string();
    };
    return w;
}

Workload
makeMp(std::int64_t rounds)
{
    Workload w;
    w.name = "mp";
    w.origin = "litmus";
    w.build = [rounds](const BuildCtx &ctx) {
        if (ctx.numThreads != 2)
            fatal("mp requires exactly 2 threads");
        ProgramBuilder b("mp");
        Reg r_bar = b.alloc();
        Reg r_n = b.alloc();
        Reg t0 = b.alloc();
        Reg t1 = b.alloc();
        Reg t2 = b.alloc();
        Reg t3 = b.alloc();
        Reg r_addr = b.alloc();
        Reg r_flag = b.alloc();
        Reg r_v = b.alloc();
        Reg r_res = b.alloc();
        b.movi(r_bar, static_cast<std::int64_t>(kBarrierBase));
        b.movi(r_n, 2);
        std::int64_t n = ctx.iters(rounds);
        for (std::int64_t r = 0; r < n; ++r) {
            emitRoundBarrier(b, ctx, r_bar, r_n, t0, t1, t2, t3);
            Addr data = roundBlock(r);
            Addr flag = roundBlock(r) + 64;
            if (ctx.threadId == 0) {
                b.movi(r_v, 42 + r);
                b.movi(r_addr, static_cast<std::int64_t>(data));
                b.store(r_addr, r_v);
                b.movi(r_v, 1);
                b.movi(r_flag, static_cast<std::int64_t>(flag));
                b.store(r_flag, r_v);
            } else {
                b.movi(r_flag, static_cast<std::int64_t>(flag));
                Label spin = b.here();
                b.load(r_v, r_flag);
                b.pause();
                b.branch(BranchCond::kEq, r_v, ProgramBuilder::zero(),
                         spin);
                b.movi(r_addr, static_cast<std::int64_t>(data));
                b.load(r_v, r_addr);
                b.movi(r_res, static_cast<std::int64_t>(
                    kResultBase + r * 8));
                b.store(r_res, r_v);
            }
        }
        b.halt();
        return b.build();
    };
    w.verify = [rounds](const sim::System &sys, unsigned,
                        double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t n = c.iters(rounds);
        for (std::int64_t r = 0; r < n; ++r) {
            std::int64_t v = sys.readWord(kResultBase + r * 8);
            if (v != 42 + r) {
                return strfmt("mp stale data in round %lld: got %lld",
                              static_cast<long long>(r),
                              static_cast<long long>(v));
            }
        }
        return std::string();
    };
    return w;
}

Workload
makeSbFenced(std::int64_t rounds)
{
    Workload w;
    w.name = "sb_fenced";
    w.origin = "litmus";
    w.build = [rounds](const BuildCtx &ctx) {
        if (ctx.numThreads != 2)
            fatal("sb_fenced requires exactly 2 threads");
        ProgramBuilder b("sb_fenced");
        Reg r_bar = b.alloc();
        Reg r_n = b.alloc();
        Reg t0 = b.alloc();
        Reg t1 = b.alloc();
        Reg t2 = b.alloc();
        Reg t3 = b.alloc();
        Reg r_addr = b.alloc();
        Reg r_one = b.alloc();
        Reg r_v = b.alloc();
        Reg r_res = b.alloc();
        b.movi(r_bar, static_cast<std::int64_t>(kBarrierBase));
        b.movi(r_n, 2);
        b.movi(r_one, 1);
        std::int64_t n = ctx.iters(rounds);
        emitRoundBarrier(b, ctx, r_bar, r_n, t0, t1, t2, t3);
        for (std::int64_t r = 0; r < n; ++r) {
            Addr block = roundBlock(r);
            Addr mine = block + (ctx.threadId == 0 ? 0 : 64);
            Addr other = block + (ctx.threadId == 0 ? 64 : 0);
            b.movi(r_addr, static_cast<std::int64_t>(mine));
            b.store(r_addr, r_one);
            b.mfence();
            b.movi(r_addr, static_cast<std::int64_t>(other));
            b.load(r_v, r_addr);
            b.movi(r_res, static_cast<std::int64_t>(
                kResultBase + r * 16 + ctx.threadId * 8));
            b.store(r_res, r_v);
        }
        b.halt();
        return b.build();
    };
    w.verify = [rounds](const sim::System &sys, unsigned,
                        double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t n = c.iters(rounds);
        for (std::int64_t r = 0; r < n; ++r) {
            std::int64_t v0 = sys.readWord(kResultBase + r * 16);
            std::int64_t v1 = sys.readWord(kResultBase + r * 16 + 8);
            if (v0 == 0 && v1 == 0) {
                return strfmt("sb forbidden outcome (0,0) past an "
                              "mfence in round %lld",
                              static_cast<long long>(r));
            }
        }
        return std::string();
    };
    return w;
}

/**
 * Store-buffering with a redundant fence: each round does
 * `store mine; fetchadd scratch; mfence; load other`. The RMW's
 * commit requires an empty SB in every atomics mode (§3.2.2), so the
 * store of `mine` is globally visible before the load of `other`
 * with or without the MFENCE — the fence is pure overhead, and the
 * synthesis engine (fafence) proves it removable. (0,0) per round is
 * forbidden regardless.
 */
Workload
makeSbRmw(std::int64_t rounds)
{
    Workload w;
    w.name = "sb_rmw";
    w.origin = "litmus";
    w.build = [rounds](const BuildCtx &ctx) {
        if (ctx.numThreads != 2)
            fatal("sb_rmw requires exactly 2 threads");
        ProgramBuilder b("sb_rmw");
        Reg r_bar = b.alloc();
        Reg r_n = b.alloc();
        Reg t0 = b.alloc();
        Reg t1 = b.alloc();
        Reg t2 = b.alloc();
        Reg t3 = b.alloc();
        Reg r_addr = b.alloc();
        Reg r_one = b.alloc();
        Reg r_v = b.alloc();
        Reg r_res = b.alloc();
        Reg r_scr = b.alloc();
        b.movi(r_bar, static_cast<std::int64_t>(kBarrierBase));
        b.movi(r_n, 2);
        b.movi(r_one, 1);
        b.movi(r_scr, static_cast<std::int64_t>(
            kScratchBase + 0x100 + ctx.threadId * 64));
        std::int64_t n = ctx.iters(rounds);
        emitRoundBarrier(b, ctx, r_bar, r_n, t0, t1, t2, t3);
        for (std::int64_t r = 0; r < n; ++r) {
            Addr block = roundBlock(r);
            Addr mine = block + (ctx.threadId == 0 ? 0 : 64);
            Addr other = block + (ctx.threadId == 0 ? 64 : 0);
            b.movi(r_addr, static_cast<std::int64_t>(mine));
            b.store(r_addr, r_one);
            b.fetchAdd(r_v, r_scr, r_one);
            b.mfence();
            b.movi(r_addr, static_cast<std::int64_t>(other));
            b.load(r_v, r_addr);
            b.movi(r_res, static_cast<std::int64_t>(
                kResultBase + r * 16 + ctx.threadId * 8));
            b.store(r_res, r_v);
        }
        b.halt();
        return b.build();
    };
    w.verify = [rounds](const sim::System &sys, unsigned,
                        double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t n = c.iters(rounds);
        for (std::int64_t r = 0; r < n; ++r) {
            std::int64_t v0 = sys.readWord(kResultBase + r * 16);
            std::int64_t v1 = sys.readWord(kResultBase + r * 16 + 8);
            if (v0 == 0 && v1 == 0) {
                return strfmt("sb forbidden outcome (0,0) past an "
                              "rmw in round %lld",
                              static_cast<long long>(r));
            }
        }
        return std::string();
    };
    return w;
}

Workload
makeAtomicCounter(std::int64_t iters)
{
    Workload w;
    w.name = "atomic_counter";
    w.origin = "litmus";
    w.atomicIntensive = true;
    w.build = [iters](const BuildCtx &ctx) {
        ProgramBuilder b("atomic_counter");
        emitStartBarrier(b, ctx);
        Reg r_i = b.alloc();
        Reg r_addr = b.alloc();
        Reg r_one = b.alloc();
        Reg r_v = b.alloc();
        b.movi(r_i, ctx.iters(iters));
        b.movi(r_addr, static_cast<std::int64_t>(kDataBase));
        b.movi(r_one, 1);
        Label loop = b.here();
        b.fetchAdd(r_v, r_addr, r_one);
        b.addi(r_i, r_i, -1);
        b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
        b.halt();
        return b.build();
    };
    w.verify = [iters](const sim::System &sys, unsigned nthreads,
                       double scale) {
        BuildCtx c;
        c.scale = scale;
        return expectEq("atomic counter", sys.readWord(kDataBase),
                        c.iters(iters) * nthreads);
    };
    return w;
}

/**
 * Deadlock generators: even threads touch (A then B), odd threads
 * (B then A), with the first access chosen per Figures 5/6/7.
 */
enum class DlKind { kRmwRmw, kStoreRmw, kLoadRmw };

Workload
makeDeadlock(const std::string &name, DlKind kind, std::int64_t iters)
{
    Workload w;
    w.name = name;
    w.origin = "litmus";
    w.atomicIntensive = true;
    w.build = [kind, iters](const BuildCtx &ctx) {
        ProgramBuilder b("dl");
        emitStartBarrier(b, ctx);
        Reg r_i = b.alloc();
        Reg r_a = b.alloc();
        Reg r_b = b.alloc();
        Reg r_one = b.alloc();
        Reg r_v = b.alloc();
        bool even = ctx.threadId % 2 == 0;
        Addr line_a = kDataBase;
        Addr line_b = kDataBase + 64;
        Addr first = even ? line_a : line_b;
        Addr second = even ? line_b : line_a;
        b.movi(r_i, ctx.iters(iters));
        b.movi(r_a, static_cast<std::int64_t>(first));
        b.movi(r_b, static_cast<std::int64_t>(second));
        b.movi(r_one, 1);
        Label loop = b.here();
        switch (kind) {
          case DlKind::kRmwRmw:
            // Figure 5: RMW A ; RMW B vs RMW B ; RMW A.
            b.fetchAdd(r_v, r_a, r_one);
            b.fetchAdd(r_v, r_b, r_one);
            break;
          case DlKind::kStoreRmw:
            // Figure 6: st A ; RMW B (store to a different word of
            // the line the other thread's atomic locks).
            b.store(r_a, r_one, 8);
            b.fetchAdd(r_v, r_b, r_one);
            break;
          case DlKind::kLoadRmw:
            // Figure 7: ld A ; RMW B.
            b.load(r_v, r_a, 8);
            b.fetchAdd(r_v, r_b, r_one);
            break;
        }
        b.addi(r_i, r_i, -1);
        b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
        b.halt();
        return b.build();
    };
    w.verify = [kind, iters](const sim::System &sys, unsigned nthreads,
                             double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t per = c.iters(iters);
        std::int64_t a = sys.readWord(kDataBase);
        std::int64_t bv = sys.readWord(kDataBase + 64);
        std::int64_t even_threads = (nthreads + 1) / 2;
        std::int64_t odd_threads = nthreads / 2;
        std::int64_t want_a = 0;
        std::int64_t want_b = 0;
        switch (kind) {
          case DlKind::kRmwRmw:
            want_a = per * nthreads;
            want_b = per * nthreads;
            break;
          case DlKind::kStoreRmw:
          case DlKind::kLoadRmw:
            // Only the second access is an atomic increment.
            want_a = per * odd_threads;
            want_b = per * even_threads;
            break;
        }
        std::string err = expectEq("line A atomic count", a, want_a);
        if (!err.empty())
            return err;
        return expectEq("line B atomic count", bv, want_b);
    };
    return w;
}

/**
 * Inclusive-directory victim-recall deadlock (§3.2.5, fourth shape).
 *
 * Each thread streams loads over a private region big enough to
 * overflow the finite directory, then RMWs its own hot line A. Under
 * out-of-order lock acquisition the atomic locks A while the older
 * stream loads still miss; allocating their directory entries must
 * recall a victim, LRU picks the idle-looking locked A, the recall
 * is denied — and the lock holder itself is waiting on the blocked
 * miss, a cycle only the watchdog can break. Fenced/in-order runs
 * never lock early, so the same program runs wedge-free there.
 */
Workload
makeDirVictim(std::int64_t iters)
{
    Workload w;
    w.name = "dl_dirvictim";
    w.origin = "litmus";
    w.atomicIntensive = true;
    w.build = [iters](const BuildCtx &ctx) {
        ProgramBuilder b("dl_dirvictim");
        emitStartBarrier(b, ctx);
        Reg r_i = b.alloc();
        Reg r_a = b.alloc();
        Reg r_s = b.alloc();
        Reg r_one = b.alloc();
        Reg r_v = b.alloc();
        Addr hot = kDataBase + ctx.threadId * 64;
        // Private stream region, far from every thread's hot line.
        Addr stream = kScratchBase + ctx.threadId * 0x100000;
        b.movi(r_i, ctx.iters(iters));
        b.movi(r_a, static_cast<std::int64_t>(hot));
        b.movi(r_s, static_cast<std::int64_t>(stream));
        b.movi(r_one, 1);
        Label loop = b.here();
        // Eight fresh-line misses (one per small-directory set) older
        // than the atomic: their entry allocations force recalls.
        for (int l = 0; l < 8; ++l)
            b.load(r_v, r_s, l * 64);
        b.fetchAdd(r_v, r_a, r_one);
        b.addi(r_s, r_s, 8 * 64);
        b.addi(r_i, r_i, -1);
        b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
        b.halt();
        return b.build();
    };
    w.verify = [iters](const sim::System &sys, unsigned nthreads,
                       double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t per = c.iters(iters);
        for (unsigned t = 0; t < nthreads; ++t) {
            std::string err = expectEq(
                strfmt("thread %u hot-line count", t).c_str(),
                sys.readWord(kDataBase + t * 64), per);
            if (!err.empty())
                return err;
        }
        return std::string();
    };
    return w;
}

} // namespace

std::vector<Workload>
litmusSuite()
{
    std::vector<Workload> v;
    v.push_back(makeDekker(32));
    v.push_back(makeMp(32));
    v.push_back(makeSbFenced(32));
    v.push_back(makeSbRmw(32));
    v.push_back(makeAtomicCounter(96));
    v.push_back(makeDeadlock("dl_rmwrmw", DlKind::kRmwRmw, 64));
    v.push_back(makeDeadlock("dl_storermw", DlKind::kStoreRmw, 64));
    v.push_back(makeDeadlock("dl_loadrmw", DlKind::kLoadRmw, 64));
    v.push_back(makeDirVictim(48));
    return v;
}

} // namespace fa::wl
