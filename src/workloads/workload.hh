/**
 * @file
 * Workload registry: the paper's benchmark suite rebuilt as
 * synthetic kernels with matching synchronization behaviour, plus
 * litmus programs. Each workload builds one program per thread,
 * optionally pre-initializes memory, and can verify an invariant on
 * the final memory image (atomicity, lock-protected sums, etc.).
 */

#ifndef FA_WL_WORKLOAD_HH
#define FA_WL_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "core/core_config.hh"
#include "isa/program.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

namespace fa::wl {

/** Shared-memory layout used by all workloads. */
constexpr Addr kBarrierBase = 0x10000;   ///< count at +0, generation +64
constexpr Addr kResultBase = 0x20000;    ///< litmus outcome words
constexpr Addr kLockBase = 0x40000;      ///< lock i at + i*64
constexpr Addr kDataBase = 0x200000;     ///< shared data region
constexpr Addr kIndirBase = 0x180000;    ///< node indirection table
constexpr Addr kPrivBase = 0x10000000;   ///< + threadId * kPrivStride
constexpr Addr kPrivStride = 0x100000;

/** Parameters handed to a per-thread program builder. */
struct BuildCtx
{
    unsigned threadId = 0;
    unsigned numThreads = 1;
    double scale = 1.0;   ///< multiplies iteration counts

    /** Scaled iteration count (at least 1). */
    std::int64_t
    iters(std::int64_t base) const
    {
        auto v = static_cast<std::int64_t>(
            static_cast<double>(base) * scale);
        return v < 1 ? 1 : v;
    }
};

/** A named multi-threaded workload. */
struct Workload
{
    std::string name;
    std::string origin;        ///< splash3 / parsec3 / write-intensive
    bool atomicIntensive = false;  ///< paper's >=0.75-APKI class

    std::function<isa::Program(const BuildCtx &)> build;

    /** Optional initial memory image. */
    std::function<sim::MemInit(unsigned num_threads, double scale)> init;

    /** Optional invariant check on the final state; "" when ok. */
    std::function<std::string(const sim::System &sys,
                              unsigned num_threads, double scale)> verify;
};

/** The 26-application suite of the paper, in Figure 12 order. */
const std::vector<Workload> &allWorkloads();

/** Litmus/stress workloads (Dekker, MP, SB, deadlock generators). */
const std::vector<Workload> &litmusWorkloads();

/** Find a workload in either registry; nullptr if unknown. */
const Workload *findWorkload(const std::string &name);

/** Build one program per thread. */
std::vector<isa::Program> buildPrograms(const Workload &w,
                                        unsigned num_threads,
                                        double scale);

/**
 * Run a workload end to end: build programs, init memory, simulate,
 * and apply the workload's verify hook (its failure message lands in
 * RunResult::failure).
 */
sim::RunResult runWorkload(const Workload &w,
                           sim::MachineConfig machine,
                           core::AtomicsMode mode, unsigned num_threads,
                           double scale, std::uint64_t seed,
                           Cycle max_cycles = 50'000'000);

} // namespace fa::wl

#endif // FA_WL_WORKLOAD_HH
