/**
 * @file
 * SPLASH-3-like synthetic applications. Parameters are chosen so the
 * suite spans the paper's Figure 12 spectrum: compute-dominated apps
 * (watersp, waternsq) at the low-APKI end, barrier/transpose apps
 * with heavy store-buffer pressure (fft, radix, ocean) in the
 * middle, and lock-heavy tree/task apps (barnes, volrend, radiosity)
 * at the atomic-intensive end.
 */

#include "workloads/suites.hh"

#include "workloads/kernels.hh"
#include "workloads/verify_util.hh"

namespace fa::wl {

namespace {

Workload
makeCompute(const std::string &name, ComputeKernelParams p,
            bool atomic_intensive = false)
{
    Workload w;
    w.name = name;
    w.origin = "splash3";
    w.atomicIntensive = atomic_intensive;
    w.build = [name, p](const BuildCtx &ctx) {
        return computeKernel(ctx, name, p);
    };
    if (p.lockEvery > 0) {
        w.verify = [p](const sim::System &sys, unsigned nthreads,
                       double scale) {
            BuildCtx c;
            c.scale = scale;
            std::int64_t per_thread = c.iters(p.iters) / p.lockEvery;
            std::int64_t want = per_thread * nthreads;
            std::int64_t got =
                sumWords(sys, kLockBase + 8, p.numLocks, 64);
            return expectEq("lock-protected counter sum", got, want);
        };
    }
    return w;
}

Workload
makePhase(const std::string &name, PhaseKernelParams p)
{
    Workload w;
    w.name = name;
    w.origin = "splash3";
    w.build = [name, p](const BuildCtx &ctx) {
        return phaseKernel(ctx, name, p);
    };
    w.verify = [p](const sim::System &sys, unsigned nthreads,
                   double scale) {
        BuildCtx c;
        c.scale = scale;
        std::int64_t stores = c.iters(p.storesPerPhase);
        int last = p.phases - 1;
        for (unsigned tid = 0; tid < nthreads; ++tid) {
            for (std::int64_t k = 0; k < stores; ++k) {
                Addr a = kDataBase +
                    (tid + k * nthreads) * p.strideWords * kWordBytes;
                std::int64_t want = k * 3 + tid * 1000 + last * 7;
                if (sys.readWord(a) != want) {
                    return strfmt(
                        "phase store mismatch at tid %u k %lld", tid,
                        static_cast<long long>(k));
                }
            }
        }
        return std::string();
    };
    return w;
}

Workload
makeTaskQueue(const std::string &name, TaskQueueKernelParams p,
              bool atomic_intensive = false)
{
    Workload w;
    w.name = name;
    w.origin = "splash3";
    w.atomicIntensive = atomic_intensive;
    w.build = [name, p](const BuildCtx &ctx) {
        return taskQueueKernel(ctx, name, p);
    };
    w.verify = [p](const sim::System &sys, unsigned nthreads,
                   double scale) {
        BuildCtx c;
        c.scale = scale;
        // Every thread's final fetch-add observes an exhausted
        // counter, so exactly nthreads overshoot grabs occur.
        std::int64_t want =
            c.iters(p.tasksPerThread) * nthreads + nthreads;
        return expectEq("task ticket counter", sys.readWord(kDataBase),
                        want);
    };
    return w;
}

Workload
makeNodeLock(const std::string &name, NodeLockKernelParams p,
             bool atomic_intensive)
{
    Workload w;
    w.name = name;
    w.origin = "splash3";
    w.atomicIntensive = atomic_intensive;
    w.build = [name, p](const BuildCtx &ctx) {
        return nodeLockKernel(ctx, name, p);
    };
    w.init = [p](unsigned nthreads, double) {
        sim::MemInit init;
        int nodes = effectiveNodes(p, nthreads);
        for (int e = 0; e < nodes; ++e)
            init.emplace_back(kIndirBase + e * 8, e);
        return init;
    };
    w.verify = [p](const sim::System &sys, unsigned nthreads,
                   double scale) {
        BuildCtx c;
        c.scale = scale;
        int nodes = effectiveNodes(p, nthreads);
        std::int64_t want = c.iters(p.iters) * nthreads;
        std::int64_t got = sumWords(sys, kDataBase + 8, nodes, 64);
        std::string err =
            expectEq("node counter sum", got, want);
        if (!err.empty())
            return err;
        for (int f = 0; f < p.fieldsPerUpdate; ++f) {
            got = sumWords(sys, kDataBase + 16 + 8 * f, nodes, 64);
            err = expectEq("node field sum", got, want);
            if (!err.empty())
                return err;
        }
        return std::string();
    };
    return w;
}

} // namespace

std::vector<Workload>
splashWorkloads()
{
    std::vector<Workload> v;

    // --- compute-dominated, rare locking ---------------------------------
    v.push_back(makeCompute("watersp",
        {.iters = 32, .aluPerIter = 600, .privOpsPerIter = 8,
         .lockEvery = 32, .numLocks = 16}));
    v.push_back(makeCompute("waternsq",
        {.iters = 32, .aluPerIter = 400, .privOpsPerIter = 8,
         .lockEvery = 32, .numLocks = 16}));

    // --- barrier/transpose phases with store pressure ---------------------
    v.push_back(makePhase("fft",
        {.phases = 3, .storesPerPhase = 96, .computePerStore = 18,
         .strideWords = 24}));
    v.push_back(makePhase("radix",
        {.phases = 3, .storesPerPhase = 128, .computePerStore = 10,
         .strideWords = 40}));
    v.push_back(makePhase("lu_ncb",
        {.phases = 4, .storesPerPhase = 48, .computePerStore = 30,
         .strideWords = 56}));
    v.push_back(makePhase("lu_cb",
        {.phases = 4, .storesPerPhase = 48, .computePerStore = 26,
         .strideWords = 8}));
    v.push_back(makePhase("ocean_ncp",
        {.phases = 5, .storesPerPhase = 72, .computePerStore = 16,
         .strideWords = 72}));
    v.push_back(makePhase("ocean_cp",
        {.phases = 5, .storesPerPhase = 72, .computePerStore = 16,
         .strideWords = 16}));

    // --- task queues -------------------------------------------------------
    v.push_back(makeCompute("raytrace",
        {.iters = 32, .aluPerIter = 300, .privOpsPerIter = 8,
         .lockEvery = 16, .numLocks = 16}));
    v.push_back(makeTaskQueue("cholesky",
        {.tasksPerThread = 8, .computePerTask = 1100}));
    v.push_back(makeTaskQueue("volrend",
        {.tasksPerThread = 16, .computePerTask = 450}, true));

    // --- per-node locking ----------------------------------------------------
    v.push_back(makeNodeLock("fmm",
        {.iters = 24, .numNodes = 32, .fieldsPerUpdate = 3,
         .computeBetween = 2400, .nodesPerThread = 1.0}, false));
    v.push_back(makeNodeLock("barnes",
        {.iters = 48, .numNodes = 48, .fieldsPerUpdate = 2,
         .computeBetween = 1100, .nodesPerThread = 1.5}, true));
    v.push_back(makeNodeLock("radiosity",
        {.iters = 64, .numNodes = 16, .fieldsPerUpdate = 1,
         .computeBetween = 550, .nodesPerThread = 1.0}, true));

    return v;
}

} // namespace fa::wl
