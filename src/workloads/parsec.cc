/**
 * @file
 * PARSEC-3-like synthetic applications. Per §5.2: canneal
 * synchronizes purely with atomic operations; fluidanimate takes
 * millions of non-contended locks; the rest are compute-dominated.
 */

#include "workloads/suites.hh"

#include "workloads/kernels.hh"
#include "workloads/verify_util.hh"

namespace fa::wl {

namespace {

Workload
makeParsecCompute(const std::string &name, ComputeKernelParams p)
{
    Workload w;
    w.name = name;
    w.origin = "parsec3";
    w.build = [name, p](const BuildCtx &ctx) {
        return computeKernel(ctx, name, p);
    };
    if (p.lockEvery > 0) {
        w.verify = [p](const sim::System &sys, unsigned nthreads,
                       double scale) {
            BuildCtx c;
            c.scale = scale;
            std::int64_t per_thread = c.iters(p.iters) / p.lockEvery;
            std::int64_t got =
                sumWords(sys, kLockBase + 8, p.numLocks, 64);
            return expectEq("lock-protected counter sum", got,
                            per_thread * nthreads);
        };
    }
    return w;
}

} // namespace

std::vector<Workload>
parsecWorkloads()
{
    std::vector<Workload> v;

    v.push_back(makeParsecCompute("blackscholes",
        {.iters = 32, .aluPerIter = 380, .privOpsPerIter = 10,
         .lockEvery = 0, .numLocks = 1}));
    v.push_back(makeParsecCompute("freqmine",
        {.iters = 32, .aluPerIter = 350, .privOpsPerIter = 10,
         .lockEvery = 16, .numLocks = 8}));
    v.push_back(makeParsecCompute("facesim",
        {.iters = 32, .aluPerIter = 280, .privOpsPerIter = 14,
         .lockEvery = 16, .numLocks = 8}));
    v.push_back(makeParsecCompute("swaptions",
        {.iters = 32, .aluPerIter = 220, .privOpsPerIter = 8,
         .lockEvery = 16, .numLocks = 32}));

    // fluidanimate: very frequent, essentially uncontended locks.
    {
        Workload w;
        w.name = "fluidanimate";
        w.origin = "parsec3";
        w.atomicIntensive = true;
        NodeLockKernelParams p{.iters = 96, .numNodes = 512,
                               .fieldsPerUpdate = 1,
                               .computeBetween = 330,
                               .nodesPerThread = 16.0};
        w.build = [p](const BuildCtx &ctx) {
            return nodeLockKernel(ctx, "fluidanimate", p);
        };
        w.init = [p](unsigned nthreads, double) {
            sim::MemInit init;
            int nodes = effectiveNodes(p, nthreads);
            for (int e = 0; e < nodes; ++e)
                init.emplace_back(kIndirBase + e * 8, e);
            return init;
        };
        w.verify = [p](const sim::System &sys, unsigned nthreads,
                       double scale) {
            BuildCtx c;
            c.scale = scale;
            std::int64_t want = c.iters(p.iters) * nthreads;
            return expectEq(
                "cell counter sum",
                sumWords(sys, kDataBase + 8,
                         effectiveNodes(p, nthreads), 64),
                want);
        };
        v.push_back(std::move(w));
    }

    // canneal: pure atomic-exchange element swapping (racy by
    // design, as in the real application; no strong invariant).
    {
        Workload w;
        w.name = "canneal";
        w.origin = "parsec3";
        w.atomicIntensive = true;
        SwapKernelParams p{.iters = 96, .numElems = 512,
                           .computeBetween = 110};
        w.build = [p](const BuildCtx &ctx) {
            return swapKernel(ctx, "canneal", p);
        };
        v.push_back(std::move(w));
    }

    return v;
}

} // namespace fa::wl
