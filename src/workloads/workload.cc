#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/suites.hh"

namespace fa::wl {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v;
        for (auto &w : splashWorkloads())
            v.push_back(std::move(w));
        for (auto &w : parsecWorkloads())
            v.push_back(std::move(w));
        for (auto &w : writeIntensiveWorkloads())
            v.push_back(std::move(w));
        return v;
    }();
    return all;
}

const std::vector<Workload> &
litmusWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v = litmusSuite();
        for (auto &w : syncConstructsSuite())
            v.push_back(std::move(w));
        return v;
    }();
    return all;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return &w;
    for (const Workload &w : litmusWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

std::vector<isa::Program>
buildPrograms(const Workload &w, unsigned num_threads, double scale)
{
    std::vector<isa::Program> progs;
    progs.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        BuildCtx ctx;
        ctx.threadId = t;
        ctx.numThreads = num_threads;
        ctx.scale = scale;
        progs.push_back(w.build(ctx));
    }
    return progs;
}

sim::RunResult
runWorkload(const Workload &w, sim::MachineConfig machine,
            core::AtomicsMode mode, unsigned num_threads, double scale,
            std::uint64_t seed, Cycle max_cycles)
{
    machine.core.mode = mode;
    machine.cores = num_threads;
    auto progs = buildPrograms(w, num_threads, scale);
    sim::System system(machine, progs, seed);
    if (w.init)
        system.initMemory(w.init(num_threads, scale));
    sim::RunOutcome outcome = system.run(max_cycles);

    sim::RunResult res = sim::collectRunResult(system, outcome);
    if (!res.tsoOk())
        res.failure = "tso check failed (" + w.name + "): " +
            res.tsoError;
    if (res.finished && w.verify) {
        std::string err = w.verify(system, num_threads, scale);
        if (!err.empty()) {
            res.finished = false;
            res.failure = "verify failed (" + w.name + "): " + err;
        }
    }
    return res;
}

} // namespace fa::wl
