/**
 * @file
 * Random-program generator used by the property-based tests.
 */

#ifndef FA_WL_SYNTHETIC_HH
#define FA_WL_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "workloads/workload.hh"

namespace fa::wl {

/** Generation parameters for one synthetic thread program. */
struct SyntheticParams
{
    std::uint64_t generatorSeed = 1;
    unsigned blocks = 12;       ///< straight-line/loop blocks
    unsigned numCounters = 4;   ///< shared atomic counters (64B apart)
};

/**
 * Generate a thread program.
 *
 * @param counter_increments if non-null, receives the total this
 *        thread adds to each shared counter (for the atomicity
 *        invariant check)
 */
isa::Program buildSyntheticProgram(
    const SyntheticParams &p, unsigned thread_id, unsigned num_threads,
    std::vector<std::int64_t> *counter_increments);

} // namespace fa::wl

#endif // FA_WL_SYNTHETIC_HH
