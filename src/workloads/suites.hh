/**
 * @file
 * Per-suite workload factories, aggregated by allWorkloads().
 */

#ifndef FA_WL_SUITES_HH
#define FA_WL_SUITES_HH

#include <vector>

#include "workloads/workload.hh"

namespace fa::wl {

/** SPLASH-3-like applications (14). */
std::vector<Workload> splashWorkloads();

/** PARSEC-3-like applications (6). */
std::vector<Workload> parsecWorkloads();

/** Write-intensive suite [20, 30]: TATP, PC, TPCC, AS, CQ, RBT. */
std::vector<Workload> writeIntensiveWorkloads();

/** Litmus and deadlock-stress workloads (tests/examples). */
std::vector<Workload> litmusSuite();

/** Higher-abstraction synchronization constructs (ticket/MCS locks,
 * seqlock) with machine-checkable invariants. */
std::vector<Workload> syncConstructsSuite();

} // namespace fa::wl

#endif // FA_WL_SUITES_HH
