/**
 * @file
 * Random-program generator for property-based testing.
 *
 * Generated threads mix private loads/stores (a region owned by the
 * thread), shared read-only loads, shared atomic fetch-adds, bounded
 * loops and data-dependent branches. The construction guarantees two
 * checkable invariants regardless of interleaving:
 *
 *  1. every shared counter ends at exactly the sum of the increments
 *     the generated code applies to it (atomicity), and
 *  2. each thread's private region ends bit-identical to a sequential
 *     reference interpretation of that thread alone (no cross-thread
 *     interference, speculation fully recovered).
 */

#include "workloads/synthetic.hh"

#include "common/rng.hh"
#include "isa/builder.hh"
#include "workloads/kernels.hh"
#include "workloads/verify_util.hh"

namespace fa::wl {

using isa::AluFn;
using isa::BranchCond;
using isa::Label;
using isa::ProgramBuilder;
using isa::Reg;

isa::Program
buildSyntheticProgram(const SyntheticParams &p, unsigned thread_id,
                      unsigned num_threads,
                      std::vector<std::int64_t> *counter_increments)
{
    Rng rng(mix64(p.generatorSeed, thread_id + 0x51ed));
    ProgramBuilder b(strfmt("synthetic-t%u", thread_id));

    BuildCtx ctx;
    ctx.threadId = thread_id;
    ctx.numThreads = num_threads;
    emitStartBarrier(b, ctx);

    Reg r_priv = b.alloc();
    Reg r_shared = b.alloc();
    Reg r_cnt = b.alloc();
    Reg r_acc = b.alloc();
    Reg r_tmp = b.alloc();
    Reg r_v = b.alloc();
    Reg r_loop = b.alloc();
    Reg r_op = b.alloc();
    b.movi(r_priv, static_cast<std::int64_t>(
        kPrivBase + thread_id * kPrivStride));
    b.movi(r_shared, static_cast<std::int64_t>(kDataBase + 0x10000));
    b.movi(r_cnt, static_cast<std::int64_t>(kDataBase));
    b.movi(r_acc, static_cast<std::int64_t>(thread_id + 1));

    if (counter_increments)
        counter_increments->assign(p.numCounters, 0);

    for (unsigned blk = 0; blk < p.blocks; ++blk) {
        // Optionally wrap this block in a bounded loop.
        std::int64_t trips = 1;
        Label loop_head{};
        bool looped = rng.chance(2, 5);
        if (looped) {
            trips = static_cast<std::int64_t>(rng.range(2, 4));
            b.movi(r_loop, trips);
            loop_head = b.here();
        }

        unsigned ops = static_cast<unsigned>(rng.range(3, 8));
        for (unsigned i = 0; i < ops; ++i) {
            switch (rng.below(6)) {
              case 0: {  // private store
                std::int64_t off =
                    static_cast<std::int64_t>(rng.below(64)) * 8;
                b.store(r_priv, r_acc, off);
                break;
              }
              case 1: {  // private load feeding the accumulator
                std::int64_t off =
                    static_cast<std::int64_t>(rng.below(64)) * 8;
                b.load(r_v, r_priv, off);
                b.alu(AluFn::kXor, r_acc, r_acc, r_v);
                break;
              }
              case 2: {  // shared read-only load
                std::int64_t off =
                    static_cast<std::int64_t>(rng.below(32)) * 8;
                b.load(r_v, r_shared, off);
                b.alu(AluFn::kAdd, r_acc, r_acc, r_v);
                break;
              }
              case 3: {  // atomic increment of a shared counter
                unsigned c = static_cast<unsigned>(
                    rng.below(p.numCounters));
                std::int64_t delta =
                    static_cast<std::int64_t>(rng.range(1, 5));
                b.movi(r_op, delta);
                b.fetchAdd(r_v, r_cnt,
                           r_op, static_cast<std::int64_t>(c) * 64);
                if (counter_increments)
                    (*counter_increments)[c] += delta * trips;
                break;
              }
              case 4: {  // ALU mix
                b.alu(rng.chance(1, 4) ? AluFn::kMul : AluFn::kAdd,
                      r_acc, r_acc, r_acc);
                b.addi(r_acc, r_acc,
                       static_cast<std::int64_t>(rng.below(97)) + 1);
                break;
              }
              case 5: {  // data-dependent forward branch
                Label skip = b.newLabel();
                b.alu(AluFn::kAnd, r_tmp, r_acc, r_op);
                b.branch(BranchCond::kEq, r_tmp,
                         ProgramBuilder::zero(), skip);
                b.addi(r_acc, r_acc, 13);
                std::int64_t off =
                    static_cast<std::int64_t>(rng.below(64)) * 8;
                b.store(r_priv, r_acc, off);
                b.bind(skip);
                break;
              }
            }
        }

        if (looped) {
            b.addi(r_loop, r_loop, -1);
            b.branch(BranchCond::kNe, r_loop, ProgramBuilder::zero(),
                     loop_head);
        }
    }
    // Publish the accumulator so runs are comparable end to end.
    b.store(r_priv, r_acc, 64 * 8);
    b.halt();
    return b.build();
}

} // namespace fa::wl
