#include "workloads/kernels.hh"

#include "common/log.hh"

namespace fa::wl {

using isa::AluFn;
using isa::BranchCond;
using isa::Label;
using isa::ProgramBuilder;
using isa::Reg;

void
emitStartBarrier(isa::ProgramBuilder &b, const BuildCtx &ctx)
{
    Reg r_bar = b.alloc();
    Reg r_n = b.alloc();
    Reg t0 = b.alloc();
    Reg t1 = b.alloc();
    Reg t2 = b.alloc();
    Reg t3 = b.alloc();
    b.movi(r_bar, static_cast<std::int64_t>(kBarrierBase));
    b.movi(r_n, ctx.numThreads);
    b.barrier(r_bar, r_n, t0, t1, t2, t3);
}

namespace {

/** Registers for the shared compute-body emitter. */
struct BodyRegs
{
    Reg acc = 0;   ///< dependent ALU accumulator
    Reg priv = 0;  ///< thread-private region base
    Reg off = 0;   ///< streaming offset within the region
    Reg taddr = 0; ///< scratch address
};

BodyRegs
allocBodyRegs(ProgramBuilder &b, const BuildCtx &ctx)
{
    BodyRegs r;
    r.acc = b.alloc();
    r.priv = b.alloc();
    r.off = b.alloc();
    r.taddr = b.alloc();
    b.movi(r.priv, static_cast<std::int64_t>(
        kPrivBase + ctx.threadId * kPrivStride));
    b.movi(r.taddr, 0x3fff8);
    return r;
}

/**
 * Compute body: a dependent ALU chain interleaved with private
 * loads/stores streaming over a 64KB region (so the SB sees realistic
 * miss traffic, as the real applications' compute phases do). Cost is
 * roughly `n` instructions with one memory access every eighth one.
 */
void
emitBody(ProgramBuilder &b, const BodyRegs &r, int n)
{
    for (int i = 0; i < n; ++i) {
        if (i % 4 == 3) {
            // Stream through the private region, wrapping at 256KB
            // (the L2 size, so the stream continually misses to L3
            // and the store buffer sees realistic drain pressure).
            b.addi(r.off, r.off, 8);
            b.alu(AluFn::kAnd, r.off, r.off, r.taddr);
            b.alu(AluFn::kAdd, r.taddr, r.priv, r.off);
            if (i % 8 == 7)
                b.load(r.acc, r.taddr);
            else
                b.store(r.taddr, r.acc);
            b.movi(r.taddr, 0x3fff8);
            i += 4;
        } else if (i % 7 == 6) {
            b.alu(AluFn::kMul, r.acc, r.acc, r.acc);
        } else {
            b.addi(r.acc, r.acc, i + 1);
        }
    }
}

/** Legacy pure-ALU chain (barriered phase kernels). */
void
emitCompute(ProgramBuilder &b, Reg acc, int n)
{
    for (int i = 0; i < n; ++i) {
        if (i % 7 == 6)
            b.alu(AluFn::kMul, acc, acc, acc);
        else
            b.addi(acc, acc, i + 1);
    }
}

/** Set `dst` to the address of node `idx_reg` in a 64B-entry table. */
void
emitNodeAddr(ProgramBuilder &b, Reg dst, Reg base, Reg idx_reg, Reg six)
{
    b.alu(AluFn::kShl, dst, idx_reg, six);
    b.alu(AluFn::kAdd, dst, dst, base);
}

} // namespace

isa::Program
computeKernel(const BuildCtx &ctx, const std::string &name,
              const ComputeKernelParams &p)
{
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_priv = b.alloc();
    Reg r_acc = b.alloc();
    Reg r_i = b.alloc();
    Reg r_tmp = b.alloc();
    b.movi(r_priv, static_cast<std::int64_t>(
        kPrivBase + ctx.threadId * kPrivStride));
    b.movi(r_i, ctx.iters(p.iters));

    Reg r_lockctr = 0;
    Reg r_lockbase = 0;
    Reg r_idx = 0;
    Reg r_addr = 0;
    Reg r_six = 0;
    Reg r_val = 0;
    if (p.lockEvery > 0) {
        r_lockctr = b.alloc();
        r_lockbase = b.alloc();
        r_idx = b.alloc();
        r_addr = b.alloc();
        r_six = b.alloc();
        r_val = b.alloc();
        b.movi(r_lockctr, p.lockEvery);
        b.movi(r_lockbase, static_cast<std::int64_t>(kLockBase));
        b.movi(r_six, 6);
    }

    Label loop = b.here();
    emitCompute(b, r_acc, p.aluPerIter);
    for (int j = 0; j < p.privOpsPerIter; ++j) {
        std::int64_t off = (j * 24) % 512;
        if (j % 2 == 0)
            b.load(r_tmp, r_priv, off);
        else
            b.store(r_priv, r_acc, off);
    }
    if (p.lockEvery > 0) {
        Label skip = b.newLabel();
        b.addi(r_lockctr, r_lockctr, -1);
        b.branch(BranchCond::kNe, r_lockctr, ProgramBuilder::zero(), skip);
        b.movi(r_lockctr, p.lockEvery);
        b.rand(r_idx, p.numLocks);
        emitNodeAddr(b, r_addr, r_lockbase, r_idx, r_six);
        b.lockAcquire(r_addr, r_tmp);
        b.load(r_val, r_addr, 8);
        b.addi(r_val, r_val, 1);
        b.store(r_addr, r_val, 8);
        // Spinlock-style release: a plain store. The next acquire's
        // load_lock can then forward from an ordinary store (the
        // paper's FbS case, §3.3.2).
        b.lockReleasePlain(r_addr);
        // Persistency-style publication fence (the explicit
        // store->load MFENCEs that remain in x86 binaries).
        b.mfence();
        b.bind(skip);
    }
    b.addi(r_i, r_i, -1);
    b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
    b.halt();
    return b.build();
}

isa::Program
phaseKernel(const BuildCtx &ctx, const std::string &name,
            const PhaseKernelParams &p)
{
    ProgramBuilder b(name);

    Reg r_bar = b.alloc();
    Reg r_n = b.alloc();
    Reg t0 = b.alloc();
    Reg t1 = b.alloc();
    Reg t2 = b.alloc();
    Reg t3 = b.alloc();
    b.movi(r_bar, static_cast<std::int64_t>(kBarrierBase));
    b.movi(r_n, ctx.numThreads);
    b.barrier(r_bar, r_n, t0, t1, t2, t3);

    Reg r_k = b.alloc();
    Reg r_bound = b.alloc();
    Reg r_addr = b.alloc();
    Reg r_val = b.alloc();
    Reg r_acc = b.alloc();
    Reg r_nth = b.alloc();
    Reg r_stride = b.alloc();
    Reg r_data = b.alloc();
    Reg r_three = b.alloc();
    b.movi(r_nth, ctx.numThreads);
    b.movi(r_stride, p.strideWords * kWordBytes);
    b.movi(r_data, static_cast<std::int64_t>(kDataBase));
    b.movi(r_three, 3);

    std::int64_t stores = ctx.iters(p.storesPerPhase);
    for (int phase = 0; phase < p.phases; ++phase) {
        b.movi(r_k, 0);
        b.movi(r_bound, stores);
        b.movi(t2, 15);
        b.movi(t3, static_cast<std::int64_t>(
            kPrivBase + ctx.threadId * kPrivStride + 0x80000));
        Label loop = b.here();
        // addr = data + (tid + k*threads) * stride
        b.alu(AluFn::kMul, r_addr, r_k, r_nth);
        b.addi(r_addr, r_addr, ctx.threadId);
        b.alu(AluFn::kMul, r_addr, r_addr, r_stride);
        b.alu(AluFn::kAdd, r_addr, r_addr, r_data);
        // value = tid*1000 + k*3 + phase*7 (checked by verify)
        b.alu(AluFn::kMul, r_val, r_k, r_three);
        b.addi(r_val, r_val, ctx.threadId * 1000 + phase * 7);
        b.store(r_addr, r_val);
        emitCompute(b, r_acc, p.computePerStore);
        // Every 16th element: atomically bump a per-thread progress
        // word; every 64th, rewrite it with a plain store right
        // before the fetch-add, whose load_lock then forwards from
        // an ordinary store — the paper's FbS case (§3.3.2),
        // concentrated in exactly these store-heavy applications
        // (Table 2).
        Label no_tick = b.newLabel();
        Label no_store = b.newLabel();
        b.alu(AluFn::kAnd, t1, r_k, t2);
        b.branch(BranchCond::kNe, t1, ProgramBuilder::zero(), no_tick);
        b.movi(t1, 63);
        b.alu(AluFn::kAnd, t1, r_k, t1);
        b.branch(BranchCond::kNe, t1, ProgramBuilder::zero(), no_store);
        b.store(t3, r_k);
        b.bind(no_store);
        b.movi(t1, 1);
        b.fetchAdd(t0, t3, t1);
        b.bind(no_tick);
        b.addi(r_k, r_k, 1);
        b.branch(BranchCond::kLt, r_k, r_bound, loop);
        b.barrier(r_bar, r_n, t0, t1, t2, t3);
    }
    b.halt();
    return b.build();
}

isa::Program
taskQueueKernel(const BuildCtx &ctx, const std::string &name,
                const TaskQueueKernelParams &p)
{
    // Work distribution through an atomic ticket counter, the
    // standard lock-free task-queue head the real applications'
    // schedulers converge to.
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_cnt = b.alloc();
    Reg r_total = b.alloc();
    Reg r_one = b.alloc();
    Reg r_t = b.alloc();
    BodyRegs body = allocBodyRegs(b, ctx);
    b.movi(r_cnt, static_cast<std::int64_t>(kDataBase));
    b.movi(r_one, 1);
    b.movi(r_total,
           ctx.iters(p.tasksPerThread) *
               static_cast<std::int64_t>(ctx.numThreads));

    Label loop = b.here();
    Label out = b.newLabel();
    b.fetchAdd(r_t, r_cnt, r_one);
    b.branch(BranchCond::kGe, r_t, r_total, out);
    emitBody(b, body, p.computePerTask);
    b.jump(loop);
    b.bind(out);
    b.halt();
    return b.build();
}

int
effectiveNodes(const NodeLockKernelParams &p, unsigned threads)
{
    int scaled = static_cast<int>(p.nodesPerThread * threads + 0.5);
    return scaled > p.numNodes ? scaled : p.numNodes;
}

isa::Program
nodeLockKernel(const BuildCtx &ctx, const std::string &name,
               const NodeLockKernelParams &p)
{
    if (p.fieldsPerUpdate > 5)
        fatal("nodeLockKernel: at most 5 fields fit a node line");
    int num_nodes = effectiveNodes(p, ctx.numThreads);
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_i = b.alloc();
    Reg r_idx = b.alloc();
    Reg r_addr = b.alloc();
    Reg r_tmp = b.alloc();
    Reg r_val = b.alloc();
    Reg r_data = b.alloc();
    Reg r_six = b.alloc();
    Reg r_table = b.alloc();
    Reg r_r = b.alloc();
    Reg r_fctr = b.alloc();
    BodyRegs body = allocBodyRegs(b, ctx);
    b.movi(r_i, ctx.iters(p.iters));
    b.movi(r_data, static_cast<std::int64_t>(kDataBase));
    b.movi(r_six, 6);
    b.movi(r_table, static_cast<std::int64_t>(kIndirBase));
    b.movi(r_fctr, 16);

    Reg r_three = b.alloc();
    b.movi(r_three, 3);

    Label loop = b.here();
    // Node selection goes through an indirection table, as the real
    // applications' pointer-based trees do. Remapping a slot below
    // gives the table genuine read-write sharing.
    b.rand(r_r, num_nodes);
    b.alu(AluFn::kShl, r_tmp, r_r, r_three);
    b.alu(AluFn::kAdd, r_tmp, r_tmp, r_table);
    b.load(r_idx, r_tmp);            // idx = table[r]
    emitNodeAddr(b, r_addr, r_data, r_idx, r_six);
    b.lockAcquire(r_addr, r_tmp);
    for (int f = 0; f < p.fieldsPerUpdate; ++f) {
        b.load(r_val, r_addr, 16 + 8 * f);
        b.addi(r_val, r_val, 1);
        b.store(r_addr, r_val, 16 + 8 * f);
    }
    b.load(r_val, r_addr, 8);
    b.addi(r_val, r_val, 1);
    b.store(r_addr, r_val, 8);
    b.lockRelease(r_addr, r_tmp);
    // Every 16th iteration: remap a table slot through the just
    // loaded index (a store whose address resolves late, off a
    // load) and publish it with a fence — the paper's remaining
    // explicit-fence and memory-dependence-violation sources.
    Label no_remap = b.newLabel();
    b.addi(r_fctr, r_fctr, -1);
    b.branch(BranchCond::kNe, r_fctr, ProgramBuilder::zero(),
             no_remap);
    b.movi(r_fctr, 16);
    b.alu(AluFn::kShl, r_tmp, r_idx, r_three);
    b.alu(AluFn::kAdd, r_tmp, r_tmp, r_table);
    b.store(r_tmp, r_r);             // table[idx] = r (valid index)
    b.mfence();
    b.bind(no_remap);
    emitBody(b, body, p.computeBetween);
    b.addi(r_i, r_i, -1);
    b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
    b.halt();
    return b.build();
}

isa::Program
multiLockKernel(const BuildCtx &ctx, const std::string &name,
                const MultiLockKernelParams &p)
{
    if (p.swap && (p.minLocks != 2 || p.maxLocks != 2))
        fatal("multiLockKernel: swap mode requires exactly 2 locks");
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_i = b.alloc();
    Reg r_k = b.alloc();
    Reg r_base = b.alloc();
    Reg r_j = b.alloc();
    Reg r_addr = b.alloc();
    Reg r_tmp = b.alloc();
    Reg r_val = b.alloc();
    Reg r_val2 = b.alloc();
    Reg r_data = b.alloc();
    Reg r_six = b.alloc();
    Reg r_idx = b.alloc();
    Reg r_localcnt = b.alloc();
    BodyRegs body = allocBodyRegs(b, ctx);
    b.movi(r_i, ctx.iters(p.iters));
    b.movi(r_data, static_cast<std::int64_t>(kDataBase));
    b.movi(r_six, 6);
    b.movi(r_localcnt, 0);

    Label loop = b.here();
    b.rand(r_k, p.maxLocks - p.minLocks + 1);
    b.addi(r_k, r_k, p.minLocks);
    b.rand(r_base, p.numEntries - p.maxLocks);

    // Acquire locks base .. base+k-1 in ascending order (software
    // deadlock avoidance; the hardware-level Free-atomics deadlocks
    // arise regardless, from speculation).
    b.movi(r_j, 0);
    Label acq = b.here();
    b.alu(AluFn::kAdd, r_idx, r_base, r_j);
    emitNodeAddr(b, r_addr, r_data, r_idx, r_six);
    b.lockAcquire(r_addr, r_tmp);
    b.addi(r_j, r_j, 1);
    b.branch(BranchCond::kLt, r_j, r_k, acq);

    if (p.swap) {
        emitNodeAddr(b, r_addr, r_data, r_base, r_six);
        b.load(r_val, r_addr, 8);
        b.load(r_val2, r_addr, 64 + 8);
        b.store(r_addr, r_val2, 8);
        b.store(r_addr, r_val, 64 + 8);
    } else {
        b.movi(r_j, 0);
        Label upd = b.here();
        b.alu(AluFn::kAdd, r_idx, r_base, r_j);
        emitNodeAddr(b, r_addr, r_data, r_idx, r_six);
        b.load(r_val, r_addr, 8);
        b.addi(r_val, r_val, 1);
        b.store(r_addr, r_val, 8);
        b.addi(r_localcnt, r_localcnt, 1);
        b.addi(r_j, r_j, 1);
        b.branch(BranchCond::kLt, r_j, r_k, upd);
    }

    emitBody(b, body, p.computePerIter);

    // Release in reverse order.
    Label rel = b.here();
    b.addi(r_j, r_j, -1);
    b.alu(AluFn::kAdd, r_idx, r_base, r_j);
    emitNodeAddr(b, r_addr, r_data, r_idx, r_six);
    b.lockRelease(r_addr, r_tmp);
    b.branch(BranchCond::kNe, r_j, ProgramBuilder::zero(), rel);

    b.addi(r_i, r_i, -1);
    b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
    if (!p.swap) {
        // Publish this thread's update count so verify can compare
        // the sum of entry counters against the global checksum.
        b.movi(r_addr, static_cast<std::int64_t>(kResultBase));
        b.fetchAdd(r_tmp, r_addr, r_localcnt);
    }
    b.halt();
    return b.build();
}

isa::Program
swapKernel(const BuildCtx &ctx, const std::string &name,
           const SwapKernelParams &p)
{
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_i = b.alloc();
    Reg r_a = b.alloc();
    Reg r_bx = b.alloc();
    Reg r_va = b.alloc();
    Reg r_vb = b.alloc();
    Reg r_data = b.alloc();
    Reg r_three = b.alloc();
    BodyRegs body = allocBodyRegs(b, ctx);
    b.movi(r_i, ctx.iters(p.iters));
    b.movi(r_data, static_cast<std::int64_t>(kDataBase));
    b.movi(r_three, 3);

    Label loop = b.here();
    b.rand(r_a, p.numElems);
    b.rand(r_bx, p.numElems);
    // a = data + a*8 ; b = data + b*8
    b.alu(AluFn::kShl, r_a, r_a, r_three);
    b.alu(AluFn::kAdd, r_a, r_a, r_data);
    b.alu(AluFn::kShl, r_bx, r_bx, r_three);
    b.alu(AluFn::kAdd, r_bx, r_bx, r_data);
    // Racy element swap via two atomic exchanges (canneal-style).
    b.load(r_va, r_a);
    b.exchange(r_vb, r_bx, r_va);
    b.exchange(r_va, r_a, r_vb);
    emitBody(b, body, p.computeBetween);
    b.addi(r_i, r_i, -1);
    b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
    b.halt();
    return b.build();
}

isa::Program
queueKernel(const BuildCtx &ctx, const std::string &name,
            const QueueKernelParams &p)
{
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_i = b.alloc();
    Reg r_t = b.alloc();
    Reg r_addr = b.alloc();
    BodyRegs body = allocBodyRegs(b, ctx);
    Reg r_tailp = b.alloc();
    Reg r_headp = b.alloc();
    Reg r_slots = b.alloc();
    Reg r_one = b.alloc();
    Reg r_mask = b.alloc();
    Reg r_three = b.alloc();
    // tail at kDataBase, head at kDataBase+64, slots from +128.
    b.movi(r_i, ctx.iters(p.opsPerThread));
    b.movi(r_tailp, static_cast<std::int64_t>(kDataBase));
    b.movi(r_headp, static_cast<std::int64_t>(kDataBase + 64));
    b.movi(r_slots, static_cast<std::int64_t>(kDataBase + 128));
    b.movi(r_one, 1);
    b.movi(r_mask, p.slots - 1);
    b.movi(r_three, 3);

    Label loop = b.here();
    // enqueue: slot[tail++ % slots] = ticket
    b.fetchAdd(r_t, r_tailp, r_one);
    b.alu(AluFn::kAnd, r_addr, r_t, r_mask);
    b.alu(AluFn::kShl, r_addr, r_addr, r_three);
    b.alu(AluFn::kAdd, r_addr, r_addr, r_slots);
    b.store(r_addr, r_t);
    emitBody(b, body, p.computeBetween);
    // dequeue: read slot[head++ % slots]
    b.fetchAdd(r_t, r_headp, r_one);
    b.alu(AluFn::kAnd, r_addr, r_t, r_mask);
    b.alu(AluFn::kShl, r_addr, r_addr, r_three);
    b.alu(AluFn::kAdd, r_addr, r_addr, r_slots);
    b.load(r_t, r_addr);
    b.addi(r_i, r_i, -1);
    b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
    b.halt();
    return b.build();
}

isa::Program
treeKernel(const BuildCtx &ctx, const std::string &name,
           const TreeKernelParams &p)
{
    ProgramBuilder b(name);
    emitStartBarrier(b, ctx);

    Reg r_i = b.alloc();
    Reg r_p = b.alloc();
    Reg r_addr = b.alloc();
    Reg r_tmp = b.alloc();
    BodyRegs body = allocBodyRegs(b, ctx);
    Reg r_lock = b.alloc();
    Reg r_nodes = b.alloc();
    Reg r_mask = b.alloc();
    Reg r_three = b.alloc();
    Reg r_cnt = b.alloc();
    // Global lock at kLockBase; nodes from kDataBase (8B each);
    // a lock-protected counter at kDataBase - 64.
    b.movi(r_i, ctx.iters(p.iters));
    b.movi(r_lock, static_cast<std::int64_t>(kLockBase));
    b.movi(r_nodes, static_cast<std::int64_t>(kDataBase));
    b.movi(r_cnt, static_cast<std::int64_t>(kDataBase - 64));
    b.movi(r_mask, p.numNodes - 1);
    b.movi(r_three, 3);

    Label loop = b.here();
    b.rand(r_p, p.numNodes);
    b.lockAcquire(r_lock, r_tmp);
    for (int s = 0; s < p.chaseSteps; ++s) {
        b.alu(AluFn::kAnd, r_p, r_p, r_mask);
        b.alu(AluFn::kShl, r_addr, r_p, r_three);
        b.alu(AluFn::kAdd, r_addr, r_addr, r_nodes);
        b.load(r_p, r_addr);
    }
    b.load(r_tmp, r_cnt);
    b.addi(r_tmp, r_tmp, 1);
    b.store(r_cnt, r_tmp);
    b.lockRelease(r_lock, r_tmp);
    emitBody(b, body, p.computeBetween);
    b.addi(r_i, r_i, -1);
    b.branch(BranchCond::kNe, r_i, ProgramBuilder::zero(), loop);
    b.halt();
    return b.build();
}

} // namespace fa::wl
