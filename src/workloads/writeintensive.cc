/**
 * @file
 * The write-intensive suite [20, 30] whose hotspot loops the paper
 * describes in §5.5:
 *   TATP  - one of many row locks per transaction (low contention)
 *   PC    - one of a few hot locks per iteration (high contention)
 *   TPCC  - a randomized list of 5..15 locks per transaction
 *   AS    - lock two random entries and swap their values
 *   CQ    - concurrent queue on fetch-add tickets
 *   RBT   - coarse global lock around a short tree walk
 */

#include "workloads/suites.hh"

#include "workloads/kernels.hh"
#include "workloads/verify_util.hh"

namespace fa::wl {

namespace {

Workload
makeNodeLockWi(const std::string &name, NodeLockKernelParams p)
{
    Workload w;
    w.name = name;
    w.origin = "write-intensive";
    w.atomicIntensive = true;
    w.build = [name, p](const BuildCtx &ctx) {
        return nodeLockKernel(ctx, name, p);
    };
    w.init = [p](unsigned nthreads, double) {
        sim::MemInit init;
        int nodes = effectiveNodes(p, nthreads);
        for (int e = 0; e < nodes; ++e)
            init.emplace_back(kIndirBase + e * 8, e);
        return init;
    };
    w.verify = [p](const sim::System &sys, unsigned nthreads,
                   double scale) {
        BuildCtx c;
        c.scale = scale;
        int nodes = effectiveNodes(p, nthreads);
        std::int64_t want = c.iters(p.iters) * nthreads;
        std::string err = expectEq(
            "row counter sum",
            sumWords(sys, kDataBase + 8, nodes, 64), want);
        if (!err.empty())
            return err;
        for (int f = 0; f < p.fieldsPerUpdate; ++f) {
            err = expectEq(
                "row field sum",
                sumWords(sys, kDataBase + 16 + 8 * f, nodes, 64),
                want);
            if (!err.empty())
                return err;
        }
        return std::string();
    };
    return w;
}

} // namespace

std::vector<Workload>
writeIntensiveWorkloads()
{
    std::vector<Workload> v;

    v.push_back(makeNodeLockWi("TATP",
        {.iters = 32, .numNodes = 128, .fieldsPerUpdate = 3,
         .computeBetween = 1600, .nodesPerThread = 4.0}));
    v.push_back(makeNodeLockWi("PC",
        {.iters = 32, .numNodes = 12, .fieldsPerUpdate = 1,
         .computeBetween = 1500, .nodesPerThread = 0.75}));

    // TPCC: acquire 5..15 locks in ascending order, update the rows,
    // compute, release (§5.5).
    {
        Workload w;
        w.name = "TPCC";
        w.origin = "write-intensive";
        w.atomicIntensive = true;
        MultiLockKernelParams p{.iters = 4, .numEntries = 64,
                                .minLocks = 5, .maxLocks = 15,
                                .swap = false, .computePerIter = 1200};
        w.build = [p](const BuildCtx &ctx) {
            return multiLockKernel(ctx, "TPCC", p);
        };
        w.verify = [p](const sim::System &sys, unsigned, double) {
            std::int64_t got =
                sumWords(sys, kDataBase + 8, p.numEntries, 64);
            return expectEq("entry update sum", got,
                            sys.readWord(kResultBase));
        };
        v.push_back(std::move(w));
    }

    // AS: lock two random entries, swap their values (§5.5).
    {
        Workload w;
        w.name = "AS";
        w.origin = "write-intensive";
        w.atomicIntensive = true;
        MultiLockKernelParams p{.iters = 12, .numEntries = 64,
                                .minLocks = 2, .maxLocks = 2,
                                .swap = true, .computePerIter = 3000};
        w.build = [p](const BuildCtx &ctx) {
            return multiLockKernel(ctx, "AS", p);
        };
        w.init = [p](unsigned, double) {
            sim::MemInit init;
            for (int e = 0; e < p.numEntries; ++e)
                init.emplace_back(kDataBase + e * 64 + 8, e + 1);
            return init;
        };
        w.verify = [p](const sim::System &sys, unsigned, double) {
            // Swaps permute the values: both the sum and the sum of
            // squares must be conserved.
            std::int64_t sum = 0;
            std::int64_t sq = 0;
            for (int e = 0; e < p.numEntries; ++e) {
                std::int64_t x = sys.readWord(kDataBase + e * 64 + 8);
                sum += x;
                sq += x * x;
            }
            std::int64_t n = p.numEntries;
            std::int64_t want_sum = n * (n + 1) / 2;
            std::int64_t want_sq = n * (n + 1) * (2 * n + 1) / 6;
            std::string err =
                expectEq("swap value sum", sum, want_sum);
            if (!err.empty())
                return err;
            return expectEq("swap value square sum", sq, want_sq);
        };
        v.push_back(std::move(w));
    }

    // CQ: concurrent queue with fetch-add head/tail tickets.
    {
        Workload w;
        w.name = "CQ";
        w.origin = "write-intensive";
        w.atomicIntensive = true;
        QueueKernelParams p{.opsPerThread = 24, .slots = 64,
                            .computeBetween = 1400};
        w.build = [p](const BuildCtx &ctx) {
            return queueKernel(ctx, "CQ", p);
        };
        w.verify = [p](const sim::System &sys, unsigned nthreads,
                       double scale) {
            BuildCtx c;
            c.scale = scale;
            std::int64_t want = c.iters(p.opsPerThread) * nthreads;
            std::string err =
                expectEq("tail ticket", sys.readWord(kDataBase), want);
            if (!err.empty())
                return err;
            return expectEq("head ticket", sys.readWord(kDataBase + 64),
                            want);
        };
        v.push_back(std::move(w));
    }

    // RBT: coarse global lock around a short pointer chase.
    {
        Workload w;
        w.name = "RBT";
        w.origin = "write-intensive";
        w.atomicIntensive = true;
        TreeKernelParams p{.iters = 48, .numNodes = 128,
                           .chaseSteps = 3, .computeBetween = 500};
        w.build = [p](const BuildCtx &ctx) {
            return treeKernel(ctx, "RBT", p);
        };
        w.init = [p](unsigned, double) {
            sim::MemInit init;
            for (int e = 0; e < p.numNodes; ++e)
                init.emplace_back(kDataBase + e * 8,
                                  (e * 7 + 3) % p.numNodes);
            return init;
        };
        w.verify = [p](const sim::System &sys, unsigned nthreads,
                       double scale) {
            BuildCtx c;
            c.scale = scale;
            std::int64_t want = c.iters(p.iters) * nthreads;
            return expectEq("tree op counter",
                            sys.readWord(kDataBase - 64), want);
        };
        v.push_back(std::move(w));
    }

    return v;
}

} // namespace fa::wl
