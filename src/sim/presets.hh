/**
 * @file
 * Named machine presets and a fluent MachineConfig builder.
 *
 * Before this header every tool (fasim, falint, mc/diff) carried its
 * own copy of the name → MachineConfig switch and every bench
 * harness poked MachineConfig fields by hand. presets::byName is the
 * single parse point, presets::paper*() name the paper's evaluated
 * machines, and MachineBuilder chains the common per-experiment
 * knobs (mode, structure sizes, observability sinks, chaos) without
 * exposing field-assignment soup at every call site.
 */

#ifndef FA_SIM_PRESETS_HH
#define FA_SIM_PRESETS_HH

#include <string>

#include "sim/config.hh"

namespace fa::sim {

namespace presets {

/** The paper's evaluated system (Table 1): Icelake-like, 352 ROB. */
MachineConfig paperIcelake(unsigned cores = 32);

/** Figure 1's second machine: Skylake-like, 224 ROB. */
MachineConfig paperSkylake(unsigned cores = 32);

/** Rajaram et al.'s machine for the ROB ablation: 168 ROB. */
MachineConfig paperSandybridge(unsigned cores = 32);

/** Small caches / short latencies for tests and model checking. */
MachineConfig tiny(unsigned cores = 4);

/** Parse "icelake|skylake|sandybridge|tiny" (FatalError otherwise).
 * Replaces the parseMachine copies the tools used to carry. */
MachineConfig byName(const std::string &name, unsigned cores);

/** Accepted preset names, pipe-separated (usage text). */
const char *names();

} // namespace presets

/**
 * Fluent MachineConfig builder.
 *
 * @code
 *   auto machine = sim::MachineBuilder(sim::presets::paperIcelake(8))
 *                      .mode(core::AtomicsMode::kFreeFwd)
 *                      .fwdChainCap(8)
 *                      .recordMemTrace(true)
 *                      .build();
 * @endcode
 */
class MachineBuilder
{
  public:
    explicit MachineBuilder(MachineConfig base) : cfg(std::move(base)) {}

    /** Start from a named preset (presets::byName). */
    static MachineBuilder
    preset(const std::string &name, unsigned cores)
    {
        return MachineBuilder(presets::byName(name, cores));
    }

    MachineBuilder &cores(unsigned n) { cfg.cores = n; return *this; }
    MachineBuilder &
    mode(core::AtomicsMode m)
    {
        cfg.core.mode = m;
        return *this;
    }

    // Structure-size knobs the ablations sweep.
    MachineBuilder &robSize(unsigned n) { cfg.core.robSize = n; return *this; }
    MachineBuilder &aqSize(unsigned n) { cfg.core.aqSize = n; return *this; }
    MachineBuilder &
    fwdChainCap(unsigned n)
    {
        cfg.core.fwdChainCap = n;
        return *this;
    }
    MachineBuilder &
    watchdogThreshold(unsigned n)
    {
        cfg.core.watchdogThreshold = n;
        return *this;
    }
    MachineBuilder &
    storePrefetch(bool on)
    {
        cfg.core.storePrefetch = on;
        return *this;
    }

    // Observability / checking sinks.
    MachineBuilder &
    recordMemTrace(bool on)
    {
        cfg.recordMemTrace = on;
        return *this;
    }
    MachineBuilder &sanitize(bool on) { cfg.sanitize = on; return *this; }
    /** Dump the recorded streams as fa-mem-trace-v1 at end of run
     * (empty path disables; implies trace recording). */
    MachineBuilder &
    memTrace(std::string path, std::string label)
    {
        cfg.memTracePath = std::move(path);
        cfg.memTraceLabel = std::move(label);
        return *this;
    }
    MachineBuilder &
    watchdogForensics(bool on)
    {
        cfg.watchdogForensics = on;
        return *this;
    }
    MachineBuilder &
    pipeview(std::string path)
    {
        cfg.pipeviewPath = std::move(path);
        return *this;
    }
    MachineBuilder &
    intervalStats(std::string path, Cycle period)
    {
        cfg.intervalStatsPath = std::move(path);
        cfg.intervalPeriod = period;
        return *this;
    }
    MachineBuilder &
    progressWindow(Cycle w)
    {
        cfg.progressWindow = w;
        return *this;
    }
    MachineBuilder &
    traceSpans(std::string path)
    {
        cfg.traceSpansPath = std::move(path);
        return *this;
    }
    MachineBuilder &
    hostProfile(bool on, Cycle period = 64)
    {
        cfg.hostProfile = on;
        cfg.profilePeriod = period;
        return *this;
    }

    /** Arm a named chaos profile ("" leaves chaos off). */
    MachineBuilder &chaosProfile(const std::string &profile,
                                 std::uint64_t seed);

    MachineConfig build() const { return cfg; }

  private:
    MachineConfig cfg;
};

} // namespace fa::sim

#endif // FA_SIM_PRESETS_HH
