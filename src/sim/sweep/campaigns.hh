/**
 * @file
 * Experiment campaigns: the paper's figures, tables and ablations
 * expressed as sweep-job lists plus table renderers, so `fabench`
 * can run any of them across the worker pool.
 *
 * A campaign is (a) a pure function from the campaign config to a
 * job list — workload × machine × mode × seed cells — and (b) a
 * renderer that reduces the finished SweepReport to the same table
 * the standalone bench harness prints. Because job lists are built
 * up front and results land in job-order slots, a campaign's output
 * is identical at any --threads value.
 */

#ifndef FA_SIM_SWEEP_CAMPAIGNS_HH
#define FA_SIM_SWEEP_CAMPAIGNS_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/sweep/sweep.hh"

namespace fa::sim::sweep {

/** Shared knobs of every campaign (fabench flags, with the legacy
 * FA_* env vars as documented fallbacks). */
struct CampaignCfg
{
    unsigned cores = 32;
    double scale = 0.5;
    unsigned seeds = 1;
    bool csv = false;

    /** Generic-sweep selections (the "sweep" campaign only). Empty
     * means the campaign default. */
    std::vector<std::string> workloads;
    std::vector<std::string> modes;
    std::vector<std::string> machines;
};

struct Campaign
{
    std::string name;     ///< subcommand ("fig1", "ablation-rob", ...)
    std::string title;    ///< banner line
    std::function<std::vector<SweepJob>(const CampaignCfg &)> jobs;
    std::function<void(const CampaignCfg &, const SweepReport &,
                       std::ostream &)> render;
};

/** All registered campaigns, in README order. */
const std::vector<Campaign> &campaigns();

/** Find by subcommand name; nullptr when unknown. */
const Campaign *findCampaign(const std::string &name);

/** Names for usage text, space-separated. */
std::string campaignNames();

} // namespace fa::sim::sweep

#endif // FA_SIM_SWEEP_CAMPAIGNS_HH
