/**
 * @file
 * Fixed-size host-thread worker pool with per-worker work-stealing
 * deques.
 *
 * Jobs are indices [0, njobs): the pool deals them round-robin into
 * per-worker deques at submission time (a deterministic placement),
 * each worker pops from the front of its own deque, and an idle
 * worker steals from the *back* of a victim's deque. Stealing from
 * the opposite end keeps owner pops and thief steals off the same
 * elements most of the time and preserves rough submission order per
 * worker.
 *
 * Determinism: the pool itself guarantees nothing about *execution
 * order* — only that every index runs exactly once. Callers get
 * bit-identical results at any thread count by making each job a
 * pure function of its index (own RNG seed derived from the index,
 * results written to a caller-owned slot per index, no shared
 * mutable state). Every sweep/soak/model-check driver in this repo
 * follows that rule, which is what the 1/4/8-thread determinism test
 * asserts.
 *
 * With threads == 1 jobs run inline on the calling thread (no worker
 * threads are spawned), so a serial run is exactly the old serial
 * code path.
 */

#ifndef FA_SIM_SWEEP_POOL_HH
#define FA_SIM_SWEEP_POOL_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace fa::sim::sweep {

/** One worker's deque. A plain mutex-guarded deque: jobs here are
 * whole simulations (milliseconds to minutes), so queue operations
 * are nowhere near the critical path and a lock-free Chase–Lev
 * structure would buy nothing but risk. */
class WorkDeque
{
  public:
    void push(std::size_t job);
    /** Owner takes from the front; false when empty. */
    bool popFront(std::size_t *job);
    /** Thief takes from the back; false when empty. */
    bool stealBack(std::size_t *job);
    std::size_t size() const;

  private:
    mutable std::mutex mu;
    std::deque<std::size_t> jobs;
};

/** Per-job completion record from Pool::runCollect. */
struct JobStatus
{
    enum class State : std::uint8_t {
        kDone,     ///< fn returned normally
        kFailed,   ///< fn threw; `error` carries the text
        kSkipped,  ///< never dispatched (cancellation requested)
    };

    State state = State::kSkipped;
    std::string error;

    bool done() const { return state == State::kDone; }
    bool failed() const { return state == State::kFailed; }
    bool skipped() const { return state == State::kSkipped; }
};

/**
 * The pool. Construct with a thread count (0 = hardware
 * concurrency), then call run() as many times as needed; worker
 * threads live only for the duration of one run() call, so a Pool is
 * cheap to create and carries no background threads between sweeps.
 */
class Pool
{
  public:
    explicit Pool(unsigned threads = 1);

    unsigned threads() const { return nthreads; }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

    /**
     * Run fn(i) for every i in [0, njobs); blocks until all jobs
     * finished. fn must be safe to call concurrently for distinct i.
     * If any job throws (FatalError included), the first exception
     * (lowest job index) is rethrown after every remaining job has
     * run — jobs are independent, so one failure doesn't silently
     * skip the rest.
     */
    void run(std::size_t njobs,
             const std::function<void(std::size_t)> &fn) const;

    /**
     * Structured-failure variant of run(): every job's exception is
     * captured into its own JobStatus slot instead of being
     * rethrown, so one poisoned job can never discard the completed
     * work of the others (the campaign-resilience contract). When
     * `stop` is non-null, a non-zero value makes workers stop
     * *dispatching*: in-flight jobs drain normally, undispatched
     * jobs come back kSkipped — the graceful-shutdown path for
     * SIGINT/SIGTERM.
     */
    std::vector<JobStatus> runCollect(
        std::size_t njobs, const std::function<void(std::size_t)> &fn,
        const std::atomic<int> *stop = nullptr) const;

  private:
    unsigned nthreads;
};

} // namespace fa::sim::sweep

#endif // FA_SIM_SWEEP_POOL_HH
