#include "sim/sweep/pool.hh"

#include <algorithm>
#include <exception>
#include <limits>
#include <thread>

#include "common/log.hh"

namespace fa::sim::sweep {

void
WorkDeque::push(std::size_t job)
{
    std::lock_guard<std::mutex> lock(mu);
    jobs.push_back(job);
}

bool
WorkDeque::popFront(std::size_t *job)
{
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty())
        return false;
    *job = jobs.front();
    jobs.pop_front();
    return true;
}

bool
WorkDeque::stealBack(std::size_t *job)
{
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty())
        return false;
    *job = jobs.back();
    jobs.pop_back();
    return true;
}

std::size_t
WorkDeque::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return jobs.size();
}

Pool::Pool(unsigned threads)
    : nthreads(threads == 0 ? hardwareThreads() : threads)
{}

unsigned
Pool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
Pool::run(std::size_t njobs,
          const std::function<void(std::size_t)> &fn) const
{
    if (njobs == 0)
        return;

    // First-failure capture, ordered by job index so reruns at a
    // different thread count report the same error.
    std::mutex errMu;
    std::exception_ptr firstError;
    std::size_t firstErrorJob = std::numeric_limits<std::size_t>::max();
    auto guarded = [&](std::size_t job) {
        try {
            fn(job);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errMu);
            if (job < firstErrorJob) {
                firstErrorJob = job;
                firstError = std::current_exception();
            }
        }
    };

    if (nthreads == 1 || njobs == 1) {
        for (std::size_t i = 0; i < njobs; ++i)
            guarded(i);
        if (firstError)
            std::rethrow_exception(firstError);
        return;
    }

    unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(nthreads, njobs));
    std::vector<WorkDeque> deques(workers);
    for (std::size_t i = 0; i < njobs; ++i)
        deques[i % workers].push(i);

    auto workerMain = [&](unsigned self) {
        std::size_t job;
        for (;;) {
            if (deques[self].popFront(&job)) {
                guarded(job);
                continue;
            }
            // Own deque empty: steal from the back of the first
            // victim that has work, scanning from the next worker.
            bool stole = false;
            for (unsigned k = 1; k < workers && !stole; ++k) {
                unsigned victim = (self + k) % workers;
                stole = deques[victim].stealBack(&job);
            }
            if (!stole)
                return;  // all deques empty: sweep done
            guarded(job);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(workerMain, w);
    for (std::thread &t : threads)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

std::vector<JobStatus>
Pool::runCollect(std::size_t njobs,
                 const std::function<void(std::size_t)> &fn,
                 const std::atomic<int> *stop) const
{
    std::vector<JobStatus> statuses(njobs);
    if (njobs == 0)
        return statuses;

    auto stopping = [&] {
        return stop != nullptr &&
            stop->load(std::memory_order_relaxed) != 0;
    };
    auto guarded = [&](std::size_t job) {
        try {
            fn(job);
            statuses[job].state = JobStatus::State::kDone;
        } catch (const FatalError &e) {
            statuses[job].state = JobStatus::State::kFailed;
            statuses[job].error = e.message;
        } catch (const std::exception &e) {
            statuses[job].state = JobStatus::State::kFailed;
            statuses[job].error = e.what();
        } catch (...) {
            statuses[job].state = JobStatus::State::kFailed;
            statuses[job].error = "unknown exception";
        }
    };

    if (nthreads == 1 || njobs == 1) {
        for (std::size_t i = 0; i < njobs && !stopping(); ++i)
            guarded(i);
        return statuses;
    }

    unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(nthreads, njobs));
    std::vector<WorkDeque> deques(workers);
    for (std::size_t i = 0; i < njobs; ++i)
        deques[i % workers].push(i);

    auto workerMain = [&](unsigned self) {
        std::size_t job;
        while (!stopping()) {
            if (deques[self].popFront(&job)) {
                guarded(job);
                continue;
            }
            bool stole = false;
            for (unsigned k = 1; k < workers && !stole; ++k) {
                unsigned victim = (self + k) % workers;
                stole = deques[victim].stealBack(&job);
            }
            if (!stole)
                return;
            guarded(job);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(workerMain, w);
    for (std::thread &t : threads)
        t.join();
    return statuses;
}

} // namespace fa::sim::sweep
