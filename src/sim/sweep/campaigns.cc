#include "sim/sweep/campaigns.hh"

#include "common/log.hh"
#include "common/table.hh"
#include "sim/presets.hh"
#include "workloads/workload.hh"

namespace fa::sim::sweep {

namespace {

constexpr core::AtomicsMode kAllModes[] = {
    core::AtomicsMode::kFenced,
    core::AtomicsMode::kSpec,
    core::AtomicsMode::kFree,
    core::AtomicsMode::kFreeFwd,
};

/** Job factory for one (workload, machine, mode) cell across the
 * campaign's seeds. */
void
pushCell(std::vector<SweepJob> &jobs, const CampaignCfg &cfg,
         const std::string &bench, const std::string &workload,
         const std::string &label, const MachineConfig &machine,
         core::AtomicsMode mode)
{
    for (unsigned s = 0; s < cfg.seeds; ++s) {
        SweepJob j;
        j.bench = bench;
        j.workload = workload;
        j.label = label;
        j.machine = machine;
        j.mode = mode;
        j.cores = cfg.cores;
        j.scale = cfg.scale;
        j.seedIndex = s;
        j.seed = deriveSeed(s);
        jobs.push_back(std::move(j));
    }
}

void
banner(const CampaignCfg &cfg, const std::string &title,
       std::ostream &os)
{
    os << "== " << title << " ==\n"
       << "(cores=" << cfg.cores << " scale=" << cfg.scale
       << " seeds=" << cfg.seeds << ")\n";
}

void
emit(const CampaignCfg &cfg, const TablePrinter &t, std::ostream &os)
{
    if (cfg.csv)
        t.printCsv(os);
    else
        t.print(os);
}

/** Failed jobs never abort a campaign; surface them after the table
 * exactly once (workers stay silent). */
void
reportFailures(const SweepReport &report, std::ostream &os)
{
    for (const SweepOutcome &o : report.outcomes) {
        if (!o.run.finished) {
            os << "warn: " << o.job.workload << " [" << o.job.label
               << "] seed " << o.job.seed << ": " << o.run.failure
               << "\n";
        }
    }
}

// --- fig1: cost of fenced atomic RMWs (Skylake vs Icelake) ------------

std::vector<SweepJob>
fig1Jobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    for (const auto &w : wl::allWorkloads()) {
        pushCell(jobs, cfg, "fig1", w.name, "skylake",
                 presets::paperSkylake(cfg.cores),
                 core::AtomicsMode::kFenced);
        pushCell(jobs, cfg, "fig1", w.name, "icelake",
                 presets::paperIcelake(cfg.cores),
                 core::AtomicsMode::kFenced);
    }
    return jobs;
}

void
fig1Render(const CampaignCfg &cfg, const SweepReport &r,
           std::ostream &os)
{
    banner(cfg, "Figure 1: cost of fenced atomic RMWs", os);
    TablePrinter t({"app", "sky_drain", "sky_atomic", "sky_total",
                    "ice_drain", "ice_atomic", "ice_total",
                    "ice_lat_p50", "ice_lat_p99"});
    double skySum = 0;
    double iceSum = 0;
    unsigned n = 0;
    for (const auto &w : wl::allWorkloads()) {
        auto mean = [&](const char *label, auto metric) {
            return r.meanOverSeeds(w.name, label, metric);
        };
        const RunResult &ice0 = r.at(w.name, "icelake").run;
        double skyTotal = mean("skylake",
            [](const RunResult &x) { return x.avgAtomicCost(); });
        double iceTotal = mean("icelake",
            [](const RunResult &x) { return x.avgAtomicCost(); });
        t.cell(w.name)
            .cell(mean("skylake", [](const RunResult &x) {
                      return x.avgDrainSbCycles(); }), 1)
            .cell(mean("skylake", [](const RunResult &x) {
                      return x.avgAtomicCycles(); }), 1)
            .cell(skyTotal, 1)
            .cell(mean("icelake", [](const RunResult &x) {
                      return x.avgDrainSbCycles(); }), 1)
            .cell(mean("icelake", [](const RunResult &x) {
                      return x.avgAtomicCycles(); }), 1)
            .cell(iceTotal, 1)
            .cell(ice0.hists.atomicLatency.p50(), 1)
            .cell(ice0.hists.atomicLatency.p99(), 1)
            .endRow();
        skySum += skyTotal;
        iceSum += iceTotal;
        ++n;
    }
    t.cell("Average").cell("").cell("").cell(skySum / n, 1)
        .cell("").cell("").cell(iceSum / n, 1).cell("").cell("")
        .endRow();
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- fig12: atomic frequency (APKI) -----------------------------------

std::vector<SweepJob>
fig12Jobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    for (const auto &w : wl::allWorkloads()) {
        pushCell(jobs, cfg, "fig12", w.name, "icelake",
                 presets::paperIcelake(cfg.cores),
                 core::AtomicsMode::kFenced);
    }
    return jobs;
}

void
fig12Render(const CampaignCfg &cfg, const SweepReport &r,
            std::ostream &os)
{
    banner(cfg, "Figure 12: frequency of atomic RMWs (APKI)", os);
    TablePrinter t({"app", "apki", "class"});
    for (const auto &w : wl::allWorkloads()) {
        t.cell(w.name)
            .cell(r.meanOverSeeds(w.name, "icelake",
                      [](const RunResult &x) { return x.apki(); }), 2)
            .cell(w.atomicIntensive ? "atomic-intensive" : "non-AI")
            .endRow();
    }
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- fig13: lock locality ---------------------------------------------

std::vector<SweepJob>
fig13Jobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    for (const auto &w : wl::allWorkloads()) {
        pushCell(jobs, cfg, "fig13", w.name, "fenced",
                 presets::paperIcelake(cfg.cores),
                 core::AtomicsMode::kFenced);
        pushCell(jobs, cfg, "fig13", w.name, "freefwd",
                 presets::paperIcelake(cfg.cores),
                 core::AtomicsMode::kFreeFwd);
    }
    return jobs;
}

void
fig13Render(const CampaignCfg &cfg, const SweepReport &r,
            std::ostream &os)
{
    banner(cfg, "Figure 13: locality of atomics", os);
    TablePrinter t({"app", "baseline_l1l2", "free_l1l2",
                    "free_forwarded", "free_total"});
    for (const auto &w : wl::allWorkloads()) {
        double base = r.meanOverSeeds(w.name, "fenced",
            [](const RunResult &x) { return x.lockLocalityRatio(); });
        double total = r.meanOverSeeds(w.name, "freefwd",
            [](const RunResult &x) { return x.lockLocalityRatio(); });
        double fwdShare = r.meanOverSeeds(w.name, "freefwd",
            [](const RunResult &x) { return x.lockLocalityFwdRatio(); });
        t.cell(w.name)
            .cell(base, 3)
            .cell(total - fwdShare, 3)
            .cell(fwdShare, 3)
            .cell(total, 3)
            .endRow();
    }
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- fig14/fig15: normalized execution time / energy ------------------

std::vector<SweepJob>
allModesJobs(const CampaignCfg &cfg, const std::string &bench)
{
    std::vector<SweepJob> jobs;
    for (const auto &w : wl::allWorkloads())
        for (core::AtomicsMode m : kAllModes)
            pushCell(jobs, cfg, bench, w.name,
                     core::atomicsModeIdent(m),
                     presets::paperIcelake(cfg.cores), m);
    return jobs;
}

/** Shared shape of fig14/fig15: per-app normalized columns for the
 * three Free flavours plus all/AI averages and a headline line. */
void
normalizedRender(const CampaignCfg &cfg, const SweepReport &r,
                 std::ostream &os, const std::string &title,
                 const std::vector<std::string> &headers,
                 const std::function<double(const RunResult &)> &metric,
                 const std::function<void(TablePrinter &,
                                          const SweepReport &,
                                          const std::string &)> &extras,
                 const char *headline, const char *paperLine)
{
    banner(cfg, title, os);
    TablePrinter t(headers);
    double sumAll[3] = {0, 0, 0};
    double sumAi[3] = {0, 0, 0};
    unsigned nAll = 0;
    unsigned nAi = 0;
    for (const auto &w : wl::allWorkloads()) {
        double base = r.meanOverSeeds(w.name, "fenced", metric);
        double norm[3] = {
            r.meanOverSeeds(w.name, "spec", metric) / base,
            r.meanOverSeeds(w.name, "free", metric) / base,
            r.meanOverSeeds(w.name, "freefwd", metric) / base,
        };
        t.cell(w.name).cell(1.0, 3).cell(norm[0], 3).cell(norm[1], 3)
            .cell(norm[2], 3);
        extras(t, r, w.name);
        t.endRow();
        for (int i = 0; i < 3; ++i)
            sumAll[i] += norm[i];
        ++nAll;
        if (w.atomicIntensive) {
            for (int i = 0; i < 3; ++i)
                sumAi[i] += norm[i];
            ++nAi;
        }
    }
    t.cell("Average(all)").cell(1.0, 3).cell(sumAll[0] / nAll, 3)
        .cell(sumAll[1] / nAll, 3).cell(sumAll[2] / nAll, 3)
        .cell("").cell("").endRow();
    t.cell("Average(AI)").cell(1.0, 3).cell(sumAi[0] / nAi, 3)
        .cell(sumAi[1] / nAi, 3).cell(sumAi[2] / nAi, 3)
        .cell("").cell("").endRow();
    emit(cfg, t, os);
    os << "\n" << headline << ": "
       << fmtDouble(100.0 * (1.0 - sumAll[2] / nAll), 1)
       << "% (all apps), "
       << fmtDouble(100.0 * (1.0 - sumAi[2] / nAi), 1)
       << "% (atomic-intensive)\n" << paperLine << "\n";
    reportFailures(r, os);
}

void
fig14Render(const CampaignCfg &cfg, const SweepReport &r,
            std::ostream &os)
{
    normalizedRender(
        cfg, r, os, "Figure 14: normalized execution time",
        {"app", "baseline", "+Spec", "Free", "Free+Fwd", "fwd_active",
         "fwd_sleep"},
        [](const RunResult &x) {
            return static_cast<double>(x.cycles);
        },
        [](TablePrinter &t, const SweepReport &rep,
           const std::string &app) {
            const RunResult &fwd = rep.at(app, "freefwd").run;
            double tot = static_cast<double>(fwd.slowestActiveCycles +
                                             fwd.slowestSleepCycles);
            t.cell(tot > 0 ? fwd.slowestActiveCycles / tot : 1.0, 2)
                .cell(tot > 0 ? fwd.slowestSleepCycles / tot : 0.0, 2);
        },
        "FreeAtomics+Fwd execution-time reduction",
        "(paper: 12.5% all, 25.2% atomic-intensive)");
}

void
fig15Render(const CampaignCfg &cfg, const SweepReport &r,
            std::ostream &os)
{
    normalizedRender(
        cfg, r, os, "Figure 15: normalized energy consumption",
        {"app", "baseline", "+Spec", "Free", "Free+Fwd", "fwd_dynamic",
         "fwd_static"},
        [](const RunResult &x) { return x.energy.total(); },
        [](TablePrinter &t, const SweepReport &rep,
           const std::string &app) {
            const RunResult &fwd = rep.at(app, "freefwd").run;
            t.cell(fwd.energy.dynamicPj / fwd.energy.total(), 2)
                .cell(fwd.energy.staticPj / fwd.energy.total(), 2);
        },
        "FreeAtomics+Fwd energy reduction",
        "(paper: ~11% all, ~23% atomic-intensive)");
}

// --- table2: characterization of Free atomics -------------------------

std::vector<SweepJob>
table2Jobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    for (const auto &w : wl::allWorkloads()) {
        pushCell(jobs, cfg, "table2", w.name, "freefwd",
                 presets::paperIcelake(cfg.cores),
                 core::AtomicsMode::kFreeFwd);
    }
    return jobs;
}

void
table2Render(const CampaignCfg &cfg, const SweepReport &r,
             std::ostream &os)
{
    banner(cfg, "Table 2: characterization of Free atomics", os);
    TablePrinter t({"app", "omitted_fences_pct", "timeouts",
                    "mdv_pct_squashes", "fba_pct", "fbs_pct"});
    double sums[5] = {0, 0, 0, 0, 0};
    unsigned n = 0;
    const std::function<double(const RunResult &)> metrics[5] = {
        [](const RunResult &x) { return x.omittedFencePct(); },
        [](const RunResult &x) {
            return static_cast<double>(x.core.watchdogTimeouts);
        },
        [](const RunResult &x) { return x.mdvPctOfSquashes(); },
        [](const RunResult &x) { return x.fwdByAtomicPct(); },
        [](const RunResult &x) { return x.fwdByStorePct(); },
    };
    for (const auto &w : wl::allWorkloads()) {
        double v[5];
        for (int i = 0; i < 5; ++i) {
            v[i] = r.meanOverSeeds(w.name, "freefwd", metrics[i]);
            sums[i] += v[i];
        }
        t.cell(w.name).cell(v[0], 2).cell(fmtDouble(v[1], 0))
            .cell(v[2], 2).cell(v[3], 2).cell(v[4], 3).endRow();
        ++n;
    }
    t.cell("Average").cell(sums[0] / n, 2)
        .cell(fmtDouble(sums[1] / n, 2)).cell(sums[2] / n, 2)
        .cell(sums[3] / n, 2).cell(sums[4] / n, 3).endRow();
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- ablation-rob: fenced cost vs ROB size ----------------------------

const char *const kRobApps[] = {"fft", "radix", "canneal", "barnes"};

std::vector<SweepJob>
ablationRobJobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    const MachineConfig machines[] = {
        presets::paperSandybridge(cfg.cores),
        presets::paperSkylake(cfg.cores),
        presets::paperIcelake(cfg.cores),
    };
    for (const char *app : kRobApps) {
        for (const auto &m : machines) {
            pushCell(jobs, cfg, "ablation-rob", app, m.name + "-fenced",
                     m, core::AtomicsMode::kFenced);
            pushCell(jobs, cfg, "ablation-rob", app,
                     m.name + "-freefwd", m,
                     core::AtomicsMode::kFreeFwd);
        }
    }
    return jobs;
}

void
ablationRobRender(const CampaignCfg &cfg, const SweepReport &r,
                  std::ostream &os)
{
    banner(cfg, "Ablation: fenced atomic cost vs ROB size", os);
    TablePrinter t({"app", "machine", "rob", "fenced_cost",
                    "fenced_cycles", "freefwd_cycles"});
    const MachineConfig machines[] = {
        presets::paperSandybridge(cfg.cores),
        presets::paperSkylake(cfg.cores),
        presets::paperIcelake(cfg.cores),
    };
    for (const char *app : kRobApps) {
        for (const auto &m : machines) {
            t.cell(app)
                .cell(m.name)
                .cell(std::to_string(m.core.robSize))
                .cell(r.meanOverSeeds(app, m.name + "-fenced",
                          [](const RunResult &x) {
                              return x.avgAtomicCost(); }), 1)
                .cell(r.meanOverSeeds(app, m.name + "-fenced",
                          [](const RunResult &x) {
                              return static_cast<double>(x.cycles);
                          }), 0)
                .cell(r.meanOverSeeds(app, m.name + "-freefwd",
                          [](const RunResult &x) {
                              return static_cast<double>(x.cycles);
                          }), 0)
                .endRow();
        }
    }
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- ablation-aq: Atomic Queue depth ----------------------------------

constexpr unsigned kAqSizes[] = {1, 2, 4, 8};

std::vector<SweepJob>
ablationAqJobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    for (const auto &w : wl::allWorkloads()) {
        if (!w.atomicIntensive)
            continue;
        for (unsigned s : kAqSizes) {
            pushCell(jobs, cfg, "ablation-aq", w.name,
                     "aq" + std::to_string(s),
                     MachineBuilder(presets::paperIcelake(cfg.cores))
                         .aqSize(s)
                         .build(),
                     core::AtomicsMode::kFreeFwd);
        }
    }
    return jobs;
}

void
ablationAqRender(const CampaignCfg &cfg, const SweepReport &r,
                 std::ostream &os)
{
    banner(cfg, "Ablation: Atomic Queue size (Free+Fwd)", os);
    std::vector<std::string> headers{"app"};
    for (unsigned s : kAqSizes)
        headers.push_back("aq" + std::to_string(s) + "_cycles");
    headers.push_back("aq4_dispatch_stall");
    TablePrinter t(headers);
    for (const auto &w : wl::allWorkloads()) {
        if (!w.atomicIntensive)
            continue;
        t.cell(w.name);
        for (unsigned s : kAqSizes) {
            t.cell(r.meanOverSeeds(w.name, "aq" + std::to_string(s),
                       [](const RunResult &x) {
                           return static_cast<double>(x.cycles);
                       }), 0);
        }
        t.cell(r.meanOverSeeds(w.name, "aq4", [](const RunResult &x) {
                   return static_cast<double>(
                       x.core.dispatchStallAqCycles);
               }), 0);
        t.endRow();
    }
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- ablation-fwd: forwarding-chain cap -------------------------------

constexpr unsigned kFwdCaps[] = {1, 2, 4, 8, 32, 64};
const char *const kFwdApps[] = {"barnes", "radiosity", "fluidanimate",
                                "TPCC", "AS", "RBT"};

std::vector<SweepJob>
ablationFwdJobs(const CampaignCfg &cfg)
{
    std::vector<SweepJob> jobs;
    for (const char *app : kFwdApps) {
        for (unsigned c : kFwdCaps) {
            pushCell(jobs, cfg, "ablation-fwd", app,
                     "cap" + std::to_string(c),
                     MachineBuilder(presets::paperIcelake(cfg.cores))
                         .fwdChainCap(c)
                         .build(),
                     core::AtomicsMode::kFreeFwd);
        }
    }
    return jobs;
}

void
ablationFwdRender(const CampaignCfg &cfg, const SweepReport &r,
                  std::ostream &os)
{
    banner(cfg, "Ablation: forwarding chain cap (Free+Fwd)", os);
    std::vector<std::string> headers{"app"};
    for (unsigned c : kFwdCaps)
        headers.push_back("cap" + std::to_string(c));
    headers.push_back("fba_pct_cap32");
    TablePrinter t(headers);
    for (const char *app : kFwdApps) {
        t.cell(app);
        for (unsigned c : kFwdCaps) {
            t.cell(r.meanOverSeeds(app, "cap" + std::to_string(c),
                       [](const RunResult &x) {
                           return static_cast<double>(x.cycles);
                       }), 0);
        }
        t.cell(r.meanOverSeeds(app, "cap32", [](const RunResult &x) {
                   return x.fwdByAtomicPct(); }), 2);
        t.endRow();
    }
    emit(cfg, t, os);
    reportFailures(r, os);
}

// --- sweep: generic cross-product -------------------------------------

std::vector<SweepJob>
genericJobs(const CampaignCfg &cfg)
{
    std::vector<std::string> workloads = cfg.workloads;
    if (workloads.empty())
        for (const auto &w : wl::allWorkloads())
            workloads.push_back(w.name);
    std::vector<std::string> modes = cfg.modes;
    if (modes.empty())
        for (core::AtomicsMode m : kAllModes)
            modes.push_back(core::atomicsModeIdent(m));
    std::vector<std::string> machines = cfg.machines;
    if (machines.empty())
        machines.push_back("icelake");

    std::vector<SweepJob> jobs;
    for (const std::string &wname : workloads) {
        if (!wl::findWorkload(wname))
            fatal("unknown workload '%s'", wname.c_str());
        for (const std::string &mach : machines) {
            for (const std::string &mode : modes) {
                std::string label =
                    machines.size() > 1 ? mach + "-" + mode : mode;
                pushCell(jobs, cfg, "sweep", wname, label,
                         presets::byName(mach, cfg.cores),
                         core::parseAtomicsMode(mode));
            }
        }
    }
    return jobs;
}

void
genericRender(const CampaignCfg &cfg, const SweepReport &r,
              std::ostream &os)
{
    banner(cfg, "Generic sweep", os);
    writeSummaryTable(r, os, cfg.csv);
    reportFailures(r, os);
}

} // namespace

const std::vector<Campaign> &
campaigns()
{
    static const std::vector<Campaign> all = {
        {"fig1", "cost of fenced atomic RMWs (Skylake vs Icelake)",
         fig1Jobs, fig1Render},
        {"fig12", "atomic RMW frequency (APKI)", fig12Jobs,
         fig12Render},
        {"fig13", "lock locality", fig13Jobs, fig13Render},
        {"fig14", "normalized execution time",
         [](const CampaignCfg &c) { return allModesJobs(c, "fig14"); },
         fig14Render},
        {"fig15", "normalized energy",
         [](const CampaignCfg &c) { return allModesJobs(c, "fig15"); },
         fig15Render},
        {"table2", "characterization of Free atomics", table2Jobs,
         table2Render},
        {"ablation-rob", "fenced cost vs ROB size", ablationRobJobs,
         ablationRobRender},
        {"ablation-aq", "Atomic Queue depth", ablationAqJobs,
         ablationAqRender},
        {"ablation-fwd", "forwarding-chain cap", ablationFwdJobs,
         ablationFwdRender},
        {"sweep", "generic workload x machine x mode x seed sweep",
         genericJobs, genericRender},
    };
    return all;
}

const Campaign *
findCampaign(const std::string &name)
{
    for (const Campaign &c : campaigns())
        if (c.name == name)
            return &c;
    return nullptr;
}

std::string
campaignNames()
{
    std::string s;
    for (const Campaign &c : campaigns()) {
        if (!s.empty())
            s += " ";
        s += c.name;
    }
    return s;
}

} // namespace fa::sim::sweep
