#include "sim/sweep/sweep.hh"

#include <chrono>

#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "workloads/workload.hh"

namespace fa::sim::sweep {

std::uint64_t
deriveSeed(unsigned seedIndex)
{
    return 0xbe9c5 + seedIndex;
}

const SweepOutcome &
SweepReport::at(const std::string &workload, const std::string &label,
                unsigned seedIndex) const
{
    for (const SweepOutcome &o : outcomes) {
        if (o.job.workload == workload && o.job.label == label &&
            o.job.seedIndex == seedIndex)
            return o;
    }
    fatal("sweep report has no outcome for (%s, %s, seed %u)",
          workload.c_str(), label.c_str(), seedIndex);
}

double
SweepReport::meanOverSeeds(
    const std::string &workload, const std::string &label,
    const std::function<double(const RunResult &)> &metric) const
{
    double sum = 0.0;
    unsigned n = 0;
    for (const SweepOutcome &o : outcomes) {
        if (o.job.workload == workload && o.job.label == label) {
            sum += metric(o.run);
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / n;
}

LatencyHists
SweepReport::mergedHists() const
{
    LatencyHists all;
    for (const SweepOutcome &o : outcomes)
        all.merge(o.run.hists);
    return all;
}

SweepReport
runSweep(const std::vector<SweepJob> &jobs, const SweepOptions &opts)
{
    using clock = std::chrono::steady_clock;

    SweepReport report;
    report.outcomes.resize(jobs.size());
    Pool pool(opts.threads);
    report.threads = pool.threads();

    auto t0 = clock::now();
    // Structured failure capture: a throwing job lands in its own
    // slot as a failed outcome; the N-1 completed results survive.
    std::vector<JobStatus> statuses =
        pool.runCollect(jobs.size(), [&](std::size_t i) {
            const SweepJob &job = jobs[i];
            const wl::Workload *w = wl::findWorkload(job.workload);
            if (!w)
                fatal("unknown workload '%s'", job.workload.c_str());
            auto j0 = clock::now();
            RunResult run =
                wl::runWorkload(*w, job.machine, job.mode, job.cores,
                                job.scale, job.seed, job.maxCycles);
            auto j1 = clock::now();
            SweepOutcome &out = report.outcomes[i];
            out.job = job;
            out.run = std::move(run);
            out.wallSec =
                std::chrono::duration<double>(j1 - j0).count();
        });
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (statuses[i].done())
            continue;
        SweepOutcome &out = report.outcomes[i];
        out.job = jobs[i];
        out.error = statuses[i].failed() ? statuses[i].error
                                         : "skipped";
        out.run = RunResult{};
        out.run.finished = false;
        out.run.failure = "host exception: " + out.error;
    }
    report.wallSec =
        std::chrono::duration<double>(clock::now() - t0).count();

    for (const SweepOutcome &o : report.outcomes)
        if (!o.run.finished)
            ++report.failed;
    return report;
}

void
writeJsonl(const SweepReport &report, std::ostream &os)
{
    for (const SweepOutcome &o : report.outcomes) {
        os << "{\"bench\":\"" << JsonWriter::escape(o.job.bench)
           << "\",\"workload\":\"" << JsonWriter::escape(o.job.workload)
           << "\",\"label\":\"" << JsonWriter::escape(o.job.label)
           << "\",\"seed\":" << o.job.seed << ",\"run\":";
        o.run.toJson(os);
        os << "}\n";
    }
}

void
writeSummaryTable(const SweepReport &report, std::ostream &os, bool csv)
{
    TablePrinter t({"bench", "workload", "label", "seeds", "cycles",
                    "ipc", "apki", "failed"});
    // One row per (workload, label) cell, first-appearance order.
    std::vector<std::pair<std::string, std::string>> cells;
    for (const SweepOutcome &o : report.outcomes) {
        auto cell = std::make_pair(o.job.workload, o.job.label);
        bool fresh = true;
        for (const auto &c : cells)
            if (c == cell)
                fresh = false;
        if (fresh)
            cells.push_back(cell);
    }
    for (const auto &[workload, label] : cells) {
        unsigned seeds = 0;
        unsigned failed = 0;
        double cycles = 0;
        double ipc = 0;
        double apki = 0;
        std::string bench;
        for (const SweepOutcome &o : report.outcomes) {
            if (o.job.workload != workload || o.job.label != label)
                continue;
            ++seeds;
            bench = o.job.bench;
            if (!o.run.finished)
                ++failed;
            cycles += static_cast<double>(o.run.cycles);
            double denom = static_cast<double>(o.run.cycles) *
                o.job.cores;
            ipc += denom == 0.0
                ? 0.0
                : static_cast<double>(o.run.core.committedInsts) / denom;
            apki += o.run.apki();
        }
        t.cell(bench).cell(workload).cell(label)
            .cell(std::uint64_t{seeds})
            .cell(cycles / seeds, 0)
            .cell(ipc / seeds, 2)
            .cell(apki / seeds, 2)
            .cell(std::uint64_t{failed})
            .endRow();
    }
    if (csv)
        t.printCsv(os);
    else
        t.print(os);
}

} // namespace fa::sim::sweep
