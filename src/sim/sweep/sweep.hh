/**
 * @file
 * Host-parallel sweep engine: run a batch of independent simulations
 * (workload × machine × atomic mode × seed) across a worker pool and
 * aggregate the per-job RunResults.
 *
 * Every experiment campaign in this repo — the paper-figure benches,
 * the fasoak corpus, the famc litmus sweeps — is embarrassingly
 * parallel: each job is one single-threaded simulation that is a
 * pure function of its spec. The engine exploits that:
 *
 *   - jobs carry their *own* master seed, derived at job-list
 *     construction time (deriveSeed), never from execution order,
 *   - each job's RunResult is written into a result slot indexed by
 *     the job id,
 *   - aggregation (JSONL emission, histogram merging, summary
 *     tables) happens after the pool joins, in job-id order.
 *
 * Consequence: per-job results and every aggregate are bit-identical
 * whether the sweep runs on 1, 4, or 64 host threads (asserted by
 * sweep_test in tier-1).
 */

#ifndef FA_SIM_SWEEP_SWEEP_HH
#define FA_SIM_SWEEP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/runner.hh"
#include "sim/sweep/pool.hh"

namespace fa::sim::sweep {

/** One simulation in a sweep: a packaged workload run under one
 * machine config, atomic mode, and seed. */
struct SweepJob
{
    std::string bench;      ///< campaign name ("fig14", "sweep", ...)
    std::string workload;   ///< registered workload name
    std::string label;      ///< series within the campaign ("icelake",
                            ///< "cap32", a mode ident, ...)
    MachineConfig machine;
    core::AtomicsMode mode = core::AtomicsMode::kFreeFwd;
    unsigned cores = 32;
    double scale = 0.5;
    unsigned seedIndex = 0;      ///< which of the campaign's seeds
    std::uint64_t seed = 0;      ///< materialized master seed
    Cycle maxCycles = 200'000'000;
};

/** The bench harnesses' historical seed schedule: seed s of a
 * campaign is 0xbe9c5 + s. A pure function of the index, so job
 * lists built in any order get identical seeds. */
std::uint64_t deriveSeed(unsigned seedIndex);

/** One finished job. */
struct SweepOutcome
{
    SweepJob job;
    RunResult run;
    double wallSec = 0.0;   ///< host wall-clock of this job alone
    /** Host-side exception text when the job threw instead of
     * producing a result; empty for a job that ran to completion.
     * A throwing job never discards the other jobs' results — it
     * surfaces here (and in run.failure) instead. */
    std::string error;
};

/** A completed sweep, in job order. */
struct SweepReport
{
    std::vector<SweepOutcome> outcomes;
    unsigned threads = 1;   ///< pool width the sweep ran at
    double wallSec = 0.0;   ///< host wall-clock of the whole sweep
    std::size_t failed = 0; ///< jobs with !run.finished

    /** First outcome matching (workload, label, seedIndex);
     * FatalError when absent. */
    const SweepOutcome &at(const std::string &workload,
                           const std::string &label,
                           unsigned seedIndex = 0) const;

    /** Mean of metric(run) over the campaign's seeds for one
     * (workload, label) cell. */
    double meanOverSeeds(
        const std::string &workload, const std::string &label,
        const std::function<double(const RunResult &)> &metric) const;

    /** All latency histograms of all jobs merged, in job order. */
    LatencyHists mergedHists() const;
};

struct SweepOptions
{
    unsigned threads = 1;   ///< 0 = hardware concurrency
};

/** Run every job across the pool and collect the report. Jobs that
 * fail (watchdog abort, verify failure, TSO violation) are reported
 * via RunResult::failure, not exceptions; a warning list is printed
 * by the callers, never by the workers. */
SweepReport runSweep(const std::vector<SweepJob> &jobs,
                     const SweepOptions &opts);

/**
 * Append one line per outcome to `os` in the bench-telemetry JSONL
 * format the figure harnesses established via FA_JSON:
 *   {"bench":...,"workload":...,"label":...,"seed":N,"run":{...}}
 * with "run" a full fa-run-result-v1 document (fastats --sweep reads
 * this back).
 */
void writeJsonl(const SweepReport &report, std::ostream &os);

/** Per-(workload, label) summary table: cycles, IPC, APKI, failures.
 * Means over seeds; one row per cell in job order. */
void writeSummaryTable(const SweepReport &report, std::ostream &os,
                       bool csv);

} // namespace fa::sim::sweep

#endif // FA_SIM_SWEEP_SWEEP_HH
