/**
 * @file
 * Deadlock/stall forensics. When the watchdog fires or the System's
 * global progress window trips, the interesting state — which atomic
 * holds which cacheline lock, what each ROB/SB head is waiting on —
 * is gone by the time the failure string reaches a human. This
 * module captures it at the moment of the event: a structured
 * per-core snapshot (ROB/LSQ heads, SB occupancy, AQ entries with
 * locked lines) plus a classification of the wedge against the
 * statically-predicted deadlock shapes from analysis/lock_cycle
 * (RMW-RMW / Store-RMW / Load-RMW, paper Figures 5-7).
 */

#ifndef FA_SIM_FORENSICS_HH
#define FA_SIM_FORENSICS_HH

#include <string>

#include "common/types.hh"

namespace fa::sim {

class System;

/**
 * Build a human-readable forensic report of the system's pipeline
 * state. Read-only; safe to call mid-cycle from the watchdog hook.
 *
 * @param sys    the wedged (or recovering) system
 * @param now    cycle of the triggering event
 * @param reason one-line cause ("watchdog fired on core 2", ...)
 */
std::string forensicReport(const System &sys, Cycle now,
                           const std::string &reason);

/** One-line per-core stall summary ("core 0 lastCommit=…", …) for
 * embedding in RunOutcome::failure. */
std::string stallSummary(const System &sys, Cycle now);

} // namespace fa::sim

#endif // FA_SIM_FORENSICS_HH
