#include "sim/energy.hh"

namespace fa::sim {

EnergyBreakdown
computeEnergy(const EnergyParams &p, const CoreStats &c,
              const MemStats &m)
{
    EnergyBreakdown e;
    double d = 0.0;
    d += p.issueUop * static_cast<double>(c.issuedUops);
    d += p.commitUop * static_cast<double>(c.committedInsts);
    d += p.l1Access * static_cast<double>(m.l1Hits + m.l1Misses);
    d += p.l2Access * static_cast<double>(m.l2Hits + m.l2Misses);
    d += p.l3Access * static_cast<double>(m.l3Hits + m.l3Misses);
    d += p.memAccess * static_cast<double>(m.memAccesses);
    d += p.coherenceMsg * static_cast<double>(m.networkMsgs +
                                              m.invalidationsSent);
    e.dynamicPj = d;
    e.staticPj = p.staticActive * static_cast<double>(c.activeCycles) +
        p.staticHalted * static_cast<double>(c.haltedCycles);
    return e;
}

} // namespace fa::sim
