/**
 * @file
 * Event-based processor energy model (Figure 15).
 *
 * The paper integrates McPAT at 22nm/0.6V; the structural effects it
 * reports are (i) static energy proportional to execution time and
 * (ii) dynamic energy proportional to the work performed, including
 * instructions wasted spinning. This model captures both with
 * per-event energies. Absolute joules are not meaningful — all
 * results are presented normalized, as in the paper. Uncore
 * (memory controller, network) is excluded, as in the paper.
 */

#ifndef FA_SIM_ENERGY_HH
#define FA_SIM_ENERGY_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace fa::sim {

/** Per-event dynamic energies (pJ) and static power (pJ/cycle). */
struct EnergyParams
{
    double commitUop = 6.0;
    double issueUop = 4.0;       ///< includes squashed (wasted) work
    double l1Access = 10.0;
    double l2Access = 25.0;
    double l3Access = 120.0;
    double memAccess = 800.0;
    double coherenceMsg = 15.0;
    double staticActive = 12.0;  ///< per active core cycle
    double staticHalted = 3.6;   ///< clock-gated core cycle (30%)
};

/** Static/dynamic split of a run's processor energy. */
struct EnergyBreakdown
{
    double dynamicPj = 0.0;
    double staticPj = 0.0;

    double total() const { return dynamicPj + staticPj; }
};

/**
 * Compute the energy of a run from aggregated statistics.
 *
 * @param params      event energies
 * @param cores_total core statistics summed over all cores
 * @param mem_stats   memory-hierarchy statistics
 */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const CoreStats &cores_total,
                              const MemStats &mem_stats);

} // namespace fa::sim

#endif // FA_SIM_ENERGY_HH
