#include "sim/interval_stats.hh"

#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"

namespace fa::sim {

namespace {

/** Flatten a stats struct into (name, value) pairs via forEach. */
template <typename Stats>
std::vector<std::pair<std::string, std::uint64_t>>
flatten(const Stats &s)
{
    std::vector<std::pair<std::string, std::uint64_t>> fields;
    s.forEach([&](const std::string &name, std::uint64_t v) {
        fields.emplace_back(name, v);
    });
    return fields;
}

/** Emit {"name": cur - prev, ...} for one stats struct. */
template <typename Stats>
void
writeDelta(JsonWriter &jw, const Stats &cur, const Stats &prev)
{
    auto cur_f = flatten(cur);
    auto prev_f = flatten(prev);
    jw.beginObject();
    for (size_t i = 0; i < cur_f.size(); ++i)
        jw.key(cur_f[i].first).value(cur_f[i].second - prev_f[i].second);
    jw.endObject();
}

} // namespace

IntervalStatsWriter::IntervalStatsWriter(std::ostream &os, Cycle period)
    : out(os), periodCycles(period),
      prevWall(std::chrono::steady_clock::now())
{
    if (period == 0)
        fatal("interval-stats period must be positive");
}

void
IntervalStatsWriter::snapshot(Cycle now, const CoreStats &core,
                              const MemStats &mem)
{
    auto wall = std::chrono::steady_clock::now();
    auto host_usec = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            wall - prevWall)
            .count());
    std::uint64_t insts = core.committedInsts - prevCore.committedInsts;
    double mips = host_usec
        ? static_cast<double>(insts) / static_cast<double>(host_usec)
        : 0.0;

    JsonWriter jw(out);
    jw.beginObject();
    jw.key("interval").value(count);
    jw.key("cycle").value(std::uint64_t{now});
    jw.key("cycles").value(std::uint64_t{now - prevCycle});
    jw.key("hostUsec").value(host_usec);
    jw.key("mips").value(mips);
    jw.key("core");
    writeDelta(jw, core, prevCore);
    jw.key("mem");
    writeDelta(jw, mem, prevMem);
    jw.endObject();
    out << '\n';

    prevCycle = now;
    prevCore = core;
    prevMem = mem;
    prevWall = wall;
    ++count;
}

void
IntervalStatsWriter::finish(Cycle now, const CoreStats &core,
                            const MemStats &mem)
{
    if (now > prevCycle)
        snapshot(now, core, mem);
    out.flush();
}

} // namespace fa::sim
