#include "sim/system.hh"

#include <chrono>

#include "analysis/trace_io.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sim/forensics.hh"

namespace fa::sim {

System::System(const MachineConfig &config,
               const std::vector<isa::Program> &progs, std::uint64_t seed)
    : cfg(config), programsVec(progs)
{
    if (progs.size() != cfg.cores)
        fatal("system has %u cores but %zu programs", cfg.cores,
              progs.size());
    memSys = std::make_unique<mem::MemSystem>(cfg.mem, cfg.cores);
    if (cfg.recordMemTrace || !cfg.memTracePath.empty())
        tracer = std::make_unique<analysis::TraceRecorder>();
    if (cfg.chaos.anyEnabled()) {
        chaosEng = std::make_unique<chaos::ChaosEngine>(cfg.chaos);
        memSys->attachChaos(chaosEng.get());
    }
    if (cfg.sanitize) {
        fasanEng = std::make_unique<analysis::Fasan>();
        memSys->attachFasan(fasanEng.get());
    }
    if (!cfg.pipeviewPath.empty()) {
        pipeviewFile = std::make_unique<std::ofstream>(cfg.pipeviewPath);
        if (!*pipeviewFile)
            fatal("cannot open pipeview file '%s'",
                  cfg.pipeviewPath.c_str());
        ownPipeview =
            std::make_unique<core::PipeViewRecorder>(*pipeviewFile);
    }
    if (!cfg.intervalStatsPath.empty()) {
        intervalFile =
            std::make_unique<std::ofstream>(cfg.intervalStatsPath);
        if (!*intervalFile)
            fatal("cannot open interval-stats file '%s'",
                  cfg.intervalStatsPath.c_str());
        ownIntervalStats = std::make_unique<IntervalStatsWriter>(
            *intervalFile, cfg.intervalPeriod);
        intervalStats = ownIntervalStats.get();
    }
    if (!cfg.traceSpansPath.empty()) {
        spanTraceFile =
            std::make_unique<std::ofstream>(cfg.traceSpansPath);
        if (!*spanTraceFile)
            fatal("cannot open trace-spans file '%s'",
                  cfg.traceSpansPath.c_str());
        ownSpanTrace = std::make_unique<SpanTracer>(*spanTraceFile);
        ownSpanTrace->preamble(cfg.cores, cfg.core.aqSize);
        spanTrace = ownSpanTrace.get();
        memSys->attachSpanTrace(spanTrace);
    }
    if (cfg.hostProfile) {
        hostProf = std::make_unique<HostProfiler>(cfg.profilePeriod);
        memSys->attachHostProfiler(hostProf.get());
    }
    cores.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        cores.push_back(std::make_unique<core::Core>(
            c, cfg.core, progs[c], memSys.get(), mix64(seed, c + 1)));
        cores.back()->attachTracer(tracer.get());
        cores.back()->attachPipeView(ownPipeview.get());
        cores.back()->attachChaos(chaosEng.get());
        cores.back()->attachFasan(fasanEng.get());
        cores.back()->attachSpanTrace(spanTrace);
        cores.back()->attachHostProfiler(hostProf.get());
        if (cfg.watchdogForensics) {
            // Capture pipeline state at the first firing only: the
            // watchdog can fire thousands of times in a legitimately
            // contended run, and the first wedge is the informative
            // one.
            core::Core *self = cores.back().get();
            cores.back()->setWatchdogHook(
                [this, self](SeqNum victim, Cycle at) {
                    if (!lastForensics.empty())
                        return;
                    lastForensics = forensicReport(
                        *this, at,
                        "watchdog fired on core " +
                            std::to_string(self->id()) + " (victim seq " +
                            std::to_string(victim) + ")");
                });
        }
    }
}

void
System::initMemory(const MemInit &init)
{
    for (const auto &[addr, value] : init)
        memSys->writeWord(addr, value);
}

bool
System::allHalted() const
{
    for (const auto &c : cores)
        if (!c->halted())
            return false;
    return true;
}

void
System::attachPipeView(core::PipeViewRecorder *pv)
{
    for (auto &c : cores)
        c->attachPipeView(pv);
}

void
System::attachChaos(chaos::ChaosEngine *engine)
{
    memSys->attachChaos(engine);
    for (auto &c : cores)
        c->attachChaos(engine);
}

void
System::attachSpanTrace(SpanTracer *st)
{
    spanTrace = st;
    memSys->attachSpanTrace(st);
    for (auto &c : cores)
        c->attachSpanTrace(st);
}

void
System::finishSinks()
{
    if (intervalStats)
        intervalStats->finish(now, coreTotals(), memSys->stats);
    if (spanTrace)
        spanTrace->finish(now);
    if (hostProf)
        hostProf->finish();
    if (tracer && !cfg.memTracePath.empty() && !memTraceWritten) {
        memTraceWritten = true;
        std::ofstream out(cfg.memTracePath);
        if (!out)
            fatal("cannot open mem-trace file '%s'",
                  cfg.memTracePath.c_str());
        analysis::writeMemTrace(out, cfg.memTraceLabel,
                                core::atomicsModeIdent(cfg.core.mode),
                                cfg.cores, tracer->events(),
                                tracer->syncEvents());
    }
}

void
System::maybeSnapshotInterval()
{
    if (intervalStats && now != 0 && intervalStats->due(now))
        intervalStats->snapshot(now, coreTotals(), memSys->stats);
}

void
System::stepCycle()
{
    if (hostProf) {
        hostProf->beginCycle(now);
        if (hostProf->sampling()) {
            memSys->tick(now);
            for (auto &c : cores)
                c->tick(now);
            ++now;
            HostProfiler::Timer t(*hostProf, HostPhase::kStats);
            maybeSnapshotInterval();
            return;
        }
    }
    memSys->tick(now);
    for (auto &c : cores)
        c->tick(now);
    ++now;
    maybeSnapshotInterval();
}

RunOutcome
System::run(Cycle max_cycles)
{
    RunOutcome out;
    Cycle last_progress = now;
    // Cooperative wall-clock deadline: checked every kDeadlineStride
    // cycles so the hot loop pays one counter test per cycle, not a
    // clock read.
    constexpr Cycle kDeadlineStride = 512;
    const bool deadline_armed = cfg.wallDeadlineSec > 0.0;
    const auto wall_start = std::chrono::steady_clock::now();
    Cycle next_deadline_check = now + kDeadlineStride;
    while (now < max_cycles) {
        stepCycle();
        if (deadline_armed && now >= next_deadline_check) {
            next_deadline_check = now + kDeadlineStride;
            double elapsed = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                                 .count();
            if (elapsed > cfg.wallDeadlineSec) {
                out.cycles = now;
                out.failure = strfmt(
                    "host wall-clock deadline (%gs) exceeded",
                    cfg.wallDeadlineSec);
                lastForensics = forensicReport(
                    *this, now,
                    "wall-clock deadline tripped: " + out.failure);
                out.forensics = lastForensics;
                finishSinks();
                return out;
            }
        }
        if (fasanEng && fasanEng->failed()) {
            out.cycles = now;
            out.failure = "fasan: invariant violation: " +
                fasanEng->all().front().invariant;
            lastForensics = forensicReport(
                *this, now,
                "fasan invariant violation:\n" + fasanEng->report());
            out.forensics = lastForensics;
            finishSinks();
            return out;
        }
        if (allHalted()) {
            out.cycles = now;
            if (fasanEng) {
                // Lock-drain-at-halt sweep: every AQ must be empty.
                for (auto &c : cores)
                    c->fasanFinal(now);
                if (fasanEng->failed()) {
                    out.failure = "fasan: invariant violation: " +
                        fasanEng->all().front().invariant;
                    lastForensics = forensicReport(
                        *this, now,
                        "fasan invariant violation:\n" +
                            fasanEng->report());
                    out.forensics = lastForensics;
                    finishSinks();
                    return out;
                }
            }
            out.finished = true;
            out.cycles = now;
            finishSinks();
            out.forensics = lastForensics;
            return out;
        }
        // Global progress check: some core must commit within the
        // window, or the watchdog has failed to break a deadlock.
        for (const auto &c : cores) {
            if (c->halted() || c->lastCommitCycle() > last_progress)
                last_progress = std::max(last_progress,
                                         c->lastCommitCycle());
        }
        if (now - last_progress > cfg.progressWindow) {
            out.cycles = now;
            out.failure = "no core committed for " +
                std::to_string(cfg.progressWindow) +
                " cycles (stalled: " + stallSummary(*this, now) + ")";
            // The abort is always a simulator bug (the watchdog
            // should have broken any deadlock), so capture the wedge
            // unconditionally.
            lastForensics =
                forensicReport(*this, now, "global progress window "
                                           "tripped: " + out.failure);
            out.forensics = lastForensics;
            finishSinks();
            return out;
        }
    }
    out.cycles = now;
    out.failure = "cycle limit reached";
    out.forensics = lastForensics;
    finishSinks();
    return out;
}

CoreStats
System::coreTotals() const
{
    CoreStats total;
    for (const auto &c : cores)
        total.add(c->stats);
    return total;
}

LatencyHists
System::histTotals() const
{
    LatencyHists total;
    for (const auto &c : cores)
        total.merge(c->hists);
    return total;
}

} // namespace fa::sim
