#include "sim/system.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace fa::sim {

System::System(const MachineConfig &config,
               const std::vector<isa::Program> &progs, std::uint64_t seed)
    : cfg(config)
{
    if (progs.size() != cfg.cores)
        fatal("system has %u cores but %zu programs", cfg.cores,
              progs.size());
    memSys = std::make_unique<mem::MemSystem>(cfg.mem, cfg.cores);
    if (cfg.recordMemTrace)
        tracer = std::make_unique<analysis::TraceRecorder>();
    cores.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        cores.push_back(std::make_unique<core::Core>(
            c, cfg.core, progs[c], memSys.get(), mix64(seed, c + 1)));
        cores.back()->attachTracer(tracer.get());
    }
}

void
System::initMemory(const MemInit &init)
{
    for (const auto &[addr, value] : init)
        memSys->writeWord(addr, value);
}

bool
System::allHalted() const
{
    for (const auto &c : cores)
        if (!c->halted())
            return false;
    return true;
}

void
System::stepCycle()
{
    memSys->tick(now);
    for (auto &c : cores)
        c->tick(now);
    ++now;
}

RunOutcome
System::run(Cycle max_cycles)
{
    RunOutcome out;
    Cycle last_progress = now;
    while (now < max_cycles) {
        stepCycle();
        if (allHalted()) {
            out.finished = true;
            out.cycles = now;
            return out;
        }
        // Global progress check: some core must commit within the
        // window, or the watchdog has failed to break a deadlock.
        for (const auto &c : cores) {
            if (c->halted() || c->lastCommitCycle() > last_progress)
                last_progress = std::max(last_progress,
                                         c->lastCommitCycle());
        }
        if (now - last_progress > kProgressWindow) {
            out.cycles = now;
            out.failure = "no core committed for " +
                std::to_string(kProgressWindow) + " cycles";
            return out;
        }
    }
    out.cycles = now;
    out.failure = "cycle limit reached";
    return out;
}

CoreStats
System::coreTotals() const
{
    CoreStats total;
    for (const auto &c : cores)
        total.add(c->stats);
    return total;
}

} // namespace fa::sim
