/**
 * @file
 * Deterministic fault-injection engine ("chaos engine") for liveness
 * certification of the Free Atomics mechanisms.
 *
 * The watchdog (§3.2.5) is the only liveness mechanism in the design:
 * every deadlock shape and forwarding-responsibility hand-off must be
 * survivable by timeout-and-flush. The engine drives those paths hard
 * by perturbing the simulation at the points where real hardware
 * exhibits adversarial timing:
 *
 *  - delayed coherence responses       (kCoherenceDelay)
 *  - reordered same-line requests      (kQueueReorder)
 *  - transiently stuck cacheline locks (kStuckLock)
 *  - branch-squash storms targeting in-flight atomics (kSquashStorm)
 *  - forced replacement pressure on locked lines (kEvictPressure)
 *  - dropped unlock_on_squash — a deliberate simulator bug that the
 *    forensics layer must catch, never the watchdog (kDropUnlock)
 *  - forwarding-chain cap jitter around the §3.3.4 bound (kFwdCapJitter)
 *
 * All of these are *timing* faults except kDropUnlock: a run under any
 * non-buggy profile must still finish, satisfy its invariants and pass
 * the axiomatic x86-TSO check.
 *
 * Determinism: every decision flows through a per-fault-class Rng
 * stream seeded from mix64(seed, class). The simulator itself is
 * deterministic, so the sequence of injection opportunities — and
 * therefore the whole run — is bit-reproducible from (program, machine
 * seed, ChaosConfig).
 *
 * Wiring: Core and MemSystem hold a nullable ChaosEngine pointer and
 * guard every hook with `if (chaos)` — the same zero-cost-when-off
 * pattern as the trace/pipeview recorders.
 */

#ifndef FA_SIM_CHAOS_CHAOS_HH
#define FA_SIM_CHAOS_CHAOS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace fa::chaos {

/** Probability denominator for all per-opportunity fault rates. */
constexpr std::uint64_t kProbDen = 1024;

/**
 * Per-fault-class knobs. All probabilities are numerators over
 * kProbDen, evaluated once per injection opportunity; 0 disables the
 * class. The whole struct is plain data so a fault schedule can be
 * serialized into a reproducer file and replayed exactly.
 */
struct ChaosConfig
{
    /** Seed of the engine's Rng streams (independent of the machine
     * seed so program and fault schedule shrink separately). */
    std::uint64_t seed = 1;

    // kCoherenceDelay: extra latency added when a coherence response
    // (data grant, invalidation, downgrade) is dispatched.
    unsigned delayProb = 0;
    unsigned delayMaxCycles = 64;

    // kQueueReorder: when a directory line frees up, service the
    // youngest queued request instead of the oldest.
    unsigned reorderProb = 0;

    // kStuckLock: an invalidation/downgrade is denied as if the
    // target line were AQ-locked, for a bounded window of cycles.
    unsigned stuckLockProb = 0;
    unsigned stuckLockCycles = 128;

    // kSquashStorm: per-cycle chance (while atomics are in flight) to
    // squash-and-replay a random uncommitted atomic, emulating a
    // wrong-path burst landing on it.
    unsigned squashStormProb = 0;

    // kEvictPressure: per-cycle chance (while a lock is held) to
    // issue a prefetch that conflicts with the locked line's L1 set,
    // attacking the §3.2.4 locked-victim exclusion.
    unsigned evictPressureProb = 0;

    // kDropUnlock: chance that a squashed lock-holding atomic's AQ
    // release is LOST. This is an injected simulator bug: the lock
    // leaks, the watchdog cannot fire (the owner is gone), and the
    // run must end in the global progress-window abort with forensics
    // flagging the stale lock.
    unsigned dropUnlockProb = 0;

    // kFwdCapJitter: when an atomic-to-atomic forward sits within 2
    // of the §3.3.4 chain cap, perturb the effective cap by ±1
    // (never below 1).
    unsigned fwdCapJitterProb = 0;

    /** Any fault class armed? (engine construction gate) */
    bool anyEnabled() const;

    /** One-line human-readable summary of the armed classes. */
    std::string describe() const;
};

/** Named profiles (fasoak --profile / fasim --chaos-profile). */
ChaosConfig chaosProfile(const std::string &name, std::uint64_t seed);

/** Names accepted by chaosProfile(), comma-separated (usage text). */
const char *chaosProfileNames();

/**
 * The engine: owns the per-class Rng streams, answers the injection
 * hooks, and counts what it injected.
 */
class ChaosEngine
{
  public:
    explicit ChaosEngine(const ChaosConfig &config);

    const ChaosConfig &config() const { return cfg; }

    // --- memory-system hooks ---------------------------------------------

    /** Extra cycles to add to a coherence response now being sent
     * for `line`; 0 when no fault fires. */
    Cycle coherenceDelay(Addr line);

    /** Service the back of `line`'s directory queue instead of the
     * front (queue has >= 2 entries when asked). */
    bool reorderQueued(Addr line);

    /**
     * Treat (core, line) as lock-denied even though the AQ disagrees.
     * A firing opens a window of stuckLockCycles during which every
     * retry is denied; between windows the roll is rate-limited so
     * retried invalidations do not compound the probability.
     */
    bool lockStuck(CoreId core, Addr line, Cycle now);

    // --- core-side hooks ---------------------------------------------------

    /** Per-cycle storm roll (called only while uncommitted atomics
     * exist). True = squash one of them this cycle. */
    bool squashStormTick(CoreId core);

    /** Pick the storm victim among `count` uncommitted atomics. */
    unsigned stormVictimIndex(unsigned count);

    /** Per-cycle replacement-pressure roll (called only while the AQ
     * holds a lock). True = issue a conflicting prefetch. */
    bool evictPressureTick(CoreId core);

    /** Way offset (>= 1) for the conflicting prefetch address. */
    unsigned evictPressureWay();

    /** Lose this squashed atomic's unlock_on_squash? (injected bug) */
    bool dropUnlock(CoreId core);

    /** Effective §3.3.4 chain cap for this check: `cap` itself, or
     * cap±1 when the jitter fault fires near the boundary. */
    unsigned fwdCapJitter(unsigned chain, unsigned cap);

    // --- accounting ---------------------------------------------------------

    /** Injection counts per fault class (tests, forensics). */
    struct Counts
    {
        std::uint64_t coherenceDelays = 0;
        std::uint64_t delayCyclesAdded = 0;
        std::uint64_t queueReorders = 0;
        std::uint64_t stuckLockWindows = 0;
        std::uint64_t stuckLockDenials = 0;
        std::uint64_t squashStorms = 0;
        std::uint64_t evictPressureProbes = 0;
        std::uint64_t droppedUnlocks = 0;
        std::uint64_t fwdCapJitters = 0;

        std::uint64_t total() const;
    };

    const Counts &counts() const { return cnt; }

    /** Deterministic multi-line summary (seed-replay tests compare
     * this string across runs). */
    std::string summary() const;

  private:
    ChaosConfig cfg;

    // One stream per fault class: injections in one class never
    // perturb the schedule of another, so shrinking a fault schedule
    // (zeroing one class) leaves the rest bit-identical.
    Rng rngDelay;
    Rng rngReorder;
    Rng rngStuck;
    Rng rngStorm;
    Rng rngEvict;
    Rng rngDrop;
    Rng rngFwd;

    /** (core, line) -> cycle until which the lock appears stuck; the
     * same map rate-limits fresh rolls via negative entries. */
    struct StuckState
    {
        Cycle stuckUntil = 0;
        Cycle nextRollAt = 0;
    };
    std::unordered_map<std::uint64_t, StuckState> stuck;

    Counts cnt;
};

} // namespace fa::chaos

#endif // FA_SIM_CHAOS_CHAOS_HH
