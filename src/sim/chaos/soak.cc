#include "sim/chaos/soak.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/race/hb.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

namespace fa::chaos {

namespace {

sim::MachineConfig
machinePreset(const std::string &name, unsigned cores)
{
    if (name == "tiny")
        return sim::MachineConfig::tiny(cores);
    if (name == "icelake")
        return sim::MachineConfig::icelake(cores);
    if (name == "skylake")
        return sim::MachineConfig::skylake(cores);
    if (name == "sandybridge")
        return sim::MachineConfig::sandybridge(cores);
    fatal("unknown machine preset '%s'", name.c_str());
}

/** Seed-stream tags so dims, programs and fault schedule never share
 * a random stream (shrinking one must not reshuffle the others). */
constexpr std::uint64_t kDimsTag = 0xd135;
constexpr std::uint64_t kProgTag = 0x9a0c;
constexpr std::uint64_t kFaultTag = 0xfa17;

/** CLI token for a mode (soakParseMode's inverse; the pretty
 * atomicsModeName() strings are not parseable). */
const char *
modeToken(core::AtomicsMode mode)
{
    switch (mode) {
      case core::AtomicsMode::kFenced: return "fenced";
      case core::AtomicsMode::kSpec: return "spec";
      case core::AtomicsMode::kFree: return "free";
      case core::AtomicsMode::kFreeFwd: return "freefwd";
    }
    return "freefwd";
}

} // namespace

core::AtomicsMode
soakParseMode(const std::string &name)
{
    if (name == "fenced")
        return core::AtomicsMode::kFenced;
    if (name == "spec")
        return core::AtomicsMode::kSpec;
    if (name == "free")
        return core::AtomicsMode::kFree;
    if (name == "freefwd")
        return core::AtomicsMode::kFreeFwd;
    fatal("unknown mode '%s' (fenced|spec|free|freefwd)", name.c_str());
}

SoakSpec
makeSoakSpec(std::uint64_t seed, core::AtomicsMode mode,
             const std::string &profile)
{
    Rng rng(mix64(seed, kDimsTag));
    SoakSpec s;
    s.seed = seed;
    s.threads = static_cast<unsigned>(rng.range(2, 4));
    s.blocks = static_cast<unsigned>(rng.range(10, 30));
    s.counters = static_cast<unsigned>(rng.range(2, 6));
    s.mode = mode;
    s.chaos = chaosProfile(profile, mix64(seed, kFaultTag));
    return s;
}

SoakCase
buildSoakCase(const SoakSpec &spec)
{
    SoakCase c;
    c.spec = spec;
    c.expectedCounters.assign(spec.counters, 0);
    for (unsigned t = 0; t < spec.threads; ++t) {
        wl::SyntheticParams p;
        p.generatorSeed = mix64(spec.seed, kProgTag);
        p.blocks = spec.blocks;
        p.numCounters = spec.counters;
        std::vector<std::int64_t> inc;
        c.programs.push_back(
            wl::buildSyntheticProgram(p, t, spec.threads, &inc));
        for (unsigned i = 0; i < spec.counters; ++i)
            c.expectedCounters[i] += inc[i];
    }
    return c;
}

SoakResult
runSoakCase(const SoakCase &c)
{
    const SoakSpec &spec = c.spec;
    sim::MachineConfig m = machinePreset(spec.machine, spec.threads);
    m.cores = spec.threads;
    m.core.mode = spec.mode;
    m.recordMemTrace = true;
    m.watchdogForensics = true;
    m.progressWindow = spec.progressWindow;
    m.wallDeadlineSec = spec.wallDeadlineSec;
    m.chaos = spec.chaos;
    m.sanitize = spec.sanitize;

    sim::System sys(m, c.programs, spec.seed);
    sim::RunOutcome out = sys.run(spec.maxCycles);
    sim::RunResult res = sim::collectRunResult(sys, out);

    SoakResult r;
    r.cycles = out.cycles;
    r.watchdogTimeouts = res.core.watchdogTimeouts;
    r.forensics = out.forensics;
    if (const ChaosEngine *eng = sys.chaosEngine())
        r.chaosInjections = eng->counts().total();

    if (!out.finished) {
        if (out.failure.rfind("fasan: ", 0) == 0) {
            // "fasan: invariant violation: <name>" — class on the
            // invariant so the shrinker preserves the failure mode.
            r.signature =
                "fasan:" + out.failure.substr(out.failure.rfind(": ") + 2);
        } else if (out.failure.find("wall-clock deadline") !=
                   std::string::npos) {
            // The host budget, not the simulation, gave up: a hung
            // seed. Shrinking would re-run the hang repeatedly, so
            // the harness quarantines on this signature instead.
            r.signature = "wall-deadline";
        } else {
            r.signature = out.failure.find("no core committed") !=
                                  std::string::npos
                              ? "no-progress"
                              : "cycle-limit";
        }
        r.detail = out.failure;
        if (const analysis::Fasan *fs = sys.sanitizer();
            fs && fs->failed())
            r.detail += "\n" + fs->report();
        return r;
    }
    if (res.tsoChecked && !res.tsoOk()) {
        r.signature = "tso";
        r.detail = res.tsoError;
        return r;
    }
    for (unsigned i = 0; i < spec.counters; ++i) {
        std::int64_t got =
            sys.readWord(wl::kDataBase + i * kLineBytes);
        if (got != c.expectedCounters[i]) {
            std::ostringstream os;
            os << "counter " << i << " ended at " << got
               << ", expected " << c.expectedCounters[i];
            r.signature = "invariant:counter" + std::to_string(i);
            r.detail = os.str();
            return r;
        }
    }
    if (spec.race) {
        const analysis::TraceRecorder *tr = sys.trace();
        analysis::race::RaceOpts ro;
        ro.mode = spec.mode;
        ro.witnesses = false;
        analysis::race::RaceReport rep = analysis::race::analyze(
            tr->events(), tr->syncEvents(), ro);
        if (!rep.hardwareClean()) {
            r.signature = "race:atomicity";
            std::ostringstream os;
            os << rep.atomicityViolations
               << " predicted atomicity-window violation(s), "
               << rep.tornRecords << " torn record(s)";
            for (const auto &f : rep.findings) {
                if (f.cat == analysis::race::Category::kAtomicity) {
                    os << "\n" << analysis::race::describeFinding(f);
                    break;
                }
            }
            r.detail = os.str();
            return r;
        }
    }
    r.ok = true;
    return r;
}

namespace {

/** Does `candidate` still fail with the same signature? */
bool
reproduces(const SoakSpec &candidate, const std::string &signature)
{
    return runSoakCase(buildSoakCase(candidate)).signature == signature;
}

} // namespace

SoakSpec
shrinkSoakCase(const SoakSpec &failing, const std::string &signature,
               unsigned *steps)
{
    SoakSpec cur = failing;
    unsigned accepted = 0;

    // Greedy fixpoint: retry the whole candidate list after every
    // accepted reduction (an earlier rejected cut may become viable
    // once something else shrank).
    bool progress = true;
    while (progress) {
        progress = false;

        auto attempt = [&](SoakSpec cand) {
            if (reproduces(cand, signature)) {
                cur = cand;
                ++accepted;
                progress = true;
                return true;
            }
            return false;
        };

        // Program dims first: smaller programs dominate replay cost.
        if (cur.threads > 1) {
            SoakSpec cand = cur;
            cand.threads = cur.threads - 1;
            attempt(cand);
        }
        while (cur.blocks > 1) {
            SoakSpec cand = cur;
            cand.blocks = cur.blocks > 2 ? cur.blocks / 2 : 1;
            if (!attempt(cand))
                break;
        }
        if (cur.counters > 1) {
            SoakSpec cand = cur;
            cand.counters = cur.counters - 1;
            attempt(cand);
        }

        // Fault classes: zero one at a time. Class streams are
        // independent, so dropping one leaves the rest bit-identical.
        static constexpr unsigned ChaosConfig::*kProbs[] = {
            &ChaosConfig::delayProb,         &ChaosConfig::reorderProb,
            &ChaosConfig::stuckLockProb,     &ChaosConfig::squashStormProb,
            &ChaosConfig::evictPressureProb, &ChaosConfig::dropUnlockProb,
            &ChaosConfig::fwdCapJitterProb,
        };
        for (unsigned ChaosConfig::*p : kProbs) {
            if (cur.chaos.*p == 0)
                continue;
            SoakSpec cand = cur;
            cand.chaos.*p = 0;
            attempt(cand);
        }

        // Magnitude knobs last.
        if (cur.chaos.delayProb != 0 && cur.chaos.delayMaxCycles > 4) {
            SoakSpec cand = cur;
            cand.chaos.delayMaxCycles = cur.chaos.delayMaxCycles / 2;
            attempt(cand);
        }
        if (cur.chaos.stuckLockProb != 0 &&
            cur.chaos.stuckLockCycles > 8) {
            SoakSpec cand = cur;
            cand.chaos.stuckLockCycles = cur.chaos.stuckLockCycles / 2;
            attempt(cand);
        }
    }

    if (steps)
        *steps = accepted;
    return cur;
}

std::string
writeReproducer(const SoakCase &c, const SoakResult &r,
                const std::string &dir, const std::string &base)
{
    namespace fs = std::filesystem;
    fs::create_directories(dir);

    std::vector<std::string> prog_files;
    for (unsigned t = 0; t < c.programs.size(); ++t) {
        std::string rel = base + ".t" + std::to_string(t) + ".fasm";
        std::ofstream pf(fs::path(dir) / rel);
        if (!pf)
            fatal("cannot write reproducer program '%s'", rel.c_str());
        pf << isa::writeAsm(c.programs[t]);
        prog_files.push_back(rel);
    }

    fs::path json_path = fs::path(dir) / (base + ".json");
    std::ofstream os(json_path);
    if (!os)
        fatal("cannot write reproducer '%s'",
              json_path.string().c_str());

    const SoakSpec &s = c.spec;
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value("fa-soak-repro-v1");
    jw.key("seed").value(std::uint64_t{s.seed});
    jw.key("mode").value(modeToken(s.mode));
    jw.key("machine").value(s.machine);
    jw.key("threads").value(s.threads);
    jw.key("blocks").value(s.blocks);
    jw.key("counters").value(s.counters);
    jw.key("progressWindow").value(std::uint64_t{s.progressWindow});
    jw.key("maxCycles").value(std::uint64_t{s.maxCycles});
    if (s.wallDeadlineSec > 0.0)
        jw.key("wallDeadlineSec").value(s.wallDeadlineSec);
    jw.key("sanitize").value(s.sanitize);
    jw.key("race").value(s.race);
    jw.key("chaos").beginObject();
    jw.key("seed").value(std::uint64_t{s.chaos.seed});
    jw.key("delayProb").value(s.chaos.delayProb);
    jw.key("delayMaxCycles").value(s.chaos.delayMaxCycles);
    jw.key("reorderProb").value(s.chaos.reorderProb);
    jw.key("stuckLockProb").value(s.chaos.stuckLockProb);
    jw.key("stuckLockCycles").value(s.chaos.stuckLockCycles);
    jw.key("squashStormProb").value(s.chaos.squashStormProb);
    jw.key("evictPressureProb").value(s.chaos.evictPressureProb);
    jw.key("dropUnlockProb").value(s.chaos.dropUnlockProb);
    jw.key("fwdCapJitterProb").value(s.chaos.fwdCapJitterProb);
    jw.endObject();
    jw.key("programs").beginArray();
    for (const auto &f : prog_files)
        jw.value(f);
    jw.endArray();
    jw.key("expectedCounters").beginArray();
    for (std::int64_t v : c.expectedCounters)
        jw.value(v);
    jw.endArray();
    jw.key("signature").value(r.signature);
    jw.key("detail").value(r.detail);
    jw.endObject();
    os << '\n';
    return json_path.string();
}

SoakCase
loadReproducer(const std::string &json_path,
               std::string *recorded_signature)
{
    namespace fs = std::filesystem;
    std::ifstream in(json_path);
    if (!in)
        fatal("cannot open reproducer '%s'", json_path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    JsonValue doc = JsonValue::parse(ss.str());
    if (doc.at("schema").str != "fa-soak-repro-v1")
        fatal("'%s': unknown reproducer schema '%s'",
              json_path.c_str(), doc.at("schema").str.c_str());

    SoakCase c;
    SoakSpec &s = c.spec;
    s.seed = doc.at("seed").asU64();
    s.mode = soakParseMode(doc.at("mode").str);
    s.machine = doc.at("machine").str;
    s.threads = static_cast<unsigned>(doc.at("threads").asU64());
    s.blocks = static_cast<unsigned>(doc.at("blocks").asU64());
    s.counters = static_cast<unsigned>(doc.at("counters").asU64());
    s.progressWindow = doc.at("progressWindow").asU64();
    s.maxCycles = doc.at("maxCycles").asU64();
    // Absent in pre-fasan reproducers: default off.
    if (const JsonValue *sz = doc.find("sanitize"))
        s.sanitize = sz->boolean;
    // Absent in pre-farace reproducers: default off.
    if (const JsonValue *rc = doc.find("race"))
        s.race = rc->boolean;
    // Absent unless the seed was quarantined for hanging.
    if (const JsonValue *wd = doc.find("wallDeadlineSec"))
        s.wallDeadlineSec = wd->number;
    const JsonValue &ch = doc.at("chaos");
    s.chaos.seed = ch.at("seed").asU64();
    auto u = [&ch](const char *k) {
        return static_cast<unsigned>(ch.at(k).asU64());
    };
    s.chaos.delayProb = u("delayProb");
    s.chaos.delayMaxCycles = u("delayMaxCycles");
    s.chaos.reorderProb = u("reorderProb");
    s.chaos.stuckLockProb = u("stuckLockProb");
    s.chaos.stuckLockCycles = u("stuckLockCycles");
    s.chaos.squashStormProb = u("squashStormProb");
    s.chaos.evictPressureProb = u("evictPressureProb");
    s.chaos.dropUnlockProb = u("dropUnlockProb");
    s.chaos.fwdCapJitterProb = u("fwdCapJitterProb");

    fs::path dir = fs::path(json_path).parent_path();
    for (const JsonValue &pf : doc.at("programs").arr)
        c.programs.push_back(
            isa::assembleFile((dir / pf.str).string()));
    for (const JsonValue &v : doc.at("expectedCounters").arr)
        c.expectedCounters.push_back(
            static_cast<std::int64_t>(v.number));

    if (recorded_signature)
        *recorded_signature = doc.at("signature").str;
    return c;
}

} // namespace fa::chaos
