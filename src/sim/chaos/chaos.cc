#include "sim/chaos/chaos.hh"

#include <sstream>
#include <stdexcept>

namespace fa::chaos {

namespace {

/** Stable per-class stream ids (mixed into the engine seed). Order is
 * part of the reproducer format: renumbering breaks saved replays. */
enum ClassId : std::uint64_t
{
    kCoherenceDelay = 0x11,
    kQueueReorder = 0x22,
    kStuckLock = 0x33,
    kSquashStorm = 0x44,
    kEvictPressure = 0x55,
    kDropUnlock = 0x66,
    kFwdCapJitter = 0x77,
};

std::uint64_t
stuckKey(CoreId core, Addr line)
{
    return mix64(static_cast<std::uint64_t>(core) + 1, line);
}

} // namespace

bool
ChaosConfig::anyEnabled() const
{
    return delayProb || reorderProb || stuckLockProb || squashStormProb ||
           evictPressureProb || dropUnlockProb || fwdCapJitterProb;
}

std::string
ChaosConfig::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    if (delayProb)
        os << " delay=" << delayProb << "/" << kProbDen
           << "(max " << delayMaxCycles << "c)";
    if (reorderProb)
        os << " reorder=" << reorderProb << "/" << kProbDen;
    if (stuckLockProb)
        os << " stuck=" << stuckLockProb << "/" << kProbDen
           << "(" << stuckLockCycles << "c)";
    if (squashStormProb)
        os << " storm=" << squashStormProb << "/" << kProbDen;
    if (evictPressureProb)
        os << " evict=" << evictPressureProb << "/" << kProbDen;
    if (dropUnlockProb)
        os << " dropUnlock=" << dropUnlockProb << "/" << kProbDen;
    if (fwdCapJitterProb)
        os << " fwdJitter=" << fwdCapJitterProb << "/" << kProbDen;
    if (!anyEnabled())
        os << " (all classes off)";
    return os.str();
}

ChaosConfig
chaosProfile(const std::string &name, std::uint64_t seed)
{
    ChaosConfig c;
    c.seed = seed;
    if (name == "none") {
        // all zero: engine attachable but silent (zero-overhead tests)
    } else if (name == "coherence") {
        c.delayProb = 96;
        c.delayMaxCycles = 64;
        c.reorderProb = 128;
    } else if (name == "locks") {
        c.stuckLockProb = 64;
        c.stuckLockCycles = 96;
    } else if (name == "squash") {
        c.squashStormProb = 12;
    } else if (name == "pressure") {
        c.evictPressureProb = 128;
    } else if (name == "fwd") {
        c.fwdCapJitterProb = 256;
    } else if (name == "all") {
        // Everything except the injected bug: runs must stay live and
        // TSO-clean under this profile, so it is the soak default.
        c.delayProb = 64;
        c.delayMaxCycles = 48;
        c.reorderProb = 96;
        c.stuckLockProb = 32;
        c.stuckLockCycles = 64;
        c.squashStormProb = 8;
        c.evictPressureProb = 96;
        c.fwdCapJitterProb = 128;
    } else if (name == "buggy_unlock") {
        // The deliberate simulator bug: storms create lock-holding
        // squashes, dropUnlock leaks one of their lines.
        c.squashStormProb = 24;
        c.dropUnlockProb = 512;
    } else {
        throw std::invalid_argument("unknown chaos profile: " + name);
    }
    return c;
}

const char *
chaosProfileNames()
{
    return "none, coherence, locks, squash, pressure, fwd, all, buggy_unlock";
}

ChaosEngine::ChaosEngine(const ChaosConfig &config)
    : cfg(config),
      rngDelay(mix64(config.seed, kCoherenceDelay)),
      rngReorder(mix64(config.seed, kQueueReorder)),
      rngStuck(mix64(config.seed, kStuckLock)),
      rngStorm(mix64(config.seed, kSquashStorm)),
      rngEvict(mix64(config.seed, kEvictPressure)),
      rngDrop(mix64(config.seed, kDropUnlock)),
      rngFwd(mix64(config.seed, kFwdCapJitter))
{
}

Cycle
ChaosEngine::coherenceDelay(Addr line)
{
    if (!cfg.delayProb)
        return 0;
    (void)line;
    if (!rngDelay.chance(cfg.delayProb, kProbDen))
        return 0;
    Cycle extra = 1 + rngDelay.below(cfg.delayMaxCycles);
    ++cnt.coherenceDelays;
    cnt.delayCyclesAdded += extra;
    return extra;
}

bool
ChaosEngine::reorderQueued(Addr line)
{
    if (!cfg.reorderProb)
        return false;
    (void)line;
    if (!rngReorder.chance(cfg.reorderProb, kProbDen))
        return false;
    ++cnt.queueReorders;
    return true;
}

bool
ChaosEngine::lockStuck(CoreId core, Addr line, Cycle now)
{
    if (!cfg.stuckLockProb)
        return false;
    auto &st = stuck[stuckKey(core, line)];
    if (now < st.stuckUntil) {
        ++cnt.stuckLockDenials;
        return true;
    }
    // Rate-limit fresh rolls: a denied invalidation retries every
    // cycle, so rolling per retry would compound the probability.
    if (now < st.nextRollAt)
        return false;
    st.nextRollAt = now + cfg.stuckLockCycles;
    if (!rngStuck.chance(cfg.stuckLockProb, kProbDen))
        return false;
    st.stuckUntil = now + cfg.stuckLockCycles;
    ++cnt.stuckLockWindows;
    ++cnt.stuckLockDenials;
    return true;
}

bool
ChaosEngine::squashStormTick(CoreId core)
{
    if (!cfg.squashStormProb)
        return false;
    (void)core;
    if (!rngStorm.chance(cfg.squashStormProb, kProbDen))
        return false;
    ++cnt.squashStorms;
    return true;
}

unsigned
ChaosEngine::stormVictimIndex(unsigned count)
{
    return count <= 1 ? 0 : static_cast<unsigned>(rngStorm.below(count));
}

bool
ChaosEngine::evictPressureTick(CoreId core)
{
    if (!cfg.evictPressureProb)
        return false;
    (void)core;
    if (!rngEvict.chance(cfg.evictPressureProb, kProbDen))
        return false;
    ++cnt.evictPressureProbes;
    return true;
}

unsigned
ChaosEngine::evictPressureWay()
{
    return 1 + static_cast<unsigned>(rngEvict.below(8));
}

bool
ChaosEngine::dropUnlock(CoreId core)
{
    if (!cfg.dropUnlockProb)
        return false;
    (void)core;
    if (!rngDrop.chance(cfg.dropUnlockProb, kProbDen))
        return false;
    ++cnt.droppedUnlocks;
    return true;
}

unsigned
ChaosEngine::fwdCapJitter(unsigned chain, unsigned cap)
{
    if (!cfg.fwdCapJitterProb)
        return cap;
    // Only perturb decisions actually near the boundary; rolling on
    // every short-chain forward would drain the stream for nothing.
    if (chain + 2 < cap)
        return cap;
    if (!rngFwd.chance(cfg.fwdCapJitterProb, kProbDen))
        return cap;
    ++cnt.fwdCapJitters;
    unsigned jittered = rngFwd.chance(1, 2) ? cap + 1 : cap - 1;
    return jittered < 1 ? 1 : jittered;
}

std::uint64_t
ChaosEngine::Counts::total() const
{
    return coherenceDelays + queueReorders + stuckLockWindows +
           squashStorms + evictPressureProbes + droppedUnlocks +
           fwdCapJitters;
}

std::string
ChaosEngine::summary() const
{
    std::ostringstream os;
    os << "chaos: " << cfg.describe() << "\n"
       << "  coherenceDelays:     " << cnt.coherenceDelays
       << " (+" << cnt.delayCyclesAdded << " cycles)\n"
       << "  queueReorders:       " << cnt.queueReorders << "\n"
       << "  stuckLockWindows:    " << cnt.stuckLockWindows
       << " (" << cnt.stuckLockDenials << " denials)\n"
       << "  squashStorms:        " << cnt.squashStorms << "\n"
       << "  evictPressureProbes: " << cnt.evictPressureProbes << "\n"
       << "  droppedUnlocks:      " << cnt.droppedUnlocks << "\n"
       << "  fwdCapJitters:       " << cnt.fwdCapJitters << "\n";
    return os.str();
}

} // namespace fa::chaos
