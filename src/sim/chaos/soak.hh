/**
 * @file
 * Seeded liveness-certification harness ("soak") built on the chaos
 * engine. One soak case is derived entirely from a 64-bit seed:
 *
 *   seed -> { threads, blocks, counters } dims
 *        -> one randomized atomic-heavy program per thread
 *             (workloads/synthetic.cc, with known counter totals)
 *        -> a fault schedule (chaos profile materialized with a
 *           seed-derived engine seed)
 *
 * The case is then simulated with the memory trace recorded and the
 * run certified on four axes:
 *
 *   1. forward progress — the run finishes inside the (generous)
 *      progress window; the §3.2.5 watchdog, not the global abort,
 *      must break every induced wedge,
 *   2. cycle budget — no unbounded livelock under the cycle limit,
 *   3. x86-TSO — the axiomatic checker passes on the recorded trace,
 *   4. atomicity — every shared counter ends at exactly the sum of
 *      the generated increments.
 *
 * On failure the harness greedily shrinks the case — fewer threads,
 * fewer blocks, fewer counters, fault classes zeroed one at a time —
 * while the failure signature still reproduces, then writes a
 * minimal reproducer: one `.fasm` per thread (isa::writeAsm) plus a
 * JSON fault file (schema "fa-soak-repro-v1") that replays exactly.
 */

#ifndef FA_SIM_CHAOS_SOAK_HH
#define FA_SIM_CHAOS_SOAK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/core_config.hh"
#include "isa/program.hh"
#include "sim/chaos/chaos.hh"

namespace fa::chaos {

/** Fully materialized parameters of one soak case. Plain data: the
 * shrinker mutates fields and the reproducer file round-trips it. */
struct SoakSpec
{
    std::uint64_t seed = 1;     ///< master seed (programs + machine)
    unsigned threads = 2;       ///< cores / programs
    unsigned blocks = 8;        ///< synthetic-program blocks per thread
    unsigned counters = 4;      ///< shared atomic counters
    core::AtomicsMode mode = core::AtomicsMode::kFreeFwd;
    std::string machine = "tiny";  ///< preset name (tiny forces evictions)
    ChaosConfig chaos;          ///< materialized fault schedule
    /** Arm fasan (analysis/sanitizer): §3.2/§3.3 invariants checked
     * online; a violation fails the run with signature
     * "fasan:<invariant>". */
    bool sanitize = false;
    /** Run farace (analysis/race) over the recorded trace when the
     * run is otherwise clean: a predicted atomicity-window violation
     * fails the case with signature "race:atomicity" and shrinks
     * like any other failure class. */
    bool race = false;

    /** Progress window: must exceed the worst-case backed-off
     * watchdog timeout, else a healthy recovery reads as a wedge. */
    Cycle progressWindow = 500'000;
    Cycle maxCycles = 4'000'000;
    /** Host wall-clock budget for the run (MachineConfig::
     * wallDeadlineSec); 0 = unbounded. A tripped budget fails with
     * signature "wall-deadline" — the harness quarantines such hung
     * seeds (reproducer, no shrink) instead of aborting the corpus. */
    double wallDeadlineSec = 0.0;
};

/** Derive a full case from (seed, mode, profile): dims come from a
 * seed-derived Rng, the fault schedule from chaosProfile(profile,
 * mix64(seed, ...)). */
SoakSpec makeSoakSpec(std::uint64_t seed, core::AtomicsMode mode,
                      const std::string &profile);

/** A spec with its generated (or reloaded) programs and the expected
 * final value of each shared counter. */
struct SoakCase
{
    SoakSpec spec;
    std::vector<isa::Program> programs;
    std::vector<std::int64_t> expectedCounters;
};

/** Generate the programs for `spec` and sum the per-thread counter
 * increments into the expected totals. */
SoakCase buildSoakCase(const SoakSpec &spec);

/** Outcome of one certified run. */
struct SoakResult
{
    bool ok = false;
    /** Stable failure class the shrinker matches on: "no-progress",
     * "cycle-limit", "tso", or "invariant:counter<N>". Empty on ok. */
    std::string signature;
    std::string detail;         ///< human-readable failure specifics
    Cycle cycles = 0;
    std::uint64_t watchdogTimeouts = 0;
    std::uint64_t chaosInjections = 0;
    std::string forensics;      ///< snapshot captured during the run
};

/** Simulate and certify one case. */
SoakResult runSoakCase(const SoakCase &c);

/**
 * Greedily shrink a failing spec while `signature` reproduces:
 * threads, blocks, counters shrink first, then fault classes are
 * zeroed one at a time and their magnitude knobs halved. Returns the
 * smallest spec found (possibly the input) and, via `steps`, the
 * number of accepted reductions.
 */
SoakSpec shrinkSoakCase(const SoakSpec &failing,
                        const std::string &signature,
                        unsigned *steps = nullptr);

/**
 * Write a reproducer into `dir`: `<base>.t<K>.fasm` per thread plus
 * `<base>.json` referencing them (paths relative to the JSON file).
 * Returns the JSON path.
 */
std::string writeReproducer(const SoakCase &c, const SoakResult &r,
                            const std::string &dir,
                            const std::string &base);

/** Reload a reproducer written by writeReproducer. The returned
 * case's programs come from the `.fasm` files, so a replay exercises
 * the exact on-disk artifact. Also returns the recorded signature
 * via `recorded_signature` when non-null. */
SoakCase loadReproducer(const std::string &json_path,
                        std::string *recorded_signature = nullptr);

/** Parse "fenced|spec|free|freefwd" (throws FatalError otherwise). */
core::AtomicsMode soakParseMode(const std::string &name);

} // namespace fa::chaos

#endif // FA_SIM_CHAOS_SOAK_HH
