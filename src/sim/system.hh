/**
 * @file
 * A simulated multicore system: N cores over one coherent hierarchy,
 * advanced in lock-step cycles until every thread halts.
 */

#ifndef FA_SIM_SYSTEM_HH
#define FA_SIM_SYSTEM_HH

#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sanitizer/fasan.hh"
#include "analysis/trace.hh"
#include "common/histogram.hh"
#include "common/host_prof.hh"
#include "common/span_trace.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/core.hh"
#include "core/pipeview.hh"
#include "isa/program.hh"
#include "mem/mem_system.hh"
#include "sim/chaos/chaos.hh"
#include "sim/config.hh"
#include "sim/interval_stats.hh"

namespace fa::sim {

/** Initial memory contents: (address, value) pairs. */
using MemInit = std::vector<std::pair<Addr, std::int64_t>>;

/** Outcome of System::run. */
struct RunOutcome
{
    bool finished = false;   ///< all threads halted
    Cycle cycles = 0;
    std::string failure;     ///< set when finished is false
    /** Pipeline-state forensic report (sim/forensics.hh) captured at
     * the no-progress abort, or at the first watchdog firing when
     * cfg.watchdogForensics is set. Empty otherwise. */
    std::string forensics;
};

class System
{
  public:
    /**
     * @param cfg   machine configuration (cfg.cores must equal the
     *              number of programs)
     * @param progs one validated program per core
     * @param seed  master seed; each thread's kRand stream derives
     *              from it deterministically
     */
    System(const MachineConfig &cfg,
           const std::vector<isa::Program> &progs, std::uint64_t seed);

    /** Preload the functional memory image. */
    void initMemory(const MemInit &init);

    /**
     * Run until all cores halt, the cycle limit is hit, or global
     * progress stops (a deadlock the watchdog failed to break —
     * always a simulator bug, reported rather than hidden).
     */
    RunOutcome run(Cycle max_cycles = 50'000'000);

    /** Advance exactly one cycle (tests drive this directly). */
    void stepCycle();

    Cycle cycles() const { return now; }
    bool allHalted() const;

    std::int64_t readWord(Addr a) const { return memSys->readWord(a); }

    unsigned numCores() const
    {
        return static_cast<unsigned>(cores.size());
    }
    core::Core &coreAt(unsigned i) { return *cores.at(i); }
    const core::Core &coreAt(unsigned i) const { return *cores.at(i); }
    mem::MemSystem &mem() { return *memSys; }
    const mem::MemSystem &mem() const { return *memSys; }

    /** Core statistics summed over all cores. */
    CoreStats coreTotals() const;

    /** Latency histograms merged over all cores. */
    LatencyHists histTotals() const;

    const MachineConfig &config() const { return cfg; }

    /** The programs the cores execute (forensics classification). */
    const std::vector<isa::Program> &programs() const
    {
        return programsVec;
    }

    /** The memory-event trace, when cfg.recordMemTrace is set
     * (nullptr otherwise). */
    const analysis::TraceRecorder *trace() const { return tracer.get(); }

    // --- observability ----------------------------------------------------

    /** Attach an external pipeline recorder to every core (tests;
     * overrides cfg.pipeviewPath). Null detaches. */
    void attachPipeView(core::PipeViewRecorder *pv);

    /** Attach an external interval-stats writer (tests; overrides
     * cfg.intervalStatsPath). Null detaches. The System snapshots it
     * at every period boundary; call finish() yourself when driving
     * stepCycle() directly. */
    void attachIntervalStats(IntervalStatsWriter *w)
    {
        intervalStats = w;
    }

    /** Attach an external span tracer to every core and the memory
     * system (tests; overrides cfg.traceSpansPath). Null detaches.
     * The caller emits the preamble; run() closes the trace, but
     * call finish() yourself when driving stepCycle() directly. */
    void attachSpanTrace(SpanTracer *st);

    /** The host profiler built when cfg.hostProfile is set (nullptr
     * otherwise). Finished by run(); read the per-phase table from
     * it after the run. */
    const HostProfiler *profiler() const { return hostProf.get(); }

    /** Forensic report captured during run(); empty when none. */
    const std::string &forensics() const { return lastForensics; }

    // --- fault injection ---------------------------------------------------

    /** The engine built from cfg.chaos (nullptr when no fault class
     * is armed). */
    const chaos::ChaosEngine *chaosEngine() const { return chaosEng.get(); }

    /** Attach an external engine to every core and the memory system
     * (tests; overrides cfg.chaos). Null detaches. */
    void attachChaos(chaos::ChaosEngine *engine);

    // --- sanitizer ---------------------------------------------------------

    /** The invariant sanitizer built when cfg.sanitize is set
     * (nullptr otherwise). A failed() sanitizer aborts run() through
     * the forensics path. */
    const analysis::Fasan *sanitizer() const { return fasanEng.get(); }

  private:
    void maybeSnapshotInterval();
    /** Flush every end-of-run sink (interval stats, span trace,
     * host profiler) at one of run()'s exits. */
    void finishSinks();

    MachineConfig cfg;
    std::vector<isa::Program> programsVec;
    std::unique_ptr<mem::MemSystem> memSys;
    std::unique_ptr<analysis::TraceRecorder> tracer;
    std::unique_ptr<chaos::ChaosEngine> chaosEng;
    std::unique_ptr<analysis::Fasan> fasanEng;
    std::vector<std::unique_ptr<core::Core>> cores;
    Cycle now = 0;

    // Owned observability sinks (cfg.pipeviewPath / intervalStatsPath).
    std::unique_ptr<std::ofstream> pipeviewFile;
    std::unique_ptr<core::PipeViewRecorder> ownPipeview;
    std::unique_ptr<std::ofstream> intervalFile;
    std::unique_ptr<IntervalStatsWriter> ownIntervalStats;
    IntervalStatsWriter *intervalStats = nullptr;
    std::unique_ptr<std::ofstream> spanTraceFile;
    std::unique_ptr<SpanTracer> ownSpanTrace;
    SpanTracer *spanTrace = nullptr;
    std::unique_ptr<HostProfiler> hostProf;
    bool memTraceWritten = false;

    std::string lastForensics;
};

} // namespace fa::sim

#endif // FA_SIM_SYSTEM_HH
