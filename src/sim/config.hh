/**
 * @file
 * Whole-machine configuration presets (paper Table 1).
 */

#ifndef FA_SIM_CONFIG_HH
#define FA_SIM_CONFIG_HH

#include <string>

#include "common/types.hh"
#include "core/core_config.hh"
#include "mem/mem_config.hh"
#include "sim/chaos/chaos.hh"

namespace fa::sim {

/** A multicore machine: N identical cores over one hierarchy. */
struct MachineConfig
{
    std::string name = "icelake";
    unsigned cores = 32;
    core::CoreConfig core;
    mem::MemConfig mem;

    /** Record every committed memory event for the axiomatic TSO
     * checker (analysis/tso_checker.hh). Off by default: recording
     * costs memory proportional to committed instructions and the
     * cores pay a branch per commit. */
    bool recordMemTrace = false;

    /** Write the recorded memory-event and synchronization streams
     * as one fa-mem-trace-v1 document (analysis/trace_io.hh) here at
     * the end of the run. Implies recordMemTrace; empty disables.
     * farace --trace reads the dump back for offline analysis. */
    std::string memTracePath;

    /** Identity label stored in the dump's "workload" field. */
    std::string memTraceLabel;

    // --- observability (all off by default; zero cost when off) ----------

    /** Write a gem5-O3PipeView-compatible per-instruction lifecycle
     * trace here (viewable in Konata). Empty disables. */
    std::string pipeviewPath;

    /** Write per-interval CoreStats/MemStats deltas as JSON Lines
     * here. Empty disables. */
    std::string intervalStatsPath;

    /** Snapshot period for intervalStatsPath, in cycles. */
    Cycle intervalPeriod = 10'000;

    /** Capture a forensic pipeline snapshot (sim/forensics.hh) the
     * first time any core's deadlock watchdog fires. */
    bool watchdogForensics = false;

    /** Global progress window: if no core commits for this many
     * cycles the run aborts with a forensic report (a deadlock the
     * watchdog failed to break is always a simulator bug). Small
     * values let deadlock tests trip the abort quickly. */
    Cycle progressWindow = 2'000'000;

    /**
     * Cooperative host wall-clock deadline for System::run, in
     * seconds; 0 disables. Checked every few hundred simulated
     * cycles: when the budget is exhausted the run aborts with the
     * deterministic failure string "host wall-clock deadline
     * (<budget>s) exceeded". The resilience layer (sim/resilience)
     * uses this to bound hung or pathological campaign jobs; the
     * elapsed time never enters the failure text, so quarantine
     * records stay byte-stable across runs.
     */
    double wallDeadlineSec = 0.0;

    /** Fault-injection schedule (sim/chaos/chaos.hh). The engine is
     * constructed and wired into every core and the memory system
     * only when a fault class is armed; otherwise runs are
     * bit-identical to a build without the chaos subsystem. */
    chaos::ChaosConfig chaos;

    /** Arm fasan, the cycle-level invariant sanitizer
     * (analysis/sanitizer/fasan.hh): §3.2/§3.3 invariants are
     * asserted online and a violation aborts the run through the
     * forensics path. Off by default; when off, runs are
     * cycle-identical to a build without the sanitizer. */
    bool sanitize = false;

    /** Write a faprof transaction-span trace (Chrome trace-event /
     * Perfetto JSON, schema fa-trace-v1) here: one span per atomic
     * from dispatch through lock acquisition, commit and SB drain,
     * with denial/retry/fwd child events. Empty disables; when off,
     * runs are bit-identical to a build without the tracer. */
    std::string traceSpansPath;

    /** Arm the faprof host-time profiler: sampled scoped timers
     * attribute cycle-loop wall time to components and the RunResult
     * gains a "hostProfile" section. Off by default; when off, runs
     * are bit-identical (cycles and RunResult JSON) to a build
     * without the profiler. */
    bool hostProfile = false;

    /** Sampling period for hostProfile, in cycles: timers run only
     * when `cycle % profilePeriod == 0`, bounding overhead. */
    Cycle profilePeriod = 64;

    /** Icelake-like preset: the paper's evaluated system (Table 1).
     * 352-entry ROB, 128/72 LQ/SQ, 48KB 12-way L1D. */
    static MachineConfig icelake(unsigned cores = 32);

    /** Skylake-like preset used in Figure 1: 224-entry ROB. */
    static MachineConfig skylake(unsigned cores = 32);

    /** Sandy-Bridge-like preset (168-entry ROB) for the ROB-size
     * ablation; matches the machine of Rajaram et al. [41]. */
    static MachineConfig sandybridge(unsigned cores = 32);

    /** Small caches and short latencies: unit tests that need to
     * force evictions, recalls and inclusion victims quickly. */
    static MachineConfig tiny(unsigned cores = 4);
};

} // namespace fa::sim

#endif // FA_SIM_CONFIG_HH
