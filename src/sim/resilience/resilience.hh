/**
 * @file
 * Campaign resilience layer: structured per-job failure capture,
 * bounded retry with deterministic re-execution, quarantine with
 * exact replay recipes, journaled resume, and graceful
 * signal-driven shutdown — all on top of the sweep engine.
 *
 * Contracts (resilience_test + the CI resilience job assert these):
 *
 *  - A job that throws, trips its wall-clock deadline, or produces a
 *    corrupt result becomes a structured failure in its own outcome
 *    slot; the other jobs' completed results are always preserved
 *    and aggregated.
 *  - A failing job is retried up to `retries` extra times with its
 *    exact original spec (same seed — jobs are pure functions of
 *    their spec, so a deterministic failure fails identically and a
 *    host-transient one recovers). Jobs that exhaust their attempts
 *    are quarantined with a replay recipe (a runnable fasim command
 *    line) and the campaign completes partially.
 *  - With a journal armed, every completed job is appended (fsync'd)
 *    as it finishes; a resumed campaign restores those jobs via
 *    RunResult::fromJson and re-runs only the rest. Because fromJson
 *    is an exact inverse of toJson, resumed per-job JSONL and every
 *    aggregate are bit-identical to an uninterrupted run.
 *  - When the stop signal fires (SIGINT/SIGTERM wired in by the
 *    tool), workers stop dispatching, in-flight jobs drain, the
 *    journal is flushed, and the partial report comes back with
 *    `signal` set.
 *  - The seeded host-fault injector (`--inject`) deterministically
 *    throws, stalls, or corrupts chosen jobs so tests and CI can
 *    exercise every one of these paths without a flaky dependency
 *    on real host faults.
 */

#ifndef FA_SIM_RESILIENCE_RESILIENCE_HH
#define FA_SIM_RESILIENCE_RESILIENCE_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/sweep/sweep.hh"

namespace fa::sim::resilience {

/** What the injector does to a matched (job, attempt). */
enum class FaultKind : std::uint8_t {
    kNone,     ///< run normally
    kThrow,    ///< throw FatalError from the job body
    kStall,    ///< spin (cooperatively) until signal or budget
    kCorrupt,  ///< return a detectably-invalid RunResult
};

/**
 * Deterministic host-fault plan, parsed from an `--inject` spec:
 *
 *   SPEC    := DIRECTIVE ("," DIRECTIVE)*
 *   DIRECTIVE := KIND ":" JOB ["x" N]   fault job JOB; with xN only
 *                                       its first N attempts
 *              | "rand:" KIND ":" RATE ":" SEED
 *                                       fault each job independently
 *                                       with probability RATE (hash
 *                                       of SEED and the job index —
 *                                       reproducible, order-free)
 *   KIND    := "throw" | "stall" | "corrupt"
 *
 * Examples: "throw:3", "throw:0x1,corrupt:5", "rand:throw:0.2:42".
 */
struct FaultPlan
{
    struct Directive
    {
        FaultKind kind = FaultKind::kNone;
        std::size_t job = 0;
        /** Fail only the first `attempts` attempts; 0 = all. */
        unsigned attempts = 0;
    };

    std::vector<Directive> directives;
    FaultKind randKind = FaultKind::kNone;
    double randRate = 0.0;
    std::uint64_t randSeed = 0;

    /** Parse a spec ("" = empty plan); FatalError on bad syntax. */
    static FaultPlan parse(const std::string &spec);

    bool empty() const
    {
        return directives.empty() && randKind == FaultKind::kNone;
    }

    /** Fault for `job`'s `attempt` (1-based); kNone = run normally. */
    FaultKind actionFor(std::size_t job, unsigned attempt) const;
};

/** One job that exhausted its attempts. */
struct QuarantineRecord
{
    std::size_t jobIndex = 0;
    std::string jobKey;
    std::string error;     ///< last attempt's failure text
    unsigned attempts = 0;
    std::string replay;    ///< exact re-run command line
};

struct ResilienceOptions
{
    std::string campaign = "sweep";  ///< journal-header identity
    /** Extra attempts after the first failure. */
    unsigned retries = 1;
    /** Per-job host wall-clock budget (MachineConfig::
     * wallDeadlineSec); 0 = unbounded. */
    double jobTimeoutSec = 0.0;
    std::string journalPath;     ///< "" = no journal
    bool resume = false;         ///< restore completed jobs first
    std::string quarantinePath;  ///< "" = don't write the file
    std::string inject;          ///< FaultPlan spec
    /** Signal number lands here (from the tool's handler); non-zero
     * stops dispatch and drains in-flight jobs. */
    const std::atomic<int> *stopSignal = nullptr;
};

/** A resilient campaign's full result. */
struct ResilientReport
{
    sweep::SweepReport report;
    std::vector<QuarantineRecord> quarantined;
    std::size_t restored = 0;  ///< jobs restored from the journal
    std::size_t retried = 0;   ///< re-dispatched job attempts
    std::size_t skipped = 0;   ///< never dispatched (signal)
    int signal = 0;            ///< interrupting signal, 0 = none
};

/** Stable identity of a job inside its campaign (the journal key):
 * every spec field that affects the result participates. */
std::string jobKey(const sweep::SweepJob &job);

/** Runnable single-job reproduction command (fasim flags). */
std::string replayRecipe(const sweep::SweepJob &job);

/** "" when `run` is plausible; else what is corrupt about it. The
 * cheap structural check that catches kCorrupt-class results before
 * they poison aggregates. */
std::string validateRunResult(const RunResult &run);

/** Run the campaign with the full resilience stack. */
ResilientReport runResilient(const std::vector<sweep::SweepJob> &jobs,
                             const ResilienceOptions &opts,
                             const sweep::SweepOptions &sweepOpts);

/** Append fa-quarantine-v1 JSONL records (one per quarantined job). */
void writeQuarantine(const ResilientReport &r, std::ostream &os);

/** The deterministic failure text of a job interrupted mid-stall by
 * the stop signal; such jobs are *not* journaled (they re-run on
 * resume, preserving bit-identical aggregates). */
extern const char *const kInterruptedError;

} // namespace fa::sim::resilience

#endif // FA_SIM_RESILIENCE_RESILIENCE_HH
