#include "sim/resilience/journal.hh"

#include <fstream>
#include <sstream>
#include <utility>

#ifdef _WIN32
#include <io.h>
#define fa_fileno _fileno
#define fa_fsync _commit
#else
#include <unistd.h>
#define fa_fileno fileno
#define fa_fsync fsync
#endif

#include "common/json.hh"
#include "common/log.hh"

namespace fa::sim::resilience {

Journal::~Journal()
{
    close();
}

Journal::Journal(Journal &&o) noexcept : f(o.f)
{
    o.f = nullptr;
}

Journal &
Journal::operator=(Journal &&o) noexcept
{
    if (this != &o) {
        close();
        f = o.f;
        o.f = nullptr;
    }
    return *this;
}

Journal
Journal::openAppend(const std::string &path,
                    const std::string &campaign, std::size_t njobs)
{
    Journal j;
    j.f = std::fopen(path.c_str(), "ab");
    if (!j.f)
        fatal("cannot open journal '%s' for appending", path.c_str());
    // Header only when the file is empty ("ab" positions at EOF).
    if (std::ftell(j.f) == 0) {
        std::ostringstream os;
        JsonWriter jw(os);
        jw.beginObject();
        jw.key("schema").value("fa-journal-v1");
        jw.key("campaign").value(campaign);
        jw.key("jobs").value(std::uint64_t{njobs});
        jw.endObject();
        os << "\n";
        const std::string line = os.str();
        std::fwrite(line.data(), 1, line.size(), j.f);
        std::fflush(j.f);
        fa_fsync(fa_fileno(j.f));
    }
    return j;
}

void
Journal::append(const std::string &jobKey, const std::string &runJson,
                double wallSec)
{
    if (!f)
        fatal("append to a closed journal");
    std::ostringstream os;
    os << "{\"job\":\"" << JsonWriter::escape(jobKey) << "\",";
    {
        // Reuse the writer's round-trip double formatting.
        std::ostringstream ws;
        JsonWriter jw(ws);
        jw.value(wallSec);
        os << "\"wallSec\":" << ws.str() << ",";
    }
    os << "\"run\":" << runJson << "}\n";
    const std::string line = os.str();
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size())
        fatal("short write to journal");
    if (std::fflush(f) != 0)
        fatal("cannot flush journal");
    fa_fsync(fa_fileno(f));
}

void
Journal::close()
{
    if (!f)
        return;
    std::fflush(f);
    fa_fsync(fa_fileno(f));
    std::fclose(f);
    f = nullptr;
}

bool
Journal::load(const std::string &path, JournalContents *out,
              std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open journal '" + path + "'";
        return false;
    }

    std::string line;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonValue doc;
        std::string perr;
        if (!JsonValue::tryParse(line, &doc, &perr)) {
            // A torn final record (crash mid-write) or stray bytes:
            // skip — the job it would have recorded simply re-runs.
            ++out->skippedLines;
            continue;
        }
        if (!sawHeader) {
            const JsonValue *schema = doc.find("schema");
            if (!schema || schema->str != "fa-journal-v1") {
                if (err)
                    *err = "'" + path +
                        "': first line is not an fa-journal-v1 header";
                return false;
            }
            out->campaign = doc.at("campaign").str;
            out->jobs = doc.at("jobs").asU64();
            sawHeader = true;
            continue;
        }
        const JsonValue *job = doc.find("job");
        const JsonValue *run = doc.find("run");
        if (!job || !run || !run->isObject()) {
            ++out->skippedLines;
            continue;
        }
        JournalRecord rec;
        // Re-serialization of a parsed subtree is not guaranteed
        // byte-stable, so slice the verbatim "run" text out of the
        // line instead: it always extends to the record's closing
        // brace.
        std::size_t runPos = line.find("\"run\":");
        if (runPos == std::string::npos ||
            line.back() != '}') {
            ++out->skippedLines;
            continue;
        }
        rec.runJson = line.substr(runPos + 6,
                                  line.size() - (runPos + 6) - 1);
        if (const JsonValue *w = doc.find("wallSec"))
            rec.wallSec = w->number;
        out->records[job->str] = std::move(rec);
    }
    if (!sawHeader) {
        if (err)
            *err = "'" + path + "': empty journal (no header line)";
        return false;
    }
    return true;
}

} // namespace fa::sim::resilience
