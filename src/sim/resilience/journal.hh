/**
 * @file
 * Append-only fsync'd campaign journal (schema "fa-journal-v1").
 *
 * One JSONL file per campaign run: a header line identifying the
 * campaign and job count, then one record per *completed* job
 * carrying the job's key and its full fa-run-result-v1 document
 * verbatim. Every append is fsync'd, so the journal survives
 * SIGKILL/power loss up to the last completed record.
 *
 *   {"schema":"fa-journal-v1","campaign":"fig1","jobs":52}
 *   {"job":"fig1|barnes|icelake|...","wallSec":1.25,"run":{...}}
 *
 * Resume contract: RunResult::fromJson is an exact inverse of
 * toJson, so a job restored from the journal re-serializes byte-for-
 * byte — a resumed campaign's per-job JSONL and every aggregate are
 * bit-identical to an uninterrupted run (resilience_test asserts
 * this).
 *
 * The reader is deliberately tolerant: a torn final line (the record
 * being written when the process died) or trailing garbage is
 * skipped, not fatal — those jobs simply re-run on resume.
 */

#ifndef FA_SIM_RESILIENCE_JOURNAL_HH
#define FA_SIM_RESILIENCE_JOURNAL_HH

#include <cstdio>
#include <map>
#include <string>

namespace fa::sim::resilience {

/** One journaled job completion. */
struct JournalRecord
{
    std::string runJson;   ///< verbatim fa-run-result-v1 text
    double wallSec = 0.0;  ///< host wall-clock of the recorded run
};

/** Parsed journal header + records, keyed by job key. */
struct JournalContents
{
    std::string campaign;
    std::size_t jobs = 0;       ///< job count the header declares
    std::size_t skippedLines = 0;  ///< torn/garbage lines ignored
    std::map<std::string, JournalRecord> records;
};

/**
 * Writer. Opens in append mode; when the file is new (or empty) the
 * header line is written first. Each append() is flushed and
 * fsync'd before returning, so a record is either fully on disk or
 * absent — never torn by a graceful shutdown.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;
    Journal(Journal &&o) noexcept;
    Journal &operator=(Journal &&o) noexcept;

    /** Open `path` for appending; writes the fa-journal-v1 header
     * when the file is empty. FatalError when unopenable. */
    static Journal openAppend(const std::string &path,
                              const std::string &campaign,
                              std::size_t njobs);

    /** Append one completed-job record and fsync it. */
    void append(const std::string &jobKey, const std::string &runJson,
                double wallSec);

    /** Final flush + fsync + close (also run by the destructor). */
    void close();

    bool isOpen() const { return f != nullptr; }

    /**
     * Tolerant reader: parse `path` into `out`. Returns false (with
     * `err`) only when the file cannot be opened or the header line
     * is missing/foreign; per-record parse failures are counted in
     * out->skippedLines and otherwise ignored.
     */
    static bool load(const std::string &path, JournalContents *out,
                     std::string *err = nullptr);

  private:
    std::FILE *f = nullptr;
};

} // namespace fa::sim::resilience

#endif // FA_SIM_RESILIENCE_JOURNAL_HH
