#include "sim/resilience/resilience.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sim/resilience/journal.hh"
#include "workloads/workload.hh"

namespace fa::sim::resilience {

const char *const kInterruptedError = "interrupted by signal";

namespace {

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

FaultKind
parseKind(const std::string &s)
{
    if (s == "throw")
        return FaultKind::kThrow;
    if (s == "stall")
        return FaultKind::kStall;
    if (s == "corrupt")
        return FaultKind::kCorrupt;
    fatal("unknown fault kind '%s' in --inject (throw|stall|corrupt)",
          s.c_str());
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size())
        fatal("bad %s '%s' in --inject", what, s.c_str());
    return v;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    if (spec.empty())
        return plan;
    for (const std::string &tok : splitOn(spec, ',')) {
        auto parts = splitOn(tok, ':');
        if (parts.size() == 4 && parts[0] == "rand") {
            plan.randKind = parseKind(parts[1]);
            char *end = nullptr;
            plan.randRate = std::strtod(parts[2].c_str(), &end);
            if (parts[2].empty() ||
                end != parts[2].c_str() + parts[2].size() ||
                plan.randRate < 0.0 || plan.randRate > 1.0)
                fatal("bad rand rate '%s' in --inject (want [0,1])",
                      parts[2].c_str());
            plan.randSeed = parseU64(parts[3], "rand seed");
        } else if (parts.size() == 2) {
            Directive d;
            d.kind = parseKind(parts[0]);
            std::string job = parts[1];
            // JOB["x"N]: with the suffix only the first N attempts
            // fail (the bounded-retry success path in tests).
            std::size_t x = job.find('x');
            if (x != std::string::npos) {
                d.attempts = static_cast<unsigned>(
                    parseU64(job.substr(x + 1), "attempt count"));
                job = job.substr(0, x);
            }
            d.job = static_cast<std::size_t>(
                parseU64(job, "job index"));
            plan.directives.push_back(d);
        } else {
            fatal("bad --inject directive '%s' (want KIND:JOB[xN] or "
                  "rand:KIND:RATE:SEED)",
                  tok.c_str());
        }
    }
    return plan;
}

FaultKind
FaultPlan::actionFor(std::size_t job, unsigned attempt) const
{
    for (const Directive &d : directives) {
        if (d.job == job && (d.attempts == 0 || attempt <= d.attempts))
            return d.kind;
    }
    if (randKind != FaultKind::kNone) {
        // Hash, not a stream: each job's verdict is independent of
        // every other job and of execution order.
        double u = static_cast<double>(
                       mix64(randSeed, job + 1) >> 11) *
            (1.0 / 9007199254740992.0);
        if (u < randRate)
            return randKind;
    }
    return FaultKind::kNone;
}

std::string
jobKey(const sweep::SweepJob &job)
{
    return job.bench + "|" + job.workload + "|" + job.label + "|" +
        job.machine.name + "|" + core::atomicsModeIdent(job.mode) +
        "|" + std::to_string(job.cores) + "|" +
        strfmt("%.17g", job.scale) + "|" +
        std::to_string(job.seedIndex) + "|" +
        std::to_string(job.seed) + "|" + std::to_string(job.maxCycles);
}

std::string
replayRecipe(const sweep::SweepJob &job)
{
    return "fasim -w " + job.workload + " -c " +
        std::to_string(job.cores) + " -m " +
        core::atomicsModeIdent(job.mode) + " --machine " +
        job.machine.name + " --scale " + strfmt("%g", job.scale) +
        " --seed " + std::to_string(job.seed);
}

std::string
validateRunResult(const RunResult &run)
{
    if (run.finished && run.cycles == 0)
        return "finished run reports 0 cycles";
    return "";
}

ResilientReport
runResilient(const std::vector<sweep::SweepJob> &jobs,
             const ResilienceOptions &opts,
             const sweep::SweepOptions &sweepOpts)
{
    using clock = std::chrono::steady_clock;

    ResilientReport rr;
    rr.report.outcomes.resize(jobs.size());
    sweep::Pool pool(sweepOpts.threads);
    rr.report.threads = pool.threads();
    const FaultPlan plan = FaultPlan::parse(opts.inject);

    std::vector<bool> done(jobs.size(), false);
    std::vector<unsigned> attempts(jobs.size(), 0);
    std::vector<std::string> lastError(jobs.size());

    if (opts.resume) {
        if (opts.journalPath.empty())
            fatal("resume requires a journal path");
        JournalContents jc;
        std::string err;
        if (!Journal::load(opts.journalPath, &jc, &err))
            fatal("resume: %s", err.c_str());
        if (jc.campaign != opts.campaign || jc.jobs != jobs.size())
            fatal("resume: journal '%s' records campaign '%s' with "
                  "%zu job(s), but this run is campaign '%s' with "
                  "%zu job(s)",
                  opts.journalPath.c_str(), jc.campaign.c_str(),
                  jc.jobs, opts.campaign.c_str(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            auto it = jc.records.find(jobKey(jobs[i]));
            if (it == jc.records.end())
                continue;
            sweep::SweepOutcome &out = rr.report.outcomes[i];
            out.job = jobs[i];
            out.run = RunResult::fromJson(
                JsonValue::parse(it->second.runJson));
            out.wallSec = it->second.wallSec;
            done[i] = true;
            ++rr.restored;
        }
    }

    Journal journal;
    if (!opts.journalPath.empty())
        journal = Journal::openAppend(opts.journalPath, opts.campaign,
                                      jobs.size());
    std::mutex journalMu;

    auto interrupted = [&] {
        return opts.stopSignal &&
            opts.stopSignal->load(std::memory_order_relaxed) != 0;
    };

    auto t0 = clock::now();
    for (unsigned pass = 0; pass <= opts.retries && !interrupted();
         ++pass) {
        std::vector<std::size_t> pending;
        for (std::size_t i = 0; i < jobs.size(); ++i)
            if (!done[i])
                pending.push_back(i);
        if (pending.empty())
            break;
        if (pass > 0)
            rr.retried += pending.size();

        auto statuses = pool.runCollect(
            pending.size(),
            [&](std::size_t k) {
                const std::size_t i = pending[k];
                const sweep::SweepJob &job = jobs[i];
                const unsigned attempt = ++attempts[i];
                const FaultKind fault = plan.actionFor(i, attempt);
                if (fault == FaultKind::kThrow)
                    fatal("injected fault: throw");
                if (fault == FaultKind::kStall) {
                    // Hold the worker slot until the stop signal
                    // (drained as "interrupted", never journaled) or
                    // the job budget expires (a plain failure that
                    // retries and then quarantines).
                    const double budget = opts.jobTimeoutSec > 0.0
                        ? opts.jobTimeoutSec
                        : 600.0;
                    auto s0 = clock::now();
                    for (;;) {
                        if (interrupted())
                            fatal("%s", kInterruptedError);
                        if (std::chrono::duration<double>(
                                clock::now() - s0)
                                .count() > budget)
                            fatal("injected stall: job wall-clock "
                                  "budget exceeded");
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    }
                }

                const wl::Workload *w = wl::findWorkload(job.workload);
                if (!w)
                    fatal("unknown workload '%s'",
                          job.workload.c_str());
                MachineConfig m = job.machine;
                if (opts.jobTimeoutSec > 0.0)
                    m.wallDeadlineSec = opts.jobTimeoutSec;
                auto j0 = clock::now();
                RunResult run =
                    wl::runWorkload(*w, m, job.mode, job.cores,
                                    job.scale, job.seed, job.maxCycles);
                auto j1 = clock::now();
                if (fault == FaultKind::kCorrupt) {
                    run.finished = true;
                    run.cycles = 0;
                }
                // A deadline trip is a *host* failure (hung or
                // pathological job), not a simulation verdict:
                // surface it through the retry/quarantine path.
                if (!run.finished &&
                    run.failure.find("host wall-clock deadline") !=
                        std::string::npos)
                    fatal("%s", run.failure.c_str());
                if (std::string bad = validateRunResult(run);
                    !bad.empty())
                    fatal("corrupt result detected: %s", bad.c_str());

                sweep::SweepOutcome &out = rr.report.outcomes[i];
                out.job = job;
                out.run = std::move(run);
                out.wallSec =
                    std::chrono::duration<double>(j1 - j0).count();
                out.error.clear();
                if (journal.isOpen()) {
                    std::ostringstream os;
                    out.run.toJson(os);
                    std::lock_guard<std::mutex> lock(journalMu);
                    journal.append(jobKey(job), os.str(),
                                   out.wallSec);
                }
            },
            opts.stopSignal);

        for (std::size_t k = 0; k < pending.size(); ++k) {
            const std::size_t i = pending[k];
            if (statuses[k].done()) {
                done[i] = true;
                lastError[i].clear();
            } else if (statuses[k].failed()) {
                lastError[i] = statuses[k].error;
            }
            // kSkipped: untouched — next pass or a resumed run
            // dispatches it.
        }
    }
    rr.report.wallSec =
        std::chrono::duration<double>(clock::now() - t0).count();
    rr.signal = opts.stopSignal
        ? opts.stopSignal->load(std::memory_order_relaxed)
        : 0;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (done[i])
            continue;
        sweep::SweepOutcome &out = rr.report.outcomes[i];
        out.job = jobs[i];
        out.run = RunResult{};
        if (attempts[i] == 0) {
            out.error = "skipped: never dispatched";
            ++rr.skipped;
        } else if (lastError[i] == kInterruptedError) {
            out.error = kInterruptedError;
            ++rr.skipped;
        } else {
            out.error = lastError[i];
            if (attempts[i] > opts.retries) {
                QuarantineRecord q;
                q.jobIndex = i;
                q.jobKey = jobKey(jobs[i]);
                q.error = lastError[i];
                q.attempts = attempts[i];
                q.replay = replayRecipe(jobs[i]);
                rr.quarantined.push_back(std::move(q));
            }
        }
        out.run.failure = "host exception: " + out.error;
    }

    for (const sweep::SweepOutcome &o : rr.report.outcomes)
        if (!o.run.finished)
            ++rr.report.failed;

    if (!opts.quarantinePath.empty()) {
        std::ofstream qs(opts.quarantinePath, std::ios::trunc);
        if (!qs)
            fatal("cannot open quarantine file '%s'",
                  opts.quarantinePath.c_str());
        writeQuarantine(rr, qs);
    }
    return rr;
}

void
writeQuarantine(const ResilientReport &r, std::ostream &os)
{
    for (const QuarantineRecord &q : r.quarantined) {
        os << "{\"schema\":\"fa-quarantine-v1\",\"jobIndex\":"
           << q.jobIndex << ",\"job\":\""
           << JsonWriter::escape(q.jobKey) << "\",\"error\":\""
           << JsonWriter::escape(q.error) << "\",\"attempts\":"
           << q.attempts << ",\"replay\":\""
           << JsonWriter::escape(q.replay) << "\"}\n";
    }
}

} // namespace fa::sim::resilience
