#include "sim/faprof/bench_core.hh"

#include <chrono>

#include "common/log.hh"
#include "core/core_config.hh"
#include "sim/presets.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace fa::sim::faprof {

std::vector<BenchCell>
benchCoreCells(double scale, std::uint64_t seed)
{
    // Baked-in per-cell scales target a few hundred ms of host time
    // per cell on the reference container, long enough to swamp
    // timer noise. sb_rmw is a 2-thread litmus by construction.
    struct Spec { const char *m, *w; unsigned threads; double s; };
    static const Spec kSpecs[] = {
        {"icelake", "sb_rmw", 2, 128.0},
        {"icelake", "atomic_counter", 8, 96.0},
        {"skylake", "atomic_counter", 8, 96.0},
        {"tiny", "atomic_counter", 4, 64.0},
    };
    std::vector<BenchCell> cells;
    for (const Spec &sp : kSpecs) {
        BenchCell c;
        c.machine = sp.m;
        c.workload = sp.w;
        c.mode = "freefwd";
        c.cores = sp.threads;
        c.scale = sp.s * scale;
        c.seed = seed;
        cells.push_back(std::move(c));
    }
    return cells;
}

bool
runBenchCell(BenchCell &cell, unsigned repeats)
{
    const wl::Workload *w = wl::findWorkload(cell.workload);
    if (!w)
        fatal("bench-core: unknown workload '%s'",
              cell.workload.c_str());
    MachineConfig machine = presets::byName(cell.machine, cell.cores);
    core::AtomicsMode mode = core::parseAtomicsMode(cell.mode);

    if (repeats == 0)
        repeats = 1;
    bool ok = false;
    for (unsigned r = 0; r < repeats; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        RunResult res = wl::runWorkload(*w, machine, mode, cell.cores,
                                        cell.scale, cell.seed);
        auto t1 = std::chrono::steady_clock::now();
        if (!res.finished || !res.failure.empty())
            return false;
        double wall =
            std::chrono::duration<double>(t1 - t0).count();
        // Keep the fastest repeat: min-of-N strips host scheduler
        // noise from a throughput measurement.
        if (!ok || wall < cell.wallSec) {
            cell.wallSec = wall;
            cell.cycles = res.cycles;
            cell.instrs = res.core.committedInsts;
        }
        ok = true;
    }
    cell.mips = cell.wallSec > 0.0
        ? static_cast<double>(cell.instrs) / cell.wallSec / 1e6
        : 0.0;
    cell.cyclesPerSec = cell.wallSec > 0.0
        ? static_cast<double>(cell.cycles) / cell.wallSec
        : 0.0;
    return ok;
}

void
writeBenchCoreJson(const std::vector<BenchCell> &cells,
                   std::ostream &os)
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value("fa-bench-core-v1");
    jw.key("cells").beginArray();
    for (const BenchCell &c : cells) {
        jw.beginObject();
        jw.key("machine").value(c.machine);
        jw.key("workload").value(c.workload);
        jw.key("mode").value(c.mode);
        jw.key("cores").value(c.cores);
        jw.key("scale").value(c.scale);
        jw.key("seed").value(c.seed);
        jw.key("cycles").value(std::uint64_t{c.cycles});
        jw.key("instrs").value(c.instrs);
        jw.key("wallSec").value(c.wallSec);
        jw.key("mips").value(c.mips);
        jw.key("cyclesPerSec").value(c.cyclesPerSec);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << '\n';
}

std::string
validateBenchCoreJson(const JsonValue &doc)
{
    if (!doc.isObject())
        return "root is not an object";
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->str != "fa-bench-core-v1")
        return "schema is not \"fa-bench-core-v1\"";
    const JsonValue *cells = doc.find("cells");
    if (!cells || !cells->isArray())
        return "missing \"cells\" array";
    if (cells->arr.empty())
        return "\"cells\" is empty";
    static const struct { const char *key; bool string; } kFields[] = {
        {"machine", true},   {"workload", true},
        {"mode", true},      {"cores", false},
        {"scale", false},    {"seed", false},
        {"cycles", false},   {"instrs", false},
        {"wallSec", false},  {"mips", false},
        {"cyclesPerSec", false},
    };
    for (std::size_t i = 0; i < cells->arr.size(); ++i) {
        const JsonValue &c = cells->arr[i];
        if (!c.isObject())
            return "cells[" + std::to_string(i) +
                "] is not an object";
        for (const auto &f : kFields) {
            const JsonValue *v = c.find(f.key);
            if (!v)
                return "cells[" + std::to_string(i) +
                    "] missing \"" + f.key + "\"";
            if (f.string ? !v->isString() : !v->isNumber())
                return "cells[" + std::to_string(i) + "].\"" +
                    f.key + "\" has the wrong type";
        }
    }
    return "";
}

std::vector<BenchCell>
readBenchCoreJson(const JsonValue &doc)
{
    std::vector<BenchCell> cells;
    for (const JsonValue &c : doc.at("cells").arr) {
        BenchCell b;
        b.machine = c.at("machine").str;
        b.workload = c.at("workload").str;
        b.mode = c.at("mode").str;
        b.cores = static_cast<unsigned>(c.at("cores").asU64());
        b.scale = c.at("scale").number;
        b.seed = c.at("seed").asU64();
        b.cycles = c.at("cycles").asU64();
        b.instrs = c.at("instrs").asU64();
        b.wallSec = c.at("wallSec").number;
        b.mips = c.at("mips").number;
        b.cyclesPerSec = c.at("cyclesPerSec").number;
        cells.push_back(std::move(b));
    }
    return cells;
}

} // namespace fa::sim::faprof
