/**
 * @file
 * faprof host-throughput bench: the fixed machine x workload matrix
 * whose simulated-MIPS numbers serve as ROADMAP item 1's regression
 * oracle (committed as BENCH_core.json, schema "fa-bench-core-v1").
 *
 * Each cell times wl::runWorkload with a raw steady_clock pair — no
 * host profiler attached, so the measured wall time is the plain
 * simulation loop, not the instrumented one. Cells cover both big
 * presets, the tiny preset the unit tests use, and the two
 * atomic-heavy litmus workloads the span tracer targets, all in
 * freefwd mode (the paper's full mechanism and the slowest per-cycle
 * path).
 *
 * `fabench perf --mips` runs the matrix and writes the JSON;
 * `fastats diff --fail-above` compares two such files and gates on
 * MIPS drops.
 */

#ifndef FA_SIM_FAPROF_BENCH_CORE_HH
#define FA_SIM_FAPROF_BENCH_CORE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace fa::sim::faprof {

/** One machine x workload throughput measurement. */
struct BenchCell
{
    // Identity (fixed by benchCoreCells).
    std::string machine;   ///< preset name (presets::byName)
    std::string workload;  ///< wl::findWorkload name
    std::string mode;      ///< atomicsModeIdent spelling
    unsigned cores = 0;
    double scale = 1.0;
    std::uint64_t seed = 0;

    // Results (filled by runBenchCell).
    Cycle cycles = 0;          ///< simulated cycles
    std::uint64_t instrs = 0;  ///< committed instructions, all cores
    double wallSec = 0.0;      ///< host wall time of the best run
    double mips = 0.0;         ///< instrs / wallSec / 1e6
    double cyclesPerSec = 0.0; ///< cycles / wallSec
};

/**
 * The fixed regression matrix. `scale` multiplies each cell's
 * baked-in workload scale (1.0 = the committed BENCH_core.json
 * sizes); `seed` is shared by every cell.
 */
std::vector<BenchCell> benchCoreCells(double scale,
                                      std::uint64_t seed);

/**
 * Run one cell `repeats` times and keep the fastest run (max MIPS;
 * min-of-N is the standard way to strip scheduler noise from a
 * throughput bench). FatalError on unknown machine/workload/mode.
 * Returns false when the simulation did not finish (the cell's
 * numbers are then meaningless and the bench should fail).
 */
bool runBenchCell(BenchCell &cell, unsigned repeats = 3);

/** Serialize cells as one "fa-bench-core-v1" document. */
void writeBenchCoreJson(const std::vector<BenchCell> &cells,
                        std::ostream &os);

/**
 * Structural check of a parsed fa-bench-core-v1 document: schema
 * tag, cells array, and every per-cell field present with the right
 * JSON kind. Returns "" when well-formed, else the first problem
 * (fastats surfaces it verbatim).
 */
std::string validateBenchCoreJson(const JsonValue &doc);

/**
 * Read cells back from a parsed document. Call
 * validateBenchCoreJson first; this fatal()s on missing members.
 */
std::vector<BenchCell> readBenchCoreJson(const JsonValue &doc);

} // namespace fa::sim::faprof

#endif // FA_SIM_FAPROF_BENCH_CORE_HH
