#include "sim/config.hh"

namespace fa::sim {

MachineConfig
MachineConfig::icelake(unsigned cores)
{
    MachineConfig m;
    m.name = "icelake";
    m.cores = cores;
    // Core defaults already match the Icelake-like Table 1 numbers.
    return m;
}

MachineConfig
MachineConfig::skylake(unsigned cores)
{
    MachineConfig m;
    m.name = "skylake";
    m.cores = cores;
    m.core.fetchWidth = 4;
    m.core.issueWidth = 8;
    m.core.commitWidth = 8;
    m.core.robSize = 224;
    m.core.lqSize = 72;
    m.core.sqSize = 56;
    m.core.iqSize = 58;
    m.mem.l1Sets = 64;   // 32KB, 8 ways
    m.mem.l1Ways = 8;
    return m;
}

MachineConfig
MachineConfig::sandybridge(unsigned cores)
{
    MachineConfig m;
    m.name = "sandybridge";
    m.cores = cores;
    m.core.fetchWidth = 4;
    m.core.issueWidth = 6;
    m.core.commitWidth = 6;
    m.core.robSize = 168;
    m.core.lqSize = 64;
    m.core.sqSize = 36;
    m.core.iqSize = 54;
    m.mem.l1Sets = 64;   // 32KB, 8 ways
    m.mem.l1Ways = 8;
    return m;
}

MachineConfig
MachineConfig::tiny(unsigned cores)
{
    MachineConfig m;
    m.name = "tiny";
    m.cores = cores;
    m.core.robSize = 64;
    m.core.lqSize = 24;
    m.core.sqSize = 16;
    m.core.iqSize = 24;
    m.core.redirectPenalty = 4;
    m.core.watchdogThreshold = 2000;
    m.mem.l1Sets = 4;
    m.mem.l1Ways = 2;
    m.mem.l2Sets = 16;
    m.mem.l2Ways = 4;
    m.mem.l3Sets = 64;
    m.mem.l3Ways = 8;
    m.mem.dirCoverage = 2.0;
    m.mem.dirWays = 4;
    m.mem.netLatency = 4;
    m.mem.memLatency = 40;
    m.mem.l3DataLatency = 12;
    m.mem.l2HitLatency = 6;
    return m;
}

} // namespace fa::sim
