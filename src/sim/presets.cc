#include "sim/presets.hh"

#include "common/log.hh"
#include "sim/chaos/chaos.hh"

namespace fa::sim {

namespace presets {

MachineConfig
paperIcelake(unsigned cores)
{
    return MachineConfig::icelake(cores);
}

MachineConfig
paperSkylake(unsigned cores)
{
    return MachineConfig::skylake(cores);
}

MachineConfig
paperSandybridge(unsigned cores)
{
    return MachineConfig::sandybridge(cores);
}

MachineConfig
tiny(unsigned cores)
{
    return MachineConfig::tiny(cores);
}

MachineConfig
byName(const std::string &name, unsigned cores)
{
    if (name == "icelake")
        return paperIcelake(cores);
    if (name == "skylake")
        return paperSkylake(cores);
    if (name == "sandybridge")
        return paperSandybridge(cores);
    if (name == "tiny")
        return tiny(cores);
    fatal("unknown machine '%s' (%s)", name.c_str(), names());
}

const char *
names()
{
    return "icelake|skylake|sandybridge|tiny";
}

} // namespace presets

MachineBuilder &
MachineBuilder::chaosProfile(const std::string &profile, std::uint64_t seed)
{
    if (!profile.empty())
        cfg.chaos = chaos::chaosProfile(profile, seed);
    return *this;
}

} // namespace fa::sim
