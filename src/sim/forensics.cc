#include "sim/forensics.hh"

#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/lock_cycle.hh"
#include "core/atomic_queue.hh"
#include "core/dyn_inst.hh"
#include "isa/program.hh"
#include "sim/chaos/chaos.hh"
#include "sim/system.hh"

namespace fa::sim {

namespace {

void
describeInst(std::ostream &os, const char *role,
             const core::DynInst *inst)
{
    if (!inst) {
        os << "    " << role << ": <empty>\n";
        return;
    }
    os << "    " << role << ": seq=" << inst->seq << " pc=" << inst->pc
       << " '" << isa::Program::disasm(inst->si) << "'"
       << " issued=" << inst->issued << " completed=" << inst->completed
       << " performed=" << inst->performed;
    if (inst->addrValid)
        os << " addr=0x" << std::hex << inst->addr << std::dec;
    if (inst->waitingFill)
        os << " waitingFill";
    if (inst->inSb)
        os << " inSb";
    if (inst->lockHeld)
        os << " lockHeld(line=0x" << std::hex << inst->line()
           << std::dec << ")";
    if (inst->fwdKind != core::FwdKind::kNone)
        os << " fwdFrom=" << inst->fwdFromSeq << " chain="
           << inst->fwdChain;
    os << '\n';
}

} // namespace

std::string
stallSummary(const System &sys, Cycle now)
{
    std::ostringstream os;
    bool first = true;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const core::Core &core = sys.coreAt(c);
        if (core.halted())
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "core " << c << " lastCommit=" << core.lastCommitCycle()
           << " (" << (now - core.lastCommitCycle())
           << " cycles ago)";
    }
    if (first)
        os << "all cores halted";
    return os.str();
}

std::string
forensicReport(const System &sys, Cycle now, const std::string &reason)
{
    std::ostringstream os;
    os << "=== forensic snapshot @ cycle " << now << ": " << reason
       << " ===\n";
    os << "machine=" << sys.config().name << " mode="
       << core::atomicsModeName(sys.config().core.mode) << " cores="
       << sys.numCores() << '\n';

    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const core::Core &core = sys.coreAt(c);
        os << "  core " << c << ": halted=" << core.halted()
           << " lastCommit=" << core.lastCommitCycle() << " rob="
           << core.robOccupancy() << " sb=" << core.sbOccupancy()
           << '\n';
        if (!core.halted()) {
            describeInst(os, "ROB head", core.robHead());
            describeInst(os, "SQ head ", core.sqHead());
            auto ws = core.watchdogState();
            os << "    watchdog: watched=";
            if (ws.watchedSeq == kNoSeq)
                os << "-";
            else
                os << ws.watchedSeq;
            os << " lastProgress=" << ws.lastProgress
               << " timeout=" << ws.timeout
               << " backoffExp=" << ws.backoffExp << '\n';
        }
        // Dump the AQ even for a halted core: a lock that survives
        // past halt has no possible owner and must be flagged STALE.
        const core::AtomicQueue &aq = core.atomicQueue();
        for (unsigned i = 0; i < aq.size(); ++i) {
            const auto &e = aq.entry(static_cast<int>(i));
            if (!e.valid)
                continue;
            os << "    AQ[" << i << "]: seq=" << e.seq
               << (e.locked ? " LOCKED" : " unlocked");
            if (e.locked)
                os << " line=0x" << std::hex << e.line << std::dec;
            if (e.sqId != kNoSeq)
                os << " fwdFromSq=" << e.sqId;
            if (e.locked && !core.hasInflight(e.seq) &&
                !core.seqInStoreQueue(e.seq)) {
                // No in-flight or SB-draining instruction owns this
                // lock: a lost unlock_on_squash. The watchdog cannot
                // break it (its victim lookup finds no owner), so
                // only the global progress window catches it.
                os << " STALE (owner gone - leaked lock, "
                      "simulator bug)";
            }
            os << '\n';
        }
    }

    // Directory-victim recalls wedged on a locked line: the §3.2.5
    // inclusive-directory deadlock shape. Static lock-cycle analysis
    // cannot predict it (it depends on directory occupancy, not the
    // programs), so report it from live memory-system state.
    auto recalls = sys.mem().blockedRecalls();
    for (const auto &r : recalls) {
        os << "  victim recall blocked: line 0x" << std::hex
           << r.victimLine << std::dec << " locked by core "
           << r.holder << ", recall forced by core " << r.requester
           << " missing on line 0x" << std::hex << r.reqLine
           << std::dec << " (inclusive-directory victim shape)\n";
    }

    if (const chaos::ChaosEngine *eng = sys.chaosEngine()) {
        std::istringstream lines(eng->summary());
        std::string line;
        while (std::getline(lines, line))
            os << "  " << line << '\n';
    }

    // Classify against the statically-predicted deadlock shapes so a
    // wedge reads as "expected watchdog-recoverable inversion" or
    // "shape the analysis did not predict" (a model bug).
    analysis::LockCycleOptions opts;
    opts.fwdChainCap = sys.config().core.fwdChainCap;
    analysis::LockCycleResult cycles = analysis::analyzeLockCycles(
        analysis::summarizePrograms(sys.programs()), opts);
    if (cycles.deadlocks.empty() && cycles.chains.empty()) {
        os << "  lock-cycle analysis: no deadlock shape predicted for "
              "these programs - this wedge is likely a simulator bug\n";
    } else {
        os << "  lock-cycle analysis: " << cycles.deadlocks.size()
           << " predicted inversion(s), " << cycles.chains.size()
           << " forwarding-chain site(s)\n";
        for (const auto &d : cycles.deadlocks)
            os << "    " << d.describe() << '\n';
        for (const auto &ch : cycles.chains)
            os << "    " << ch.describe(opts.fwdChainCap) << '\n';
    }
    return os.str();
}

} // namespace fa::sim
