#include "sim/forensics.hh"

#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/lock_cycle.hh"
#include "core/atomic_queue.hh"
#include "core/dyn_inst.hh"
#include "isa/program.hh"
#include "sim/system.hh"

namespace fa::sim {

namespace {

void
describeInst(std::ostream &os, const char *role,
             const core::DynInst *inst)
{
    if (!inst) {
        os << "    " << role << ": <empty>\n";
        return;
    }
    os << "    " << role << ": seq=" << inst->seq << " pc=" << inst->pc
       << " '" << isa::Program::disasm(inst->si) << "'"
       << " issued=" << inst->issued << " completed=" << inst->completed
       << " performed=" << inst->performed;
    if (inst->addrValid)
        os << " addr=0x" << std::hex << inst->addr << std::dec;
    if (inst->waitingFill)
        os << " waitingFill";
    if (inst->inSb)
        os << " inSb";
    if (inst->lockHeld)
        os << " lockHeld(line=0x" << std::hex << inst->line()
           << std::dec << ")";
    if (inst->fwdKind != core::FwdKind::kNone)
        os << " fwdFrom=" << inst->fwdFromSeq << " chain="
           << inst->fwdChain;
    os << '\n';
}

} // namespace

std::string
stallSummary(const System &sys, Cycle now)
{
    std::ostringstream os;
    bool first = true;
    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const core::Core &core = sys.coreAt(c);
        if (core.halted())
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "core " << c << " lastCommit=" << core.lastCommitCycle()
           << " (" << (now - core.lastCommitCycle())
           << " cycles ago)";
    }
    if (first)
        os << "all cores halted";
    return os.str();
}

std::string
forensicReport(const System &sys, Cycle now, const std::string &reason)
{
    std::ostringstream os;
    os << "=== forensic snapshot @ cycle " << now << ": " << reason
       << " ===\n";
    os << "machine=" << sys.config().name << " mode="
       << core::atomicsModeName(sys.config().core.mode) << " cores="
       << sys.numCores() << '\n';

    for (unsigned c = 0; c < sys.numCores(); ++c) {
        const core::Core &core = sys.coreAt(c);
        os << "  core " << c << ": halted=" << core.halted()
           << " lastCommit=" << core.lastCommitCycle() << " rob="
           << core.robOccupancy() << " sb=" << core.sbOccupancy()
           << '\n';
        if (core.halted())
            continue;
        describeInst(os, "ROB head", core.robHead());
        describeInst(os, "SQ head ", core.sqHead());
        const core::AtomicQueue &aq = core.atomicQueue();
        for (unsigned i = 0; i < aq.size(); ++i) {
            const auto &e = aq.entry(static_cast<int>(i));
            if (!e.valid)
                continue;
            os << "    AQ[" << i << "]: seq=" << e.seq
               << (e.locked ? " LOCKED" : " unlocked");
            if (e.locked)
                os << " line=0x" << std::hex << e.line << std::dec;
            if (e.sqId != kNoSeq)
                os << " fwdFromSq=" << e.sqId;
            os << '\n';
        }
    }

    // Classify against the statically-predicted deadlock shapes so a
    // wedge reads as "expected watchdog-recoverable inversion" or
    // "shape the analysis did not predict" (a model bug).
    analysis::LockCycleOptions opts;
    opts.fwdChainCap = sys.config().core.fwdChainCap;
    analysis::LockCycleResult cycles = analysis::analyzeLockCycles(
        analysis::summarizePrograms(sys.programs()), opts);
    if (cycles.deadlocks.empty() && cycles.chains.empty()) {
        os << "  lock-cycle analysis: no deadlock shape predicted for "
              "these programs - this wedge is likely a simulator bug\n";
    } else {
        os << "  lock-cycle analysis: " << cycles.deadlocks.size()
           << " predicted inversion(s), " << cycles.chains.size()
           << " forwarding-chain site(s)\n";
        for (const auto &d : cycles.deadlocks)
            os << "    " << d.describe() << '\n';
        for (const auto &ch : cycles.chains)
            os << "    " << ch.describe(opts.fwdChainCap) << '\n';
    }
    return os.str();
}

} // namespace fa::sim
