#include "sim/runner.hh"

#include "analysis/tso_checker.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace fa::sim {

namespace {

double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
            static_cast<double>(den);
}

} // namespace

double
RunResult::apki() const
{
    return core.committedInsts == 0 ? 0.0
        : 1000.0 * static_cast<double>(core.committedAtomics) /
            static_cast<double>(core.committedInsts);
}

double
RunResult::avgDrainSbCycles() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.atomicDrainSbCycles) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::avgAtomicCycles() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.atomicPostIssueCycles) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::avgAtomicCost() const
{
    return avgDrainSbCycles() + avgAtomicCycles();
}

double
RunResult::omittedFencePct() const
{
    return pct(core.implicitFencesOmitted,
               core.implicitFencesOmitted + core.implicitFencesExecuted +
                   core.committedFences);
}

double
RunResult::mdvPctOfSquashes() const
{
    return pct(core.squashEvents[static_cast<int>(
                   SquashCause::kMemDepViolation)],
               core.totalSquashEvents());
}

double
RunResult::fwdByAtomicPct() const
{
    return pct(core.atomicsFwdFromAtomic, core.committedAtomics);
}

double
RunResult::fwdByStorePct() const
{
    return pct(core.atomicsFwdFromStore, core.committedAtomics);
}

double
RunResult::lockLocalityRatio() const
{
    std::uint64_t local = core.lockSourceSq + core.lockSourceL1WritePerm +
        core.lockSourceL2WritePerm;
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(local) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::lockLocalityFwdRatio() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.lockSourceSq) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::l1MissRate() const
{
    return mem.l1Hits + mem.l1Misses == 0 ? 0.0
        : static_cast<double>(mem.l1Misses) /
            static_cast<double>(mem.l1Hits + mem.l1Misses);
}

double
RunResult::l2MissRate() const
{
    return mem.l2Hits + mem.l2Misses == 0 ? 0.0
        : static_cast<double>(mem.l2Misses) /
            static_cast<double>(mem.l2Hits + mem.l2Misses);
}

double
RunResult::l3MissRate() const
{
    return mem.l3Hits + mem.l3Misses == 0 ? 0.0
        : static_cast<double>(mem.l3Misses) /
            static_cast<double>(mem.l3Hits + mem.l3Misses);
}

namespace {

void
writeHistogram(JsonWriter &jw, const Histogram &h)
{
    jw.beginObject();
    jw.key("count").value(h.count());
    jw.key("sum").value(h.sum());
    jw.key("min").value(h.count() ? h.min() : 0);
    jw.key("max").value(h.count() ? h.max() : 0);
    jw.key("mean").value(h.mean());
    jw.key("p50").value(h.p50());
    jw.key("p90").value(h.p90());
    jw.key("p99").value(h.p99());
    jw.key("buckets").beginArray();
    h.forEachBucket([&](std::uint64_t lo, std::uint64_t hi,
                        std::uint64_t n) {
        jw.beginArray();
        jw.value(lo).value(hi).value(n);
        jw.endArray();
    });
    jw.endArray();
    jw.endObject();
}

} // namespace

void
RunResult::toJson(std::ostream &os) const
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value("fa-run-result-v1");
    jw.key("machine").value(machineName);
    jw.key("mode").value(modeName);
    jw.key("cores").value(cores);
    jw.key("finished").value(finished);
    jw.key("cycles").value(std::uint64_t{cycles});
    jw.key("failure").value(failure);

    jw.key("core").beginObject();
    core.forEach([&](const std::string &name, std::uint64_t v) {
        jw.key(name).value(v);
    });
    jw.endObject();

    jw.key("mem").beginObject();
    mem.forEach([&](const std::string &name, std::uint64_t v) {
        jw.key(name).value(v);
    });
    jw.endObject();

    jw.key("hists").beginObject();
    hists.forEach([&](const std::string &name, const Histogram &h) {
        jw.key(name);
        writeHistogram(jw, h);
    });
    jw.endObject();

    jw.key("energy").beginObject();
    jw.key("dynamicPj").value(energy.dynamicPj);
    jw.key("staticPj").value(energy.staticPj);
    jw.key("totalPj").value(energy.total());
    jw.endObject();

    jw.key("derived").beginObject();
    jw.key("apki").value(apki());
    jw.key("avgAtomicCost").value(avgAtomicCost());
    jw.key("avgDrainSbCycles").value(avgDrainSbCycles());
    jw.key("avgAtomicCycles").value(avgAtomicCycles());
    jw.key("omittedFencePct").value(omittedFencePct());
    jw.key("mdvPctOfSquashes").value(mdvPctOfSquashes());
    jw.key("fwdByAtomicPct").value(fwdByAtomicPct());
    jw.key("fwdByStorePct").value(fwdByStorePct());
    jw.key("lockLocalityRatio").value(lockLocalityRatio());
    jw.key("lockLocalityFwdRatio").value(lockLocalityFwdRatio());
    jw.key("l1MissRate").value(l1MissRate());
    jw.key("l2MissRate").value(l2MissRate());
    jw.key("l3MissRate").value(l3MissRate());
    jw.endObject();

    jw.key("slowestThread").beginObject();
    jw.key("activeCycles").value(std::uint64_t{slowestActiveCycles});
    jw.key("sleepCycles").value(std::uint64_t{slowestSleepCycles});
    jw.endObject();

    jw.key("tso").beginObject();
    jw.key("checked").value(tsoChecked);
    jw.key("eventsChecked").value(std::uint64_t{tsoEventsChecked});
    jw.key("error").value(tsoError);
    jw.endObject();

    jw.key("forensics").value(forensics);

    if (hostProfiled()) {
        jw.key("hostProfile").beginObject();
        jw.key("wallSec").value(hostWallSec);
        jw.key("mips").value(hostMips());
        jw.key("cyclesPerSec").value(hostCyclesPerSec());
        jw.key("sampledCycles").value(std::uint64_t{hostSampledCycles});
        jw.key("samplePeriod").value(std::uint64_t{hostProfilePeriod});
        jw.key("phasesNs").beginObject();
        for (const auto &[name, ns] : hostPhaseNs)
            jw.key(name).value(ns);
        jw.endObject();
        jw.endObject();
    }
    jw.endObject();
}

RunResult
RunResult::fromJson(const JsonValue &doc)
{
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->str != "fa-run-result-v1")
        fatal("not an fa-run-result-v1 document");

    RunResult res;
    res.machineName = doc.at("machine").str;
    res.modeName = doc.at("mode").str;
    res.cores = static_cast<unsigned>(doc.at("cores").asU64());
    res.finished = doc.at("finished").boolean;
    res.cycles = doc.at("cycles").asU64();
    res.failure = doc.at("failure").str;

    const JsonValue &coreObj = doc.at("core");
    res.core.forEachMut([&](const std::string &name, std::uint64_t &v) {
        v = coreObj.at(name).asU64();
    });
    const JsonValue &memObj = doc.at("mem");
    res.mem.forEachMut([&](const std::string &name, std::uint64_t &v) {
        v = memObj.at(name).asU64();
    });

    const JsonValue &histsObj = doc.at("hists");
    res.hists.forEachMut([&](const std::string &name, Histogram &h) {
        const JsonValue &ho = histsObj.at(name);
        h.restoreMeta(ho.at("count").asU64(), ho.at("sum").asU64(),
                      ho.at("min").asU64(), ho.at("max").asU64());
        for (const JsonValue &b : ho.at("buckets").arr) {
            if (b.arr.size() != 3)
                fatal("malformed histogram bucket in '%s'",
                      name.c_str());
            h.restoreBucket(b.arr[0].asU64(), b.arr[2].asU64());
        }
    });

    const JsonValue &energyObj = doc.at("energy");
    res.energy.dynamicPj = energyObj.at("dynamicPj").number;
    res.energy.staticPj = energyObj.at("staticPj").number;

    const JsonValue &slowest = doc.at("slowestThread");
    res.slowestActiveCycles = slowest.at("activeCycles").asU64();
    res.slowestSleepCycles = slowest.at("sleepCycles").asU64();

    const JsonValue &tso = doc.at("tso");
    res.tsoChecked = tso.at("checked").boolean;
    res.tsoEventsChecked =
        static_cast<std::size_t>(tso.at("eventsChecked").asU64());
    res.tsoError = tso.at("error").str;

    res.forensics = doc.at("forensics").str;

    if (const JsonValue *hp = doc.find("hostProfile")) {
        res.hostWallSec = hp->at("wallSec").number;
        res.hostSampledCycles = hp->at("sampledCycles").asU64();
        res.hostProfilePeriod = hp->at("samplePeriod").asU64();
        for (const auto &[name, ns] : hp->at("phasesNs").members)
            res.hostPhaseNs.emplace_back(name, ns.asU64());
    }
    return res;
}

RunResult
collectRunResult(System &system, const RunOutcome &outcome)
{
    RunResult res;
    res.finished = outcome.finished;
    res.failure = outcome.failure;
    res.cycles = outcome.cycles;
    res.machineName = system.config().name;
    res.modeName = core::atomicsModeIdent(system.config().core.mode);
    res.cores = system.numCores();
    res.core = system.coreTotals();
    res.mem = system.mem().stats;
    res.hists = system.histTotals();
    res.energy = computeEnergy(EnergyParams{}, res.core, res.mem);
    res.forensics = outcome.forensics;

    if (const HostProfiler *hp = system.profiler()) {
        res.hostPhaseNs = hp->table();
        res.hostWallSec = hp->wallSec();
        res.hostSampledCycles = hp->sampledCycles();
        res.hostProfilePeriod = hp->samplePeriod();
    }

    if (system.trace()) {
        analysis::TsoCheckResult tso = analysis::checkTso(*system.trace());
        res.tsoChecked = true;
        res.tsoEventsChecked = tso.eventsChecked;
        if (!tso.ok) {
            res.tsoError = tso.error;
            if (res.failure.empty())
                res.failure = tso.error;
            res.finished = false;
        }
    }

    // Slowest thread = the one with the most active cycles.
    for (unsigned c = 0; c < system.numCores(); ++c) {
        const CoreStats &cs = system.coreAt(c).stats;
        if (cs.activeCycles >= res.slowestActiveCycles) {
            res.slowestActiveCycles = cs.activeCycles;
            res.slowestSleepCycles = cs.haltedCycles;
        }
    }
    return res;
}

RunResult
runPrograms(MachineConfig machine, core::AtomicsMode mode,
            const std::vector<isa::Program> &progs, const MemInit &init,
            std::uint64_t seed, Cycle max_cycles)
{
    machine.core.mode = mode;
    machine.cores = static_cast<unsigned>(progs.size());
    System system(machine, progs, seed);
    system.initMemory(init);
    RunOutcome outcome = system.run(max_cycles);
    return collectRunResult(system, outcome);
}

} // namespace fa::sim
