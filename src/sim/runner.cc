#include "sim/runner.hh"

#include "analysis/tso_checker.hh"
#include "common/json.hh"

namespace fa::sim {

namespace {

double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
            static_cast<double>(den);
}

} // namespace

double
RunResult::apki() const
{
    return core.committedInsts == 0 ? 0.0
        : 1000.0 * static_cast<double>(core.committedAtomics) /
            static_cast<double>(core.committedInsts);
}

double
RunResult::avgDrainSbCycles() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.atomicDrainSbCycles) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::avgAtomicCycles() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.atomicPostIssueCycles) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::avgAtomicCost() const
{
    return avgDrainSbCycles() + avgAtomicCycles();
}

double
RunResult::omittedFencePct() const
{
    return pct(core.implicitFencesOmitted,
               core.implicitFencesOmitted + core.implicitFencesExecuted +
                   core.committedFences);
}

double
RunResult::mdvPctOfSquashes() const
{
    return pct(core.squashEvents[static_cast<int>(
                   SquashCause::kMemDepViolation)],
               core.totalSquashEvents());
}

double
RunResult::fwdByAtomicPct() const
{
    return pct(core.atomicsFwdFromAtomic, core.committedAtomics);
}

double
RunResult::fwdByStorePct() const
{
    return pct(core.atomicsFwdFromStore, core.committedAtomics);
}

double
RunResult::lockLocalityRatio() const
{
    std::uint64_t local = core.lockSourceSq + core.lockSourceL1WritePerm +
        core.lockSourceL2WritePerm;
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(local) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::lockLocalityFwdRatio() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.lockSourceSq) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::l1MissRate() const
{
    return mem.l1Hits + mem.l1Misses == 0 ? 0.0
        : static_cast<double>(mem.l1Misses) /
            static_cast<double>(mem.l1Hits + mem.l1Misses);
}

double
RunResult::l2MissRate() const
{
    return mem.l2Hits + mem.l2Misses == 0 ? 0.0
        : static_cast<double>(mem.l2Misses) /
            static_cast<double>(mem.l2Hits + mem.l2Misses);
}

double
RunResult::l3MissRate() const
{
    return mem.l3Hits + mem.l3Misses == 0 ? 0.0
        : static_cast<double>(mem.l3Misses) /
            static_cast<double>(mem.l3Hits + mem.l3Misses);
}

namespace {

void
writeHistogram(JsonWriter &jw, const Histogram &h)
{
    jw.beginObject();
    jw.key("count").value(h.count());
    jw.key("sum").value(h.sum());
    jw.key("min").value(h.count() ? h.min() : 0);
    jw.key("max").value(h.count() ? h.max() : 0);
    jw.key("mean").value(h.mean());
    jw.key("p50").value(h.p50());
    jw.key("p90").value(h.p90());
    jw.key("p99").value(h.p99());
    jw.key("buckets").beginArray();
    h.forEachBucket([&](std::uint64_t lo, std::uint64_t hi,
                        std::uint64_t n) {
        jw.beginArray();
        jw.value(lo).value(hi).value(n);
        jw.endArray();
    });
    jw.endArray();
    jw.endObject();
}

} // namespace

void
RunResult::toJson(std::ostream &os) const
{
    JsonWriter jw(os);
    jw.beginObject();
    jw.key("schema").value("fa-run-result-v1");
    jw.key("machine").value(machineName);
    jw.key("mode").value(modeName);
    jw.key("cores").value(cores);
    jw.key("finished").value(finished);
    jw.key("cycles").value(std::uint64_t{cycles});
    jw.key("failure").value(failure);

    jw.key("core").beginObject();
    core.forEach([&](const std::string &name, std::uint64_t v) {
        jw.key(name).value(v);
    });
    jw.endObject();

    jw.key("mem").beginObject();
    mem.forEach([&](const std::string &name, std::uint64_t v) {
        jw.key(name).value(v);
    });
    jw.endObject();

    jw.key("hists").beginObject();
    hists.forEach([&](const std::string &name, const Histogram &h) {
        jw.key(name);
        writeHistogram(jw, h);
    });
    jw.endObject();

    jw.key("energy").beginObject();
    jw.key("dynamicPj").value(energy.dynamicPj);
    jw.key("staticPj").value(energy.staticPj);
    jw.key("totalPj").value(energy.total());
    jw.endObject();

    jw.key("derived").beginObject();
    jw.key("apki").value(apki());
    jw.key("avgAtomicCost").value(avgAtomicCost());
    jw.key("avgDrainSbCycles").value(avgDrainSbCycles());
    jw.key("avgAtomicCycles").value(avgAtomicCycles());
    jw.key("omittedFencePct").value(omittedFencePct());
    jw.key("mdvPctOfSquashes").value(mdvPctOfSquashes());
    jw.key("fwdByAtomicPct").value(fwdByAtomicPct());
    jw.key("fwdByStorePct").value(fwdByStorePct());
    jw.key("lockLocalityRatio").value(lockLocalityRatio());
    jw.key("lockLocalityFwdRatio").value(lockLocalityFwdRatio());
    jw.key("l1MissRate").value(l1MissRate());
    jw.key("l2MissRate").value(l2MissRate());
    jw.key("l3MissRate").value(l3MissRate());
    jw.endObject();

    jw.key("slowestThread").beginObject();
    jw.key("activeCycles").value(std::uint64_t{slowestActiveCycles});
    jw.key("sleepCycles").value(std::uint64_t{slowestSleepCycles});
    jw.endObject();

    jw.key("tso").beginObject();
    jw.key("checked").value(tsoChecked);
    jw.key("eventsChecked").value(std::uint64_t{tsoEventsChecked});
    jw.key("error").value(tsoError);
    jw.endObject();

    jw.key("forensics").value(forensics);

    if (hostProfiled()) {
        jw.key("hostProfile").beginObject();
        jw.key("wallSec").value(hostWallSec);
        jw.key("mips").value(hostMips());
        jw.key("cyclesPerSec").value(hostCyclesPerSec());
        jw.key("sampledCycles").value(std::uint64_t{hostSampledCycles});
        jw.key("samplePeriod").value(std::uint64_t{hostProfilePeriod});
        jw.key("phasesNs").beginObject();
        for (const auto &[name, ns] : hostPhaseNs)
            jw.key(name).value(ns);
        jw.endObject();
        jw.endObject();
    }
    jw.endObject();
}

RunResult
collectRunResult(System &system, const RunOutcome &outcome)
{
    RunResult res;
    res.finished = outcome.finished;
    res.failure = outcome.failure;
    res.cycles = outcome.cycles;
    res.machineName = system.config().name;
    res.modeName = core::atomicsModeIdent(system.config().core.mode);
    res.cores = system.numCores();
    res.core = system.coreTotals();
    res.mem = system.mem().stats;
    res.hists = system.histTotals();
    res.energy = computeEnergy(EnergyParams{}, res.core, res.mem);
    res.forensics = outcome.forensics;

    if (const HostProfiler *hp = system.profiler()) {
        res.hostPhaseNs = hp->table();
        res.hostWallSec = hp->wallSec();
        res.hostSampledCycles = hp->sampledCycles();
        res.hostProfilePeriod = hp->samplePeriod();
    }

    if (system.trace()) {
        analysis::TsoCheckResult tso = analysis::checkTso(*system.trace());
        res.tsoChecked = true;
        res.tsoEventsChecked = tso.eventsChecked;
        if (!tso.ok) {
            res.tsoError = tso.error;
            if (res.failure.empty())
                res.failure = tso.error;
            res.finished = false;
        }
    }

    // Slowest thread = the one with the most active cycles.
    for (unsigned c = 0; c < system.numCores(); ++c) {
        const CoreStats &cs = system.coreAt(c).stats;
        if (cs.activeCycles >= res.slowestActiveCycles) {
            res.slowestActiveCycles = cs.activeCycles;
            res.slowestSleepCycles = cs.haltedCycles;
        }
    }
    return res;
}

RunResult
runPrograms(MachineConfig machine, core::AtomicsMode mode,
            const std::vector<isa::Program> &progs, const MemInit &init,
            std::uint64_t seed, Cycle max_cycles)
{
    machine.core.mode = mode;
    machine.cores = static_cast<unsigned>(progs.size());
    System system(machine, progs, seed);
    system.initMemory(init);
    RunOutcome outcome = system.run(max_cycles);
    return collectRunResult(system, outcome);
}

} // namespace fa::sim
