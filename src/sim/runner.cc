#include "sim/runner.hh"

#include "analysis/tso_checker.hh"

namespace fa::sim {

namespace {

double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
            static_cast<double>(den);
}

} // namespace

double
RunResult::apki() const
{
    return core.committedInsts == 0 ? 0.0
        : 1000.0 * static_cast<double>(core.committedAtomics) /
            static_cast<double>(core.committedInsts);
}

double
RunResult::avgDrainSbCycles() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.atomicDrainSbCycles) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::avgAtomicCycles() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.atomicPostIssueCycles) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::avgAtomicCost() const
{
    return avgDrainSbCycles() + avgAtomicCycles();
}

double
RunResult::omittedFencePct() const
{
    return pct(core.implicitFencesOmitted,
               core.implicitFencesOmitted + core.implicitFencesExecuted +
                   core.committedFences);
}

double
RunResult::mdvPctOfSquashes() const
{
    return pct(core.squashEvents[static_cast<int>(
                   SquashCause::kMemDepViolation)],
               core.totalSquashEvents());
}

double
RunResult::fwdByAtomicPct() const
{
    return pct(core.atomicsFwdFromAtomic, core.committedAtomics);
}

double
RunResult::fwdByStorePct() const
{
    return pct(core.atomicsFwdFromStore, core.committedAtomics);
}

double
RunResult::lockLocalityRatio() const
{
    std::uint64_t local = core.lockSourceSq + core.lockSourceL1WritePerm +
        core.lockSourceL2WritePerm;
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(local) /
            static_cast<double>(core.committedAtomics);
}

double
RunResult::lockLocalityFwdRatio() const
{
    return core.committedAtomics == 0 ? 0.0
        : static_cast<double>(core.lockSourceSq) /
            static_cast<double>(core.committedAtomics);
}

RunResult
runPrograms(MachineConfig machine, core::AtomicsMode mode,
            const std::vector<isa::Program> &progs, const MemInit &init,
            std::uint64_t seed, Cycle max_cycles)
{
    machine.core.mode = mode;
    machine.cores = static_cast<unsigned>(progs.size());
    System system(machine, progs, seed);
    system.initMemory(init);
    RunOutcome outcome = system.run(max_cycles);

    RunResult res;
    res.finished = outcome.finished;
    res.failure = outcome.failure;
    res.cycles = outcome.cycles;
    res.core = system.coreTotals();
    res.mem = system.mem().stats;
    res.energy = computeEnergy(EnergyParams{}, res.core, res.mem);

    if (system.trace()) {
        analysis::TsoCheckResult tso = analysis::checkTso(*system.trace());
        res.tsoChecked = true;
        res.tsoEventsChecked = tso.eventsChecked;
        if (!tso.ok) {
            res.tsoError = tso.error;
            if (res.failure.empty())
                res.failure = tso.error;
            res.finished = false;
        }
    }

    // Slowest thread = the one with the most active cycles.
    for (unsigned c = 0; c < system.numCores(); ++c) {
        const CoreStats &cs = system.coreAt(c).stats;
        if (cs.activeCycles >= res.slowestActiveCycles) {
            res.slowestActiveCycles = cs.activeCycles;
            res.slowestSleepCycles = cs.haltedCycles;
        }
    }
    return res;
}

} // namespace fa::sim
