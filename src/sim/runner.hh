/**
 * @file
 * One-call experiment runner: build a system, run it, collect the
 * derived metrics every bench harness needs.
 */

#ifndef FA_SIM_RUNNER_HH
#define FA_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/core_config.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/system.hh"

namespace fa::sim {

/** Everything a bench needs from one simulation. */
struct RunResult
{
    bool finished = false;
    std::string failure;
    Cycle cycles = 0;

    CoreStats core;            ///< summed over all cores
    MemStats mem;
    EnergyBreakdown energy;

    /** Active/sleep split of the slowest thread (Figure 14 bars). */
    Cycle slowestActiveCycles = 0;
    Cycle slowestSleepCycles = 0;

    /** Axiomatic TSO check (machine.recordMemTrace): did it run, and
     * what did it find? tsoOk() is true when the check did not run. */
    bool tsoChecked = false;
    std::string tsoError;
    std::size_t tsoEventsChecked = 0;
    bool tsoOk() const { return tsoError.empty(); }

    // --- derived metrics ---------------------------------------------------
    double apki() const;               ///< atomics per kilo-instruction
    double avgAtomicCost() const;      ///< Fig 1: (drain+post)/atomic
    double avgDrainSbCycles() const;   ///< Fig 1 Drain_SB component
    double avgAtomicCycles() const;    ///< Fig 1 Atomic component
    double omittedFencePct() const;    ///< Table 2 column 2
    double mdvPctOfSquashes() const;   ///< Table 2 column 4
    double fwdByAtomicPct() const;     ///< Table 2 column 5 (FbA)
    double fwdByStorePct() const;      ///< Table 2 column 6 (FbS)
    double lockLocalityRatio() const;  ///< Fig 13
    double lockLocalityFwdRatio() const;  ///< Fig 13 forwarded share
};

/**
 * Build and run a system.
 *
 * @param machine    machine preset
 * @param mode       atomic-RMW flavour (overrides machine.core.mode)
 * @param progs      one program per core
 * @param init       initial memory image
 * @param seed       master seed
 * @param max_cycles safety limit
 */
RunResult runPrograms(MachineConfig machine, core::AtomicsMode mode,
                      const std::vector<isa::Program> &progs,
                      const MemInit &init, std::uint64_t seed,
                      Cycle max_cycles = 50'000'000);

} // namespace fa::sim

#endif // FA_SIM_RUNNER_HH
