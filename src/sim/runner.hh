/**
 * @file
 * One-call experiment runner: build a system, run it, collect the
 * derived metrics every bench harness needs.
 */

#ifndef FA_SIM_RUNNER_HH
#define FA_SIM_RUNNER_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "core/core_config.hh"
#include "isa/program.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/system.hh"

namespace fa {
struct JsonValue;
} // namespace fa

namespace fa::sim {

/** Everything a bench needs from one simulation. */
struct RunResult
{
    bool finished = false;
    std::string failure;
    Cycle cycles = 0;

    /** Identity of the run (telemetry; filled by collectRunResult). */
    std::string machineName;
    std::string modeName;
    unsigned cores = 0;

    CoreStats core;            ///< summed over all cores
    MemStats mem;
    LatencyHists hists;        ///< merged over all cores
    EnergyBreakdown energy;

    /** Active/sleep split of the slowest thread (Figure 14 bars). */
    Cycle slowestActiveCycles = 0;
    Cycle slowestSleepCycles = 0;

    /** Axiomatic TSO check (machine.recordMemTrace): did it run, and
     * what did it find? tsoOk() is true when the check did not run. */
    bool tsoChecked = false;
    std::string tsoError;
    std::size_t tsoEventsChecked = 0;
    bool tsoOk() const { return tsoError.empty(); }

    /** Forensic snapshot from the run, when one was captured. */
    std::string forensics;

    /**
     * faprof host-profile report (machine.hostProfile): sampled
     * per-component wall time, sampling meta and throughput. Emitted
     * into the JSON as a "hostProfile" object only when the profiler
     * ran, so disabled runs keep a byte-identical RunResult.
     */
    std::vector<std::pair<std::string, std::uint64_t>> hostPhaseNs;
    double hostWallSec = 0.0;
    Cycle hostSampledCycles = 0;
    Cycle hostProfilePeriod = 0;
    bool hostProfiled() const { return !hostPhaseNs.empty(); }
    /** Simulated instructions per host second, in millions. */
    double hostMips() const
    {
        return hostWallSec > 0.0
            ? static_cast<double>(core.committedInsts) / hostWallSec /
                1e6
            : 0.0;
    }
    /** Simulated cycles per host second. */
    double hostCyclesPerSec() const
    {
        return hostWallSec > 0.0
            ? static_cast<double>(cycles) / hostWallSec
            : 0.0;
    }

    // --- derived metrics ---------------------------------------------------
    double apki() const;               ///< atomics per kilo-instruction
    double avgAtomicCost() const;      ///< Fig 1: (drain+post)/atomic
    double avgDrainSbCycles() const;   ///< Fig 1 Drain_SB component
    double avgAtomicCycles() const;    ///< Fig 1 Atomic component
    double omittedFencePct() const;    ///< Table 2 column 2
    double mdvPctOfSquashes() const;   ///< Table 2 column 4
    double fwdByAtomicPct() const;     ///< Table 2 column 5 (FbA)
    double fwdByStorePct() const;      ///< Table 2 column 6 (FbS)
    double lockLocalityRatio() const;  ///< Fig 13
    double lockLocalityFwdRatio() const;  ///< Fig 13 forwarded share
    double l1MissRate() const;         ///< l1Misses / L1 lookups
    double l2MissRate() const;         ///< l2Misses / L2 lookups
    double l3MissRate() const;         ///< l3Misses / L3 lookups

    /**
     * Serialize the full result — identity, counters, histograms,
     * derived metrics — as one JSON document (schema
     * "fa-run-result-v1"; tools/fastats reads it back).
     */
    void toJson(std::ostream &os) const;

    /**
     * Exact inverse of toJson for resumable campaigns: rebuild a
     * RunResult from a parsed fa-run-result-v1 document such that
     * re-serializing it reproduces the original bytes (derived
     * metrics are pure functions of the restored counters; doubles
     * print with round-trip precision). fatal()s on a wrong schema
     * or missing section.
     */
    static RunResult fromJson(const JsonValue &doc);
};

/**
 * Collect a RunResult from a finished System: counter totals,
 * histograms, energy, the TSO check when a trace was recorded, and
 * the slowest-thread split. Shared by runPrograms and runWorkload.
 */
RunResult collectRunResult(System &system, const RunOutcome &outcome);

/**
 * Build and run a system.
 *
 * @param machine    machine preset
 * @param mode       atomic-RMW flavour (overrides machine.core.mode)
 * @param progs      one program per core
 * @param init       initial memory image
 * @param seed       master seed
 * @param max_cycles safety limit
 */
RunResult runPrograms(MachineConfig machine, core::AtomicsMode mode,
                      const std::vector<isa::Program> &progs,
                      const MemInit &init, std::uint64_t seed,
                      Cycle max_cycles = 50'000'000);

} // namespace fa::sim

#endif // FA_SIM_RUNNER_HH
