/**
 * @file
 * Interval statistics: periodic snapshots of CoreStats/MemStats
 * *deltas* written as JSON Lines, one object per interval. Turns the
 * end-of-run aggregate counters into a time series — where in a run
 * the SB-drain stalls cluster, when the watchdog fires, how miss
 * rates evolve as working sets warm up.
 *
 * Each line has the shape
 *
 *   {"interval":3,"cycle":4000,"cycles":1000,
 *    "hostUsec":812,"mips":1.0,
 *    "core":{"committedInsts":812,...},"mem":{"l1Hits":241,...}}
 *
 * where "cycle" is the snapshot cycle, "cycles" the interval length,
 * and every counter is the increment since the previous snapshot.
 * "hostUsec" is the host wall time the interval took to simulate and
 * "mips" the simulated instructions per host second it achieved —
 * together they expose host-time skew across a run (which intervals
 * are expensive to simulate, not just long). A final partial
 * interval is flushed when the run ends.
 */

#ifndef FA_SIM_INTERVAL_STATS_HH
#define FA_SIM_INTERVAL_STATS_HH

#include <chrono>
#include <cstdint>
#include <ostream>

#include "common/stats.hh"
#include "common/types.hh"

namespace fa::sim {

class IntervalStatsWriter
{
  public:
    /**
     * @param os     destination stream (JSONL; one snapshot per line)
     * @param period snapshot every this many cycles (must be > 0)
     */
    IntervalStatsWriter(std::ostream &os, Cycle period);

    /** Is `now` an interval boundary? (System's cheap per-cycle gate) */
    bool due(Cycle now) const { return now % periodCycles == 0; }

    /**
     * Emit one snapshot line: the delta of `core`/`mem` against the
     * previous snapshot. Caller passes current *cumulative* totals.
     */
    void snapshot(Cycle now, const CoreStats &core, const MemStats &mem);

    /** Flush a final partial interval (no-op when already aligned). */
    void finish(Cycle now, const CoreStats &core, const MemStats &mem);

    std::uint64_t snapshotsWritten() const { return count; }
    Cycle period() const { return periodCycles; }

  private:
    std::ostream &out;
    Cycle periodCycles;
    Cycle prevCycle = 0;
    CoreStats prevCore;
    MemStats prevMem;
    /** Wall-clock instant of the previous snapshot (construction for
     * interval 0): hostUsec/mips are deltas against it. */
    std::chrono::steady_clock::time_point prevWall;
    std::uint64_t count = 0;
};

} // namespace fa::sim

#endif // FA_SIM_INTERVAL_STATS_HH
