/**
 * @file
 * Per-PC stride prefetcher (Table 1 lists a stride prefetcher at the
 * L1D [7]). Classic reference-prediction-table design: a load PC
 * whose consecutive addresses differ by a stable stride prefetches
 * ahead once confidence is established.
 */

#ifndef FA_CORE_STRIDE_PREF_HH
#define FA_CORE_STRIDE_PREF_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace fa::core {

class StridePrefetcher
{
  public:
    /**
     * Record a load's address; returns the line to prefetch, or 0
     * when no confident stride exists yet.
     *
     * @param pc     static pc of the load
     * @param addr   effective address observed
     * @param degree how many strides ahead to fetch
     */
    Addr
    observe(int pc, Addr addr, unsigned degree = 2)
    {
        Entry &e = table[pc];
        std::int64_t stride =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(e.last);
        if (e.valid && stride == e.stride && stride != 0) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last = addr;
        e.valid = true;
        if (e.confidence < 2)
            return 0;
        return lineOf(addr + static_cast<Addr>(e.stride * degree));
    }

    size_t tableSize() const { return table.size(); }

  private:
    struct Entry
    {
        Addr last = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::unordered_map<int, Entry> table;
};

} // namespace fa::core

#endif // FA_CORE_STRIDE_PREF_HH
