#include "core/pipeview.hh"

#include "isa/program.hh"

namespace fa::core {

void
PipeViewRecorder::retire(CoreId core, const DynInst &inst, bool squashed)
{
    std::uint64_t id = nextId++;
    std::uint64_t fetch_t = tick(inst.dispatchedAt, true);
    std::uint64_t issue_t = tick(inst.issuedAt, inst.issuedAt != 0);
    std::uint64_t complete_t =
        tick(inst.completedAt, inst.completed || inst.executed);
    std::uint64_t retire_t =
        squashed ? 0 : tick(inst.committedAt, true);
    std::uint64_t store_t =
        tick(inst.performedAt,
             !squashed && inst.performedAt != 0 && inst.usesSq());

    out << "O3PipeView:fetch:" << fetch_t << ":0x" << std::hex
        << inst.pc << std::dec << ":0:" << id << ":[c" << core << "] "
        << isa::Program::disasm(inst.si) << '\n';
    out << "O3PipeView:decode:" << fetch_t << '\n';
    out << "O3PipeView:rename:" << fetch_t << '\n';
    out << "O3PipeView:dispatch:" << fetch_t << '\n';
    out << "O3PipeView:issue:" << issue_t << '\n';
    out << "O3PipeView:complete:" << complete_t << '\n';
    out << "O3PipeView:retire:" << retire_t << ":store:" << store_t
        << '\n';

    if (inst.lockAcquiredAt != 0) {
        out << "FAView:lock_acquire:" << tick(inst.lockAcquiredAt, true)
            << ":line=0x" << std::hex << inst.line() << std::dec
            << '\n';
    }
    if (inst.lockReleasedAt != 0) {
        out << "FAView:lock_release:" << tick(inst.lockReleasedAt, true)
            << ":line=0x" << std::hex << inst.line() << std::dec
            << '\n';
    }
    if (inst.fwdKind != FwdKind::kNone) {
        out << "FAView:fwd:" << issue_t << ":from=" << inst.fwdFromSeq
            << ":chain=" << inst.fwdChain << '\n';
    }
    if (squashed)
        out << "FAView:squashed\n";
}

} // namespace fa::core
