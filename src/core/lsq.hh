/**
 * @file
 * Load queue and store queue. The SQ holds all dispatched stores in
 * program order; the suffix of committed-but-unperformed entries is
 * the store buffer (SB) — paper footnote 2. Atomic RMWs occupy one
 * LQ entry (the load_lock) and one SQ entry (the store_unlock).
 */

#ifndef FA_CORE_LSQ_HH
#define FA_CORE_LSQ_HH

#include <deque>

#include "common/types.hh"
#include "core/dyn_inst.hh"

namespace fa::core {

class LoadStoreQueue
{
  public:
    LoadStoreQueue(unsigned lq_size, unsigned sq_size);

    bool lqFull() const { return lq.size() >= lqSize; }
    bool sqFull() const { return sq.size() >= sqSize; }

    void pushLoad(DynInst *inst) { lq.push_back(inst); }
    void pushStore(DynInst *inst) { sq.push_back(inst); }

    std::deque<DynInst *> &loads() { return lq; }
    std::deque<DynInst *> &stores() { return sq; }
    const std::deque<DynInst *> &loads() const { return lq; }
    const std::deque<DynInst *> &stores() const { return sq; }

    /** Committed stores awaiting perform (the SB occupancy). */
    unsigned sbCount() const { return sbEntries; }
    void noteEnteredSb() { ++sbEntries; }
    void noteLeftSb() { --sbEntries; }

    /**
     * Youngest store older than `load_seq` with a resolved address
     * matching `word`; nullptr if none.
     */
    DynInst *youngestOlderStore(SeqNum load_seq, Addr word) const;

    /** Any store older than `seq` with an unresolved address? */
    bool anyOlderUnresolvedStore(SeqNum seq) const;

    /** Any store (resolved or not) older than `seq` still in SQ? */
    bool anyOlderStore(SeqNum seq) const;

    /** Number of SQ entries older than `seq` — the convoy a
     * committing atomic's store_unlock drains behind (span arg). */
    unsigned sqDepthBefore(SeqNum seq) const;

    /** All loads older than `seq` performed? (Spec-mode gate) */
    bool allOlderLoadsPerformed(SeqNum seq) const;

    /**
     * Oldest performed load whose data may be stale after losing
     * `line`: reads from memory (not forwarded) on that line.
     * Lock-holding load_locks cannot lose their line and are skipped.
     */
    DynInst *oldestInvalidatedLoad(Addr line) const;

    /**
     * Oldest load younger than the resolving store that performed
     * against the same word without forwarding from it — a memory
     * dependence violation (§3.2.1).
     */
    DynInst *oldestMemDepViolator(const DynInst *store) const;

    /** Remove a committed load (must be the oldest). */
    void popFrontLoad(DynInst *inst);

    /** Remove a performed store (must be the oldest SQ entry). */
    void popFrontStore(DynInst *inst);

    /** Remove a store anywhere in the SQ (store-conditionals leave
     * at commit rather than draining through the SB). */
    void removeStore(DynInst *inst);

    /** Drop all entries younger than or equal to `from_seq`. */
    void squashFrom(SeqNum from_seq);

  private:
    std::deque<DynInst *> lq;
    std::deque<DynInst *> sq;
    unsigned lqSize;
    unsigned sqSize;
    unsigned sbEntries = 0;
};

} // namespace fa::core

#endif // FA_CORE_LSQ_HH
