/**
 * @file
 * Out-of-order core configuration, including the atomic-RMW
 * implementation flavour under study (paper §3, Figure 14).
 */

#ifndef FA_CORE_CORE_CONFIG_HH
#define FA_CORE_CORE_CONFIG_HH

#include <string>

#include "isa/program.hh"

namespace fa::core {

/**
 * Atomic RMW implementation flavour. Each value adds one of the
 * paper's mechanisms on top of the previous one.
 */
enum class AtomicsMode {
    /** Baseline x86: load_lock issues only when the atomic is the
     * oldest instruction and the SB has drained (Mem_Fence1);
     * younger loads stall until the atomic commits (Mem_Fence2). */
    kFenced,
    /** baseline+Spec (§3.1): the fenced atomic may issue from a
     * control-speculative path once all older memory operations have
     * performed; requires unlock_on_squash. */
    kSpec,
    /** FreeAtomics (§3.2): both fences removed; atomics execute
     * speculatively and concurrently, commit once the SB is empty;
     * AQ + watchdog handle multiple locks and deadlock recovery. */
    kFree,
    /** FreeAtomics+Fwd (§3.3): store-to-load forwarding to/from
     * atomics with the do_not_unlock / lock_on_access
     * responsibilities and a bounded forwarding chain. */
    kFreeFwd,
};

const char *atomicsModeName(AtomicsMode mode);

/** Identifier-safe short name (test names, file names). */
const char *atomicsModeIdent(AtomicsMode mode);

/** Parse an atomicsModeIdent spelling back ("fenced|spec|free|
 * freefwd"); FatalError on anything else. The single mode-parse
 * point for every CLI tool. */
AtomicsMode parseAtomicsMode(const std::string &s);

/**
 * Effective mode for one RMW site: a per-instruction
 * isa::RmwModeHint overrides the machine-wide mode; kInherit keeps
 * it. The single resolution point shared by the detailed core and
 * the model checker, so synthesized per-site assignments mean the
 * same thing everywhere.
 */
AtomicsMode resolveAtomicsMode(AtomicsMode global,
                               isa::RmwModeHint hint);

/** Core pipeline parameters (Table 1, Icelake-like by default). */
struct CoreConfig
{
    unsigned fetchWidth = 5;
    unsigned issueWidth = 10;
    unsigned commitWidth = 10;
    unsigned robSize = 352;
    unsigned lqSize = 128;
    unsigned sqSize = 72;
    unsigned iqSize = 64;
    unsigned aqSize = 4;          ///< Atomic Queue entries (§4.3)
    unsigned redirectPenalty = 12;
    unsigned aluLatency = 1;
    unsigned mulLatency = 3;
    unsigned rmwOpLatency = 1;
    unsigned fwdLatency = 2;      ///< store-to-load forwarding latency
    /**
     * PAUSE spin-wait hint latency. While a PAUSE is in flight the
     * front-end stalls, de-pipelining spin loops exactly as the x86
     * instruction is documented to do (it bounds the speculative
     * loop iterations exposed to memory-order squashes).
     */
    unsigned pauseLatency = 24;
    unsigned watchdogThreshold = 10000;  ///< §3.2.5 base timeout value
    /**
     * Watchdog backoff policy. The §3.2.5 timer watches the *oldest
     * lock-holding atomic* and restarts only when that atomic changes
     * identity (it released its lock, or was flushed); commits of
     * other instructions and fresh lock acquisitions never feed it,
     * so an unrelated commit stream cannot starve the watchdog.
     *
     * On expiry the victim is flushed and the timeout for the *next*
     * arming is re-drawn as
     *
     *     (watchdogThreshold << min(exp, watchdogBackoffMaxExp))
     *       + uniform[0, base * watchdogJitterPct / 100]
     *
     * where `exp` counts consecutive firings without an intervening
     * atomic commit (any committed atomic resets it to zero). The
     * exponential component spaces out repeated flushes of the same
     * contended line; the per-core random jitter desynchronizes two
     * cores whose watchdogs would otherwise expire in lockstep and
     * re-enter the same flush–reacquire livelock. Jitter is drawn
     * from a per-core stream seeded by the machine seed, so runs
     * stay bit-reproducible. `watchdogBackoff = false` restores the
     * fixed-threshold behaviour (exp pinned at 0); jitter is still
     * applied unless watchdogJitterPct is also 0.
     */
    bool watchdogBackoff = true;
    unsigned watchdogBackoffMaxExp = 5;   ///< cap: threshold << 5 = 32x
    unsigned watchdogJitterPct = 50;      ///< jitter range, % of base
    unsigned fwdChainCap = 32;    ///< §3.3.4 max consecutive forwards
    bool storePrefetch = true;    ///< at-commit store prefetch [54]
    bool strideLoadPrefetch = true;  ///< L1D stride prefetcher [7]
    /**
     * Drain consecutive same-line stores from the SB in one cycle
     * (non-speculative store coalescing in the spirit of [44], cited
     * by the paper). Hiding the intermediate same-line states is a
     * legal TSO interleaving; cross-line order is preserved.
     */
    bool sbCoalescing = false;
    /**
     * Acquire cacheline locks in program order within the core: a
     * load_lock issues only once every older atomic's load_lock has
     * performed. This removes the RMW-RMW deadlock class (Figure 5)
     * at the cost of some atomic MLP; the Store-RMW and Load-RMW
     * classes (Figures 6/7) remain and rely on the watchdog. With
     * false, lock acquisition is fully out of order as in the
     * paper's description, and all deadlock classes can occur.
     */
    bool inOrderLockAcquisition = true;
    /**
     * A load_lock may issue (and take its cacheline lock) only when
     * fewer than this many older instructions are still uncommitted.
     * Locking earlier buys nothing — the lock is held until commit
     * anyway — but stretches the tenure to the full ROB drain time,
     * which serializes contended lines machine-wide. 0 disables the
     * window (fully eager locking, as the paper's prose allows).
     */
    unsigned lockIssueWindow = 64;
    unsigned bpTableBits = 12;    ///< branch predictor table size
    AtomicsMode mode = AtomicsMode::kFreeFwd;
};

} // namespace fa::core

#endif // FA_CORE_CORE_CONFIG_HH
