/**
 * @file
 * Dynamic (in-flight) instruction state for the out-of-order core.
 */

#ifndef FA_CORE_DYN_INST_HH
#define FA_CORE_DYN_INST_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace fa::core {

/** Kind of store a load forwarded from (Table 2's FbA/FbS split). */
enum class FwdKind : std::uint8_t {
    kNone,
    kStore,   ///< ordinary store (lock_on_access path for atomics)
    kAtomic,  ///< store_unlock (do_not_unlock path for atomics)
};

/** Where a committed load_lock obtained its data (Figure 13). */
enum class LockSource : std::uint8_t {
    kNone,
    kStoreQueue,     ///< forwarded from the SQ
    kL1WritePerm,    ///< hit in L1 with M/E permission
    kL2WritePerm,    ///< hit in L2 with M/E permission
    kRemote,         ///< required a coherence transaction
};

/**
 * One in-flight instruction. Owned by the ROB from dispatch until
 * commit; committed stores and atomics stay alive (owned by the
 * store-buffer list) until their write performs.
 */
struct DynInst
{
    SeqNum seq = kNoSeq;
    int pc = 0;
    isa::Inst si;

    // --- dataflow -------------------------------------------------------
    /** Unresolved producers for src1/src2/src3 (null once resolved). */
    DynInst *prod[3] = {nullptr, nullptr, nullptr};
    std::int64_t srcVal[3] = {0, 0, 0};
    int waitingSrcs = 0;
    /** Consumers to wake when this instruction's result is ready. */
    std::vector<DynInst *> dependents;
    std::int64_t result = 0;

    // --- pipeline state ---------------------------------------------------
    bool inIq = false;
    bool issued = false;     ///< sent to a functional unit / memory
    bool executed = false;   ///< result available
    bool completed = false;  ///< eligible for commit
    bool committed = false;
    bool squashed = false;
    Cycle dispatchedAt = 0;
    Cycle issuedAt = 0;

    // --- lifecycle timestamps (observability; 0 = not reached) -----------
    Cycle completedAt = 0;     ///< became commit-eligible
    Cycle committedAt = 0;     ///< left the ROB head
    Cycle performedAt = 0;     ///< store/unlock wrote the cache
    Cycle lockAcquiredAt = 0;  ///< load_lock took the cacheline lock
    Cycle lockReleasedAt = 0;  ///< store_unlock perform or squash
    /** Cycles this atomic stalled at issue draining the SB (the
     * per-instruction Figure 1 Drain_SB component). */
    std::uint32_t drainSbCycles = 0;

    // --- memory -----------------------------------------------------------
    Addr addr = 0;           ///< word-aligned effective address
    bool addrValid = false;
    std::int64_t storeData = 0;  ///< store value / RMW new value
    bool storeDataValid = false;
    bool performed = false;  ///< load: value bound; store: wrote cache
    bool waitingFill = false;
    bool fillRequested = false;   ///< SB-head GetX already sent
    bool prefetchSent = false;    ///< at-commit store prefetch sent
    FwdKind fwdKind = FwdKind::kNone;
    SeqNum fwdFromSeq = kNoSeq;   ///< forwarding store's sequence number
    std::int64_t fwdValue = 0;    ///< value captured at forward time
    unsigned fwdChain = 0;        ///< forwarding chain length (§3.3.4)
    bool inSb = false;            ///< committed store awaiting perform
    std::uint8_t pendingEvent = 0;

    bool scFailed = false;     ///< store-conditional lost its link

    // --- trace recording (reads-from source; see analysis/trace.hh) ---------
    bool rfInit = true;      ///< read bound the initial memory value
    CoreId rfThread = 0;     ///< writer core, valid when !rfInit
    SeqNum rfSeq = kNoSeq;   ///< writer sequence number, when !rfInit

    // --- atomics ------------------------------------------------------------
    int aqIdx = -1;
    bool lockHeld = false;     ///< AQ entry holds the cacheline lock
    LockSource lockSource = LockSource::kNone;

    // --- branches ----------------------------------------------------------
    bool predTaken = false;

    // --- bookkeeping --------------------------------------------------------
    std::uint64_t randSnapshot = 0;  ///< rand counter at dispatch

    bool isLoad() const { return si.op == isa::Op::kLoad; }
    bool isStore() const { return si.op == isa::Op::kStore; }
    bool isAtomic() const { return si.op == isa::Op::kRmw; }
    bool isLoadLinked() const { return si.op == isa::Op::kLoadLinked; }
    bool isStoreCond() const { return si.op == isa::Op::kStoreCond; }
    bool isBranch() const { return si.op == isa::Op::kBranch; }
    bool isFence() const { return si.op == isa::Op::kMfence; }
    bool isHalt() const { return si.op == isa::Op::kHalt; }

    /** Occupies a load-queue slot? */
    bool
    usesLq() const
    {
        return isLoad() || isAtomic() || isLoadLinked();
    }
    /** Occupies a store-queue slot? */
    bool
    usesSq() const
    {
        return isStore() || isAtomic() || isStoreCond();
    }

    /** Does this instruction write a destination register? */
    bool
    writesReg() const
    {
        switch (si.op) {
          case isa::Op::kMovi:
          case isa::Op::kAlu:
          case isa::Op::kAddi:
          case isa::Op::kLoad:
          case isa::Op::kRmw:
          case isa::Op::kLoadLinked:
          case isa::Op::kStoreCond:
          case isa::Op::kRand:
            return true;
          default:
            return false;
        }
    }

    Addr line() const { return lineOf(addr); }
};

} // namespace fa::core

#endif // FA_CORE_DYN_INST_HH
