/**
 * @file
 * Out-of-order core model implementing the paper's four atomic-RMW
 * flavours (Fenced baseline, +Spec, FreeAtomics, FreeAtomics+Fwd).
 *
 * The pipeline is modelled at instruction granularity with explicit
 * ROB / issue queue / LQ / SQ(+SB) / Atomic Queue structures, real
 * wrong-path fetch past predicted branches, store-set style memory
 * dependence prediction, TSO load-load speculation with invalidation
 * squash, store-to-load forwarding, speculative cacheline locking
 * with unlock_on_squash, and the deadlock-recovery watchdog
 * (paper §3.2.5).
 *
 * Register values are architectural at commit and memory is written
 * only when stores perform, so the simulated memory image is exactly
 * what a TSO machine produces — correctness properties (atomicity,
 * mutual exclusion, litmus outcomes) are checked on real data.
 */

#ifndef FA_CORE_CORE_HH
#define FA_CORE_CORE_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/atomic_queue.hh"
#include "core/branch_pred.hh"
#include "core/core_config.hh"
#include "core/dyn_inst.hh"
#include "core/lsq.hh"
#include "core/memdep_pred.hh"
#include "core/stride_pref.hh"
#include "isa/program.hh"
#include "mem/mem_system.hh"

namespace fa::analysis {
class Fasan;
class TraceRecorder;
} // namespace fa::analysis

namespace fa::chaos {
class ChaosEngine;
} // namespace fa::chaos

namespace fa {
class HostProfiler;
class SpanTracer;
} // namespace fa

namespace fa::core {

class PipeViewRecorder;

class Core : public mem::CoreMemIf
{
  public:
    /**
     * @param id        core/thread identifier
     * @param cfg       pipeline configuration
     * @param prog      validated program this core executes
     * @param mem       shared memory hierarchy (must outlive the core)
     * @param rand_seed seed for this thread's kRand stream
     */
    Core(CoreId id, const CoreConfig &cfg, const isa::Program &prog,
         mem::MemSystem *mem, std::uint64_t rand_seed);
    ~Core() override;

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Advance one cycle. Call after MemSystem::tick for the cycle. */
    void tick(Cycle now);

    /** Has the halt instruction committed and all stores performed? */
    bool halted() const { return haltedFlag; }

    /** Committed architectural register values. */
    const std::array<std::int64_t, isa::kNumRegs> &
    archRegs() const
    {
        return archRegsArr;
    }

    /** Cycle of the most recent commit (global progress check). */
    Cycle lastCommitCycle() const { return lastCommitAt; }

    CoreId id() const { return coreId; }
    const CoreConfig &config() const { return cfg; }

    /** Attach a memory-event recorder (null disables recording). */
    void attachTracer(analysis::TraceRecorder *t) { tracer = t; }

    /** Attach a pipeline lifecycle recorder (null disables; same
     * zero-cost-when-off pattern as the tracer). */
    void attachPipeView(PipeViewRecorder *pv) { pipeview = pv; }

    /** Attach a fault-injection engine (null disables; same
     * zero-cost-when-off pattern as the recorders). */
    void attachChaos(chaos::ChaosEngine *engine) { chaos = engine; }

    /** Attach the invariant sanitizer (null disables; same
     * zero-cost-when-off pattern as the recorders). */
    void attachFasan(analysis::Fasan *f) { fasan = f; }

    /** Attach the faprof transaction-span tracer (null disables;
     * same zero-cost-when-off pattern as the recorders). */
    void attachSpanTrace(SpanTracer *st) { spans = st; }

    /** Attach the faprof host-time profiler (null disables). Ticks
     * switch to the per-stage timed path only on sampled cycles. */
    void attachHostProfiler(HostProfiler *hp) { hostProf = hp; }

    /** End-of-run sanitizer sweep (lock drain at halt). */
    void fasanFinal(Cycle now);

    /**
     * Called just before the watchdog squashes a lock-holding atomic
     * (forensics hook; null disables). Arguments: victim sequence
     * number and the firing cycle.
     */
    void
    setWatchdogHook(std::function<void(SeqNum, Cycle)> hook)
    {
        watchdogHook = std::move(hook);
    }

    // --- CoreMemIf -------------------------------------------------------
    void onFill(SeqNum waiter, Addr line, bool write_perm,
                Cycle now) override;
    void onLineLost(Addr line, Cycle now) override;
    bool isLineLocked(Addr line) const override;
    void onLockDenied(Addr line, CoreId requester, Cycle now) override;

    // --- introspection (tests, forensics) ---------------------------------
    size_t robOccupancy() const { return rob.size(); }
    unsigned sbOccupancy() const { return lsq.sbCount(); }
    const AtomicQueue &atomicQueue() const { return aq; }

    /** Oldest in-flight instruction (nullptr when the ROB is empty). */
    const DynInst *
    robHead() const
    {
        return rob.empty() ? nullptr : rob.front().get();
    }

    /** Oldest store-queue entry (nullptr when empty). */
    const DynInst *
    sqHead() const
    {
        return lsq.stores().empty() ? nullptr : lsq.stores().front();
    }

    /** Is this sequence number still in flight? A locked AQ entry
     * whose seq is neither in flight nor draining in the SQ is a
     * leaked lock — a simulator bug forensics must flag. */
    bool hasInflight(SeqNum seq) const { return inflight.count(seq) != 0; }

    /** Is this sequence number a committed store still in the SQ/SB
     * (including an atomic awaiting its store_unlock)? */
    bool
    seqInStoreQueue(SeqNum seq) const
    {
        for (const DynInst *st : lsq.stores())
            if (st->seq == seq)
                return true;
        return false;
    }

    /** Watchdog snapshot for forensics and tests (§3.2.5 + backoff). */
    struct WatchdogState
    {
        SeqNum watchedSeq;     ///< oldest lock-holding atomic (kNoSeq if idle)
        Cycle lastProgress;    ///< cycle the timer last restarted
        Cycle timeout;         ///< current effective (jittered) timeout
        unsigned backoffExp;   ///< consecutive-firing exponent
    };
    WatchdogState
    watchdogState() const
    {
        return {wdWatchedSeq, wdLastProgress, wdCurTimeout, wdBackoffExp};
    }

    CoreStats stats;
    LatencyHists hists;

  private:
    /** Deferred-event kinds delivered through the writeback queue. */
    enum class EventKind : std::uint8_t { kNone, kExec, kMemPerform };

    // --- pipeline stages ----------------------------------------------------
    /** tick()'s stage sequence with a scoped host timer per stage;
     * taken only on sampled cycles when a profiler is attached. */
    void tickStagesProfiled(Cycle now);
    void processEvents(Cycle now);
    void commitStage(Cycle now);
    void sbDrainStage(Cycle now);
    void issueStage(Cycle now);
    void dispatchStage(Cycle now);
    void chaosStage(Cycle now);
    void watchdogStage(Cycle now);
    void rearmWatchdog(Cycle now);

    // --- helpers ------------------------------------------------------------
    bool tryIssue(DynInst *inst, Cycle now);
    bool tryIssueMemRead(DynInst *inst, Cycle now);
    bool tryIssueStoreCond(DynInst *inst, Cycle now);
    void finishExec(DynInst *inst, Cycle now);
    void performLoad(DynInst *inst, Cycle now);
    void wakeDependents(DynInst *inst);
    void scheduleEvent(DynInst *inst, EventKind kind, Cycle when);
    void requeueIq(DynInst *inst);
    void requeueMemRead(DynInst *inst, Cycle now);
    void eraseFromIq(DynInst *inst);
    void commitOne(DynInst *head, Cycle now);

    /**
     * Flush the pipeline from `from_seq` (inclusive) and refetch at
     * `resume_pc` after the redirect penalty. Releases AQ entries of
     * squashed atomics (unlock_on_squash, §3.1/§3.3.3).
     */
    void squashFrom(SeqNum from_seq, int resume_pc, SquashCause cause,
                    Cycle now);

    static unsigned numSrcRegs(const isa::Inst &si);
    static isa::Reg srcReg(const isa::Inst &si, unsigned slot);

    // --- identity & wiring ---------------------------------------------------
    CoreId coreId;
    CoreConfig cfg;
    isa::Program program;
    mem::MemSystem *memSys;
    analysis::TraceRecorder *tracer = nullptr;
    PipeViewRecorder *pipeview = nullptr;
    chaos::ChaosEngine *chaos = nullptr;
    analysis::Fasan *fasan = nullptr;
    SpanTracer *spans = nullptr;
    HostProfiler *hostProf = nullptr;
    std::function<void(SeqNum, Cycle)> watchdogHook;
    std::uint64_t randSeed;

    // --- architectural state -------------------------------------------------
    std::array<std::int64_t, isa::kNumRegs> archRegsArr{};

    // --- pipeline structures ---------------------------------------------------
    std::deque<std::unique_ptr<DynInst>> rob;
    std::deque<std::unique_ptr<DynInst>> sbOwner;  ///< committed stores
    std::vector<DynInst *> iq;                     ///< age-ordered
    LoadStoreQueue lsq;
    AtomicQueue aq;
    BranchPredictor bp;
    MemDepPredictor mdp;
    StridePrefetcher spf;
    std::array<DynInst *, isa::kNumRegs> renameTable{};
    std::unordered_map<SeqNum, DynInst *> inflight;

    using Event = std::pair<Cycle, SeqNum>;
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>> events;

    std::deque<DynInst *> uncommittedAtomics;
    std::deque<DynInst *> pendingFences;

    // --- frontend state ---------------------------------------------------------
    SeqNum nextSeq = 1;
    int fetchPc = 0;
    Cycle fetchResumeAt = 0;
    bool fetchHalted = false;
    bool haltedFlag = false;
    unsigned inflightPauses = 0;
    std::uint64_t randCounter = 0;

    // --- LL/SC reservation -----------------------------------------------------
    bool linkValid = false;
    Addr linkLine = 0;
    SeqNum linkSeq = kNoSeq;

    // --- watchdog / progress -------------------------------------------------------
    Cycle wdLastProgress = 0;
    SeqNum wdWatchedSeq = kNoSeq;  ///< oldest lock-holder under watch
    Cycle wdCurTimeout = 0;        ///< effective timeout for this arming
    unsigned wdBackoffExp = 0;     ///< consecutive firings w/o atomic commit
    Rng wdRng;                     ///< per-core jitter stream
    Cycle lastCommitAt = 0;
    bool squashedThisCycle = false;
};

} // namespace fa::core

#endif // FA_CORE_CORE_HH
