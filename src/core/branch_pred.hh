/**
 * @file
 * Bimodal (2-bit saturating counter) branch direction predictor.
 *
 * The paper's configuration uses L-TAGE; for the synchronization
 * kernels studied here a bimodal table captures the relevant
 * behaviour (spin loops predict taken, the exit mispredicts once),
 * and the redirect penalty models the pipeline refill cost.
 */

#ifndef FA_CORE_BRANCH_PRED_HH
#define FA_CORE_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

namespace fa::core {

class BranchPredictor
{
  public:
    explicit BranchPredictor(unsigned table_bits);

    /** Predict the direction of the branch at `pc`. */
    bool predict(int pc) const;

    /** Train with the resolved direction. */
    void update(int pc, bool taken);

  private:
    unsigned index(int pc) const;

    std::vector<std::uint8_t> table;  ///< 2-bit counters
    unsigned mask;
};

} // namespace fa::core

#endif // FA_CORE_BRANCH_PRED_HH
