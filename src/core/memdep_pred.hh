/**
 * @file
 * Memory-dependence predictor in the spirit of store sets [10]:
 * after a load violates a memory dependence, it is trained to wait
 * until all older stores have resolved their addresses. Training
 * decays so incidental conflicts do not penalize a load forever.
 */

#ifndef FA_CORE_MEMDEP_PRED_HH
#define FA_CORE_MEMDEP_PRED_HH

#include <cstdint>
#include <unordered_map>

namespace fa::core {

class MemDepPredictor
{
  public:
    /** Must the load at `pc` wait for older stores to resolve? */
    bool
    mustWait(int pc) const
    {
        return strength.find(pc) != strength.end();
    }

    /** A violation was detected for the load at `pc`. */
    void
    trainViolation(int pc)
    {
        strength[pc] = kTrainStrength;
    }

    /** The load at `pc` committed without a violation. */
    void
    commitDecay(int pc)
    {
        auto it = strength.find(pc);
        if (it == strength.end())
            return;
        if (--it->second == 0)
            strength.erase(it);
    }

  private:
    static constexpr std::uint32_t kTrainStrength = 256;
    std::unordered_map<int, std::uint32_t> strength;
};

} // namespace fa::core

#endif // FA_CORE_MEMDEP_PRED_HH
