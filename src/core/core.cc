#include "core/core.hh"

#include <algorithm>

#include "analysis/sanitizer/fasan.hh"
#include "analysis/trace.hh"
#include "common/host_prof.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/span_trace.hh"
#include "core/pipeview.hh"
#include "sim/chaos/chaos.hh"

namespace fa::core {

const char *
atomicsModeName(AtomicsMode mode)
{
    switch (mode) {
      case AtomicsMode::kFenced:  return "baseline";
      case AtomicsMode::kSpec:    return "baseline+Spec";
      case AtomicsMode::kFree:    return "FreeAtomics";
      case AtomicsMode::kFreeFwd: return "FreeAtomics+Fwd";
    }
    return "?";
}

const char *
atomicsModeIdent(AtomicsMode mode)
{
    switch (mode) {
      case AtomicsMode::kFenced:  return "fenced";
      case AtomicsMode::kSpec:    return "spec";
      case AtomicsMode::kFree:    return "free";
      case AtomicsMode::kFreeFwd: return "freefwd";
    }
    return "unknown";
}

AtomicsMode
parseAtomicsMode(const std::string &s)
{
    for (AtomicsMode m :
         {AtomicsMode::kFenced, AtomicsMode::kSpec, AtomicsMode::kFree,
          AtomicsMode::kFreeFwd}) {
        if (s == atomicsModeIdent(m))
            return m;
    }
    fatal("unknown mode '%s' (fenced|spec|free|freefwd)", s.c_str());
}

AtomicsMode
resolveAtomicsMode(AtomicsMode global, isa::RmwModeHint hint)
{
    switch (hint) {
      case isa::RmwModeHint::kInherit: return global;
      case isa::RmwModeHint::kFenced:  return AtomicsMode::kFenced;
      case isa::RmwModeHint::kSpec:    return AtomicsMode::kSpec;
      case isa::RmwModeHint::kFree:    return AtomicsMode::kFree;
      case isa::RmwModeHint::kFreeFwd: return AtomicsMode::kFreeFwd;
    }
    return global;
}

namespace {

bool
isFencedMode(AtomicsMode m)
{
    return m == AtomicsMode::kFenced || m == AtomicsMode::kSpec;
}

const char *
squashCauseName(SquashCause c)
{
    switch (c) {
      case SquashCause::kBranchMispredict: return "branch_mispredict";
      case SquashCause::kMemDepViolation:  return "memdep_violation";
      case SquashCause::kInvalidatedLoad:  return "invalidated_load";
      case SquashCause::kWatchdog:         return "watchdog";
      case SquashCause::kChaos:            return "chaos";
      case SquashCause::kNumCauses:        break;
    }
    return "?";
}

} // namespace

Core::Core(CoreId id, const CoreConfig &config, const isa::Program &prog,
           mem::MemSystem *mem, std::uint64_t rand_seed)
    : coreId(id), cfg(config), program(prog), memSys(mem),
      randSeed(rand_seed),
      lsq(cfg.lqSize, cfg.sqSize),
      aq(cfg.aqSize),
      bp(cfg.bpTableBits),
      wdRng(mix64(rand_seed, 0x5d09))
{
    program.validate();
    renameTable.fill(nullptr);
    memSys->attachCore(coreId, this);
}

Core::~Core() = default;

unsigned
Core::numSrcRegs(const isa::Inst &si)
{
    switch (si.op) {
      case isa::Op::kAlu:
      case isa::Op::kBranch:
      case isa::Op::kStore:
      case isa::Op::kStoreCond:
        return 2;
      case isa::Op::kAddi:
      case isa::Op::kLoad:
      case isa::Op::kLoadLinked:
        return 1;
      case isa::Op::kRmw:
        return 3;
      default:
        return 0;
    }
}

isa::Reg
Core::srcReg(const isa::Inst &si, unsigned slot)
{
    switch (slot) {
      case 0: return si.src1;
      case 1: return si.src2;
      default: return si.src3;
    }
}

void
Core::tick(Cycle now)
{
    if (haltedFlag) {
        ++stats.haltedCycles;
        return;
    }
    ++stats.activeCycles;
    squashedThisCycle = false;

    if (hostProf && hostProf->sampling()) {
        tickStagesProfiled(now);
        return;
    }

    processEvents(now);
    commitStage(now);
    sbDrainStage(now);
    issueStage(now);
    dispatchStage(now);
    if (chaos)
        chaosStage(now);
    watchdogStage(now);
}

void
Core::tickStagesProfiled(Cycle now)
{
    // Keep this in lockstep with tick(): same stages, same order.
    {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreEvents);
        processEvents(now);
    }
    {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreCommit);
        commitStage(now);
    }
    {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreSbDrain);
        sbDrainStage(now);
    }
    {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreIssue);
        issueStage(now);
    }
    {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreDispatch);
        dispatchStage(now);
    }
    if (chaos) {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreChaos);
        chaosStage(now);
    }
    {
        HostProfiler::Timer t(*hostProf, HostPhase::kCoreWatchdog);
        watchdogStage(now);
    }
}

// --------------------------------------------------------------------------
// Events (writeback / memory perform)
// --------------------------------------------------------------------------

void
Core::scheduleEvent(DynInst *inst, EventKind kind, Cycle when)
{
    inst->pendingEvent = static_cast<std::uint8_t>(kind);
    events.emplace(when, inst->seq);
}

void
Core::processEvents(Cycle now)
{
    while (!events.empty() && events.top().first <= now) {
        SeqNum seq = events.top().second;
        events.pop();
        auto it = inflight.find(seq);
        if (it == inflight.end())
            continue;  // squashed or already committed
        DynInst *inst = it->second;
        auto kind = static_cast<EventKind>(inst->pendingEvent);
        inst->pendingEvent = static_cast<std::uint8_t>(EventKind::kNone);
        if (kind == EventKind::kMemPerform)
            performLoad(inst, now);
        else if (kind == EventKind::kExec)
            finishExec(inst, now);
    }
}

void
Core::wakeDependents(DynInst *inst)
{
    for (DynInst *dep : inst->dependents) {
        for (int i = 0; i < 3; ++i) {
            if (dep->prod[i] == inst) {
                dep->prod[i] = nullptr;
                dep->srcVal[i] = inst->result;
                --dep->waitingSrcs;
            }
        }
    }
    inst->dependents.clear();
}

void
Core::finishExec(DynInst *inst, Cycle now)
{
    const isa::Inst &si = inst->si;
    switch (si.op) {
      case isa::Op::kMovi:
        inst->result = si.imm;
        break;
      case isa::Op::kAlu:
        inst->result = isa::evalAlu(si.fn, inst->srcVal[0],
                                    inst->srcVal[1]);
        break;
      case isa::Op::kAddi:
        inst->result = inst->srcVal[0] + si.imm;
        break;
      case isa::Op::kRand:
        inst->result = static_cast<std::int64_t>(
            mix64(randSeed, inst->randSnapshot) %
            static_cast<std::uint64_t>(si.imm));
        break;
      case isa::Op::kBranch: {
        bool taken = isa::evalCond(si.cond, inst->srcVal[0],
                                   inst->srcVal[1]);
        bp.update(inst->pc, taken);
        inst->executed = true;
        inst->completed = true;
        inst->completedAt = now;
        if (taken != inst->predTaken) {
            ++stats.branchMispredicts;
            int resume = taken ? si.target : inst->pc + 1;
            squashFrom(inst->seq + 1, resume,
                       SquashCause::kBranchMispredict, now);
        }
        return;
      }
      case isa::Op::kRmw:
        // The RMW's ALU stage: the old value was bound by
        // performLoad; the destination result is that old value.
        break;
      case isa::Op::kNop:
      case isa::Op::kPause:
        break;
      default:
        panic("finishExec on unexpected op %d", static_cast<int>(si.op));
    }
    inst->executed = true;
    inst->completed = true;
    inst->completedAt = now;
    wakeDependents(inst);
}

// --------------------------------------------------------------------------
// Memory perform (loads and the load_lock half of atomics)
// --------------------------------------------------------------------------

void
Core::requeueMemRead(DynInst *inst, Cycle now)
{
    if (inst->isAtomic() && inst->aqIdx >= 0) {
        aq.clearForward(inst->aqIdx);
        if (spans)
            spans->atomicRetry(coreId, inst->aqIdx, now);
    }
    inst->fwdKind = FwdKind::kNone;
    inst->fwdFromSeq = kNoSeq;
    inst->fwdChain = 0;
    inst->issued = false;
    requeueIq(inst);
}

void
Core::performLoad(DynInst *inst, Cycle now)
{
    // Re-check the SQ at perform time: an older store to the same
    // word may have resolved inside the access/forwarding latency
    // window. The store's resolve-time violation scan only covers
    // loads that already performed, so this perform-time CAM closes
    // the gap — re-schedule and let the issue path forward from (or
    // wait on) the right store.
    DynInst *src = lsq.youngestOlderStore(inst->seq, inst->addr);
    if (inst->fwdKind == FwdKind::kNone) {
        if (src) {
            requeueMemRead(inst, now);
            return;
        }
        // Validate residence at perform time: the line may have been
        // stolen between the hit check and now (remote request in
        // the access-latency window). A load that performed without
        // a resident copy could never be snooped afterwards, losing
        // the TSO load->load safety net — re-schedule instead, as
        // the hardware's LQ-entry retry does.
        bool ok = inst->isAtomic() || inst->isLoadLinked()
            ? memSys->privHasWritePerm(coreId, inst->line())
            : memSys->privHolds(coreId, inst->line());
        if (!ok) {
            requeueMemRead(inst, now);
            return;
        }
    } else if (src && src->seq > inst->fwdFromSeq) {
        // A store younger than the forwarding source resolved inside
        // the forwarding window: the captured value is stale.
        requeueMemRead(inst, now);
        return;
    }
    if (inst->isLoadLinked()) {
        linkValid = true;
        linkLine = inst->line();
        linkSeq = inst->seq;
    }
    if (inst->isAtomic() && inst->fwdKind == FwdKind::kNone) {
        aq.lock(inst->aqIdx, inst->line());
        inst->lockHeld = true;
        inst->lockAcquiredAt = now;
        if (tracer)
            tracer->recordLock(coreId, inst->seq, inst->line(), now);
        FA_TRACE("%llu c%u LOCK seq=%llu pc=%d line=%llx",
                 (unsigned long long)now, coreId,
                 (unsigned long long)inst->seq, inst->pc,
                 (unsigned long long)inst->line());
    }
    if (spans && inst->isAtomic()) {
        // Value bound: lock taken from the cache, or the AQ entry is
        // armed to capture it from the forwarding store (§4.2).
        spans->atomicAcquired(coreId, inst->aqIdx, now,
                              inst->fwdKind == FwdKind::kNone ? "mem"
                                                              : "sq",
                              inst->fwdChain);
    }

    if (cfg.strideLoadPrefetch && inst->isLoad() &&
        inst->fwdKind == FwdKind::kNone) {
        Addr pf = spf.observe(inst->pc, inst->addr);
        if (pf != 0 && !memSys->privHolds(coreId, pf) &&
            !memSys->hasPendingMiss(coreId, pf)) {
            memSys->access(coreId, pf, false, kNoSeq, now, true);
        }
    }

    std::int64_t old_val = inst->fwdKind != FwdKind::kNone
        ? inst->fwdValue
        : memSys->readWord(inst->addr);
    inst->result = old_val;
    inst->performed = true;
    inst->performedAt = now;
    if (tracer) {
        // Capture the reads-from source at the binding instant: a
        // forwarded load names the in-flight store it forwarded from
        // (same thread); a cache read names the last performed writer
        // of the word. Emitted into the trace only if this
        // instruction commits.
        if (inst->fwdKind != FwdKind::kNone) {
            inst->rfInit = false;
            inst->rfThread = coreId;
            inst->rfSeq = inst->fwdFromSeq;
        } else {
            CoreId wt = 0;
            SeqNum ws = kNoSeq;
            inst->rfInit = !tracer->currentWriter(inst->addr, &wt, &ws);
            inst->rfThread = wt;
            inst->rfSeq = ws;
        }
    }
    FA_TRACE("%llu c%u PERF seq=%llu pc=%d %s addr=%llx val=%lld fwd=%d",
             (unsigned long long)now, coreId,
             (unsigned long long)inst->seq, inst->pc,
             inst->isAtomic() ? "rmw" : "load",
             (unsigned long long)inst->addr, (long long)old_val,
             (int)inst->fwdKind);

    if (inst->isAtomic()) {
        inst->storeData = isa::applyRmw(inst->si.rmw, old_val,
                                        inst->srcVal[1], inst->srcVal[2]);
        inst->storeDataValid = true;
        scheduleEvent(inst, EventKind::kExec, now + cfg.rmwOpLatency);
    } else {
        inst->executed = true;
        inst->completed = true;
        inst->completedAt = now;
        wakeDependents(inst);
    }
}

void
Core::onFill(SeqNum waiter, Addr line, bool write_perm, Cycle now)
{
    (void)line;
    (void)write_perm;
    auto it = inflight.find(waiter);
    if (it == inflight.end())
        return;  // squashed, or a committed store polled by the SB
    DynInst *inst = it->second;
    if (inst->waitingFill) {
        inst->waitingFill = false;
        performLoad(inst, now);
    }
}

void
Core::onLineLost(Addr line, Cycle now)
{
    if (linkValid && line == linkLine)
        linkValid = false;
    FA_TRACE("%llu c%u LOST line=%llx", (unsigned long long)now,
             coreId, (unsigned long long)line);
    DynInst *victim = lsq.oldestInvalidatedLoad(line);
    if (victim)
        squashFrom(victim->seq, victim->pc,
                   SquashCause::kInvalidatedLoad, now);
}

bool
Core::isLineLocked(Addr line) const
{
    return aq.isLineLocked(line);
}

void
Core::onLockDenied(Addr line, CoreId requester, Cycle now)
{
    // Called by the memory system only when span tracing is on (the
    // default CoreMemIf body is empty): attribute the denial to the
    // AQ entry holding the line.
    if (!spans)
        return;
    int idx = aq.lockedIndexFor(line);
    if (idx >= 0)
        spans->lockDenied(coreId, idx, line, requester, now);
}

// --------------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------------

void
Core::commitStage(Cycle now)
{
    for (unsigned n = 0; n < cfg.commitWidth && !rob.empty(); ++n) {
        DynInst *head = rob.front().get();
        if (!head->completed)
            break;
        if (head->isAtomic() && lsq.sbCount() > 0) {
            // Free atomics commit only once the SB has drained
            // (store->AtomicRMW order, §3.2.3). In fenced modes the
            // SB drained before issue, so this never triggers there.
            break;
        }
        if (head->isHalt() && lsq.sbCount() > 0)
            break;  // all stores must perform before the thread ends
        commitOne(head, now);
        if (haltedFlag)
            break;
    }
}

void
Core::commitOne(DynInst *head, Cycle now)
{
    lastCommitAt = now;
    head->committedAt = now;
    ++stats.committedInsts;
    FA_TRACE("%llu c%u COMMIT seq=%llu pc=%d %s res=%lld",
             (unsigned long long)now, coreId,
             (unsigned long long)head->seq, head->pc,
             isa::Program::disasm(head->si).c_str(),
             (long long)head->result);

    if (head->writesReg()) {
        archRegsArr[head->si.dst] = head->result;
        if (renameTable[head->si.dst] == head)
            renameTable[head->si.dst] = nullptr;
    }

    switch (head->si.op) {
      case isa::Op::kLoad:
        ++stats.committedLoads;
        if (head->fwdKind != FwdKind::kNone)
            ++stats.regularLoadForwards;
        mdp.commitDecay(head->pc);
        lsq.popFrontLoad(head);
        break;
      case isa::Op::kLoadLinked:
        ++stats.committedLoads;
        lsq.popFrontLoad(head);
        break;
      case isa::Op::kStoreCond:
        if (head->scFailed)
            ++stats.llscFailures;
        else
            ++stats.llscSuccesses;
        lsq.removeStore(head);
        break;
      case isa::Op::kStore:
        ++stats.committedStores;
        break;
      case isa::Op::kRmw: {
        if (fasan)
            fasan->checkAtomicCommit(coreId, now, head->seq, head->pc,
                                     lsq.sbCount());
        if (spans)
            spans->atomicCommitted(coreId, head->aqIdx, now,
                                   lsq.sqDepthBefore(head->seq),
                                   head->drainSbCycles);
        ++stats.committedAtomics;
        stats.atomicPostIssueCycles += now - head->issuedAt;
        hists.atomicLatency.record(now - head->dispatchedAt);
        hists.sbDrain.record(head->drainSbCycles);
        hists.fwdChain.record(head->fwdChain);
        if (isFencedMode(resolveAtomicsMode(cfg.mode,
                                            head->si.rmwMode)))
            stats.implicitFencesExecuted += 2;
        else
            stats.implicitFencesOmitted += 2;
        if (head->fwdKind == FwdKind::kAtomic)
            ++stats.atomicsFwdFromAtomic;
        else if (head->fwdKind == FwdKind::kStore)
            ++stats.atomicsFwdFromStore;
        switch (head->lockSource) {
          case LockSource::kStoreQueue:
            ++stats.lockSourceSq;
            break;
          case LockSource::kL1WritePerm:
            ++stats.lockSourceL1WritePerm;
            break;
          case LockSource::kL2WritePerm:
            ++stats.lockSourceL2WritePerm;
            break;
          default:
            ++stats.lockSourceRemote;
            break;
        }
        mdp.commitDecay(head->pc);
        lsq.popFrontLoad(head);
        if (uncommittedAtomics.empty() ||
            uncommittedAtomics.front() != head)
            panic("atomic commit order violated");
        uncommittedAtomics.pop_front();
        // A committed atomic is real forward progress: the watchdog
        // backoff de-escalates. The §3.2.5 timer itself restarts only
        // when the watched oldest lock-holder changes (watchdogStage).
        wdBackoffExp = 0;
        break;
      }
      case isa::Op::kBranch:
        ++stats.committedBranches;
        break;
      case isa::Op::kMfence:
        ++stats.committedFences;
        break;
      case isa::Op::kPause:
        --inflightPauses;
        break;
      case isa::Op::kHalt:
        haltedFlag = true;
        break;
      default:
        break;
    }

    if (tracer) {
        switch (head->si.op) {
          case isa::Op::kLoad:
          case isa::Op::kLoadLinked:
            tracer->recordCommit(coreId, head->seq, head->pc,
                                 analysis::EvKind::kRead, head->addr,
                                 head->result, head->rfInit,
                                 head->rfThread, head->rfSeq, now,
                                 head->performedAt);
            break;
          case isa::Op::kRmw:
            // Read half; the write half is stamped when the
            // store_unlock performs from the SB.
            tracer->recordCommit(coreId, head->seq, head->pc,
                                 analysis::EvKind::kRmw, head->addr,
                                 head->result, head->rfInit,
                                 head->rfThread, head->rfSeq, now,
                                 head->performedAt);
            break;
          case isa::Op::kStore:
            tracer->recordStoreCommit(coreId, head->seq, head->pc,
                                      head->addr, head->storeData, now);
            break;
          case isa::Op::kStoreCond:
            // A failed SC writes nothing: no memory event.
            if (!head->scFailed) {
                tracer->recordStoreCommit(coreId, head->seq, head->pc,
                                          head->addr, head->storeData,
                                          now);
            }
            break;
          case isa::Op::kMfence:
            tracer->recordCommit(coreId, head->seq, head->pc,
                                 analysis::EvKind::kFence, 0, 0, true,
                                 0, kNoSeq, now, now);
            break;
          default:
            break;
        }
    }

    head->committed = true;
    inflight.erase(head->seq);

    if (head->usesSq() && !head->isStoreCond()) {
        // The store (or store_unlock) enters the store buffer and
        // stays alive until it performs. Its pipeview record is
        // flushed at perform time so the block carries the SB-exit
        // tick and, for atomics, the lock-release event.
        head->inSb = true;
        lsq.noteEnteredSb();
        sbOwner.push_back(std::move(rob.front()));
    } else if (pipeview) {
        pipeview->retire(coreId, *head, false);
    }
    rob.pop_front();
}

// --------------------------------------------------------------------------
// Store buffer drain
// --------------------------------------------------------------------------

void
Core::sbDrainStage(Cycle now)
{
    auto &sq = lsq.stores();
    if (sq.empty() || !sq.front()->inSb)
        return;
    DynInst *st = sq.front();
    Addr line = st->line();

    if (!memSys->privHasWritePerm(coreId, line)) {
        // Re-arm whenever no miss is outstanding: a granted line can
        // be stolen or evicted again before the store performs.
        if (!memSys->hasPendingMiss(coreId, line)) {
            auto r = memSys->access(coreId, line, true, st->seq, now);
            st->fillRequested = r == mem::AccessOutcome::kMiss;
        }
        return;
    }

    if (!memSys->performStoreWrite(coreId, st->addr, st->storeData, now))
        return;  // every L1 way locked; retry

    st->performed = true;
    st->performedAt = now;
    if (tracer)
        tracer->recordWritePerform(coreId, st->seq, st->addr,
                                   st->storeData, now);
    ++stats.sbStoresPerformed;
    FA_TRACE("%llu c%u STPERF seq=%llu pc=%d %s addr=%llx val=%lld",
             (unsigned long long)now, coreId,
             (unsigned long long)st->seq, st->pc,
             st->isAtomic() ? "unlock" : "store",
             (unsigned long long)st->addr, (long long)st->storeData);

    // Broadcast the SQid: a younger forwarded load_lock's AQ entry
    // captures the lock (lock_on_access / do_not_unlock, §4.2).
    unsigned captures = aq.broadcastStorePerform(st->seq, line);

    if (st->isAtomic()) {
        // store_unlock: release this atomic's own AQ entry. The line
        // stays locked iff a younger entry captured it above.
        if (spans)
            spans->atomicUnlocked(coreId, st->aqIdx, now);
        aq.release(st->aqIdx);
        if (tracer && !aq.isLineLocked(line)) {
            // Chain-final drain: the line is genuinely unlocked. A
            // release whose lock a younger forwarded entry captured
            // (do_not_unlock handoff) keeps the window open instead.
            tracer->recordUnlock(coreId, st->seq, line, now, "drain");
        }
        if (fasan)
            fasan->checkUnlockHandoff(coreId, now, st->seq, line,
                                      captures, aq.isLineLocked(line));
        st->aqIdx = -1;
        st->lockHeld = false;
        st->lockReleasedAt = now;
        // A forwarded atomic captures the lock only when its source
        // performs (broadcastStorePerform), which DynInst does not
        // see; approximate that tenure start with commit time.
        hists.lockHold.record(
            now - (st->lockAcquiredAt ? st->lockAcquiredAt
                                      : st->committedAt));
    } else if (captures > 0) {
        // lock_on_access from an ordinary store: the capture must
        // leave the line locked. The exclusion window opens here —
        // the forwarded atomic's lock tenure starts at its source's
        // perform, not at its own bind.
        if (tracer)
            tracer->recordLock(coreId, st->seq, line, now);
        if (fasan)
            fasan->checkUnlockHandoff(coreId, now, st->seq, line,
                                      captures, aq.isLineLocked(line));
    }
    if (pipeview)
        pipeview->retire(coreId, *st, false);

    lsq.popFrontStore(st);
    lsq.noteLeftSb();
    if (sbOwner.empty() || sbOwner.front().get() != st)
        panic("store buffer ownership out of order");
    sbOwner.pop_front();

    // Non-speculative store coalescing [44]: consecutive committed
    // stores to the same line drain in the same cycle. The combined
    // writes surface at one instant, which hides only same-line
    // intermediate states - a legal TSO interleaving.
    if (cfg.sbCoalescing && !st->isAtomic()) {
        while (!sq.empty() && sq.front()->inSb) {
            DynInst *next_st = sq.front();
            if (next_st->isAtomic() || next_st->line() != line)
                break;
            if (!memSys->performStoreWrite(coreId, next_st->addr,
                                           next_st->storeData, now)) {
                break;
            }
            next_st->performed = true;
            next_st->performedAt = now;
            if (tracer)
                tracer->recordWritePerform(coreId, next_st->seq,
                                           next_st->addr,
                                           next_st->storeData, now);
            ++stats.sbStoresPerformed;
            ++stats.sbCoalescedStores;
            unsigned cap2 = aq.broadcastStorePerform(next_st->seq, line);
            if (cap2 > 0) {
                if (tracer)
                    tracer->recordLock(coreId, next_st->seq, line, now);
                if (fasan)
                    fasan->checkUnlockHandoff(coreId, now, next_st->seq,
                                              line, cap2,
                                              aq.isLineLocked(line));
            }
            if (pipeview)
                pipeview->retire(coreId, *next_st, false);
            lsq.popFrontStore(next_st);
            lsq.noteLeftSb();
            if (sbOwner.empty() || sbOwner.front().get() != next_st)
                panic("store buffer ownership out of order");
            sbOwner.pop_front();
        }
    }
}

// --------------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------------

void
Core::issueStage(Cycle now)
{
    unsigned issued = 0;
    for (size_t i = 0; i < iq.size() && issued < cfg.issueWidth;) {
        DynInst *inst = iq[i];
        if (tryIssue(inst, now)) {
            // tryIssue may have erased other entries via a squash;
            // re-find our slot conservatively.
            if (!inst->issuedAt)
                inst->issuedAt = now;
            eraseFromIq(inst);
            ++issued;
            ++stats.issuedUops;
            if (squashedThisCycle)
                break;
        } else {
            if (squashedThisCycle)
                break;
            ++i;
        }
    }
}

bool
Core::tryIssue(DynInst *inst, Cycle now)
{
    if (inst->waitingSrcs > 0)
        return false;

    const isa::Inst &si = inst->si;
    switch (si.op) {
      case isa::Op::kPause:
        scheduleEvent(inst, EventKind::kExec, now + cfg.pauseLatency);
        inst->issued = true;
        return true;
      case isa::Op::kNop:
      case isa::Op::kMovi:
      case isa::Op::kAddi:
      case isa::Op::kRand:
        scheduleEvent(inst, EventKind::kExec, now + cfg.aluLatency);
        inst->issued = true;
        return true;
      case isa::Op::kAlu: {
        unsigned lat = si.latency ? si.latency
            : (si.fn == isa::AluFn::kMul ? cfg.mulLatency
                                         : cfg.aluLatency);
        scheduleEvent(inst, EventKind::kExec, now + lat);
        inst->issued = true;
        return true;
      }
      case isa::Op::kBranch:
        scheduleEvent(inst, EventKind::kExec, now + cfg.aluLatency);
        inst->issued = true;
        return true;
      case isa::Op::kMfence: {
        // An MFENCE completes once every older memory operation has
        // performed and the SB is empty.
        if (!lsq.allOlderLoadsPerformed(inst->seq) ||
            lsq.anyOlderStore(inst->seq)) {
            return false;
        }
        inst->executed = true;
        inst->completed = true;
        inst->completedAt = now;
        if (pendingFences.empty() || pendingFences.front() != inst)
            panic("fence completion order violated");
        pendingFences.pop_front();
        inst->issued = true;
        return true;
      }
      case isa::Op::kStore: {
        inst->addr = static_cast<Addr>(inst->srcVal[0] + si.imm) &
            ~Addr{kWordBytes - 1};
        inst->addrValid = true;
        inst->storeData = inst->srcVal[1];
        inst->storeDataValid = true;
        inst->executed = true;
        inst->completed = true;
        inst->completedAt = now;
        inst->issued = true;

        DynInst *violator = lsq.oldestMemDepViolator(inst);
        if (violator) {
            mdp.trainViolation(violator->pc);
            squashFrom(violator->seq, violator->pc,
                       SquashCause::kMemDepViolation, now);
        } else if (cfg.storePrefetch && !inst->prefetchSent &&
                   !memSys->privHasWritePerm(coreId, inst->line())) {
            // At-commit store prefetch [54]: acquire write permission
            // ahead of the SB drain.
            inst->prefetchSent = true;
            memSys->access(coreId, inst->line(), true, kNoSeq, now,
                           true);
        }
        return true;
      }
      case isa::Op::kLoad:
      case isa::Op::kRmw:
      case isa::Op::kLoadLinked:
        return tryIssueMemRead(inst, now);
      case isa::Op::kStoreCond:
        return tryIssueStoreCond(inst, now);
      default:
        panic("unexpected op %d in issue queue",
              static_cast<int>(si.op));
    }
}

bool
Core::tryIssueStoreCond(DynInst *inst, Cycle now)
{
    // A store-conditional resolves at the head of the ROB, as real
    // LL/SC implementations do: the success decision and the write
    // must be indivisible, which holding the reservation plus write
    // permission at commit time provides.
    if (!inst->addrValid) {
        inst->addr = static_cast<Addr>(inst->srcVal[0] + inst->si.imm) &
            ~Addr{kWordBytes - 1};
        inst->addrValid = true;
    }
    if (rob.empty() || rob.front().get() != inst)
        return false;
    // TSO store->store order: the SC's write must not overtake older
    // stores still draining from the SB.
    if (lsq.sbCount() > 0)
        return false;

    Addr line = inst->line();
    bool link_ok = linkValid && linkLine == line;
    if (link_ok && !memSys->privHasWritePerm(coreId, line)) {
        // Acquire write permission while keeping the reservation; if
        // the fill's invalidation of others races with a remote
        // write, our link is cleared and the SC fails below.
        if (!inst->prefetchSent &&
            !memSys->hasPendingMiss(coreId, line)) {
            memSys->access(coreId, line, true, kNoSeq, now, true);
            inst->prefetchSent = true;
        }
        if (!memSys->privHasWritePerm(coreId, line))
            return false;
    }

    linkValid = false;  // any SC consumes the reservation
    if (link_ok) {
        // Perform the write immediately: the line is exclusive and
        // the reservation guarantees no write intervened since LL.
        DynInst *violator = lsq.oldestMemDepViolator(inst);
        if (violator) {
            mdp.trainViolation(violator->pc);
            squashFrom(violator->seq, violator->pc,
                       SquashCause::kMemDepViolation, now);
        }
        inst->storeData = inst->srcVal[1];
        inst->storeDataValid = true;
        if (!memSys->performStoreWrite(coreId, inst->addr,
                                       inst->storeData, now)) {
            return false;  // all L1 ways locked; retry
        }
        inst->performed = true;
        inst->performedAt = now;
        if (tracer)
            tracer->recordWritePerform(coreId, inst->seq, inst->addr,
                                       inst->storeData, now);
        inst->result = 0;
    } else {
        inst->scFailed = true;
        inst->result = 1;
    }
    inst->executed = true;
    inst->completed = true;
    inst->completedAt = now;
    inst->issued = true;
    wakeDependents(inst);
    return true;
}

bool
Core::tryIssueMemRead(DynInst *inst, Cycle now)
{
    const isa::Inst &si = inst->si;
    if (!inst->addrValid) {
        inst->addr = static_cast<Addr>(inst->srcVal[0] + si.imm) &
            ~Addr{kWordBytes - 1};
        inst->addrValid = true;

        if (inst->isAtomic()) {
            // A resolving load_lock may expose a violation by an
            // already-performed younger load to the same word; the
            // symmetric store-side check handles ordinary stores.
            DynInst *violator = lsq.oldestMemDepViolator(inst);
            if (violator) {
                mdp.trainViolation(violator->pc);
                squashFrom(violator->seq, violator->pc,
                           SquashCause::kMemDepViolation, now);
                return false;
            }
        }
    }

    // Explicit MFENCE ordering.
    if (!pendingFences.empty() &&
        pendingFences.front()->seq < inst->seq) {
        return false;
    }

    // Mem_Fence2: with fenced atomics, younger loads (including
    // younger load_locks) stall until the atomic commits. The stall
    // belongs to the older atomic, so its per-site mode decides.
    if (!uncommittedAtomics.empty() &&
        uncommittedAtomics.front()->seq < inst->seq &&
        isFencedMode(resolveAtomicsMode(
            cfg.mode, uncommittedAtomics.front()->si.rmwMode))) {
        ++stats.fence2LoadStallCycles;
        return false;
    }

    const AtomicsMode inst_mode =
        inst->si.op == isa::Op::kRmw
            ? resolveAtomicsMode(cfg.mode, inst->si.rmwMode)
            : cfg.mode;

    if (inst->isAtomic()) {
        if (cfg.inOrderLockAcquisition) {
            for (DynInst *a : uncommittedAtomics) {
                if (a->seq >= inst->seq)
                    break;
                if (!a->performed)
                    return false;
            }
        }
        if (cfg.lockIssueWindow != 0 && !rob.empty() &&
            inst->seq - rob.front()->seq >= cfg.lockIssueWindow) {
            return false;
        }
        if (inst_mode == AtomicsMode::kFenced) {
            // Mem_Fence1: issue only as the oldest instruction with
            // an empty SB.
            if (rob.empty() || rob.front().get() != inst)
                return false;
            if (lsq.sbCount() > 0 || lsq.anyOlderStore(inst->seq)) {
                ++stats.atomicDrainSbCycles;
                ++inst->drainSbCycles;
                return false;
            }
        } else if (inst_mode == AtomicsMode::kSpec) {
            // §3.1: speculative issue, but every older memory
            // operation must have performed.
            if (lsq.anyOlderStore(inst->seq)) {
                ++stats.atomicDrainSbCycles;
                ++inst->drainSbCycles;
                return false;
            }
            if (!lsq.allOlderLoadsPerformed(inst->seq))
                return false;
        }
    }

    // Store-set predictor: a trained load waits until all older
    // store addresses are known.
    if (mdp.mustWait(inst->pc) &&
        lsq.anyOlderUnresolvedStore(inst->seq)) {
        return false;
    }

    DynInst *st = lsq.youngestOlderStore(inst->seq, inst->addr);
    if (st) {
        bool can_fwd;
        if (inst->isAtomic())
            can_fwd = inst_mode == AtomicsMode::kFreeFwd;
        else if (inst->isLoadLinked())
            can_fwd = false;  // the reservation needs a cache access
        else
            can_fwd = true;
        if (!can_fwd || !st->storeDataValid) {
            // §3.2.1 footnote: the load_lock (or a load hitting an
            // unready store) is re-scheduled until the store leaves
            // the SQ or its data becomes available.
            return false;
        }
        if (inst->isAtomic() && st->isAtomic()) {
            unsigned chain = st->fwdChain + 1;
            unsigned cap = cfg.fwdChainCap;
            if (chaos)
                cap = chaos->fwdCapJitter(chain, cap);
            if (chain > cap) {
                ++stats.fwdChainBreaks;
                return false;  // wait for the store to perform
            }
            inst->fwdChain = chain;
        } else if (inst->isAtomic()) {
            inst->fwdChain = 1;
        }
        inst->fwdKind = st->isAtomic() ? FwdKind::kAtomic
                                       : FwdKind::kStore;
        inst->fwdFromSeq = st->seq;
        inst->fwdValue = st->storeData;
        if (inst->isAtomic()) {
            aq.setForwardedFrom(inst->aqIdx, st->seq);
            inst->lockSource = LockSource::kStoreQueue;
            if (spans)
                spans->atomicFwdHop(coreId, inst->aqIdx, st->seq,
                                    inst->fwdChain, now);
            if (tracer)
                tracer->recordFwdHop(coreId, inst->seq, st->seq,
                                     inst->fwdChain, now);
        }
        if (!inst->issuedAt)
            inst->issuedAt = now;
        inst->issued = true;
        scheduleEvent(inst, EventKind::kMemPerform,
                      now + cfg.fwdLatency);
        return true;
    }

    Addr line = inst->line();
    if (inst->isAtomic()) {
        auto state = memSys->privState(coreId, line);
        if (memSys->l1Holds(coreId, line) && mem::hasWritePerm(state))
            inst->lockSource = LockSource::kL1WritePerm;
        else if (mem::hasWritePerm(state))
            inst->lockSource = LockSource::kL2WritePerm;
        else
            inst->lockSource = LockSource::kRemote;
    }

    bool want_write = inst->isAtomic() || inst->isLoadLinked();
    auto outcome = memSys->access(coreId, line, want_write, inst->seq,
                                  now);
    switch (outcome) {
      case mem::AccessOutcome::kL1Hit:
        scheduleEvent(inst, EventKind::kMemPerform,
                      now + memSys->config().l1HitLatency);
        break;
      case mem::AccessOutcome::kL2Hit:
        scheduleEvent(inst, EventKind::kMemPerform,
                      now + memSys->config().l1HitLatency +
                          memSys->config().l2HitLatency);
        break;
      case mem::AccessOutcome::kMiss:
        inst->waitingFill = true;
        break;
      case mem::AccessOutcome::kBlocked:
        return false;
    }
    if (!inst->issuedAt)
        inst->issuedAt = now;
    inst->issued = true;
    return true;
}

// --------------------------------------------------------------------------
// Dispatch (fetch + rename)
// --------------------------------------------------------------------------

void
Core::dispatchStage(Cycle now)
{
    if (fetchHalted || now < fetchResumeAt)
        return;
    if (inflightPauses > 0)
        return;  // PAUSE de-pipelines the spin loop (x86 semantics)

    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        if (fetchPc < 0 ||
            static_cast<size_t>(fetchPc) >= program.code.size()) {
            return;  // wrong path ran off the program; await squash
        }
        if (rob.size() >= cfg.robSize) {
            ++stats.dispatchStallRobCycles;
            return;
        }
        const isa::Inst &si = program.code[fetchPc];
        bool uses_iq = si.op != isa::Op::kHalt && si.op != isa::Op::kJump;
        if (uses_iq && iq.size() >= cfg.iqSize)
            return;
        bool is_load = si.op == isa::Op::kLoad ||
            si.op == isa::Op::kLoadLinked;
        bool is_store = si.op == isa::Op::kStore ||
            si.op == isa::Op::kStoreCond;
        bool is_atomic = si.op == isa::Op::kRmw;
        if ((is_load || is_atomic) && lsq.lqFull()) {
            ++stats.dispatchStallLsqCycles;
            return;
        }
        if ((is_store || is_atomic) && lsq.sqFull()) {
            ++stats.dispatchStallLsqCycles;
            return;
        }
        if (is_atomic && aq.full()) {
            ++stats.dispatchStallAqCycles;
            return;
        }

        auto owned = std::make_unique<DynInst>();
        DynInst *inst = owned.get();
        inst->seq = nextSeq++;
        inst->pc = fetchPc;
        inst->si = si;
        inst->dispatchedAt = now;
        inst->randSnapshot = randCounter;
        if (si.op == isa::Op::kRand)
            ++randCounter;

        unsigned nsrc = numSrcRegs(si);
        for (unsigned s = 0; s < nsrc; ++s) {
            isa::Reg r = srcReg(si, s);
            if (r == 0) {
                inst->srcVal[s] = 0;
                continue;
            }
            DynInst *producer = renameTable[r];
            if (producer && !producer->executed) {
                inst->prod[s] = producer;
                producer->dependents.push_back(inst);
                ++inst->waitingSrcs;
            } else if (producer) {
                inst->srcVal[s] = producer->result;
            } else {
                inst->srcVal[s] = archRegsArr[r];
            }
        }
        if (inst->writesReg())
            renameTable[si.dst] = inst;

        if (inst->usesLq())
            lsq.pushLoad(inst);
        if (inst->usesSq())
            lsq.pushStore(inst);
        if (is_atomic) {
            inst->aqIdx = aq.allocate(inst->seq);
            if (inst->aqIdx < 0)
                panic("AQ allocation failed after full check");
            uncommittedAtomics.push_back(inst);
            if (spans)
                spans->atomicDispatch(coreId, inst->aqIdx, inst->seq,
                                      static_cast<Addr>(inst->pc),
                                      now);
        }
        if (si.op == isa::Op::kMfence)
            pendingFences.push_back(inst);
        if (si.op == isa::Op::kPause)
            ++inflightPauses;

        // Next fetch pc (branch prediction happens here).
        switch (si.op) {
          case isa::Op::kBranch:
            inst->predTaken = bp.predict(fetchPc);
            fetchPc = inst->predTaken ? si.target : fetchPc + 1;
            break;
          case isa::Op::kJump:
            inst->executed = true;
            inst->completed = true;
            inst->issuedAt = now;  // executes at dispatch, no IQ pass
            inst->completedAt = now;
            fetchPc = si.target;
            break;
          case isa::Op::kHalt:
            inst->executed = true;
            inst->completed = true;
            inst->issuedAt = now;
            inst->completedAt = now;
            fetchHalted = true;
            break;
          default:
            ++fetchPc;
            break;
        }

        if (uses_iq) {
            inst->inIq = true;
            iq.push_back(inst);
        }
        inflight[inst->seq] = inst;
        rob.push_back(std::move(owned));
        ++stats.fetchedInsts;

        if (fetchHalted || inflightPauses > 0)
            return;
    }
}

// --------------------------------------------------------------------------
// Squash
// --------------------------------------------------------------------------

void
Core::eraseFromIq(DynInst *inst)
{
    if (!inst->inIq)
        return;
    auto it = std::find(iq.begin(), iq.end(), inst);
    if (it != iq.end())
        iq.erase(it);
    inst->inIq = false;
}

void
Core::requeueIq(DynInst *inst)
{
    if (inst->inIq)
        return;
    auto it = std::lower_bound(
        iq.begin(), iq.end(), inst,
        [](const DynInst *a, const DynInst *b) { return a->seq < b->seq; });
    iq.insert(it, inst);
    inst->inIq = true;
}

void
Core::squashFrom(SeqNum from_seq, int resume_pc, SquashCause cause,
                 Cycle now)
{
    ++stats.squashEvents[static_cast<int>(cause)];
    squashedThisCycle = true;
    FA_TRACE("%llu c%u SQUASH from=%llu resume_pc=%d cause=%d",
             (unsigned long long)now, coreId,
             (unsigned long long)from_seq, resume_pc,
             static_cast<int>(cause));

    std::uint64_t rand_restore = randCounter;
    // Drop the LQ/SQ tails first: the ROB owns the DynInsts, so the
    // pop_back loop below frees them and the queues' back pointers
    // would dangle.
    lsq.squashFrom(from_seq);
    while (!rob.empty() && rob.back()->seq >= from_seq) {
        DynInst *inst = rob.back().get();
        inst->squashed = true;
        ++stats.squashedInsts;
        rand_restore = inst->randSnapshot;

        eraseFromIq(inst);
        for (int i = 0; i < 3; ++i) {
            if (inst->prod[i]) {
                auto &deps = inst->prod[i]->dependents;
                deps.erase(std::remove(deps.begin(), deps.end(), inst),
                           deps.end());
                inst->prod[i] = nullptr;
            }
        }
        if (inst->aqIdx >= 0) {
            if (spans)
                spans->atomicSquashed(coreId, inst->aqIdx, now,
                                      squashCauseName(cause));
            if (tracer)
                tracer->recordSquash(coreId, inst->seq, now,
                                     squashCauseName(cause));
            if (inst->lockHeld && chaos && chaos->dropUnlock(coreId)) {
                // Injected simulator bug: the unlock_on_squash
                // message is lost and the AQ entry leaks its lock.
                // Nothing in the pipeline will release it; the run
                // can only end in the global progress-window abort,
                // and forensics must flag the stale entry.
                inst->aqIdx = -1;
                inst->lockHeld = false;
            } else {
                // unlock_on_squash (§3.1) and the §3.3.3
                // responsibility take-back: clearing the entry both
                // lifts a held lock and cancels a pending SQid
                // capture.
                bool held = inst->lockHeld;
                aq.release(inst->aqIdx);
                inst->aqIdx = -1;
                if (held && tracer && !aq.isLineLocked(inst->line())) {
                    // unlock_on_squash closed the exclusion window.
                    tracer->recordUnlock(coreId, inst->seq,
                                         inst->line(), now, "squash");
                }
                if (inst->lockHeld) {
                    inst->lockHeld = false;
                    inst->lockReleasedAt = now;
                    hists.lockHold.record(
                        now - (inst->lockAcquiredAt ? inst->lockAcquiredAt
                                                    : now));
                }
            }
        }
        if (pipeview)
            pipeview->retire(coreId, *inst, true);
        if (inst->isAtomic()) {
            if (uncommittedAtomics.empty() ||
                uncommittedAtomics.back() != inst)
                panic("atomic squash order violated");
            uncommittedAtomics.pop_back();
        }
        if (inst->isFence() && !pendingFences.empty() &&
            pendingFences.back() == inst) {
            pendingFences.pop_back();
        }
        if (inst->si.op == isa::Op::kPause)
            --inflightPauses;
        inflight.erase(inst->seq);
        rob.pop_back();
    }
    randCounter = rand_restore;
    if (linkValid && linkSeq >= from_seq)
        linkValid = false;

    // Rebuild the rename table from the surviving window.
    renameTable.fill(nullptr);
    for (auto &owned : rob) {
        DynInst *inst = owned.get();
        if (inst->writesReg())
            renameTable[inst->si.dst] = inst;
    }

    fetchPc = resume_pc;
    fetchHalted = false;
    fetchResumeAt = now + cfg.redirectPenalty;

    if (fasan) {
        fasan->checkSquashCleanup(
            coreId, now, from_seq, aq, [this](SeqNum s) {
                return hasInflight(s) || seqInStoreQueue(s);
            });
    }
}

void
Core::fasanFinal(Cycle now)
{
    if (fasan)
        fasan->checkFinal(coreId, now, aq);
}

// --------------------------------------------------------------------------
// Chaos injection (core-side fault classes)
// --------------------------------------------------------------------------

void
Core::chaosStage(Cycle now)
{
    // Squash storm: a wrong-path burst lands on a random in-flight
    // atomic, exercising unlock_on_squash (§3.1) and, in +Fwd mode,
    // the §3.3.3 forwarding-responsibility take-back under fire.
    if (!squashedThisCycle && !uncommittedAtomics.empty() &&
        chaos->squashStormTick(coreId)) {
        unsigned idx = chaos->stormVictimIndex(
            static_cast<unsigned>(uncommittedAtomics.size()));
        DynInst *victim = uncommittedAtomics[idx];
        if (spans)
            spans->coreInstant(coreId, "chaos_squash_storm",
                               victim->seq, now);
        squashFrom(victim->seq, victim->pc, SquashCause::kChaos, now);
    }

    // Replacement pressure: while a lock is held, issue prefetches
    // that map to the locked line's L1 set, attacking the §3.2.4
    // locked-victim exclusion and the lock-aware fill path.
    if (aq.anyLocked() && chaos->evictPressureTick(coreId)) {
        Addr locked_line = 0;
        for (unsigned i = 0; i < aq.size(); ++i) {
            const auto &e = aq.entry(static_cast<int>(i));
            if (e.valid && e.locked) {
                locked_line = e.line;
                break;
            }
        }
        if (locked_line != 0) {
            Addr set_stride = static_cast<Addr>(
                memSys->config().l1Sets) * kLineBytes;
            Addr pf = locked_line +
                chaos->evictPressureWay() * set_stride;
            if (!memSys->privHolds(coreId, pf) &&
                !memSys->hasPendingMiss(coreId, pf)) {
                memSys->access(coreId, pf, false, kNoSeq, now, true);
            }
        }
    }
}

// --------------------------------------------------------------------------
// Watchdog (§3.2.5)
// --------------------------------------------------------------------------

void
Core::rearmWatchdog(Cycle now)
{
    (void)now;
    unsigned exp = cfg.watchdogBackoff
        ? std::min(wdBackoffExp, cfg.watchdogBackoffMaxExp)
        : 0;
    Cycle base = static_cast<Cycle>(cfg.watchdogThreshold) << exp;
    Cycle jitter = 0;
    if (cfg.watchdogJitterPct) {
        jitter = wdRng.below(
            base * cfg.watchdogJitterPct / 100 + 1);
    }
    wdCurTimeout = base + jitter;
}

void
Core::watchdogStage(Cycle now)
{
    if (!aq.anyLocked()) {
        wdWatchedSeq = kNoSeq;
        wdLastProgress = now;
        return;
    }
    SeqNum oldest = aq.oldestLockedSeq();
    if (oldest != wdWatchedSeq) {
        // Timer discipline (§3.2.5): restart only when the oldest
        // lock-holding atomic changes identity — the previous holder
        // released its lock or was flushed. Commits of unrelated
        // instructions and younger lock acquisitions never feed the
        // timer, so a busy commit stream cannot starve it.
        wdWatchedSeq = oldest;
        wdLastProgress = now;
        rearmWatchdog(now);
        return;
    }
    if (now - wdLastProgress <= wdCurTimeout)
        return;

    SeqNum victim_seq = oldest;
    auto it = inflight.find(victim_seq);
    if (it == inflight.end()) {
        // The lock-holding atomic already committed; its
        // store_unlock will perform imminently.
        wdLastProgress = now;
        return;
    }
    DynInst *victim = it->second;
    ++stats.watchdogTimeouts;
    hists.wdBackoff.record(wdCurTimeout);
    if (fasan)
        fasan->checkWatchdogVictim(coreId, now, victim->seq,
                                   victim->isAtomic(), victim->aqIdx,
                                   true);
    if (watchdogHook)
        watchdogHook(victim->seq, now);
    if (spans)
        spans->coreInstant(coreId, "watchdog_victim", victim->seq,
                           now);
    if (traceEnabled() && !rob.empty()) {
        DynInst *head = rob.front().get();
        FA_TRACE("%llu c%u WDOG victim=%llu robhead seq=%llu pc=%d "
                 "%s compl=%d perf=%d issued=%d wsrc=%d sb=%u",
                 (unsigned long long)now, coreId,
                 (unsigned long long)victim->seq,
                 (unsigned long long)head->seq, head->pc,
                 isa::Program::disasm(head->si).c_str(),
                 head->completed, head->performed, head->issued,
                 head->waitingSrcs, lsq.sbCount());
        if (!lsq.stores().empty()) {
            DynInst *sh = lsq.stores().front();
            FA_TRACE("   sbhead seq=%llu pc=%d %s inSb=%d addr=%llx "
                     "perm=%d fillReq=%d",
                     (unsigned long long)sh->seq, sh->pc,
                     isa::Program::disasm(sh->si).c_str(), sh->inSb,
                     (unsigned long long)sh->addr,
                     memSys->privHasWritePerm(coreId, sh->line()),
                     sh->fillRequested);
        }
    }
    squashFrom(victim->seq, victim->pc, SquashCause::kWatchdog, now);
    // Escalate: consecutive firings without an atomic committing in
    // between double the next timeout (capped), so repeated flushes
    // of the same contended line space out instead of synchronizing
    // with a remote core's identical watchdog (flush–reacquire
    // livelock). The re-arm happens when the next holder is watched.
    if (cfg.watchdogBackoff && wdBackoffExp < cfg.watchdogBackoffMaxExp)
        ++wdBackoffExp;
    wdLastProgress = now;
}

} // namespace fa::core
