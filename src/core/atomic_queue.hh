/**
 * @file
 * The Atomic Queue (AQ), the paper's hardware structure (§4): a
 * small FIFO tracking, per in-flight atomic RMW, whether it holds a
 * cacheline lock, which line, its sequence number, and the SQ entry
 * it forwarded from (for do_not_unlock / lock_on_access handling).
 *
 * The hardware searches the AQ associatively by set/way (external
 * requests and replacement), by SQid (forwarding broadcasts) and by
 * seqNum (flushes). The model stores full line addresses — the same
 * information a set/way locator provides — and performs the same
 * associative searches.
 */

#ifndef FA_CORE_ATOMIC_QUEUE_HH
#define FA_CORE_ATOMIC_QUEUE_HH

#include <vector>

#include "common/types.hh"

namespace fa::core {

class AtomicQueue
{
  public:
    struct Entry
    {
        bool valid = false;
        bool locked = false;
        Addr line = 0;
        SeqNum seq = kNoSeq;
        SeqNum sqId = kNoSeq;  ///< forwarding store's seq (0 = none)
    };

    explicit AtomicQueue(unsigned size);

    unsigned size() const { return static_cast<unsigned>(slots.size()); }
    unsigned occupancy() const;
    bool full() const { return occupancy() == size(); }

    /** Allocate an entry for a dispatching atomic; -1 when full. */
    int allocate(SeqNum seq);

    /** Free an entry (store_unlock performed, or squash). */
    void release(int idx);

    /** Record that the atomic holds the lock on `line`. */
    void lock(int idx, Addr line);

    /** Drop the lock without freeing the entry. */
    void unlock(int idx);

    /** Record a forwarding source (Locked bit untouched, §4.2). */
    void setForwardedFrom(int idx, SeqNum store_seq);

    /** Cancel a pending forward capture (load_lock re-scheduled). */
    void clearForward(int idx);

    /**
     * A store left the SQ and wrote `line`: any entry waiting on its
     * SQid captures the lock (implements both lock_on_access and the
     * forwarding half of do_not_unlock, §4.2).
     *
     * @return number of entries that captured the lock
     */
    unsigned broadcastStorePerform(SeqNum store_seq, Addr line);

    /** Is `line` locked by any valid entry? (external request CAM) */
    bool isLineLocked(Addr line) const;

    /** Index of the valid entry holding `line` locked; -1 if none
     * (span tracing attributes remote denials to the AQ track). */
    int lockedIndexFor(Addr line) const;

    /** Any entry currently holding a lock? (watchdog arm condition) */
    bool anyLocked() const;

    /** Sequence number of the oldest lock-holding atomic (watchdog
     * flush point); kNoSeq if none. */
    SeqNum oldestLockedSeq() const;

    const Entry &entry(int idx) const { return slots.at(idx); }

  private:
    std::vector<Entry> slots;
};

} // namespace fa::core

#endif // FA_CORE_ATOMIC_QUEUE_HH
