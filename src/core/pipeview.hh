/**
 * @file
 * Per-instruction pipeline lifecycle tracing in gem5's O3PipeView
 * format, viewable in Konata and the classic o3-pipeview.py script.
 *
 * The core emits one record block per retired or squashed
 * instruction, in retirement order:
 *
 *   O3PipeView:fetch:<tick>:0x<pc>:0:<id>:[c<core>] <disasm>
 *   O3PipeView:decode:<tick>
 *   O3PipeView:rename:<tick>
 *   O3PipeView:dispatch:<tick>
 *   O3PipeView:issue:<tick>
 *   O3PipeView:complete:<tick>
 *   O3PipeView:retire:<tick>:store:<tick>
 *
 * Ticks are (cycle + 1) so 0 unambiguously means "stage not reached"
 * (gem5's own convention for squashed instructions). The model fuses
 * fetch/decode/rename/dispatch into one stage, so those four share
 * the dispatch tick. Squashed instructions carry retire tick 0.
 *
 * Free-atomics-specific events follow each block on `FAView:` lines
 * (ignored by Konata, parsed by tools/fastats and the unit tests):
 *
 *   FAView:lock_acquire:<tick>:line=0x<line>
 *   FAView:lock_release:<tick>:line=0x<line>
 *   FAView:fwd:<tick>:from=<seq>:chain=<len>
 *   FAView:squashed
 *
 * Recording costs nothing when disabled: the core carries a null
 * recorder pointer and pays one branch per retirement, exactly the
 * TraceRecorder pattern. Recording never alters timing — the
 * recorder only reads instruction state.
 */

#ifndef FA_CORE_PIPEVIEW_HH
#define FA_CORE_PIPEVIEW_HH

#include <cstdint>
#include <ostream>

#include "common/types.hh"
#include "core/dyn_inst.hh"

namespace fa::core {

class PipeViewRecorder
{
  public:
    explicit PipeViewRecorder(std::ostream &os) : out(os) {}

    PipeViewRecorder(const PipeViewRecorder &) = delete;
    PipeViewRecorder &operator=(const PipeViewRecorder &) = delete;

    /**
     * Emit the record block for one finished instruction.
     *
     * @param core     the emitting core
     * @param inst     the instruction (committed or squashed)
     * @param squashed true when the instruction never committed
     */
    void retire(CoreId core, const DynInst &inst, bool squashed);

    std::uint64_t recordsEmitted() const { return nextId - 1; }

  private:
    /** Stage tick: cycle + 1, with 0 reserved for "not reached". */
    static std::uint64_t
    tick(Cycle c, bool reached)
    {
        return reached ? c + 1 : 0;
    }

    std::ostream &out;
    std::uint64_t nextId = 1;
};

} // namespace fa::core

#endif // FA_CORE_PIPEVIEW_HH
