#include "core/lsq.hh"

#include "common/log.hh"

namespace fa::core {

LoadStoreQueue::LoadStoreQueue(unsigned lq_size, unsigned sq_size)
    : lqSize(lq_size), sqSize(sq_size)
{
}

DynInst *
LoadStoreQueue::youngestOlderStore(SeqNum load_seq, Addr word) const
{
    for (auto it = sq.rbegin(); it != sq.rend(); ++it) {
        DynInst *st = *it;
        if (st->seq >= load_seq)
            continue;
        if (st->addrValid && st->addr == word)
            return st;
    }
    return nullptr;
}

bool
LoadStoreQueue::anyOlderUnresolvedStore(SeqNum seq) const
{
    for (const DynInst *st : sq) {
        if (st->seq >= seq)
            break;
        if (!st->addrValid)
            return true;
    }
    return false;
}

bool
LoadStoreQueue::anyOlderStore(SeqNum seq) const
{
    return !sq.empty() && sq.front()->seq < seq;
}

unsigned
LoadStoreQueue::sqDepthBefore(SeqNum seq) const
{
    unsigned n = 0;
    for (const DynInst *st : sq) {
        if (st->seq >= seq)
            break;
        ++n;
    }
    return n;
}

bool
LoadStoreQueue::allOlderLoadsPerformed(SeqNum seq) const
{
    for (const DynInst *ld : lq) {
        if (ld->seq >= seq)
            break;
        if (!ld->performed)
            return false;
    }
    return true;
}

DynInst *
LoadStoreQueue::oldestInvalidatedLoad(Addr line) const
{
    // TSO load->load enforcement: an early-performed load becomes a
    // visible reordering only if a load OLDER than it has not yet
    // performed when the remote write arrives (the older load could
    // then observe the new value while the younger kept the old
    // one). If every older load has performed, the program-order
    // read ordering already holds and no squash is needed — this is
    // the precise filter; squashing every performed load would be
    // correct but floods spin-heavy workloads with machine clears.
    //
    // Forwarded loads are snooped like any other: once their
    // forwarding store performs, the value is part of the coherence
    // order. Lock-holding load_locks are exempt only because their
    // line cannot be invalidated while locked.
    // Atomics act as barriers until they commit (and leave the LQ):
    // §3.2.3 enforces AtomicRMW->load order exactly by squashing
    // younger loads whose line is written remotely while the atomic
    // is uncommitted.
    SeqNum oldest_unperformed = kNoSeq;
    for (DynInst *ld : lq) {
        if (!ld->performed || ld->isAtomic()) {
            oldest_unperformed = ld->seq;
            break;
        }
    }
    if (oldest_unperformed == kNoSeq)
        return nullptr;
    for (DynInst *ld : lq) {
        if (ld->seq < oldest_unperformed || !ld->performed ||
            ld->lockHeld) {
            continue;
        }
        if (ld->line() == line)
            return ld;
    }
    return nullptr;
}

DynInst *
LoadStoreQueue::oldestMemDepViolator(const DynInst *store) const
{
    for (DynInst *ld : lq) {
        if (ld->seq <= store->seq)
            continue;
        if (!ld->performed || !ld->addrValid || ld->addr != store->addr)
            continue;
        // A load that forwarded from this store, or from a store
        // younger than it, read the correct value.
        if (ld->fwdKind != FwdKind::kNone &&
            ld->fwdFromSeq >= store->seq) {
            continue;
        }
        return ld;
    }
    return nullptr;
}

void
LoadStoreQueue::popFrontLoad(DynInst *inst)
{
    if (lq.empty() || lq.front() != inst)
        panic("popFrontLoad on a non-head load");
    lq.pop_front();
}

void
LoadStoreQueue::popFrontStore(DynInst *inst)
{
    if (sq.empty() || sq.front() != inst)
        panic("popFrontStore on a non-head store");
    sq.pop_front();
}

void
LoadStoreQueue::removeStore(DynInst *inst)
{
    for (auto it = sq.begin(); it != sq.end(); ++it) {
        if (*it == inst) {
            sq.erase(it);
            return;
        }
    }
    panic("removeStore: store not in SQ");
}

void
LoadStoreQueue::squashFrom(SeqNum from_seq)
{
    while (!lq.empty() && lq.back()->seq >= from_seq)
        lq.pop_back();
    while (!sq.empty() && sq.back()->seq >= from_seq) {
        if (sq.back()->inSb)
            panic("squashing a committed store-buffer entry");
        sq.pop_back();
    }
}

} // namespace fa::core
