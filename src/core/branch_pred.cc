#include "core/branch_pred.hh"

namespace fa::core {

BranchPredictor::BranchPredictor(unsigned table_bits)
    : table(1u << table_bits, 2),  // weakly taken: loops start right
      mask((1u << table_bits) - 1)
{
}

unsigned
BranchPredictor::index(int pc) const
{
    // Cheap hash spreading nearby pcs across the table.
    std::uint32_t x = static_cast<std::uint32_t>(pc) * 0x9e3779b1u;
    return (x >> 16) & mask;
}

bool
BranchPredictor::predict(int pc) const
{
    return table[index(pc)] >= 2;
}

void
BranchPredictor::update(int pc, bool taken)
{
    std::uint8_t &ctr = table[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace fa::core
