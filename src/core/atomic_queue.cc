#include "core/atomic_queue.hh"

#include "common/log.hh"

namespace fa::core {

AtomicQueue::AtomicQueue(unsigned size)
    : slots(size)
{
    if (size == 0)
        fatal("atomic queue must have at least one entry");
}

unsigned
AtomicQueue::occupancy() const
{
    unsigned n = 0;
    for (const Entry &e : slots)
        if (e.valid)
            ++n;
    return n;
}

int
AtomicQueue::allocate(SeqNum seq)
{
    for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].valid) {
            slots[i] = Entry{};
            slots[i].valid = true;
            slots[i].seq = seq;
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
AtomicQueue::release(int idx)
{
    Entry &e = slots.at(idx);
    if (!e.valid)
        panic("releasing an invalid AQ entry");
    e = Entry{};
}

void
AtomicQueue::lock(int idx, Addr line)
{
    Entry &e = slots.at(idx);
    if (!e.valid)
        panic("locking through an invalid AQ entry");
    e.locked = true;
    e.line = line;
    e.sqId = kNoSeq;
}

void
AtomicQueue::unlock(int idx)
{
    Entry &e = slots.at(idx);
    e.locked = false;
}

void
AtomicQueue::setForwardedFrom(int idx, SeqNum store_seq)
{
    Entry &e = slots.at(idx);
    if (!e.valid)
        panic("forward-marking an invalid AQ entry");
    e.sqId = store_seq;
    e.locked = false;
}

void
AtomicQueue::clearForward(int idx)
{
    Entry &e = slots.at(idx);
    e.sqId = kNoSeq;
}

unsigned
AtomicQueue::broadcastStorePerform(SeqNum store_seq, Addr line)
{
    unsigned captured = 0;
    for (Entry &e : slots) {
        if (e.valid && e.sqId == store_seq) {
            e.locked = true;
            e.line = line;
            e.sqId = kNoSeq;
            ++captured;
        }
    }
    return captured;
}

bool
AtomicQueue::isLineLocked(Addr line) const
{
    for (const Entry &e : slots)
        if (e.valid && e.locked && e.line == line)
            return true;
    return false;
}

int
AtomicQueue::lockedIndexFor(Addr line) const
{
    for (size_t i = 0; i < slots.size(); ++i) {
        const Entry &e = slots[i];
        if (e.valid && e.locked && e.line == line)
            return static_cast<int>(i);
    }
    return -1;
}

bool
AtomicQueue::anyLocked() const
{
    for (const Entry &e : slots)
        if (e.valid && e.locked)
            return true;
    return false;
}

SeqNum
AtomicQueue::oldestLockedSeq() const
{
    SeqNum oldest = kNoSeq;
    for (const Entry &e : slots) {
        if (e.valid && e.locked &&
            (oldest == kNoSeq || e.seq < oldest)) {
            oldest = e.seq;
        }
    }
    return oldest;
}

} // namespace fa::core
