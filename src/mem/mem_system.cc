#include "mem/mem_system.hh"

#include "analysis/sanitizer/fasan.hh"
#include "common/host_prof.hh"
#include "common/log.hh"
#include "common/span_trace.hh"
#include "sim/chaos/chaos.hh"

namespace fa::mem {

MemSystem::MemSystem(const MemConfig &config, unsigned num_cores)
    : cfg(config), numCores(num_cores),
      l3(cfg.l3Sets, cfg.l3Ways),
      dir(cfg.dirEntries(num_cores) / cfg.dirWays, cfg.dirWays)
{
    if (num_cores == 0 || num_cores > kMaxCores)
        fatal("core count %u out of range [1, %u]", num_cores, kMaxCores);
    priv.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        priv.emplace_back(cfg);
    cores.resize(num_cores, nullptr);
    mshr.resize(num_cores);
}

void
MemSystem::attachCore(CoreId core, CoreMemIf *iface)
{
    cores.at(core) = iface;
}

CacheArray::LockedFn
MemSystem::lockedFn(CoreId core) const
{
    const CoreMemIf *iface = cores[core];
    return [iface](Addr line) {
        return iface && iface->isLineLocked(line);
    };
}

AccessOutcome
MemSystem::access(CoreId core, Addr line, bool want_write, SeqNum waiter,
                  Cycle now, bool prefetch)
{
    if (line != lineOf(line))
        panic("access with unaligned line %#lx",
              static_cast<unsigned long>(line));

    PrivCaches &pc = priv[core];
    CacheState s1 = pc.l1.stateOf(line);
    if (isValid(s1) && (!want_write || hasWritePerm(s1))) {
        if (want_write && s1 == CacheState::kExclusive) {
            pc.l1.setState(line, CacheState::kModified);
            pc.l2.setState(line, CacheState::kModified);
        }
        pc.l1.touch(line, now);
        ++stats.l1Hits;
        return AccessOutcome::kL1Hit;
    }

    CacheState s2 = pc.l2.stateOf(line);
    if (isValid(s2) && (!want_write || hasWritePerm(s2))) {
        CacheState st = s2;
        if (want_write && st == CacheState::kExclusive) {
            st = CacheState::kModified;
            pc.l2.setState(line, st);
        }
        auto r1 = pc.l1.insert(line, st, now, lockedFn(core));
        if (!r1.ok) {
            ++stats.fillBlockedOnLock;
            return AccessOutcome::kBlocked;
        }
        if (fasan && r1.evicted)
            fasan->checkVictimLine(core, now, r1.victimLine,
                                   lockedFn(core)(r1.victimLine), "l1");
        // An L1 victim silently stays in the (inclusive) L2.
        pc.l2.touch(line, now);
        ++stats.l1Misses;
        ++stats.l2Hits;
        return AccessOutcome::kL2Hit;
    }

    // Miss: coalesce with an outstanding transaction or start one.
    auto &core_mshr = mshr[core];
    auto it = core_mshr.find(line);
    if (it != core_mshr.end()) {
        Txn *txn = nullptr;
        for (auto &t : txns) {
            if (t->id == it->second) {
                txn = t.get();
                break;
            }
        }
        if (!txn)
            panic("MSHR points at a missing transaction");
        if (want_write && txn->type == TxnType::kGetS)
            return AccessOutcome::kBlocked;
        if (!prefetch)
            txn->waiters.push_back(waiter);
        return AccessOutcome::kMiss;
    }
    if (core_mshr.size() >= cfg.mshrs)
        return AccessOutcome::kBlocked;

    auto txn = std::make_unique<Txn>();
    txn->id = nextTxnId++;
    txn->core = core;
    txn->line = line;
    txn->prefetch = prefetch;
    txn->type = !want_write ? TxnType::kGetS
        : (isValid(s2) ? TxnType::kUpgrade : TxnType::kGetX);
    txn->phase = Phase::kToDir;
    txn->readyAt = now + cfg.l2HitLatency + cfg.netLatency;
    if (!prefetch)
        txn->waiters.push_back(waiter);
    else
        ++stats.prefetchesIssued;
    core_mshr[line] = txn->id;
    ++stats.l1Misses;
    ++stats.l2Misses;
    ++stats.transactions;
    ++stats.networkMsgs;
    txns.push_back(std::move(txn));
    return AccessOutcome::kMiss;
}

bool
MemSystem::privHasWritePerm(CoreId core, Addr line) const
{
    return hasWritePerm(priv[core].l2.stateOf(line));
}

bool
MemSystem::privHolds(CoreId core, Addr line) const
{
    return priv[core].l2.contains(line);
}

bool
MemSystem::l1Holds(CoreId core, Addr line) const
{
    return priv[core].l1.contains(line);
}

CacheState
MemSystem::privState(CoreId core, Addr line) const
{
    return priv[core].l2.stateOf(line);
}

bool
MemSystem::performStoreWrite(CoreId core, Addr addr, std::int64_t value,
                             Cycle now)
{
    Addr line = lineOf(addr);
    PrivCaches &pc = priv[core];
    if (!hasWritePerm(pc.l2.stateOf(line)))
        panic("performStoreWrite without write permission");
    if (!pc.l1.contains(line)) {
        auto r = pc.l1.insert(line, CacheState::kModified, now,
                              lockedFn(core));
        if (!r.ok) {
            ++stats.fillBlockedOnLock;
            return false;
        }
        if (fasan && r.evicted)
            fasan->checkVictimLine(core, now, r.victimLine,
                                   lockedFn(core)(r.victimLine), "l1");
    }
    pc.l1.setState(line, CacheState::kModified);
    pc.l2.setState(line, CacheState::kModified);
    pc.l1.touch(line, now);
    pc.l2.touch(line, now);
    image.write(addr, value);
    return true;
}

void
MemSystem::touch(CoreId core, Addr line, Cycle now)
{
    priv[core].l1.touch(line, now);
    priv[core].l2.touch(line, now);
}

bool
MemSystem::tryInvalidateCore(CoreId core, Addr line, CoreId requester,
                             Cycle now)
{
    if (cores[core] && cores[core]->isLineLocked(line)) {
        ++stats.invBlockedRetries;
        if (spans)
            cores[core]->onLockDenied(line, requester, now);
        return false;
    }
    if (chaos && chaos->lockStuck(core, line, now)) {
        ++stats.invBlockedRetries;
        if (spans)
            spans->coreInstant(core, "chaos_stuck_lock", kNoSeq, now);
        return false;
    }
    PrivCaches &pc = priv[core];
    bool present = pc.l2.contains(line) || pc.l1.contains(line);
    pc.l1.invalidate(line);
    pc.l2.invalidate(line);
    ++stats.invalidationsSent;
    if (present && cores[core])
        cores[core]->onLineLost(line, now);
    return true;
}

bool
MemSystem::tryDowngradeCore(CoreId core, Addr line, CacheState target,
                            CoreId requester, Cycle now)
{
    if (cores[core] && cores[core]->isLineLocked(line)) {
        ++stats.invBlockedRetries;
        if (spans)
            cores[core]->onLockDenied(line, requester, now);
        return false;
    }
    if (chaos && chaos->lockStuck(core, line, now)) {
        ++stats.invBlockedRetries;
        if (spans)
            spans->coreInstant(core, "chaos_stuck_lock", kNoSeq, now);
        return false;
    }
    PrivCaches &pc = priv[core];
    if (pc.l2.contains(line))
        pc.l2.setState(line, target);
    if (pc.l1.contains(line))
        pc.l1.setState(line, target);
    ++stats.invalidationsSent;
    return true;
}

void
MemSystem::dirRemoveSharer(Addr line, CoreId core)
{
    DirEntry *entry = dir.find(line);
    if (!entry)
        return;
    bool was_owner = entry->exclusive && entry->owner == core;
    bool was_dirty_owner = entry->dirtyOwner == core;
    entry->removeSharer(core);
    if (was_owner || was_dirty_owner) {
        ++stats.writebacks;
        l3Insert(line, entry->lastUse);
    }
    if (was_dirty_owner)
        entry->dirtyOwner = kNoCore;
}

void
MemSystem::l3Insert(Addr line, Cycle now)
{
    // L3 victims are silently dropped: data is functional and the L3
    // is not an inclusion point (the directory is).
    l3.insert(line, CacheState::kShared, now, nullptr);
}

void
MemSystem::dumpTxns(Cycle now) const
{
    for (const auto &t : txns) {
        tracef("%llu TXN id=%llu core=%u line=%llx type=%d phase=%d "
               "readyAt=%llu inv=%llx victim=%llx vmask=%llx done=%d",
               (unsigned long long)now, (unsigned long long)t->id,
               t->core, (unsigned long long)t->line,
               static_cast<int>(t->type), static_cast<int>(t->phase),
               (unsigned long long)t->readyAt,
               (unsigned long long)t->invMask,
               (unsigned long long)t->victimLine,
               (unsigned long long)t->victimMask, t->done);
    }
    for (const auto &[line, id] : lineBusy) {
        tracef("  busy line=%llx txn=%llu",
               (unsigned long long)line, (unsigned long long)id);
    }
}

std::vector<MemSystem::BlockedRecall>
MemSystem::blockedRecalls() const
{
    std::vector<BlockedRecall> out;
    for (const auto &t : txns) {
        if (t->phase != Phase::kVictimRecall)
            continue;
        for (CoreId c = 0; c < numCores; ++c) {
            std::uint64_t bit = std::uint64_t{1} << c;
            if ((t->victimMask & bit) && cores[c] &&
                cores[c]->isLineLocked(t->victimLine)) {
                out.push_back({t->victimLine, c, t->line, t->core});
            }
        }
    }
    return out;
}

void
MemSystem::tick(Cycle now)
{
    if (txns.empty())
        return;
    if (hostProf && hostProf->sampling()) {
        tickProfiled(now);
        return;
    }
    for (size_t i = 0; i < txns.size(); ++i)
        stepTxn(*txns[i], now);
    sweepDone();
}

void
MemSystem::tickProfiled(Cycle now)
{
    for (size_t i = 0; i < txns.size(); ++i) {
        // Charge the step to the component doing the work.
        HostPhase bucket;
        switch (txns[i]->phase) {
          case Phase::kDirLookup:
            bucket = HostPhase::kMemDirectory;
            break;
          case Phase::kVictimRecall:
          case Phase::kInvSharers:
          case Phase::kDowngradeOwner:
            bucket = HostPhase::kMemCoherence;
            break;
          case Phase::kFill:
            bucket = HostPhase::kMemCaches;
            break;
          default:  // travel / queueing phases
            bucket = HostPhase::kMemCrossbar;
            break;
        }
        HostProfiler::Timer t(*hostProf, bucket);
        stepTxn(*txns[i], now);
    }
    HostProfiler::Timer t(*hostProf, HostPhase::kMemSweep);
    sweepDone();
}

void
MemSystem::sweepDone()
{
    size_t keep = 0;
    for (size_t i = 0; i < txns.size(); ++i) {
        if (!txns[i]->done) {
            if (keep != i)
                txns[keep] = std::move(txns[i]);
            ++keep;
        }
    }
    txns.resize(keep);
}

void
MemSystem::beginDirLookup(Txn &txn, Cycle now)
{
    lineBusy[txn.line] = txn.id;
    txn.phase = Phase::kDirLookup;
    txn.readyAt = now + cfg.dirLatency;
}

void
MemSystem::stepTxn(Txn &txn, Cycle now)
{
    if (txn.done || txn.readyAt > now)
        return;

    switch (txn.phase) {
      case Phase::kToDir: {
        auto busy = lineBusy.find(txn.line);
        if (busy != lineBusy.end()) {
            txn.phase = Phase::kQueuedAtDir;
            lineQueue[txn.line].push_back(txn.id);
        } else {
            beginDirLookup(txn, now);
        }
        break;
      }
      case Phase::kQueuedAtDir:
        break;  // promoted by releaseLine()
      case Phase::kDirLookup: {
        DirEntry *entry = dir.find(txn.line);
        if (!entry) {
            DirEntry *slot = dir.findFree(txn.line);
            if (!slot) {
                // Choose an LRU victim among entries whose line is
                // not owned by an in-flight transaction; free
                // zero-sharer entries without a recall.
                DirEntry *victim = nullptr;
                unsigned set = dir.setOf(txn.line);
                for (unsigned w = 0; w < dir.numWays(); ++w) {
                    DirEntry *cand = dir.entryAt(set, w);
                    if (lineBusy.count(cand->line))
                        continue;
                    if (!victim || cand->lastUse < victim->lastUse)
                        victim = cand;
                }
                if (!victim) {
                    txn.readyAt = now + 1;  // all candidates busy
                    return;
                }
                if (victim->sharers == 0) {
                    dir.release(victim);
                    slot = victim;
                } else {
                    txn.victimLine = victim->line;
                    txn.victimMask = victim->sharers;
                    txn.victimWasExclusive = victim->exclusive;
                    txn.holdsVictimBusy = true;
                    lineBusy[victim->line] = txn.id;
                    ++stats.directoryRecalls;
                    txn.phase = Phase::kVictimRecall;
                    txn.readyAt = now + cfg.netLatency;
                    return;
                }
            }
            entry = dir.allocate(slot, txn.line, now);
        }
        entry->lastUse = now;
        processAtDir(txn, now);
        break;
      }
      case Phase::kVictimRecall: {
        for (CoreId c = 0; c < numCores && txn.victimMask; ++c) {
            std::uint64_t bit = std::uint64_t{1} << c;
            if ((txn.victimMask & bit) &&
                tryInvalidateCore(c, txn.victimLine, txn.core, now)) {
                txn.victimMask &= ~bit;
                ++stats.networkMsgs;
            }
        }
        if (txn.victimMask != 0)
            return;  // retry next cycle (possibly blocked on a lock)
        DirEntry *victim = dir.find(txn.victimLine);
        if (victim) {
            if (txn.victimWasExclusive) {
                ++stats.writebacks;
                l3Insert(txn.victimLine, now);
            }
            victim->sharers = 0;
            victim->exclusive = false;
            victim->owner = kNoCore;
            dir.release(victim);
        }
        releaseLine(txn.victimLine, now);
        txn.holdsVictimBusy = false;
        DirEntry *slot = dir.findFree(txn.line);
        if (!slot)
            panic("no free directory way after victim recall");
        DirEntry *entry = dir.allocate(slot, txn.line, now);
        entry->lastUse = now;
        processAtDir(txn, now);
        break;
      }
      case Phase::kInvSharers: {
        for (CoreId c = 0; c < numCores && txn.invMask; ++c) {
            std::uint64_t bit = std::uint64_t{1} << c;
            if ((txn.invMask & bit) &&
                tryInvalidateCore(c, txn.line, txn.core, now)) {
                txn.invMask &= ~bit;
                ++stats.networkMsgs;
            }
        }
        if (txn.invMask != 0)
            return;
        finishWriteGrant(txn, now);
        break;
      }
      case Phase::kDowngradeOwner: {
        bool moesi = cfg.protocol == Protocol::kMoesi;
        bool was_dirty =
            privState(txn.downgradeCore, txn.line) ==
            CacheState::kModified;
        CacheState target = moesi && was_dirty ? CacheState::kOwned
                                               : CacheState::kShared;
        if (!tryDowngradeCore(txn.downgradeCore, txn.line, target,
                              txn.core, now))
            return;  // blocked on a locked line; retry
        ++stats.networkMsgs;
        DirEntry *entry = dir.find(txn.line);
        if (!entry)
            panic("directory entry vanished during downgrade");
        if (target == CacheState::kOwned) {
            // MOESI: the dirty owner keeps the only valid copy and
            // serves future readers; the writeback is deferred to
            // its own eviction.
            entry->dirtyOwner = txn.downgradeCore;
        } else {
            ++stats.writebacks;
            l3Insert(txn.line, now);
        }
        entry->exclusive = false;
        entry->owner = kNoCore;
        entry->addSharer(txn.core);
        entry->forwarder = txn.core;
        txn.grantState = CacheState::kShared;
        txn.phase = Phase::kToRequester;
        txn.readyAt = now + cfg.netLatency;  // owner -> requester data
        if (chaos)
            txn.readyAt += chaos->coherenceDelay(txn.line);
        ++stats.networkMsgs;
        break;
      }
      case Phase::kToRequester:
        txn.phase = Phase::kFill;
        [[fallthrough]];
      case Phase::kFill:
        if (!installLine(txn, now)) {
            txn.readyAt = now + 1;
            return;
        }
        for (SeqNum w : txn.waiters) {
            cores[txn.core]->onFill(w, txn.line,
                                    hasWritePerm(txn.grantState), now);
        }
        mshr[txn.core].erase(txn.line);
        releaseLine(txn.line, now);
        txn.done = true;
        break;
    }
}

void
MemSystem::processAtDir(Txn &txn, Cycle now)
{
    DirEntry *entry = dir.find(txn.line);
    if (!entry)
        panic("processAtDir without a directory entry");

    std::uint64_t self_bit = std::uint64_t{1} << txn.core;

    if (txn.type == TxnType::kGetS) {
        if (entry->exclusive && entry->owner != txn.core) {
            txn.downgradeCore = entry->owner;
            txn.phase = Phase::kDowngradeOwner;
            txn.readyAt = now + cfg.netLatency;
            if (chaos)
                txn.readyAt += chaos->coherenceDelay(txn.line);
            ++stats.networkMsgs;
            return;
        }
        Cycle data_lat;
        if (entry->sharers == 0) {
            data_lat = dataFetchLatency(txn.line, now);
            txn.grantState = CacheState::kExclusive;
            entry->exclusive = true;
            entry->owner = txn.core;
        } else {
            // Shared grant. Under MESIF a live forwarder — and
            // under MOESI the dirty owner — serves the data
            // cache-to-cache; the requester inherits F.
            bool fwd_hit = cfg.protocol == Protocol::kMesif &&
                entry->forwarder != kNoCore &&
                entry->hasSharer(entry->forwarder);
            bool owner_hit = cfg.protocol == Protocol::kMoesi &&
                entry->dirtyOwner != kNoCore &&
                entry->hasSharer(entry->dirtyOwner);
            if (fwd_hit || owner_hit) {
                data_lat = cfg.netLatency;
                ++stats.mesifForwards;
                ++stats.networkMsgs;
            } else {
                data_lat = dataFetchLatency(txn.line, now);
            }
            txn.grantState = CacheState::kShared;
        }
        entry->addSharer(txn.core);
        entry->forwarder = txn.core;
        txn.phase = Phase::kToRequester;
        txn.readyAt = now + data_lat + cfg.netLatency;
        if (chaos)
            txn.readyAt += chaos->coherenceDelay(txn.line);
        ++stats.networkMsgs;
        return;
    }

    // GetX / Upgrade.
    if (txn.type == TxnType::kUpgrade && !entry->hasSharer(txn.core)) {
        // Our shared copy was invalidated while the upgrade was in
        // flight: fall back to a full GetX.
        txn.type = TxnType::kGetX;
    }
    txn.dataFromOwner = entry->exclusive && entry->owner != txn.core;
    txn.invMask = entry->sharers & ~self_bit;
    if (txn.invMask != 0) {
        txn.phase = Phase::kInvSharers;
        txn.readyAt = now + cfg.netLatency;
        if (chaos)
            txn.readyAt += chaos->coherenceDelay(txn.line);
        return;
    }
    finishWriteGrant(txn, now);
}

void
MemSystem::finishWriteGrant(Txn &txn, Cycle now)
{
    DirEntry *entry = dir.find(txn.line);
    if (!entry)
        panic("finishWriteGrant without a directory entry");

    Cycle data_lat = 0;
    bool from_dirty_owner = entry->dirtyOwner != kNoCore &&
        entry->dirtyOwner != txn.core;
    if (txn.dataFromOwner || from_dirty_owner) {
        data_lat = cfg.netLatency;  // cache-to-cache transfer
        ++stats.networkMsgs;
    } else if (txn.type == TxnType::kUpgrade) {
        data_lat = 0;  // requester already holds the data
    } else {
        data_lat = dataFetchLatency(txn.line, now);
    }
    entry->sharers = std::uint64_t{1} << txn.core;
    entry->exclusive = true;
    entry->owner = txn.core;
    entry->dirtyOwner = kNoCore;
    txn.grantState = CacheState::kModified;
    txn.phase = Phase::kToRequester;
    txn.readyAt = now + data_lat + cfg.netLatency;
    if (chaos)
        txn.readyAt += chaos->coherenceDelay(txn.line);
    ++stats.networkMsgs;
}

Cycle
MemSystem::dataFetchLatency(Addr line, Cycle now)
{
    if (l3.contains(line)) {
        ++stats.l3Hits;
        l3.touch(line, now);
        return cfg.l3TagLatency + cfg.l3DataLatency;
    }
    ++stats.l3Misses;
    ++stats.memAccesses;
    l3Insert(line, now);
    return cfg.l3TagLatency + cfg.memLatency;
}

bool
MemSystem::installLine(Txn &txn, Cycle now)
{
    PrivCaches &pc = priv[txn.core];
    auto locked = lockedFn(txn.core);

    auto r2 = pc.l2.insert(txn.line, txn.grantState, now, locked);
    if (!r2.ok) {
        ++stats.fillBlockedOnLock;
        return false;
    }
    if (r2.evicted) {
        Addr v = r2.victimLine;
        if (fasan)
            fasan->checkVictimLine(txn.core, now, v, locked(v), "l2");
        pc.l1.invalidate(v);  // L2 is inclusive of L1
        dirRemoveSharer(v, txn.core);
        if (cores[txn.core])
            cores[txn.core]->onLineLost(v, now);
    }

    auto r1 = pc.l1.insert(txn.line, txn.grantState, now, locked);
    if (!r1.ok) {
        ++stats.fillBlockedOnLock;
        return false;  // retry; the L2 copy is already installed
    }
    if (fasan && r1.evicted)
        fasan->checkVictimLine(txn.core, now, r1.victimLine,
                               locked(r1.victimLine), "l1");
    // An L1 victim silently remains in the inclusive L2.
    pc.l2.setState(txn.line, txn.grantState);
    return true;
}

void
MemSystem::releaseLine(Addr line, Cycle now)
{
    lineBusy.erase(line);
    auto it = lineQueue.find(line);
    if (it == lineQueue.end())
        return;
    if (it->second.empty()) {
        lineQueue.erase(it);
        return;
    }
    std::uint64_t next_id;
    if (chaos && it->second.size() >= 2 && chaos->reorderQueued(line)) {
        next_id = it->second.back();
        it->second.pop_back();
    } else {
        next_id = it->second.front();
        it->second.pop_front();
    }
    if (it->second.empty())
        lineQueue.erase(it);
    for (auto &t : txns) {
        if (t->id == next_id) {
            beginDirLookup(*t, now);
            return;
        }
    }
    panic("queued transaction %llu not found",
          static_cast<unsigned long long>(next_id));
}

} // namespace fa::mem
