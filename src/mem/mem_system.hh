/**
 * @file
 * The coherent memory hierarchy: per-core private L1D+L2 (inclusive
 * pair), a shared L3 tag model, an inclusive finite directory, and a
 * transaction engine implementing a 3-hop directory protocol (MESI,
 * MESIF or MOESI) over a fixed-latency crossbar.
 *
 * The property Free atomics depend on is implemented here: a remote
 * coherence request (invalidation or downgrade) that targets a line
 * locked by a core's Atomic Queue is *denied* and retried until the
 * line is unlocked (paper §1 step 2, "cache locking"). Locked lines
 * are also excluded from local victim selection (§3.2.4), and
 * directory-victim recalls can block on locked lines — the
 * inclusion-driven deadlock of §3.2.5, broken by the core watchdog.
 */

#ifndef FA_MEM_MEM_SYSTEM_HH
#define FA_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mem_image.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "mem/mem_config.hh"

namespace fa::analysis { class Fasan; }
namespace fa::chaos { class ChaosEngine; }
namespace fa {
class HostProfiler;
class SpanTracer;
} // namespace fa

namespace fa::mem {

/**
 * Callbacks the memory system makes into a core model. The core
 * exposes its lock state (Atomic Queue contents) and receives fill
 * and line-loss notifications.
 */
class CoreMemIf
{
  public:
    virtual ~CoreMemIf() = default;

    /**
     * A previously missed request completed: the line is now resident
     * in L1 with (at least) the requested permission.
     */
    virtual void onFill(SeqNum waiter, Addr line, bool write_perm,
                        Cycle now) = 0;

    /**
     * The line left this core's private hierarchy entirely (remote
     * invalidation or local eviction). The core must snoop its load
     * queue: performed-but-uncommitted loads to this line can no
     * longer be monitored and must be squashed (TSO safety net).
     */
    virtual void onLineLost(Addr line, Cycle now) = 0;

    /** Is this line locked by the core's Atomic Queue? */
    virtual bool isLineLocked(Addr line) const = 0;

    /**
     * A remote coherence request from `requester` was denied because
     * this core's Atomic Queue holds `line` locked. Observability
     * hook only (span tracing); the memory system calls it solely
     * when a tracer is attached, and the default is a no-op so core
     * fakes in tests need not implement it.
     */
    virtual void onLockDenied(Addr line, CoreId requester, Cycle now)
    {
        (void)line;
        (void)requester;
        (void)now;
    }
};

/** Result of a timed access. */
enum class AccessOutcome : std::uint8_t {
    kL1Hit,    ///< data usable after l1HitLatency
    kL2Hit,    ///< line refilled into L1; usable after l1+l2 latency
    kMiss,     ///< transaction started; wait for onFill
    kBlocked,  ///< structural conflict (MSHRs, merge type); retry later
};

/**
 * Coherent multi-core memory hierarchy with a flat functional data
 * image.
 */
class MemSystem
{
  public:
    MemSystem(const MemConfig &cfg, unsigned cores);

    /** Wire a core's callback interface (must be done for all cores
     * before the first access). */
    void attachCore(CoreId core, CoreMemIf *iface);

    /** Optional fault-injection engine; null = no injection and no
     * per-access cost beyond one pointer test. */
    void attachChaos(chaos::ChaosEngine *engine) { chaos = engine; }

    /** Optional invariant sanitizer; null = no checking and no
     * per-insert cost beyond one pointer test (§3.2.4 victim
     * exclusion). */
    void attachFasan(analysis::Fasan *f) { fasan = f; }

    /** Optional faprof span tracer; null = no lock-denial callbacks
     * and no per-denial cost beyond one pointer test. */
    void attachSpanTrace(SpanTracer *st) { spans = st; }

    /** Optional faprof host profiler; null = the untimed tick path.
     * Sampled cycles charge each transaction step to the component
     * doing the work (directory, coherence, crossbar, caches). */
    void attachHostProfiler(HostProfiler *hp) { hostProf = hp; }

    /**
     * Timed access from a core for a full line.
     *
     * @param core       requesting core
     * @param line       line-aligned address
     * @param want_write request read-write (GetX) vs read (GetS)
     * @param waiter     sequence number notified via onFill on a miss
     * @param prefetch   non-binding: no waiter notification
     */
    AccessOutcome access(CoreId core, Addr line, bool want_write,
                         SeqNum waiter, Cycle now, bool prefetch = false);

    /** Does the private hierarchy hold the line with write perm? */
    bool privHasWritePerm(CoreId core, Addr line) const;

    /** Is a miss transaction for this line outstanding? */
    bool hasPendingMiss(CoreId core, Addr line) const
    {
        return mshr[core].count(line) > 0;
    }

    /** Does the private hierarchy hold the line at all? */
    bool privHolds(CoreId core, Addr line) const;

    /** L1-resident? (locality statistics) */
    bool l1Holds(CoreId core, Addr line) const;

    /** Private permission state (L2 is authoritative). */
    CacheState privState(CoreId core, Addr line) const;

    /**
     * Perform a committed store's write: requires write permission;
     * ensures L1 residence (refill from L2 if needed), transitions
     * to M, writes the functional image. Returns false if the L1
     * refill is blocked because every way of the set is locked.
     */
    bool performStoreWrite(CoreId core, Addr addr, std::int64_t value,
                           Cycle now);

    /** Touch LRU state on a read hit. */
    void touch(CoreId core, Addr line, Cycle now);

    /** Functional data access. */
    std::int64_t readWord(Addr addr) const { return image.read(addr); }
    void writeWord(Addr addr, std::int64_t v) { image.write(addr, v); }
    MemImage &memImage() { return image; }

    /** Advance all in-flight transactions to cycle `now`. */
    void tick(Cycle now);

    /** True when no transaction is in flight. */
    bool quiescent() const { return txns.empty(); }

    unsigned inflightTxns() const
    {
        return static_cast<unsigned>(txns.size());
    }

    /** Trace every in-flight transaction (debugging aid). */
    void dumpTxns(Cycle now) const;

    /**
     * Directory-victim recalls currently blocked on an AQ-locked
     * line (the §3.2.5 inclusive-directory deadlock shape). One
     * record per (recall, blocking core) pair; forensics uses this
     * because the static lock-cycle pass cannot predict the shape.
     */
    struct BlockedRecall
    {
        Addr victimLine;  ///< line being recalled
        CoreId holder;    ///< core whose lock denies the recall
        Addr reqLine;     ///< line whose miss forced the recall
        CoreId requester; ///< core waiting on that miss
    };
    std::vector<BlockedRecall> blockedRecalls() const;

    const MemConfig &config() const { return cfg; }

    MemStats stats;

  private:
    enum class TxnType : std::uint8_t { kGetS, kGetX, kUpgrade };

    enum class Phase : std::uint8_t {
        kToDir,         ///< request travelling to the directory
        kQueuedAtDir,   ///< waiting for the line to become free
        kDirLookup,     ///< directory tag access
        kVictimRecall,  ///< recalling private copies of a dir victim
        kInvSharers,    ///< invalidating sharers/owner (GetX/Upg)
        kDowngradeOwner,///< downgrading the exclusive owner (GetS)
        kToRequester,   ///< response (incl. data latency) travelling back
        kFill,          ///< installing into the requester's L1/L2
    };

    struct Txn
    {
        std::uint64_t id = 0;
        TxnType type = TxnType::kGetS;
        CoreId core = 0;
        Addr line = 0;
        bool prefetch = false;
        Phase phase = Phase::kToDir;
        Cycle readyAt = 0;
        std::vector<SeqNum> waiters;

        // Victim recall bookkeeping.
        Addr victimLine = 0;
        std::uint64_t victimMask = 0;
        bool victimWasExclusive = false;
        bool holdsVictimBusy = false;

        // Invalidation / downgrade bookkeeping.
        std::uint64_t invMask = 0;
        CoreId downgradeCore = kNoCore;
        bool dataFromOwner = false;

        // Grant decided during processing.
        CacheState grantState = CacheState::kShared;

        bool done = false;
    };

    struct PrivCaches
    {
        PrivCaches(const MemConfig &c)
            : l1(c.l1Sets, c.l1Ways), l2(c.l2Sets, c.l2Ways)
        {}
        CacheArray l1;
        CacheArray l2;
    };

    // --- helpers ---------------------------------------------------------

    CacheArray::LockedFn lockedFn(CoreId core) const;

    /** Try to invalidate a line from a core's private caches.
     * Returns false (and counts a retry) if the line is locked;
     * `requester` is the core whose transaction wants the line
     * (span-traced lock denials name it). */
    bool tryInvalidateCore(CoreId core, Addr line, CoreId requester,
                           Cycle now);

    /** Try to downgrade a core's exclusive copy (to S, or to O
     * under MOESI when dirty). */
    bool tryDowngradeCore(CoreId core, Addr line, CacheState target,
                          CoreId requester, Cycle now);

    /** Remove a core from a line's directory entry, releasing the
     * entry when it was the last holder. */
    void dirRemoveSharer(Addr line, CoreId core);

    /** Insert into the shared L3 tags. */
    void l3Insert(Addr line, Cycle now);

    /** Install a granted line into the requester's L1+L2.
     * Returns false when blocked by locked ways. */
    bool installLine(Txn &txn, Cycle now);

    void stepTxn(Txn &txn, Cycle now);
    /** tick()'s per-txn loop with a scoped host timer per step,
     * bucketed by transaction phase; sampled cycles only. */
    void tickProfiled(Cycle now);
    /** Compact away completed transactions. */
    void sweepDone();
    void beginDirLookup(Txn &txn, Cycle now);
    void processAtDir(Txn &txn, Cycle now);
    void finishWriteGrant(Txn &txn, Cycle now);
    Cycle dataFetchLatency(Addr line, Cycle now);
    void releaseLine(Addr line, Cycle now);

    MemConfig cfg;
    unsigned numCores;
    chaos::ChaosEngine *chaos = nullptr;
    analysis::Fasan *fasan = nullptr;
    SpanTracer *spans = nullptr;
    HostProfiler *hostProf = nullptr;

    std::vector<PrivCaches> priv;
    std::vector<CoreMemIf *> cores;
    CacheArray l3;
    Directory dir;
    MemImage image;

    std::uint64_t nextTxnId = 1;
    std::vector<std::unique_ptr<Txn>> txns;
    std::unordered_map<Addr, std::uint64_t> lineBusy;  ///< line -> txn id
    std::unordered_map<Addr, std::deque<std::uint64_t>> lineQueue;
    std::vector<std::unordered_map<Addr, std::uint64_t>> mshr;
};

} // namespace fa::mem

#endif // FA_MEM_MEM_SYSTEM_HH
