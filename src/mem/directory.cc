#include "mem/directory.hh"

#include "common/log.hh"

namespace fa::mem {

namespace {

unsigned
roundUpPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

Directory::Directory(unsigned sets, unsigned num_ways)
    : setsCount(roundUpPow2(sets ? sets : 1)), waysCount(num_ways),
      entries(static_cast<size_t>(setsCount) * num_ways)
{
    if (num_ways == 0)
        fatal("directory must have nonzero ways");
}

unsigned
Directory::setOf(Addr line) const
{
    // XOR-folded index hashing, as in CacheArray: an inclusive
    // directory is especially sensitive to strided aliasing, since a
    // conflicting set forces recalls of live private lines.
    Addr idx = line >> kLineShift;
    idx ^= idx >> 13;
    idx ^= idx >> 21;
    return static_cast<unsigned>(idx & (setsCount - 1));
}

DirEntry *
Directory::find(Addr line)
{
    unsigned set = setOf(line);
    DirEntry *base = &entries[static_cast<size_t>(set) * waysCount];
    for (unsigned w = 0; w < waysCount; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const DirEntry *
Directory::find(Addr line) const
{
    return const_cast<Directory *>(this)->find(line);
}

DirEntry *
Directory::findFree(Addr line)
{
    unsigned set = setOf(line);
    DirEntry *base = &entries[static_cast<size_t>(set) * waysCount];
    for (unsigned w = 0; w < waysCount; ++w)
        if (!base[w].valid)
            return &base[w];
    return nullptr;
}

DirEntry *
Directory::chooseVictim(Addr line)
{
    unsigned set = setOf(line);
    DirEntry *base = &entries[static_cast<size_t>(set) * waysCount];
    DirEntry *victim = nullptr;
    for (unsigned w = 0; w < waysCount; ++w) {
        if (!base[w].valid)
            panic("chooseVictim called on a set with free ways");
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return victim;
}

DirEntry *
Directory::allocate(DirEntry *slot, Addr line, Cycle now)
{
    if (slot->valid)
        panic("allocating over a valid directory entry");
    slot->valid = true;
    slot->line = line;
    slot->sharers = 0;
    slot->exclusive = false;
    slot->owner = kNoCore;
    slot->lastUse = now;
    return slot;
}

void
Directory::release(DirEntry *entry)
{
    if (entry->sharers != 0)
        panic("releasing directory entry with live sharers");
    entry->valid = false;
}

unsigned
Directory::population() const
{
    unsigned n = 0;
    for (const DirEntry &e : entries)
        if (e.valid)
            ++n;
    return n;
}

} // namespace fa::mem
