/**
 * @file
 * Memory-hierarchy configuration (Table 1 of the paper).
 */

#ifndef FA_MEM_MEM_CONFIG_HH
#define FA_MEM_MEM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace fa::mem {

/** Coherence protocol variant. */
enum class Protocol : std::uint8_t {
    kMesi,   ///< shared data served by the L3 (the paper's setup)
    kMesif,  ///< one sharer holds F and forwards cache-to-cache
    kMoesi,  ///< dirty sharing: the O-state owner forwards and
             ///< defers the writeback to its own eviction
};

/**
 * Parameters of the private L1D/L2, shared L3, inclusive directory,
 * interconnect and main memory. Latencies are in core cycles.
 */
struct MemConfig
{
    Protocol protocol = Protocol::kMesi;

    // Private L1D (where cache locking lives).
    unsigned l1Sets = 64;          ///< 48KB, 12 ways, 64B lines
    unsigned l1Ways = 12;
    unsigned l1HitLatency = 4;

    // Private L2 (inclusive of L1).
    unsigned l2Sets = 512;         ///< 256KB, 8 ways
    unsigned l2Ways = 8;
    unsigned l2HitLatency = 14;    ///< 4 tags + 10 data

    // Shared L3 (tags only; data is functional).
    unsigned l3Sets = 16384;       ///< 16MB, 16 ways
    unsigned l3Ways = 16;
    unsigned l3TagLatency = 5;
    unsigned l3DataLatency = 45;

    // Inclusive directory.
    double dirCoverage = 4.0;      ///< entries = coverage * cores * L1 lines
    unsigned dirWays = 16;
    unsigned dirLatency = 3;

    // Crossbar interconnect: per-hop latency.
    unsigned netLatency = 12;

    // Main memory access (80 ns at 3 GHz).
    unsigned memLatency = 240;

    // Outstanding misses per core.
    unsigned mshrs = 16;

    /** Total directory entries for an n-core system. */
    unsigned
    dirEntries(unsigned cores) const
    {
        return static_cast<unsigned>(
            dirCoverage * cores * l1Sets * l1Ways);
    }
};

} // namespace fa::mem

#endif // FA_MEM_MEM_CONFIG_HH
