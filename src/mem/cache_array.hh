/**
 * @file
 * Set-associative tag/state array with LRU replacement and support
 * for excluding locked ways from victim selection (paper §3.2.4:
 * locked cachelines must never be chosen as replacement victims).
 *
 * Data is not stored here: the simulator keeps a single functional
 * memory image whose timing of updates is controlled by the core and
 * coherence models, so cache arrays only need tags and MESI state.
 */

#ifndef FA_MEM_CACHE_ARRAY_HH
#define FA_MEM_CACHE_ARRAY_HH

#include <functional>
#include <vector>

#include "common/types.hh"

namespace fa::mem {

/** MESI stable states of a private cacheline. */
enum class CacheState : std::uint8_t {
    kInvalid,
    kShared,
    kOwned,      ///< MOESI O: readable, dirty, serves remote reads
    kExclusive,
    kModified,
};

/** Does this state confer write permission? */
constexpr bool
hasWritePerm(CacheState s)
{
    return s == CacheState::kExclusive || s == CacheState::kModified;
}

/** Does this state confer read permission? */
constexpr bool
isValid(CacheState s)
{
    return s != CacheState::kInvalid;
}

const char *cacheStateName(CacheState s);

/**
 * Tag/state array. Line addresses passed in must be line-aligned.
 */
class CacheArray
{
  public:
    /** Predicate deciding if a resident line may not be evicted. */
    using LockedFn = std::function<bool(Addr line)>;

    CacheArray(unsigned sets, unsigned ways);

    unsigned numSets() const { return setsCount; }
    unsigned numWays() const { return waysCount; }

    /** The set index a line maps to. */
    unsigned setOf(Addr line) const;

    /** Current state of a line (kInvalid if absent). */
    CacheState stateOf(Addr line) const;

    bool contains(Addr line) const
    {
        return isValid(stateOf(line));
    }

    /** Update LRU on an access. No-op if absent. */
    void touch(Addr line, Cycle now);

    /** Change the state of a resident line; panics if absent. */
    void setState(Addr line, CacheState st);

    /** Drop a line (no-op if absent). */
    void invalidate(Addr line);

    /** Outcome of insert(). */
    struct InsertResult
    {
        bool ok = false;          ///< false: every way is locked
        bool evicted = false;
        Addr victimLine = 0;
        CacheState victimState = CacheState::kInvalid;
    };

    /**
     * Insert a line, evicting the LRU unlocked way if the set is
     * full. If the line is already resident its state is upgraded
     * in place. Returns ok=false when all ways hold locked lines.
     */
    InsertResult insert(Addr line, CacheState st, Cycle now,
                        const LockedFn &locked);

    /** Number of valid lines currently resident (for tests). */
    unsigned population() const;

    /** Enumerate resident lines of a set (for tests). */
    std::vector<Addr> linesInSet(unsigned set) const;

  private:
    struct Way
    {
        Addr line = 0;
        CacheState state = CacheState::kInvalid;
        Cycle lastUse = 0;
    };

    Way *findWay(Addr line);
    const Way *findWay(Addr line) const;

    unsigned setsCount;
    unsigned waysCount;
    std::vector<Way> ways;  ///< sets * ways, row-major
};

} // namespace fa::mem

#endif // FA_MEM_CACHE_ARRAY_HH
