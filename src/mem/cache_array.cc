#include "mem/cache_array.hh"

#include "common/log.hh"

namespace fa::mem {

const char *
cacheStateName(CacheState s)
{
    switch (s) {
      case CacheState::kInvalid:   return "I";
      case CacheState::kShared:    return "S";
      case CacheState::kOwned:     return "O";
      case CacheState::kExclusive: return "E";
      case CacheState::kModified:  return "M";
    }
    return "?";
}

CacheArray::CacheArray(unsigned sets, unsigned num_ways)
    : setsCount(sets), waysCount(num_ways),
      ways(static_cast<size_t>(sets) * num_ways)
{
    if (sets == 0 || num_ways == 0)
        fatal("cache array must have nonzero sets and ways");
    if ((sets & (sets - 1)) != 0)
        fatal("cache array sets must be a power of two (got %u)", sets);
}

unsigned
CacheArray::setOf(Addr line) const
{
    // XOR-folded index hashing: regular strides (per-thread regions,
    // power-of-two data layouts) would otherwise alias whole regions
    // into a handful of sets; real tag arrays hash index bits for
    // the same reason.
    Addr idx = line >> kLineShift;
    idx ^= idx >> 13;
    idx ^= idx >> 21;
    return static_cast<unsigned>(idx & (setsCount - 1));
}

CacheArray::Way *
CacheArray::findWay(Addr line)
{
    unsigned set = setOf(line);
    Way *base = &ways[static_cast<size_t>(set) * waysCount];
    for (unsigned w = 0; w < waysCount; ++w) {
        if (isValid(base[w].state) && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

const CacheArray::Way *
CacheArray::findWay(Addr line) const
{
    return const_cast<CacheArray *>(this)->findWay(line);
}

CacheState
CacheArray::stateOf(Addr line) const
{
    const Way *w = findWay(line);
    return w ? w->state : CacheState::kInvalid;
}

void
CacheArray::touch(Addr line, Cycle now)
{
    if (Way *w = findWay(line))
        w->lastUse = now;
}

void
CacheArray::setState(Addr line, CacheState st)
{
    Way *w = findWay(line);
    if (!w)
        panic("setState on absent line %#lx",
              static_cast<unsigned long>(line));
    if (st == CacheState::kInvalid)
        panic("setState to I; use invalidate()");
    w->state = st;
}

void
CacheArray::invalidate(Addr line)
{
    if (Way *w = findWay(line))
        w->state = CacheState::kInvalid;
}

CacheArray::InsertResult
CacheArray::insert(Addr line, CacheState st, Cycle now,
                   const LockedFn &locked)
{
    InsertResult res;
    if (Way *w = findWay(line)) {
        w->state = st;
        w->lastUse = now;
        res.ok = true;
        return res;
    }

    unsigned set = setOf(line);
    Way *base = &ways[static_cast<size_t>(set) * waysCount];
    Way *victim = nullptr;
    for (unsigned w = 0; w < waysCount; ++w) {
        if (!isValid(base[w].state)) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        // Evict the least recently used way whose line is not locked.
        for (unsigned w = 0; w < waysCount; ++w) {
            if (locked && locked(base[w].line))
                continue;
            if (!victim || base[w].lastUse < victim->lastUse)
                victim = &base[w];
        }
        if (!victim)
            return res;  // every way locked: caller must retry
        res.evicted = true;
        res.victimLine = victim->line;
        res.victimState = victim->state;
    }

    victim->line = line;
    victim->state = st;
    victim->lastUse = now;
    res.ok = true;
    return res;
}

unsigned
CacheArray::population() const
{
    unsigned n = 0;
    for (const Way &w : ways)
        if (isValid(w.state))
            ++n;
    return n;
}

std::vector<Addr>
CacheArray::linesInSet(unsigned set) const
{
    std::vector<Addr> out;
    const Way *base = &ways[static_cast<size_t>(set) * waysCount];
    for (unsigned w = 0; w < waysCount; ++w)
        if (isValid(base[w].state))
            out.push_back(base[w].line);
    return out;
}

} // namespace fa::mem
