/**
 * @file
 * Inclusive full-map directory over the private cache hierarchies.
 *
 * The directory is finite (coverage-parameterized, Table 1), so
 * allocating an entry can require recalling all private copies of a
 * victim line — which may be blocked by a locked L1D line. That is
 * exactly the inclusion-driven deadlock scenario of paper §3.2.5,
 * resolved there (and here) by the core-side watchdog.
 */

#ifndef FA_MEM_DIRECTORY_HH
#define FA_MEM_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fa::mem {

/** Maximum cores a sharer bitmask supports. */
constexpr unsigned kMaxCores = 64;

/** One directory entry tracking the private holders of a line. */
struct DirEntry
{
    Addr line = 0;
    bool valid = false;
    std::uint64_t sharers = 0;  ///< bitmask of cores holding the line
    bool exclusive = false;     ///< one holder with M/E permission
    CoreId owner = kNoCore;     ///< valid when exclusive
    CoreId forwarder = kNoCore; ///< MESIF F-state holder (if sharer)
    CoreId dirtyOwner = kNoCore;///< MOESI O-state holder (if sharer)
    Cycle lastUse = 0;

    bool
    hasSharer(CoreId c) const
    {
        return (sharers >> c) & 1;
    }

    void
    addSharer(CoreId c)
    {
        sharers |= std::uint64_t{1} << c;
    }

    void
    removeSharer(CoreId c)
    {
        sharers &= ~(std::uint64_t{1} << c);
        if (exclusive && owner == c) {
            exclusive = false;
            owner = kNoCore;
        }
    }

    unsigned sharerCount() const
    {
        return static_cast<unsigned>(__builtin_popcountll(sharers));
    }
};

/**
 * Finite set-associative directory. A valid entry exists for every
 * line resident in any private cache (inclusion invariant).
 */
class Directory
{
  public:
    Directory(unsigned sets, unsigned ways);

    unsigned numSets() const { return setsCount; }
    unsigned numWays() const { return waysCount; }

    unsigned setOf(Addr line) const;

    /** Find the entry for a line; nullptr if absent. */
    DirEntry *find(Addr line);
    const DirEntry *find(Addr line) const;

    /**
     * Find a free way in the line's set, or nullptr if the set is
     * full (the caller must then recall a victim).
     */
    DirEntry *findFree(Addr line);

    /**
     * Pick the LRU valid entry of the line's set as recall victim.
     * Never returns nullptr on a full set.
     */
    DirEntry *chooseVictim(Addr line);

    /** Initialize a (free) entry for a line. */
    DirEntry *allocate(DirEntry *slot, Addr line, Cycle now);

    /** Invalidate an entry (all copies must already be recalled). */
    void release(DirEntry *entry);

    /** Number of valid entries (for tests). */
    unsigned population() const;

    /** Direct slot access by set/way (victim scans). */
    DirEntry *
    entryAt(unsigned set, unsigned way)
    {
        return &entries[static_cast<size_t>(set) * waysCount + way];
    }

  private:
    unsigned setsCount;
    unsigned waysCount;
    std::vector<DirEntry> entries;
};

} // namespace fa::mem

#endif // FA_MEM_DIRECTORY_HH
