/**
 * @file
 * Umbrella public header for the Free Atomics simulation library.
 *
 * Typical use:
 * @code
 *   #include "freeatomics/freeatomics.hh"
 *
 *   auto machine = fa::sim::MachineConfig::icelake(8);
 *   const auto *w = fa::wl::findWorkload("barnes");
 *   auto r = fa::wl::runWorkload(*w, machine,
 *                                fa::core::AtomicsMode::kFreeFwd,
 *                                8, 1.0, 42);
 * @endcode
 */

#ifndef FA_FREEATOMICS_HH
#define FA_FREEATOMICS_HH

#include "analysis/cfg.hh"
#include "analysis/critical_cycle.hh"
#include "analysis/fence_redundancy.hh"
#include "analysis/lock_cycle.hh"
#include "analysis/mc/diff.hh"
#include "analysis/mc/explore.hh"
#include "analysis/mc/tso_model.hh"
#include "analysis/race/certify.hh"
#include "analysis/race/hb.hh"
#include "analysis/race/report.hh"
#include "analysis/race/vclock.hh"
#include "analysis/sanitizer/fasan.hh"
#include "analysis/synth/synth.hh"
#include "analysis/trace.hh"
#include "analysis/trace_io.hh"
#include "analysis/tso_checker.hh"
#include "common/cli.hh"
#include "common/histogram.hh"
#include "common/host_prof.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/mem_image.hh"
#include "common/rng.hh"
#include "common/span_trace.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "core/atomic_queue.hh"
#include "core/core.hh"
#include "core/core_config.hh"
#include "core/pipeview.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/interp.hh"
#include "isa/program.hh"
#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "mem/mem_system.hh"
#include "sim/chaos/chaos.hh"
#include "sim/chaos/soak.hh"
#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/faprof/bench_core.hh"
#include "sim/forensics.hh"
#include "sim/interval_stats.hh"
#include "sim/presets.hh"
#include "sim/resilience/journal.hh"
#include "sim/resilience/resilience.hh"
#include "sim/runner.hh"
#include "sim/sweep/campaigns.hh"
#include "sim/sweep/pool.hh"
#include "sim/sweep/sweep.hh"
#include "sim/system.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

#endif // FA_FREEATOMICS_HH
