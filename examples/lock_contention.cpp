/**
 * @file
 * Lock-contention study: the scenario the paper's §5.5 highlights —
 * spinlock-protected critical sections at varying contention levels
 * (many locks = uncontended, one lock = fully serialized).
 *
 * Prints cycles per mode and the Free-atomics speedup as contention
 * grows, showing where unfencing and forwarding pay off.
 */

#include <cstdio>

#include "freeatomics/freeatomics.hh"

using namespace fa;

namespace {

isa::Program
lockProgram(unsigned thread_id, unsigned num_threads, int num_locks)
{
    (void)thread_id;
    isa::ProgramBuilder b("contention");
    isa::Reg r_bar = b.alloc();
    isa::Reg r_n = b.alloc();
    isa::Reg t0 = b.alloc();
    isa::Reg t1 = b.alloc();
    isa::Reg t2 = b.alloc();
    isa::Reg t3 = b.alloc();
    b.movi(r_bar, 0x10000);
    b.movi(r_n, num_threads);
    b.barrier(r_bar, r_n, t0, t1, t2, t3);

    isa::Reg r_i = b.alloc();
    isa::Reg r_idx = b.alloc();
    isa::Reg r_addr = b.alloc();
    isa::Reg r_tmp = b.alloc();
    isa::Reg r_val = b.alloc();
    isa::Reg r_six = b.alloc();
    isa::Reg r_data = b.alloc();
    b.movi(r_i, 64);
    b.movi(r_six, 6);
    b.movi(r_data, 0x200000);
    isa::Label loop = b.here();
    b.rand(r_idx, num_locks);
    b.alu(isa::AluFn::kShl, r_addr, r_idx, r_six);
    b.alu(isa::AluFn::kAdd, r_addr, r_addr, r_data);
    b.lockAcquire(r_addr, r_tmp);
    b.load(r_val, r_addr, 8);
    b.addi(r_val, r_val, 1);
    b.store(r_addr, r_val, 8);
    b.lockRelease(r_addr, r_tmp);
    b.addi(r_i, r_i, -1);
    b.branch(isa::BranchCond::kNe, r_i, isa::ProgramBuilder::zero(),
             loop);
    b.halt();
    return b.build();
}

Cycle
run(core::AtomicsMode mode, unsigned threads, int num_locks)
{
    std::vector<isa::Program> progs;
    for (unsigned t = 0; t < threads; ++t)
        progs.push_back(lockProgram(t, threads, num_locks));
    auto machine = sim::MachineConfig::icelake(threads);
    machine.core.mode = mode;
    sim::System sys(machine, progs, 7);
    auto out = sys.run();
    if (!out.finished)
        fatal("run failed: %s", out.failure.c_str());
    // Verify mutual exclusion: the counters must sum to all updates.
    std::int64_t sum = 0;
    for (int n = 0; n < num_locks; ++n)
        sum += sys.readWord(0x200000 + n * 64 + 8);
    if (sum != 64 * static_cast<std::int64_t>(threads))
        fatal("lost update: sum=%lld", static_cast<long long>(sum));
    return out.cycles;
}

} // namespace

int
main()
{
    constexpr unsigned kThreads = 8;
    std::printf("lock contention sweep: %u threads x 64 critical "
                "sections\n\n", kThreads);
    std::printf("%-8s %12s %12s %12s %10s\n", "locks", "baseline",
                "Free", "Free+Fwd", "speedup");
    for (int locks : {256, 64, 16, 8, 4, 2}) {
        Cycle base = run(core::AtomicsMode::kFenced, kThreads, locks);
        Cycle fr = run(core::AtomicsMode::kFree, kThreads, locks);
        Cycle fwd = run(core::AtomicsMode::kFreeFwd, kThreads, locks);
        std::printf("%-8d %12llu %12llu %12llu %9.2fx\n", locks,
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(fr),
                    static_cast<unsigned long long>(fwd),
                    static_cast<double>(base) /
                        static_cast<double>(fwd));
    }
    std::printf("\nAll runs verified: no critical-section update was "
                "lost.\n");
    return 0;
}
