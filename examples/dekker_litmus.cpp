/**
 * @file
 * Reproduces paper Figure 10: Dekker's algorithm with atomic RMWs
 * used as barriers. Under type-1 atomicity the (A==0, B==0) outcome
 * is forbidden — and Free atomics must preserve that even with every
 * fence removed (the proof sketch of §3.4).
 *
 * The example runs many rounds in every atomic-RMW flavour, prints
 * the observed outcome histogram, and flags any forbidden outcome.
 * Every run is also recorded and replayed through the axiomatic
 * x86-TSO checker, so the assertion is on the whole execution — not
 * just the final register values.
 */

#include <cstdio>
#include <map>

#include "freeatomics/freeatomics.hh"

using namespace fa;

int
main()
{
    const auto *w = wl::findWorkload("dekker");
    if (!w)
        fatal("dekker litmus workload missing");

    constexpr std::int64_t kRounds = 32;  // rounds per seeded run
    constexpr unsigned kSeeds = 8;

    std::printf("Dekker litmus (Figure 10): st A,1; RMW C; ld B "
                "|| st B,1; RMW D; ld A\n");
    std::printf("%lld rounds x %u seeds per mode; outcome (ldB, ldA)"
                " with 0 meaning 'stale'\n\n",
                static_cast<long long>(kRounds), kSeeds);

    for (auto mode :
         {core::AtomicsMode::kFenced, core::AtomicsMode::kSpec,
          core::AtomicsMode::kFree, core::AtomicsMode::kFreeFwd}) {
        std::map<std::pair<int, int>, int> histogram;
        bool forbidden = false;
        bool tso_ok = true;
        std::size_t tso_events = 0;
        for (unsigned seed = 1; seed <= kSeeds; ++seed) {
            auto machine = sim::MachineConfig::icelake(2);
            machine.core.mode = mode;
            machine.cores = 2;
            machine.recordMemTrace = true;
            auto progs = wl::buildPrograms(*w, 2, 1.0);
            sim::System sys(machine, progs, seed);
            auto out = sys.run();
            if (!out.finished)
                fatal("dekker run failed: %s", out.failure.c_str());
            auto tso = analysis::checkTso(*sys.trace());
            tso_events += tso.eventsChecked;
            if (!tso.ok) {
                tso_ok = false;
                std::printf("  seed %u: %s\n", seed, tso.error.c_str());
            }
            for (std::int64_t r = 0; r < kRounds; ++r) {
                int v0 = sys.readWord(wl::kResultBase + r * 16) ? 1 : 0;
                int v1 =
                    sys.readWord(wl::kResultBase + r * 16 + 8) ? 1 : 0;
                ++histogram[{v0, v1}];
                if (v0 == 0 && v1 == 0)
                    forbidden = true;
            }
        }
        std::printf("%-16s", core::atomicsModeName(mode));
        for (const auto &[outcome, count] : histogram) {
            std::printf("  (%d,%d): %3d", outcome.first,
                        outcome.second, count);
        }
        std::printf("   %s, tso-check %s (%zu events)\n",
                    forbidden ? "FORBIDDEN OUTCOME OBSERVED"
                              : "type-1 atomicity holds",
                    tso_ok ? "ok" : "FAILED", tso_events);
        if (forbidden || !tso_ok)
            return 1;
    }
    return 0;
}
