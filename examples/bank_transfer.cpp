/**
 * @file
 * Bank-transfer scenario: the AS-style two-lock hotspot from paper
 * §5.5 recast as a familiar application. Each thread repeatedly
 * locks two random accounts in ascending order, moves money between
 * them, and unlocks. The total balance is a conserved quantity the
 * run checks at the end — under all four atomic-RMW flavours.
 */

#include <cstdio>

#include "freeatomics/freeatomics.hh"

using namespace fa;

namespace {

constexpr int kAccounts = 32;
constexpr std::int64_t kInitialBalance = 1000;
constexpr std::int64_t kTransfers = 32;
constexpr Addr kAccountBase = 0x200000;  // 64B per account

isa::Program
transferProgram(unsigned num_threads)
{
    isa::ProgramBuilder b("bank");
    isa::Reg r_bar = b.alloc();
    isa::Reg r_n = b.alloc();
    isa::Reg t0 = b.alloc();
    isa::Reg t1 = b.alloc();
    isa::Reg t2 = b.alloc();
    isa::Reg t3 = b.alloc();
    b.movi(r_bar, 0x10000);
    b.movi(r_n, num_threads);
    b.barrier(r_bar, r_n, t0, t1, t2, t3);

    isa::Reg r_i = b.alloc();
    isa::Reg r_from = b.alloc();
    isa::Reg r_a0 = b.alloc();
    isa::Reg r_a1 = b.alloc();
    isa::Reg r_tmp = b.alloc();
    isa::Reg r_amt = b.alloc();
    isa::Reg r_bal = b.alloc();
    isa::Reg r_six = b.alloc();
    isa::Reg r_base = b.alloc();
    b.movi(r_i, kTransfers);
    b.movi(r_six, 6);
    b.movi(r_base, static_cast<std::int64_t>(kAccountBase));

    isa::Label loop = b.here();
    // Pick two adjacent accounts (ascending: no software deadlock).
    b.rand(r_from, kAccounts - 1);
    b.alu(isa::AluFn::kShl, r_a0, r_from, r_six);
    b.alu(isa::AluFn::kAdd, r_a0, r_a0, r_base);
    b.addi(r_a1, r_a0, 64);
    b.rand(r_amt, 10);

    b.lockAcquire(r_a0, r_tmp);
    b.lockAcquire(r_a1, r_tmp);
    // from -> to: balances live 8 bytes past each account's lock.
    b.load(r_bal, r_a0, 8);
    b.alu(isa::AluFn::kSub, r_bal, r_bal, r_amt);
    b.store(r_a0, r_bal, 8);
    b.load(r_bal, r_a1, 8);
    b.alu(isa::AluFn::kAdd, r_bal, r_bal, r_amt);
    b.store(r_a1, r_bal, 8);
    b.lockRelease(r_a1, r_tmp);
    b.lockRelease(r_a0, r_tmp);

    b.addi(r_i, r_i, -1);
    b.branch(isa::BranchCond::kNe, r_i, isa::ProgramBuilder::zero(),
             loop);
    b.halt();
    return b.build();
}

} // namespace

int
main()
{
    constexpr unsigned kThreads = 8;
    std::printf("bank transfer: %u threads x %lld two-lock "
                "transfers over %d accounts\n\n",
                kThreads, static_cast<long long>(kTransfers),
                kAccounts);

    for (auto mode :
         {core::AtomicsMode::kFenced, core::AtomicsMode::kSpec,
          core::AtomicsMode::kFree, core::AtomicsMode::kFreeFwd}) {
        std::vector<isa::Program> progs(kThreads,
                                        transferProgram(kThreads));
        auto machine = sim::MachineConfig::icelake(kThreads);
        machine.core.mode = mode;
        sim::System sys(machine, progs, 11);
        for (int a = 0; a < kAccounts; ++a)
            sys.mem().writeWord(kAccountBase + a * 64 + 8,
                                kInitialBalance);
        auto out = sys.run();
        if (!out.finished)
            fatal("run failed: %s", out.failure.c_str());

        std::int64_t total = 0;
        for (int a = 0; a < kAccounts; ++a)
            total += sys.readWord(kAccountBase + a * 64 + 8);
        bool ok = total == kAccounts * kInitialBalance;
        std::printf("  %-16s %8llu cycles   total balance %lld %s\n",
                    core::atomicsModeName(mode),
                    static_cast<unsigned long long>(out.cycles),
                    static_cast<long long>(total),
                    ok ? "(conserved)" : "(MONEY LEAKED!)");
    }
    return 0;
}
