/**
 * @file
 * Quickstart: write a tiny multi-threaded program with the
 * ProgramBuilder, run it on a simulated multicore under both the
 * fenced baseline and Free atomics, and compare.
 *
 * Each of 4 threads atomically increments a shared counter 200
 * times; the run verifies atomicity and reports the speedup from
 * removing the fences around the RMWs.
 */

#include <cstdio>

#include "freeatomics/freeatomics.hh"

using namespace fa;

namespace {

isa::Program
counterProgram(unsigned thread_id, unsigned num_threads)
{
    (void)thread_id;
    isa::ProgramBuilder b("quickstart");

    // Synchronize the start so every thread contends.
    isa::Reg r_bar = b.alloc();
    isa::Reg r_n = b.alloc();
    isa::Reg t0 = b.alloc();
    isa::Reg t1 = b.alloc();
    isa::Reg t2 = b.alloc();
    isa::Reg t3 = b.alloc();
    b.movi(r_bar, 0x10000);
    b.movi(r_n, num_threads);
    b.barrier(r_bar, r_n, t0, t1, t2, t3);

    isa::Reg r_i = b.alloc();
    isa::Reg r_addr = b.alloc();
    isa::Reg r_one = b.alloc();
    isa::Reg r_old = b.alloc();
    b.movi(r_i, 200);
    b.movi(r_addr, 0x20000);
    b.movi(r_one, 1);
    isa::Label loop = b.here();
    b.fetchAdd(r_old, r_addr, r_one);   // the atomic RMW under study
    b.addi(r_i, r_i, -1);
    b.branch(isa::BranchCond::kNe, r_i, isa::ProgramBuilder::zero(),
             loop);
    b.halt();
    return b.build();
}

Cycle
runMode(core::AtomicsMode mode, unsigned threads)
{
    std::vector<isa::Program> progs;
    for (unsigned t = 0; t < threads; ++t)
        progs.push_back(counterProgram(t, threads));

    auto machine = sim::MachineConfig::icelake(threads);
    machine.core.mode = mode;
    sim::System sys(machine, progs, /*seed=*/42);
    auto out = sys.run();
    if (!out.finished)
        fatal("run failed: %s", out.failure.c_str());

    std::int64_t counter = sys.readWord(0x20000);
    std::int64_t want = 200 * static_cast<std::int64_t>(threads);
    std::printf("  %-16s %8llu cycles   counter=%lld (want %lld) %s\n",
                core::atomicsModeName(mode),
                static_cast<unsigned long long>(out.cycles),
                static_cast<long long>(counter),
                static_cast<long long>(want),
                counter == want ? "OK" : "ATOMICITY VIOLATED");
    return out.cycles;
}

} // namespace

int
main()
{
    constexpr unsigned kThreads = 4;
    std::printf("quickstart: %u threads x 200 atomic increments\n",
                kThreads);
    Cycle base = runMode(core::AtomicsMode::kFenced, kThreads);
    runMode(core::AtomicsMode::kSpec, kThreads);
    runMode(core::AtomicsMode::kFree, kThreads);
    Cycle fwd = runMode(core::AtomicsMode::kFreeFwd, kThreads);
    std::printf("Free atomics speedup over fenced baseline: %.2fx\n",
                static_cast<double>(base) / static_cast<double>(fwd));
    return 0;
}
