/**
 * @file
 * LL/SC vs atomic RMW (paper §2): the two ISA-level designs for
 * atomic operations. An LL/SC pair fails under interference and must
 * retry in software; an atomic RMW instruction always succeeds — and
 * with Free atomics it no longer pays for fences either.
 *
 * Runs a contended shared counter both ways and reports cycles and
 * the store-conditional failure rate as contention grows.
 */

#include <cstdio>

#include "freeatomics/freeatomics.hh"

using namespace fa;

namespace {

isa::Program
counterProgram(unsigned threads, std::int64_t iters, bool llsc)
{
    isa::ProgramBuilder b(llsc ? "llsc" : "rmw");
    auto bar = b.alloc();
    auto n = b.alloc();
    auto t0 = b.alloc();
    auto t1 = b.alloc();
    auto t2 = b.alloc();
    auto t3 = b.alloc();
    b.movi(bar, 0x10000);
    b.movi(n, threads);
    b.barrier(bar, n, t0, t1, t2, t3);

    auto a = b.alloc();
    auto one = b.alloc();
    auto i = b.alloc();
    auto old = b.alloc();
    auto tmp = b.alloc();
    auto f = b.alloc();
    b.movi(a, 0x20000);
    b.movi(one, 1);
    b.movi(i, iters);
    isa::Label loop = b.here();
    if (llsc)
        b.llscFetchAdd(old, a, one, tmp, f);
    else
        b.fetchAdd(old, a, one);
    b.addi(i, i, -1);
    b.branch(isa::BranchCond::kNe, i, isa::ProgramBuilder::zero(),
             loop);
    b.halt();
    return b.build();
}

} // namespace

int
main()
{
    constexpr std::int64_t kIters = 48;
    std::printf("shared counter, %lld increments per thread\n\n",
                static_cast<long long>(kIters));
    std::printf("%-8s %-22s %10s %10s %12s\n", "threads", "primitive",
                "cycles", "counter", "sc_failures");

    for (unsigned threads : {2u, 4u, 8u, 16u}) {
        struct Variant
        {
            const char *name;
            bool llsc;
            core::AtomicsMode mode;
        };
        const Variant variants[] = {
            {"ll/sc loop", true, core::AtomicsMode::kFenced},
            {"rmw (fenced)", false, core::AtomicsMode::kFenced},
            {"rmw (free atomics)", false, core::AtomicsMode::kFreeFwd},
        };
        for (const auto &v : variants) {
            std::vector<isa::Program> progs(
                threads, counterProgram(threads, kIters, v.llsc));
            auto machine = sim::MachineConfig::icelake(threads);
            machine.core.mode = v.mode;
            sim::System sys(machine, progs, 42);
            auto out = sys.run();
            if (!out.finished)
                fatal("run failed: %s", out.failure.c_str());
            auto total = sys.coreTotals();
            std::printf("%-8u %-22s %10llu %10lld %12llu\n", threads,
                        v.name,
                        static_cast<unsigned long long>(out.cycles),
                        static_cast<long long>(sys.readWord(0x20000)),
                        static_cast<unsigned long long>(
                            total.llscFailures));
        }
        std::printf("\n");
    }
    std::printf("Atomic RMWs never fail, while store-conditionals "
                "can and must retry in software;\n"
                "with the fences gone, the RMW counter runs ~3x "
                "faster than either fenced variant.\n");
    return 0;
}
