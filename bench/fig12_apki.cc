/**
 * @file
 * Figure 12: committed atomic RMWs per kilo-instruction (APKI) for
 * the 26-application suite, with the paper's atomic-intensive
 * classification (>= 0.75 APKI in the paper's runs).
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Figure 12: frequency of atomic RMWs (APKI)");

    TablePrinter t({"app", "apki", "class"});
    for (const auto &w : wl::allWorkloads()) {
        auto r = bench::runOnce(cfg, w,
                                sim::MachineConfig::icelake(cfg.cores),
                                core::AtomicsMode::kFenced);
        t.cell(w.name)
            .cell(r.apki(), 2)
            .cell(w.atomicIntensive ? "atomic-intensive" : "non-AI")
            .endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
