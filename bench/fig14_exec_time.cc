/**
 * @file
 * Figure 14: normalized execution time of the three Free-atomics
 * flavours relative to the fenced baseline, per application, plus
 * the all-apps and atomic-intensive averages the paper headlines
 * (12.5% / 25.2% reductions for FreeAtomics+Fwd).
 *
 * The active/sleep split of the slowest thread (the shaded/unshaded
 * bar portions) is reported for the FreeAtomics+Fwd runs.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Figure 14: normalized execution time");

    TablePrinter t({"app", "baseline", "+Spec", "Free", "Free+Fwd",
                    "fwd_active", "fwd_sleep"});
    double sum_all[3] = {0, 0, 0};
    double sum_ai[3] = {0, 0, 0};
    unsigned n_all = 0;
    unsigned n_ai = 0;
    for (const auto &w : wl::allWorkloads()) {
        auto machine = sim::MachineConfig::icelake(cfg.cores);
        auto base = bench::runOnce(cfg, w, machine,
                                   core::AtomicsMode::kFenced);
        auto spec = bench::runOnce(cfg, w, machine,
                                   core::AtomicsMode::kSpec);
        auto free_r = bench::runOnce(cfg, w, machine,
                                     core::AtomicsMode::kFree);
        auto fwd = bench::runOnce(cfg, w, machine,
                                  core::AtomicsMode::kFreeFwd);
        double d = static_cast<double>(base.cycles);
        double norm[3] = {spec.cycles / d, free_r.cycles / d,
                          fwd.cycles / d};
        double tot = static_cast<double>(fwd.slowestActiveCycles +
                                         fwd.slowestSleepCycles);
        t.cell(w.name)
            .cell(1.0, 3)
            .cell(norm[0], 3)
            .cell(norm[1], 3)
            .cell(norm[2], 3)
            .cell(tot > 0 ? fwd.slowestActiveCycles / tot : 1.0, 2)
            .cell(tot > 0 ? fwd.slowestSleepCycles / tot : 0.0, 2)
            .endRow();
        for (int i = 0; i < 3; ++i)
            sum_all[i] += norm[i];
        ++n_all;
        if (w.atomicIntensive) {
            for (int i = 0; i < 3; ++i)
                sum_ai[i] += norm[i];
            ++n_ai;
        }
    }
    t.cell("Average(all)").cell(1.0, 3).cell(sum_all[0] / n_all, 3)
        .cell(sum_all[1] / n_all, 3).cell(sum_all[2] / n_all, 3)
        .cell("").cell("").endRow();
    t.cell("Average(AI)").cell(1.0, 3).cell(sum_ai[0] / n_ai, 3)
        .cell(sum_ai[1] / n_ai, 3).cell(sum_ai[2] / n_ai, 3)
        .cell("").cell("").endRow();
    bench::emit(cfg, t);

    std::cout << "\nFreeAtomics+Fwd execution-time reduction: "
              << fmtDouble(100.0 * (1.0 - sum_all[2] / n_all), 1)
              << "% (all apps), "
              << fmtDouble(100.0 * (1.0 - sum_ai[2] / n_ai), 1)
              << "% (atomic-intensive)\n"
              << "(paper: 12.5% all, 25.2% atomic-intensive)\n";
    return 0;
}
