/**
 * @file
 * Extension bench: how much of Free atomics' benefit survives
 * smarter software lock designs? Compares the TTAS mutex the suite
 * uses against a FIFO ticket lock and an MCS queue lock, each under
 * the fenced baseline and FreeAtomics+Fwd.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Extension: lock designs x atomic flavours");

    TablePrinter t({"lock", "threads", "fenced_cycles",
                    "freefwd_cycles", "speedup"});
    unsigned threads = cfg.cores < 16 ? cfg.cores : 16;
    struct Row
    {
        const char *label;
        const char *workload;
    };
    const Row rows[] = {
        {"ttas (PC kernel)", "PC"},
        {"ticket", "ticket_lock"},
        {"mcs", "mcs_lock"},
    };
    for (const auto &row : rows) {
        const auto *w = wl::findWorkload(row.workload);
        auto machine = sim::MachineConfig::icelake(threads);
        auto fenced = wl::runWorkload(*w, machine,
                                      core::AtomicsMode::kFenced,
                                      threads, cfg.scale, 0xbe9c5,
                                      500'000'000);
        auto fwd = wl::runWorkload(*w, machine,
                                   core::AtomicsMode::kFreeFwd,
                                   threads, cfg.scale, 0xbe9c5,
                                   500'000'000);
        t.cell(row.label)
            .cell(std::to_string(threads))
            .cell(fenced.finished ? fenced.cycles : 0)
            .cell(fwd.finished ? fwd.cycles : 0)
            .cell(fwd.cycles ? static_cast<double>(fenced.cycles) /
                      static_cast<double>(fwd.cycles)
                             : 0.0,
                  2)
            .endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
