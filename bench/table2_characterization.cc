/**
 * @file
 * Table 2: characterization of Free atomics (FreeAtomics+Fwd runs) —
 * percentage of omitted fences, watchdog timeout count, memory
 * dependence violations as a share of squashes, and the share of
 * atomics forwarded by an atomic (FbA) or by an ordinary store (FbS).
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Table 2: characterization of Free atomics");

    TablePrinter t({"app", "omitted_fences_pct", "timeouts",
                    "mdv_pct_squashes", "fba_pct", "fbs_pct"});
    double of = 0;
    double to = 0;
    double mdv = 0;
    double fba = 0;
    double fbs = 0;
    unsigned n = 0;
    for (const auto &w : wl::allWorkloads()) {
        auto r = bench::runOnce(cfg, w,
                                sim::MachineConfig::icelake(cfg.cores),
                                core::AtomicsMode::kFreeFwd);
        t.cell(w.name)
            .cell(r.omittedFencePct(), 2)
            .cell(r.core.watchdogTimeouts)
            .cell(r.mdvPctOfSquashes(), 2)
            .cell(r.fwdByAtomicPct(), 2)
            .cell(r.fwdByStorePct(), 3)
            .endRow();
        of += r.omittedFencePct();
        to += static_cast<double>(r.core.watchdogTimeouts);
        mdv += r.mdvPctOfSquashes();
        fba += r.fwdByAtomicPct();
        fbs += r.fwdByStorePct();
        ++n;
    }
    t.cell("Average").cell(of / n, 2).cell(fmtDouble(to / n, 2))
        .cell(mdv / n, 2).cell(fba / n, 2).cell(fbs / n, 3).endRow();
    bench::emit(cfg, t);
    return 0;
}
