/**
 * @file
 * Figure 13: lock locality — how often a load_lock finds its data in
 * the SQ (store-to-load forwarding) or already held with write
 * permission in L1/L2, for baseline atomic RMWs vs Free atomics.
 *
 * Expected shape: Free atomics raise locality everywhere, with the
 * forwarded share dominating for barnes/radiosity/fmm-like apps.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Figure 13: locality of atomics");

    TablePrinter t({"app", "baseline_l1l2", "free_l1l2",
                    "free_forwarded", "free_total"});
    for (const auto &w : wl::allWorkloads()) {
        auto base = bench::runOnce(cfg, w,
                                   sim::MachineConfig::icelake(cfg.cores),
                                   core::AtomicsMode::kFenced);
        auto fwd = bench::runOnce(cfg, w,
                                  sim::MachineConfig::icelake(cfg.cores),
                                  core::AtomicsMode::kFreeFwd);
        double fwd_share = fwd.lockLocalityFwdRatio();
        t.cell(w.name)
            .cell(base.lockLocalityRatio(), 3)
            .cell(fwd.lockLocalityRatio() - fwd_share, 3)
            .cell(fwd_share, 3)
            .cell(fwd.lockLocalityRatio(), 3)
            .endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
