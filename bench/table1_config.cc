/**
 * @file
 * Table 1: system configuration of the evaluated machine presets.
 */

#include "bench_util.hh"

using namespace fa;

namespace {

void
printMachine(const sim::MachineConfig &m)
{
    std::cout << "---- " << m.name << " (" << m.cores << " cores) ----\n";
    TablePrinter t({"parameter", "value"});
    auto &c = m.core;
    auto &mm = m.mem;
    t.cell("Fetch/Decode width").cell(std::to_string(c.fetchWidth) +
                                      " instr").endRow();
    t.cell("Issue/Commit width").cell(std::to_string(c.issueWidth) +
                                      " uops").endRow();
    t.cell("ROB").cell(std::to_string(c.robSize) + " entries").endRow();
    t.cell("LQ").cell(std::to_string(c.lqSize) + " entries").endRow();
    t.cell("SQ").cell(std::to_string(c.sqSize) + " entries").endRow();
    t.cell("Atomic Queue").cell(std::to_string(c.aqSize) +
                                " entries").endRow();
    t.cell("Watchdog timeout").cell(std::to_string(c.watchdogThreshold)
                                    + " cycles").endRow();
    t.cell("Fwd chain cap").cell(std::to_string(c.fwdChainCap)).endRow();
    t.cell("Memdep predictor").cell("store-set style").endRow();
    t.cell("Branch predictor").cell("bimodal 2^" +
        std::to_string(c.bpTableBits)).endRow();
    t.cell("Store prefetch").cell(c.storePrefetch ? "at-commit [54]"
                                                  : "off").endRow();
    t.cell("L1D").cell(std::to_string(mm.l1Sets * mm.l1Ways *
                                      kLineBytes / 1024) + "KB, " +
        std::to_string(mm.l1Ways) + " ways, " +
        std::to_string(mm.l1HitLatency) + " cycles").endRow();
    t.cell("L2").cell(std::to_string(mm.l2Sets * mm.l2Ways *
                                     kLineBytes / 1024) + "KB, " +
        std::to_string(mm.l2Ways) + " ways, " +
        std::to_string(mm.l2HitLatency) + " cycles").endRow();
    t.cell("L3").cell(std::to_string(mm.l3Sets * mm.l3Ways *
                                     kLineBytes / 1024 / 1024) +
        "MB, " + std::to_string(mm.l3Ways) + " ways, " +
        std::to_string(mm.l3TagLatency) + "+" +
        std::to_string(mm.l3DataLatency) + " cycles").endRow();
    t.cell("Directory").cell(
        std::to_string(static_cast<int>(mm.dirCoverage * 100)) +
        "% coverage, " + std::to_string(mm.dirWays) + " ways").endRow();
    t.cell("Crossbar hop").cell(std::to_string(mm.netLatency) +
                                " cycles").endRow();
    t.cell("Memory").cell(std::to_string(mm.memLatency) +
                          " cycles").endRow();
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Table 1: system configuration\n\n";
    bench::BenchConfig cfg;
    printMachine(sim::MachineConfig::icelake(cfg.cores));
    printMachine(sim::MachineConfig::skylake(cfg.cores));
    return 0;
}
