/**
 * @file
 * Figure 1: average cost in cycles of a fenced atomic RMW, split
 * into store-buffer drain (Drain_SB) and post-issue (Atomic) cycles,
 * on Skylake-like (224 ROB) and Icelake-like (352 ROB) cores.
 *
 * Expected shape: cost dominated by Drain_SB, growing with ROB size;
 * store-intensive barrier applications (fft, radix, ocean) highest.
 *
 * The table reports means (as the paper's bars do); the end-to-end
 * atomic latency *distribution* rides along as p50/p99 columns from
 * the always-on histograms, and FA_JSON=<file> dumps every run's full
 * telemetry (all four histograms with buckets) for offline plots.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Figure 1: cost of fenced atomic RMWs");

    TablePrinter t({"app", "sky_drain", "sky_atomic", "sky_total",
                    "ice_drain", "ice_atomic", "ice_total",
                    "ice_lat_p50", "ice_lat_p99"});
    double sky_sum = 0;
    double ice_sum = 0;
    unsigned n = 0;
    for (const auto &w : wl::allWorkloads()) {
        auto sky = bench::runOnce(cfg, w,
                                  sim::MachineConfig::skylake(cfg.cores),
                                  core::AtomicsMode::kFenced);
        auto ice = bench::runOnce(cfg, w,
                                  sim::MachineConfig::icelake(cfg.cores),
                                  core::AtomicsMode::kFenced);
        bench::emitRunJson(cfg, "fig1_atomic_cost", w.name, "skylake",
                           sky);
        bench::emitRunJson(cfg, "fig1_atomic_cost", w.name, "icelake",
                           ice);
        t.cell(w.name)
            .cell(sky.avgDrainSbCycles(), 1)
            .cell(sky.avgAtomicCycles(), 1)
            .cell(sky.avgAtomicCost(), 1)
            .cell(ice.avgDrainSbCycles(), 1)
            .cell(ice.avgAtomicCycles(), 1)
            .cell(ice.avgAtomicCost(), 1)
            .cell(ice.hists.atomicLatency.p50(), 1)
            .cell(ice.hists.atomicLatency.p99(), 1)
            .endRow();
        sky_sum += sky.avgAtomicCost();
        ice_sum += ice.avgAtomicCost();
        ++n;
    }
    t.cell("Average").cell("").cell("").cell(sky_sum / n, 1)
        .cell("").cell("").cell(ice_sum / n, 1).cell("").cell("")
        .endRow();
    bench::emit(cfg, t);
    return 0;
}
