/**
 * @file
 * Ablation: per-core lock-acquisition order. The paper's description
 * lets younger load_locks lock out of order (enabling the Figure 5
 * RMW-RMW deadlock class); this implementation defaults to
 * program-order acquisition, which removes that class. The sweep
 * shows the deadlock/timeout frequency and performance of both
 * policies on the lock-heavy applications.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: lock acquisition order (Free+Fwd)");

    TablePrinter t({"app", "inorder_cycles", "inorder_timeouts",
                    "ooo_cycles", "ooo_timeouts"});
    for (const char *name :
         {"CQ", "PC", "TPCC", "AS", "barnes", "radiosity", "canneal",
          "RBT"}) {
        const auto *w = wl::findWorkload(name);
        auto m_in = sim::MachineConfig::icelake(cfg.cores);
        m_in.core.inOrderLockAcquisition = true;
        auto r_in = bench::runOnce(cfg, *w, m_in,
                                   core::AtomicsMode::kFreeFwd);
        auto m_ooo = sim::MachineConfig::icelake(cfg.cores);
        m_ooo.core.inOrderLockAcquisition = false;
        auto r_ooo = bench::runOnce(cfg, *w, m_ooo,
                                    core::AtomicsMode::kFreeFwd);
        t.cell(name)
            .cell(r_in.cycles)
            .cell(r_in.core.watchdogTimeouts)
            .cell(r_ooo.cycles)
            .cell(r_ooo.core.watchdogTimeouts)
            .endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
