/**
 * @file
 * Ablation (paper §4.3 sensitivity claim): Atomic Queue depth. The
 * paper's analysis found 4 entries sufficient; this sweep shows the
 * saturation on the atomic-intensive applications.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: Atomic Queue size (Free+Fwd)");

    const unsigned sizes[] = {1, 2, 4, 8};
    std::vector<std::string> headers{"app"};
    for (unsigned s : sizes)
        headers.push_back("aq" + std::to_string(s) + "_cycles");
    headers.push_back("aq4_dispatch_stall");
    TablePrinter t(headers);

    for (const auto &w : wl::allWorkloads()) {
        if (!w.atomicIntensive)
            continue;
        t.cell(w.name);
        std::uint64_t stall4 = 0;
        for (unsigned s : sizes) {
            auto m = sim::MachineConfig::icelake(cfg.cores);
            m.core.aqSize = s;
            auto r = bench::runOnce(cfg, w, m,
                                    core::AtomicsMode::kFreeFwd);
            t.cell(r.cycles);
            if (s == 4)
                stall4 = r.core.dispatchStallAqCycles;
        }
        t.cell(stall4);
        t.endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
