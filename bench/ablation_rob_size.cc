/**
 * @file
 * Ablation backing the paper's Figure 1 claim: "the latency of a
 * fenced implementation of atomic RMWs increases with the ROB size"
 * (Sandy Bridge 168 -> Skylake 224 -> Icelake 352 entries), while
 * Free atomics stay flat.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: fenced atomic cost vs ROB size");

    TablePrinter t({"app", "machine", "rob", "fenced_cost",
                    "fenced_cycles", "freefwd_cycles"});
    const sim::MachineConfig machines[] = {
        sim::MachineConfig::sandybridge(cfg.cores),
        sim::MachineConfig::skylake(cfg.cores),
        sim::MachineConfig::icelake(cfg.cores),
    };
    for (const char *name : {"fft", "radix", "canneal", "barnes"}) {
        const auto *w = wl::findWorkload(name);
        for (const auto &m : machines) {
            auto fenced = bench::runOnce(cfg, *w, m,
                                         core::AtomicsMode::kFenced);
            auto fwd = bench::runOnce(cfg, *w, m,
                                      core::AtomicsMode::kFreeFwd);
            t.cell(name)
                .cell(m.name)
                .cell(std::to_string(m.core.robSize))
                .cell(fenced.avgAtomicCost(), 1)
                .cell(fenced.cycles)
                .cell(fwd.cycles)
                .endRow();
        }
    }
    bench::emit(cfg, t);
    return 0;
}
