/**
 * @file
 * Ablation: the two prefetchers of Table 1. The at-commit store
 * prefetch [54] is what keeps SB drains short (and therefore what a
 * fenced baseline's Figure 1 cost already includes); the L1D stride
 * prefetcher [7] covers streaming loads.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: store/stride prefetchers (fenced "
                       "baseline)");

    TablePrinter t({"app", "both_on", "no_store_pf", "no_stride_pf",
                    "both_off"});
    for (const char *name :
         {"fft", "radix", "barnes", "TATP", "canneal", "watersp"}) {
        const auto *w = wl::findWorkload(name);
        t.cell(name);
        for (int variant = 0; variant < 4; ++variant) {
            auto m = sim::MachineConfig::icelake(cfg.cores);
            m.core.storePrefetch = variant == 0 || variant == 2;
            m.core.strideLoadPrefetch = variant == 0 || variant == 1;
            auto r = bench::runOnce(cfg, *w, m,
                                    core::AtomicsMode::kFenced);
            t.cell(r.cycles);
        }
        t.endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
