/**
 * @file
 * Ablation: coherence protocol variant. The paper evaluates on MESI;
 * MESIF's F-state forwarder shortens shared-read fills, and MOESI's
 * dirty sharing defers writebacks — both mostly help read-shared
 * working sets and barely move the Free-atomics story (atomics need
 * exclusive ownership either way).
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: MESI vs MESIF vs MOESI");

    TablePrinter t({"app", "mode", "mesi_cycles", "mesif_cycles",
                    "moesi_cycles", "fwd_hits", "moesi_writebacks"});
    for (const char *name :
         {"barnes", "radiosity", "TATP", "fft", "RBT", "seqlock"}) {
        const auto *w = wl::findWorkload(name);
        unsigned threads =
            std::string(name) == "seqlock" && cfg.cores > 8
                ? 8
                : cfg.cores;
        for (auto mode :
             {core::AtomicsMode::kFenced, core::AtomicsMode::kFreeFwd}) {
            auto mesi = sim::MachineConfig::icelake(threads);
            mesi.mem.protocol = mem::Protocol::kMesi;
            auto r1 = wl::runWorkload(*w, mesi, mode, threads,
                                      cfg.scale, 0xbe9c5,
                                      500'000'000);
            auto mesif = sim::MachineConfig::icelake(threads);
            mesif.mem.protocol = mem::Protocol::kMesif;
            auto r2 = wl::runWorkload(*w, mesif, mode, threads,
                                      cfg.scale, 0xbe9c5,
                                      500'000'000);
            auto moesi = sim::MachineConfig::icelake(threads);
            moesi.mem.protocol = mem::Protocol::kMoesi;
            auto r3 = wl::runWorkload(*w, moesi, mode, threads,
                                      cfg.scale, 0xbe9c5,
                                      500'000'000);
            t.cell(name)
                .cell(core::atomicsModeName(mode))
                .cell(r1.finished ? r1.cycles : 0)
                .cell(r2.finished ? r2.cycles : 0)
                .cell(r3.finished ? r3.cycles : 0)
                .cell(r2.mem.mesifForwards)
                .cell(r3.mem.writebacks)
                .endRow();
        }
    }
    bench::emit(cfg, t);
    return 0;
}
