/**
 * @file
 * Microbenchmarks (google-benchmark) for the hardware structures the
 * proposal adds or stresses: the Atomic Queue CAM searches (paper
 * §4.3 argues they are tiny), cache tag lookups, SQ forwarding
 * search, and whole-system simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "freeatomics/freeatomics.hh"

using namespace fa;

namespace {

void
BM_AqLineSearch(benchmark::State &state)
{
    core::AtomicQueue aq(static_cast<unsigned>(state.range(0)));
    for (int i = 0; i < state.range(0); ++i) {
        int idx = aq.allocate(i + 1);
        aq.lock(idx, static_cast<Addr>(i) << kLineShift);
    }
    Addr probe = 0x12340;
    for (auto _ : state) {
        benchmark::DoNotOptimize(aq.isLineLocked(probe));
        probe += kLineBytes;
    }
}
BENCHMARK(BM_AqLineSearch)->Arg(4)->Arg(8)->Arg(16);

void
BM_AqBroadcast(benchmark::State &state)
{
    core::AtomicQueue aq(4);
    int idx = aq.allocate(1);
    SeqNum s = 100;
    for (auto _ : state) {
        aq.setForwardedFrom(idx, s);
        benchmark::DoNotOptimize(
            aq.broadcastStorePerform(s, 0x1000));
        ++s;
    }
}
BENCHMARK(BM_AqBroadcast);

void
BM_CacheLookup(benchmark::State &state)
{
    mem::CacheArray l1(64, 12);
    for (unsigned k = 0; k < 64 * 12; ++k) {
        l1.insert(static_cast<Addr>(k) << kLineShift,
                  mem::CacheState::kShared, k, nullptr);
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(l1.stateOf(probe));
        probe = (probe + kLineBytes) & 0xffff;
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_SystemThroughput(benchmark::State &state)
{
    // Cycles simulated per second on a small atomic-heavy system.
    const auto *w = wl::findWorkload("atomic_counter");
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        auto r = wl::runWorkload(
            *w, sim::MachineConfig::icelake(
                static_cast<unsigned>(state.range(0))),
            core::AtomicsMode::kFreeFwd,
            static_cast<unsigned>(state.range(0)), 1.0, 42);
        cycles += r.cycles;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystemThroughput)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
