/**
 * @file
 * Ablation (paper §3.3.4): the forwarding-chain cap. Longer chains
 * improve lock locality but hold the cacheline lock longer; the
 * paper caps consecutive forwards at 32 to avoid livelock.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: forwarding chain cap (Free+Fwd)");

    const unsigned caps[] = {1, 2, 4, 8, 32, 64};
    std::vector<std::string> headers{"app"};
    for (unsigned c : caps)
        headers.push_back("cap" + std::to_string(c));
    headers.push_back("fba_pct_cap32");
    TablePrinter t(headers);

    for (const char *name :
         {"barnes", "radiosity", "fluidanimate", "TPCC", "AS", "RBT"}) {
        const auto *w = wl::findWorkload(name);
        t.cell(name);
        double fba32 = 0;
        for (unsigned c : caps) {
            auto m = sim::MachineConfig::icelake(cfg.cores);
            m.core.fwdChainCap = c;
            auto r = bench::runOnce(cfg, *w, m,
                                    core::AtomicsMode::kFreeFwd);
            t.cell(r.cycles);
            if (c == 32)
                fba32 = r.fwdByAtomicPct();
        }
        t.cell(fba32, 2);
        t.endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
