/**
 * @file
 * Ablation (§3.2.5): the watchdog timeout threshold. The paper picks
 * a large value (10000 cycles) so long-latency lock acquisitions are
 * not squashed spuriously, and reports only a handful of firings.
 * This sweep runs the deadlock-prone stress generators (with fully
 * out-of-order lock acquisition, so cycles actually form) across
 * thresholds: small values recover cheaply but fire often, large
 * values fire rarely but each recovery stalls longer.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Ablation: watchdog threshold "
                       "(out-of-order lock acquisition)");

    const unsigned thresholds[] = {250, 1000, 4000, 10000, 40000};
    std::vector<std::string> headers{"workload"};
    for (unsigned t : thresholds) {
        headers.push_back("cyc@" + std::to_string(t));
        headers.push_back("fires@" + std::to_string(t));
    }
    TablePrinter t(headers);

    unsigned threads = cfg.cores < 8 ? cfg.cores : 8;
    for (const char *name :
         {"dl_rmwrmw", "dl_storermw", "dl_loadrmw"}) {
        const auto *w = wl::findWorkload(name);
        t.cell(name);
        for (unsigned thr : thresholds) {
            auto m = sim::MachineConfig::icelake(threads);
            m.core.inOrderLockAcquisition = false;
            m.core.watchdogThreshold = thr;
            auto r = wl::runWorkload(*w, m,
                                     core::AtomicsMode::kFreeFwd,
                                     threads, 0.5, 0xbe9c5,
                                     500'000'000);
            t.cell(r.finished ? r.cycles : 0);
            t.cell(r.core.watchdogTimeouts);
        }
        t.endRow();
    }
    bench::emit(cfg, t);
    return 0;
}
