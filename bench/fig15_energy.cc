/**
 * @file
 * Figure 15: normalized processor energy (dynamic + static split)
 * of the Free-atomics flavours relative to the fenced baseline.
 *
 * Expected shape: static savings track the execution-time savings;
 * dynamic savings come from less wasted spinning — averages around
 * 11% (all) and 23% (atomic-intensive) in the paper.
 */

#include "bench_util.hh"

using namespace fa;

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Figure 15: normalized energy consumption");

    TablePrinter t({"app", "baseline", "+Spec", "Free", "Free+Fwd",
                    "fwd_dynamic", "fwd_static"});
    double sum_all[3] = {0, 0, 0};
    double sum_ai[3] = {0, 0, 0};
    unsigned n_all = 0;
    unsigned n_ai = 0;
    for (const auto &w : wl::allWorkloads()) {
        auto machine = sim::MachineConfig::icelake(cfg.cores);
        auto base = bench::runOnce(cfg, w, machine,
                                   core::AtomicsMode::kFenced);
        auto spec = bench::runOnce(cfg, w, machine,
                                   core::AtomicsMode::kSpec);
        auto free_r = bench::runOnce(cfg, w, machine,
                                     core::AtomicsMode::kFree);
        auto fwd = bench::runOnce(cfg, w, machine,
                                  core::AtomicsMode::kFreeFwd);
        double d = base.energy.total();
        double norm[3] = {spec.energy.total() / d,
                          free_r.energy.total() / d,
                          fwd.energy.total() / d};
        t.cell(w.name)
            .cell(1.0, 3)
            .cell(norm[0], 3)
            .cell(norm[1], 3)
            .cell(norm[2], 3)
            .cell(fwd.energy.dynamicPj / fwd.energy.total(), 2)
            .cell(fwd.energy.staticPj / fwd.energy.total(), 2)
            .endRow();
        for (int i = 0; i < 3; ++i)
            sum_all[i] += norm[i];
        ++n_all;
        if (w.atomicIntensive) {
            for (int i = 0; i < 3; ++i)
                sum_ai[i] += norm[i];
            ++n_ai;
        }
    }
    t.cell("Average(all)").cell(1.0, 3).cell(sum_all[0] / n_all, 3)
        .cell(sum_all[1] / n_all, 3).cell(sum_all[2] / n_all, 3)
        .cell("").cell("").endRow();
    t.cell("Average(AI)").cell(1.0, 3).cell(sum_ai[0] / n_ai, 3)
        .cell(sum_ai[1] / n_ai, 3).cell(sum_ai[2] / n_ai, 3)
        .cell("").cell("").endRow();
    bench::emit(cfg, t);

    std::cout << "\nFreeAtomics+Fwd energy reduction: "
              << fmtDouble(100.0 * (1.0 - sum_all[2] / n_all), 1)
              << "% (all apps), "
              << fmtDouble(100.0 * (1.0 - sum_ai[2] / n_ai), 1)
              << "% (atomic-intensive)\n"
              << "(paper: ~11% all, ~23% atomic-intensive)\n";
    return 0;
}
