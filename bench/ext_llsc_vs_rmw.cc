/**
 * @file
 * Extension bench backing the paper's §2 background: atomic RMW
 * instructions "always succeed", while LL/SC pairs fail under
 * interference and must spin. Compares a contended shared counter
 * implemented with fetch-add (under each atomic flavour) against the
 * same counter implemented with an LL/SC retry loop.
 */

#include "bench_util.hh"

using namespace fa;

namespace {

isa::Program
counterProgram(unsigned threads, std::int64_t iters, bool llsc)
{
    isa::ProgramBuilder b(llsc ? "llsc" : "rmw");
    auto bar = b.alloc();
    auto n = b.alloc();
    auto t0 = b.alloc();
    auto t1 = b.alloc();
    auto t2 = b.alloc();
    auto t3 = b.alloc();
    b.movi(bar, static_cast<std::int64_t>(wl::kBarrierBase));
    b.movi(n, threads);
    b.barrier(bar, n, t0, t1, t2, t3);

    auto a = b.alloc();
    auto one = b.alloc();
    auto i = b.alloc();
    auto old = b.alloc();
    auto tmp = b.alloc();
    auto f = b.alloc();
    b.movi(a, static_cast<std::int64_t>(wl::kDataBase));
    b.movi(one, 1);
    b.movi(i, iters);
    isa::Label loop = b.here();
    if (llsc)
        b.llscFetchAdd(old, a, one, tmp, f);
    else
        b.fetchAdd(old, a, one);
    b.addi(i, i, -1);
    b.branch(isa::BranchCond::kNe, i, isa::ProgramBuilder::zero(),
             loop);
    b.halt();
    return b.build();
}

} // namespace

int
main()
{
    bench::BenchConfig cfg;
    bench::banner(cfg, "Extension: LL/SC vs atomic RMW (contended "
                       "counter)");
    constexpr std::int64_t kIters = 64;

    TablePrinter t({"threads", "primitive", "mode", "cycles",
                    "sc_failure_pct"});
    for (unsigned threads : {2u, 8u, 16u, 32u}) {
        if (threads > cfg.cores)
            continue;
        for (bool llsc : {false, true}) {
            for (auto mode :
                 {core::AtomicsMode::kFenced,
                  core::AtomicsMode::kFreeFwd}) {
                if (llsc && mode != core::AtomicsMode::kFenced)
                    continue;  // LL/SC has no fences to remove
                std::vector<isa::Program> progs(
                    threads, counterProgram(threads, kIters, llsc));
                auto machine = sim::MachineConfig::icelake(threads);
                machine.core.mode = mode;
                sim::System sys(machine, progs, 0xbe9c5);
                auto out = sys.run(200'000'000);
                auto total = sys.coreTotals();
                double fail_pct = 0;
                if (llsc) {
                    auto attempts =
                        total.llscSuccesses + total.llscFailures;
                    fail_pct = attempts
                        ? 100.0 * static_cast<double>(
                              total.llscFailures) / attempts
                        : 0.0;
                }
                t.cell(std::to_string(threads))
                    .cell(llsc ? "ll/sc" : "fetch-add")
                    .cell(core::atomicsModeName(mode))
                    .cell(out.finished ? out.cycles : 0)
                    .cell(fail_pct, 1)
                    .endRow();
            }
        }
    }
    bench::emit(cfg, t);
    return 0;
}
