/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures.
 *
 * Environment knobs (all optional):
 *   FA_CORES  - cores to simulate          (default 32, as the paper)
 *   FA_SCALE  - workload iteration scale   (default 0.5)
 *   FA_SEEDS  - seeded runs to average     (default 1)
 *   FA_CSV    - emit CSV instead of an aligned table
 *   FA_JSON   - append every run's full RunResult (telemetry schema,
 *               including latency histograms) to this file as JSON
 *               Lines: {"bench":...,"workload":...,"label":...,
 *               "run":{...}}
 */

#ifndef FA_BENCH_BENCH_UTIL_HH
#define FA_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "freeatomics/freeatomics.hh"

namespace fa::bench {

// Strict env parsing (common/cli): FA_CORES=banana is a FatalError
// naming the variable, not a silent 0.
using cli::envDouble;
using cli::envString;
using cli::envUnsigned;

struct BenchConfig
{
    unsigned cores = envUnsigned("FA_CORES", 32);
    double scale = envDouble("FA_SCALE", 0.5);
    unsigned seeds = envUnsigned("FA_SEEDS", 1);
    bool csv = envUnsigned("FA_CSV", 0) != 0;
    std::string jsonPath = envString("FA_JSON");
};

/**
 * Append one labelled run to cfg.jsonPath as a JSON line (no-op when
 * FA_JSON is unset). Gives every figure harness a machine-readable
 * output path without touching its table code.
 */
inline void
emitRunJson(const BenchConfig &cfg, const std::string &bench,
            const std::string &workload, const std::string &label,
            const sim::RunResult &r)
{
    if (cfg.jsonPath.empty())
        return;
    std::ofstream os(cfg.jsonPath, std::ios::app);
    if (!os) {
        warn("cannot open FA_JSON file '%s'", cfg.jsonPath.c_str());
        return;
    }
    os << "{\"bench\":\"" << JsonWriter::escape(bench)
       << "\",\"workload\":\"" << JsonWriter::escape(workload)
       << "\",\"label\":\"" << JsonWriter::escape(label)
       << "\",\"run\":";
    r.toJson(os);
    os << "}\n";
}

/** Mean of a per-run metric over `cfg.seeds` seeded runs. */
template <typename MetricFn>
double
meanOverSeeds(const BenchConfig &cfg, const wl::Workload &w,
              sim::MachineConfig machine, core::AtomicsMode mode,
              MetricFn &&metric)
{
    double sum = 0;
    for (unsigned s = 0; s < cfg.seeds; ++s) {
        auto r = wl::runWorkload(w, machine, mode, cfg.cores, cfg.scale,
                                 0xbe9c5 + s, 200'000'000);
        if (!r.finished) {
            std::cerr << "warn: " << w.name << " ("
                      << core::atomicsModeName(mode)
                      << "): " << r.failure << "\n";
        }
        sum += metric(r);
    }
    return sum / cfg.seeds;
}

/** One full run (first seed) for multi-metric rows. */
inline sim::RunResult
runOnce(const BenchConfig &cfg, const wl::Workload &w,
        sim::MachineConfig machine, core::AtomicsMode mode,
        unsigned seed_index = 0)
{
    auto r = wl::runWorkload(w, machine, mode, cfg.cores, cfg.scale,
                             0xbe9c5 + seed_index, 200'000'000);
    if (!r.finished) {
        std::cerr << "warn: " << w.name << " ("
                  << core::atomicsModeName(mode) << "): " << r.failure
                  << "\n";
    }
    return r;
}

inline void
emit(const BenchConfig &cfg, const TablePrinter &t)
{
    if (cfg.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

inline void
banner(const BenchConfig &cfg, const std::string &what)
{
    std::cout << "== " << what << " ==\n"
              << "(cores=" << cfg.cores << " scale=" << cfg.scale
              << " seeds=" << cfg.seeds << ")\n";
}

} // namespace fa::bench

#endif // FA_BENCH_BENCH_UTIL_HH
