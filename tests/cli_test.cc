/**
 * @file
 * Unit tests for the shared CLI parser (common/cli): both long-option
 * forms, strict numeric parsing, switches, aliases, positionals, the
 * validated env-var fallbacks, and list splitting.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"

namespace fa {
namespace {

/** argv builder: Argv a({"-c", "8"}); parser.tryParse(a.argc(),
 * a.argv(), &err). argv[0] is always "prog". */
struct Argv
{
    std::vector<std::string> strs;
    std::vector<char *> ptrs;

    Argv(std::initializer_list<std::string> args) : strs{"prog"}
    {
        strs.insert(strs.end(), args);
        for (std::string &s : strs)
            ptrs.push_back(s.data());
    }
    int argc() { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }
};

TEST(Cli, LongOptionBothForms)
{
    unsigned cores = 0;
    double scale = 0.0;
    cli::Parser p("t", "");
    p.opt(&cores, "-c", "--cores", "N", "");
    p.opt(&scale, "", "--scale", "F", "");

    Argv a({"--cores", "8", "--scale=0.25"});
    std::string err;
    EXPECT_EQ(p.tryParse(a.argc(), a.argv(), &err), cli::ParseStatus::kOk)
        << err;
    EXPECT_EQ(cores, 8u);
    EXPECT_DOUBLE_EQ(scale, 0.25);
    EXPECT_TRUE(p.seen("--cores"));
    EXPECT_TRUE(p.seen("scale"));
}

TEST(Cli, ShortOptionTakesNextArgOnly)
{
    unsigned cores = 0;
    cli::Parser p("t", "");
    p.opt(&cores, "-c", "--cores", "N", "");

    Argv ok({"-c", "4"});
    std::string err;
    EXPECT_EQ(p.tryParse(ok.argc(), ok.argv(), &err),
              cli::ParseStatus::kOk);
    EXPECT_EQ(cores, 4u);

    // Short options never split on '=': "-c=4" is an unknown option.
    Argv bad({"-c=4"});
    EXPECT_EQ(p.tryParse(bad.argc(), bad.argv(), &err),
              cli::ParseStatus::kError);
    EXPECT_NE(err.find("unknown option"), std::string::npos);
}

TEST(Cli, SwitchRejectsInlineValue)
{
    bool stats = false;
    cli::Parser p("t", "");
    p.flag(&stats, "", "--stats", "");

    Argv a({"--stats=yes"});
    std::string err;
    EXPECT_EQ(p.tryParse(a.argc(), a.argv(), &err),
              cli::ParseStatus::kError);
    EXPECT_NE(err.find("takes no value"), std::string::npos);
    EXPECT_FALSE(stats);

    Argv b({"--stats"});
    EXPECT_EQ(p.tryParse(b.argc(), b.argv(), &err),
              cli::ParseStatus::kOk);
    EXPECT_TRUE(stats);
}

TEST(Cli, UnknownOptionAndMissingValue)
{
    unsigned cores = 0;
    cli::Parser p("t", "");
    p.opt(&cores, "-c", "--cores", "N", "");

    std::string err;
    Argv unknown({"--frobnicate"});
    EXPECT_EQ(p.tryParse(unknown.argc(), unknown.argv(), &err),
              cli::ParseStatus::kError);
    EXPECT_NE(err.find("unknown option '--frobnicate'"),
              std::string::npos);

    Argv missing({"--cores"});
    EXPECT_EQ(p.tryParse(missing.argc(), missing.argv(), &err),
              cli::ParseStatus::kError);
    EXPECT_NE(err.find("missing value"), std::string::npos);
}

TEST(Cli, StrictNumericParsing)
{
    unsigned u = 0;
    std::int64_t i = 0;
    double d = 0.0;
    cli::Parser p("t", "");
    p.opt(&u, "", "--cores", "N", "");
    p.opt(&i, "", "--bound", "N", "");
    p.opt(&d, "", "--scale", "F", "");

    std::string err;
    Argv trailing({"--cores", "8x"});
    EXPECT_EQ(p.tryParse(trailing.argc(), trailing.argv(), &err),
              cli::ParseStatus::kError);

    Argv empty({"--cores="});
    EXPECT_EQ(p.tryParse(empty.argc(), empty.argv(), &err),
              cli::ParseStatus::kError);

    Argv negu({"--cores", "-3"});
    EXPECT_EQ(p.tryParse(negu.argc(), negu.argv(), &err),
              cli::ParseStatus::kError);

    Argv badf({"--scale", "0.5yolo"});
    EXPECT_EQ(p.tryParse(badf.argc(), badf.argv(), &err),
              cli::ParseStatus::kError);

    // Signed options do take negative values.
    Argv negi({"--bound", "-1"});
    EXPECT_EQ(p.tryParse(negi.argc(), negi.argv(), &err),
              cli::ParseStatus::kOk);
    EXPECT_EQ(i, -1);
}

TEST(Cli, AliasKeepsOldSpellingAlive)
{
    std::string wl;
    cli::Parser p("t", "");
    p.opt(&wl, "-w", "--workloads", "LIST", "").alias("--workload");

    Argv a({"--workload", "dekker"});
    std::string err;
    EXPECT_EQ(p.tryParse(a.argc(), a.argv(), &err),
              cli::ParseStatus::kOk);
    EXPECT_EQ(wl, "dekker");
    EXPECT_TRUE(p.seen("--workloads"));
}

TEST(Cli, RepeatableOptionAppends)
{
    std::vector<std::string> progs;
    cli::Parser p("t", "");
    p.opt(&progs, "-p", "--program", "FILE", "");

    Argv a({"-p", "a.fasm", "--program", "b.fasm", "--program=c.fasm"});
    std::string err;
    EXPECT_EQ(p.tryParse(a.argc(), a.argv(), &err),
              cli::ParseStatus::kOk);
    ASSERT_EQ(progs.size(), 3u);
    EXPECT_EQ(progs[0], "a.fasm");
    EXPECT_EQ(progs[2], "c.fasm");
}

TEST(Cli, PositionalsNeedASink)
{
    cli::Parser bare("t", "");
    Argv a({"stray"});
    std::string err;
    EXPECT_EQ(bare.tryParse(a.argc(), a.argv(), &err),
              cli::ParseStatus::kError);
    EXPECT_NE(err.find("unexpected argument"), std::string::npos);

    std::vector<std::string> files;
    cli::Parser sink("t", "");
    sink.positional(&files, "FILE", "");
    Argv b({"one", "two"});
    EXPECT_EQ(sink.tryParse(b.argc(), b.argv(), &err),
              cli::ParseStatus::kOk);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[1], "two");
}

TEST(Cli, HelpShortCircuits)
{
    unsigned cores = 0;
    cli::Parser p("t", "");
    p.opt(&cores, "-c", "--cores", "N", "");
    Argv a({"-c", "2", "--help"});
    std::string err;
    EXPECT_EQ(p.tryParse(a.argc(), a.argv(), &err),
              cli::ParseStatus::kHelp);
}

TEST(Cli, UsageFirstLineNamesTheTool)
{
    cli::Parser p("fasim", "summary");
    std::ostringstream os;
    p.printUsage(os);
    EXPECT_EQ(os.str().rfind("usage: fasim", 0), 0u);
}

TEST(Cli, EnvFallbacksValidate)
{
    ::unsetenv("FA_CLI_TEST");
    EXPECT_EQ(cli::envUnsigned("FA_CLI_TEST", 7), 7u);
    EXPECT_DOUBLE_EQ(cli::envDouble("FA_CLI_TEST", 0.5), 0.5);
    EXPECT_EQ(cli::envString("FA_CLI_TEST"), "");

    ::setenv("FA_CLI_TEST", "12", 1);
    EXPECT_EQ(cli::envUnsigned("FA_CLI_TEST", 7), 12u);
    EXPECT_DOUBLE_EQ(cli::envDouble("FA_CLI_TEST", 0.5), 12.0);

    // The historical bench helpers silently strtoul'd garbage to 0;
    // the shared versions refuse, naming the variable.
    ::setenv("FA_CLI_TEST", "banana", 1);
    EXPECT_THROW(cli::envUnsigned("FA_CLI_TEST", 7), FatalError);
    EXPECT_THROW(cli::envDouble("FA_CLI_TEST", 0.5), FatalError);
    ::unsetenv("FA_CLI_TEST");
}

TEST(Cli, SplitList)
{
    EXPECT_TRUE(cli::splitList("").empty());
    auto one = cli::splitList("dekker");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], "dekker");
    auto many = cli::splitList("a,b,,c,");
    ASSERT_EQ(many.size(), 3u);
    EXPECT_EQ(many[0], "a");
    EXPECT_EQ(many[2], "c");
}

} // namespace
} // namespace fa
