/**
 * @file
 * Tier-1 tests for the campaign resilience layer (sim/resilience):
 * exact RunResult JSON round-trips, the fsync'd fa-journal-v1
 * writer/tolerant reader, the deterministic host-fault injector,
 * bounded retry + quarantine with replay recipes, journaled resume
 * with bit-identical aggregates, and graceful stop-signal draining.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "sim/presets.hh"
#include "sim/resilience/journal.hh"
#include "sim/resilience/resilience.hh"
#include "sim/sweep/sweep.hh"
#include "workloads/workload.hh"

namespace fa {
namespace {

namespace fs = std::filesystem;
using sim::resilience::FaultKind;
using sim::resilience::FaultPlan;
using sim::resilience::Journal;
using sim::resilience::JournalContents;
using sim::resilience::ResilienceOptions;
using sim::resilience::ResilientReport;
using sim::sweep::SweepJob;
using sim::sweep::SweepOptions;
using sim::sweep::SweepReport;

std::string
tmpPath(const std::string &leaf)
{
    return (fs::path(::testing::TempDir()) / leaf).string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The same tiny cross-product job list sweep_test uses: 2 workloads
 * x 2 modes x 2 seeds on the tiny machine. */
std::vector<SweepJob>
smallJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *wl : {"dekker", "mp"}) {
        for (core::AtomicsMode mode : {core::AtomicsMode::kFenced,
                                       core::AtomicsMode::kFreeFwd}) {
            for (unsigned s = 0; s < 2; ++s) {
                SweepJob j;
                j.bench = "resilience_test";
                j.workload = wl;
                j.label = core::atomicsModeIdent(mode);
                j.machine = sim::presets::tiny(2);
                j.mode = mode;
                j.cores = 2;
                j.scale = 1.0;
                j.seedIndex = s;
                j.seed = sim::sweep::deriveSeed(s);
                jobs.push_back(j);
            }
        }
    }
    return jobs;
}

std::string
jsonl(const SweepReport &r)
{
    std::ostringstream os;
    sim::sweep::writeJsonl(r, os);
    return os.str();
}

TEST(Resilience, RunResultJsonRoundTripIsExact)
{
    // The resume contract rests on fromJson being an exact inverse
    // of toJson: serialize, parse, rebuild, re-serialize — byte
    // identical.
    const wl::Workload *w = wl::findWorkload("dekker");
    ASSERT_NE(w, nullptr);
    sim::RunResult run =
        wl::runWorkload(*w, sim::presets::tiny(2),
                        core::AtomicsMode::kFreeFwd, 2, 1.0,
                        sim::sweep::deriveSeed(0));
    std::ostringstream a;
    run.toJson(a);
    sim::RunResult back =
        sim::RunResult::fromJson(JsonValue::parse(a.str()));
    std::ostringstream b;
    back.toJson(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Resilience, JournalAppendLoadRoundTrip)
{
    const std::string path = tmpPath("fa-journal-roundtrip.jsonl");
    std::remove(path.c_str());
    {
        Journal j = Journal::openAppend(path, "fig1", 3);
        j.append("job-a", "{\"cycles\":1}", 0.5);
        j.append("job-b", "{\"cycles\":2}", 1.25);
    }
    JournalContents jc;
    std::string err;
    ASSERT_TRUE(Journal::load(path, &jc, &err)) << err;
    EXPECT_EQ(jc.campaign, "fig1");
    EXPECT_EQ(jc.jobs, 3u);
    EXPECT_EQ(jc.skippedLines, 0u);
    ASSERT_EQ(jc.records.size(), 2u);
    // The run document comes back verbatim, not re-serialized.
    EXPECT_EQ(jc.records.at("job-a").runJson, "{\"cycles\":1}");
    EXPECT_EQ(jc.records.at("job-b").runJson, "{\"cycles\":2}");
    EXPECT_DOUBLE_EQ(jc.records.at("job-b").wallSec, 1.25);

    // Re-opening an existing journal must not duplicate the header.
    {
        Journal j = Journal::openAppend(path, "fig1", 3);
        j.append("job-c", "{\"cycles\":3}", 2.0);
    }
    JournalContents jc2;
    ASSERT_TRUE(Journal::load(path, &jc2));
    EXPECT_EQ(jc2.records.size(), 3u);
    std::remove(path.c_str());
}

TEST(Resilience, JournalToleratesTornTailAndGarbage)
{
    const std::string path = tmpPath("fa-journal-torn.jsonl");
    std::remove(path.c_str());
    {
        Journal j = Journal::openAppend(path, "fig1", 4);
        j.append("job-a", "{\"cycles\":1}", 0.5);
    }
    {
        // Simulate SIGKILL mid-append: a torn final record plus a
        // record with no "run" member.
        std::ofstream out(path, std::ios::app);
        out << "{\"job\":\"job-c\",\"wallSec\":0.1}\n";
        out << "{\"job\":\"job-b\",\"wallSec\":0.2,\"run\":{\"cy";
    }
    JournalContents jc;
    std::string err;
    ASSERT_TRUE(Journal::load(path, &jc, &err)) << err;
    EXPECT_EQ(jc.records.size(), 1u);
    EXPECT_EQ(jc.skippedLines, 2u);
    EXPECT_TRUE(jc.records.count("job-a"));
    std::remove(path.c_str());
}

TEST(Resilience, JournalRejectsMissingOrForeignHeader)
{
    JournalContents jc;
    std::string err;
    EXPECT_FALSE(Journal::load(tmpPath("fa-no-such-journal"), &jc,
                               &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);

    const std::string path = tmpPath("fa-journal-foreign.jsonl");
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"schema\":\"something-else\"}\n";
    }
    err.clear();
    EXPECT_FALSE(Journal::load(path, &jc, &err));
    EXPECT_NE(err.find("fa-journal-v1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Resilience, FaultPlanParsesDirectivesAndAttemptBounds)
{
    FaultPlan plan = FaultPlan::parse("throw:3,corrupt:5x2");
    EXPECT_FALSE(plan.empty());
    // Unbounded directive: every attempt faults.
    EXPECT_EQ(plan.actionFor(3, 1), FaultKind::kThrow);
    EXPECT_EQ(plan.actionFor(3, 99), FaultKind::kThrow);
    // xN directive: only the first N attempts fault (the
    // transient-fault retry-recovery path).
    EXPECT_EQ(plan.actionFor(5, 1), FaultKind::kCorrupt);
    EXPECT_EQ(plan.actionFor(5, 2), FaultKind::kCorrupt);
    EXPECT_EQ(plan.actionFor(5, 3), FaultKind::kNone);
    // Unmentioned jobs run normally.
    EXPECT_EQ(plan.actionFor(0, 1), FaultKind::kNone);

    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_THROW(FaultPlan::parse("explode:1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("throw"), FatalError);
    EXPECT_THROW(FaultPlan::parse("throw:abc"), FatalError);
    EXPECT_THROW(FaultPlan::parse("rand:throw:1.5:1"), FatalError);
}

TEST(Resilience, FaultPlanRandIsDeterministicAndOrderFree)
{
    FaultPlan plan = FaultPlan::parse("rand:throw:0.5:42");
    // Same (seed, job) -> same verdict, independent of call order.
    for (std::size_t job = 0; job < 64; ++job)
        EXPECT_EQ(plan.actionFor(job, 1), plan.actionFor(job, 1));
    unsigned hits = 0;
    for (std::size_t job = 0; job < 64; ++job)
        if (plan.actionFor(job, 1) == FaultKind::kThrow)
            ++hits;
    // Rate 0.5 over 64 jobs: some but not all fault.
    EXPECT_GT(hits, 0u);
    EXPECT_LT(hits, 64u);

    EXPECT_EQ(FaultPlan::parse("rand:throw:0:7").actionFor(3, 1),
              FaultKind::kNone);
    EXPECT_EQ(FaultPlan::parse("rand:stall:1:7").actionFor(3, 1),
              FaultKind::kStall);
}

TEST(Resilience, InjectedThrowQuarantinesWithReplayRecipe)
{
    const auto jobs = smallJobs();
    const std::string qpath = tmpPath("fa-quarantine.jsonl");
    std::remove(qpath.c_str());

    ResilienceOptions opts;
    opts.inject = "throw:3";
    opts.retries = 1;
    opts.quarantinePath = qpath;
    ResilientReport rr =
        sim::resilience::runResilient(jobs, opts, SweepOptions{4});

    ASSERT_EQ(rr.report.outcomes.size(), jobs.size());
    EXPECT_EQ(rr.report.failed, 1u);
    ASSERT_EQ(rr.quarantined.size(), 1u);
    const auto &q = rr.quarantined[0];
    EXPECT_EQ(q.jobIndex, 3u);
    EXPECT_EQ(q.attempts, 2u);  // initial + 1 retry
    EXPECT_NE(q.error.find("injected fault: throw"),
              std::string::npos);
    EXPECT_NE(q.replay.find("fasim -w "), std::string::npos);
    EXPECT_NE(q.replay.find("--seed "), std::string::npos);
    EXPECT_EQ(q.jobKey, sim::resilience::jobKey(jobs[3]));
    // The retry re-dispatched exactly the one failing job.
    EXPECT_EQ(rr.retried, 1u);

    // The other N-1 jobs keep their completed results.
    for (std::size_t i = 0; i < rr.report.outcomes.size(); ++i) {
        const auto &o = rr.report.outcomes[i];
        if (i == 3) {
            EXPECT_FALSE(o.run.finished);
            EXPECT_NE(o.run.failure.find("host exception"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(o.run.finished) << "job " << i;
            EXPECT_TRUE(o.error.empty()) << "job " << i;
        }
    }

    // And the quarantine file carries a schema-tagged record.
    const std::string qtext = readFile(qpath);
    EXPECT_NE(qtext.find("\"schema\":\"fa-quarantine-v1\""),
              std::string::npos);
    EXPECT_NE(qtext.find("\"replay\":\"fasim"), std::string::npos);
    std::remove(qpath.c_str());
}

TEST(Resilience, BoundedRetryRecoversFromTransientFault)
{
    const auto jobs = smallJobs();
    // Fault only job 3's *first* attempt: the retry must recover it
    // with the same seed, leaving the campaign bit-identical to an
    // undisturbed run.
    ResilienceOptions opts;
    opts.inject = "throw:3x1";
    opts.retries = 1;
    ResilientReport rr =
        sim::resilience::runResilient(jobs, opts, SweepOptions{4});

    EXPECT_EQ(rr.report.failed, 0u);
    EXPECT_TRUE(rr.quarantined.empty());
    EXPECT_EQ(rr.retried, 1u);
    for (const auto &o : rr.report.outcomes)
        EXPECT_TRUE(o.run.finished);

    SweepReport clean = sim::sweep::runSweep(jobs, SweepOptions{1});
    EXPECT_EQ(jsonl(rr.report), jsonl(clean));
}

TEST(Resilience, CorruptResultIsDetectedNotAggregated)
{
    const auto jobs = smallJobs();
    ResilienceOptions opts;
    opts.inject = "corrupt:2";
    opts.retries = 0;
    ResilientReport rr =
        sim::resilience::runResilient(jobs, opts, SweepOptions{2});

    EXPECT_EQ(rr.report.failed, 1u);
    ASSERT_EQ(rr.quarantined.size(), 1u);
    EXPECT_EQ(rr.quarantined[0].jobIndex, 2u);
    EXPECT_NE(rr.quarantined[0].error.find("corrupt result"),
              std::string::npos);
    // The corrupt run never lands in the outcome slot.
    EXPECT_FALSE(rr.report.outcomes[2].run.finished);
    EXPECT_EQ(rr.report.outcomes[2].run.cycles, 0u);
}

TEST(Resilience, ValidateRunResultFlagsImpossibleRuns)
{
    sim::RunResult ok;
    ok.finished = true;
    ok.cycles = 100;
    EXPECT_EQ(sim::resilience::validateRunResult(ok), "");

    sim::RunResult bad;
    bad.finished = true;
    bad.cycles = 0;
    EXPECT_NE(sim::resilience::validateRunResult(bad), "");
}

TEST(Resilience, ResumeRestoresJournaledJobsBitIdentically)
{
    const auto jobs = smallJobs();
    const std::string jpath = tmpPath("fa-journal-resume.jsonl");
    std::remove(jpath.c_str());

    // Interrupted campaign: job 5 fails every attempt, the other 7
    // complete and land in the journal.
    ResilienceOptions first;
    first.journalPath = jpath;
    first.inject = "throw:5";
    first.retries = 0;
    ResilientReport partial =
        sim::resilience::runResilient(jobs, first, SweepOptions{4});
    EXPECT_EQ(partial.report.failed, 1u);
    EXPECT_EQ(partial.restored, 0u);

    JournalContents jc;
    ASSERT_TRUE(Journal::load(jpath, &jc));
    EXPECT_EQ(jc.records.size(), jobs.size() - 1);

    // Resume with the fault gone: 7 restored, 1 re-run, and every
    // aggregate byte-identical to an uninterrupted campaign.
    ResilienceOptions second;
    second.journalPath = jpath;
    second.resume = true;
    ResilientReport resumed =
        sim::resilience::runResilient(jobs, second, SweepOptions{4});
    EXPECT_EQ(resumed.restored, jobs.size() - 1);
    EXPECT_EQ(resumed.report.failed, 0u);
    EXPECT_TRUE(resumed.quarantined.empty());

    SweepReport clean = sim::sweep::runSweep(jobs, SweepOptions{1});
    EXPECT_EQ(jsonl(resumed.report), jsonl(clean));

    // The journal now covers the full campaign: a second resume
    // restores everything and re-runs nothing.
    ResilientReport full =
        sim::resilience::runResilient(jobs, second, SweepOptions{4});
    EXPECT_EQ(full.restored, jobs.size());
    EXPECT_EQ(jsonl(full.report), jsonl(clean));
    std::remove(jpath.c_str());
}

TEST(Resilience, ResumeRejectsMismatchedCampaign)
{
    const auto jobs = smallJobs();
    const std::string jpath = tmpPath("fa-journal-mismatch.jsonl");
    std::remove(jpath.c_str());
    {
        Journal j = Journal::openAppend(jpath, "other-campaign",
                                        jobs.size());
    }
    ResilienceOptions opts;
    opts.journalPath = jpath;
    opts.resume = true;
    EXPECT_THROW(
        sim::resilience::runResilient(jobs, opts, SweepOptions{1}),
        FatalError);
    std::remove(jpath.c_str());
}

TEST(Resilience, StopSignalDrainsInsteadOfKilling)
{
    const auto jobs = smallJobs();
    std::atomic<int> sig{2};  // SIGINT already pending
    ResilienceOptions opts;
    opts.stopSignal = &sig;
    ResilientReport rr =
        sim::resilience::runResilient(jobs, opts, SweepOptions{1});

    EXPECT_EQ(rr.signal, 2);
    EXPECT_EQ(rr.skipped, jobs.size());
    EXPECT_TRUE(rr.quarantined.empty());
    for (const auto &o : rr.report.outcomes) {
        EXPECT_FALSE(o.run.finished);
        EXPECT_NE(o.error.find("skipped"), std::string::npos);
    }
}

TEST(Resilience, JobKeyCoversEverySpecField)
{
    auto jobs = smallJobs();
    const std::string base = sim::resilience::jobKey(jobs[0]);
    EXPECT_NE(base.find("resilience_test|dekker|"),
              std::string::npos);
    EXPECT_NE(base.find("|tiny|"), std::string::npos);

    // Any result-affecting field change must change the key.
    SweepJob j = jobs[0];
    j.seed += 1;
    EXPECT_NE(sim::resilience::jobKey(j), base);
    j = jobs[0];
    j.scale = 2.0;
    EXPECT_NE(sim::resilience::jobKey(j), base);
    j = jobs[0];
    j.mode = core::AtomicsMode::kFree;
    EXPECT_NE(sim::resilience::jobKey(j), base);
}

} // namespace
} // namespace fa
