/**
 * @file
 * Unit tests for the branch direction predictor and the memory
 * dependence predictor.
 */

#include <gtest/gtest.h>

#include "core/branch_pred.hh"
#include "core/memdep_pred.hh"

namespace fa::core {
namespace {

TEST(BranchPred, LearnsTaken)
{
    BranchPredictor bp(8);
    for (int i = 0; i < 4; ++i)
        bp.update(10, true);
    EXPECT_TRUE(bp.predict(10));
}

TEST(BranchPred, LearnsNotTaken)
{
    BranchPredictor bp(8);
    for (int i = 0; i < 4; ++i)
        bp.update(10, false);
    EXPECT_FALSE(bp.predict(10));
}

TEST(BranchPred, HysteresisSurvivesOneFlip)
{
    BranchPredictor bp(8);
    for (int i = 0; i < 4; ++i)
        bp.update(10, true);
    bp.update(10, false);  // a single not-taken (loop exit)
    EXPECT_TRUE(bp.predict(10));
    bp.update(10, false);
    bp.update(10, false);
    EXPECT_FALSE(bp.predict(10));
}

TEST(BranchPred, InitialBiasIsTaken)
{
    BranchPredictor bp(8);
    EXPECT_TRUE(bp.predict(123));
}

TEST(BranchPred, CountersSaturate)
{
    BranchPredictor bp(8);
    for (int i = 0; i < 100; ++i)
        bp.update(10, true);
    bp.update(10, false);
    bp.update(10, false);
    EXPECT_FALSE(bp.predict(10));  // saturated at 3, two downs to 1
}

TEST(MemDep, UntrainedDoesNotWait)
{
    MemDepPredictor mdp;
    EXPECT_FALSE(mdp.mustWait(42));
}

TEST(MemDep, ViolationTrains)
{
    MemDepPredictor mdp;
    mdp.trainViolation(42);
    EXPECT_TRUE(mdp.mustWait(42));
    EXPECT_FALSE(mdp.mustWait(43));
}

TEST(MemDep, DecaysAfterCleanCommits)
{
    MemDepPredictor mdp;
    mdp.trainViolation(42);
    for (int i = 0; i < 255; ++i)
        mdp.commitDecay(42);
    EXPECT_TRUE(mdp.mustWait(42));
    mdp.commitDecay(42);
    EXPECT_FALSE(mdp.mustWait(42));
}

TEST(MemDep, RetrainResetsStrength)
{
    MemDepPredictor mdp;
    mdp.trainViolation(42);
    for (int i = 0; i < 200; ++i)
        mdp.commitDecay(42);
    mdp.trainViolation(42);
    for (int i = 0; i < 200; ++i)
        mdp.commitDecay(42);
    EXPECT_TRUE(mdp.mustWait(42));
}

TEST(MemDep, DecayOfUntrainedIsNoop)
{
    MemDepPredictor mdp;
    mdp.commitDecay(42);
    EXPECT_FALSE(mdp.mustWait(42));
}

} // namespace
} // namespace fa::core
