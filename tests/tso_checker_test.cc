/**
 * @file
 * Axiomatic TSO checker tests: hand-crafted traces that violate each
 * axiom (coherence/rf well-formedness, RMW atomicity, the ppo ∪ rfe ∪
 * co ∪ fr acyclicity), hand-crafted TSO-legal relaxations that must
 * be accepted (store buffering), and real recorded executions —
 * including one with an injected reordering that the checker has to
 * reject.
 */

#include <gtest/gtest.h>

#include "freeatomics/freeatomics.hh"

namespace fa {
namespace {

using analysis::EvKind;
using analysis::MemEvent;
using core::AtomicsMode;
using isa::ProgramBuilder;

// --- hand-crafted event helpers -------------------------------------------

MemEvent
write(CoreId t, SeqNum s, Addr a, std::int64_t v, std::uint64_t stamp)
{
    MemEvent e;
    e.thread = t;
    e.seq = s;
    e.kind = EvKind::kWrite;
    e.addr = a;
    e.valueWritten = v;
    e.writeStamp = stamp;
    return e;
}

MemEvent
readInit(CoreId t, SeqNum s, Addr a)
{
    MemEvent e;
    e.thread = t;
    e.seq = s;
    e.kind = EvKind::kRead;
    e.addr = a;
    e.rfInit = true;
    return e;
}

MemEvent
readFrom(CoreId t, SeqNum s, Addr a, std::int64_t v, CoreId wt, SeqNum ws)
{
    MemEvent e;
    e.thread = t;
    e.seq = s;
    e.kind = EvKind::kRead;
    e.addr = a;
    e.valueRead = v;
    e.rfInit = false;
    e.rfThread = wt;
    e.rfSeq = ws;
    return e;
}

MemEvent
fence(CoreId t, SeqNum s)
{
    MemEvent e;
    e.thread = t;
    e.seq = s;
    e.kind = EvKind::kFence;
    return e;
}

MemEvent
rmw(CoreId t, SeqNum s, Addr a, std::int64_t old_v, std::int64_t new_v,
    std::uint64_t stamp, bool rf_init, CoreId wt = 0, SeqNum ws = kNoSeq)
{
    MemEvent e;
    e.thread = t;
    e.seq = s;
    e.kind = EvKind::kRmw;
    e.addr = a;
    e.valueRead = old_v;
    e.valueWritten = new_v;
    e.writeStamp = stamp;
    e.rfInit = rf_init;
    e.rfThread = wt;
    e.rfSeq = ws;
    return e;
}

constexpr Addr kX = 0x200000;
constexpr Addr kY = 0x200040;

// --- axioms on hand-crafted traces ----------------------------------------

TEST(TsoChecker, EmptyAndTrivialTracesPass)
{
    EXPECT_TRUE(analysis::checkTso(std::vector<MemEvent>{}).ok);
    std::vector<MemEvent> one{write(0, 1, kX, 7, 1),
                              readFrom(0, 2, kX, 7, 0, 1)};
    auto res = analysis::checkTso(one);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.eventsChecked, 2u);
}

TEST(TsoChecker, StoreBufferingRelaxationIsAccepted)
{
    // SB both-zero: each load overtakes the local store. Legal under
    // TSO (the W->R edge is not in ppo).
    std::vector<MemEvent> evs{
        write(0, 1, kX, 1, 1), readInit(0, 2, kY),
        write(1, 1, kY, 1, 2), readInit(1, 2, kX),
    };
    auto res = analysis::checkTso(evs);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(TsoChecker, FencedStoreBufferingBothZeroIsRejected)
{
    // Same outcome with MFENCEs between store and load: now W->R is
    // ordered and the both-zero outcome is a cycle.
    std::vector<MemEvent> evs{
        write(0, 1, kX, 1, 1), fence(0, 2), readInit(0, 3, kY),
        write(1, 1, kY, 1, 2), fence(1, 2), readInit(1, 3, kX),
    };
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("cycle"), std::string::npos) << res.error;
}

TEST(TsoChecker, MessagePassingReorderingIsRejected)
{
    // t0: x=1; y=1.  t1 sees y==1 but then reads x==0: fr(Rx -> Wx)
    // closes a cycle through po and rfe. Forbidden under TSO (and SC).
    std::vector<MemEvent> evs{
        write(0, 1, kX, 1, 1), write(0, 2, kY, 1, 2),
        readFrom(1, 1, kY, 1, 0, 2), readInit(1, 2, kX),
    };
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("cycle"), std::string::npos) << res.error;
}

TEST(TsoChecker, RfValueMismatchIsRejected)
{
    std::vector<MemEvent> evs{write(0, 1, kX, 7, 1),
                              readFrom(1, 1, kX, 8, 0, 1)};
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("wrote"), std::string::npos) << res.error;
}

TEST(TsoChecker, RfFromMissingWriterIsRejected)
{
    std::vector<MemEvent> evs{readFrom(0, 1, kX, 1, 3, 9)};
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("not in the trace"), std::string::npos)
        << res.error;
}

TEST(TsoChecker, RmwAtomicityViolationIsRejected)
{
    // Two fetch-adds both read the initial 0: the winner's write must
    // slot between the loser's read and write halves — a lost update.
    std::vector<MemEvent> evs{
        rmw(0, 1, kX, 0, 1, 1, true),
        rmw(1, 1, kX, 0, 1, 2, true),
    };
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("atomicity"), std::string::npos)
        << res.error;
}

TEST(TsoChecker, RmwChainIsAccepted)
{
    std::vector<MemEvent> evs{
        rmw(0, 1, kX, 0, 1, 1, true),
        rmw(1, 1, kX, 1, 2, 2, false, 0, 1),
        rmw(0, 2, kX, 2, 3, 3, false, 1, 1),
    };
    auto res = analysis::checkTso(evs);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(TsoChecker, WriteIntoRmwGapIsRejected)
{
    // A plain store lands between an RMW's read and write halves.
    std::vector<MemEvent> evs{
        rmw(0, 1, kX, 0, 1, 2, true),  // reads init, performs second
        write(1, 1, kX, 5, 1),         // performs first
    };
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("atomicity"), std::string::npos)
        << res.error;
}

// --- real recorded executions ---------------------------------------------

TEST(TsoChecker, RecordedLitmusRunsPass)
{
    for (const char *name : {"dekker", "mp", "sb_fenced",
                             "atomic_counter"}) {
        for (AtomicsMode mode :
             {AtomicsMode::kFenced, AtomicsMode::kFreeFwd}) {
            const auto *w = wl::findWorkload(name);
            ASSERT_NE(w, nullptr) << name;
            auto machine = sim::MachineConfig::tiny(2);
            machine.recordMemTrace = true;
            auto r = wl::runWorkload(*w, machine, mode, 2, 1.0, 17,
                                     20'000'000);
            ASSERT_TRUE(r.finished) << name << ": " << r.failure;
            EXPECT_TRUE(r.tsoChecked);
            EXPECT_TRUE(r.tsoOk()) << name << ": " << r.tsoError;
            EXPECT_GT(r.tsoEventsChecked, 0u);
        }
    }
}

/** Fenced SB kernel recorded with the tracer; one round per block. */
sim::System
makeTracedSbSystem(std::vector<isa::Program> &progs_out)
{
    constexpr int kRounds = 8;
    std::vector<isa::Program> progs;
    for (unsigned tid = 0; tid < 2; ++tid) {
        ProgramBuilder b("sb_traced");
        auto r_bar = b.alloc();
        auto r_n = b.alloc();
        auto t0 = b.alloc();
        auto t1 = b.alloc();
        auto t2 = b.alloc();
        auto t3 = b.alloc();
        auto r_a = b.alloc();
        auto r_one = b.alloc();
        auto r_v = b.alloc();
        b.movi(r_bar, static_cast<std::int64_t>(wl::kBarrierBase));
        b.movi(r_n, 2);
        b.movi(r_one, 1);
        b.barrier(r_bar, r_n, t0, t1, t2, t3);
        for (int round = 0; round < kRounds; ++round) {
            Addr block = wl::kDataBase + round * 128;
            Addr mine = block + (tid == 0 ? 0 : 64);
            Addr other = block + (tid == 0 ? 64 : 0);
            b.movi(r_a, static_cast<std::int64_t>(mine));
            b.store(r_a, r_one);
            b.mfence();
            b.movi(r_a, static_cast<std::int64_t>(other));
            b.load(r_v, r_a);
        }
        b.halt();
        progs.push_back(b.build());
    }
    progs_out = progs;
    auto m = sim::MachineConfig::tiny(2);
    m.recordMemTrace = true;
    return sim::System(m, progs, 23);
}

TEST(TsoChecker, InjectedReorderingInRealTraceIsRejected)
{
    std::vector<isa::Program> progs;
    sim::System sys = makeTracedSbSystem(progs);
    auto out = sys.run(20'000'000);
    ASSERT_TRUE(out.finished) << out.failure;
    ASSERT_NE(sys.trace(), nullptr);

    // The genuine execution is TSO.
    auto res = analysis::checkTso(*sys.trace());
    ASSERT_TRUE(res.ok) << res.error;

    // Inject a reordering: in round 0 pretend every data load that
    // observed the other thread's store instead overtook its own
    // fence and read the initial 0. That manufactures the both-zero
    // outcome the MFENCEs forbid, and the checker must find the
    // po/fr cycle.
    std::vector<MemEvent> mutated = sys.trace()->events();
    unsigned injected = 0;
    for (MemEvent &e : mutated) {
        bool round0_data =
            e.addr == wl::kDataBase || e.addr == wl::kDataBase + 64;
        if (e.kind == EvKind::kRead && round0_data &&
            e.valueRead == 1) {
            e.rfInit = true;
            e.rfThread = 0;
            e.rfSeq = kNoSeq;
            e.valueRead = 0;
            ++injected;
        }
    }
    ASSERT_GE(injected, 1u)
        << "fenced SB round with neither load observing a store";
    auto bad = analysis::checkTso(mutated);
    ASSERT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("cycle"), std::string::npos) << bad.error;
}

TEST(TsoChecker, RecorderCapturesForwardedAndExternalReads)
{
    // Same-thread store->load forwarding must appear as internal rf
    // (thread reads its own seq), and cross-thread observation as
    // external rf — spot-check the recorder's rf capture directly.
    std::vector<isa::Program> progs;
    sim::System sys = makeTracedSbSystem(progs);
    auto out = sys.run(20'000'000);
    ASSERT_TRUE(out.finished) << out.failure;
    const auto &evs = sys.trace()->events();
    unsigned reads = 0, writes = 0, fences = 0, rmws = 0;
    for (const auto &e : evs) {
        switch (e.kind) {
          case EvKind::kRead:  ++reads; break;
          case EvKind::kWrite: ++writes; break;
          case EvKind::kFence: ++fences; break;
          case EvKind::kRmw:   ++rmws; break;
        }
        if (e.isWrite()) {
            EXPECT_NE(e.writeStamp, analysis::kNoStamp);
        }
    }
    EXPECT_GE(reads, 16u);    // 8 data loads per thread
    EXPECT_GE(writes, 16u);   // 8 data stores per thread
    EXPECT_EQ(fences, 16u);   // 8 MFENCEs per thread
    EXPECT_GE(rmws, 2u);      // barrier fetch-adds
}

// --- fwd-forwarded atomics (§3.3) -----------------------------------------

TEST(TsoChecker, ForwardedRmwChainAcrossThreadsIsAccepted)
{
    // A store_unlock -> load_lock forwarding chain appears in the
    // trace as rf edges from one RMW's write to the next RMW's read,
    // alternating threads, each coherence-adjacent: the checker must
    // accept the whole chain.
    std::vector<MemEvent> evs{
        rmw(0, 1, kX, 0, 1, 1, /*rf_init=*/true),
        rmw(1, 1, kX, 1, 2, 2, false, 0, 1),
        rmw(0, 2, kX, 2, 3, 3, false, 1, 1),
        rmw(1, 2, kX, 3, 4, 4, false, 0, 2),
    };
    auto res = analysis::checkTso(evs);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(TsoChecker, ForwardedRmwSkippingAWriterIsRejected)
{
    // A forwarded rf that names the grandparent of the chain instead
    // of the co-latest write: t1's RMW intervenes between t0#1 (the
    // claimed rf source) and t0#2's own write — exactly the stale
    // value a buggy forwarding path would hand over. RMW atomicity
    // must reject it.
    std::vector<MemEvent> evs{
        rmw(0, 1, kX, 0, 1, 1, /*rf_init=*/true),
        rmw(1, 1, kX, 1, 2, 2, false, 0, 1),
        rmw(0, 2, kX, 1, 3, 3, false, 0, 1),  // stale: skips t1#1
    };
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("atomicity"), std::string::npos)
        << res.error;
}

TEST(TsoChecker, PlainStoreIntoForwardingChainGapIsRejected)
{
    // A plain store slipping between a forwarded store_unlock ->
    // load_lock pair breaks the lock-responsibility handoff: the
    // consumer RMW read t0#1's value but a write intervened before
    // its own write performed.
    std::vector<MemEvent> evs{
        rmw(0, 1, kX, 0, 1, 1, /*rf_init=*/true),
        write(1, 1, kX, 9, 2),
        rmw(0, 2, kX, 1, 2, 3, false, 0, 1),
    };
    auto res = analysis::checkTso(evs);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("atomicity"), std::string::npos)
        << res.error;
}

TEST(TsoChecker, FreeFwdCounterTraceHasRmwToRmwRfEdges)
{
    // Under freefwd the contended counter commits back-to-back RMWs
    // via the §3.3 forwarding path; in the trace that is an rf edge
    // whose writer is itself an RMW. The recorded execution must
    // both exhibit such edges and pass the checker.
    const auto *w = wl::findWorkload("atomic_counter");
    ASSERT_NE(w, nullptr);
    auto machine = sim::MachineConfig::tiny(2);
    machine.recordMemTrace = true;
    machine.core.mode = AtomicsMode::kFreeFwd;
    machine.cores = 2;
    auto progs = wl::buildPrograms(*w, 2, 1.0);
    sim::System sys(machine, progs, 17);
    if (w->init)
        sys.initMemory(w->init(2, 1.0));
    auto out = sys.run(20'000'000);
    ASSERT_TRUE(out.finished) << out.failure;
    ASSERT_NE(sys.trace(), nullptr);
    const auto &evs = sys.trace()->events();

    auto isRmwAt = [&](CoreId t, SeqNum s) {
        for (const MemEvent &e : evs)
            if (e.thread == t && e.seq == s)
                return e.kind == EvKind::kRmw;
        return false;
    };
    unsigned rmw_rf_rmw = 0;
    for (const MemEvent &e : evs)
        if (e.kind == EvKind::kRmw && !e.rfInit &&
            isRmwAt(e.rfThread, e.rfSeq))
            ++rmw_rf_rmw;
    EXPECT_GT(rmw_rf_rmw, 0u)
        << "no RMW observed another RMW's write in a freefwd "
           "counter run";

    auto res = analysis::checkTso(evs);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(TsoChecker, InjectedStaleForwardInRealTraceIsRejected)
{
    // Replay the injection trick on a real freefwd trace: pick an
    // RMW whose rf names another RMW, and retarget the edge to that
    // writer's own rf source (the grandparent in the chain). The
    // skipped writer now intervenes and the checker must reject.
    const auto *w = wl::findWorkload("atomic_counter");
    ASSERT_NE(w, nullptr);
    auto machine = sim::MachineConfig::tiny(2);
    machine.recordMemTrace = true;
    machine.core.mode = AtomicsMode::kFreeFwd;
    machine.cores = 2;
    auto progs = wl::buildPrograms(*w, 2, 1.0);
    sim::System sys(machine, progs, 17);
    if (w->init)
        sys.initMemory(w->init(2, 1.0));
    auto out = sys.run(20'000'000);
    ASSERT_TRUE(out.finished) << out.failure;

    std::vector<MemEvent> mutated = sys.trace()->events();
    auto findEvent = [&](CoreId t, SeqNum s) -> MemEvent * {
        for (MemEvent &e : mutated)
            if (e.thread == t && e.seq == s)
                return &e;
        return nullptr;
    };
    bool injected = false;
    for (MemEvent &e : mutated) {
        if (e.kind != EvKind::kRmw || e.rfInit)
            continue;
        MemEvent *parent = findEvent(e.rfThread, e.rfSeq);
        if (!parent || parent->kind != EvKind::kRmw ||
            parent->rfInit)
            continue;
        MemEvent *grand = findEvent(parent->rfThread, parent->rfSeq);
        if (!grand || !grand->isWrite())
            continue;
        e.rfThread = parent->rfThread;
        e.rfSeq = parent->rfSeq;
        e.valueRead = grand->valueWritten;
        injected = true;
        break;
    }
    ASSERT_TRUE(injected)
        << "no RMW->RMW->RMW chain in the freefwd counter trace";
    auto res = analysis::checkTso(mutated);
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.error.find("atomicity"), std::string::npos)
        << res.error;
}

} // namespace
} // namespace fa
