/**
 * @file
 * Model-checker (analysis/mc) tests:
 *  - the operational TSO semantics reproduces the textbook litmus
 *    verdicts (SB relaxation observable without fences, forbidden
 *    with an RMW fence; dekker's mutual exclusion),
 *  - outcome sets are identical across all four atomic modes
 *    (§3.2.3: the modes are architecturally equivalent),
 *  - the graph (BFS) and dpor (sleep-set DFS) engines agree, with
 *    and without the persistent-set reduction,
 *  - every complete dpor execution passes the axiomatic checker
 *    (operational/axiomatic agreement),
 *  - the reorder bound: bound 0 explores exactly the
 *    sequentially-consistent interleavings,
 *  - each injectable semantic fault produces its designated
 *    violation class with a non-empty replayable witness,
 *  - differential certification: simulator outcomes are members of
 *    the exhaustive set in every mode, and certifying against the
 *    wrong exhaustive set is detected as unsound.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "freeatomics/freeatomics.hh"

namespace fa {
namespace {

using core::AtomicsMode;
using isa::ProgramBuilder;

constexpr Addr kX = 0x1000;
constexpr Addr kY = 0x2000;   // distinct line from kX
constexpr Addr kS = 0x3000;   // scratch RMW line
constexpr Addr kR0 = 0x4000;  // result words, one line per thread
constexpr Addr kR1 = 0x5000;

/** t: store mine=1, optional fetchAdd fence, load other into a
 * per-thread result word — the SB litmus shape. */
isa::Program
sbThread(unsigned t, bool rmw_fence)
{
    ProgramBuilder b("sb_t" + std::to_string(t));
    b.movi(1, static_cast<std::int64_t>(t == 0 ? kX : kY))
        .movi(2, static_cast<std::int64_t>(t == 0 ? kY : kX))
        .movi(3, 1)
        .store(1, 3);
    if (rmw_fence) {
        b.movi(4, static_cast<std::int64_t>(kS)).fetchAdd(5, 4, 3);
    }
    b.load(6, 2)
        .movi(7, static_cast<std::int64_t>(t == 0 ? kR0 : kR1))
        .store(7, 6)
        .halt();
    return b.build();
}

std::vector<isa::Program>
sbPrograms(bool rmw_fence)
{
    return {sbThread(0, rmw_fence), sbThread(1, rmw_fence)};
}

std::int64_t
memAt(const mc::Outcome &o, Addr a)
{
    for (const auto &kv : o.mem)
        if (kv.first == a)
            return kv.second;
    return 0;
}

mc::ExploreResult
exploreMode(const std::vector<isa::Program> &progs, AtomicsMode mode,
            const mc::ExploreOpts &eopts = {},
            const mc::MemInit &init = {},
            mc::Fault fault = mc::Fault::kNone)
{
    mc::ModelOpts mo;
    mo.mode = mode;
    mo.fault = fault;
    mc::Model model(progs, mo);
    return mc::explore(model, init, eopts);
}

std::set<std::string>
idSet(const mc::ExploreResult &r)
{
    std::set<std::string> ids;
    for (const mc::Outcome &o : r.outcomes)
        ids.insert(o.id);
    return ids;
}

const AtomicsMode kAllModes[] = {
    AtomicsMode::kFenced, AtomicsMode::kSpec, AtomicsMode::kFree,
    AtomicsMode::kFreeFwd};

// --------------------------------------------------------------------------
// Litmus verdicts
// --------------------------------------------------------------------------

TEST(McLitmus, StoreBufferingRelaxationObservable)
{
    // No fence: TSO allows both loads to read 0 — all four result
    // combinations are reachable.
    for (AtomicsMode mode : kAllModes) {
        mc::ExploreResult r = exploreMode(sbPrograms(false), mode);
        ASSERT_TRUE(r.complete);
        EXPECT_TRUE(r.violations.empty());
        std::set<std::pair<std::int64_t, std::int64_t>> results;
        for (const mc::Outcome &o : r.outcomes)
            results.insert({memAt(o, kR0), memAt(o, kR1)});
        EXPECT_EQ(results.size(), 4u);
        EXPECT_TRUE(results.count({0, 0}))
            << "TSO must exhibit the SB relaxation";
    }
}

TEST(McLitmus, RmwFenceForbidsStoreBuffering)
{
    // fetchAdd between the store and the load acts as a full fence
    // in every mode: (0,0) becomes unreachable.
    for (AtomicsMode mode : kAllModes) {
        mc::ExploreResult r = exploreMode(sbPrograms(true), mode);
        ASSERT_TRUE(r.complete);
        EXPECT_TRUE(r.violations.empty());
        std::set<std::pair<std::int64_t, std::int64_t>> results;
        for (const mc::Outcome &o : r.outcomes)
            results.insert({memAt(o, kR0), memAt(o, kR1)});
        EXPECT_EQ(results.size(), 3u) << core::atomicsModeName(mode);
        EXPECT_FALSE(results.count({0, 0}))
            << core::atomicsModeName(mode);
    }
}

TEST(McLitmus, DekkerWorkloadForbidsMutualZero)
{
    const wl::Workload *w = wl::findWorkload("dekker");
    ASSERT_NE(w, nullptr);
    auto progs = wl::buildPrograms(*w, 2, 0.03);
    mc::MemInit init;
    if (w->init)
        for (auto &kv : w->init(2, 0.03))
            init.push_back(kv);
    for (AtomicsMode mode : kAllModes) {
        mc::ExploreResult r = exploreMode(progs, mode, {}, init);
        ASSERT_TRUE(r.complete);
        EXPECT_TRUE(r.violations.empty());
        EXPECT_FALSE(r.outcomes.empty());
        for (const mc::Outcome &o : r.outcomes) {
            // Round 0 winner flags: both-zero is the mutual-exclusion
            // failure dekker forbids.
            bool r0 = memAt(o, wl::kResultBase) != 0;
            bool r1 = memAt(o, wl::kResultBase + 8) != 0;
            EXPECT_TRUE(r0 || r1) << o.pretty();
        }
    }
}

// --------------------------------------------------------------------------
// Cross-mode / cross-engine / reduction agreement
// --------------------------------------------------------------------------

TEST(McAgreement, OutcomeSetsIdenticalAcrossModes)
{
    for (const char *name : {"dekker", "mp", "sb_fenced"}) {
        const wl::Workload *w = wl::findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        auto progs = wl::buildPrograms(*w, 2, 0.03);
        mc::MemInit init;
        if (w->init)
            for (auto &kv : w->init(2, 0.03))
                init.push_back(kv);
        std::set<std::string> first;
        for (AtomicsMode mode : kAllModes) {
            mc::ExploreResult r = exploreMode(progs, mode, {}, init);
            ASSERT_TRUE(r.complete) << name;
            if (mode == AtomicsMode::kFenced)
                first = idSet(r);
            else
                EXPECT_EQ(idSet(r), first)
                    << name << " " << core::atomicsModeName(mode);
        }
    }
}

TEST(McAgreement, GraphAndDporEnginesAgree)
{
    for (AtomicsMode mode :
         {AtomicsMode::kFenced, AtomicsMode::kFreeFwd}) {
        mc::ExploreOpts g, d;
        g.engine = mc::Engine::kGraph;
        d.engine = mc::Engine::kDpor;
        mc::ExploreResult rg = exploreMode(sbPrograms(true), mode, g);
        mc::ExploreResult rd = exploreMode(sbPrograms(true), mode, d);
        ASSERT_TRUE(rg.complete);
        ASSERT_TRUE(rd.complete);
        EXPECT_EQ(idSet(rg), idSet(rd));
    }
}

TEST(McAgreement, ReductionPreservesOutcomeSet)
{
    for (AtomicsMode mode :
         {AtomicsMode::kFenced, AtomicsMode::kFreeFwd}) {
        mc::ExploreOpts on, off;
        off.reduce = false;
        mc::ExploreResult ron =
            exploreMode(sbPrograms(false), mode, on);
        mc::ExploreResult roff =
            exploreMode(sbPrograms(false), mode, off);
        ASSERT_TRUE(ron.complete);
        ASSERT_TRUE(roff.complete);
        EXPECT_EQ(idSet(ron), idSet(roff));
        // The reduction must actually reduce something here: the
        // result-word stores are statically private.
        EXPECT_LT(ron.statesExplored, roff.statesExplored);
    }
}

TEST(McAgreement, DporExecutionsPassAxiomaticChecker)
{
    const wl::Workload *w = wl::findWorkload("dekker");
    ASSERT_NE(w, nullptr);
    auto progs = wl::buildPrograms(*w, 2, 0.03);
    mc::MemInit init;
    if (w->init)
        for (auto &kv : w->init(2, 0.03))
            init.push_back(kv);
    mc::ExploreOpts d;
    d.engine = mc::Engine::kDpor;
    d.certifyTso = true;
    for (AtomicsMode mode :
         {AtomicsMode::kFenced, AtomicsMode::kFreeFwd}) {
        mc::ExploreResult r = exploreMode(progs, mode, d, init);
        ASSERT_TRUE(r.complete);
        EXPECT_TRUE(r.violations.empty())
            << r.violations.front().detail;
        EXPECT_GT(r.executionsCertified, 0u);
    }
}

// --------------------------------------------------------------------------
// Reorder bound
// --------------------------------------------------------------------------

TEST(McReorderBound, BoundZeroIsSequentialConsistency)
{
    mc::ExploreOpts sc;
    sc.reorderBound = 0;
    mc::ExploreResult r =
        exploreMode(sbPrograms(false), AtomicsMode::kFreeFwd, sc);
    ASSERT_TRUE(r.complete);
    std::set<std::pair<std::int64_t, std::int64_t>> results;
    for (const mc::Outcome &o : r.outcomes)
        results.insert({memAt(o, kR0), memAt(o, kR1)});
    // SC forbids exactly the (0,0) outcome of the SB shape.
    EXPECT_EQ(results.size(), 3u);
    EXPECT_FALSE(results.count({0, 0}));

    mc::ExploreOpts one;
    one.reorderBound = 1;
    mc::ExploreResult r1 =
        exploreMode(sbPrograms(false), AtomicsMode::kFreeFwd, one);
    ASSERT_TRUE(r1.complete);
    EXPECT_EQ(idSet(r1).size(), 4u)
        << "one read past a pending store recovers the relaxation";
}

// --------------------------------------------------------------------------
// Injected faults
// --------------------------------------------------------------------------

std::vector<isa::Program>
counterPrograms(unsigned threads, unsigned iters)
{
    // Bare contended fetchAdd loop: no spin-waits, so every fault
    // demo terminates (or deadlocks/livelocks detectably).
    std::vector<isa::Program> progs;
    for (unsigned t = 0; t < threads; ++t) {
        ProgramBuilder b("ctr_t" + std::to_string(t));
        b.movi(1, static_cast<std::int64_t>(kX)).movi(2, 1);
        for (unsigned i = 0; i < iters; ++i)
            b.fetchAdd(3, 1, 2);
        b.halt();
        progs.push_back(b.build());
    }
    return progs;
}

TEST(McFaults, NoLockBreaksAtomicity)
{
    mc::ExploreResult r =
        exploreMode(counterPrograms(2, 2), AtomicsMode::kFreeFwd, {},
                    {}, mc::Fault::kNoLock);
    ASSERT_FALSE(r.violations.empty());
    EXPECT_EQ(r.violations.front().kind, "atomicity");
    EXPECT_FALSE(r.violations.front().witness.empty());
}

/** The SB shape with per-thread RMW scratch lines: no cross-thread
 * lock serialization, so only the RMW's own drain-at-commit orders
 * store before load — exactly what kCommitNoDrain removes. (With a
 * shared scratch line the lock handoff re-orders the threads through
 * SB FIFO even under the fault, and the cycle cannot form.) */
isa::Program
sbThreadPrivateScratch(unsigned t)
{
    ProgramBuilder b("sb_ps_t" + std::to_string(t));
    b.movi(1, static_cast<std::int64_t>(t == 0 ? kX : kY))
        .movi(2, static_cast<std::int64_t>(t == 0 ? kY : kX))
        .movi(3, 1)
        .store(1, 3)
        .movi(4, static_cast<std::int64_t>(kS + t * 0x100))
        .fetchAdd(5, 4, 3)
        .load(6, 2)
        .movi(7, static_cast<std::int64_t>(t == 0 ? kR0 : kR1))
        .store(7, 6)
        .halt();
    return b.build();
}

TEST(McFaults, CommitNoDrainViolatesAxiomaticTso)
{
    // With the SB-empty-at-commit rule gone, the RMW no longer
    // fences the SB shape: the dpor certifier must catch the cycle.
    mc::ExploreOpts d;
    d.engine = mc::Engine::kDpor;
    d.certifyTso = true;
    mc::ExploreResult r = exploreMode(
        {sbThreadPrivateScratch(0), sbThreadPrivateScratch(1)},
        AtomicsMode::kFreeFwd, d, {}, mc::Fault::kCommitNoDrain);
    ASSERT_FALSE(r.violations.empty());
    EXPECT_EQ(r.violations.front().kind, "tso");
    EXPECT_FALSE(r.violations.front().witness.empty());
}

TEST(McFaults, NoRecoverMakesDeadlockTerminal)
{
    const wl::Workload *w = wl::findWorkload("dl_storermw");
    ASSERT_NE(w, nullptr);
    auto progs = wl::buildPrograms(*w, 2, 0.03);
    mc::MemInit init;
    if (w->init)
        for (auto &kv : w->init(2, 0.03))
            init.push_back(kv);
    mc::ExploreResult r = exploreMode(
        progs, AtomicsMode::kFreeFwd, {}, init, mc::Fault::kNoRecover);
    ASSERT_FALSE(r.violations.empty());
    EXPECT_EQ(r.violations.front().kind, "deadlock");
    EXPECT_FALSE(r.violations.front().witness.empty());

    // With recovery (the watchdog abstraction) back, the same
    // workload is deadlock-free.
    mc::ExploreResult ok =
        exploreMode(progs, AtomicsMode::kFreeFwd, {}, init);
    ASSERT_TRUE(ok.complete);
    EXPECT_TRUE(ok.violations.empty());
}

TEST(McFaults, LeakUnlockLeaksOrLivelocks)
{
    // Single thread: the program halts and the leaked lock survives
    // into the final state.
    mc::ExploreResult r1 =
        exploreMode(counterPrograms(1, 2), AtomicsMode::kFreeFwd, {},
                    {}, mc::Fault::kLeakUnlock);
    ASSERT_FALSE(r1.violations.empty());
    EXPECT_EQ(r1.violations.front().kind, "lock-leak");

    // Two contending threads: the second thread's RMW can never
    // acquire the leaked line and has no fallback step — terminal
    // deadlock.
    mc::ExploreResult r2 =
        exploreMode(counterPrograms(2, 1), AtomicsMode::kFreeFwd, {},
                    {}, mc::Fault::kLeakUnlock);
    ASSERT_FALSE(r2.violations.empty());
    EXPECT_EQ(r2.violations.front().kind, "deadlock");
    EXPECT_FALSE(r2.violations.front().witness.empty());

    // The packaged atomic_counter workload spins (test-and-set
    // retry loop), so the same leak turns into an infinite spin: no
    // final state is reachable yet every state has a successor. The
    // livelock detector has to flag it — a naive "explored
    // everything, nothing failed" would silently report zero
    // outcomes.
    const wl::Workload *w = wl::findWorkload("atomic_counter");
    ASSERT_NE(w, nullptr);
    auto progs = wl::buildPrograms(*w, 2, 0.03);
    mc::MemInit init;
    if (w->init)
        for (auto &kv : w->init(2, 0.03))
            init.push_back(kv);
    mc::ExploreResult r3 = exploreMode(
        progs, AtomicsMode::kFreeFwd, {}, init, mc::Fault::kLeakUnlock);
    ASSERT_FALSE(r3.violations.empty());
    EXPECT_EQ(r3.violations.front().kind, "livelock");
    EXPECT_FALSE(r3.violations.front().witness.empty());
}

TEST(McFaults, FaultNamesRoundTrip)
{
    for (mc::Fault f :
         {mc::Fault::kNone, mc::Fault::kNoLock,
          mc::Fault::kCommitNoDrain, mc::Fault::kNoRecover,
          mc::Fault::kLeakUnlock}) {
        mc::Fault parsed;
        ASSERT_TRUE(mc::parseFault(mc::faultName(f), &parsed));
        EXPECT_EQ(parsed, f);
    }
    mc::Fault parsed;
    EXPECT_FALSE(mc::parseFault("bogus", &parsed));
}

// --------------------------------------------------------------------------
// Minimal witnesses
// --------------------------------------------------------------------------

TEST(McWitness, GraphWitnessIsShort)
{
    // BFS guarantees a minimal-length interleaving to the violation;
    // for two threads of two increments the atomicity break needs
    // both threads to bind the same old value — well under a dozen
    // visible steps.
    mc::ExploreResult r =
        exploreMode(counterPrograms(2, 2), AtomicsMode::kFreeFwd, {},
                    {}, mc::Fault::kNoLock);
    ASSERT_FALSE(r.violations.empty());
    const auto &w = r.violations.front().witness;
    ASSERT_FALSE(w.empty());
    EXPECT_LE(w.size(), 12u);
    for (const std::string &line : w)
        EXPECT_FALSE(line.empty());
}

// --------------------------------------------------------------------------
// Differential certification
// --------------------------------------------------------------------------

TEST(McDiff, SimulatorSoundInAllModes)
{
    auto progs = counterPrograms(2, 3);
    for (AtomicsMode mode : kAllModes) {
        mc::ModelOpts mo;
        mo.mode = mode;
        mc::Model model(progs, mo);
        mc::ExploreResult ex = mc::explore(model, {}, {});
        ASSERT_TRUE(ex.complete);
        ASSERT_FALSE(ex.outcomes.empty());

        mc::DiffOpts d;
        d.runs = 4;
        d.chaosProfile = "coherence";
        mc::DiffResult dr = mc::diffCertify(model, ex, {}, d);
        EXPECT_TRUE(dr.sound) << core::atomicsModeName(mode) << ": "
                              << dr.error;
        EXPECT_GT(dr.distinctSeen, 0u);
        for (const mc::DiffRun &run : dr.runs)
            EXPECT_TRUE(run.known) << run.outcomePretty;
    }
}

TEST(McDiff, WrongExhaustiveSetIsUnsound)
{
    // Certify the simulator against the exhaustive set of a
    // *different* program state (initial counter shifted): every
    // simulator outcome falls outside the set and the driver must
    // report unsoundness with a replay recipe.
    auto progs = counterPrograms(2, 2);
    mc::ModelOpts mo;
    mo.mode = AtomicsMode::kFreeFwd;
    mc::Model model(progs, mo);
    mc::ExploreResult wrong =
        mc::explore(model, {{kX, 100}}, {});
    ASSERT_TRUE(wrong.complete);

    mc::DiffOpts d;
    d.runs = 2;
    mc::DiffResult dr = mc::diffCertify(model, wrong, {}, d);
    EXPECT_FALSE(dr.sound);
    EXPECT_NE(dr.error.find("seed"), std::string::npos)
        << "unsound report must carry the replay recipe: "
        << dr.error;
}

TEST(McDiff, CoverageGate)
{
    // A single run cannot cover the 4-outcome SB set: the coverage
    // gate must trip. With the gate disabled the same result is ok.
    auto progs = sbPrograms(false);
    mc::ModelOpts mo;
    mo.mode = AtomicsMode::kFreeFwd;
    mc::Model model(progs, mo);
    mc::ExploreResult ex = mc::explore(model, {}, {});
    ASSERT_TRUE(ex.complete);
    ASSERT_EQ(ex.outcomes.size(), 4u);

    mc::DiffOpts d;
    d.runs = 1;
    d.minCoverage = 1.0;
    mc::DiffResult dr = mc::diffCertify(model, ex, {}, d);
    EXPECT_TRUE(dr.sound);
    EXPECT_FALSE(dr.covered);

    d.minCoverage = 0.0;
    mc::DiffResult dr2 = mc::diffCertify(model, ex, {}, d);
    EXPECT_TRUE(dr2.ok()) << dr2.error;
}

// --------------------------------------------------------------------------
// Soak-generated programs
// --------------------------------------------------------------------------

TEST(McSoak, ExhaustiveSetPreservesCounterTotals)
{
    chaos::SoakSpec spec = chaos::makeSoakSpec(
        1, AtomicsMode::kFreeFwd, "none");
    spec.threads = std::min(spec.threads, 2u);
    spec.blocks = std::min(spec.blocks, 2u);
    spec.counters = std::min(spec.counters, 2u);
    chaos::SoakCase c = chaos::buildSoakCase(spec);

    mc::ModelOpts mo;
    mo.mode = AtomicsMode::kFreeFwd;
    mc::Model model(c.programs, mo);
    mc::ExploreResult r = mc::explore(model, {}, {});
    ASSERT_TRUE(r.complete);
    EXPECT_TRUE(r.violations.empty());
    ASSERT_FALSE(r.outcomes.empty());
    for (const mc::Outcome &o : r.outcomes) {
        for (unsigned i = 0; i < c.expectedCounters.size(); ++i) {
            EXPECT_EQ(memAt(o, wl::kDataBase + i * kLineBytes),
                      c.expectedCounters[i])
                << "counter " << i << " in " << o.pretty();
        }
    }
}

} // namespace
} // namespace fa
