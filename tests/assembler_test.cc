/**
 * @file
 * Tests for the text assembler: mnemonic coverage, operand parsing,
 * labels, errors with line numbers, and round-tripping through the
 * simulator and reference interpreter.
 */

#include <gtest/gtest.h>

#include "freeatomics/freeatomics.hh"

namespace fa::isa {
namespace {

TEST(Assembler, StraightLineProgram)
{
    Program p = assemble("t", R"(
        movi r1, 0x1000
        movi r2, 41
        addi r2, r2, 1
        store [r1], r2
        load r3, [r1 + 8]
        halt
    )");
    ASSERT_EQ(p.code.size(), 6u);
    EXPECT_EQ(p.code[0].op, Op::kMovi);
    EXPECT_EQ(p.code[0].imm, 0x1000);
    EXPECT_EQ(p.code[3].op, Op::kStore);
    EXPECT_EQ(p.code[4].op, Op::kLoad);
    EXPECT_EQ(p.code[4].imm, 8);
    MemImage mem;
    auto res = interpret(p, mem, 1);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(mem.read(0x1000), 42);
}

TEST(Assembler, LabelsForwardAndBackward)
{
    Program p = assemble("t", R"(
        movi r1, 5
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        jump done
        nop
    done:
        halt
    )");
    MemImage mem;
    auto res = interpret(p, mem, 1);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(res.regs[1], 0);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble("t", R"(
        ; full-line comment
        # hash comment

        movi r1, 1   ; trailing comment
        halt         # another
    )");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, AtomicsAndFences)
{
    Program p = assemble("t", R"(
        movi r1, 0x2000
        movi r2, 3
        fetchadd r3, [r1], r2
        tas r4, [r1 + 8]
        xchg r5, [r1 + 16], r2
        cas r6, [r1 + 24], r0, r2
        mfence
        halt
    )");
    EXPECT_EQ(p.code[2].rmw, RmwKind::kFetchAdd);
    EXPECT_EQ(p.code[3].rmw, RmwKind::kTestAndSet);
    EXPECT_EQ(p.code[4].rmw, RmwKind::kExchange);
    EXPECT_EQ(p.code[5].rmw, RmwKind::kCompareSwap);
    EXPECT_EQ(p.code[6].op, Op::kMfence);
    MemImage mem;
    interpret(p, mem, 1);
    EXPECT_EQ(mem.read(0x2000), 3);
    EXPECT_EQ(mem.read(0x2008), 1);
    EXPECT_EQ(mem.read(0x2010), 3);
    EXPECT_EQ(mem.read(0x2018), 3);
}

TEST(Assembler, LlScPair)
{
    Program p = assemble("t", R"(
        movi r1, 0x3000
        movi r2, 9
        ll r3, [r1]
        sc r4, [r1], r2
        halt
    )");
    EXPECT_EQ(p.code[2].op, Op::kLoadLinked);
    EXPECT_EQ(p.code[3].op, Op::kStoreCond);
    MemImage mem;
    interpret(p, mem, 1);
    EXPECT_EQ(mem.read(0x3000), 9);
}

TEST(Assembler, NegativeOffsetsAndHex)
{
    Program p = assemble("t", R"(
        movi r1, 0x1040
        store [r1 - 0x40], r1
        halt
    )");
    EXPECT_EQ(p.code[1].imm, -0x40);
    MemImage mem;
    interpret(p, mem, 1);
    EXPECT_EQ(mem.read(0x1000), 0x1040);
}

TEST(Assembler, AluMnemonics)
{
    Program p = assemble("t", R"(
        movi r1, 6
        movi r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        and r6, r1, r2
        or  r7, r1, r2
        xor r8, r1, r2
        shl r9, r1, r2
        shr r10, r1, r2
        lt  r11, r2, r1
        eq  r12, r1, r1
        halt
    )");
    MemImage mem;
    auto res = interpret(p, mem, 1);
    EXPECT_EQ(res.regs[3], 9);
    EXPECT_EQ(res.regs[4], 3);
    EXPECT_EQ(res.regs[5], 18);
    EXPECT_EQ(res.regs[9], 48);
    EXPECT_EQ(res.regs[11], 1);
    EXPECT_EQ(res.regs[12], 1);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("t", "movi r1, 1\nbogus r2, r3\nhalt\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(e.message.find("line 2"), std::string::npos);
        EXPECT_NE(e.message.find("bogus"), std::string::npos);
    }
}

TEST(Assembler, UndefinedLabelIsFatal)
{
    EXPECT_THROW(assemble("t", "jump nowhere\nhalt\n"), FatalError);
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    EXPECT_THROW(assemble("t", "a:\nnop\na:\nhalt\n"), FatalError);
}

TEST(Assembler, BadRegisterIsFatal)
{
    EXPECT_THROW(assemble("t", "movi r99, 1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("t", "movi x1, 1\nhalt\n"), FatalError);
}

TEST(Assembler, OperandCountIsChecked)
{
    EXPECT_THROW(assemble("t", "movi r1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("t", "add r1, r2\nhalt\n"), FatalError);
}

TEST(Assembler, RunsOnTheSimulatorLikeBuiltPrograms)
{
    Program p = assemble("counter", R"(
        movi r1, 0x20000
        movi r2, 1
        movi r3, 16
    loop:
        fetchadd r4, [r1], r2
        addi r3, r3, -1
        bne r3, r0, loop
        halt
    )");
    auto m = sim::MachineConfig::tiny(4);
    m.core.mode = core::AtomicsMode::kFreeFwd;
    sim::System sys(m, std::vector<Program>(4, p), 5);
    auto out = sys.run(1'000'000);
    ASSERT_TRUE(out.finished) << out.failure;
    EXPECT_EQ(sys.readWord(0x20000), 64);
}

TEST(Assembler, DisasmRoundTrip)
{
    // Every disasm line of a built program must re-assemble to the
    // same opcode stream (branch targets become labels).
    isa::ProgramBuilder b("t");
    auto r1 = b.alloc();
    auto r2 = b.alloc();
    b.movi(r1, 7).addi(r2, r1, -3).load(r2, r1, 16);
    b.store(r1, r2, 8).fetchAdd(r2, r1, r2).mfence().halt();
    Program orig = b.build();
    std::string text;
    for (const auto &inst : orig.code)
        text += Program::disasm(inst) + "\n";
    Program again = assemble("t", text);
    ASSERT_EQ(again.code.size(), orig.code.size());
    for (size_t i = 0; i < orig.code.size(); ++i) {
        EXPECT_EQ(again.code[i].op, orig.code[i].op) << "pc " << i;
        EXPECT_EQ(again.code[i].imm, orig.code[i].imm) << "pc " << i;
    }
}

TEST(Assembler, MissingFileIsFatal)
{
    EXPECT_THROW(assembleFile("/no/such/file.fasm"), FatalError);
}

TEST(Assembler, WriteAsmRoundTripsBranchyGeneratedPrograms)
{
    // writeAsm is the on-disk format of soak reproducers: for any
    // generated program (branches, loops, atomics, the lot),
    // assemble(writeAsm(p)) must reproduce the code stream exactly.
    for (std::uint64_t seed : {1, 2, 3, 4}) {
        wl::SyntheticParams sp;
        sp.generatorSeed = seed;
        sp.blocks = 20;
        Program orig = wl::buildSyntheticProgram(sp, 0, 2, nullptr);
        Program again = assemble("rt", writeAsm(orig));
        ASSERT_EQ(again.code.size(), orig.code.size()) << "seed "
                                                       << seed;
        for (size_t i = 0; i < orig.code.size(); ++i) {
            EXPECT_EQ(again.code[i].op, orig.code[i].op)
                << "seed " << seed << " pc " << i;
            EXPECT_EQ(again.code[i].imm, orig.code[i].imm)
                << "seed " << seed << " pc " << i;
            EXPECT_EQ(again.code[i].target, orig.code[i].target)
                << "seed " << seed << " pc " << i;
        }
    }
}

} // namespace
} // namespace fa::isa
