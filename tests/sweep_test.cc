/**
 * @file
 * Tier-1 determinism tests for the host-parallel sweep engine
 * (sim/sweep): the same job list run at 1, 4, and 8 host threads must
 * produce byte-identical per-job RunResult JSON, identical aggregate
 * JSONL/summary output, and identical merged histograms. Also covers
 * the worker pool's every-index-exactly-once and exception-propagation
 * contracts and the historical seed schedule.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/presets.hh"
#include "sim/sweep/campaigns.hh"
#include "sim/sweep/pool.hh"
#include "sim/sweep/sweep.hh"

namespace fa {
namespace {

using sim::sweep::SweepJob;
using sim::sweep::SweepOptions;
using sim::sweep::SweepReport;

/** A small cross-product job list: 2 workloads x 2 modes x 2 seeds on
 * the tiny machine — big enough to exercise stealing, small enough
 * for tier-1. */
std::vector<SweepJob>
smallJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *wl : {"dekker", "mp"}) {
        for (core::AtomicsMode mode : {core::AtomicsMode::kFenced,
                                       core::AtomicsMode::kFreeFwd}) {
            for (unsigned s = 0; s < 2; ++s) {
                SweepJob j;
                j.bench = "sweep_test";
                j.workload = wl;
                j.label = core::atomicsModeIdent(mode);
                j.machine = sim::presets::tiny(2);
                j.mode = mode;
                j.cores = 2;
                j.scale = 1.0;
                j.seedIndex = s;
                j.seed = sim::sweep::deriveSeed(s);
                jobs.push_back(j);
            }
        }
    }
    return jobs;
}

std::vector<std::string>
perJobJson(const SweepReport &r)
{
    std::vector<std::string> out;
    for (const auto &o : r.outcomes) {
        std::ostringstream os;
        o.run.toJson(os);
        out.push_back(os.str());
    }
    return out;
}

std::string
histFingerprint(const LatencyHists &h)
{
    std::ostringstream os;
    h.forEach([&](const std::string &name, const Histogram &hist) {
        os << name << ":" << hist.count() << "," << hist.sum() << ","
           << hist.min() << "," << hist.max() << ";";
    });
    return os.str();
}

TEST(Pool, RunsEveryIndexExactlyOnce)
{
    sim::sweep::Pool pool(4);
    std::vector<std::atomic<int>> hits(97);
    pool.run(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Pool, FirstExceptionByJobIndexWins)
{
    sim::sweep::Pool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.run(32, [&](std::size_t i) {
            ran++;
            if (i == 3 || i == 17)
                throw std::runtime_error("job " + std::to_string(i));
        });
        FAIL() << "expected the job exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 3");
    }
    // One failure must not skip the independent remainder.
    EXPECT_EQ(ran.load(), 32);
}

TEST(Pool, RunCollectCapturesFailuresPerJob)
{
    sim::sweep::Pool pool(4);
    auto statuses = pool.runCollect(32, [&](std::size_t i) {
        if (i == 3)
            throw std::runtime_error("boom 3");
        if (i == 17)
            fatal("boom %d", 17);
    });
    ASSERT_EQ(statuses.size(), 32u);
    for (std::size_t i = 0; i < statuses.size(); ++i) {
        if (i == 3 || i == 17) {
            EXPECT_TRUE(statuses[i].failed());
            EXPECT_EQ(statuses[i].error,
                      "boom " + std::to_string(i));
        } else {
            EXPECT_TRUE(statuses[i].done()) << "job " << i;
        }
    }
}

TEST(Pool, RunCollectStopFlagDrainsInsteadOfKilling)
{
    // With the stop flag raised before dispatch, a serial pool must
    // skip every job; statuses come back kSkipped, not kFailed.
    sim::sweep::Pool pool(1);
    std::atomic<int> stop{1};
    std::atomic<int> ran{0};
    auto statuses = pool.runCollect(
        8, [&](std::size_t) { ran++; }, &stop);
    EXPECT_EQ(ran.load(), 0);
    for (const auto &s : statuses)
        EXPECT_TRUE(s.skipped());
}

TEST(Sweep, PoisonedJobDoesNotDiscardTheOthers)
{
    // Regression: one throwing job (unknown workload → FatalError in
    // the worker) must surface as a failed outcome in its own slot
    // while the other N-1 jobs keep their completed results.
    auto jobs = smallJobs();
    const std::size_t poisoned = 3;
    jobs[poisoned].workload = "no-such-workload";

    SweepReport r = sim::sweep::runSweep(jobs, SweepOptions{4});
    ASSERT_EQ(r.outcomes.size(), jobs.size());
    EXPECT_EQ(r.failed, 1u);

    for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
        const auto &o = r.outcomes[i];
        if (i == poisoned) {
            EXPECT_FALSE(o.run.finished);
            EXPECT_NE(o.error.find("no-such-workload"),
                      std::string::npos);
            EXPECT_NE(o.run.failure.find("host exception"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(o.run.finished) << "job " << i;
            EXPECT_TRUE(o.error.empty()) << "job " << i;
        }
    }

    // And the failed slot still identifies its job for replay.
    EXPECT_EQ(r.outcomes[poisoned].job.seed,
              jobs[poisoned].seed);
}

TEST(Sweep, SeedScheduleMatchesTheBenchHarnesses)
{
    EXPECT_EQ(sim::sweep::deriveSeed(0), 0xbe9c5u);
    EXPECT_EQ(sim::sweep::deriveSeed(7), 0xbe9c5u + 7);
}

TEST(Sweep, BitIdenticalAcrossThreadCounts)
{
    const auto jobs = smallJobs();
    SweepReport r1 = sim::sweep::runSweep(jobs, SweepOptions{1});
    SweepReport r4 = sim::sweep::runSweep(jobs, SweepOptions{4});
    SweepReport r8 = sim::sweep::runSweep(jobs, SweepOptions{8});

    EXPECT_EQ(r1.failed, 0u);
    EXPECT_EQ(r4.failed, 0u);
    EXPECT_EQ(r8.failed, 0u);

    // Per-job telemetry, byte for byte.
    const auto j1 = perJobJson(r1);
    EXPECT_EQ(j1, perJobJson(r4));
    EXPECT_EQ(j1, perJobJson(r8));

    // Aggregates: JSONL stream, summary table, merged histograms.
    std::ostringstream l1, l4, l8;
    sim::sweep::writeJsonl(r1, l1);
    sim::sweep::writeJsonl(r4, l4);
    sim::sweep::writeJsonl(r8, l8);
    EXPECT_EQ(l1.str(), l4.str());
    EXPECT_EQ(l1.str(), l8.str());

    std::ostringstream t1, t8;
    sim::sweep::writeSummaryTable(r1, t1, false);
    sim::sweep::writeSummaryTable(r8, t8, false);
    EXPECT_EQ(t1.str(), t8.str());

    EXPECT_EQ(histFingerprint(r1.mergedHists()),
              histFingerprint(r8.mergedHists()));
}

TEST(Sweep, ReportLookupAndMeans)
{
    const auto jobs = smallJobs();
    SweepReport r = sim::sweep::runSweep(jobs, SweepOptions{4});

    const auto &o = r.at("dekker", "fenced", 1);
    EXPECT_EQ(o.job.seedIndex, 1u);
    EXPECT_EQ(o.job.seed, sim::sweep::deriveSeed(1));
    EXPECT_TRUE(o.run.finished);

    double cycles = r.meanOverSeeds(
        "mp", "freefwd",
        [](const sim::RunResult &rr) {
            return static_cast<double>(rr.cycles);
        });
    EXPECT_GT(cycles, 0.0);
}

TEST(Sweep, CampaignJobListsAreDeterministic)
{
    sim::sweep::CampaignCfg cfg;
    cfg.cores = 2;
    cfg.scale = 1.0;
    cfg.seeds = 2;
    cfg.workloads = {"dekker"};
    cfg.modes = {"fenced", "freefwd"};
    cfg.machines = {"tiny"};

    const auto *c = sim::sweep::findCampaign("sweep");
    ASSERT_NE(c, nullptr);
    auto a = c->jobs(cfg);
    auto b = c->jobs(cfg);
    ASSERT_EQ(a.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
    EXPECT_EQ(sim::sweep::findCampaign("no-such"), nullptr);
}

} // namespace
} // namespace fa
