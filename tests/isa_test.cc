/**
 * @file
 * Unit tests for the workload IR: builder label fixups, program
 * validation, shared semantic helpers and the reference interpreter.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/builder.hh"
#include "isa/interp.hh"
#include "isa/program.hh"

namespace fa::isa {
namespace {

TEST(Alu, Semantics)
{
    EXPECT_EQ(evalAlu(AluFn::kAdd, 2, 3), 5);
    EXPECT_EQ(evalAlu(AluFn::kSub, 2, 3), -1);
    EXPECT_EQ(evalAlu(AluFn::kAnd, 6, 3), 2);
    EXPECT_EQ(evalAlu(AluFn::kOr, 4, 1), 5);
    EXPECT_EQ(evalAlu(AluFn::kXor, 7, 2), 5);
    EXPECT_EQ(evalAlu(AluFn::kMul, -3, 4), -12);
    EXPECT_EQ(evalAlu(AluFn::kShl, 1, 4), 16);
    EXPECT_EQ(evalAlu(AluFn::kShr, 16, 4), 1);
    EXPECT_EQ(evalAlu(AluFn::kLt, 1, 2), 1);
    EXPECT_EQ(evalAlu(AluFn::kLt, 2, 1), 0);
    EXPECT_EQ(evalAlu(AluFn::kEq, 5, 5), 1);
}

TEST(Alu, ShiftMasksAmount)
{
    EXPECT_EQ(evalAlu(AluFn::kShl, 1, 64), 1);
    EXPECT_EQ(evalAlu(AluFn::kShr, -1, 63), 1);
}

TEST(Cond, Semantics)
{
    EXPECT_TRUE(evalCond(BranchCond::kEq, 3, 3));
    EXPECT_FALSE(evalCond(BranchCond::kEq, 3, 4));
    EXPECT_TRUE(evalCond(BranchCond::kNe, 3, 4));
    EXPECT_TRUE(evalCond(BranchCond::kLt, -1, 0));
    EXPECT_TRUE(evalCond(BranchCond::kGe, 0, 0));
}

TEST(Rmw, Semantics)
{
    EXPECT_EQ(applyRmw(RmwKind::kFetchAdd, 10, 5, 0), 15);
    EXPECT_EQ(applyRmw(RmwKind::kTestAndSet, 0, 0, 0), 1);
    EXPECT_EQ(applyRmw(RmwKind::kTestAndSet, 1, 0, 0), 1);
    EXPECT_EQ(applyRmw(RmwKind::kExchange, 10, 99, 0), 99);
    EXPECT_EQ(applyRmw(RmwKind::kCompareSwap, 10, 10, 77), 77);
    EXPECT_EQ(applyRmw(RmwKind::kCompareSwap, 10, 11, 77), 10);
}

TEST(Builder, LabelsResolveForwardAndBackward)
{
    ProgramBuilder b("t");
    Reg r = b.alloc();
    Label fwd = b.newLabel();
    b.movi(r, 3);
    Label back = b.here();
    b.addi(r, r, -1);
    b.branch(BranchCond::kNe, r, ProgramBuilder::zero(), back);
    b.jump(fwd);
    b.bind(fwd);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.code[2].target, 1);  // backward branch to 'back'
    EXPECT_EQ(p.code[3].target, 4);  // forward jump to 'fwd'
}

TEST(Builder, UnboundLabelIsFatal)
{
    ProgramBuilder b("t");
    Label l = b.newLabel();
    b.jump(l);
    b.halt();
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, DoubleBindIsFatal)
{
    ProgramBuilder b("t");
    Label l = b.here();
    EXPECT_THROW(b.bind(l), FatalError);
}

TEST(Builder, RegisterExhaustion)
{
    ProgramBuilder b("t");
    for (unsigned i = 1; i < kNumRegs; ++i)
        b.alloc();
    EXPECT_THROW(b.alloc(), FatalError);
}

TEST(Validate, RejectsWriteToZeroRegister)
{
    Program p;
    p.name = "bad";
    Inst i;
    i.op = Op::kMovi;
    i.dst = 0;
    p.code.push_back(i);
    Inst h;
    h.op = Op::kHalt;
    p.code.push_back(h);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Validate, RejectsMissingHalt)
{
    Program p;
    p.name = "bad";
    Inst i;
    i.op = Op::kNop;
    p.code.push_back(i);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Validate, RejectsOutOfRangeTarget)
{
    Program p;
    p.name = "bad";
    Inst j;
    j.op = Op::kJump;
    j.target = 5;
    p.code.push_back(j);
    Inst h;
    h.op = Op::kHalt;
    p.code.push_back(h);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Validate, RejectsNonPositiveRandRange)
{
    Program p;
    p.name = "bad";
    Inst r;
    r.op = Op::kRand;
    r.dst = 1;
    r.imm = 0;
    p.code.push_back(r);
    Inst h;
    h.op = Op::kHalt;
    p.code.push_back(h);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Disasm, CoversEveryOpcode)
{
    ProgramBuilder b("t");
    Reg r = b.alloc();
    Reg r2 = b.alloc();
    b.nop().pause().movi(r, 1).alu(AluFn::kAdd, r, r, r2);
    b.addi(r, r, 1).load(r, r2).store(r2, r);
    b.fetchAdd(r, r2, r).testAndSet(r, r2).exchange(r, r2, r);
    b.compareSwap(r, r2, r, r);
    Label l = b.here();
    b.branch(BranchCond::kEq, r, r2, l).jump(l).mfence();
    b.rand(r, 8).halt();
    Program p = b.build();
    for (const Inst &inst : p.code) {
        std::string s = Program::disasm(inst);
        EXPECT_FALSE(s.empty());
        EXPECT_EQ(s.find("<bad>"), std::string::npos);
    }
}

TEST(Interp, StraightLine)
{
    ProgramBuilder b("t");
    Reg r1 = b.alloc();
    Reg r2 = b.alloc();
    b.movi(r1, 6);
    b.movi(r2, 0x1000);
    b.store(r2, r1);
    b.load(r1, r2);
    b.addi(r1, r1, 1);
    b.store(r2, r1, 8);
    b.halt();
    MemImage mem;
    auto res = interpret(b.build(), mem, 1);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(mem.read(0x1008), 7);
    EXPECT_EQ(res.regs[r1], 7);
}

TEST(Interp, LoopSum)
{
    ProgramBuilder b("t");
    Reg i = b.alloc();
    Reg acc = b.alloc();
    b.movi(i, 10);
    Label loop = b.here();
    b.alu(AluFn::kAdd, acc, acc, i);
    b.addi(i, i, -1);
    b.branch(BranchCond::kNe, i, ProgramBuilder::zero(), loop);
    b.halt();
    MemImage mem;
    auto res = interpret(b.build(), mem, 1);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(res.regs[acc], 55);
}

TEST(Interp, RmwReturnsOldValue)
{
    ProgramBuilder b("t");
    Reg a = b.alloc();
    Reg v = b.alloc();
    Reg one = b.alloc();
    b.movi(a, 0x2000);
    b.movi(one, 1);
    b.fetchAdd(v, a, one);
    b.fetchAdd(v, a, one);
    b.halt();
    MemImage mem;
    auto res = interpret(b.build(), mem, 1);
    EXPECT_EQ(res.regs[v], 1);       // second fetch-add saw the first
    EXPECT_EQ(mem.read(0x2000), 2);
}

TEST(Interp, RandStreamIsSeedDeterministic)
{
    ProgramBuilder b("t");
    Reg r = b.alloc();
    Reg a = b.alloc();
    b.movi(a, 0x3000);
    for (int i = 0; i < 4; ++i) {
        b.rand(r, 100);
        b.store(a, r, i * 8);
    }
    b.halt();
    Program p = b.build();
    MemImage m1;
    MemImage m2;
    MemImage m3;
    interpret(p, m1, 5);
    interpret(p, m2, 5);
    interpret(p, m3, 6);
    EXPECT_TRUE(m1 == m2);
    EXPECT_FALSE(m1 == m3);
}

TEST(Interp, StepLimitStopsRunaway)
{
    ProgramBuilder b("t");
    Label loop = b.here();
    b.jump(loop);
    b.halt();
    MemImage mem;
    auto res = interpret(b.build(), mem, 1, 1000);
    EXPECT_FALSE(res.halted);
    EXPECT_EQ(res.instsExecuted, 1000u);
}

TEST(Builder, LockIdiomIsSelfConsistent)
{
    // Acquire + release on a single thread must terminate and leave
    // the lock word zero.
    ProgramBuilder b("t");
    Reg a = b.alloc();
    Reg t = b.alloc();
    b.movi(a, 0x4000);
    b.lockAcquire(a, t);
    b.lockRelease(a, t);
    b.halt();
    MemImage mem;
    auto res = interpret(b.build(), mem, 1);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(mem.read(0x4000), 0);
}

TEST(Builder, BarrierSingleThreadPasses)
{
    ProgramBuilder b("t");
    Reg bar = b.alloc();
    Reg n = b.alloc();
    Reg t0 = b.alloc();
    Reg t1 = b.alloc();
    Reg t2 = b.alloc();
    Reg t3 = b.alloc();
    b.movi(bar, 0x5000);
    b.movi(n, 1);
    b.barrier(bar, n, t0, t1, t2, t3);
    b.barrier(bar, n, t0, t1, t2, t3);
    b.halt();
    MemImage mem;
    auto res = interpret(b.build(), mem, 1);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(mem.read(0x5000), 0);      // counter reset
    EXPECT_EQ(mem.read(0x5040), 2);      // two generations passed
}

} // namespace
} // namespace fa::isa
