/**
 * @file
 * Unit tests for the inclusive finite directory.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/directory.hh"

namespace fa::mem {
namespace {

Addr
lineInSet(const Directory &d, unsigned set, unsigned k)
{
    unsigned found = 0;
    for (Addr line = 0;; line += kLineBytes) {
        if (d.setOf(line) == set) {
            if (found == k)
                return line;
            ++found;
        }
    }
}

TEST(DirEntry, SharerOps)
{
    DirEntry e;
    e.addSharer(3);
    e.addSharer(7);
    EXPECT_TRUE(e.hasSharer(3));
    EXPECT_FALSE(e.hasSharer(4));
    EXPECT_EQ(e.sharerCount(), 2u);
    e.removeSharer(3);
    EXPECT_FALSE(e.hasSharer(3));
    EXPECT_EQ(e.sharerCount(), 1u);
}

TEST(DirEntry, RemovingOwnerClearsExclusive)
{
    DirEntry e;
    e.addSharer(5);
    e.exclusive = true;
    e.owner = 5;
    e.removeSharer(5);
    EXPECT_FALSE(e.exclusive);
    EXPECT_EQ(e.owner, kNoCore);
}

TEST(Directory, AllocateAndFind)
{
    Directory d(4, 2);
    Addr a = lineInSet(d, 1, 0);
    EXPECT_EQ(d.find(a), nullptr);
    DirEntry *slot = d.findFree(a);
    ASSERT_NE(slot, nullptr);
    d.allocate(slot, a, 1);
    ASSERT_NE(d.find(a), nullptr);
    EXPECT_EQ(d.find(a)->line, a);
    EXPECT_EQ(d.population(), 1u);
}

TEST(Directory, FindFreeReturnsNullWhenFull)
{
    Directory d(2, 2);
    for (unsigned k = 0; k < 2; ++k) {
        Addr a = lineInSet(d, 0, k);
        d.allocate(d.findFree(a), a, k);
    }
    EXPECT_EQ(d.findFree(lineInSet(d, 0, 2)), nullptr);
    // A different set still has room.
    EXPECT_NE(d.findFree(lineInSet(d, 1, 0)), nullptr);
}

TEST(Directory, VictimIsLruOfSet)
{
    Directory d(2, 2);
    Addr a = lineInSet(d, 0, 0);
    Addr b = lineInSet(d, 0, 1);
    d.allocate(d.findFree(a), a, 5);
    d.allocate(d.findFree(b), b, 3);
    DirEntry *victim = d.chooseVictim(lineInSet(d, 0, 2));
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->line, b);
}

TEST(Directory, ReleaseRequiresNoSharers)
{
    Directory d(2, 2);
    Addr a = lineInSet(d, 0, 0);
    DirEntry *e = d.allocate(d.findFree(a), a, 1);
    e->addSharer(2);
    EXPECT_DEATH(d.release(e), "live sharers");
    e->removeSharer(2);
    d.release(e);
    EXPECT_EQ(d.find(a), nullptr);
}

TEST(Directory, SetsRoundedToPowerOfTwo)
{
    Directory d(3, 2);
    EXPECT_EQ(d.numSets(), 4u);
}

} // namespace
} // namespace fa::mem
