/**
 * @file
 * Fault-injection engine, watchdog hardening, and soak-harness tests:
 *  - zero-cost-when-off: an attached all-zero engine is bit-identical
 *    to no engine at all,
 *  - seed-replay determinism: same seed + fault profile => identical
 *    cycle counts, injection counts, and forensics output,
 *  - every timing fault class fires and preserves correctness,
 *  - the injected dropped-unlock bug is caught by forensics (stale
 *    lock), never by the watchdog,
 *  - §3.2.5 watchdog counter semantics: the timer tracks the oldest
 *    lock-holding atomic, so a long non-atomic commit stream cannot
 *    starve it,
 *  - randomized exponential backoff: recorded per firing, pinnable,
 *    and able to exit a two-core flush-reacquire livelock,
 *  - soak certification: shrinking and reproducer round-trips.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "freeatomics/freeatomics.hh"

namespace fa {
namespace {

using core::AtomicsMode;

/** Run a packaged workload with an optional chaos profile armed in
 * the machine config; returns the result and the injection counts. */
std::pair<sim::RunResult, chaos::ChaosEngine::Counts>
runWithChaos(const std::string &workload, AtomicsMode mode,
             const std::string &profile, std::uint64_t chaos_seed,
             unsigned threads = 4, double scale = 0.5)
{
    const auto *w = wl::findWorkload(workload);
    EXPECT_NE(w, nullptr) << workload;
    auto m = sim::MachineConfig::tiny(threads);
    m.core.inOrderLockAcquisition = false;
    m.core.watchdogThreshold = 500;
    m.recordMemTrace = true;
    m.chaos = chaos::chaosProfile(profile, chaos_seed);
    auto progs = wl::buildPrograms(*w, threads, scale);
    m.core.mode = mode;
    m.cores = threads;
    sim::System sys(m, progs, 31);
    if (w->init)
        sys.initMemory(w->init(threads, scale));
    auto out = sys.run(40'000'000);
    auto res = sim::collectRunResult(sys, out);
    if (w->verify && out.finished && res.failure.empty())
        res.failure = w->verify(sys, threads, scale);
    chaos::ChaosEngine::Counts cnt;
    if (const auto *eng = sys.chaosEngine())
        cnt = eng->counts();
    return {res, cnt};
}

// --------------------------------------------------------------------------
// Engine basics
// --------------------------------------------------------------------------

TEST(ChaosConfig, ProfilesAreNamedAndUnknownIsRejected)
{
    auto all = chaos::chaosProfile("all", 7);
    EXPECT_TRUE(all.anyEnabled());
    EXPECT_EQ(all.describe(), chaos::chaosProfile("all", 7).describe());
    auto none = chaos::chaosProfile("none", 7);
    EXPECT_FALSE(none.anyEnabled());
    EXPECT_THROW(chaos::chaosProfile("bogus", 1),
                 std::invalid_argument);
    EXPECT_NE(std::string(chaos::chaosProfileNames()).find("all"),
              std::string::npos);
}

TEST(ChaosEngine, ZeroProbabilityEngineIsBitIdenticalToNoEngine)
{
    // The acceptance bar for "zero overhead when disabled": cycle
    // counts and counters must be identical whether the hooks are
    // absent (null pointer) or present but never firing.
    const auto *w = wl::findWorkload("atomic_counter");
    ASSERT_NE(w, nullptr);
    auto m = sim::MachineConfig::tiny(4);
    m.core.inOrderLockAcquisition = false;
    auto progs = wl::buildPrograms(*w, 4, 0.5);
    m.core.mode = AtomicsMode::kFreeFwd;
    m.cores = 4;

    sim::System plain(m, progs, 31);
    auto out_plain = plain.run(40'000'000);
    ASSERT_TRUE(out_plain.finished) << out_plain.failure;

    sim::System hooked(m, progs, 31);
    chaos::ChaosEngine idle{chaos::ChaosConfig{}};
    hooked.attachChaos(&idle);
    auto out_hooked = hooked.run(40'000'000);
    ASSERT_TRUE(out_hooked.finished) << out_hooked.failure;

    EXPECT_EQ(out_plain.cycles, out_hooked.cycles);
    EXPECT_EQ(plain.coreTotals().committedInsts,
              hooked.coreTotals().committedInsts);
    EXPECT_EQ(plain.coreTotals().squashEvents[static_cast<int>(
                  SquashCause::kBranchMispredict)],
              hooked.coreTotals().squashEvents[static_cast<int>(
                  SquashCause::kBranchMispredict)]);
    EXPECT_EQ(plain.mem().stats.l1Misses, hooked.mem().stats.l1Misses);
    EXPECT_EQ(idle.counts().total(), 0u);
}

// --------------------------------------------------------------------------
// Seed-replay determinism (satellite: bit-identical replays)
// --------------------------------------------------------------------------

TEST(ChaosReplay, SameSeedAndProfileGiveIdenticalRuns)
{
    auto [a, ca] = runWithChaos("atomic_counter",
                                AtomicsMode::kFreeFwd, "all", 97);
    auto [b, cb] = runWithChaos("atomic_counter",
                                AtomicsMode::kFreeFwd, "all", 97);
    ASSERT_TRUE(a.finished) << a.failure;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.core.committedInsts, b.core.committedInsts);
    EXPECT_EQ(a.core.watchdogTimeouts, b.core.watchdogTimeouts);
    EXPECT_EQ(ca.total(), cb.total());
    EXPECT_EQ(ca.coherenceDelays, cb.coherenceDelays);
    EXPECT_EQ(ca.squashStorms, cb.squashStorms);

    // A different fault seed perturbs the schedule (sanity check that
    // the engine is actually doing something seed-dependent).
    auto [c, cc] = runWithChaos("atomic_counter",
                                AtomicsMode::kFreeFwd, "all", 98);
    ASSERT_TRUE(c.finished) << c.failure;
    EXPECT_NE(ca.total(), 0u);
    EXPECT_TRUE(a.cycles != c.cycles || ca.total() != cc.total());
}

TEST(ChaosReplay, FailingRunForensicsAreIdenticalAcrossRuns)
{
    // Satellite: same seed + fault profile => bit-identical cycle
    // counts AND identical forensics output across two runs.
    auto spec = chaos::makeSoakSpec(3, AtomicsMode::kFreeFwd,
                                    "buggy_unlock");
    auto r1 = chaos::runSoakCase(chaos::buildSoakCase(spec));
    auto r2 = chaos::runSoakCase(chaos::buildSoakCase(spec));
    ASSERT_FALSE(r1.ok);
    EXPECT_EQ(r1.signature, r2.signature);
    EXPECT_EQ(r1.detail, r2.detail);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.forensics, r2.forensics);
    EXPECT_FALSE(r1.forensics.empty());
}

// --------------------------------------------------------------------------
// Fault classes fire and preserve correctness
// --------------------------------------------------------------------------

TEST(ChaosClasses, CoherenceDelaysAndReordersFire)
{
    auto [r, c] = runWithChaos("atomic_counter", AtomicsMode::kFreeFwd,
                               "coherence", 5);
    ASSERT_TRUE(r.finished) << r.failure;
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    EXPECT_TRUE(r.tsoOk()) << r.tsoError;
    EXPECT_GT(c.coherenceDelays, 0u);
    EXPECT_GT(c.delayCyclesAdded, c.coherenceDelays);
}

TEST(ChaosClasses, StuckLocksFireAndDeny)
{
    auto [r, c] = runWithChaos("atomic_counter", AtomicsMode::kFreeFwd,
                               "locks", 5);
    ASSERT_TRUE(r.finished) << r.failure;
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    EXPECT_TRUE(r.tsoOk()) << r.tsoError;
    EXPECT_GT(c.stuckLockWindows, 0u);
    EXPECT_GE(c.stuckLockDenials, c.stuckLockWindows);
}

TEST(ChaosClasses, SquashStormsFireAndAreCounted)
{
    auto [r, c] = runWithChaos("atomic_counter", AtomicsMode::kFreeFwd,
                               "squash", 5);
    ASSERT_TRUE(r.finished) << r.failure;
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    EXPECT_TRUE(r.tsoOk()) << r.tsoError;
    EXPECT_GT(c.squashStorms, 0u);
    EXPECT_EQ(r.core.squashEvents[static_cast<int>(
                  SquashCause::kChaos)],
              c.squashStorms);
}

TEST(ChaosClasses, EvictPressureFires)
{
    auto [r, c] = runWithChaos("atomic_counter", AtomicsMode::kFreeFwd,
                               "pressure", 5);
    ASSERT_TRUE(r.finished) << r.failure;
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    EXPECT_TRUE(r.tsoOk()) << r.tsoError;
    EXPECT_GT(c.evictPressureProbes, 0u);
}

TEST(ChaosClasses, FwdCapJitterFiresAtChainBoundary)
{
    // Back-to-back same-line atomics build §3.3.4 chains up to the
    // cap; the jitter class only rolls within 2 of the boundary.
    auto [r, c] = runWithChaos("atomic_counter", AtomicsMode::kFreeFwd,
                               "fwd", 5, 2, 1.0);
    ASSERT_TRUE(r.finished) << r.failure;
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    EXPECT_TRUE(r.tsoOk()) << r.tsoError;
    EXPECT_GT(c.fwdCapJitters, 0u);
}

TEST(ChaosClasses, AllTimingFaultsTogetherStayCorrect)
{
    for (auto mode : {AtomicsMode::kFenced, AtomicsMode::kSpec,
                      AtomicsMode::kFree, AtomicsMode::kFreeFwd}) {
        auto [r, c] = runWithChaos("atomic_counter", mode, "all", 11);
        ASSERT_TRUE(r.finished)
            << core::atomicsModeName(mode) << ": " << r.failure;
        EXPECT_TRUE(r.failure.empty()) << r.failure;
        EXPECT_TRUE(r.tsoOk()) << r.tsoError;
        EXPECT_GT(c.total(), 0u);
        EXPECT_EQ(c.droppedUnlocks, 0u);  // "all" excludes the bug
    }
}

// --------------------------------------------------------------------------
// The injected bug: forensics, not the watchdog, must catch it
// --------------------------------------------------------------------------

TEST(ChaosBug, DroppedUnlockIsCaughtByForensicsNotWatchdog)
{
    auto spec = chaos::makeSoakSpec(3, AtomicsMode::kFreeFwd,
                                    "buggy_unlock");
    auto r = chaos::runSoakCase(chaos::buildSoakCase(spec));
    ASSERT_FALSE(r.ok);
    // The leaked lock has no in-flight owner, so the watchdog's
    // victim lookup cannot break it: the run must end in the global
    // progress-window abort...
    EXPECT_EQ(r.signature, "no-progress");
    // ...and the forensic snapshot must name the stale lock as a
    // simulator bug.
    EXPECT_NE(r.forensics.find("STALE (owner gone - leaked lock"),
              std::string::npos)
        << r.forensics;
}

// --------------------------------------------------------------------------
// Watchdog counter semantics (§3.2.5 audit)
// --------------------------------------------------------------------------

TEST(WatchdogAudit, NonAtomicCommitStreamCannotStarveTheTimer)
{
    // Thread 0 pointer-chases through a long dependent load chain and
    // only then retires an atomic that — under out-of-order lock
    // acquisition — locked its line long before. The commit stream of
    // chase loads is steady, so a timer that restarts on *any* commit
    // would never expire; the §3.2.5 timer watches the oldest
    // lock-holding atomic and must fire while the chain drains.
    constexpr unsigned kChain = 40;
    constexpr Addr kLock = wl::kDataBase;
    constexpr Addr kChase = wl::kDataBase + 0x80000;

    isa::ProgramBuilder b0("chase-then-atomic");
    {
        isa::Reg r_p = b0.alloc();
        isa::Reg r_l = b0.alloc();
        isa::Reg r_one = b0.alloc();
        isa::Reg r_v = b0.alloc();
        b0.movi(r_l, static_cast<std::int64_t>(kLock));
        b0.movi(r_one, 1);
        b0.movi(r_p, static_cast<std::int64_t>(kChase));
        for (unsigned i = 0; i < kChain; ++i)
            b0.load(r_p, r_p, 0);   // serially dependent misses
        b0.fetchAdd(r_v, r_l, r_one);
        b0.store(r_l, r_p, 8);      // keep the chase result live
        b0.halt();
    }
    isa::ProgramBuilder b1("spinner");
    constexpr std::int64_t kSpins = 20;
    {
        isa::Reg r_l = b1.alloc();
        isa::Reg r_one = b1.alloc();
        isa::Reg r_i = b1.alloc();
        isa::Reg r_v = b1.alloc();
        b1.movi(r_l, static_cast<std::int64_t>(kLock));
        b1.movi(r_one, 1);
        b1.movi(r_i, kSpins);
        isa::Label loop = b1.here();
        b1.fetchAdd(r_v, r_l, r_one);
        b1.addi(r_i, r_i, -1);
        b1.branch(isa::BranchCond::kNe, r_i,
                  isa::ProgramBuilder::zero(), loop);
        b1.halt();
    }

    auto m = sim::MachineConfig::tiny(2);
    m.core.mode = AtomicsMode::kFreeFwd;
    m.core.inOrderLockAcquisition = false;
    m.core.watchdogThreshold = 500;
    m.core.strideLoadPrefetch = false;  // keep the chase misses slow
    m.cores = 2;
    sim::System sys(m, {b0.build(), b1.build()}, 31);

    // Pointer-chase list: each link names the next line, scattered so
    // no prefetcher pattern forms.
    sim::MemInit init;
    Addr node = kChase;
    for (unsigned i = 0; i < kChain; ++i) {
        Addr next = kChase + ((i * 17 + 5) % 192) * 64;
        init.push_back({node, static_cast<std::int64_t>(next)});
        node = next;
    }
    sys.initMemory(init);

    auto out = sys.run(5'000'000);
    ASSERT_TRUE(out.finished) << out.failure;
    EXPECT_GE(sys.coreTotals().watchdogTimeouts, 1u)
        << "commit stream of chase loads starved the watchdog";
    EXPECT_EQ(sys.readWord(kLock), 1 + kSpins);
}

// --------------------------------------------------------------------------
// Randomized exponential backoff
// --------------------------------------------------------------------------

TEST(WatchdogBackoff, EffectiveTimeoutRecordedPerFiring)
{
    const auto *w = wl::findWorkload("dl_storermw");
    ASSERT_NE(w, nullptr);
    auto m = sim::MachineConfig::tiny(2);
    m.core.inOrderLockAcquisition = false;
    m.core.watchdogThreshold = 500;
    auto r = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, 2, 1.0, 31,
                             40'000'000);
    ASSERT_TRUE(r.finished) << r.failure;
    ASSERT_GT(r.core.watchdogTimeouts, 0u);
    EXPECT_EQ(r.hists.wdBackoff.count(), r.core.watchdogTimeouts);
    // Every effective timeout is at least the base threshold (jitter
    // and backoff only ever extend it).
    EXPECT_GE(r.hists.wdBackoff.min(), 500u);
}

TEST(WatchdogBackoff, DisabledBackoffAndJitterPinTheTimeout)
{
    const auto *w = wl::findWorkload("dl_storermw");
    ASSERT_NE(w, nullptr);
    auto m = sim::MachineConfig::tiny(2);
    m.core.inOrderLockAcquisition = false;
    m.core.watchdogThreshold = 500;
    m.core.watchdogBackoff = false;
    m.core.watchdogJitterPct = 0;
    auto r = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, 2, 1.0, 31,
                             40'000'000);
    ASSERT_TRUE(r.finished) << r.failure;
    ASSERT_GT(r.core.watchdogTimeouts, 0u);
    EXPECT_EQ(r.hists.wdBackoff.min(), 500u);
    EXPECT_EQ(r.hists.wdBackoff.max(), 500u);
}

TEST(WatchdogBackoff, TwoCoreFlushReacquireLivelockExits)
{
    // Two symmetric cores, an aggressive timeout, and injected
    // coherence delays: each firing squashes a lock-holder that
    // immediately reacquires — the flush-reacquire loop two
    // synchronized watchdogs can livelock in. Randomized per-core
    // jitter plus exponential backoff must desynchronize them and
    // finish well inside the progress window.
    const auto *w = wl::findWorkload("dl_storermw");
    ASSERT_NE(w, nullptr);
    auto m = sim::MachineConfig::tiny(2);
    m.core.inOrderLockAcquisition = false;
    m.core.watchdogThreshold = 200;
    m.chaos = chaos::chaosProfile("coherence", 7);
    auto r = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, 2, 1.0, 31,
                             40'000'000);
    ASSERT_TRUE(r.finished) << r.failure;
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    EXPECT_GT(r.core.watchdogTimeouts, 0u);
    EXPECT_LT(r.cycles, sim::MachineConfig().progressWindow);
}

// --------------------------------------------------------------------------
// Soak harness: certification, shrinking, reproducers
// --------------------------------------------------------------------------

TEST(Soak, TimingProfilesCertifyAcrossSeeds)
{
    for (std::uint64_t seed : {1, 2, 3}) {
        for (const char *profile : {"coherence", "all"}) {
            auto spec = chaos::makeSoakSpec(
                seed, AtomicsMode::kFreeFwd, profile);
            auto r = chaos::runSoakCase(chaos::buildSoakCase(spec));
            EXPECT_TRUE(r.ok) << "seed " << seed << " profile "
                              << profile << ": [" << r.signature
                              << "] " << r.detail;
        }
    }
}

TEST(Soak, ShrinkPreservesSignatureAndReducesTheCase)
{
    auto spec = chaos::makeSoakSpec(3, AtomicsMode::kFreeFwd,
                                    "buggy_unlock");
    auto r = chaos::runSoakCase(chaos::buildSoakCase(spec));
    ASSERT_FALSE(r.ok);

    unsigned steps = 0;
    auto small = chaos::shrinkSoakCase(spec, r.signature, &steps);
    EXPECT_GT(steps, 0u);
    EXPECT_LE(small.threads, spec.threads);
    EXPECT_LE(small.blocks, spec.blocks);
    auto rs = chaos::runSoakCase(chaos::buildSoakCase(small));
    EXPECT_EQ(rs.signature, r.signature);
}

TEST(Soak, ReproducerReplaysExactly)
{
    namespace fs = std::filesystem;
    auto spec = chaos::makeSoakSpec(3, AtomicsMode::kFreeFwd,
                                    "buggy_unlock");
    auto c = chaos::buildSoakCase(spec);
    auto r = chaos::runSoakCase(c);
    ASSERT_FALSE(r.ok);

    std::string dir =
        (fs::path(::testing::TempDir()) / "fa-soak-repro").string();
    std::string json = chaos::writeReproducer(c, r, dir, "case3");

    std::string recorded;
    auto loaded = chaos::loadReproducer(json, &recorded);
    EXPECT_EQ(recorded, r.signature);
    ASSERT_EQ(loaded.programs.size(), c.programs.size());
    for (size_t t = 0; t < c.programs.size(); ++t) {
        ASSERT_EQ(loaded.programs[t].code.size(),
                  c.programs[t].code.size());
    }
    EXPECT_EQ(loaded.expectedCounters, c.expectedCounters);

    // The replay must reproduce the failure cycle-for-cycle.
    auto rr = chaos::runSoakCase(loaded);
    EXPECT_EQ(rr.signature, r.signature);
    EXPECT_EQ(rr.cycles, r.cycles);
    EXPECT_EQ(rr.forensics, r.forensics);
}

} // namespace
} // namespace fa
