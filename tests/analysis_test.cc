/**
 * @file
 * Static-analysis subsystem tests: CFG construction with constant
 * propagation, Shasha–Snir critical-cycle detection on the classic
 * litmus shapes (Dekker, SB, MP), fence-redundancy classification,
 * and lock-cycle (deadlock-shape / forwarding-chain) prediction.
 */

#include <gtest/gtest.h>

#include "freeatomics/freeatomics.hh"

namespace fa {
namespace {

using analysis::AccessKind;
using analysis::FenceVerdict;
using isa::BranchCond;
using isa::ProgramBuilder;

// --------------------------------------------------------------------------
// CFG construction and constant propagation
// --------------------------------------------------------------------------

TEST(Cfg, BlocksLoopsAndResolvedAddresses)
{
    ProgramBuilder b("loopy");
    auto r_addr = b.alloc();
    auto r_cnt = b.alloc();
    auto r_v = b.alloc();
    b.movi(r_addr, 0x200000);            // pc 0
    b.movi(r_cnt, 8);                    // pc 1
    auto loop = b.here();                // pc 2
    b.load(r_v, r_addr);                 // pc 2
    b.store(r_addr, r_v, 8);             // pc 3
    b.addi(r_cnt, r_cnt, -1);            // pc 4
    b.branch(BranchCond::kNe, r_cnt, ProgramBuilder::zero(), loop);
    b.mfence();                          // pc 6
    b.halt();                            // pc 7
    isa::Program prog = b.build();

    analysis::Cfg cfg(prog);
    EXPECT_EQ(cfg.blocks().size(), 3u);  // [0,1] [2,5] [6,7]
    ASSERT_EQ(cfg.loops().size(), 1u);
    EXPECT_EQ(cfg.loops()[0].headPc, 2);
    EXPECT_EQ(cfg.loops()[0].backPc, 5);
    EXPECT_EQ(cfg.blockOf(0), cfg.blockOf(1));
    EXPECT_NE(cfg.blockOf(1), cfg.blockOf(2));
    EXPECT_TRUE(cfg.inLoop(3));
    EXPECT_FALSE(cfg.inLoop(6));

    analysis::ThreadSummary sum = analysis::summarizeThread(prog, 0);
    ASSERT_EQ(sum.events.size(), 3u);  // load, store, fence
    EXPECT_EQ(sum.events[0].kind, AccessKind::kLoad);
    EXPECT_TRUE(sum.events[0].addrKnown);
    EXPECT_EQ(sum.events[0].addr, 0x200000u);
    EXPECT_TRUE(sum.events[0].inLoop);
    EXPECT_EQ(sum.events[1].kind, AccessKind::kStore);
    EXPECT_EQ(sum.events[1].addr, 0x200008u);
    EXPECT_EQ(sum.events[2].kind, AccessKind::kFence);
    EXPECT_FALSE(sum.events[2].inLoop);
    EXPECT_EQ(sum.knownAddrEvents, 2u);
    EXPECT_EQ(sum.eventAt(3), 1);
    EXPECT_EQ(sum.eventAt(4), -1);
}

TEST(Cfg, JoinOfTwoConstantsDegradesToUnknown)
{
    // r1 is 0x200000 on one path and 0x200040 on the other: the load
    // address must degrade to unknown at the join, not pick a side.
    ProgramBuilder b("join");
    auto r_addr = b.alloc();
    auto r_sel = b.alloc();
    auto r_v = b.alloc();
    auto skip = b.newLabel();
    b.movi(r_addr, 0x200000);
    b.rand(r_sel, 2);
    b.branch(BranchCond::kEq, r_sel, ProgramBuilder::zero(), skip);
    b.movi(r_addr, 0x200040);
    b.bind(skip);
    b.load(r_v, r_addr);
    b.halt();

    analysis::ThreadSummary sum =
        analysis::summarizeThread(b.build(), 0);
    ASSERT_EQ(sum.events.size(), 1u);
    EXPECT_FALSE(sum.events[0].addrKnown);
    EXPECT_EQ(sum.knownAddrEvents, 0u);
}

// --------------------------------------------------------------------------
// Critical cycles
// --------------------------------------------------------------------------

/** Two-thread store-buffering kernel, optionally fenced. */
std::vector<isa::Program>
buildSb(bool fenced)
{
    std::vector<isa::Program> progs;
    for (unsigned tid = 0; tid < 2; ++tid) {
        ProgramBuilder b(fenced ? "sb_f" : "sb");
        auto r_a = b.alloc();
        auto r_one = b.alloc();
        auto r_v = b.alloc();
        Addr mine = wl::kDataBase + (tid == 0 ? 0 : 64);
        Addr other = wl::kDataBase + (tid == 0 ? 64 : 0);
        b.movi(r_one, 1);
        b.movi(r_a, static_cast<std::int64_t>(mine));
        b.store(r_a, r_one);
        if (fenced)
            b.mfence();
        b.movi(r_a, static_cast<std::int64_t>(other));
        b.load(r_v, r_a);
        b.halt();
        progs.push_back(b.build());
    }
    return progs;
}

TEST(CriticalCycle, UnfencedStoreBufferingIsPermitted)
{
    auto ca = analysis::findCriticalCycles(
        analysis::summarizePrograms(buildSb(false)));
    ASSERT_FALSE(ca.cycles.empty());
    EXPECT_GE(ca.permittedCycles, 1u);
    EXPECT_EQ(ca.forbiddenCycles, 0u);
    EXPECT_TRUE(ca.requiredOrderingPoints.empty());
    // Both W->R program-order steps of the cycle are relaxable.
    bool found_unprotected = false;
    for (const auto &c : ca.cycles) {
        EXPECT_TRUE(c.tsoPermitted);
        for (const auto &st : c.steps)
            if (st.unprotectedRelaxed())
                found_unprotected = true;
    }
    EXPECT_TRUE(found_unprotected);
}

TEST(CriticalCycle, FencedStoreBufferingIsForbidden)
{
    auto sums = analysis::summarizePrograms(buildSb(true));
    auto ca = analysis::findCriticalCycles(sums);
    ASSERT_FALSE(ca.cycles.empty());
    EXPECT_EQ(ca.permittedCycles, 0u);
    EXPECT_GE(ca.forbiddenCycles, 1u);
    // The two MFENCEs are exactly the required ordering points.
    ASSERT_EQ(ca.requiredOrderingPoints.size(), 2u);
    EXPECT_EQ(ca.requiredOrderingPoints[0].first, 0u);
    EXPECT_EQ(ca.requiredOrderingPoints[1].first, 1u);
}

TEST(CriticalCycle, DekkerCyclesAreOrderedByAtomics)
{
    // The packaged Dekker litmus separates its store and load with an
    // atomic RMW (paper Figure 10): every store-buffering cycle must
    // be found and classified forbidden because of it.
    const auto *w = wl::findWorkload("dekker");
    ASSERT_NE(w, nullptr);
    auto sums = analysis::summarizePrograms(wl::buildPrograms(*w, 2, 1.0));
    auto ca = analysis::findCriticalCycles(sums);
    ASSERT_FALSE(ca.cycles.empty());
    EXPECT_EQ(ca.permittedCycles, 0u);
    EXPECT_GE(ca.forbiddenCycles, 1u);
    EXPECT_FALSE(ca.requiredOrderingPoints.empty());
    // The ordering points are the per-round RMWs, so they must all be
    // atomic accesses, not fences.
    for (auto [thread, pc] : ca.requiredOrderingPoints) {
        int idx = sums[thread].eventAt(pc);
        ASSERT_GE(idx, 0);
        EXPECT_EQ(sums[thread].events[idx].kind, AccessKind::kRmw);
    }
}

TEST(CriticalCycle, MessagePassingHasNoRelaxableStep)
{
    // MP: st data; st flag || ld flag; ld data. The cycle exists but
    // has no W->R step, so plain TSO already forbids the outcome.
    std::vector<isa::Program> progs;
    {
        ProgramBuilder b("mp_w");
        auto r_a = b.alloc();
        auto r_one = b.alloc();
        b.movi(r_one, 1);
        b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase));
        b.store(r_a, r_one);
        b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase + 64));
        b.store(r_a, r_one);
        b.halt();
        progs.push_back(b.build());
    }
    {
        ProgramBuilder b("mp_r");
        auto r_a = b.alloc();
        auto r_v = b.alloc();
        b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase + 64));
        b.load(r_v, r_a);
        b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase));
        b.load(r_v, r_a);
        b.halt();
        progs.push_back(b.build());
    }
    auto ca = analysis::findCriticalCycles(
        analysis::summarizePrograms(progs));
    ASSERT_FALSE(ca.cycles.empty());
    EXPECT_EQ(ca.permittedCycles, 0u);
    for (const auto &c : ca.cycles)
        for (const auto &st : c.steps)
            EXPECT_FALSE(st.relaxed && st.orderingPcs.empty());
}

// --------------------------------------------------------------------------
// Fence redundancy
// --------------------------------------------------------------------------

TEST(FenceRedundancy, FenceNextToAtomicIsRedundant)
{
    // Fenced counter loop: store; fetchadd; mfence; load. The RMW
    // already orders the store against the load (SB empty at commit),
    // so the MFENCE does no architectural work.
    ProgramBuilder b("fenced_counter");
    auto r_d = b.alloc();
    auto r_c = b.alloc();
    auto r_one = b.alloc();
    auto r_old = b.alloc();
    auto r_v = b.alloc();
    auto r_cnt = b.alloc();
    b.movi(r_one, 1);
    b.movi(r_d, static_cast<std::int64_t>(wl::kDataBase));
    b.movi(r_c, static_cast<std::int64_t>(wl::kDataBase + 64));
    b.movi(r_cnt, 16);
    auto loop = b.here();
    b.store(r_d, r_one);
    b.fetchAdd(r_old, r_c, r_one);
    b.mfence();
    b.load(r_v, r_d);
    b.addi(r_cnt, r_cnt, -1);
    b.branch(BranchCond::kNe, r_cnt, ProgramBuilder::zero(), loop);
    b.halt();

    std::vector<isa::Program> progs(2, b.build());
    auto sums = analysis::summarizePrograms(progs);
    auto ca = analysis::findCriticalCycles(sums);
    auto fences = analysis::analyzeFences(sums, ca);
    ASSERT_EQ(fences.size(), 2u);  // one per thread
    for (const auto &f : fences) {
        EXPECT_EQ(f.verdict, FenceVerdict::kRedundantByAtomic)
            << f.reason;
    }
}

TEST(FenceRedundancy, SbFenceIsRequiredAndLoneFenceIsVacuous)
{
    auto sums = analysis::summarizePrograms(buildSb(true));
    auto ca = analysis::findCriticalCycles(sums);
    auto fences = analysis::analyzeFences(sums, ca);
    ASSERT_EQ(fences.size(), 2u);
    for (const auto &f : fences)
        EXPECT_EQ(f.verdict, FenceVerdict::kRequired) << f.reason;

    // A fence with no store before it separates nothing.
    ProgramBuilder b("lone");
    auto r_a = b.alloc();
    auto r_v = b.alloc();
    b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase));
    b.load(r_v, r_a);
    b.mfence();
    b.load(r_v, r_a);
    b.halt();
    std::vector<isa::Program> lone{b.build()};
    auto lsums = analysis::summarizePrograms(lone);
    auto lca = analysis::findCriticalCycles(lsums);
    auto lf = analysis::analyzeFences(lsums, lca);
    ASSERT_EQ(lf.size(), 1u);
    EXPECT_EQ(lf[0].verdict, FenceVerdict::kVacuous) << lf[0].reason;
}

TEST(FenceRedundancy, LoadSideCoverageIsModeConditional)
{
    // store x; mfence; fetchadd scratch; load y — the fence's only
    // cover on the load side is the RMW after it (Mem_Fence2), and
    // that stall only exists under Fenced/Spec atomics. Under the
    // free modes the RMW binds early and the buffered store can
    // still pass the load, so the same fence flips to required.
    ProgramBuilder b("modecond");
    auto r_x = b.alloc();
    auto r_y = b.alloc();
    auto r_s = b.alloc();
    auto r_one = b.alloc();
    auto r_old = b.alloc();
    auto r_v = b.alloc();
    b.movi(r_x, static_cast<std::int64_t>(wl::kDataBase));
    b.movi(r_y, static_cast<std::int64_t>(wl::kDataBase + 64));
    b.movi(r_s, static_cast<std::int64_t>(wl::kDataBase + 128));
    b.movi(r_one, 1);
    b.store(r_x, r_one);
    b.mfence();
    b.fetchAdd(r_old, r_s, r_one);
    b.load(r_v, r_y);
    b.halt();

    std::vector<isa::Program> progs(2, b.build());
    auto sums = analysis::summarizePrograms(progs);
    auto ca = analysis::findCriticalCycles(sums);

    for (core::AtomicsMode m :
         {core::AtomicsMode::kFenced, core::AtomicsMode::kSpec}) {
        auto fences = analysis::analyzeFences(sums, ca, m);
        ASSERT_EQ(fences.size(), 2u);
        for (const auto &f : fences)
            EXPECT_EQ(f.verdict, FenceVerdict::kRedundantByAtomic)
                << core::atomicsModeIdent(m) << ": " << f.reason;
    }
    for (core::AtomicsMode m :
         {core::AtomicsMode::kFree, core::AtomicsMode::kFreeFwd}) {
        auto fences = analysis::analyzeFences(sums, ca, m);
        ASSERT_EQ(fences.size(), 2u);
        for (const auto &f : fences) {
            EXPECT_EQ(f.verdict, FenceVerdict::kRequired)
                << core::atomicsModeIdent(m) << ": " << f.reason;
            EXPECT_NE(f.reason.find("fafence"), std::string::npos)
                << "the free-mode verdict should defer to synthesis";
        }
    }
}

TEST(FenceRedundancy, PackagedSbFencedFencesAllRequired)
{
    const auto *w = wl::findWorkload("sb_fenced");
    ASSERT_NE(w, nullptr);
    auto sums = analysis::summarizePrograms(wl::buildPrograms(*w, 2, 1.0));
    auto ca = analysis::findCriticalCycles(sums);
    auto fences = analysis::analyzeFences(sums, ca);
    ASSERT_FALSE(fences.empty());
    unsigned required = 0;
    for (const auto &f : fences)
        if (f.verdict == FenceVerdict::kRequired)
            ++required;
    EXPECT_EQ(required, fences.size());
}

// --------------------------------------------------------------------------
// Lock cycles (deadlock shapes / forwarding chains)
// --------------------------------------------------------------------------

TEST(LockCycle, DetectsAllThreePaperShapes)
{
    struct Shape
    {
        const char *workload;
        analysis::DeadlockKind kind;
    };
    const Shape shapes[] = {
        {"dl_rmwrmw", analysis::DeadlockKind::kRmwRmw},
        {"dl_storermw", analysis::DeadlockKind::kStoreRmw},
        {"dl_loadrmw", analysis::DeadlockKind::kLoadRmw},
    };
    for (const auto &s : shapes) {
        const auto *w = wl::findWorkload(s.workload);
        ASSERT_NE(w, nullptr) << s.workload;
        auto sums =
            analysis::summarizePrograms(wl::buildPrograms(*w, 2, 1.0));
        auto res = analysis::analyzeLockCycles(sums);
        bool found = false;
        for (const auto &d : res.deadlocks)
            if (d.kind == s.kind)
                found = true;
        EXPECT_TRUE(found)
            << s.workload << ": expected "
            << analysis::deadlockKindName(s.kind) << ", got "
            << res.deadlocks.size() << " reports";
    }
}

TEST(LockCycle, SymmetricOrderHasNoInversion)
{
    // Both threads take the lines in the same order: no deadlock.
    std::vector<isa::Program> progs;
    for (unsigned tid = 0; tid < 2; ++tid) {
        ProgramBuilder b("same_order");
        auto r_a = b.alloc();
        auto r_one = b.alloc();
        auto r_old = b.alloc();
        b.movi(r_one, 1);
        b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase));
        b.fetchAdd(r_old, r_a, r_one);
        b.movi(r_a, static_cast<std::int64_t>(wl::kDataBase + 64));
        b.fetchAdd(r_old, r_a, r_one);
        b.halt();
        progs.push_back(b.build());
    }
    auto res = analysis::analyzeLockCycles(
        analysis::summarizePrograms(progs));
    EXPECT_TRUE(res.deadlocks.empty());
}

TEST(LockCycle, CounterLoopIsForwardingChainSite)
{
    const auto *w = wl::findWorkload("atomic_counter");
    ASSERT_NE(w, nullptr);
    auto sums = analysis::summarizePrograms(wl::buildPrograms(*w, 2, 1.0));
    auto res = analysis::analyzeLockCycles(sums);
    ASSERT_FALSE(res.chains.empty());
    for (const auto &c : res.chains) {
        EXPECT_TRUE(c.mayExceedCap);
        // One shared line, same acquisition order on both threads:
        // a chain site, but not inside any inversion.
        EXPECT_FALSE(c.inRmwRmwCycle);
    }
}

TEST(LockCycle, ChainInsideRmwRmwCycleIsCrossLinked)
{
    // Each thread loops { RMW first ; RMW second } with the two
    // lines in opposite orders: every in-loop chain line is also one
    // side of the Figure 5 RMW-RMW inversion, and the pass must
    // report the compound site rather than two unrelated findings.
    std::vector<isa::Program> progs;
    for (unsigned tid = 0; tid < 2; ++tid) {
        ProgramBuilder b("loop_inversion");
        auto r_a = b.alloc();
        auto r_b = b.alloc();
        auto r_one = b.alloc();
        auto r_old = b.alloc();
        auto r_n = b.alloc();
        Addr first = wl::kDataBase + (tid == 0 ? 0 : 64);
        Addr second = wl::kDataBase + (tid == 0 ? 64 : 0);
        b.movi(r_one, 1);
        b.movi(r_n, 8);
        b.movi(r_a, static_cast<std::int64_t>(first));
        b.movi(r_b, static_cast<std::int64_t>(second));
        isa::Label loop = b.newLabel();
        b.bind(loop);
        b.fetchAdd(r_old, r_a, r_one);
        b.fetchAdd(r_old, r_b, r_one);
        b.addi(r_n, r_n, -1);
        b.branch(isa::BranchCond::kNe, r_n, isa::Reg{0}, loop);
        b.halt();
        progs.push_back(b.build());
    }
    auto res = analysis::analyzeLockCycles(
        analysis::summarizePrograms(progs));

    bool rmwrmw = false;
    for (const auto &d : res.deadlocks)
        rmwrmw |= d.kind == analysis::DeadlockKind::kRmwRmw;
    ASSERT_TRUE(rmwrmw);

    ASSERT_FALSE(res.chains.empty());
    for (const auto &c : res.chains) {
        EXPECT_TRUE(c.inRmwRmwCycle) << c.describe(32);
        EXPECT_EQ(c.cyclePartner, c.thread == 0 ? 1u : 0u);
        Addr other = c.line == lineOf(wl::kDataBase)
                         ? lineOf(wl::kDataBase + 64)
                         : lineOf(wl::kDataBase);
        EXPECT_EQ(c.cycleOtherLine, other);
        EXPECT_NE(c.describe(32).find("mid-inversion"),
                  std::string::npos);
    }
}

} // namespace
} // namespace fa
