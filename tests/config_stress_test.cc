/**
 * @file
 * Configuration-space stress: the pipeline must stay correct (not
 * merely fast) across degenerate structure sizes — single-wide
 * machines, tiny ROB/IQ/LQ/SQ, 1-entry AQ, zero lock-issue window,
 * disabled prefetchers, tiny watchdog — all running a lock-heavy
 * kernel whose counter sum certifies mutual exclusion.
 */

#include <gtest/gtest.h>

#include "freeatomics/freeatomics.hh"

namespace fa {
namespace {

using core::AtomicsMode;

sim::MachineConfig
base(unsigned threads)
{
    auto m = sim::MachineConfig::tiny(threads);
    // Every stress run is also validated against the axiomatic TSO
    // model (runWorkload fails the run on a violation).
    m.recordMemTrace = true;
    return m;
}

void
runCounterCheck(sim::MachineConfig m, unsigned threads,
                const char *what)
{
    m.core.mode = AtomicsMode::kFreeFwd;
    const auto *w = wl::findWorkload("atomic_counter");
    auto r = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, threads,
                             0.5, 9, 80'000'000);
    EXPECT_TRUE(r.finished) << what << ": " << r.failure;
}

void
runLockCheck(sim::MachineConfig m, unsigned threads, const char *what)
{
    const auto *w = wl::findWorkload("mcs_lock");
    auto r = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, threads,
                             0.5, 9, 80'000'000);
    EXPECT_TRUE(r.finished) << what << ": " << r.failure;
}

TEST(ConfigStress, SingleWideMachine)
{
    auto m = base(2);
    m.core.fetchWidth = 1;
    m.core.issueWidth = 1;
    m.core.commitWidth = 1;
    runCounterCheck(m, 2, "single-wide");
    runLockCheck(m, 2, "single-wide");
}

TEST(ConfigStress, TinyRob)
{
    auto m = base(2);
    m.core.robSize = 8;
    m.core.iqSize = 4;
    runCounterCheck(m, 2, "rob8");
    runLockCheck(m, 2, "rob8");
}

TEST(ConfigStress, TinyLsq)
{
    auto m = base(2);
    m.core.lqSize = 2;
    m.core.sqSize = 2;
    runCounterCheck(m, 2, "lsq2");
    runLockCheck(m, 2, "lsq2");
}

TEST(ConfigStress, OneEntryAq)
{
    auto m = base(4);
    m.core.aqSize = 1;
    runCounterCheck(m, 4, "aq1");
    runLockCheck(m, 4, "aq1");
}

TEST(ConfigStress, AqLargerThanL1Ways)
{
    // The paper notes aqSize > L1 associativity admits the
    // all-ways-locked deadlock, recovered by the watchdog.
    auto m = base(4);
    m.core.aqSize = m.mem.l1Ways + 2;
    m.core.watchdogThreshold = 500;
    runCounterCheck(m, 4, "aq>ways");
    runLockCheck(m, 4, "aq>ways");
}

TEST(ConfigStress, ZeroLockIssueWindow)
{
    auto m = base(4);
    m.core.lockIssueWindow = 0;  // fully eager locking
    m.core.watchdogThreshold = 500;
    runCounterCheck(m, 4, "window0");
    runLockCheck(m, 4, "window0");
}

TEST(ConfigStress, OutOfOrderLocksAndZeroWindow)
{
    auto m = base(4);
    m.core.lockIssueWindow = 0;
    m.core.inOrderLockAcquisition = false;
    m.core.watchdogThreshold = 500;
    runCounterCheck(m, 4, "ooo+window0");
    runLockCheck(m, 4, "ooo+window0");
}

TEST(ConfigStress, NoPrefetchers)
{
    auto m = base(2);
    m.core.storePrefetch = false;
    m.core.strideLoadPrefetch = false;
    runCounterCheck(m, 2, "no-prefetch");
    runLockCheck(m, 2, "no-prefetch");
}

TEST(ConfigStress, MinimalWatchdog)
{
    auto m = base(4);
    m.core.watchdogThreshold = 64;
    runCounterCheck(m, 4, "wd64");
    runLockCheck(m, 4, "wd64");
}

TEST(ConfigStress, LongRedirectPenalty)
{
    auto m = base(2);
    m.core.redirectPenalty = 40;
    runCounterCheck(m, 2, "redirect40");
}

TEST(ConfigStress, ChainCapOne)
{
    auto m = base(4);
    m.core.fwdChainCap = 1;
    runLockCheck(m, 4, "chain1");
}

TEST(ConfigStress, TinyMshrs)
{
    auto m = base(2);
    m.mem.mshrs = 1;
    runCounterCheck(m, 2, "mshr1");
    runLockCheck(m, 2, "mshr1");
}

TEST(ConfigStress, SlowNetworkFastMemory)
{
    auto m = base(2);
    m.mem.netLatency = 40;
    m.mem.memLatency = 10;
    runCounterCheck(m, 2, "slow-net");
}

TEST(ConfigStress, DeterministicAcrossConfigRuns)
{
    // Any fixed configuration must stay bit-deterministic.
    auto m = base(4);
    m.core.aqSize = 2;
    const auto *w = wl::findWorkload("mcs_lock");
    auto a = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, 4, 0.5, 13,
                             80'000'000);
    auto b = wl::runWorkload(*w, m, AtomicsMode::kFreeFwd, 4, 0.5, 13,
                             80'000'000);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.cycles, b.cycles);
}

} // namespace
} // namespace fa
