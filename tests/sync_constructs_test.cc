/**
 * @file
 * Higher-level synchronization constructs under every atomic-RMW
 * flavour: ticket lock (FIFO + mutual exclusion), MCS queue lock
 * (mutual exclusion + empty queue at quiesce), and seqlock (readers
 * never observe torn writes).
 */

#include <gtest/gtest.h>

#include "freeatomics/freeatomics.hh"

namespace fa {
namespace {

using core::AtomicsMode;

struct SyncParam
{
    const char *workload;
    unsigned threads;
    AtomicsMode mode;
};

class SyncConstructs : public ::testing::TestWithParam<SyncParam>
{
};

TEST_P(SyncConstructs, InvariantHolds)
{
    const auto &p = GetParam();
    const auto *w = wl::findWorkload(p.workload);
    ASSERT_NE(w, nullptr);
    for (std::uint64_t seed : {41ull, 42ull, 43ull}) {
        auto r = wl::runWorkload(*w, sim::MachineConfig::tiny(p.threads),
                                 p.mode, p.threads, 1.0, seed,
                                 40'000'000);
        EXPECT_TRUE(r.finished)
            << "seed " << seed << ": " << r.failure;
    }
}

std::vector<SyncParam>
syncMatrix()
{
    std::vector<SyncParam> v;
    for (const char *w : {"ticket_lock", "mcs_lock", "seqlock"}) {
        for (AtomicsMode m :
             {AtomicsMode::kFenced, AtomicsMode::kSpec,
              AtomicsMode::kFree, AtomicsMode::kFreeFwd}) {
            v.push_back({w, 2, m});
            v.push_back({w, 4, m});
        }
        v.push_back({w, 8, AtomicsMode::kFreeFwd});
    }
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SyncConstructs, ::testing::ValuesIn(syncMatrix()),
    [](const ::testing::TestParamInfo<SyncParam> &info) {
        return std::string(info.param.workload) + "_t" +
            std::to_string(info.param.threads) + "_" +
            core::atomicsModeIdent(info.param.mode);
    });

TEST(TicketLock, IsFifoFair)
{
    // The ticket discipline serves strictly in ticket order, so no
    // thread can starve: with N threads x I iterations, every thread
    // must finish, and tickets issued == tickets served (checked by
    // the verify hook); here additionally assert the system spread
    // the critical sections across all threads.
    const auto *w = wl::findWorkload("ticket_lock");
    auto machine = sim::MachineConfig::tiny(4);
    machine.core.mode = AtomicsMode::kFreeFwd;
    machine.cores = 4;
    auto progs = wl::buildPrograms(*w, 4, 1.0);
    sim::System sys(machine, progs, 7);
    auto out = sys.run(40'000'000);
    ASSERT_TRUE(out.finished) << out.failure;
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(sys.coreAt(c).stats.committedAtomics, 0u);
}

TEST(McsLock, QueueNodesAreSpinLocal)
{
    // MCS waiters spin on their own qnode line, not the lock word:
    // with 4 contenders the lock-word line must see far fewer
    // accesses than a TTAS design would generate. Proxy check: the
    // run completes with bounded invalidation traffic per critical
    // section.
    const auto *w = wl::findWorkload("mcs_lock");
    auto r = wl::runWorkload(*w, sim::MachineConfig::tiny(4),
                             AtomicsMode::kFreeFwd, 4, 1.0, 7,
                             40'000'000);
    ASSERT_TRUE(r.finished) << r.failure;
    double invs_per_cs =
        static_cast<double>(r.mem.invalidationsSent) /
        static_cast<double>(4 * 24);
    EXPECT_LT(invs_per_cs, 40.0);
}

TEST(Seqlock, WriterAloneNeverTears)
{
    const auto *w = wl::findWorkload("seqlock");
    auto r = wl::runWorkload(*w, sim::MachineConfig::tiny(1),
                             AtomicsMode::kFreeFwd, 1, 1.0, 7,
                             40'000'000);
    EXPECT_TRUE(r.finished) << r.failure;
}

} // namespace
} // namespace fa
